// The session-based partitioning API: the long-lived entry point a service embeds.
//
//   tofu::Session session(tofu::DeviceTopology::FromCluster(tofu::K80Cluster()));
//   tofu::PartitionRequest request;
//   request.graph = &model.graph;
//   request.memory_budget_bytes = 12ll << 30;
//   tofu::Result<tofu::PartitionResponse> response = session.Partition(request);
//   if (!response.ok()) { /* recoverable: bad request, unknown op, budget too small */ }
//   UsePlan(response->plan);
//
// Compared to the one-shot Partitioner facade this adds:
//   * hardware in the request path -- a DeviceTopology carries the worker count and the
//     per-level link bandwidths (intra-group p2p vs. cross-group host links), so the
//     recursive search weighs each step's bytes by the link it crosses and the response
//     reports estimated per-step times;
//   * recoverable errors -- user mistakes (unknown operator, infeasible memory budget,
//     bad worker count) come back as Status via Result, never a process abort;
//   * a plan cache keyed by graph signature + request fingerprint with hit/miss
//     counters, so a service seeing repeated traffic pays for each distinct search once;
//   * serializable artifacts -- responses carry PartitionPlans that round-trip through
//     JSON (partition/plan_io.h).
//
// Sessions are THREAD-SAFE: one Session serves all threads of a process (that is the
// point -- cross-request plan-cache sharing). Concretely:
//   * the plan cache is a sharded LRU (util/sharded_lru.h) -- per-shard mutexes, so
//     hits on different shards never contend, and values are copied out under the lock;
//   * identical concurrent requests are single-flighted: the first caller (the leader)
//     runs the search, every other caller with the same cache key blocks on a shared
//     future and receives a copy of the leader's result -- one search, N responses,
//     counted in PlanCacheStats::coalesced. A leader that fails (unknown op, infeasible
//     budget) hands every waiter the same Status and then retires the flight, so the
//     key is never poisoned -- a later identical request searches afresh;
//   * counters are atomics; cache_stats() returns a consistent-enough snapshot.
// Determinism is preserved: searches are pure functions of the request, so a cached,
// coalesced, or fresh response carries a byte-identical plan (up to search wall time).
#ifndef TOFU_CORE_SESSION_H_
#define TOFU_CORE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tofu/interconnect/interconnect.h"
#include "tofu/partition/baselines.h"
#include "tofu/partition/recursive.h"
#include "tofu/sim/cost_model.h"
#include "tofu/util/sharded_lru.h"
#include "tofu/util/status.h"

namespace tofu {

// Named algorithm selector (Figure 10's comparison set plus classic data parallelism
// and the hybrid pipeline composition).
enum class PartitionAlgorithm {
  kTofu,          // recursive DP with output-reduction strategies
  kIcml18,        // recursive DP without output-reduction
  kEqualChop,     // single k-way DP step (one dimension per tensor)
  kSpartan,       // largest-tensor-first greedy
  kAllRowGreedy,  // everything split along dimension 0
  kDataParallel,  // activations batch-split, model state replicated (all-reduce grads)
  kHybrid,        // pipeline stages x intra-stage recursive DP (pipeline/compose.h);
                  // degenerates to kTofu's plan when one stage wins
};

const char* AlgorithmName(PartitionAlgorithm algorithm);

// Inverse of AlgorithmName (exact match, e.g. "Tofu", "ICML18", "AllRow-Greedy");
// kInvalidArgument lists the known names for unknown input. Backs the --algo= flags of
// the bench and example drivers.
Result<PartitionAlgorithm> AlgorithmFromName(const std::string& name);

// The hardware a session partitions for: how many workers, how fast the link each
// recursive step's traffic crosses is, and (optionally) how much memory one worker has.
// Step 0 is the coarsest split (the paper's k1), so its bytes cross the top-level --
// usually slowest -- interconnect.
struct DeviceTopology {
  int num_workers = 1;
  // Bandwidth (bytes/s) of the link crossed by recursive step i, coarse to fine; steps
  // past the end reuse the last entry. Empty means uniform_bandwidth everywhere.
  std::vector<double> level_bandwidths;
  double uniform_bandwidth = 21e9;  // PCIe p2p on the paper's testbed
  // Per-worker memory (bytes) for the advisory feasibility verdict, and -- when it is
  // the binding constraint -- named in budget-failure messages; 0 = unknown.
  std::int64_t memory_bytes_per_worker = 0;
  // Optional concrete interconnect (ring / full mesh / oversubscribed hierarchy;
  // interconnect/interconnect.h). When set it must agree with num_workers, and it
  // replaces level_bandwidths as the source of the search's per-step bandwidths: the
  // session prices each recursive step's group-local all-to-all over the link graph
  // (contention on shared links included) and feeds the resulting effective bandwidths
  // into step_bandwidths, so the factor-ordering search optimizes real transfer time.
  // Responses additionally carry simulated_comm_seconds, the plan's communication
  // replayed through the event simulator's link-level queueing. Unset (the default,
  // and every Uniform/FromCluster topology) keeps the scalar-bandwidth path --
  // byte-identical plans to the pre-interconnect goldens.
  std::shared_ptr<const Interconnect> interconnect;

  // Bandwidth step i's traffic crosses. (Whether the bandwidths differ across steps --
  // and hence whether the factor-ordering search engages -- is decided where it is
  // used, in partition/recursive.cc.)
  double BandwidthForStep(size_t step) const;
  // Deterministic string form folded into the plan-cache key.
  std::string Fingerprint() const;

  // num_workers workers behind one uniform interconnect.
  static DeviceTopology Uniform(int num_workers, double bandwidth = 21e9);
  // Topology driven by a concrete interconnect model; num_workers comes from the
  // interconnect, memory (optionally) from the caller.
  static DeviceTopology WithInterconnect(std::shared_ptr<const Interconnect> net,
                                         std::int64_t memory_bytes_per_worker = 0);
  // Derived from the simulator's ClusterSpec: the coarsest split's traffic crosses the
  // shared host link (cpu_bandwidth) between the two PCIe root complexes; every deeper
  // split stays on intra-group p2p links. Worker memory comes from the GPU spec.
  static DeviceTopology FromCluster(const ClusterSpec& cluster);
};

struct PartitionRequest {
  const Graph* graph = nullptr;  // not owned; must outlive the Partition call
  PartitionAlgorithm algorithm = PartitionAlgorithm::kTofu;
  PartitionOptions options;  // step_bandwidths is filled from the session's topology
  // Per-worker memory budget; > 0 makes memory a first-class search constraint for the
  // recursion-based algorithms (kTofu, kIcml18, kEqualChop): the search returns the
  // cheapest plan whose liveness-aware per-worker peak fits, trying alternative step
  // factor orderings and a lightest-cuts fallback before giving up. When even the
  // lightest configuration overflows, the coarse recursion (kTofu, kIcml18; not the
  // single-step kEqualChop) runs a repair pass (memory/repair.h, steered by
  // options.memory_policy): the min-comm plan is re-found unconstrained and a
  // MemorySchedule marks buffers host-swapped or recomputed -- priced against the
  // topology -- until the scheduled peak fits. Only when even full offload cannot
  // reach the budget does Partition fail with kResourceExhausted (the message reports
  // the deficit, which bound -- this budget or the topology's device memory -- is
  // binding, and the minimum achievable peak). Greedy baselines ignore the budget
  // during construction but are still checked. 0 disables the constraint entirely;
  // the response then only carries the advisory verdict against the topology's
  // memory_bytes_per_worker.
  std::int64_t memory_budget_bytes = 0;
};

struct PartitionResponse {
  PartitionPlan plan;
  // Liveness-aware per-worker peak (LivenessPeakShardBytes, memory/liveness.h): model
  // state stays resident, activation buffers live from producer to last consumer, and
  // in-place outputs reuse their input's buffer -- the figure the event simulator's
  // memory planner reports for a program-order schedule. When the plan carries a
  // MemorySchedule this is instead the scheduled peak (offloaded buffers charged only
  // at the ops that touch them, memory/schedule.h). What the budget check and
  // feasibility verdict use.
  std::int64_t peak_shard_bytes = 0;
  // Schedule-independent upper bound: every tensor's shard resident at once (no
  // liveness credit). Kept for reporting; always >= peak_shard_bytes.
  std::int64_t all_resident_bytes = 0;
  // Advisory verdict against topology.memory_bytes_per_worker (true when unknown).
  bool fits_device_memory = true;
  // Estimated per-step communication time (weighted step bytes / link bandwidth; with
  // an interconnect the bandwidth is the contention-aware effective figure).
  std::vector<double> step_seconds;
  double estimated_comm_seconds = 0.0;
  // Only with a topology interconnect: the plan's communication replayed through the
  // event simulator's link-level queueing (SimPlanCommSeconds) -- the simulated
  // critical-path time that gates the analytic estimate. 0 otherwise.
  double simulated_comm_seconds = 0.0;
  // Only when the plan carries a MemorySchedule (the recursive search's repair pass
  // made an over-budget plan fit by swapping / recomputing buffers, memory/repair.h):
  // the schedule's analytic overhead -- max(swap_seconds, recompute_seconds), the
  // work-conserving lower bound -- and the same schedule replayed event-driven through
  // the simulator (memory/sim_replay.h). The replay is guaranteed within
  // [analytic, 2 * analytic]. Both 0 for schedule-free plans.
  double memory_overhead_seconds = 0.0;
  double simulated_memory_seconds = 0.0;
  SearchStats search_stats;
  // True when the plan came from the session's cache rather than a fresh search.
  bool from_cache = false;
  // True when this response is a copy of a concurrent identical request's search result
  // (single-flight): this caller paid a wait, not a search.
  bool coalesced = false;
};

// One row of a comm-time / peak-memory / recompute frontier (Session::MemoryFrontier):
// what the cheapest plan under `budget_bytes` costs, and how much of that cost is the
// memory schedule's swap / recompute overhead. Budgets below the minimum achievable
// peak come back with feasible == false rather than failing the whole sweep.
struct FrontierPoint {
  std::int64_t budget_bytes = 0;
  bool feasible = false;
  std::int64_t peak_shard_bytes = 0;
  double comm_seconds = 0.0;
  // Analytic schedule overhead and its event-sim replay (0 when the plan fit without
  // a schedule -- the frontier's all-resident regime).
  double memory_overhead_seconds = 0.0;
  double simulated_memory_seconds = 0.0;
  double swap_bytes = 0.0;
  double recompute_seconds = 0.0;
};

// Snapshot of the cache counters (the live counters are atomics inside the Session).
// For any set of completed Partition calls that passed request validation,
// hits + misses + coalesced == number of calls: every such request is served from the
// cache, pays for a search, or rides a concurrent identical search -- exactly one.
struct PlanCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  // Requests that blocked on another thread's in-flight identical search and received
  // a copy of its result (single-flight).
  std::int64_t coalesced = 0;
  // Cache entries whose plan failed ValidatePlanForGraph against the request's graph: a
  // 64-bit GraphSignature collision (or an entry poisoned through the test hook). Such
  // hits fall through to a fresh search instead of serving the wrong plan.
  std::int64_t collisions = 0;
  // LRU entries dropped because a shard exceeded its capacity.
  std::int64_t evictions = 0;
};

class Session {
 public:
  // max_cached_plans bounds the plan cache (sharded least-recently-used eviction) so a
  // long-lived serving session over a stream of distinct graphs cannot grow without
  // limit; 0 disables caching entirely (single-flight still coalesces concurrent
  // identical requests). cache_shards spreads the cache over independently locked
  // shards; it is clamped so tiny caches stay exact (see util/sharded_lru.h).
  explicit Session(DeviceTopology topology = {}, size_t max_cached_plans = 128,
                   size_t cache_shards = 8)
      : topology_(std::move(topology)), cache_(max_cached_plans, cache_shards) {}

  // Validates the request, serves it from the plan cache when an identical one was seen
  // before (cache hits are re-validated against the graph -- a signature collision
  // falls through to a fresh search), joins an identical in-flight search when one is
  // running (single-flight), and otherwise runs the requested algorithm. Safe to call
  // from any number of threads concurrently. Never aborts on user error:
  //   * kInvalidArgument -- null graph, or a topology with < 1 worker;
  //   * kNotFound        -- an operator in the graph has no TDL registry entry;
  //   * kResourceExhausted -- memory_budget_bytes > 0 and no searched configuration's
  //                           liveness-aware peak fits it (the message reports the
  //                           deficit and which bound is binding).
  Result<PartitionResponse> Partition(const PartitionRequest& request);

  // The comm-time / peak-memory / recompute frontier: one Partition call per budget in
  // `budgets` (request.memory_budget_bytes is overwritten), each row recording the
  // winning plan's peak, comm time, and schedule overhead. A kResourceExhausted budget
  // becomes an infeasible row; any other error aborts the sweep. Every row rides the
  // plan cache and the step-table cache, so a ladder over one model re-prices steps
  // instead of re-deriving them.
  Result<std::vector<FrontierPoint>> MemoryFrontier(
      PartitionRequest request, const std::vector<std::int64_t>& budgets);

  const DeviceTopology& topology() const { return topology_; }
  PlanCacheStats cache_stats() const;
  void ClearPlanCache() { cache_.Clear(); }

  // The session's cross-request step-compilation cache (incremental re-planning,
  // partition/dp.h). Plan-cache MISSES that differ from an earlier request only in
  // fields outside the step cache's key -- memory budget, bandwidths, thread count --
  // reuse the earlier request's per-step cost tables instead of recomputing them.
  // Exposed for tests and diagnostics; safe to read concurrently.
  StepTableCache::Stats step_table_cache_stats() const { return step_tables_.stats(); }

  // Test-only: plants `response` in the plan cache under `request`'s key, exactly as a
  // fresh search would have. Exists so the collision fall-through (a cached plan that
  // does not validate against the request's graph) can be exercised without forging a
  // 64-bit GraphSignature collision.
  void InsertPlanForTesting(const PartitionRequest& request, PartitionResponse response);

  // Test-only: `hook` runs on the searching (leader) thread right before each fresh
  // search, after the miss is counted. Concurrency tests use it to count searches and
  // to hold the leader mid-flight until every racer has coalesced. Set it before
  // concurrent Partition calls begin; not synchronized itself.
  void SetSearchStartHookForTesting(std::function<void(const std::string& key)> hook) {
    search_hook_ = std::move(hook);
  }

 private:
  // One in-flight search; waiters share the future and copy the leader's result.
  struct Flight {
    Flight() : future(promise.get_future().share()) {}
    std::promise<Result<PartitionResponse>> promise;
    std::shared_future<Result<PartitionResponse>> future;
  };

  std::string CacheKey(const PartitionRequest& request) const;
  // The full miss path: registry scan, the requested algorithm's search, memory
  // accounting, cache insertion, budget verdict. Runs on the leader thread only.
  Result<PartitionResponse> SearchAndCache(const PartitionRequest& request,
                                           const std::string& key);

  DeviceTopology topology_;
  ShardedLruCache<PartitionResponse> cache_;
  // Step-compilation cache shared by every search this session runs (thread-safe; the
  // DP only reads immutable published entries). Sized generously: one entry per
  // (graph, shapes, ways) step, and a recursion over a deep model touches tens.
  StepTableCache step_tables_;
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> coalesced_{0};
  std::atomic<std::int64_t> collisions_{0};
  std::mutex inflight_mu_;  // guards inflight_ (the single-flight table)
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_;
  std::function<void(const std::string&)> search_hook_;
};

}  // namespace tofu

#endif  // TOFU_CORE_SESSION_H_
