#include "tofu/core/partitioner.h"

#include "tofu/util/logging.h"

namespace tofu {

const char* AlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kTofu:
      return "Tofu";
    case PartitionAlgorithm::kIcml18:
      return "ICML18";
    case PartitionAlgorithm::kEqualChop:
      return "EqualChop";
    case PartitionAlgorithm::kSpartan:
      return "Spartan";
    case PartitionAlgorithm::kAllRowGreedy:
      return "AllRow-Greedy";
    case PartitionAlgorithm::kDataParallel:
      return "DataParallel";
  }
  return "?";
}

PartitionPlan Partitioner::Partition(const Graph& graph, int num_workers,
                                     PartitionAlgorithm algorithm) const {
  switch (algorithm) {
    case PartitionAlgorithm::kTofu:
      return RecursivePartition(graph, num_workers, options_);
    case PartitionAlgorithm::kIcml18:
      return Icml18Plan(graph, num_workers, options_);
    case PartitionAlgorithm::kEqualChop:
      return EqualChopPlan(graph, num_workers, options_);
    case PartitionAlgorithm::kSpartan:
      return SpartanGreedyPlan(graph, num_workers);
    case PartitionAlgorithm::kAllRowGreedy:
      return AllRowGreedyPlan(graph, num_workers);
    case PartitionAlgorithm::kDataParallel:
      return DataParallelPlan(graph, num_workers);
  }
  TOFU_LOG(Fatal) << "unreachable";
  return {};
}

}  // namespace tofu
