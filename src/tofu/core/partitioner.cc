#include "tofu/core/partitioner.h"

#include "tofu/util/logging.h"

namespace tofu {

PartitionPlan Partitioner::Partition(const Graph& graph, int num_workers,
                                     PartitionAlgorithm algorithm) const {
  // One throwaway uniform-topology session per call: the legacy facade is stateless, so
  // it cannot carry the session's plan cache (that is the point of migrating) -- caching
  // is disabled to skip the dead deep-copy into a cache that dies with the session.
  Session session(DeviceTopology::Uniform(num_workers), /*max_cached_plans=*/0);
  PartitionRequest request;
  request.graph = &graph;
  request.algorithm = algorithm;
  request.options = options_;
  Result<PartitionResponse> response = session.Partition(request);
  TOFU_CHECK(response.ok()) << "Partitioner::Partition: " << response.status().ToString();
  return std::move(*response).plan;
}

}  // namespace tofu
