#include "tofu/core/report.h"

#include <map>
#include <sstream>

#include "tofu/memory/schedule.h"
#include "tofu/util/strings.h"

namespace tofu {

std::string PlanSummary(const Graph& /*graph*/, const PartitionPlan& plan) {
  std::ostringstream out;
  out << StrFormat("plan for %d workers, total comm %s\n", plan.num_workers,
                   HumanBytes(plan.total_comm_bytes).c_str());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const BasicPlan& step = plan.steps[i];
    std::map<int, int> cut_histogram;
    for (int cut : step.tensor_cut) {
      ++cut_histogram[cut];
    }
    std::vector<std::string> parts;
    for (const auto& [cut, count] : cut_histogram) {
      parts.push_back(cut == kReplicated ? StrFormat("rep:%d", count)
                                         : StrFormat("d%d:%d", cut, count));
    }
    out << StrFormat("  step %zu: x%d, weighted cost %s, cuts {%s}\n", i, step.ways,
                     HumanBytes(plan.weighted_step_costs[i]).c_str(),
                     Join(parts, " ").c_str());
  }
  if (plan.search_stats.states_explored > 0) {
    out << StrFormat(
        "  search: %lld cost evaluations, peak frontier %lld states, %lld table cells, "
        "%s%s%s\n",
        static_cast<long long>(plan.search_stats.states_explored),
        static_cast<long long>(plan.search_stats.max_frontier_states),
        static_cast<long long>(plan.search_stats.cost_table_entries),
        HumanSeconds(plan.search_stats.wall_seconds).c_str(),
        plan.search_stats.memory_pruned_states > 0
            ? StrFormat(", %lld memory-pruned states",
                        static_cast<long long>(
                            plan.search_stats.memory_pruned_states))
                  .c_str()
            : "",
        plan.search_stats.exact ? "" : " (beam-degraded, approximate)");
  }
  if (!plan.steps.empty() && plan.steps.back().peak_shard_bytes > 0.0) {
    out << StrFormat(
        "  memory: %s resident per worker (all shards)%s%s\n",
        HumanBytes(plan.steps.back().peak_shard_bytes).c_str(),
        plan.memory_budget_bytes > 0
            ? StrFormat(", budget %s",
                        HumanBytes(static_cast<double>(plan.memory_budget_bytes))
                            .c_str())
                  .c_str()
            : "",
        // Not "infeasible" outright: the session's verdict uses the liveness-aware
        // peak, which can accept a plan the search's all-resident model could not.
        plan.memory_feasible ? "" : " (over budget in the search's all-resident model)");
  }
  if (plan.memory_schedule != nullptr && !plan.memory_schedule->decisions.empty()) {
    const MemorySchedule& schedule = *plan.memory_schedule;
    int swapped = 0, recomputed = 0;
    for (const MemoryDecision& d : schedule.decisions) {
      if (d.residency == Residency::kSwap) ++swapped;
      if (d.residency == Residency::kRecompute) ++recomputed;
    }
    out << StrFormat(
        "  schedule: %d swapped + %d recomputed buffers, peak %s -> %s, overhead %s\n",
        swapped, recomputed, HumanBytes(static_cast<double>(schedule.baseline_peak_bytes)).c_str(),
        HumanBytes(static_cast<double>(schedule.scheduled_peak_bytes)).c_str(),
        HumanSeconds(schedule.AnalyticOverheadSeconds()).c_str());
  }
  return out.str();
}

std::string TilingReport(const Graph& graph, const PartitionPlan& plan) {
  // Unique (operator, weight tiling, activation tiling) signatures in first-appearance
  // order, with repetition counts -- Figure 11's "xN" notation for repeated residual
  // blocks.
  std::vector<std::pair<std::string, int>> lines;
  std::map<std::string, size_t> index;
  for (const OpNode& op : graph.ops()) {
    if (op.is_backward || (op.type != "conv2d" && op.type != "matmul")) {
      continue;
    }
    const TensorNode& data = graph.tensor(op.inputs[0]);
    const TensorNode& weight = graph.tensor(op.inputs[1]);
    std::string line = StrFormat(
        "  %-8s weight %-18s [%-12s]   activation %-20s [%-12s]", op.type.c_str(),
        ShapeToString(weight.shape).c_str(), plan.DescribeTiling(graph, weight.id).c_str(),
        ShapeToString(data.shape).c_str(), plan.DescribeTiling(graph, data.id).c_str());
    auto it = index.find(line);
    if (it == index.end()) {
      index.emplace(line, lines.size());
      lines.push_back({std::move(line), 1});
    } else {
      ++lines[it->second].second;
    }
  }
  std::ostringstream out;
  for (const auto& [line, count] : lines) {
    out << line;
    if (count > 1) {
      out << StrFormat("   x%d", count);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace tofu
