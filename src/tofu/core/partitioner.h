// DEPRECATED one-shot facade, kept as a thin shim over the session API (core/session.h).
//
//   tofu::Partitioner partitioner;
//   tofu::PartitionPlan plan = partitioner.Partition(model.graph, /*num_workers=*/8);
//
// delegates to a default-topology (uniform-bandwidth) tofu::Session and keeps the old
// abort-on-error contract: any Status a Session would return recoverable becomes a
// TOFU_CHECK failure here. New code should construct a Session -- it adds device
// topology, memory budgets, recoverable errors, plan caching and serializable plans.
#ifndef TOFU_CORE_PARTITIONER_H_
#define TOFU_CORE_PARTITIONER_H_

#include "tofu/core/session.h"

namespace tofu {

class Partitioner {
 public:
  explicit Partitioner(PartitionOptions options = {}) : options_(options) {}

  // Partitions across num_workers workers with the chosen algorithm. Aborts on user
  // error (use Session::Partition for a recoverable Result instead).
  PartitionPlan Partition(const Graph& graph, int num_workers,
                          PartitionAlgorithm algorithm = PartitionAlgorithm::kTofu) const;

  const PartitionOptions& options() const { return options_; }

 private:
  PartitionOptions options_;
};

}  // namespace tofu

#endif  // TOFU_CORE_PARTITIONER_H_
