// Public facade: the one-stop API a downstream user calls to partition a model.
//
//   tofu::Partitioner partitioner;
//   tofu::PartitionPlan plan = partitioner.Partition(model.graph, /*num_workers=*/8);
//
// The same program written for one device runs on many: the plan assigns every tensor a
// tiling and every operator a partition-n-reduce strategy per recursive step, and the
// simulator (or a real backend) lowers it to per-worker execution. The returned plan
// also carries PartitionPlan::search_stats -- the aggregated effort of the packed-state
// search engine (docs/search.md) -- so callers can assert on how hard the search worked
// (zero for the greedy baselines, which run no DP).
#ifndef TOFU_CORE_PARTITIONER_H_
#define TOFU_CORE_PARTITIONER_H_

#include <string>

#include "tofu/partition/baselines.h"
#include "tofu/partition/recursive.h"

namespace tofu {

// Named algorithm selector (Figure 10's comparison set plus classic data parallelism).
enum class PartitionAlgorithm {
  kTofu,          // recursive DP with output-reduction strategies
  kIcml18,        // recursive DP without output-reduction
  kEqualChop,     // single k-way DP step (one dimension per tensor)
  kSpartan,       // largest-tensor-first greedy
  kAllRowGreedy,  // everything split along dimension 0
  kDataParallel,  // activations batch-split, model state replicated (all-reduce grads)
};

const char* AlgorithmName(PartitionAlgorithm algorithm);

class Partitioner {
 public:
  explicit Partitioner(PartitionOptions options = {}) : options_(options) {}

  // Partitions across num_workers workers with the chosen algorithm.
  PartitionPlan Partition(const Graph& graph, int num_workers,
                          PartitionAlgorithm algorithm = PartitionAlgorithm::kTofu) const;

  const PartitionOptions& options() const { return options_; }

 private:
  PartitionOptions options_;
};

}  // namespace tofu

#endif  // TOFU_CORE_PARTITIONER_H_
