#include "tofu/core/session.h"

#include <algorithm>

#include "tofu/interconnect/sim_bridge.h"
#include "tofu/memory/liveness.h"
#include "tofu/memory/repair.h"
#include "tofu/memory/schedule.h"
#include "tofu/memory/sim_replay.h"
#include "tofu/partition/plan_io.h"
#include "tofu/pipeline/compose.h"
#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

const char* AlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kTofu:
      return "Tofu";
    case PartitionAlgorithm::kIcml18:
      return "ICML18";
    case PartitionAlgorithm::kEqualChop:
      return "EqualChop";
    case PartitionAlgorithm::kSpartan:
      return "Spartan";
    case PartitionAlgorithm::kAllRowGreedy:
      return "AllRow-Greedy";
    case PartitionAlgorithm::kDataParallel:
      return "DataParallel";
    case PartitionAlgorithm::kHybrid:
      return "Hybrid";
  }
  return "?";
}

namespace {

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kTofu,         PartitionAlgorithm::kIcml18,
    PartitionAlgorithm::kEqualChop,    PartitionAlgorithm::kSpartan,
    PartitionAlgorithm::kAllRowGreedy, PartitionAlgorithm::kDataParallel,
    PartitionAlgorithm::kHybrid,
};

}  // namespace

Result<PartitionAlgorithm> AlgorithmFromName(const std::string& name) {
  std::vector<std::string> known;
  for (PartitionAlgorithm algorithm : kAllAlgorithms) {
    if (name == AlgorithmName(algorithm)) {
      return algorithm;
    }
    known.push_back(AlgorithmName(algorithm));
  }
  return Status(StatusCode::kInvalidArgument,
                StrFormat("unknown algorithm '%s' (known: %s)", name.c_str(),
                          Join(known, ", ").c_str()));
}

double DeviceTopology::BandwidthForStep(size_t step) const {
  return LevelBandwidth(level_bandwidths, uniform_bandwidth, step);
}

std::string DeviceTopology::Fingerprint() const {
  std::string out = StrFormat("w=%d;ub=%.17g;mem=%lld;lv=", num_workers, uniform_bandwidth,
                              static_cast<long long>(memory_bytes_per_worker));
  for (double b : level_bandwidths) {
    out += StrFormat("%.17g,", b);
  }
  if (interconnect != nullptr) {
    out += ";net=" + interconnect->Fingerprint();
  }
  return out;
}

DeviceTopology DeviceTopology::Uniform(int num_workers, double bandwidth) {
  DeviceTopology topology;
  topology.num_workers = num_workers;
  topology.uniform_bandwidth = bandwidth;
  return topology;
}

DeviceTopology DeviceTopology::WithInterconnect(std::shared_ptr<const Interconnect> net,
                                                std::int64_t memory_bytes_per_worker) {
  DeviceTopology topology;
  TOFU_CHECK(net != nullptr);
  topology.num_workers = net->num_workers();
  topology.memory_bytes_per_worker = memory_bytes_per_worker;
  topology.interconnect = std::move(net);
  return topology;
}

DeviceTopology DeviceTopology::FromCluster(const ClusterSpec& cluster) {
  DeviceTopology topology;
  topology.num_workers = cluster.num_gpus;
  topology.uniform_bandwidth = cluster.p2p_bandwidth;
  // Coarsest split first: its traffic crosses the shared host link between the PCIe
  // root complexes; everything deeper stays peer-to-peer.
  topology.level_bandwidths = {cluster.cpu_bandwidth, cluster.p2p_bandwidth};
  topology.memory_bytes_per_worker = static_cast<std::int64_t>(cluster.gpu.mem_capacity);
  return topology;
}

PlanCacheStats Session::cache_stats() const {
  PlanCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.coalesced = coalesced_.load(std::memory_order_relaxed);
  stats.collisions = collisions_.load(std::memory_order_relaxed);
  stats.evictions = cache_.evictions();
  return stats;
}

// Includes memory_budget_bytes: since the budget became a first-class search constraint
// (it steers which states survive the DP and whether the ordering / lightest-cuts
// fallbacks engage), two requests differing only in budget can legitimately produce
// different plans, so they must not share a cache entry. A retry with a bigger budget
// is therefore a fresh search -- which is exactly what can now succeed where the
// smaller budget failed. The option fields come through PartitionOptions::Fingerprint,
// defined next to the structs so new fields cannot be forgotten here.
std::string Session::CacheKey(const PartitionRequest& request) const {
  return StrFormat("g=%016llx;a=%d;rb=%lld;",
                   static_cast<unsigned long long>(GraphSignature(*request.graph)),
                   static_cast<int>(request.algorithm),
                   static_cast<long long>(request.memory_budget_bytes)) +
         request.options.Fingerprint() + "topo=" + topology_.Fingerprint();
}

namespace {

// The hard verdict against the request budget, phrased so the user fixes the RIGHT
// knob: when the topology's per-worker device memory is smaller than the requested
// budget, raising memory_budget_bytes cannot possibly help -- the device bound is the
// binding constraint and the message says so. A plan the search itself already proved
// unbeatable (memory_feasible == false) reports the deficit as final rather than as a
// property of one plan. For pure plans the message also quotes the floor: the minimum
// achievable peak with every buffer offloaded (MinAchievablePeakBytes) -- the number
// that tells the user whether ANY recompute/swap schedule could ever fit the budget,
// or whether only more workers can.
Status BudgetCheck(const Graph& graph, const PartitionResponse& response,
                   std::int64_t budget, std::int64_t device_memory) {
  if (budget <= 0 || response.peak_shard_bytes <= budget) {
    return Status::Ok();
  }
  const char* severity = response.plan.memory_feasible
                             ? "the chosen plan needs"
                             : "no searched configuration fits: the lightest plan "
                               "still needs";
  std::string advice;
  if (device_memory > 0 && device_memory < budget) {
    advice = StrFormat(
        "the topology's memory_bytes_per_worker (%s) is below the requested budget, so "
        "raising memory_budget_bytes cannot help; add workers or use larger devices",
        HumanBytes(static_cast<double>(device_memory)).c_str());
  } else {
    advice = "add workers or raise memory_budget_bytes";
  }
  std::string floor_note;
  if (response.plan.pipeline == nullptr && !response.plan.steps.empty()) {
    floor_note = StrFormat(
        " (minimum achievable peak with every buffer swapped or recomputed: %s)",
        HumanBytes(static_cast<double>(
                       MinAchievablePeakBytes(graph, response.plan)))
            .c_str());
  }
  return Status(
      StatusCode::kResourceExhausted,
      StrFormat("%s %s per worker but the budget is %s (deficit %s); %s%s", severity,
                HumanBytes(static_cast<double>(response.peak_shard_bytes)).c_str(),
                HumanBytes(static_cast<double>(budget)).c_str(),
                HumanBytes(static_cast<double>(response.peak_shard_bytes - budget))
                    .c_str(),
                advice.c_str(), floor_note.c_str()));
}

}  // namespace

Result<PartitionResponse> Session::Partition(const PartitionRequest& request) {
  if (request.graph == nullptr) {
    return Status(StatusCode::kInvalidArgument, "PartitionRequest.graph is null");
  }
  if (topology_.num_workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("DeviceTopology.num_workers = %d; need >= 1",
                            topology_.num_workers));
  }
  // Every bandwidth divides a byte count somewhere downstream; zero or negative ones
  // would turn into inf/NaN estimates inside an ok() response.
  if (topology_.uniform_bandwidth <= 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("DeviceTopology.uniform_bandwidth = %g; need > 0",
                            topology_.uniform_bandwidth));
  }
  for (double b : topology_.level_bandwidths) {
    if (b <= 0.0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("DeviceTopology.level_bandwidths entry %g; need > 0", b));
    }
  }
  if (topology_.interconnect != nullptr &&
      topology_.interconnect->num_workers() != topology_.num_workers) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("DeviceTopology.interconnect has %d workers but "
                            "num_workers = %d; they must agree",
                            topology_.interconnect->num_workers(),
                            topology_.num_workers));
  }
  for (double b : request.options.step_bandwidths) {
    if (b <= 0.0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("PartitionOptions.step_bandwidths entry %g; need > 0", b));
    }
  }
  const Graph& graph = *request.graph;
  const std::string key = CacheKey(request);

  // Fast path: a completed identical request left its response in the cache.
  if (std::optional<PartitionResponse> cached = cache_.Lookup(key)) {
    if (ValidatePlanForGraph(graph, cached->plan).ok()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      // The budget is part of the key, so a hit was searched under this exact budget
      // and the verdict below merely repeats what the insertion-time check concluded
      // (an infeasible request fails fast here without re-searching).
      TOFU_RETURN_IF_ERROR(BudgetCheck(graph, *cached, request.memory_budget_bytes,
                                       topology_.memory_bytes_per_worker));
      cached->from_cache = true;
      return *std::move(cached);
    }
    // The 64-bit GraphSignature collided: the cached plan belongs to a different graph.
    // Serving it would be silently wrong; drop the stale entry and fall through to a
    // fresh search (latest graph wins) and count the event.
    collisions_.fetch_add(1, std::memory_order_relaxed);
    cache_.Erase(key);
  }

  // Single-flight: exactly one thread (the leader) searches a given key at a time;
  // every other concurrent identical request blocks on the leader's future and copies
  // its result -- N racing requests cost one search.
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    std::shared_ptr<Flight>& slot = inflight_[key];
    if (slot == nullptr) {
      slot = std::make_shared<Flight>();
      leader = true;
    }
    flight = slot;
  }
  if (!leader) {
    // Count BEFORE blocking: a test hook can hold the leader until every racer shows
    // up in the coalesced counter, making "K threads -> 1 search" deterministic.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    Result<PartitionResponse> shared = flight->future.get();  // copies the leader's result
    if (shared.ok()) {
      shared->coalesced = true;
    }
    return shared;
  }

  // Leader double-check: between our cache miss and winning the flight, a previous
  // leader may have completed and retired -- its result is in the cache now. Serving it
  // keeps misses == distinct searches (and the response byte-identical either way).
  Result<PartitionResponse> result = [&]() -> Result<PartitionResponse> {
    if (std::optional<PartitionResponse> raced = cache_.Lookup(key)) {
      if (ValidatePlanForGraph(graph, raced->plan).ok()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        // A hit replays the insertion-time budget verdict, same as the fast path.
        TOFU_RETURN_IF_ERROR(BudgetCheck(graph, *raced, request.memory_budget_bytes,
                                         topology_.memory_bytes_per_worker));
        raced->from_cache = true;
        return *std::move(raced);
      }
    }
    return SearchAndCache(request, key);
  }();
  flight->promise.set_value(result);
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(key);
  }
  return result;
}

Result<PartitionResponse> Session::SearchAndCache(const PartitionRequest& request,
                                                  const std::string& key) {
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (search_hook_) {
    search_hook_(key);
  }
  const Graph& graph = *request.graph;

  // Reject graphs with unregistered operators up front: everything downstream (strategy
  // discovery, shape inference, lowering) assumes registry entries exist and aborts
  // otherwise. Builders cannot create such graphs, but deserialized or mutated ones
  // can. Runs after the cache lookup -- the key hashes every op type, so a hit implies
  // an identical op set already passed this scan when its entry was inserted.
  const OpRegistry& registry = OpRegistry::Get();
  for (const OpNode& op : graph.ops()) {
    if (!registry.Has(op.type)) {
      return Status(StatusCode::kNotFound,
                    StrFormat("operator '%s' (op #%d) has no TDL registry entry",
                              op.type.c_str(), op.id));
    }
  }

  // The recursion-based algorithms take the topology into the search: each step's bytes
  // are weighted by the link they cross, and non-uniform bandwidths trigger the factor-
  // ordering search (partition/recursive.h).
  PartitionOptions options = request.options;
  if (options.step_bandwidths.empty()) {
    if (topology_.interconnect != nullptr) {
      // Contention-aware effective bandwidth per recursive step, priced over the link
      // graph for the canonical factorization's group-local all-to-all patterns. On a
      // hierarchy (or any topology where the levels genuinely differ) these engage the
      // factor-ordering search, which then minimizes real transfer time.
      options.step_bandwidths = topology_.interconnect->StepBandwidths(
          FactorizeWorkers(topology_.num_workers));
    } else {
      options.step_bandwidths = topology_.level_bandwidths.empty()
                                    ? std::vector<double>{topology_.uniform_bandwidth}
                                    : topology_.level_bandwidths;
    }
  }
  // The request budget steers the recursion-based searches (memory as a first-class
  // constraint); a budget already set on the options (a direct RecursivePartition-style
  // caller) wins, mirroring step_bandwidths.
  if (options.memory_budget_bytes == 0) {
    options.memory_budget_bytes = request.memory_budget_bytes;
  }
  // The repair pass prices host swaps against the slowest link a shard's traffic can
  // cross: the interconnect's bottleneck link when one is modeled, else the coarsest
  // level's bandwidth (the shared host link on FromCluster topologies). A pricing the
  // caller set explicitly wins, mirroring step_bandwidths and the budget above.
  if (options.memory_pricing.host_bandwidth == 0.0) {
    if (topology_.interconnect != nullptr) {
      const std::vector<double>& bw = topology_.interconnect->links().bandwidth;
      options.memory_pricing.host_bandwidth =
          bw.empty() ? topology_.uniform_bandwidth
                     : *std::min_element(bw.begin(), bw.end());
    } else {
      options.memory_pricing.host_bandwidth = topology_.BandwidthForStep(0);
    }
  }
  // Incremental re-planning: every step DP this search runs consults the session's
  // compilation cache, so plan-cache misses that share step shapes with an earlier
  // request (e.g. a budget ladder over one model) skip recomputing cost tables.
  // Byte-identical to a cold search by construction (partition/dp.h).
  options.dp.step_table_cache = &step_tables_;

  PartitionResponse response;
  switch (request.algorithm) {
    case PartitionAlgorithm::kTofu:
      response.plan = RecursivePartition(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kIcml18:
      response.plan = Icml18Plan(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kEqualChop:
      response.plan = EqualChopPlan(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kSpartan:
      response.plan = SpartanGreedyPlan(graph, topology_.num_workers);
      break;
    case PartitionAlgorithm::kAllRowGreedy:
      response.plan = AllRowGreedyPlan(graph, topology_.num_workers);
      break;
    case PartitionAlgorithm::kDataParallel:
      response.plan = DataParallelPlan(graph, topology_.num_workers);
      break;
    case PartitionAlgorithm::kHybrid: {
      // The hybrid search composes pipeline stages with the same budget-aware recursive
      // DP kTofu runs inside each stage -- sharing this session's step-table cache --
      // and prices stage boundaries through the topology's interconnect when present.
      HybridOptions hybrid;
      hybrid.interconnect = topology_.interconnect;
      hybrid.fallback_bandwidth = topology_.BandwidthForStep(0);
      hybrid.cluster = K80Cluster();
      response.plan = HybridPartition(graph, topology_.num_workers, options, hybrid);
      break;
    }
    default:
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("unknown algorithm enum value %d",
                              static_cast<int>(request.algorithm)));
  }
  const PartitionPlan& plan = response.plan;

  // Liveness-aware per-worker peak -- the figure the event simulator's memory planner
  // would report for a program-order schedule -- plus the schedule-independent
  // all-resident upper bound for reporting. The budget check and feasibility verdict
  // use the peak: summing every shard as simultaneously resident overstated memory and
  // declared feasible plans infeasible. A hybrid plan's figures are the max over its
  // stages' stage-restricted peaks (pipeline/stage_cost.h): the whole-graph sweep would
  // wrongly charge every worker the full model, when each stage's workers hold only
  // their stage's state plus boundary activations.
  if (plan.pipeline != nullptr) {
    for (const PipelineStage& stage : plan.pipeline->stages) {
      response.peak_shard_bytes = std::max(response.peak_shard_bytes, stage.peak_bytes);
      response.all_resident_bytes =
          std::max(response.all_resident_bytes, stage.all_resident_bytes);
    }
  } else if (plan.memory_schedule != nullptr) {
    // The repair pass attached a schedule: the verdict figure is the scheduled peak
    // (offloaded buffers charged only at the ops that touch them) -- the number the
    // repair proved fits the budget. all_resident stays the schedule-independent
    // upper bound.
    response.peak_shard_bytes = plan.memory_schedule->scheduled_peak_bytes;
    response.all_resident_bytes = AllResidentShardBytes(graph, plan);
  } else {
    response.peak_shard_bytes = LivenessPeakShardBytes(graph, plan);
    response.all_resident_bytes = AllResidentShardBytes(graph, plan);
  }
  response.fits_device_memory =
      topology_.memory_bytes_per_worker <= 0 ||
      response.peak_shard_bytes <= topology_.memory_bytes_per_worker;

  // Topology-weighted step times. Recursion-based plans already carry them (the search
  // used them to pick the factor ordering); greedy baselines get them computed here from
  // the same weighted costs. Hybrid plans carry their aggregate figure (intra-stage
  // comm plus every boundary transfer) but no top-level steps.
  if (plan.pipeline != nullptr) {
    response.estimated_comm_seconds = plan.estimated_comm_seconds;
  } else if (plan.step_seconds.size() == plan.steps.size() && !plan.steps.empty()) {
    response.step_seconds = plan.step_seconds;
    response.estimated_comm_seconds = plan.estimated_comm_seconds;
  } else {
    double groups = 1.0;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const double weighted = i < plan.weighted_step_costs.size()
                                  ? plan.weighted_step_costs[i]
                                  : groups * plan.steps[i].comm_bytes;
      // Same effective bandwidths the recursion-based algorithms searched under, so
      // cross-algorithm time comparisons on one request are apples-to-apples.
      const double seconds = weighted / LevelBandwidth(options.step_bandwidths,
                                                       topology_.uniform_bandwidth, i);
      response.step_seconds.push_back(seconds);
      response.estimated_comm_seconds += seconds;
      groups *= static_cast<double>(plan.steps[i].ways);
    }
  }
  // With a concrete interconnect the analytic estimate above is a bound, not a
  // schedule; replay the plan's per-step traffic through the event simulator's
  // link-level queueing so the response carries the simulated critical-path time the
  // differential harness validates the estimate against.
  if (topology_.interconnect != nullptr && plan.pipeline == nullptr) {
    response.simulated_comm_seconds =
        SimPlanCommSeconds(*topology_.interconnect, plan);
  }
  // A plan that fits only by offloading pays for the offloads: surface the schedule's
  // analytic overhead and its event-driven replay so callers see where on the
  // comm-time / peak-memory / recompute frontier this plan sits (and tests can gate
  // analytic <= sim <= 2 * analytic).
  if (plan.memory_schedule != nullptr && plan.pipeline == nullptr) {
    response.memory_overhead_seconds = plan.memory_schedule->AnalyticOverheadSeconds();
    response.simulated_memory_seconds = SimulateScheduleSeconds(
        graph, plan, *plan.memory_schedule, options.memory_pricing);
  }
  response.search_stats = plan.search_stats;
  response.from_cache = false;

  // Cache before the budget check: the search is the expensive part, and a repeated
  // identical (infeasible) request should fail fast from the cache instead of
  // re-proving infeasibility. Insert overwrites a stale collision entry (latest graph
  // wins); per-shard LRU eviction keeps a long-lived session bounded.
  cache_.Insert(key, response);
  TOFU_RETURN_IF_ERROR(BudgetCheck(graph, response, request.memory_budget_bytes,
                                   topology_.memory_bytes_per_worker));
  return response;
}

Result<std::vector<FrontierPoint>> Session::MemoryFrontier(
    PartitionRequest request, const std::vector<std::int64_t>& budgets) {
  std::vector<FrontierPoint> frontier;
  frontier.reserve(budgets.size());
  for (std::int64_t budget : budgets) {
    request.memory_budget_bytes = budget;
    // The request budget (not a stale options override) must steer each row, or every
    // row would search under the first budget.
    request.options.memory_budget_bytes = 0;
    FrontierPoint point;
    point.budget_bytes = budget;
    Result<PartitionResponse> response = Partition(request);
    if (response.ok()) {
      point.feasible = true;
      point.peak_shard_bytes = response->peak_shard_bytes;
      point.comm_seconds = response->estimated_comm_seconds;
      point.memory_overhead_seconds = response->memory_overhead_seconds;
      point.simulated_memory_seconds = response->simulated_memory_seconds;
      if (response->plan.memory_schedule != nullptr) {
        point.swap_bytes = response->plan.memory_schedule->swap_bytes;
        point.recompute_seconds = response->plan.memory_schedule->recompute_seconds;
      }
    } else if (response.status().code() != StatusCode::kResourceExhausted) {
      // Infeasible budgets are frontier rows; anything else (bad graph, unknown op)
      // would poison every row the same way, so fail the sweep.
      return response.status();
    }
    frontier.push_back(point);
  }
  return frontier;
}

void Session::InsertPlanForTesting(const PartitionRequest& request,
                                   PartitionResponse response) {
  cache_.Insert(CacheKey(request), std::move(response));
}

}  // namespace tofu
