#include "tofu/core/session.h"

#include <algorithm>

#include "tofu/util/strings.h"

namespace tofu {

const char* AlgorithmName(PartitionAlgorithm algorithm) {
  switch (algorithm) {
    case PartitionAlgorithm::kTofu:
      return "Tofu";
    case PartitionAlgorithm::kIcml18:
      return "ICML18";
    case PartitionAlgorithm::kEqualChop:
      return "EqualChop";
    case PartitionAlgorithm::kSpartan:
      return "Spartan";
    case PartitionAlgorithm::kAllRowGreedy:
      return "AllRow-Greedy";
    case PartitionAlgorithm::kDataParallel:
      return "DataParallel";
  }
  return "?";
}

namespace {

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kTofu,         PartitionAlgorithm::kIcml18,
    PartitionAlgorithm::kEqualChop,    PartitionAlgorithm::kSpartan,
    PartitionAlgorithm::kAllRowGreedy, PartitionAlgorithm::kDataParallel,
};

}  // namespace

Result<PartitionAlgorithm> AlgorithmFromName(const std::string& name) {
  std::vector<std::string> known;
  for (PartitionAlgorithm algorithm : kAllAlgorithms) {
    if (name == AlgorithmName(algorithm)) {
      return algorithm;
    }
    known.push_back(AlgorithmName(algorithm));
  }
  return Status(StatusCode::kInvalidArgument,
                StrFormat("unknown algorithm '%s' (known: %s)", name.c_str(),
                          Join(known, ", ").c_str()));
}

double DeviceTopology::BandwidthForStep(size_t step) const {
  return LevelBandwidth(level_bandwidths, uniform_bandwidth, step);
}

std::string DeviceTopology::Fingerprint() const {
  std::string out = StrFormat("w=%d;ub=%.17g;mem=%lld;lv=", num_workers, uniform_bandwidth,
                              static_cast<long long>(memory_bytes_per_worker));
  for (double b : level_bandwidths) {
    out += StrFormat("%.17g,", b);
  }
  return out;
}

DeviceTopology DeviceTopology::Uniform(int num_workers, double bandwidth) {
  DeviceTopology topology;
  topology.num_workers = num_workers;
  topology.uniform_bandwidth = bandwidth;
  return topology;
}

DeviceTopology DeviceTopology::FromCluster(const ClusterSpec& cluster) {
  DeviceTopology topology;
  topology.num_workers = cluster.num_gpus;
  topology.uniform_bandwidth = cluster.p2p_bandwidth;
  // Coarsest split first: its traffic crosses the shared host link between the PCIe
  // root complexes; everything deeper stays peer-to-peer.
  topology.level_bandwidths = {cluster.cpu_bandwidth, cluster.p2p_bandwidth};
  topology.memory_bytes_per_worker = static_cast<std::int64_t>(cluster.gpu.mem_capacity);
  return topology;
}

void Session::ClearPlanCache() {
  plan_cache_.clear();
  cache_insertion_order_.clear();
}

// Deliberately excludes memory_budget_bytes: the budget never influences the search, it
// is a post-hoc check -- keying on it would re-run identical searches for every budget
// (and an infeasible request would re-search on every retry). The option fields come
// through PartitionOptions::Fingerprint, defined next to the structs so new fields
// cannot be forgotten here.
std::string Session::CacheKey(const PartitionRequest& request) const {
  return StrFormat("g=%016llx;a=%d;",
                   static_cast<unsigned long long>(GraphSignature(*request.graph)),
                   static_cast<int>(request.algorithm)) +
         request.options.Fingerprint() + "topo=" + topology_.Fingerprint();
}

namespace {

Status BudgetCheck(const PartitionResponse& response, std::int64_t budget) {
  if (budget > 0 && response.peak_shard_bytes > budget) {
    return Status(
        StatusCode::kResourceExhausted,
        StrFormat("plan needs %s per worker but the budget is %s (deficit %s); add "
                  "workers or raise memory_budget_bytes",
                  HumanBytes(static_cast<double>(response.peak_shard_bytes)).c_str(),
                  HumanBytes(static_cast<double>(budget)).c_str(),
                  HumanBytes(static_cast<double>(response.peak_shard_bytes - budget))
                      .c_str()));
  }
  return Status::Ok();
}

}  // namespace

Result<PartitionResponse> Session::Partition(const PartitionRequest& request) {
  if (request.graph == nullptr) {
    return Status(StatusCode::kInvalidArgument, "PartitionRequest.graph is null");
  }
  if (topology_.num_workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("DeviceTopology.num_workers = %d; need >= 1",
                            topology_.num_workers));
  }
  // Every bandwidth divides a byte count somewhere downstream; zero or negative ones
  // would turn into inf/NaN estimates inside an ok() response.
  if (topology_.uniform_bandwidth <= 0.0) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("DeviceTopology.uniform_bandwidth = %g; need > 0",
                            topology_.uniform_bandwidth));
  }
  for (double b : topology_.level_bandwidths) {
    if (b <= 0.0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("DeviceTopology.level_bandwidths entry %g; need > 0", b));
    }
  }
  for (double b : request.options.step_bandwidths) {
    if (b <= 0.0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("PartitionOptions.step_bandwidths entry %g; need > 0", b));
    }
  }
  const Graph& graph = *request.graph;

  const std::string key = CacheKey(request);
  auto it = plan_cache_.find(key);
  if (it != plan_cache_.end()) {
    ++cache_stats_.hits;
    // The budget is not part of the key (it never affects the search), so it is
    // re-applied to the cached result: a retry with a bigger budget reuses the plan.
    TOFU_RETURN_IF_ERROR(BudgetCheck(it->second, request.memory_budget_bytes));
    PartitionResponse response = it->second;  // copy; the cache keeps the original
    response.from_cache = true;
    return response;
  }
  ++cache_stats_.misses;

  // Reject graphs with unregistered operators up front: everything downstream (strategy
  // discovery, shape inference, lowering) assumes registry entries exist and aborts
  // otherwise. Builders cannot create such graphs, but deserialized or mutated ones
  // can. Runs after the cache lookup -- the key hashes every op type, so a hit implies
  // an identical op set already passed this scan when its entry was inserted.
  const OpRegistry& registry = OpRegistry::Get();
  for (const OpNode& op : graph.ops()) {
    if (!registry.Has(op.type)) {
      return Status(StatusCode::kNotFound,
                    StrFormat("operator '%s' (op #%d) has no TDL registry entry",
                              op.type.c_str(), op.id));
    }
  }

  // The recursion-based algorithms take the topology into the search: each step's bytes
  // are weighted by the link they cross, and non-uniform bandwidths trigger the factor-
  // ordering search (partition/recursive.h).
  PartitionOptions options = request.options;
  if (options.step_bandwidths.empty()) {
    options.step_bandwidths = topology_.level_bandwidths.empty()
                                  ? std::vector<double>{topology_.uniform_bandwidth}
                                  : topology_.level_bandwidths;
  }

  PartitionResponse response;
  switch (request.algorithm) {
    case PartitionAlgorithm::kTofu:
      response.plan = RecursivePartition(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kIcml18:
      response.plan = Icml18Plan(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kEqualChop:
      response.plan = EqualChopPlan(graph, topology_.num_workers, options);
      break;
    case PartitionAlgorithm::kSpartan:
      response.plan = SpartanGreedyPlan(graph, topology_.num_workers);
      break;
    case PartitionAlgorithm::kAllRowGreedy:
      response.plan = AllRowGreedyPlan(graph, topology_.num_workers);
      break;
    case PartitionAlgorithm::kDataParallel:
      response.plan = DataParallelPlan(graph, topology_.num_workers);
      break;
    default:
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("unknown algorithm enum value %d",
                              static_cast<int>(request.algorithm)));
  }
  const PartitionPlan& plan = response.plan;

  // Per-worker residency upper bound: every tensor's shard at once. Deliberately
  // conservative (no liveness / buffer-reuse credit), so "fits" here means the plan fits
  // under any execution order; the event simulator's memory planner reports the tighter
  // figure for a concrete schedule.
  std::int64_t peak = 0;
  for (const TensorNode& t : graph.tensors()) {
    peak += plan.ShardBytes(graph, t.id);
  }
  response.peak_shard_bytes = peak;
  response.fits_device_memory = topology_.memory_bytes_per_worker <= 0 ||
                                peak <= topology_.memory_bytes_per_worker;

  // Topology-weighted step times. Recursion-based plans already carry them (the search
  // used them to pick the factor ordering); greedy baselines get them computed here from
  // the same weighted costs.
  if (plan.step_seconds.size() == plan.steps.size() && !plan.steps.empty()) {
    response.step_seconds = plan.step_seconds;
    response.estimated_comm_seconds = plan.estimated_comm_seconds;
  } else {
    double groups = 1.0;
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      const double weighted = i < plan.weighted_step_costs.size()
                                  ? plan.weighted_step_costs[i]
                                  : groups * plan.steps[i].comm_bytes;
      // Same effective bandwidths the recursion-based algorithms searched under, so
      // cross-algorithm time comparisons on one request are apples-to-apples.
      const double seconds = weighted / LevelBandwidth(options.step_bandwidths,
                                                       topology_.uniform_bandwidth, i);
      response.step_seconds.push_back(seconds);
      response.estimated_comm_seconds += seconds;
      groups *= static_cast<double>(plan.steps[i].ways);
    }
  }
  response.search_stats = plan.search_stats;
  response.from_cache = false;

  // Cache before the budget check: the search is the expensive part, and a request that
  // fails its budget today may be retried with a bigger one (or more workers) tomorrow.
  // Oldest-first eviction keeps a long-lived session bounded.
  if (max_cached_plans_ > 0) {
    while (plan_cache_.size() >= max_cached_plans_) {
      plan_cache_.erase(cache_insertion_order_.front());
      cache_insertion_order_.pop_front();
    }
    plan_cache_.emplace(key, response);
    cache_insertion_order_.push_back(key);
  }
  TOFU_RETURN_IF_ERROR(BudgetCheck(response, request.memory_budget_bytes));
  return response;
}

}  // namespace tofu
