#include "tofu/core/experiment.h"

#include "tofu/util/strings.h"

namespace tofu {

ModelFactory WResNetFactory(int layers, int width) {
  return [layers, width](std::int64_t batch) {
    WResNetConfig config;
    config.layers = layers;
    config.width = width;
    config.batch = batch;
    return BuildWResNet(config);
  };
}

ModelFactory RnnFactory(int layers, std::int64_t hidden) {
  return [layers, hidden](std::int64_t batch) {
    RnnConfig config;
    config.layers = layers;
    config.hidden = hidden;
    config.batch = batch;
    return BuildRnn(config);
  };
}

int RnnLayerOf(const OpNode& op) {
  // Unroll keys look like "l3/gi/mmx"; anything else (projection head, loss) -> -1.
  if (op.unroll_key.size() >= 2 && op.unroll_key[0] == 'l' &&
      op.unroll_key[1] >= '0' && op.unroll_key[1] <= '9') {
    return std::atoi(op.unroll_key.c_str() + 1);
  }
  return -1;
}

std::string FormatBaselineRow(const BaselineRow& row, double ideal_throughput) {
  if (row.result.oom) {
    return StrFormat("  %-14s OOM", row.system.c_str());
  }
  const double rel = ideal_throughput > 0
                         ? row.result.samples_per_second / ideal_throughput
                         : 0.0;
  return StrFormat("  %-14s %8.1f samples/s  (%.2f of ideal, batch %lld, comm %4.1f%%)",
                   row.system.c_str(), row.result.samples_per_second, rel,
                   static_cast<long long>(row.result.batch),
                   row.result.comm_fraction * 100.0);
}

}  // namespace tofu
