// Plan reporting: human-readable summaries and the Figure-11-style tiling visualization
// (which tensor dimensions each recursive step cut, and what one worker ends up storing).
#ifndef TOFU_CORE_REPORT_H_
#define TOFU_CORE_REPORT_H_

#include <string>

#include "tofu/partition/plan.h"

namespace tofu {

// One line per recursive step: factor, chosen cuts histogram, weighted cost.
std::string PlanSummary(const Graph& graph, const PartitionPlan& plan);

// Figure-11-style rendering: for every convolution (or matmul), how its weight and
// activation tensors are tiled across workers, with repeated blocks collapsed ("xN").
std::string TilingReport(const Graph& graph, const PartitionPlan& plan);

}  // namespace tofu

#endif  // TOFU_CORE_REPORT_H_
