// Shared experiment configuration for the benchmark harness: the paper's testbed,
// model-specific batch caps, and the layer extraction used by Op-Placement.
#ifndef TOFU_CORE_EXPERIMENT_H_
#define TOFU_CORE_EXPERIMENT_H_

#include <functional>
#include <string>

#include "tofu/models/rnn.h"
#include "tofu/models/wresnet.h"
#include "tofu/sim/runtimes.h"

namespace tofu {

// The paper's per-experiment batch caps (§7.2): Ideal uses a saturating global batch; the
// memory-constrained systems search downward from it.
inline constexpr std::int64_t kWResNetIdealBatch = 128;
inline constexpr std::int64_t kRnnIdealBatch = 512;

ModelFactory WResNetFactory(int layers, int width);
ModelFactory RnnFactory(int layers, std::int64_t hidden);

// Pipeline stage of an RNN op for Op-Placement: the LSTM layer index from the unroll key
// ("l3/..." -> 3); the projection/loss head returns -1 (placed on the last GPU).
int RnnLayerOf(const OpNode& op);

// One row of a Figure 8/9-style comparison.
struct BaselineRow {
  std::string system;
  ThroughputResult result;
};

std::string FormatBaselineRow(const BaselineRow& row, double ideal_throughput);

}  // namespace tofu

#endif  // TOFU_CORE_EXPERIMENT_H_
