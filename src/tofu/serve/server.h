// The concurrent planning service behind tofu-pland.
//
// PlanService routes each request to a thread-safe Session keyed by the request's
// device topology (sessions are created lazily and live for the service's lifetime, so
// every request against the same topology shares one plan cache and one single-flight
// table). StreamServer drives a line-delimited JSON stream through the service on the
// fork-join thread pool: it reads requests in batches, dispatches a batch across
// ThreadPool::ParallelFor -- which is where concurrent identical requests actually race
// into the session and coalesce -- and writes one response line per request, in input
// order, so output is deterministic regardless of scheduling.
//
// Response line (schema tofu.serve.v1; docs/serving.md has the full story):
//   {"schema":"tofu.serve.v1","id":7,"ok":true,"model":"mlp","algorithm":"Tofu",
//    "workers":8,"from_cache":false,"coalesced":false,"elapsed_seconds":0.0123,
//    "peak_shard_bytes":...,"all_resident_bytes":...,"fits_device_memory":true,
//    "estimated_comm_seconds":...,"plan":{...tofu.plan.v2...}}
//   {"schema":"tofu.serve.v1","id":9,"ok":false,"code":"NOT_FOUND","error":"..."}
#ifndef TOFU_SERVE_SERVER_H_
#define TOFU_SERVE_SERVER_H_

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "tofu/core/session.h"
#include "tofu/serve/request.h"
#include "tofu/util/status.h"
#include "tofu/util/thread_pool.h"

namespace tofu {

struct PlanServiceOptions {
  size_t max_cached_plans = 256;  // per session (per distinct topology)
  size_t cache_shards = 8;
  // Threads per partition search (DpOptions::num_threads). 0 (the default) auto-sizes
  // from hardware_concurrency; any value yields byte-identical plans, so this is purely
  // a latency/contention knob for deployments that pin search parallelism (e.g. one
  // search thread when request-level parallelism already saturates the machine).
  int search_threads = 0;
};

// Thread-safe session router: one Session per distinct DeviceTopology fingerprint.
// Requests for eight workers and sixteen workers describe different search spaces, so
// they get separate plan caches; all threads asking for the same topology share one.
class PlanService {
 public:
  explicit PlanService(PlanServiceOptions options = {}) : options_(options) {}

  // Builds the request's model graph and partitions it on the topology's session.
  // Thread-safe; blocks only on the session's single-flight/search, never on other
  // topologies' searches.
  Result<PartitionResponse> Partition(const ServeRequest& request);

  // Counters summed across every session (a consistent-enough snapshot, like
  // Session::cache_stats()).
  PlanCacheStats cache_stats() const;
  size_t num_sessions() const;

 private:
  Session& SessionFor(const DeviceTopology& topology);

  PlanServiceOptions options_;
  mutable std::mutex mu_;  // guards sessions_ (the map, not the Sessions themselves)
  std::unordered_map<std::string, std::unique_ptr<Session>> sessions_;
};

struct StreamServerOptions {
  int threads = 4;         // worker threads dispatching each batch
  size_t batch_size = 64;  // requests pulled from the stream per ParallelFor round
  // When false, response lines omit the (large) "plan" member -- counters, memory
  // accounting and latency only. The load driver uses this to measure planning
  // throughput rather than JSON serialization throughput.
  bool include_plans = true;
  // Applied to requests that omit the "algorithm" field (tofu-pland --algo=NAME); an
  // explicit field in the request always wins.
  PartitionAlgorithm default_algorithm = PartitionAlgorithm::kTofu;
  // Applied to requests that omit the "memory_policy" field (tofu-pland
  // --memory-policy=NAME): what the search may do -- swap, recompute, both, or
  // nothing -- when no all-resident plan fits the request budget (memory/repair.h).
  MemoryPolicy default_memory_policy = MemoryPolicy::kAuto;
  PlanServiceOptions service;
};

// What one Serve() call did, measured over exactly that stream (cache counters are the
// delta across the call, so per-connection numbers stay meaningful on a shared service).
struct StreamServerMetrics {
  std::int64_t requests = 0;  // response lines written
  std::int64_t ok = 0;
  std::int64_t errors = 0;
  double elapsed_seconds = 0.0;  // first byte read -> last response flushed
  double p50_seconds = 0.0;      // per-request latency percentiles
  double p99_seconds = 0.0;
  PlanCacheStats cache;

  double qps() const { return elapsed_seconds > 0 ? requests / elapsed_seconds : 0.0; }
  // Fraction of validated requests served without paying for a search (hits plus
  // coalesced riders over hits + misses + coalesced).
  double hit_rate() const;

  std::string Summary() const;  // one human-readable line for stderr
  std::string ToJson() const;   // machine-readable (bench_serve --json)
};

class StreamServer {
 public:
  explicit StreamServer(StreamServerOptions options = {});

  // Reads line-delimited JSON requests from `in` until EOF, writes one response line
  // per request (input order) to `out`, returns this stream's metrics. Blank lines are
  // skipped; a malformed line still produces a response line (ok:false, id -1 when the
  // id cannot be recovered). Callable repeatedly; the plan caches persist across calls.
  StreamServerMetrics Serve(std::istream& in, std::ostream& out);

  PlanService& service() { return service_; }
  const StreamServerOptions& options() const { return options_; }

 private:
  StreamServerOptions options_;
  PlanService service_;
  ThreadPool pool_;
};

// Serializes one response line (no trailing newline). Exposed for tests and the load
// driver so they can compare against exactly what the server emits.
std::string ServeResponseLine(const ServeRequest& request,
                              const Result<PartitionResponse>& result,
                              double elapsed_seconds, bool include_plan);

// Parses `line` and serves it through `service`, timing the call. The building block
// Serve() dispatches onto the pool; exposed for the in-process load driver.
std::string HandleServeLine(
    PlanService& service, const std::string& line, bool include_plan,
    PartitionAlgorithm default_algorithm = PartitionAlgorithm::kTofu,
    MemoryPolicy default_memory_policy = MemoryPolicy::kAuto);

// Binds a Unix domain socket at `path` (unlinking any stale socket first) and serves
// connections sequentially, each with the full line-stream protocol; per-connection
// summaries go to `log`. Runs until accept fails (e.g. the socket is removed); returns
// the setup or accept error. SIGPIPE is ignored for the process.
Status ServeUnixSocket(StreamServer& server, const std::string& path,
                       std::ostream& log);

}  // namespace tofu

#endif  // TOFU_SERVE_SERVER_H_
