#include "tofu/serve/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>
#include <vector>

#include "tofu/partition/plan_io.h"
#include "tofu/util/json.h"

namespace tofu {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

bool IsBlank(const std::string& line) {
  for (char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

PlanCacheStats Subtract(const PlanCacheStats& after, const PlanCacheStats& before) {
  PlanCacheStats delta;
  delta.hits = after.hits - before.hits;
  delta.misses = after.misses - before.misses;
  delta.coalesced = after.coalesced - before.coalesced;
  delta.collisions = after.collisions - before.collisions;
  delta.evictions = after.evictions - before.evictions;
  return delta;
}

// latencies is sorted ascending; q in [0, 1].
double Percentile(const std::vector<double>& latencies, double q) {
  if (latencies.empty()) return 0.0;
  size_t index = static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
  return latencies[std::min(index, latencies.size() - 1)];
}

std::string ErrorResponseLine(std::int64_t id, const Status& status,
                              double elapsed_seconds) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kServeJsonSchema);
  w.Key("id").Int(id);
  w.Key("ok").Bool(false);
  w.Key("code").String(StatusCodeName(status.code()));
  w.Key("error").String(status.message());
  w.Key("elapsed_seconds").Number(elapsed_seconds);
  w.EndObject();
  return w.str();
}

std::string HandleLine(PlanService& service, const std::string& line,
                       bool include_plan, PartitionAlgorithm default_algorithm,
                       MemoryPolicy default_memory_policy, bool* ok_out) {
  const auto start = std::chrono::steady_clock::now();
  Result<ServeRequest> request =
      ParseServeRequest(line, default_algorithm, default_memory_policy);
  if (!request.ok()) {
    *ok_out = false;
    return ErrorResponseLine(-1, request.status(), SecondsSince(start));
  }
  Result<PartitionResponse> response = service.Partition(*request);
  *ok_out = response.ok();
  return ServeResponseLine(*request, response, SecondsSince(start), include_plan);
}

}  // namespace

Session& PlanService::SessionFor(const DeviceTopology& topology) {
  const std::string fingerprint = topology.Fingerprint();
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Session>& slot = sessions_[fingerprint];
  if (slot == nullptr) {
    slot = std::make_unique<Session>(topology, options_.max_cached_plans,
                                     options_.cache_shards);
  }
  return *slot;  // sessions are never erased, so the reference stays valid
}

Result<PartitionResponse> PlanService::Partition(const ServeRequest& request) {
  TOFU_ASSIGN_OR_RETURN(ModelGraph model, BuildServeModel(request));
  PartitionRequest partition;
  partition.graph = &model.graph;
  partition.algorithm = request.algorithm;
  partition.memory_budget_bytes = request.memory_budget_bytes;
  partition.options.memory_policy = request.memory_policy;
  partition.options.dp.num_threads = options_.search_threads;
  return SessionFor(request.topology).Partition(partition);
}

PlanCacheStats PlanService::cache_stats() const {
  PlanCacheStats total;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [fingerprint, session] : sessions_) {
    PlanCacheStats stats = session->cache_stats();
    total.hits += stats.hits;
    total.misses += stats.misses;
    total.coalesced += stats.coalesced;
    total.collisions += stats.collisions;
    total.evictions += stats.evictions;
  }
  return total;
}

size_t PlanService::num_sessions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

double StreamServerMetrics::hit_rate() const {
  const std::int64_t validated = cache.hits + cache.misses + cache.coalesced;
  if (validated == 0) return 0.0;
  return static_cast<double>(cache.hits + cache.coalesced) /
         static_cast<double>(validated);
}

std::string StreamServerMetrics::Summary() const {
  char buffer[512];
  std::snprintf(buffer, sizeof(buffer),
                "served %lld requests in %.3fs (%.1f qps): ok %lld, errors %lld; "
                "cache hit-rate %.1f%% (hits %lld, misses %lld, coalesced %lld, "
                "collisions %lld, evictions %lld); p50 %.3fms p99 %.3fms",
                static_cast<long long>(requests), elapsed_seconds, qps(),
                static_cast<long long>(ok), static_cast<long long>(errors),
                hit_rate() * 100.0, static_cast<long long>(cache.hits),
                static_cast<long long>(cache.misses),
                static_cast<long long>(cache.coalesced),
                static_cast<long long>(cache.collisions),
                static_cast<long long>(cache.evictions), p50_seconds * 1e3,
                p99_seconds * 1e3);
  return buffer;
}

std::string StreamServerMetrics::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("requests").Int(requests);
  w.Key("ok").Int(ok);
  w.Key("errors").Int(errors);
  w.Key("elapsed_seconds").Number(elapsed_seconds);
  w.Key("qps").Number(qps());
  w.Key("p50_seconds").Number(p50_seconds);
  w.Key("p99_seconds").Number(p99_seconds);
  w.Key("hit_rate").Number(hit_rate());
  w.Key("hits").Int(cache.hits);
  w.Key("misses").Int(cache.misses);
  w.Key("coalesced").Int(cache.coalesced);
  w.Key("collisions").Int(cache.collisions);
  w.Key("evictions").Int(cache.evictions);
  w.EndObject();
  return w.str();
}

std::string ServeResponseLine(const ServeRequest& request,
                              const Result<PartitionResponse>& result,
                              double elapsed_seconds, bool include_plan) {
  if (!result.ok()) {
    return ErrorResponseLine(request.id, result.status(), elapsed_seconds);
  }
  const PartitionResponse& response = *result;
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kServeJsonSchema);
  w.Key("id").Int(request.id);
  w.Key("ok").Bool(true);
  w.Key("model").String(request.model);
  w.Key("algorithm").String(AlgorithmName(request.algorithm));
  w.Key("workers").Int(request.topology.num_workers);
  w.Key("from_cache").Bool(response.from_cache);
  w.Key("coalesced").Bool(response.coalesced);
  w.Key("elapsed_seconds").Number(elapsed_seconds);
  w.Key("peak_shard_bytes").Int(response.peak_shard_bytes);
  w.Key("all_resident_bytes").Int(response.all_resident_bytes);
  w.Key("fits_device_memory").Bool(response.fits_device_memory);
  w.Key("estimated_comm_seconds").Number(response.estimated_comm_seconds);
  // Only for plans that fit via a repair schedule: the offload cost next to the comm
  // cost, so clients see the trade without parsing the plan's memory_schedule section.
  if (response.memory_overhead_seconds > 0.0) {
    w.Key("memory_overhead_seconds").Number(response.memory_overhead_seconds);
    w.Key("simulated_memory_seconds").Number(response.simulated_memory_seconds);
  }
  if (include_plan) {
    w.Key("plan").Raw(PlanToJson(response.plan));
  }
  w.EndObject();
  return w.str();
}

std::string HandleServeLine(PlanService& service, const std::string& line,
                            bool include_plan,
                            PartitionAlgorithm default_algorithm,
                            MemoryPolicy default_memory_policy) {
  bool ok = false;
  return HandleLine(service, line, include_plan, default_algorithm,
                    default_memory_policy, &ok);
}

StreamServer::StreamServer(StreamServerOptions options)
    : options_(options), service_(options.service), pool_(options.threads) {}

StreamServerMetrics StreamServer::Serve(std::istream& in, std::ostream& out) {
  StreamServerMetrics metrics;
  const PlanCacheStats before = service_.cache_stats();
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::string> batch;
  std::vector<double> latencies;
  auto flush = [&]() {
    if (batch.empty()) return;
    const std::int64_t n = static_cast<std::int64_t>(batch.size());
    std::vector<std::string> responses(batch.size());
    std::vector<char> oks(batch.size(), 0);
    std::vector<double> batch_latencies(batch.size(), 0.0);
    pool_.ParallelFor(n, [&](int /*shard*/, std::int64_t begin, std::int64_t end) {
      for (std::int64_t i = begin; i < end; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        bool ok = false;
        responses[i] = HandleLine(service_, batch[i], options_.include_plans,
                                  options_.default_algorithm,
                                  options_.default_memory_policy, &ok);
        oks[i] = ok ? 1 : 0;
        batch_latencies[i] = SecondsSince(t0);
      }
    });
    for (size_t i = 0; i < batch.size(); ++i) {
      out << responses[i] << '\n';
      metrics.requests += 1;
      metrics.ok += oks[i] ? 1 : 0;
      metrics.errors += oks[i] ? 0 : 1;
    }
    out.flush();
    latencies.insert(latencies.end(), batch_latencies.begin(),
                     batch_latencies.end());
    batch.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (IsBlank(line)) continue;
    batch.push_back(line);
    if (batch.size() >= std::max<size_t>(1, options_.batch_size)) flush();
  }
  flush();

  metrics.elapsed_seconds = SecondsSince(start);
  std::sort(latencies.begin(), latencies.end());
  metrics.p50_seconds = Percentile(latencies, 0.50);
  metrics.p99_seconds = Percentile(latencies, 0.99);
  metrics.cache = Subtract(service_.cache_stats(), before);
  return metrics;
}

namespace {

// Bidirectional streambuf over a connected socket; enough for getline in / lines out.
class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }
  ~FdStreamBuf() override { FlushOut(); }

 protected:
  int_type underflow() override {
    ssize_t n = ::read(fd_, in_, sizeof(in_));
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(in_[0]);
  }
  int_type overflow(int_type ch) override {
    if (FlushOut() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }
  int sync() override { return FlushOut(); }

 private:
  int FlushOut() {
    const char* p = pbase();
    size_t n = static_cast<size_t>(pptr() - pbase());
    while (n > 0) {
      ssize_t written = ::write(fd_, p, n);
      if (written <= 0) return -1;
      p += written;
      n -= static_cast<size_t>(written);
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[1 << 16];
  char out_[1 << 16];
};

Status Errno(const std::string& what) {
  return Status(StatusCode::kInternal, what + ": " + std::strerror(errno));
}

}  // namespace

Status ServeUnixSocket(StreamServer& server, const std::string& path,
                       std::ostream& log) {
  std::signal(SIGPIPE, SIG_IGN);  // a client hanging up must not kill the server
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status(StatusCode::kInvalidArgument, "socket path too long: " + path);
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) return Errno("socket(AF_UNIX)");
  ::unlink(path.c_str());  // a stale socket from a dead server would fail bind
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Errno("bind(" + path + ")");
    ::close(listener);
    return status;
  }
  if (::listen(listener, 16) != 0) {
    const Status status = Errno("listen(" + path + ")");
    ::close(listener);
    return status;
  }

  log << "tofu-pland: listening on " << path << std::endl;
  for (;;) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      const Status status = Errno("accept(" + path + ")");
      ::close(listener);
      return status;
    }
    FdStreamBuf buffer(conn);
    std::istream conn_in(&buffer);
    std::ostream conn_out(&buffer);
    const StreamServerMetrics metrics = server.Serve(conn_in, conn_out);
    conn_out.flush();
    ::close(conn);
    log << "tofu-pland: " << metrics.Summary() << std::endl;
  }
}

}  // namespace tofu
