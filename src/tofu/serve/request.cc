#include "tofu/serve/request.h"

#include <climits>
#include <utility>

#include "tofu/util/json.h"

namespace tofu {
namespace {

// Reads an optional integral field into *out, leaving it untouched when absent.
Status ReadInt(const JsonValue& object, const std::string& key, std::int64_t* out) {
  if (object.Find(key) == nullptr) return Status::Ok();
  TOFU_ASSIGN_OR_RETURN(*out, object.IntAt(key));
  return Status::Ok();
}

Status ReadInt(const JsonValue& object, const std::string& key, int* out) {
  std::int64_t wide = *out;
  TOFU_RETURN_IF_ERROR(ReadInt(object, key, &wide));
  if (wide < INT_MIN || wide > INT_MAX) {
    return Status(StatusCode::kInvalidArgument,
                  "field '" + key + "' out of int range: " + std::to_string(wide));
  }
  *out = static_cast<int>(wide);
  return Status::Ok();
}

Status ReadNumber(const JsonValue& object, const std::string& key, double* out) {
  if (object.Find(key) == nullptr) return Status::Ok();
  TOFU_ASSIGN_OR_RETURN(*out, object.NumberAt(key));
  return Status::Ok();
}

Status ReadBool(const JsonValue& object, const std::string& key, bool* out) {
  if (object.Find(key) == nullptr) return Status::Ok();
  TOFU_ASSIGN_OR_RETURN(*out, object.BoolAt(key));
  return Status::Ok();
}

Status ReadIntArray(const JsonValue& object, const std::string& key,
                    std::vector<std::int64_t>* out) {
  if (object.Find(key) == nullptr) return Status::Ok();
  TOFU_ASSIGN_OR_RETURN(const JsonValue* array, object.ArrayAt(key));
  std::vector<std::int64_t> values;
  values.reserve(array->AsArray().size());
  for (const JsonValue& element : array->AsArray()) {
    if (element.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    "field '" + key + "' must be an array of numbers");
    }
    values.push_back(element.AsInt());
  }
  *out = std::move(values);
  return Status::Ok();
}

Status ReadNumberArray(const JsonValue& object, const std::string& key,
                       std::vector<double>* out) {
  if (object.Find(key) == nullptr) return Status::Ok();
  TOFU_ASSIGN_OR_RETURN(const JsonValue* array, object.ArrayAt(key));
  std::vector<double> values;
  values.reserve(array->AsArray().size());
  for (const JsonValue& element : array->AsArray()) {
    if (element.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    "field '" + key + "' must be an array of numbers");
    }
    values.push_back(element.AsNumber());
  }
  *out = std::move(values);
  return Status::Ok();
}

Status RejectUnknownKeys(const JsonValue& object,
                         const std::vector<std::string>& known, const char* where) {
  for (const auto& [key, value] : object.AsObject()) {
    bool found = false;
    for (const std::string& name : known) {
      if (key == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status(StatusCode::kInvalidArgument,
                    std::string("unknown ") + where + " key '" + key + "'");
    }
  }
  return Status::Ok();
}

Status ParseConfig(const JsonValue& config, ServeRequest* request) {
  if (request->model == "mlp") {
    TOFU_RETURN_IF_ERROR(RejectUnknownKeys(
        config, {"batch", "layer_sizes", "with_bias"}, "mlp config"));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "batch", &request->mlp.batch));
    TOFU_RETURN_IF_ERROR(ReadIntArray(config, "layer_sizes", &request->mlp.layer_sizes));
    TOFU_RETURN_IF_ERROR(ReadBool(config, "with_bias", &request->mlp.with_bias));
    return Status::Ok();
  }
  if (request->model == "rnn") {
    TOFU_RETURN_IF_ERROR(RejectUnknownKeys(
        config, {"layers", "hidden", "batch", "timesteps", "embed"}, "rnn config"));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "layers", &request->rnn.layers));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "hidden", &request->rnn.hidden));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "batch", &request->rnn.batch));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "timesteps", &request->rnn.timesteps));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "embed", &request->rnn.embed));
    return Status::Ok();
  }
  if (request->model == "wresnet") {
    TOFU_RETURN_IF_ERROR(RejectUnknownKeys(
        config, {"layers", "width", "batch", "image", "classes"}, "wresnet config"));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "layers", &request->wresnet.layers));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "width", &request->wresnet.width));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "batch", &request->wresnet.batch));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "image", &request->wresnet.image));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "classes", &request->wresnet.classes));
    return Status::Ok();
  }
  if (request->model == "transformer") {
    TOFU_RETURN_IF_ERROR(RejectUnknownKeys(
        config,
        {"batch", "seq_len", "d_model", "d_ff", "heads", "layers", "num_classes"},
        "transformer config"));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "batch", &request->transformer.batch));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "seq_len", &request->transformer.seq_len));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "d_model", &request->transformer.d_model));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "d_ff", &request->transformer.d_ff));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "heads", &request->transformer.heads));
    TOFU_RETURN_IF_ERROR(ReadInt(config, "layers", &request->transformer.layers));
    TOFU_RETURN_IF_ERROR(
        ReadInt(config, "num_classes", &request->transformer.num_classes));
    return Status::Ok();
  }
  return Status(StatusCode::kInvalidArgument, "unknown model '" + request->model + "'");
}

Status RequirePositive(std::int64_t value, const char* name) {
  if (value <= 0) {
    return Status(StatusCode::kInvalidArgument,
                  std::string("config field '") + name +
                      "' must be positive, got " + std::to_string(value));
  }
  return Status::Ok();
}

}  // namespace

const std::vector<std::string>& KnownServeModels() {
  static const std::vector<std::string>* models =
      new std::vector<std::string>{"mlp", "rnn", "wresnet", "transformer"};
  return *models;
}

Result<ServeRequest> ParseServeRequest(const std::string& line,
                                       PartitionAlgorithm default_algorithm,
                                       MemoryPolicy default_policy) {
  TOFU_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return Status(StatusCode::kInvalidArgument, "request line is not a JSON object");
  }
  TOFU_RETURN_IF_ERROR(RejectUnknownKeys(
      doc,
      {"schema", "id", "model", "algorithm", "workers", "memory_budget_bytes",
       "memory_bytes_per_worker", "memory_policy", "uniform_bandwidth",
       "level_bandwidths", "config"},
      "request"));
  if (const JsonValue* schema = doc.Find("schema")) {
    if (schema->kind() != JsonValue::Kind::kString ||
        schema->AsString() != kServeJsonSchema) {
      return Status(StatusCode::kInvalidArgument,
                    std::string("unsupported request schema (want \"") +
                        kServeJsonSchema + "\")");
    }
  }

  ServeRequest request;
  request.algorithm = default_algorithm;
  TOFU_RETURN_IF_ERROR(ReadInt(doc, "id", &request.id));
  TOFU_ASSIGN_OR_RETURN(request.model, doc.StringAt("model"));
  if (const JsonValue* algo = doc.Find("algorithm")) {
    if (algo->kind() != JsonValue::Kind::kString) {
      return Status(StatusCode::kInvalidArgument, "field 'algorithm' must be a string");
    }
    TOFU_ASSIGN_OR_RETURN(request.algorithm, AlgorithmFromName(algo->AsString()));
  }
  request.memory_policy = default_policy;
  if (const JsonValue* policy = doc.Find("memory_policy")) {
    if (policy->kind() != JsonValue::Kind::kString) {
      return Status(StatusCode::kInvalidArgument,
                    "field 'memory_policy' must be a string");
    }
    TOFU_ASSIGN_OR_RETURN(request.memory_policy,
                          MemoryPolicyFromName(policy->AsString()));
  }

  std::int64_t workers = request.topology.num_workers;
  TOFU_RETURN_IF_ERROR(ReadInt(doc, "workers", &workers));
  if (workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  "field 'workers' must be >= 1, got " + std::to_string(workers));
  }
  request.topology.num_workers = static_cast<int>(workers);
  TOFU_RETURN_IF_ERROR(
      ReadNumber(doc, "uniform_bandwidth", &request.topology.uniform_bandwidth));
  TOFU_RETURN_IF_ERROR(
      ReadNumberArray(doc, "level_bandwidths", &request.topology.level_bandwidths));
  TOFU_RETURN_IF_ERROR(ReadInt(doc, "memory_bytes_per_worker",
                               &request.topology.memory_bytes_per_worker));
  TOFU_RETURN_IF_ERROR(
      ReadInt(doc, "memory_budget_bytes", &request.memory_budget_bytes));
  if (request.memory_budget_bytes < 0) {
    return Status(StatusCode::kInvalidArgument,
                  "field 'memory_budget_bytes' must be >= 0");
  }

  if (const JsonValue* config = doc.Find("config")) {
    if (!config->is_object()) {
      return Status(StatusCode::kInvalidArgument, "field 'config' must be an object");
    }
    TOFU_RETURN_IF_ERROR(ParseConfig(*config, &request));
  } else {
    // Still validates the model name even without overrides.
    bool known = false;
    for (const std::string& name : KnownServeModels()) known |= (name == request.model);
    if (!known) {
      return Status(StatusCode::kInvalidArgument,
                    "unknown model '" + request.model + "'");
    }
  }
  return request;
}

Result<ModelGraph> BuildServeModel(const ServeRequest& request) {
  // Pre-validate everything the builders TOFU_CHECK on, so a malformed request comes
  // back as a Status instead of aborting the server.
  if (request.model == "mlp") {
    const MlpConfig& c = request.mlp;
    TOFU_RETURN_IF_ERROR(RequirePositive(c.batch, "batch"));
    if (c.layer_sizes.size() < 2) {
      return Status(StatusCode::kInvalidArgument,
                    "mlp layer_sizes needs at least input and output widths");
    }
    for (std::int64_t width : c.layer_sizes) {
      TOFU_RETURN_IF_ERROR(RequirePositive(width, "layer_sizes[i]"));
    }
    return BuildMlp(c);
  }
  if (request.model == "rnn") {
    const RnnConfig& c = request.rnn;
    TOFU_RETURN_IF_ERROR(RequirePositive(c.layers, "layers"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.hidden, "hidden"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.batch, "batch"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.timesteps, "timesteps"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.embed, "embed"));
    return BuildRnn(c);
  }
  if (request.model == "wresnet") {
    const WResNetConfig& c = request.wresnet;
    if (c.layers != 50 && c.layers != 101 && c.layers != 152) {
      return Status(StatusCode::kInvalidArgument,
                    "wresnet layers must be 50, 101 or 152, got " +
                        std::to_string(c.layers));
    }
    TOFU_RETURN_IF_ERROR(RequirePositive(c.width, "width"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.batch, "batch"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.image, "image"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.classes, "classes"));
    return BuildWResNet(c);
  }
  if (request.model == "transformer") {
    const TransformerConfig& c = request.transformer;
    TOFU_RETURN_IF_ERROR(RequirePositive(c.batch, "batch"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.seq_len, "seq_len"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.d_model, "d_model"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.d_ff, "d_ff"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.heads, "heads"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.layers, "layers"));
    TOFU_RETURN_IF_ERROR(RequirePositive(c.num_classes, "num_classes"));
    if (c.d_model % c.heads != 0) {
      return Status(StatusCode::kInvalidArgument,
                    "transformer heads must divide d_model");
    }
    return BuildTransformer(c);
  }
  return Status(StatusCode::kInvalidArgument, "unknown model '" + request.model + "'");
}

}  // namespace tofu
