// The tofu-pland wire format, request side: one JSON object per line.
//
//   {"id": 7, "model": "mlp", "algorithm": "Tofu", "workers": 8,
//    "memory_budget_bytes": 1073741824, "level_bandwidths": [1e10, 2.1e10],
//    "config": {"batch": 64, "layer_sizes": [784, 256, 10]}}
//
// `model` is required and names a builder from models/ ("mlp", "rnn", "wresnet",
// "transformer"); everything else is optional and defaults to the builder's and
// DeviceTopology's defaults. `config` carries the builder's knobs under the same names
// as the config structs; unknown keys are rejected so a typo cannot silently request
// the default model. The full schema is documented in docs/serving.md.
//
// Requests are specs, not graphs: two requests with identical specs build structurally
// identical graphs, hence equal GraphSignatures, hence one shared plan-cache entry --
// which is what makes a spec-addressed serving cache work at all.
#ifndef TOFU_SERVE_REQUEST_H_
#define TOFU_SERVE_REQUEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/models/mlp.h"
#include "tofu/models/model.h"
#include "tofu/models/rnn.h"
#include "tofu/models/transformer.h"
#include "tofu/models/wresnet.h"
#include "tofu/util/status.h"

namespace tofu {

// Current request/response schema tag (responses carry it; requests may omit it).
inline constexpr const char* kServeJsonSchema = "tofu.serve.v1";

struct ServeRequest {
  std::int64_t id = 0;
  std::string model;  // "mlp" | "rnn" | "wresnet" | "transformer"
  PartitionAlgorithm algorithm = PartitionAlgorithm::kTofu;
  // Workers, per-level bandwidths, and device memory -- the session routing key
  // (the service keeps one thread-safe Session per distinct topology).
  DeviceTopology topology;
  std::int64_t memory_budget_bytes = 0;
  // What the search may do when no all-resident configuration fits the budget
  // (memory/repair.h): "auto" (swap or recompute, whichever is cheaper per buffer),
  // "swap", "recompute", or "none" (fail with kResourceExhausted, the pre-repair
  // behavior). Wire field "memory_policy"; tofu-pland --memory-policy sets the default.
  MemoryPolicy memory_policy = MemoryPolicy::kAuto;
  // Exactly one of these is consulted, selected by `model`.
  MlpConfig mlp;
  RnnConfig rnn;
  WResNetConfig wresnet;
  TransformerConfig transformer;
};

// Names accepted in the "model" field, for error messages and drivers.
const std::vector<std::string>& KnownServeModels();

// Parses one request line. kInvalidArgument on malformed JSON, an unknown model,
// algorithm, or memory-policy name, an unknown config key, or a wrong-kind field. A
// request that omits the "algorithm" / "memory_policy" field gets `default_algorithm`
// / `default_policy` (tofu-pland --algo=NAME and --memory-policy=NAME route through
// these; an explicit field always wins).
Result<ServeRequest> ParseServeRequest(
    const std::string& line,
    PartitionAlgorithm default_algorithm = PartitionAlgorithm::kTofu,
    MemoryPolicy default_policy = MemoryPolicy::kAuto);

// Builds the full training graph the request's spec describes. The build aborts on
// structurally impossible configs (e.g. heads not dividing d_model), so callers get
// cheap spec validation here too: kInvalidArgument for empty/unknown model names and
// configs the builders reject by contract.
Result<ModelGraph> BuildServeModel(const ServeRequest& request);

}  // namespace tofu

#endif  // TOFU_SERVE_REQUEST_H_
