#include "tofu/pipeline/compose.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>
#include <vector>

#include "tofu/memory/liveness.h"
#include "tofu/pipeline/pipeline_sim.h"
#include "tofu/pipeline/stage_cost.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Batch extent driving the micro-batch cap: dimension 0 of the first graph input.
int BatchExtent(const Graph& graph) {
  for (const TensorNode& t : graph.tensors()) {
    if (t.is_input && !t.shape.empty()) {
      return static_cast<int>(t.shape[0]);
    }
  }
  return 1;
}

// Scalar bandwidth for stage-boundary pricing and the stage DP's cut proposals: the
// coarsest link the pipeline replaces, or the caller's fallback.
double BoundaryBandwidth(const PartitionOptions& options, const HybridOptions& hybrid) {
  if (!options.step_bandwidths.empty()) {
    return options.step_bandwidths.front();
  }
  return hybrid.fallback_bandwidth > 0.0 ? hybrid.fallback_bandwidth : 21e9;
}

// Transfer time of `bytes` from stage worker range [src_first, src_first + w) to
// [dst_first, dst_first + w), through the interconnect's link graph when present
// (uniform spread, so oversubscribed uplinks show their contention), else over the
// scalar boundary bandwidth.
double BoundarySeconds(const PartitionOptions& options, const HybridOptions& hybrid,
                       double bytes, int src_first, int dst_first, int w) {
  if (bytes <= 0.0) {
    return 0.0;
  }
  const Interconnect* net = hybrid.interconnect.get();
  if (net != nullptr && src_first + w <= net->num_workers() &&
      dst_first + w <= net->num_workers()) {
    TrafficMatrix traffic(net->num_workers());
    const double per_pair = bytes / (static_cast<double>(w) * static_cast<double>(w));
    for (int s = 0; s < w; ++s) {
      for (int d = 0; d < w; ++d) {
        traffic.At(src_first + s, dst_first + d) = per_pair;
      }
    }
    return net->TransferSeconds(traffic);
  }
  return bytes / BoundaryBandwidth(options, hybrid);
}

// The inner searches see the SUFFIX of the full topology's per-step bandwidths: the
// pipeline consumes the coarsest len(factors(S)) splits (its stages sit on opposite
// sides of those links), the intra-stage recursion runs on what remains. At least the
// last entry survives so deeper steps keep their (reused-last-entry) pricing.
std::vector<double> StageStepBandwidths(const std::vector<double>& full, int num_workers,
                                        int stage_workers) {
  if (full.empty()) {
    return full;
  }
  const size_t consumed = FactorizeWorkers(num_workers).size() -
                          FactorizeWorkers(std::max(stage_workers, 1)).size();
  const size_t keep_from = std::min(consumed, full.size() - 1);
  return std::vector<double>(full.begin() + static_cast<std::ptrdiff_t>(keep_from),
                             full.end());
}

struct Candidate {
  PartitionPlan plan;
  double total_seconds = kInf;
  bool feasible = true;
  bool valid = false;
};

// Prefer feasible over infeasible, then strictly lower estimated total time; ties keep
// the incumbent (candidates arrive in ascending stage count, so the simplest plan --
// pure Tofu at S = 1 -- wins ties and the degenerate case stays byte-identical).
bool Beats(const Candidate& challenger, const Candidate& incumbent) {
  if (!incumbent.valid) {
    return challenger.valid;
  }
  if (challenger.feasible != incumbent.feasible) {
    return challenger.feasible;
  }
  return challenger.total_seconds < incumbent.total_seconds;
}

}  // namespace

PartitionPlan HybridPartition(const Graph& graph, int num_workers,
                              const PartitionOptions& options,
                              const HybridOptions& hybrid) {
  const auto t_begin = std::chrono::steady_clock::now();
  if (num_workers <= 1) {
    return RecursivePartition(graph, num_workers, options);
  }
  const CoarseGraph coarse = Coarsen(graph, options.coarsen);
  const int G = static_cast<int>(coarse.groups.size());
  if (G == 0) {
    return RecursivePartitionCoarse(graph, num_workers, coarse, options);
  }

  const StageCostModel cost(graph, coarse, hybrid.cluster);
  const std::vector<int> op_group = OpGroupIndex(graph, coarse);
  const std::int64_t budget = options.memory_budget_bytes;
  const double boundary_bw = BoundaryBandwidth(options, hybrid);
  const int batch = std::max(BatchExtent(graph), 1);

  // Tensors a stage's workers materialize (producer or a consumer inside the range):
  // everything else in an inner plan is rewritten to kReplicated below.
  auto tensor_in_stage = [&](const TensorNode& t, int first, int last) {
    if (t.producer != kNoOp) {
      const int pg = op_group[static_cast<size_t>(t.producer)];
      if (pg >= first && pg <= last) {
        return true;
      }
    }
    for (OpId c : t.consumers) {
      const int cg = op_group[static_cast<size_t>(c)];
      if (cg >= first && cg <= last) {
        return true;
      }
    }
    return false;
  };

  Candidate best;
  const int max_stages = std::min({std::max(hybrid.max_stages, 1), G, num_workers});
  for (int S = 1; S <= max_stages; ++S) {
    if (num_workers % S != 0) {
      continue;
    }
    if (S == 1) {
      // The degenerate candidate IS the pure recursive plan, untouched.
      Candidate pure;
      pure.plan = RecursivePartitionCoarse(graph, num_workers, coarse, options);
      std::vector<double> f;
      std::vector<double> b;
      cost.PerGroupPassSeconds(num_workers, 1, &f, &b);
      double compute = 0.0;
      for (int g = 0; g < G; ++g) {
        compute += f[static_cast<size_t>(g)] + b[static_cast<size_t>(g)];
      }
      const double comm = pure.plan.estimated_comm_seconds > 0.0
                              ? pure.plan.estimated_comm_seconds
                              : pure.plan.total_comm_bytes / boundary_bw;
      pure.total_seconds = compute + comm;
      pure.feasible =
          budget <= 0 || LivenessPeakShardBytes(graph, pure.plan) <= budget;
      pure.valid = true;
      if (Beats(pure, best)) {
        best = std::move(pure);
      }
      continue;
    }

    const int w = num_workers / S;
    const int M = std::max(1, std::min(hybrid.micro_batches_per_stage * S, batch));

    // Per-group, per-micro-batch pass times at this candidate's (w, M).
    std::vector<double> f;
    std::vector<double> b;
    cost.PerGroupPassSeconds(w, M, &f, &b);
    std::vector<double> pf(static_cast<size_t>(G) + 1, 0.0);
    std::vector<double> pb(static_cast<size_t>(G) + 1, 0.0);
    for (int g = 0; g < G; ++g) {
      pf[static_cast<size_t>(g) + 1] = pf[static_cast<size_t>(g)] + f[static_cast<size_t>(g)];
      pb[static_cast<size_t>(g) + 1] = pb[static_cast<size_t>(g)] + b[static_cast<size_t>(g)];
    }
    // Per-micro-batch load of the contiguous range [a, b]: both passes' compute plus
    // the outgoing boundary transfers (scalar-priced; the composed candidate re-prices
    // the chosen boundaries through the interconnect). Ranges whose model state cannot
    // fit the per-worker budget even fully sharded are excluded -- this is the
    // "budget-infeasible -> more stages" lever: shrinking ranges (more stages) always
    // reduces state per worker.
    auto range_load = [&](int a, int g) -> double {
      if (budget > 0 &&
          cost.StateBytes(a, g) / static_cast<std::int64_t>(w) > budget) {
        return kInf;
      }
      double load = (pf[static_cast<size_t>(g) + 1] - pf[static_cast<size_t>(a)]) +
                    (pb[static_cast<size_t>(g) + 1] - pb[static_cast<size_t>(a)]);
      if (g < G - 1) {
        load += (cost.ForwardCrossingBytes(g) + cost.BackwardCrossingBytes(g)) /
                (static_cast<double>(M) * boundary_bw);
      }
      return load;
    };

    // PipeDream-style bottleneck DP over contiguous group ranges: T[s][g] = the best
    // achievable max-stage-load splitting groups [0, g] into s stages.
    std::vector<std::vector<double>> T(
        static_cast<size_t>(S) + 1, std::vector<double>(static_cast<size_t>(G), kInf));
    std::vector<std::vector<int>> parent(
        static_cast<size_t>(S) + 1, std::vector<int>(static_cast<size_t>(G), -1));
    for (int g = 0; g <= G - S; ++g) {
      T[1][static_cast<size_t>(g)] = range_load(0, g);
    }
    for (int s = 2; s <= S; ++s) {
      for (int g = s - 1; g < G; ++g) {
        for (int c = s - 2; c < g; ++c) {
          const double prev = T[static_cast<size_t>(s) - 1][static_cast<size_t>(c)];
          if (prev == kInf) {
            continue;
          }
          const double load = range_load(c + 1, g);
          const double v = std::max(prev, load);
          if (v < T[static_cast<size_t>(s)][static_cast<size_t>(g)]) {
            T[static_cast<size_t>(s)][static_cast<size_t>(g)] = v;
            parent[static_cast<size_t>(s)][static_cast<size_t>(g)] = c;
          }
        }
      }
    }
    if (T[static_cast<size_t>(S)][static_cast<size_t>(G) - 1] == kInf) {
      continue;  // no boundary placement fits the budget at this stage count
    }
    std::vector<std::pair<int, int>> ranges(static_cast<size_t>(S));
    int g = G - 1;
    for (int s = S; s >= 1; --s) {
      const int c = s == 1 ? -1 : parent[static_cast<size_t>(s)][static_cast<size_t>(g)];
      ranges[static_cast<size_t>(s) - 1] = {c + 1, g};
      g = c;
    }

    // Compose: run the budget-aware recursive DP inside each stage on the
    // stage-filtered coarse graph, then assemble the pipeline's analytic cost.
    auto pipe = std::make_shared<PipelinePlan>();
    pipe->num_stages = S;
    pipe->micro_batches = M;
    PartitionOptions inner_options = options;
    inner_options.step_bandwidths =
        StageStepBandwidths(options.step_bandwidths, num_workers, w);
    SearchStats merged;
    double total_comm_bytes = 0.0;
    double comm_seconds = 0.0;
    bool feasible = true;
    for (int s = 0; s < S; ++s) {
      const int first = ranges[static_cast<size_t>(s)].first;
      const int last = ranges[static_cast<size_t>(s)].second;
      PipelineStage stage;
      stage.first_group = first;
      stage.last_group = last;
      stage.num_workers = w;
      stage.first_worker = s * w;

      const CoarseGraph stage_coarse = StageCoarse(coarse, first, last);
      stage.plan = RecursivePartitionCoarse(graph, w, stage_coarse, inner_options);
      // Off-stage tensors are never materialized by this stage's workers; store them
      // kReplicated so the inner plan's shard accessors answer only for what the stage
      // actually holds. Off-stage ops are already kReplicatedExec (filtered units).
      for (BasicPlan& step : stage.plan.steps) {
        for (TensorId t = 0; t < graph.num_tensors(); ++t) {
          if (!tensor_in_stage(graph.tensor(t), first, last)) {
            step.tensor_cut[static_cast<size_t>(t)] = kReplicated;
          }
        }
      }
      merged.Merge(stage.plan.search_stats);
      stage.plan.search_stats.wall_seconds = 0.0;  // keep serialization deterministic

      const double inner_comm =
          stage.plan.estimated_comm_seconds > 0.0
              ? stage.plan.estimated_comm_seconds
              : stage.plan.total_comm_bytes / boundary_bw;
      total_comm_bytes += stage.plan.total_comm_bytes;
      comm_seconds += inner_comm;
      // Intra-stage partition comm is priced for the full batch; spread it evenly
      // across micro-batches and the two passes.
      const double inner_comm_per_pass = inner_comm / (2.0 * static_cast<double>(M));
      stage.fwd_seconds = (pf[static_cast<size_t>(last) + 1] -
                           pf[static_cast<size_t>(first)]) +
                          inner_comm_per_pass;
      stage.bwd_seconds = (pb[static_cast<size_t>(last) + 1] -
                           pb[static_cast<size_t>(first)]) +
                          inner_comm_per_pass;
      if (s < S - 1) {
        const double fwd_bytes =
            cost.ForwardCrossingBytes(last) / static_cast<double>(M);
        const double bwd_bytes =
            cost.BackwardCrossingBytes(last) / static_cast<double>(M);
        stage.activation_bytes = fwd_bytes;
        stage.transfer_fwd_seconds =
            BoundarySeconds(options, hybrid, fwd_bytes, s * w, (s + 1) * w, w);
        stage.transfer_bwd_seconds =
            BoundarySeconds(options, hybrid, bwd_bytes, (s + 1) * w, s * w, w);
        comm_seconds += static_cast<double>(M) *
                        (stage.transfer_fwd_seconds + stage.transfer_bwd_seconds);
        total_comm_bytes +=
            cost.ForwardCrossingBytes(last) + cost.BackwardCrossingBytes(last);
      }

      const std::vector<char> mask = StageOpMask(graph, coarse, first, last);
      stage.peak_bytes = StageLivenessPeakShardBytes(graph, stage.plan, mask);
      stage.all_resident_bytes = StageAllResidentShardBytes(graph, stage.plan, mask);
      if (budget > 0 && stage.peak_bytes > budget) {
        feasible = false;
      }
      pipe->stages.push_back(std::move(stage));
    }
    for (const PipelineStage& stage : pipe->stages) {
      pipe->bottleneck_seconds = std::max(pipe->bottleneck_seconds,
                                          stage.fwd_seconds + stage.bwd_seconds);
    }
    pipe->pipeline_seconds = AnalyticPipelineSeconds(*pipe);
    pipe->comm_seconds = comm_seconds;

    Candidate candidate;
    candidate.plan.num_workers = num_workers;
    candidate.plan.total_comm_bytes = total_comm_bytes;
    candidate.plan.estimated_comm_seconds = comm_seconds;
    candidate.plan.memory_budget_bytes = budget;
    candidate.plan.memory_feasible = feasible;
    candidate.plan.search_stats = merged;
    candidate.plan.pipeline = pipe;
    candidate.total_seconds = pipe->pipeline_seconds;
    candidate.feasible = budget <= 0 || feasible;
    candidate.valid = true;
    if (Beats(candidate, best)) {
      best = std::move(candidate);
    }
  }

  TOFU_CHECK(best.valid);  // S = 1 always produces a candidate
  if (best.plan.pipeline != nullptr) {
    best.plan.search_stats.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t_begin)
            .count();
  }
  return best.plan;
}

}  // namespace tofu
