#include "tofu/pipeline/pipeline_sim.h"

#include <algorithm>
#include <vector>

#include "tofu/util/logging.h"

namespace tofu {

double AnalyticPipelineSeconds(const PipelinePlan& plan) {
  const int S = static_cast<int>(plan.stages.size());
  const double M = static_cast<double>(std::max(plan.micro_batches, 1));
  double fill = 0.0;   // sum_{j<s} (f_j + t_fwd_j)
  double drain = 0.0;  // sum_{j<s} (b_j + t_bwd_j)
  double best = 0.0;
  for (int s = 0; s < S; ++s) {
    const PipelineStage& stage = plan.stages[static_cast<size_t>(s)];
    best = std::max(best,
                    fill + M * (stage.fwd_seconds + stage.bwd_seconds) + drain);
    fill += stage.fwd_seconds + stage.transfer_fwd_seconds;
    drain += stage.bwd_seconds + stage.transfer_bwd_seconds;
  }
  return best;
}

double Simulate1F1BSeconds(const PipelinePlan& plan) {
  const int S = static_cast<int>(plan.stages.size());
  const int M = std::max(plan.micro_batches, 1);
  TOFU_CHECK_GE(S, 1);

  constexpr double kUnknown = -1.0;
  std::vector<std::vector<double>> fwd_done(
      static_cast<size_t>(S), std::vector<double>(static_cast<size_t>(M), kUnknown));
  std::vector<std::vector<double>> bwd_done(
      static_cast<size_t>(S), std::vector<double>(static_cast<size_t>(M), kUnknown));

  // Static per-stage 1F1B sequence: warmup forwards, then backward m / forward
  // m + warmup pairs. Encoded as (is_backward, micro) items.
  struct Item {
    bool backward = false;
    int micro = 0;
  };
  std::vector<std::vector<Item>> sequence(static_cast<size_t>(S));
  for (int s = 0; s < S; ++s) {
    const int warmup = std::min(M, S - s);
    std::vector<Item>& seq = sequence[static_cast<size_t>(s)];
    for (int m = 0; m < warmup; ++m) {
      seq.push_back({false, m});
    }
    for (int m = 0; m < M; ++m) {
      seq.push_back({true, m});
      if (m + warmup < M) {
        seq.push_back({false, m + warmup});
      }
    }
    TOFU_CHECK_EQ(seq.size(), static_cast<size_t>(2 * M));
  }

  // Execute: repeatedly scan stages and run the next item whose dependencies are known.
  // Each full scan completes at least one item (the deepest runnable stage's), so this
  // terminates in at most (2 M S) scans.
  std::vector<size_t> next(static_cast<size_t>(S), 0);
  std::vector<double> stage_free(static_cast<size_t>(S), 0.0);
  double makespan = 0.0;
  int remaining = 2 * M * S;
  while (remaining > 0) {
    bool progressed = false;
    for (int s = 0; s < S; ++s) {
      while (next[static_cast<size_t>(s)] < sequence[static_cast<size_t>(s)].size()) {
        const Item item = sequence[static_cast<size_t>(s)][next[static_cast<size_t>(s)]];
        const PipelineStage& stage = plan.stages[static_cast<size_t>(s)];
        double ready = 0.0;
        double duration = 0.0;
        if (!item.backward) {
          if (s > 0) {
            const double upstream =
                fwd_done[static_cast<size_t>(s - 1)][static_cast<size_t>(item.micro)];
            if (upstream == kUnknown) {
              break;
            }
            ready = upstream +
                    plan.stages[static_cast<size_t>(s - 1)].transfer_fwd_seconds;
          }
          duration = stage.fwd_seconds;
        } else {
          const double own_fwd =
              fwd_done[static_cast<size_t>(s)][static_cast<size_t>(item.micro)];
          if (own_fwd == kUnknown) {
            break;
          }
          ready = own_fwd;
          if (s < S - 1) {
            const double downstream =
                bwd_done[static_cast<size_t>(s + 1)][static_cast<size_t>(item.micro)];
            if (downstream == kUnknown) {
              break;
            }
            ready = std::max(ready, downstream + stage.transfer_bwd_seconds);
          }
          duration = stage.bwd_seconds;
        }
        const double start = std::max(ready, stage_free[static_cast<size_t>(s)]);
        const double finish = start + duration;
        stage_free[static_cast<size_t>(s)] = finish;
        makespan = std::max(makespan, finish);
        (item.backward ? bwd_done : fwd_done)[static_cast<size_t>(s)]
                                             [static_cast<size_t>(item.micro)] = finish;
        ++next[static_cast<size_t>(s)];
        --remaining;
        progressed = true;
      }
    }
    TOFU_CHECK(progressed);  // a stall here would mean a dependency cycle
  }
  return makespan;
}

}  // namespace tofu
