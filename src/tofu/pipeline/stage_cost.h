// Stage-level cost accounting for the hybrid pipeline partitioner (pipeline/compose.h).
//
// The stage DP cuts the coarsened graph's macro-group sequence (program order) into
// contiguous stages. To price a candidate cut it needs, per macro group: forward and
// backward kernel time of one micro-batch's shard of the group's operators, the
// activation bytes that would cross each candidate boundary (both directions -- the
// backward pass returns activation gradients), and the model-state bytes a stage would
// own. All three are precomputed once per (graph, coarse graph, cluster) and queried in
// O(1) per range, so the DP over all (stage count, boundary) candidates stays cheap.
//
// The kernel-time recipe mirrors sim/lowering.cc's ShardKernelSeconds / EfficiencyRows
// exactly (same registry flops, same byte accounting, same rows heuristic) so the stage
// estimate and the event simulator price compute identically; the only liberty is that
// rows are scaled by the micro-batch split alone -- the intra-stage partition's cut
// dimension is unknown until the inner search runs, and applying the same optimism to
// every candidate keeps the DP's ranking fair.
#ifndef TOFU_PIPELINE_STAGE_COST_H_
#define TOFU_PIPELINE_STAGE_COST_H_

#include <cstdint>
#include <vector>

#include "tofu/partition/coarsen.h"
#include "tofu/partition/plan.h"
#include "tofu/sim/cost_model.h"

namespace tofu {

// Macro-group index of every operator (coarsen.cc places each op in exactly one group,
// through a unit or as an element-wise rider).
std::vector<int> OpGroupIndex(const Graph& graph, const CoarseGraph& coarse);

// The coarse graph restricted to groups [first_group, last_group]: slots and the
// tensor->slot map stay GLOBAL (slot ids in the DP index the full graph's tensors), but
// units are filtered and renumbered to the stage's members so the inner recursive DP
// never enumerates strategies for off-stage operators.
CoarseGraph StageCoarse(const CoarseGraph& full, int first_group, int last_group);

// 1 for ops whose macro group lies in [first_group, last_group], else 0. The mask the
// stage-restricted memory accounting below consumes.
std::vector<char> StageOpMask(const Graph& graph, const CoarseGraph& coarse,
                              int first_group, int last_group);

class StageCostModel {
 public:
  StageCostModel(const Graph& graph, const CoarseGraph& coarse, ClusterSpec cluster);

  int num_groups() const { return num_groups_; }

  // Per-group, per-micro-batch kernel seconds with the batch split into micro_batches
  // pieces and every op's work split across `workers` (forward ops in *fwd, backward /
  // update / gradient-aggregation ops in *bwd). O(num_ops); call once per candidate
  // (workers, micro_batches) pair and prefix-sum the result.
  void PerGroupPassSeconds(int workers, int micro_batches, std::vector<double>* fwd,
                           std::vector<double>* bwd) const;

  // Full-batch activation bytes crossing the boundary AFTER group `cut_after`:
  // forward = produced in a group <= cut_after, consumed in a later one (counted on
  // every boundary between producer and last consumer -- store-and-forward relay
  // through intermediate stages); backward = the mirror image for gradients flowing to
  // earlier groups. Model state (params, optimizer history, param gradients) is
  // excluded: it never moves between stages.
  double ForwardCrossingBytes(int cut_after) const;
  double BackwardCrossingBytes(int cut_after) const;

  // Model-state bytes (params + optimizer state + parameter gradients) owned by groups
  // [first, last]. Full (unsharded) bytes; the stage DP divides by the stage's worker
  // count for its optimistic feasibility filter.
  std::int64_t StateBytes(int first, int last) const;

 private:
  struct OpCost {
    int group = 0;
    bool backward = false;  // backward / update / grad-agg pass
    OpClass op_class = OpClass::kBandwidth;
    double flops = 0.0;  // full batch, whole op
    double bytes = 0.0;  // output + inputs, full batch
    double rows = 0.0;   // EfficiencyRows of the full output shape
  };

  int num_groups_ = 0;
  ClusterSpec cluster_;
  std::vector<OpCost> ops_;
  // Indexed by cut position (after group c); entry num_groups-1 is 0 by construction.
  std::vector<double> fwd_cross_;
  std::vector<double> bwd_cross_;
  // state_prefix_[g+1] - state_prefix_[first] = StateBytes(first, g).
  std::vector<std::int64_t> state_prefix_;
};

// LivenessPeakShardBytes restricted to one stage's workers: only buffers a stage worker
// materializes count -- stage-owned model state, buffers produced by in-stage ops, and
// incoming boundary activations (produced off-stage, consumed in-stage), which stay
// resident for the stage's whole pass (they arrive before the stage runs and their
// gradient hand-off pins them). Off-stage buffers contribute nothing, which is the whole
// memory point of pipelining: LivenessPeakShardBytes on a stage's inner plan would charge
// every worker the full model.
std::int64_t StageLivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan,
                                         const std::vector<char>& op_in_stage);

// Stage-restricted all-resident upper bound (every in-stage buffer at once).
std::int64_t StageAllResidentShardBytes(const Graph& graph, const PartitionPlan& plan,
                                        const std::vector<char>& op_in_stage);

}  // namespace tofu

#endif  // TOFU_PIPELINE_STAGE_COST_H_
