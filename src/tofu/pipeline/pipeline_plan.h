// Hybrid pipeline x Tofu plan types (ROADMAP item 3).
//
// A hybrid plan cuts the coarsened graph into S contiguous pipeline stages, assigns
// each stage a contiguous worker subset of the topology, and partitions each stage's
// operators across its own workers with the existing recursive DP (pipeline/compose.h).
// The per-iteration time model is 1F1B micro-batch pipelining: the full batch is split
// into M micro-batches; in steady state the bottleneck stage works back-to-back on one
// forward and one backward per micro-batch, and the other stages hide behind it. The
// analytic estimate is the per-stage critical-path bound
//
//   T = max_s [ sum_{j<s} (f_j + t_fwd_j) + M * (f_s + b_s) + sum_{j<s} (b_j + t_bwd_j) ]
//
// with f_s / b_s the per-micro-batch forward / backward stage times (compute plus the
// stage's intra-stage partition communication) and t_*_s the stage-boundary activation
// (and activation-gradient) transfer times: stage s cannot start before micro-batch 0
// reaches it, must process all M micro-batches twice, and its last gradient still has
// to travel back to stage 0. This is a true lower bound on any 1F1B schedule, and for
// balanced stages it equals the classic (M-1)*bottleneck + fill/drain formula.
// pipeline/pipeline_sim.h replays the same quantities through a 1F1B event schedule and
// tests/test_pipeline.cc pins analytic <= simulated <= analytic * constant, the same
// differential contract tests/test_interconnect_diff.cc applies to link pricing.
#ifndef TOFU_PIPELINE_PIPELINE_PLAN_H_
#define TOFU_PIPELINE_PIPELINE_PLAN_H_

#include <cstdint>
#include <vector>

#include "tofu/partition/plan.h"

namespace tofu {

// One pipeline stage: a contiguous macro-group range of the coarsened graph, a
// contiguous worker range, and the inner Tofu plan partitioning the stage's operators
// across those workers. The inner plan spans the WHOLE graph's tensor/op id space
// (BasicPlan vectors are graph-sized): off-stage tensors are stored kReplicated and
// off-stage operators run kReplicatedExec, which costs nothing because the stage's
// workers never materialize or execute them -- the convention keeps ValidatePlanForGraph
// and the shard-shape accessors working unchanged on inner plans.
struct PipelineStage {
  int first_group = 0;  // inclusive range into CoarseGraph::groups (program order)
  int last_group = 0;
  int num_workers = 1;
  int first_worker = 0;  // stages own contiguous, disjoint worker ranges covering all
  PartitionPlan plan;    // inner recursive plan over this stage's worker count

  // Per-micro-batch forward / backward stage time: kernel time of the stage's shard of
  // each op plus the stage's intra-stage partition communication, split evenly between
  // the two passes.
  double fwd_seconds = 0.0;
  double bwd_seconds = 0.0;
  // Stage-boundary activation bytes crossing INTO the next stage, per micro-batch
  // (forward direction; the backward pass returns the matching gradients). 0 for the
  // last stage.
  double activation_bytes = 0.0;
  // Transfer time of those bytes (and of the returning gradients) priced through the
  // topology's interconnect when present, else the coarsest-level bandwidth.
  double transfer_fwd_seconds = 0.0;
  double transfer_bwd_seconds = 0.0;
  // Stage-local per-worker liveness peak under the inner plan: stage-owned model state
  // stays resident, stage activations live from producer to last consumer, incoming
  // boundary activations stay resident for the stage's pass (pipeline/stage_cost.h).
  // The session's budget verdict for a hybrid plan takes the max over stages.
  std::int64_t peak_bytes = 0;
  // Schedule-independent stage upper bound (every stage-owned shard resident at once).
  std::int64_t all_resident_bytes = 0;
};

struct PipelinePlan {
  int num_stages = 1;
  int micro_batches = 1;
  std::vector<PipelineStage> stages;

  // max_s (f_s + b_s): the steady-state per-micro-batch cost of the bottleneck stage.
  double bottleneck_seconds = 0.0;
  // The analytic per-iteration makespan (header formula): a 1F1B lower bound the event
  // schedule validates. This is the figure hybrid candidates compete on and what
  // bench_table1_search reports as the hybrid total.
  double pipeline_seconds = 0.0;
  // Communication component only: intra-stage partition comm (full batch) plus every
  // boundary transfer in both directions across all micro-batches. What the session
  // reports as a hybrid plan's estimated_comm_seconds.
  double comm_seconds = 0.0;
};

}  // namespace tofu

#endif  // TOFU_PIPELINE_PIPELINE_PLAN_H_
