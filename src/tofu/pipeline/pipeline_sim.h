// Pipeline-aware extension of the event simulator: an explicit 1F1B (one-forward-
// one-backward) micro-batch schedule over a PipelinePlan's stages, used to validate the
// analytic stage-cost bound the same way interconnect/sim_bridge.h validates link
// pricing (tests/test_interconnect_diff.cc): analytic <= simulated <= analytic * C.
//
// The schedule is the canonical 1F1B: stage s runs min(M, S - s) warmup forwards, then
// alternates backward m / forward m + warmup until the batch drains. A stage's forward
// of micro-batch m waits for the previous stage's forward of m plus the boundary
// transfer; its backward waits for the next stage's backward of m plus the gradient
// transfer (and for its own forward of m). One work item at a time per stage.
#ifndef TOFU_PIPELINE_PIPELINE_SIM_H_
#define TOFU_PIPELINE_PIPELINE_SIM_H_

#include "tofu/pipeline/pipeline_plan.h"

namespace tofu {

// The per-stage critical-path lower bound (pipeline_plan.h header formula), computed
// from the plan's stage times and micro-batch count. compose.cc stores this as
// PipelinePlan::pipeline_seconds; exposed separately so tests can cross-check the
// stored figure.
double AnalyticPipelineSeconds(const PipelinePlan& plan);

// Event-driven makespan of the 1F1B schedule above. Deterministic; >= the analytic
// bound by construction (the bound relaxes stage contention and schedule order).
double Simulate1F1BSeconds(const PipelinePlan& plan);

}  // namespace tofu

#endif  // TOFU_PIPELINE_PIPELINE_SIM_H_
