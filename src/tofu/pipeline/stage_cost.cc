#include "tofu/pipeline/stage_cost.h"

#include <algorithm>

#include "tofu/util/logging.h"

namespace tofu {
namespace {

// Same driver extent sim/lowering.cc uses: batched GEMMs count every non-innermost
// dimension as rows; everything else keys off the leading (batch) dimension.
double FullEfficiencyRows(const OpNode& op, const Shape& out_shape) {
  if (out_shape.empty()) {
    return 1.0;
  }
  if (out_shape.size() >= 3 &&
      OpRegistry::Get().Info(op.type).op_class == OpClass::kMatmul) {
    double rows = 1.0;
    for (size_t d = 0; d + 1 < out_shape.size(); ++d) {
      rows *= static_cast<double>(out_shape[d]);
    }
    return rows;
  }
  return static_cast<double>(out_shape[0]);
}

// Persistent model state: never pipelined between stages and resident on its stage's
// workers for the whole iteration. Mirrors sim/lowering.cc's IsResident.
bool IsModelState(const Graph& graph, const TensorNode& t) {
  if (t.is_param || t.is_opt_state || t.is_input) {
    return true;
  }
  return t.grad_of != kNoTensor && graph.tensor(t.grad_of).is_param;
}

}  // namespace

std::vector<int> OpGroupIndex(const Graph& graph, const CoarseGraph& coarse) {
  std::vector<int> group(static_cast<size_t>(graph.num_ops()), -1);
  for (size_t g = 0; g < coarse.groups.size(); ++g) {
    const MacroGroup& mg = coarse.groups[g];
    for (int u : mg.units) {
      for (OpId op : coarse.units[static_cast<size_t>(u)].ops) {
        group[static_cast<size_t>(op)] = static_cast<int>(g);
      }
    }
    for (OpId op : mg.ew_ops) {
      group[static_cast<size_t>(op)] = static_cast<int>(g);
    }
  }
  for (OpId op = 0; op < graph.num_ops(); ++op) {
    TOFU_CHECK_GE(group[static_cast<size_t>(op)], 0);
  }
  return group;
}

CoarseGraph StageCoarse(const CoarseGraph& full, int first_group, int last_group) {
  TOFU_CHECK_GE(first_group, 0);
  TOFU_CHECK_GE(last_group, first_group);
  TOFU_CHECK_LT(static_cast<size_t>(last_group), full.groups.size());

  CoarseGraph out;
  out.tensor_slot = full.tensor_slot;  // slot ids stay global
  out.slots = full.slots;
  std::vector<int> unit_map(full.units.size(), -1);
  for (int g = first_group; g <= last_group; ++g) {
    MacroGroup mg = full.groups[static_cast<size_t>(g)];
    for (int& u : mg.units) {
      int& mapped = unit_map[static_cast<size_t>(u)];
      if (mapped < 0) {
        mapped = static_cast<int>(out.units.size());
        out.units.push_back(full.units[static_cast<size_t>(u)]);
      }
      u = mapped;
    }
    out.groups.push_back(std::move(mg));
  }
  return out;
}

std::vector<char> StageOpMask(const Graph& graph, const CoarseGraph& coarse,
                              int first_group, int last_group) {
  const std::vector<int> group = OpGroupIndex(graph, coarse);
  std::vector<char> mask(static_cast<size_t>(graph.num_ops()), 0);
  for (OpId op = 0; op < graph.num_ops(); ++op) {
    const int g = group[static_cast<size_t>(op)];
    mask[static_cast<size_t>(op)] = g >= first_group && g <= last_group ? 1 : 0;
  }
  return mask;
}

StageCostModel::StageCostModel(const Graph& graph, const CoarseGraph& coarse,
                               ClusterSpec cluster)
    : num_groups_(static_cast<int>(coarse.groups.size())), cluster_(cluster) {
  const std::vector<int> group = OpGroupIndex(graph, coarse);
  OpRegistry& registry = OpRegistry::Get();

  ops_.reserve(static_cast<size_t>(graph.num_ops()));
  for (const OpNode& op : graph.ops()) {
    OpCost cost;
    cost.group = group[static_cast<size_t>(op.id)];
    cost.backward = op.is_backward || op.is_update || op.is_grad_agg;
    cost.op_class = registry.Info(op.type).op_class;
    cost.flops = registry.Flops(op.type, graph.InputShapes(op),
                                graph.tensor(op.output).shape, op.attrs);
    double bytes = static_cast<double>(graph.tensor(op.output).bytes());
    for (TensorId in : op.inputs) {
      bytes += static_cast<double>(graph.tensor(in).bytes());
    }
    cost.bytes = bytes;
    cost.rows = FullEfficiencyRows(op, graph.tensor(op.output).shape);
    ops_.push_back(cost);
  }

  // Boundary-crossing activation bytes, as difference arrays over cut positions.
  fwd_cross_.assign(static_cast<size_t>(num_groups_), 0.0);
  bwd_cross_.assign(static_cast<size_t>(num_groups_), 0.0);
  for (const TensorNode& t : graph.tensors()) {
    if (t.producer == kNoOp || IsModelState(graph, t)) {
      continue;
    }
    const int pg = group[static_cast<size_t>(t.producer)];
    int max_fwd = pg;
    int min_bwd = pg;
    for (OpId c : t.consumers) {
      const int cg = group[static_cast<size_t>(c)];
      max_fwd = std::max(max_fwd, cg);
      min_bwd = std::min(min_bwd, cg);
    }
    const double bytes = static_cast<double>(t.bytes());
    if (max_fwd > pg) {
      fwd_cross_[static_cast<size_t>(pg)] += bytes;
      fwd_cross_[static_cast<size_t>(max_fwd)] -= bytes;
    }
    if (min_bwd < pg) {
      bwd_cross_[static_cast<size_t>(min_bwd)] += bytes;
      bwd_cross_[static_cast<size_t>(pg)] -= bytes;
    }
  }
  double fwd_run = 0.0;
  double bwd_run = 0.0;
  for (int c = 0; c < num_groups_; ++c) {
    fwd_run += fwd_cross_[static_cast<size_t>(c)];
    fwd_cross_[static_cast<size_t>(c)] = fwd_run;
    bwd_run += bwd_cross_[static_cast<size_t>(c)];
    bwd_cross_[static_cast<size_t>(c)] = bwd_run;
  }

  // Model-state ownership: params / optimizer state go to their first consumer's group
  // (the layer that reads them); parameter gradients to their producer's group. Graph
  // inputs are batch data, not state -- they ride the pipeline like activations.
  std::vector<std::int64_t> state(static_cast<size_t>(num_groups_), 0);
  for (const TensorNode& t : graph.tensors()) {
    int owner = -1;
    if ((t.is_param || t.is_opt_state) && !t.consumers.empty()) {
      int min_cg = num_groups_;
      for (OpId c : t.consumers) {
        min_cg = std::min(min_cg, group[static_cast<size_t>(c)]);
      }
      owner = min_cg;
    } else if (t.grad_of != kNoTensor && graph.tensor(t.grad_of).is_param &&
               t.producer != kNoOp) {
      owner = group[static_cast<size_t>(t.producer)];
    }
    if (owner >= 0 && owner < num_groups_) {
      state[static_cast<size_t>(owner)] += t.bytes();
    }
  }
  state_prefix_.assign(static_cast<size_t>(num_groups_) + 1, 0);
  for (int g = 0; g < num_groups_; ++g) {
    state_prefix_[static_cast<size_t>(g) + 1] =
        state_prefix_[static_cast<size_t>(g)] + state[static_cast<size_t>(g)];
  }
}

void StageCostModel::PerGroupPassSeconds(int workers, int micro_batches,
                                         std::vector<double>* fwd,
                                         std::vector<double>* bwd) const {
  TOFU_CHECK_GE(workers, 1);
  TOFU_CHECK_GE(micro_batches, 1);
  fwd->assign(static_cast<size_t>(num_groups_), 0.0);
  bwd->assign(static_cast<size_t>(num_groups_), 0.0);
  const double work_fraction =
      1.0 / (static_cast<double>(workers) * static_cast<double>(micro_batches));
  for (const OpCost& op : ops_) {
    const double rows =
        std::max(op.rows / static_cast<double>(micro_batches), 1.0);
    const double seconds = KernelSeconds(cluster_.gpu, op.op_class,
                                         op.flops * work_fraction,
                                         op.bytes * work_fraction, rows);
    std::vector<double>& pass = op.backward ? *bwd : *fwd;
    pass[static_cast<size_t>(op.group)] += seconds;
  }
}

double StageCostModel::ForwardCrossingBytes(int cut_after) const {
  TOFU_CHECK_GE(cut_after, 0);
  TOFU_CHECK_LT(cut_after, num_groups_);
  return fwd_cross_[static_cast<size_t>(cut_after)];
}

double StageCostModel::BackwardCrossingBytes(int cut_after) const {
  TOFU_CHECK_GE(cut_after, 0);
  TOFU_CHECK_LT(cut_after, num_groups_);
  return bwd_cross_[static_cast<size_t>(cut_after)];
}

std::int64_t StageCostModel::StateBytes(int first, int last) const {
  TOFU_CHECK_GE(first, 0);
  TOFU_CHECK_GE(last, first);
  TOFU_CHECK_LT(last, num_groups_);
  return state_prefix_[static_cast<size_t>(last) + 1] -
         state_prefix_[static_cast<size_t>(first)];
}

namespace {

// Shared sweep for the two stage-restricted memory figures. Follows
// LivenessPeakShardBytes (partition/plan.cc) with a stage mask: a buffer counts only if
// some alias is produced by an in-stage op, is producer-less state consumed in-stage, or
// is an incoming boundary activation (off-stage producer, in-stage consumer) -- the
// latter two stay resident for the whole pass.
std::int64_t StageSweep(const Graph& graph, const PartitionPlan& plan,
                        const std::vector<char>& op_in_stage, bool all_resident) {
  const int num_tensors = graph.num_tensors();
  const int num_ops = graph.num_ops();
  TOFU_CHECK_EQ(op_in_stage.size(), static_cast<size_t>(num_ops));

  std::vector<TensorId> buffer(static_cast<size_t>(num_tensors));
  for (TensorId t = 0; t < num_tensors; ++t) {
    buffer[static_cast<size_t>(t)] = t;
  }
  for (const OpNode& op : graph.ops()) {
    if (op.inplace_input >= 0 &&
        op.inplace_input < static_cast<int>(op.inputs.size())) {
      buffer[static_cast<size_t>(op.output)] =
          buffer[static_cast<size_t>(op.inputs[static_cast<size_t>(op.inplace_input)])];
    }
  }

  auto in_stage = [&](OpId o) { return op_in_stage[static_cast<size_t>(o)] != 0; };

  // Per buffer root: shard bytes, whether a stage worker materializes it, and -- for
  // stage-produced buffers -- alloc / free positions among in-stage ops only.
  std::vector<std::int64_t> buf_bytes(static_cast<size_t>(num_tensors), 0);
  std::vector<char> materialized(static_cast<size_t>(num_tensors), 0);
  std::vector<int> alloc_at(static_cast<size_t>(num_tensors), -1);
  std::vector<int> free_at(static_cast<size_t>(num_tensors), -1);
  for (TensorId t = 0; t < num_tensors; ++t) {
    const TensorNode& node = graph.tensor(t);
    const TensorId b = buffer[static_cast<size_t>(t)];
    bool touches_stage = node.producer != kNoOp && in_stage(node.producer);
    int last_use = -1;
    for (OpId c : node.consumers) {
      if (in_stage(c)) {
        touches_stage = true;
        last_use = std::max(last_use, static_cast<int>(c));
      }
    }
    if (!touches_stage) {
      continue;
    }
    buf_bytes[static_cast<size_t>(b)] =
        std::max(buf_bytes[static_cast<size_t>(b)], plan.ShardBytes(graph, t));
    materialized[static_cast<size_t>(b)] = 1;
    if (t == b) {
      // Resident for the stage: producer-less state, and incoming boundary activations
      // (the producer runs on another stage's workers; the shard arrives before the
      // stage's pass and is pinned until its gradient leaves).
      alloc_at[static_cast<size_t>(b)] =
          node.producer != kNoOp && in_stage(node.producer) ? node.producer : -1;
    }
    if (last_use < 0 && node.producer != kNoOp && in_stage(node.producer)) {
      last_use = num_ops;  // produced here, consumed elsewhere: pinned until hand-off
    }
    free_at[static_cast<size_t>(b)] = std::max(free_at[static_cast<size_t>(b)], last_use);
  }

  if (all_resident) {
    std::int64_t total = 0;
    for (TensorId b = 0; b < num_tensors; ++b) {
      if (buffer[static_cast<size_t>(b)] == b && materialized[static_cast<size_t>(b)]) {
        total += buf_bytes[static_cast<size_t>(b)];
      }
    }
    return total;
  }

  std::vector<std::vector<TensorId>> alloc_list(static_cast<size_t>(num_ops));
  std::vector<std::vector<TensorId>> free_list(static_cast<size_t>(num_ops));
  std::int64_t resident = 0;
  for (TensorId b = 0; b < num_tensors; ++b) {
    if (buffer[static_cast<size_t>(b)] != b || !materialized[static_cast<size_t>(b)]) {
      continue;
    }
    if (alloc_at[static_cast<size_t>(b)] < 0) {
      resident += buf_bytes[static_cast<size_t>(b)];
      continue;
    }
    alloc_list[static_cast<size_t>(alloc_at[static_cast<size_t>(b)])].push_back(b);
    if (free_at[static_cast<size_t>(b)] >= 0 && free_at[static_cast<size_t>(b)] < num_ops) {
      free_list[static_cast<size_t>(free_at[static_cast<size_t>(b)])].push_back(b);
    }
  }

  std::int64_t current = resident;
  std::int64_t peak = current;
  for (OpId k = 0; k < num_ops; ++k) {
    for (TensorId b : alloc_list[static_cast<size_t>(k)]) {
      current += buf_bytes[static_cast<size_t>(b)];
    }
    peak = std::max(peak, current);
    for (TensorId b : free_list[static_cast<size_t>(k)]) {
      current -= buf_bytes[static_cast<size_t>(b)];
    }
  }
  return peak;
}

}  // namespace

std::int64_t StageLivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan,
                                         const std::vector<char>& op_in_stage) {
  return StageSweep(graph, plan, op_in_stage, /*all_resident=*/false);
}

std::int64_t StageAllResidentShardBytes(const Graph& graph, const PartitionPlan& plan,
                                        const std::vector<char>& op_in_stage) {
  return StageSweep(graph, plan, op_in_stage, /*all_resident=*/true);
}

}  // namespace tofu
