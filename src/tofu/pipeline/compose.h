// Hybrid parallelism (ROADMAP item 3): a pipeline-stage partitioner composed with the
// intra-stage recursive Tofu DP.
//
// HybridPartition cuts the coarsened graph's macro-group sequence into S contiguous
// stages with a PipeDream-style bottleneck DP (balance per-micro-batch stage time,
// price boundary activation transfers, exclude ranges whose model state cannot fit the
// per-worker budget), assigns stage i the contiguous worker range
// [i * W/S, (i+1) * W/S), and partitions each stage's operators across its workers with
// RecursivePartitionCoarse on the stage-filtered coarse graph -- the same budget-aware
// search pure Tofu runs, seeing the SUFFIX of the topology's per-step bandwidths (the
// pipeline replaces the coarsest, slowest splits; the intra-stage search keeps the
// fast local links). Candidates at every feasible divisor stage count compete on the
// analytic 1F1B makespan (pipeline/pipeline_plan.h); S = 1 competes as the plain
// recursive plan, so on topologies where pipelining does not pay the result is
// byte-identical to pure Tofu (and carries no PipelinePlan at all).
#ifndef TOFU_PIPELINE_COMPOSE_H_
#define TOFU_PIPELINE_COMPOSE_H_

#include <cstdint>
#include <memory>

#include "tofu/interconnect/interconnect.h"
#include "tofu/partition/recursive.h"
#include "tofu/pipeline/pipeline_plan.h"
#include "tofu/sim/cost_model.h"

namespace tofu {

// Knobs of the hybrid search, separate from PartitionOptions so pure plans' cache keys
// and fingerprints are untouched. The session passes its topology's interconnect and
// coarsest bandwidth; tests force stage counts.
struct HybridOptions {
  // Upper bound on the stage count; candidates are the divisors S of num_workers with
  // S <= min(max_stages, #macro groups). 1 forces the pure-Tofu degenerate case.
  int max_stages = 8;
  // Micro-batches per stage: M = micro_batches_per_stage * S, capped by the batch
  // extent (dimension 0 of the first graph input). More micro-batches shrink the
  // pipeline bubble but multiply kernel-launch overhead; 4S keeps the bubble under
  // ~25% of steady state.
  int micro_batches_per_stage = 4;
  // Prices stage-boundary transfers between adjacent worker ranges when set (uniform
  // spread traffic matrix through the link graph, contention included). Null prices
  // them at fallback_bandwidth (or the coarsest step bandwidth when options carry one).
  std::shared_ptr<const Interconnect> interconnect;
  double fallback_bandwidth = 21e9;
  // Compute-side cost model for stage balancing (kernel times of each op's shard).
  // Defaults match K80Cluster().
  ClusterSpec cluster;
};

// Searches hybrid pipeline x Tofu plans for `graph` over `num_workers` workers. The
// returned plan either carries a PipelinePlan (plan.pipeline != nullptr, plan.steps
// empty, per-stage inner plans inside) or IS the pure recursive plan (S = 1 won;
// byte-identical to RecursivePartition under the same options). `options` is the same
// struct the pure search takes: step_bandwidths price intra-stage splits (stages see
// its suffix), memory_budget_bytes constrains both the stage DP's state filter and the
// inner searches, and dp.step_table_cache is shared across stages.
PartitionPlan HybridPartition(const Graph& graph, int num_workers,
                              const PartitionOptions& options = {},
                              const HybridOptions& hybrid = {});

}  // namespace tofu

#endif  // TOFU_PIPELINE_COMPOSE_H_
