// MemorySchedule: the per-buffer residency decisions the repair pass attaches to a
// plan whose budget is infeasible under full residency (paper §1's motivation --
// fitting models too large for one device -- pushed past pure partitioning).
//
// Three residency classes, decided per liveness buffer root (memory/liveness.h):
//
//   kResident   -- default: the buffer obeys plain liveness (allocated at its
//                  producer, freed after its last consumer; model state all along).
//   kRecompute  -- the buffer is dropped after each use and its producer re-run right
//                  before the next consumer; it is only materialized while an op
//                  touches it. Priced as one extra shard-kernel run of the producer
//                  (single-level recomputation: the producer's own inputs are assumed
//                  materialized, the standard checkpointing assumption).
//   kSwap       -- the buffer is copied out to host memory after its producer (or at
//                  iteration start for model state) and copied back in before its
//                  consumers; it is only device-resident while an op touches it.
//                  Priced as one swap-out plus one swap-in over the host link.
//
// The schedule's analytic overhead is max(swap_seconds, recompute_seconds): swaps ride
// the host link while recomputation rides the compute stream, so the two overlap. The
// event-driven replay (memory/sim_replay.h) validates analytic <= sim <= 2x analytic.
#ifndef TOFU_MEMORY_SCHEDULE_H_
#define TOFU_MEMORY_SCHEDULE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/memory/liveness.h"
#include "tofu/partition/plan.h"

namespace tofu {

enum class Residency {
  kResident = 0,
  kRecompute = 1,
  kSwap = 2,
};

const char* ResidencyName(Residency residency);

// One non-resident decision. `tensor` is a liveness buffer root; the decision covers
// the whole in-place alias chain rooted there.
struct MemoryDecision {
  TensorId tensor = 0;
  Residency residency = Residency::kResident;
  // Per-worker shard bytes of the buffer (what leaves the device between uses).
  double bytes = 0.0;
  // Priced overhead of this decision: host-link seconds for kSwap, compute seconds
  // for kRecompute.
  double overhead_seconds = 0.0;
};

struct MemorySchedule {
  // Non-resident decisions only, sorted by tensor id (determinism; unlisted buffers
  // are kResident).
  std::vector<MemoryDecision> decisions;
  // The budget the repair pass was asked to meet (bytes per worker).
  std::int64_t budget_bytes = 0;
  // Liveness peak with every buffer resident (what the plan would need without the
  // schedule) and under the decisions (what it needs with them).
  std::int64_t baseline_peak_bytes = 0;
  std::int64_t scheduled_peak_bytes = 0;
  // Aggregate pricing. swap_bytes counts both directions of host traffic.
  double swap_bytes = 0.0;
  double swap_seconds = 0.0;
  double recompute_seconds = 0.0;
  // Host-link bandwidth (bytes/s) the swap pricing used.
  double host_bandwidth = 0.0;

  // Swaps and recomputation overlap (host link vs compute stream), so the analytic
  // overhead is the busier resource. The replay simulator validates
  // analytic <= sim <= 2x analytic (the serial worst case is the sum of the two).
  double AnalyticOverheadSeconds() const {
    return std::max(swap_seconds, recompute_seconds);
  }
};

// Liveness peak under `schedule`: resident buffers are charged over their whole
// lifetime as in LivenessPeakShardBytes, while recomputed/swapped buffers are charged
// only at the ops that touch them (their producer and each consumer of any alias).
// Marking every buffer non-resident yields the minimum achievable peak: the largest
// single-op working set.
std::int64_t ScheduledPeakShardBytes(const Graph& graph, const PartitionPlan& plan,
                                     const MemorySchedule& schedule);

// MemoryModel that honours a plan's attached schedule and degrades to the plain
// liveness sweep for plans without one. This is what the session's budget verdict
// uses once the repair pass can attach schedules.
const MemoryModel& ScheduleAwareMemoryModel();

}  // namespace tofu

#endif  // TOFU_MEMORY_SCHEDULE_H_
