#include "tofu/memory/bytes.h"

namespace tofu {

double ShardBytesForCut(const Shape& shape, int elem_size, int cut, int ways) {
  std::int64_t elems = 1;
  for (size_t d = 0; d < shape.size(); ++d) {
    std::int64_t extent = shape[d];
    if (static_cast<int>(d) == cut) {
      extent = (extent + ways - 1) / ways;
    }
    elems *= extent;
  }
  return static_cast<double>(elems) * static_cast<double>(elem_size);
}

double ShardBytesForTiling(const Shape& shape, int elem_size,
                           const std::vector<int>& tiling,
                           const std::vector<int>& factors) {
  Shape shard = shape;
  for (size_t i = 0; i < tiling.size(); ++i) {
    if (tiling[i] >= 0) {
      std::int64_t& extent = shard[static_cast<size_t>(tiling[i])];
      extent = (extent + factors[i] - 1) / factors[i];
    }
  }
  return static_cast<double>(NumElements(shard)) * static_cast<double>(elem_size);
}

}  // namespace tofu
