// The memory repair pass: turns an infeasible budget into a MemorySchedule instead of
// a kResourceExhausted.
//
// When every constrained search configuration overflows the budget, the search keeps
// its minimum-communication plan and asks this pass which buffers to recompute or
// host-swap so the liveness peak fits. Candidates are liveness buffer roots; each is
// priced at the cheaper of
//
//   swap:      one swap-out + one swap-in over the host link
//              (2 * (link latency + shard_bytes / host_bandwidth)), available to any
//              buffer including resident model state;
//   recompute: one extra shard-kernel run of the producer (the sim/lowering.cc
//              recipe: registry flops * work fraction at the plan's shard
//              granularity), available to produced, non-aliased buffers only --
//              an in-place chain accumulates state that a single producer re-run
//              cannot reconstruct.
//
// The pass marks candidates greedily by overhead-per-byte-released (deterministic
// tie-breaks: cheaper total, then lower tensor id) until ScheduledPeakShardBytes meets
// the budget. The fixed candidate order makes the schedule a prefix of one sorted
// list, so tighter budgets mark supersets: overhead is monotone along a budget ladder,
// which check_perf.py's frontier gate asserts.
#ifndef TOFU_MEMORY_REPAIR_H_
#define TOFU_MEMORY_REPAIR_H_

#include <cstdint>
#include <memory>
#include <string>

#include "tofu/graph/graph.h"
#include "tofu/memory/schedule.h"
#include "tofu/partition/plan.h"
#include "tofu/sim/cost_model.h"
#include "tofu/util/status.h"

namespace tofu {

// What the repair pass may trade for memory. kNone restores the pre-repair behavior
// (infeasible budgets surface kResourceExhausted witnesses).
enum class MemoryPolicy {
  kAuto = 0,          // cheaper of swap and recompute per buffer
  kNone = 1,          // repair disabled
  kSwapOnly = 2,      // host-swap only (e.g. recomputation-hostile graphs)
  kRecomputeOnly = 3  // recompute only (e.g. no host link to spare)
};

const char* MemoryPolicyName(MemoryPolicy policy);
// Accepts the names MemoryPolicyName returns ("auto", "none", "swap", "recompute").
Result<MemoryPolicy> MemoryPolicyFromName(const std::string& name);

// Pricing inputs for the two overheads. `host_bandwidth` == 0 falls back to
// cluster.cpu_bandwidth; the session fills it from its topology (the interconnect's
// bottleneck link, matching how swap traffic would actually reach the host).
struct MemoryPricing {
  ClusterSpec cluster = K80Cluster();
  double host_bandwidth = 0.0;

  double HostBandwidth() const {
    return host_bandwidth > 0.0 ? host_bandwidth : cluster.cpu_bandwidth;
  }
  std::string Fingerprint() const;
};

struct RepairResult {
  // True when some prefix of decisions brings the peak within budget. On false, the
  // schedule is the full marking and min_achievable_peak_bytes is its peak -- the
  // floor no schedule can beat, quoted by the session's kResourceExhausted message.
  bool feasible = false;
  std::shared_ptr<const MemorySchedule> schedule;
  std::int64_t min_achievable_peak_bytes = 0;
};

// Builds the cheapest prefix schedule meeting `budget_bytes` for `plan` on `graph`.
// policy == kNone always returns infeasible-without-schedule.
RepairResult BuildRepairSchedule(const Graph& graph, const PartitionPlan& plan,
                                 std::int64_t budget_bytes, MemoryPolicy policy,
                                 const MemoryPricing& pricing);

// The peak no schedule can beat under kAuto (every buffer offloaded: the largest
// single-op working set plus nothing else). Used by infeasibility messages.
std::int64_t MinAchievablePeakBytes(const Graph& graph, const PartitionPlan& plan);

}  // namespace tofu

#endif  // TOFU_MEMORY_REPAIR_H_
