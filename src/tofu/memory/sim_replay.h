// Event-driven replay of a MemorySchedule on the sim/ executor, validating the
// analytic overhead model.
//
// The replay lowers the schedule to a SimGraph over two resources: every swap becomes
// a kHost swap-out node followed by a dependent kHost swap-in (the shared host link,
// FIFO), and every recompute becomes a kCompute node on the worker's compute stream.
// A recompute whose producer reads a swapped buffer waits for that buffer's swap-in --
// the real cross-resource coupling a greedy analytic bound ignores. RunSim's makespan
// then brackets the analytic figure by construction: the makespan is at least the
// busier resource's total (== AnalyticOverheadSeconds, since the pricing charges
// exactly what each node occupies) and at most the sum of both resources' work (the
// work-conserving executor never idles both while nodes remain), i.e.
//
//   analytic <= sim <= swap + recompute <= 2 * analytic.
#ifndef TOFU_MEMORY_SIM_REPLAY_H_
#define TOFU_MEMORY_SIM_REPLAY_H_

#include "tofu/graph/graph.h"
#include "tofu/memory/repair.h"
#include "tofu/memory/schedule.h"
#include "tofu/partition/plan.h"

namespace tofu {

// Simulated wall seconds of the schedule's overhead traffic and recomputation on one
// worker. Returns 0 for an empty schedule.
double SimulateScheduleSeconds(const Graph& graph, const PartitionPlan& plan,
                               const MemorySchedule& schedule,
                               const MemoryPricing& pricing);

}  // namespace tofu

#endif  // TOFU_MEMORY_SIM_REPLAY_H_
