#include "tofu/memory/liveness.h"

#include <algorithm>

namespace tofu {

LivenessAnalysis AnalyzeLiveness(const Graph& graph, const PartitionPlan& plan) {
  const int num_tensors = graph.num_tensors();
  LivenessAnalysis live;
  live.num_ops = graph.num_ops();

  // Resolve in-place alias chains to one buffer per chain. Op ids are a topological
  // order (AddOp appends and inputs must already exist), so one forward pass suffices.
  live.buffer.resize(static_cast<size_t>(num_tensors));
  for (TensorId t = 0; t < num_tensors; ++t) {
    live.buffer[static_cast<size_t>(t)] = t;
  }
  for (const OpNode& op : graph.ops()) {
    if (op.inplace_input >= 0 &&
        op.inplace_input < static_cast<int>(op.inputs.size())) {
      live.buffer[static_cast<size_t>(op.output)] =
          live.buffer[static_cast<size_t>(
              op.inputs[static_cast<size_t>(op.inplace_input)])];
    }
  }

  // Per buffer: shard bytes (aliases share storage; take the max member for safety),
  // allocation time (-1 = resident model state, a producer-less root), and the last op
  // that reads any alias of it (num_ops = lives to the end of the iteration).
  live.buf_bytes.assign(static_cast<size_t>(num_tensors), 0);
  live.alloc_at.assign(static_cast<size_t>(num_tensors), -1);
  live.free_at.assign(static_cast<size_t>(num_tensors), -1);
  for (TensorId t = 0; t < num_tensors; ++t) {
    const TensorNode& node = graph.tensor(t);
    const TensorId b = live.buffer[static_cast<size_t>(t)];
    live.buf_bytes[static_cast<size_t>(b)] =
        std::max(live.buf_bytes[static_cast<size_t>(b)], plan.ShardBytes(graph, t));
    if (t == b) {
      live.alloc_at[static_cast<size_t>(b)] =
          node.producer == kNoOp ? -1 : node.producer;
    }
    const int last_use = node.consumers.empty()
                             ? (node.producer == kNoOp ? -1 : live.num_ops)
                             : *std::max_element(node.consumers.begin(),
                                                 node.consumers.end());
    live.free_at[static_cast<size_t>(b)] =
        std::max(live.free_at[static_cast<size_t>(b)], last_use);
  }
  return live;
}

std::int64_t AllResidentShardBytes(const Graph& graph, const PartitionPlan& plan) {
  std::int64_t total = 0;
  for (const TensorNode& t : graph.tensors()) {
    total += plan.ShardBytes(graph, t.id);
  }
  return total;
}

std::int64_t LivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan) {
  const LivenessAnalysis live = AnalyzeLiveness(graph, plan);
  const int num_tensors = graph.num_tensors();
  const int num_ops = live.num_ops;

  std::vector<std::vector<TensorId>> alloc_list(static_cast<size_t>(num_ops));
  std::vector<std::vector<TensorId>> free_list(static_cast<size_t>(num_ops));
  std::int64_t resident = 0;
  for (TensorId b = 0; b < num_tensors; ++b) {
    if (!live.IsRoot(b)) {
      continue;  // alias, accounted under its root
    }
    if (live.IsModelState(b)) {
      resident += live.buf_bytes[static_cast<size_t>(b)];  // model state: never freed
      continue;
    }
    alloc_list[static_cast<size_t>(live.alloc_at[static_cast<size_t>(b)])].push_back(b);
    if (live.free_at[static_cast<size_t>(b)] < num_ops) {
      free_list[static_cast<size_t>(live.free_at[static_cast<size_t>(b)])].push_back(b);
    }
  }

  // Program-order sweep: a buffer is charged while its producer runs (outputs coexist
  // with still-live inputs) and credited after its last consumer completes.
  std::int64_t current = resident;
  std::int64_t peak = current;
  for (OpId k = 0; k < num_ops; ++k) {
    for (TensorId b : alloc_list[static_cast<size_t>(k)]) {
      current += live.buf_bytes[static_cast<size_t>(b)];
    }
    peak = std::max(peak, current);
    for (TensorId b : free_list[static_cast<size_t>(k)]) {
      current -= live.buf_bytes[static_cast<size_t>(b)];
    }
  }
  return peak;
}

const MemoryModel& DefaultMemoryModel() {
  static const LivenessMemoryModel model;
  return model;
}

}  // namespace tofu
