// Liveness-aware residency analysis for a partitioned graph, behind the MemoryModel
// interface every layer consults. Moved here from partition/plan.cc so the search, the
// session's feasibility verdict, the schedule repair pass, and the simulator all share
// one buffer model:
//
//   - model state (inputs, weights, optimizer history -- every producer-less tensor)
//     stays resident for the whole iteration;
//   - a produced tensor's buffer is allocated when its producer runs and freed after
//     its last consumer (a produced tensor nobody reads lives to the end);
//   - in-place outputs (OpNode::inplace_input) extend their input's buffer instead of
//     allocating a new one, so an alias chain is one buffer rooted at its first tensor.
#ifndef TOFU_MEMORY_LIVENESS_H_
#define TOFU_MEMORY_LIVENESS_H_

#include <cstdint>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/partition/plan.h"

namespace tofu {

// The per-buffer facts the peak sweep, the schedule repair pass, and the replay
// simulator all need. Indexed by TensorId; non-root entries carry zero bytes and are
// accounted under their chain root.
struct LivenessAnalysis {
  // Alias-chain root per tensor (buffer[t] == t for roots).
  std::vector<TensorId> buffer;
  // Shard bytes per buffer root (aliases share storage; max over chain members).
  std::vector<std::int64_t> buf_bytes;
  // Op that allocates the buffer, or -1 for resident model state (producer-less root).
  std::vector<int> alloc_at;
  // Last op that reads any alias (num_ops = lives to the end of the iteration).
  std::vector<int> free_at;
  int num_ops = 0;

  bool IsRoot(TensorId t) const { return buffer[static_cast<size_t>(t)] == t; }
  // Resident model state: never freed, charged for the whole iteration.
  bool IsModelState(TensorId root) const {
    return alloc_at[static_cast<size_t>(root)] < 0;
  }
};

// Resolves alias chains and computes every buffer's bytes and lifetime under `plan`'s
// final tilings. Op ids are a topological order, so one forward pass suffices.
LivenessAnalysis AnalyzeLiveness(const Graph& graph, const PartitionPlan& plan);

// Per-worker residency upper bound: every tensor's final shard resident at once, no
// liveness or buffer-reuse credit. Schedule-independent, hence conservative.
std::int64_t AllResidentShardBytes(const Graph& graph, const PartitionPlan& plan);

// Liveness-aware per-worker peak for a program-order schedule with everything
// resident. Always <= AllResidentShardBytes; this is what the session's budget check
// and feasibility verdict use.
std::int64_t LivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan);

// The interface the planner layers program against. The default model is the liveness
// sweep above; ScheduledMemoryModel (memory/schedule.h) prices plans that carry a
// MemorySchedule.
class MemoryModel {
 public:
  virtual ~MemoryModel() = default;
  // Per-worker peak resident bytes of `plan` on `graph`.
  virtual std::int64_t PeakShardBytes(const Graph& graph,
                                      const PartitionPlan& plan) const = 0;
  // Schedule-independent upper bound (everything resident at once).
  virtual std::int64_t AllResidentBytes(const Graph& graph,
                                        const PartitionPlan& plan) const = 0;
};

class LivenessMemoryModel final : public MemoryModel {
 public:
  std::int64_t PeakShardBytes(const Graph& graph,
                              const PartitionPlan& plan) const override {
    return LivenessPeakShardBytes(graph, plan);
  }
  std::int64_t AllResidentBytes(const Graph& graph,
                                const PartitionPlan& plan) const override {
    return AllResidentShardBytes(graph, plan);
  }
};

// Process-wide default (stateless, hence shareable).
const MemoryModel& DefaultMemoryModel();

}  // namespace tofu

#endif  // TOFU_MEMORY_LIVENESS_H_
