#include "tofu/memory/sim_replay.h"

#include <cstdint>
#include <vector>

#include "tofu/memory/liveness.h"
#include "tofu/sim/event_sim.h"

namespace tofu {

double SimulateScheduleSeconds(const Graph& graph, const PartitionPlan& plan,
                               const MemorySchedule& schedule,
                               const MemoryPricing& pricing) {
  if (schedule.decisions.empty()) {
    return 0.0;
  }
  const LivenessAnalysis live = AnalyzeLiveness(graph, plan);

  // The replay prices host traffic at the schedule's bandwidth, not the default
  // cluster's: RunSim reads cluster.cpu_bandwidth for kHost nodes.
  ClusterSpec cluster = pricing.cluster;
  if (schedule.host_bandwidth > 0.0) {
    cluster.cpu_bandwidth = schedule.host_bandwidth;
  }

  SimGraph sim;
  sim.num_devices = 1;
  sim.resident_bytes.assign(1, 0.0);

  // swap_in_node[root]: the node whose completion re-materializes a swapped buffer.
  std::vector<std::int32_t> swap_in_node(static_cast<size_t>(graph.num_tensors()), -1);
  for (const MemoryDecision& d : schedule.decisions) {
    if (d.residency != Residency::kSwap) {
      continue;
    }
    SimNode out;
    out.kind = SimNode::Kind::kHost;
    out.comm_bytes = d.bytes;
    out.tag = "swap_out:" + graph.tensor(d.tensor).name;
    const std::int32_t out_id = sim.Add(std::move(out));
    SimNode in;
    in.kind = SimNode::Kind::kHost;
    in.comm_bytes = d.bytes;
    in.deps = {out_id};
    in.tag = "swap_in:" + graph.tensor(d.tensor).name;
    swap_in_node[static_cast<size_t>(d.tensor)] = sim.Add(std::move(in));
  }
  for (const MemoryDecision& d : schedule.decisions) {
    if (d.residency != Residency::kRecompute) {
      continue;
    }
    SimNode rerun;
    rerun.kind = SimNode::Kind::kCompute;
    rerun.device = 0;
    rerun.duration_s = d.overhead_seconds;
    rerun.tag = "recompute:" + graph.tensor(d.tensor).name;
    // The re-run reads its producer's inputs; any of them living on the host must be
    // swapped back in first.
    const OpId producer = graph.tensor(d.tensor).producer;
    if (producer != kNoOp) {
      for (TensorId in : graph.op(producer).inputs) {
        const TensorId root = live.buffer[static_cast<size_t>(in)];
        if (swap_in_node[static_cast<size_t>(root)] >= 0) {
          rerun.deps.push_back(swap_in_node[static_cast<size_t>(root)]);
        }
      }
    }
    sim.Add(std::move(rerun));
  }

  SimOptions options;
  options.unlimited_memory = true;
  return RunSim(sim, cluster, options).makespan_s;
}

}  // namespace tofu
