#include "tofu/memory/schedule.h"

#include <algorithm>

namespace tofu {

const char* ResidencyName(Residency residency) {
  switch (residency) {
    case Residency::kResident:
      return "resident";
    case Residency::kRecompute:
      return "recompute";
    case Residency::kSwap:
      return "swap";
  }
  return "?";
}

std::int64_t ScheduledPeakShardBytes(const Graph& graph, const PartitionPlan& plan,
                                     const MemorySchedule& schedule) {
  const LivenessAnalysis live = AnalyzeLiveness(graph, plan);
  const int num_tensors = graph.num_tensors();
  const int num_ops = live.num_ops;

  std::vector<bool> offloaded(static_cast<size_t>(num_tensors), false);
  for (const MemoryDecision& d : schedule.decisions) {
    if (d.residency != Residency::kResident && d.tensor >= 0 &&
        d.tensor < num_tensors) {
      offloaded[static_cast<size_t>(d.tensor)] = true;
    }
  }

  // Resident buffers keep their liveness intervals; offloaded buffers are charged
  // transiently at each op that touches the buffer (its allocating producer and every
  // consumer of any alias in the chain), since between touches they live on the host
  // (kSwap) or not at all (kRecompute).
  std::vector<std::vector<TensorId>> alloc_list(static_cast<size_t>(num_ops));
  std::vector<std::vector<TensorId>> free_list(static_cast<size_t>(num_ops));
  std::vector<std::int64_t> transient(static_cast<size_t>(num_ops), 0);
  std::int64_t resident = 0;
  for (TensorId b = 0; b < num_tensors; ++b) {
    if (!live.IsRoot(b)) {
      continue;
    }
    const std::int64_t bytes = live.buf_bytes[static_cast<size_t>(b)];
    if (!offloaded[static_cast<size_t>(b)]) {
      if (live.IsModelState(b)) {
        resident += bytes;
        continue;
      }
      alloc_list[static_cast<size_t>(live.alloc_at[static_cast<size_t>(b)])]
          .push_back(b);
      if (live.free_at[static_cast<size_t>(b)] < num_ops) {
        free_list[static_cast<size_t>(live.free_at[static_cast<size_t>(b)])]
            .push_back(b);
      }
      continue;
    }
    // Offloaded: materialized only at touching ops. Collect the touch set across the
    // alias chain once per root (dedup via a charged-at marker per op).
    std::vector<bool> charged(static_cast<size_t>(num_ops), false);
    const int alloc = live.alloc_at[static_cast<size_t>(b)];
    if (alloc >= 0 && alloc < num_ops) {
      charged[static_cast<size_t>(alloc)] = true;
    }
    for (TensorId t = 0; t < num_tensors; ++t) {
      if (live.buffer[static_cast<size_t>(t)] != b) {
        continue;
      }
      for (OpId c : graph.tensor(t).consumers) {
        if (c >= 0 && c < num_ops) {
          charged[static_cast<size_t>(c)] = true;
        }
      }
    }
    for (OpId k = 0; k < num_ops; ++k) {
      if (charged[static_cast<size_t>(k)]) {
        transient[static_cast<size_t>(k)] += bytes;
      }
    }
  }

  std::int64_t current = resident;
  std::int64_t peak = current;
  for (OpId k = 0; k < num_ops; ++k) {
    for (TensorId b : alloc_list[static_cast<size_t>(k)]) {
      current += live.buf_bytes[static_cast<size_t>(b)];
    }
    peak = std::max(peak, current + transient[static_cast<size_t>(k)]);
    for (TensorId b : free_list[static_cast<size_t>(k)]) {
      current -= live.buf_bytes[static_cast<size_t>(b)];
    }
  }
  return peak;
}

namespace {

class ScheduleAwareModel final : public MemoryModel {
 public:
  std::int64_t PeakShardBytes(const Graph& graph,
                              const PartitionPlan& plan) const override {
    if (plan.memory_schedule != nullptr) {
      return ScheduledPeakShardBytes(graph, plan, *plan.memory_schedule);
    }
    return LivenessPeakShardBytes(graph, plan);
  }
  std::int64_t AllResidentBytes(const Graph& graph,
                                const PartitionPlan& plan) const override {
    return AllResidentShardBytes(graph, plan);
  }
};

}  // namespace

const MemoryModel& ScheduleAwareMemoryModel() {
  static const ScheduleAwareModel model;
  return model;
}

}  // namespace tofu
