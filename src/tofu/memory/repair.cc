#include "tofu/memory/repair.h"

#include <algorithm>
#include <vector>

#include "tofu/util/strings.h"

namespace tofu {

const char* MemoryPolicyName(MemoryPolicy policy) {
  switch (policy) {
    case MemoryPolicy::kAuto:
      return "auto";
    case MemoryPolicy::kNone:
      return "none";
    case MemoryPolicy::kSwapOnly:
      return "swap";
    case MemoryPolicy::kRecomputeOnly:
      return "recompute";
  }
  return "?";
}

Result<MemoryPolicy> MemoryPolicyFromName(const std::string& name) {
  if (name == "auto") {
    return MemoryPolicy::kAuto;
  }
  if (name == "none") {
    return MemoryPolicy::kNone;
  }
  if (name == "swap") {
    return MemoryPolicy::kSwapOnly;
  }
  if (name == "recompute") {
    return MemoryPolicy::kRecomputeOnly;
  }
  return Status(StatusCode::kInvalidArgument,
                "unknown memory policy '" + name +
                    "' (expected auto|none|swap|recompute)");
}

std::string MemoryPricing::Fingerprint() const {
  return StrFormat("mbw=%.17g;", HostBandwidth());
}

namespace {

// One shard-kernel run of `op` under `plan` -- the sim/lowering.cc recipe (registry
// flops at full shapes scaled by the balanced work fraction, kernel efficiency from
// the shard's row extent) mirrored here so recompute pricing matches what the event
// simulator would charge for the re-run.
double RecomputeShardSeconds(const Graph& graph, const PartitionPlan& plan,
                             const OpNode& op, const ClusterSpec& cluster) {
  OpRegistry& registry = OpRegistry::Get();
  const double work_fraction = 1.0 / static_cast<double>(std::max(1, plan.num_workers));
  const OpClass cls = registry.Info(op.type).op_class;
  const double flops = registry.Flops(op.type, graph.InputShapes(op),
                                      graph.tensor(op.output).shape, op.attrs) *
                       work_fraction;
  double bytes = static_cast<double>(graph.tensor(op.output).bytes());
  for (TensorId in : op.inputs) {
    bytes += static_cast<double>(graph.tensor(in).bytes());
  }
  bytes *= work_fraction;
  const Shape out_shape =
      plan.steps.empty() ? graph.tensor(op.output).shape : plan.ShardShape(graph, op.output);
  double rows = out_shape.empty() ? 1.0 : static_cast<double>(out_shape[0]);
  if (out_shape.size() >= 3 && cls == OpClass::kMatmul) {
    rows = 1.0;
    for (size_t d = 0; d + 1 < out_shape.size(); ++d) {
      rows *= static_cast<double>(out_shape[d]);
    }
  }
  return KernelSeconds(cluster.gpu, cls, flops, bytes, std::max(rows, 1.0));
}

struct Candidate {
  TensorId root = 0;
  Residency residency = Residency::kSwap;
  double bytes = 0.0;
  double overhead_seconds = 0.0;
};

MemorySchedule BuildSchedule(const std::vector<Candidate>& marked,
                             std::int64_t budget_bytes, std::int64_t baseline_peak,
                             double host_bandwidth) {
  MemorySchedule schedule;
  schedule.budget_bytes = budget_bytes;
  schedule.baseline_peak_bytes = baseline_peak;
  schedule.host_bandwidth = host_bandwidth;
  for (const Candidate& c : marked) {
    MemoryDecision d;
    d.tensor = c.root;
    d.residency = c.residency;
    d.bytes = c.bytes;
    d.overhead_seconds = c.overhead_seconds;
    schedule.decisions.push_back(d);
    if (c.residency == Residency::kSwap) {
      schedule.swap_bytes += 2.0 * c.bytes;
      schedule.swap_seconds += c.overhead_seconds;
    } else {
      schedule.recompute_seconds += c.overhead_seconds;
    }
  }
  std::sort(schedule.decisions.begin(), schedule.decisions.end(),
            [](const MemoryDecision& a, const MemoryDecision& b) {
              return a.tensor < b.tensor;
            });
  return schedule;
}

}  // namespace

RepairResult BuildRepairSchedule(const Graph& graph, const PartitionPlan& plan,
                                 std::int64_t budget_bytes, MemoryPolicy policy,
                                 const MemoryPricing& pricing) {
  RepairResult result;
  if (policy == MemoryPolicy::kNone) {
    return result;
  }
  const LivenessAnalysis live = AnalyzeLiveness(graph, plan);
  const std::int64_t baseline_peak = LivenessPeakShardBytes(graph, plan);
  const double host_bw = pricing.HostBandwidth();
  const int num_tensors = graph.num_tensors();

  // Which roots head an in-place alias chain with more than one member: a single
  // producer re-run cannot reconstruct the accumulated state, so they are swap-only.
  std::vector<bool> aliased(static_cast<size_t>(num_tensors), false);
  for (TensorId t = 0; t < num_tensors; ++t) {
    if (live.buffer[static_cast<size_t>(t)] != t) {
      aliased[static_cast<size_t>(live.buffer[static_cast<size_t>(t)])] = true;
    }
  }

  std::vector<Candidate> candidates;
  for (TensorId b = 0; b < num_tensors; ++b) {
    if (!live.IsRoot(b) || live.buf_bytes[static_cast<size_t>(b)] <= 0) {
      continue;
    }
    const double bytes = static_cast<double>(live.buf_bytes[static_cast<size_t>(b)]);
    const double swap_seconds =
        2.0 * (pricing.cluster.link_latency_s + bytes / host_bw);
    const bool can_swap = policy != MemoryPolicy::kRecomputeOnly;
    const bool can_recompute = policy != MemoryPolicy::kSwapOnly &&
                               !live.IsModelState(b) &&
                               !aliased[static_cast<size_t>(b)];
    Candidate c;
    c.root = b;
    c.bytes = bytes;
    if (can_recompute) {
      c.residency = Residency::kRecompute;
      c.overhead_seconds = RecomputeShardSeconds(
          graph, plan, graph.op(graph.tensor(b).producer), pricing.cluster);
    }
    if (can_swap && (!can_recompute || swap_seconds < c.overhead_seconds)) {
      c.residency = Residency::kSwap;
      c.overhead_seconds = swap_seconds;
    }
    if (!can_swap && !can_recompute) {
      continue;  // e.g. model state under kRecomputeOnly: must stay resident
    }
    candidates.push_back(c);
  }

  // Cheapest relief first: overhead per byte released, deterministic tie-breaks.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              const double ra = a.overhead_seconds / a.bytes;
              const double rb = b.overhead_seconds / b.bytes;
              if (ra != rb) {
                return ra < rb;
              }
              if (a.overhead_seconds != b.overhead_seconds) {
                return a.overhead_seconds < b.overhead_seconds;
              }
              return a.root < b.root;
            });

  std::vector<Candidate> marked;
  marked.reserve(candidates.size());
  MemorySchedule schedule =
      BuildSchedule(marked, budget_bytes, baseline_peak, host_bw);
  std::int64_t peak = baseline_peak;
  if (peak <= budget_bytes) {
    // Already fits under plain liveness; an empty schedule documents that.
    schedule.scheduled_peak_bytes = peak;
    result.feasible = true;
    result.schedule = std::make_shared<const MemorySchedule>(std::move(schedule));
    result.min_achievable_peak_bytes = peak;
    return result;
  }
  for (const Candidate& c : candidates) {
    marked.push_back(c);
    schedule = BuildSchedule(marked, budget_bytes, baseline_peak, host_bw);
    peak = ScheduledPeakShardBytes(graph, plan, schedule);
    if (peak <= budget_bytes) {
      break;
    }
  }
  schedule.scheduled_peak_bytes = peak;
  result.feasible = peak <= budget_bytes;
  result.min_achievable_peak_bytes = peak;
  result.schedule = std::make_shared<const MemorySchedule>(std::move(schedule));
  return result;
}

std::int64_t MinAchievablePeakBytes(const Graph& graph, const PartitionPlan& plan) {
  const LivenessAnalysis live = AnalyzeLiveness(graph, plan);
  MemorySchedule all_out;
  for (TensorId b = 0; b < graph.num_tensors(); ++b) {
    if (live.IsRoot(b) && live.buf_bytes[static_cast<size_t>(b)] > 0) {
      MemoryDecision d;
      d.tensor = b;
      d.residency = Residency::kSwap;
      all_out.decisions.push_back(d);
    }
  }
  return ScheduledPeakShardBytes(graph, plan, all_out);
}

}  // namespace tofu
