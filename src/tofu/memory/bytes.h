// Shard-byte accounting shared by every memory consumer: the per-step DP tables
// (partition/dp.cc), the flat joint search (partition/flat_dp.cc), the lightest-cuts
// fallback (partition/recursive.cc), and the schedule/repair machinery in this module.
// One rounding rule lives here -- ceil division along the cut dimension, whole
// otherwise, the same rounding StepContext::ApplyBasicPlan uses -- so per-step figures
// compose exactly with the shapes the next step sees.
#ifndef TOFU_MEMORY_BYTES_H_
#define TOFU_MEMORY_BYTES_H_

#include <cstdint>
#include <vector>

#include "tofu/graph/graph.h"

namespace tofu {

// Bytes one worker group stores for a tensor of (current-step) `shape` under one
// storage cut at split factor `ways`: ceil-divided along the cut dimension, whole
// otherwise. `cut` may be kReplicated (-1), meaning no dimension is divided.
double ShardBytesForCut(const Shape& shape, int elem_size, int cut, int ways);

// Bytes one worker stores for a tensor after a whole multi-step tiling: dimension
// tiling[i] is ceil-divided by factors[i] in step order (kReplicated entries skip the
// step), matching the step-wise rounding above composed across steps.
double ShardBytesForTiling(const Shape& shape, int elem_size,
                           const std::vector<int>& tiling,
                           const std::vector<int>& factors);

// A slot's resident bytes under one shared cut: all members of a coarse slot are cut
// along the same dimension, so the slot's contribution to a step's per-group residency
// is the sum of its members' shards. `shape_at(t)` supplies the tensor's current-step
// shape (StepContext::shape, or a plain shapes vector).
template <typename ShapeAt>
double SlotShardBytesForCut(const Graph& graph, const std::vector<TensorId>& members,
                            int cut, int ways, const ShapeAt& shape_at) {
  double bytes = 0.0;
  for (TensorId t : members) {
    bytes += ShardBytesForCut(shape_at(t), graph.tensor(t).elem_size, cut, ways);
  }
  return bytes;
}

// Per-group resident bytes of one step's full cut assignment: every tensor's shard at
// this step's granularity, summed. The last step's figure is the per-worker
// all-resident bound the memory-constrained search enforces.
template <typename ShapeAt>
double StepResidentBytes(const Graph& graph, const std::vector<int>& tensor_cut,
                         int ways, const ShapeAt& shape_at) {
  double bytes = 0.0;
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    bytes += ShardBytesForCut(shape_at(t), graph.tensor(t).elem_size,
                              tensor_cut[static_cast<size_t>(t)], ways);
  }
  return bytes;
}

}  // namespace tofu

#endif  // TOFU_MEMORY_BYTES_H_
