// Lightweight logging and invariant-checking facilities for Tofu.
//
// Follows the Google/Fuchsia C++ style used throughout this repository: checks abort on
// failure (invariant violations are programming errors), recoverable conditions use
// tofu::Status (see status.h) instead.
#ifndef TOFU_UTIL_LOGGING_H_
#define TOFU_UTIL_LOGGING_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace tofu {

enum class LogSeverity : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

// Returns the current minimum severity; messages below it are dropped.
LogSeverity MinLogSeverity();

// Sets the global minimum severity (e.g. to silence INFO logs in benchmarks).
void SetMinLogSeverity(LogSeverity severity);

namespace internal {

// Accumulates one log statement and emits it (to stderr) on destruction.
// kFatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

// Swallows a streamed expression when a log statement is compiled out / disabled.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace tofu

#define TOFU_LOG_INTERNAL(severity) \
  ::tofu::internal::LogMessage(severity, __FILE__, __LINE__)

#define TOFU_LOG(severity) TOFU_LOG_INTERNAL(::tofu::LogSeverity::k##severity)

// TOFU_CHECK(cond) << "message": aborts with the message when cond is false.
#define TOFU_CHECK(cond)                                 \
  (cond) ? (void)0                                       \
         : ::tofu::internal::LogMessageVoidify() &       \
               TOFU_LOG_INTERNAL(::tofu::LogSeverity::kFatal) << "Check failed: " #cond " "

#define TOFU_CHECK_OP(a, b, op) TOFU_CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define TOFU_CHECK_EQ(a, b) TOFU_CHECK_OP(a, b, ==)
#define TOFU_CHECK_NE(a, b) TOFU_CHECK_OP(a, b, !=)
#define TOFU_CHECK_LT(a, b) TOFU_CHECK_OP(a, b, <)
#define TOFU_CHECK_LE(a, b) TOFU_CHECK_OP(a, b, <=)
#define TOFU_CHECK_GT(a, b) TOFU_CHECK_OP(a, b, >)
#define TOFU_CHECK_GE(a, b) TOFU_CHECK_OP(a, b, >=)

#endif  // TOFU_UTIL_LOGGING_H_
