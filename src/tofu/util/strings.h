// Small string formatting helpers shared across modules (reports, DOT export, benches):
// printf-style StrFormat, container Join, and human-readable byte/time units.
#ifndef TOFU_UTIL_STRINGS_H_
#define TOFU_UTIL_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace tofu {

// Joins elements with `sep`, using operator<< for formatting.
template <typename Container>
std::string Join(const Container& items, const std::string& sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) {
      out << sep;
    }
    out << item;
    first = false;
  }
  return out.str();
}

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single-character delimiter; no trimming, empty tokens preserved
// ("a,,b" -> {"a", "", "b"}, "" -> {""}). The inverse of Join for char separators.
std::vector<std::string> Split(const std::string& text, char delim);

// Formats a byte count with binary units, e.g. "1.50 GiB".
std::string HumanBytes(double bytes);

// Formats a duration given in seconds with an adaptive unit, e.g. "12.3 ms".
std::string HumanSeconds(double seconds);

// Renders a fixed-width left-aligned cell (pads or truncates to `width`).
std::string Cell(const std::string& text, int width);

}  // namespace tofu

#endif  // TOFU_UTIL_STRINGS_H_
