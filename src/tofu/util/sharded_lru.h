// Sharded LRU cache: string keys, per-shard mutex, least-recently-USED eviction.
//
// The concurrency model the Session plan cache needs: readers and writers touching
// different shards never contend, a Lookup promotes its entry to most-recent within its
// shard, and an Insert past per-shard capacity evicts that shard's least-recently-used
// entry (counted in evictions()). Values are returned BY COPY so no reference ever
// escapes a shard lock -- callers hold plan-sized values, not iterators that another
// thread's eviction could invalidate.
//
// Capacity semantics: `capacity` is the total entry budget. Shard count is clamped to
// [1, capacity] so tiny caches stay exact (capacity 1 == one shard of one entry, the
// strict global-LRU a test can reason about); larger capacities split into
// ceil(capacity / num_shards) entries per shard, so the bound is per shard, not global
// -- the standard sharded-cache trade of exactness for lock spread. Capacity 0 turns
// every operation into a no-op (Lookup always misses).
#ifndef TOFU_UTIL_SHARDED_LRU_H_
#define TOFU_UTIL_SHARDED_LRU_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tofu {

template <typename Value>
class ShardedLruCache {
 public:
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8)
      : capacity_(capacity) {
    const size_t shards =
        capacity == 0 ? 0 : std::max<size_t>(1, std::min(num_shards, capacity));
    shard_capacity_ = shards == 0 ? 0 : (capacity + shards - 1) / shards;
    shards_.reserve(shards);
    for (size_t i = 0; i < shards; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  // Copies the value out under the shard lock and promotes the entry to most-recent.
  std::optional<Value> Lookup(const std::string& key) {
    if (shards_.empty()) {
      return std::nullopt;
    }
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // promote, iters stable
    return it->second->second;
  }

  // Inserts or overwrites (either way the entry becomes most-recent), evicting the
  // shard's least-recently-used entries while it is over capacity.
  void Insert(const std::string& key, Value value) {
    if (shards_.empty()) {
      return;
    }
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    while (shard.lru.size() >= shard_capacity_ && !shard.lru.empty()) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
  }

  // Removes the entry if present (used when a cached plan fails re-validation: a stale
  // signature-collision entry must not be served again). Not an eviction.
  bool Erase(const std::string& key) {
    if (shards_.empty()) {
      return false;
    }
    Shard& shard = *shards_[ShardIndex(key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      return false;
    }
    shard.lru.erase(it->second);
    shard.index.erase(it);
    return true;
  }

  void Clear() {
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  size_t size() const {
    size_t total = 0;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->lru.size();
    }
    return total;
  }

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t shard_capacity() const { return shard_capacity_; }
  std::int64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

  // Which shard a key lands in -- exposed so tests (and shard-aware reference models)
  // can reason about per-shard eviction deterministically.
  size_t ShardIndex(const std::string& key) const {
    // splitmix64 over std::hash: decorrelates the shard choice from the in-shard
    // bucket choice so one pathological hash does not serialize every key.
    std::uint64_t h = static_cast<std::uint64_t>(std::hash<std::string>{}(key));
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<size_t>(h % shards_.size());
  }

  // Keys of one shard ordered least-recent first -- the eviction order a test asserts.
  std::vector<std::string> ShardKeysOldestFirst(size_t shard_index) const {
    std::vector<std::string> keys;
    const Shard& shard = *shards_[shard_index];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      keys.push_back(it->first);
    }
    return keys;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    // front = most recently used; index holds stable list iterators.
    std::list<std::pair<std::string, Value>> lru;
    std::unordered_map<std::string, typename std::list<std::pair<std::string, Value>>::iterator>
        index;
  };

  size_t capacity_;
  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;  // unique_ptr: a mutex cannot move
  std::atomic<std::int64_t> evictions_{0};
};

}  // namespace tofu

#endif  // TOFU_UTIL_SHARDED_LRU_H_
