// Minimal Status / Result types for recoverable errors (e.g. "operator has no TDL
// description", "plan does not fit in device memory"). Invariant violations use TOFU_CHECK.
#ifndef TOFU_UTIL_STATUS_H_
#define TOFU_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "tofu/util/logging.h"

namespace tofu {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnsupported = 3,
  kResourceExhausted = 4,  // e.g. simulated out-of-memory
  kInternal = 5,
};

// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error carrier. `value()` checks ok() and aborts on error; callers that can
// recover should test ok() first (or use value_or / TOFU_ASSIGN_OR_RETURN).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    TOFU_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  // Returns the value, or `fallback` converted to T on error.
  template <typename U>
  T value_or(U&& fallback) const& {
    return ok() ? *value_ : static_cast<T>(std::forward<U>(fallback));
  }
  template <typename U>
  T value_or(U&& fallback) && {
    return ok() ? std::move(*value_) : static_cast<T>(std::forward<U>(fallback));
  }

  // Pointer-style access with the same abort-on-error contract as value().
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// TOFU_ASSIGN_OR_RETURN(lhs, expr): evaluates `expr` (a Result<T>), returns its Status
// from the enclosing function on error, and otherwise move-assigns the value into `lhs`
// (which may be a declaration, e.g. `TOFU_ASSIGN_OR_RETURN(auto plan, PlanFromJson(s))`).
// The temporary is moved from, so T only needs to be movable.
#define TOFU_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define TOFU_STATUS_MACROS_CONCAT_(x, y) TOFU_STATUS_MACROS_CONCAT_INNER_(x, y)
#define TOFU_ASSIGN_OR_RETURN(lhs, expr) \
  TOFU_ASSIGN_OR_RETURN_IMPL_(TOFU_STATUS_MACROS_CONCAT_(tofu_result_, __COUNTER__), lhs, expr)
#define TOFU_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) {                                  \
    return tmp.status();                            \
  }                                                 \
  lhs = std::move(tmp).value()

// TOFU_RETURN_IF_ERROR(expr): returns the Status from the enclosing function when the
// Status-valued `expr` is not OK.
#define TOFU_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::tofu::Status tofu_status_ = (expr);       \
    if (!tofu_status_.ok()) {                   \
      return tofu_status_;                      \
    }                                           \
  } while (false)

}  // namespace tofu

#endif  // TOFU_UTIL_STATUS_H_
