// Minimal Status / Result types for recoverable errors (e.g. "operator has no TDL
// description", "plan does not fit in device memory"). Invariant violations use TOFU_CHECK.
#ifndef TOFU_UTIL_STATUS_H_
#define TOFU_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "tofu/util/logging.h"

namespace tofu {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kUnsupported = 3,
  kResourceExhausted = 4,  // e.g. simulated out-of-memory
  kInternal = 5,
};

// Human-readable name for a status code ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Formats as "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Value-or-error carrier. `value()` checks ok() and aborts on error; callers that can
// recover should test ok() first.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    TOFU_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    TOFU_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace tofu

#endif  // TOFU_UTIL_STATUS_H_
