#include "tofu/util/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <system_error>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key; comma was handled by Key()
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  BeforeValue();
  EmitString(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  EmitString(value);
  return *this;
}

void JsonWriter::EmitString(const std::string& value) {
  out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  // JSON has no inf/nan; writing one would succeed here and fail at every reload.
  TOFU_CHECK(std::isfinite(value)) << "JsonWriter::Number on non-finite " << value;
  // Locale-independent %.17g equivalent: snprintf would emit "0,25" under a
  // comma-decimal LC_NUMERIC, producing files no JSON parser accepts.
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value, std::chars_format::general, 17);
  TOFU_CHECK(ec == std::errc()) << "to_chars failed";
  out_.append(buffer, static_cast<size_t>(end - buffer));
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

bool JsonValue::AsBool() const {
  TOFU_CHECK(kind_ == Kind::kBool) << "JsonValue::AsBool on non-bool";
  return bool_;
}

double JsonValue::AsNumber() const {
  TOFU_CHECK(kind_ == Kind::kNumber) << "JsonValue::AsNumber on non-number";
  return number_;
}

namespace {

// True when the double is an exactly-representable int64 (the cast itself is UB for
// out-of-range values, so the range check must come first; 2^63 is representable).
bool IsExactInt64(double n, std::int64_t* out) {
  if (!(n >= -9223372036854775808.0 && n < 9223372036854775808.0)) {
    return false;
  }
  const auto i = static_cast<std::int64_t>(n);
  if (static_cast<double>(i) != n) {
    return false;
  }
  *out = i;
  return true;
}

}  // namespace

std::int64_t JsonValue::AsInt() const {
  const double n = AsNumber();
  std::int64_t i = 0;
  TOFU_CHECK(IsExactInt64(n, &i)) << "JsonValue::AsInt on non-integral " << n;
  return i;
}

const std::string& JsonValue::AsString() const {
  TOFU_CHECK(kind_ == Kind::kString) << "JsonValue::AsString on non-string";
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  TOFU_CHECK(kind_ == Kind::kArray) << "JsonValue::AsArray on non-array";
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject() const {
  TOFU_CHECK(kind_ == Kind::kObject) << "JsonValue::AsObject on non-object";
  return object_;
}

std::vector<JsonValue>& JsonValue::MutableArray() {
  TOFU_CHECK(kind_ == Kind::kArray) << "JsonValue::MutableArray on non-array";
  return array_;
}

std::vector<std::pair<std::string, JsonValue>>& JsonValue::MutableObject() {
  TOFU_CHECK(kind_ == Kind::kObject) << "JsonValue::MutableObject on non-object";
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const JsonValue* found = nullptr;  // last occurrence wins, matching common parsers
  for (const auto& [k, v] : object_) {
    if (k == key) {
      found = &v;
    }
  }
  return found;
}

namespace {

Status MissingOrWrongKind(const std::string& key, const char* want) {
  return Status(StatusCode::kInvalidArgument,
                StrFormat("JSON key '%s': missing or not a %s", key.c_str(), want));
}

}  // namespace

Result<bool> JsonValue::BoolAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kBool) {
    return MissingOrWrongKind(key, "bool");
  }
  return v->AsBool();
}

Result<double> JsonValue::NumberAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kNumber) {
    return MissingOrWrongKind(key, "number");
  }
  return v->AsNumber();
}

Result<std::int64_t> JsonValue::IntAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kNumber) {
    return MissingOrWrongKind(key, "number");
  }
  const double n = v->AsNumber();
  std::int64_t i = 0;
  if (!IsExactInt64(n, &i)) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("JSON key '%s': %g is not an int64", key.c_str(), n));
  }
  return i;
}

Result<std::string> JsonValue::StringAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kString) {
    return MissingOrWrongKind(key, "string");
  }
  return v->AsString();
}

Result<const JsonValue*> JsonValue::ArrayAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kArray) {
    return MissingOrWrongKind(key, "array");
  }
  return v;
}

Result<const JsonValue*> JsonValue::ObjectAt(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind() != Kind::kObject) {
    return MissingOrWrongKind(key, "object");
  }
  return v;
}

namespace {

// Recursive-descent parser over the raw byte string. Positions are byte offsets used in
// error messages; depth guards against stack exhaustion on adversarial nesting.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    TOFU_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  Status Error(const std::string& what) const {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    const size_t n = std::strlen(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        TOFU_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::MakeString(std::move(s));
      }
      case 't':
        if (ConsumeLiteral("true")) {
          return JsonValue::MakeBool(true);
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeLiteral("false")) {
          return JsonValue::MakeBool(false);
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeLiteral("null")) {
          return JsonValue();
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) {
      return obj;
    }
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      TOFU_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      TOFU_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.MutableObject().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume('}')) {
        return obj;
      }
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) {
      return arr;
    }
    while (true) {
      TOFU_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.MutableArray().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) {
        continue;
      }
      if (Consume(']')) {
        return arr;
      }
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening '"'
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        return Error("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // '\'
      if (pos_ >= text_.size()) {
        return Error("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          TOFU_ASSIGN_OR_RETURN(unsigned code, ParseHex4());
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: must pair with a following \uDC00..\uDFFF.
            if (!ConsumeLiteral("\\u")) {
              return Error("unpaired surrogate");
            }
            TOFU_ASSIGN_OR_RETURN(unsigned low, ParseHex4());
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("invalid low surrogate");
            }
            AppendUtf8(0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00), &out);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("unpaired surrogate");
          } else {
            AppendUtf8(code, &out);
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
  }

  Result<unsigned> ParseHex4() {
    if (pos_ + 4 > text_.size()) {
      return Error("truncated \\u escape");
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + static_cast<size_t>(i)];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    pos_ += 4;
    return code;
  }

  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      *out += static_cast<char>(code);
    } else if (code < 0x800) {
      *out += static_cast<char>(0xC0 | (code >> 6));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      *out += static_cast<char>(0xE0 | (code >> 12));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (code >> 18));
      *out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    Consume('-');
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Error("invalid number");
    }
    // Integer part: a single 0, or a nonzero digit followed by digits.
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected digits after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("expected digits in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    // std::from_chars is locale-independent (strtod would misparse "3.5" under a
    // comma-decimal LC_NUMERIC, silently breaking saved plans in embedding apps).
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [end, ec] = std::from_chars(first, last, value);
    if (ec == std::errc::result_out_of_range) {
      // Overflow (1e999 -> inf) must be an error, not a silent infinity: the writer
      // would re-emit it as "inf", which no JSON parser (including this one) accepts.
      return Error("number out of double range");
    }
    if (ec != std::errc() || end != last || !std::isfinite(value)) {
      return Error("invalid number");
    }
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) { return JsonParser(text).Parse(); }

namespace {

void WriteJsonValue(const JsonValue& value, JsonWriter* writer) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      writer->Raw("null");
      break;
    case JsonValue::Kind::kBool:
      writer->Bool(value.AsBool());
      break;
    case JsonValue::Kind::kNumber:
      writer->Number(value.AsNumber());
      break;
    case JsonValue::Kind::kString:
      writer->String(value.AsString());
      break;
    case JsonValue::Kind::kArray:
      writer->BeginArray();
      for (const JsonValue& element : value.AsArray()) {
        WriteJsonValue(element, writer);
      }
      writer->EndArray();
      break;
    case JsonValue::Kind::kObject:
      writer->BeginObject();
      for (const auto& [key, member] : value.AsObject()) {
        writer->Key(key);
        WriteJsonValue(member, writer);
      }
      writer->EndObject();
      break;
  }
}

}  // namespace

std::string JsonToString(const JsonValue& value) {
  JsonWriter writer;
  WriteJsonValue(value, &writer);
  return writer.str();
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TOFU_LOG(Warning) << "cannot open " << path << " for writing";
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    TOFU_LOG(Warning) << "short write to " << path;
    return false;
  }
  return true;
}

Result<std::string> ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(StatusCode::kNotFound, StrFormat("cannot open %s", path.c_str()));
  }
  std::string content;
  char buffer[1 << 14];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status(StatusCode::kInternal, StrFormat("error reading %s", path.c_str()));
  }
  return content;
}

}  // namespace tofu
