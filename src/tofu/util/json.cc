#include "tofu/util/json.h"

#include <cstdio>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;  // value follows its key; comma was handled by Key()
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) {
      out_ += ',';
    }
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  BeforeValue();
  EmitString(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  EmitString(value);
  return *this;
}

void JsonWriter::EmitString(const std::string& value) {
  out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::Number(double value) {
  BeforeValue();
  out_ += StrFormat("%.17g", value);
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

bool WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    TOFU_LOG(Warning) << "cannot open " << path << " for writing";
    return false;
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  if (written != content.size()) {
    TOFU_LOG(Warning) << "short write to " << path;
    return false;
  }
  return true;
}

}  // namespace tofu
