// Minimal streaming JSON writer for the benchmark drivers' --json output. Emits
// machine-readable results (BENCH_*.json trajectory tracking, CI perf gates) without
// pulling in a JSON dependency.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("model").String("WResNet-152");
//   w.Key("seconds").Number(8.3);
//   w.Key("steps").BeginArray();
//   w.Number(1).Number(2);
//   w.EndArray();
//   w.EndObject();
//   WriteFile(path, w.str());
//
// The writer tracks nesting and inserts commas; it does not validate that keys are only
// used inside objects -- callers are the handful of bench drivers in this repo.
#ifndef TOFU_UTIL_JSON_H_
#define TOFU_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tofu {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);   // %.17g round-trippable
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Bool(bool value);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void EmitString(const std::string& value);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open scope
  bool after_key_ = false;
};

// Writes `content` to `path`; returns false (and logs) on failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace tofu

#endif  // TOFU_UTIL_JSON_H_
