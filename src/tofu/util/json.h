// Minimal JSON support without a third-party dependency:
//   * JsonWriter -- streaming writer for the benchmark drivers' --json output and the
//     serializable partition plans (numbers emitted with %.17g round-trip exactly);
//   * JsonValue / ParseJson -- a small recursive-descent parser producing an owned value
//     tree, used to reload saved plans (--load-plan) and baseline files.
//
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("model").String("WResNet-152");
//   w.Key("seconds").Number(8.3);
//   w.Key("steps").BeginArray();
//   w.Number(1).Number(2);
//   w.EndArray();
//   w.EndObject();
//   WriteTextFile(path, w.str());
//
//   Result<JsonValue> doc = ParseJson(w.str());
//   double s = doc->NumberAt("seconds").value();
//
// The writer tracks nesting and inserts commas; it does not validate that keys are only
// used inside objects -- callers are the bench drivers and plan serializer in this repo.
#ifndef TOFU_UTIL_JSON_H_
#define TOFU_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "tofu/util/status.h"

namespace tofu {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);   // %.17g round-trippable
  JsonWriter& Int(std::int64_t value);
  JsonWriter& Bool(bool value);
  // Appends `json` verbatim as one value (comma handling included). The caller owns its
  // well-formedness -- used to embed an already-serialized document, e.g. a plan from
  // PlanToJson inside a serving response line, without reparsing it.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  void EmitString(const std::string& value);

  std::string out_;
  std::vector<bool> needs_comma_;  // per open scope
  bool after_key_ = false;
};

// Owned JSON value tree. Objects preserve insertion order; duplicate keys keep the last
// occurrence (Find returns it).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double n);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // Kind-checked accessors; abort on kind mismatch (use the *At helpers to recover).
  bool AsBool() const;
  double AsNumber() const;
  std::int64_t AsInt() const;  // number, checked to be integral within int64 range
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;
  std::vector<JsonValue>& MutableArray();
  std::vector<std::pair<std::string, JsonValue>>& MutableObject();

  // Object member lookup; nullptr when this is not an object or the key is absent.
  const JsonValue* Find(const std::string& key) const;

  // Recoverable typed lookups on objects: kInvalidArgument when the key is missing or
  // holds the wrong kind.
  Result<bool> BoolAt(const std::string& key) const;
  Result<double> NumberAt(const std::string& key) const;
  Result<std::int64_t> IntAt(const std::string& key) const;
  Result<std::string> StringAt(const std::string& key) const;
  Result<const JsonValue*> ArrayAt(const std::string& key) const;
  Result<const JsonValue*> ObjectAt(const std::string& key) const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

// Compact re-serialization of a parsed value (numbers in %.17g, so a parse ->
// serialize round trip is byte-stable for JsonWriter-produced documents). Lets a
// consumer cut one subtree out of a larger document -- e.g. the "plan" member of a
// tofu-pland response line -- and feed it to a text-based loader like PlanFromJson.
std::string JsonToString(const JsonValue& value);

// Parses a complete JSON document (one value plus optional surrounding whitespace).
// Returns kInvalidArgument with a byte offset on malformed input. Supports the full
// scalar grammar (nulls, bools, %.17g numbers, \uXXXX escapes incl. surrogate pairs);
// nesting depth is capped at 128.
Result<JsonValue> ParseJson(const std::string& text);

// Writes `content` to `path`; returns false (and logs) on failure.
bool WriteTextFile(const std::string& path, const std::string& content);

// Reads the whole file; kNotFound when it cannot be opened.
Result<std::string> ReadTextFile(const std::string& path);

}  // namespace tofu

#endif  // TOFU_UTIL_JSON_H_
