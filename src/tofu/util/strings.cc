#include "tofu/util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace tofu {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

std::vector<std::string> Split(const std::string& text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t pos = text.find(delim, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string HumanBytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int unit = 0;
  double value = bytes;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  return StrFormat("%.2f %s", value, kUnits[unit]);
}

std::string HumanSeconds(double seconds) {
  if (seconds < 1e-6) {
    return StrFormat("%.1f ns", seconds * 1e9);
  }
  if (seconds < 1e-3) {
    return StrFormat("%.1f us", seconds * 1e6);
  }
  if (seconds < 1.0) {
    return StrFormat("%.1f ms", seconds * 1e3);
  }
  return StrFormat("%.2f s", seconds);
}

std::string Cell(const std::string& text, int width) {
  std::string out = text;
  if (static_cast<int>(out.size()) > width) {
    out.resize(static_cast<size_t>(width));
  }
  while (static_cast<int>(out.size()) < width) {
    out.push_back(' ');
  }
  return out;
}

}  // namespace tofu
