#include "tofu/util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace tofu {
namespace {

LogSeverity g_min_severity = LogSeverity::kInfo;

const char* SeverityTag(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kDebug:
      return "D";
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

LogSeverity MinLogSeverity() { return g_min_severity; }

void SetMinLogSeverity(LogSeverity severity) { g_min_severity = severity; }

namespace internal {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line) : severity_(severity) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << SeverityTag(severity) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace tofu
