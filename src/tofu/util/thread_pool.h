// Minimal fork-join thread pool for deterministic sharded loops.
//
// Work is always split into exactly num_threads() contiguous shards
// ([i*n/T, (i+1)*n/T) for shard i), so any result assembled shard-by-shard in shard
// order is independent of OS scheduling -- and identical to the single-threaded result
// when each shard's work is order-independent within the shard. The partition search
// engine relies on this to make `num_threads=4` produce byte-identical plans to
// `num_threads=1`.
#ifndef TOFU_UTIL_THREAD_POOL_H_
#define TOFU_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tofu {

class ThreadPool {
 public:
  // Spawns num_threads-1 workers (the calling thread runs shard 0); clamped to
  // [1, hardware_concurrency]. With one thread every ParallelFor runs inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  // Calls fn(shard, begin, end) for num_threads() shards covering [0, n), blocking
  // until every shard completes. fn must not recurse into ParallelFor.
  void ParallelFor(std::int64_t n,
                   const std::function<void(int, std::int64_t, std::int64_t)>& fn);

 private:
  void WorkerLoop(int worker);
  void RunShard(int shard);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(int, std::int64_t, std::int64_t)>* job_ = nullptr;
  std::int64_t job_n_ = 0;
  std::uint64_t generation_ = 0;  // bumped per ParallelFor; wakes the workers
  int pending_ = 0;               // worker shards not yet finished this generation
  bool shutdown_ = false;
};

}  // namespace tofu

#endif  // TOFU_UTIL_THREAD_POOL_H_
