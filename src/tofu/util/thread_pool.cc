#include "tofu/util/thread_pool.h"

#include <algorithm>

namespace tofu {

ThreadPool::ThreadPool(int num_threads) {
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const int threads = std::max(1, std::min(num_threads, hw > 0 ? hw : 1));
  workers_.reserve(static_cast<size_t>(threads - 1));
  for (int i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& t : workers_) {
    t.join();
  }
}

void ThreadPool::RunShard(int shard) {
  const std::int64_t t = num_threads();
  const std::int64_t begin = job_n_ * shard / t;
  const std::int64_t end = job_n_ * (shard + 1) / t;
  if (begin < end) {
    (*job_)(shard, begin, end);
  }
}

void ThreadPool::WorkerLoop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
    }
    RunShard(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) {
        work_done_.notify_one();
      }
    }
  }
}

void ThreadPool::ParallelFor(
    std::int64_t n, const std::function<void(int, std::int64_t, std::int64_t)>& fn) {
  if (n <= 0) {
    return;
  }
  if (workers_.empty()) {
    fn(0, 0, n);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_n_ = n;
    pending_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  work_ready_.notify_all();
  RunShard(0);
  std::unique_lock<std::mutex> lock(mu_);
  work_done_.wait(lock, [&] { return pending_ == 0; });
  job_ = nullptr;
}

}  // namespace tofu
