// Dynamic-programming search for one basic partition step (paper §5.1, after Jia et al.
// ICML'18, adapted to fine-grained coarsened graphs).
//
// The DP processes macro groups in program order, maintaining a frontier of "live" slots
// (slots touched by both processed and unprocessed groups). A DP state assigns a storage
// cut to every frontier slot; adding a group charges, for each of its units, the cheapest
// applicable strategy given those cuts -- strategies are conditionally independent given
// the cuts, which is what keeps the in-group search cheap ("only a few operators in each
// group"). On a linear coarsened graph this is exactly the chain DP of the paper; residual
// fork-joins simply widen the frontier by one slot.
//
// The frontier mechanics (packed-integer state keys, per-group dense cost tables, beam
// degradation, optional threaded expansion) live in the shared engine of
// partition/search_engine.h; this file contributes only the step-DP cost semantics.
#ifndef TOFU_PARTITION_DP_H_
#define TOFU_PARTITION_DP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "tofu/partition/coarsen.h"
#include "tofu/partition/plan.h"
#include "tofu/partition/search_stats.h"
#include "tofu/partition/strategy.h"

namespace tofu {

class StepTableCache;

struct DpOptions {
  // Drop case-2 (output-reduction) strategies; models the ICML'18 baseline of §7.3.
  bool allow_reduction_strategies = true;
  // Safety cap on simultaneous DP states (frontier blow-up on non-chain graphs).
  std::int64_t max_states = 1 << 22;
  // Threads for state expansion (see SearchEngineOptions::num_threads). 0 (the default)
  // auto-sizes from hardware_concurrency; any value yields byte-identical plans.
  int num_threads = 0;
  // Dominated-option pruning in the engine's dense-lattice searches (see
  // SearchEngineOptions::prune_dominated): provably plan-preserving, on by default;
  // exposed so ablations can measure it. Part of the fingerprint -- not because plans
  // differ (they cannot), but because SearchStats differ and cached stats must match
  // what a fresh search would report.
  bool prune_dominated = true;
  // Bandwidth (bytes/s) of the link this step's traffic crosses; > 0 makes RunStepDp
  // fill BasicPlan::comm_seconds. Within one step every transfer crosses the same link,
  // so the bandwidth scales all candidate costs equally and cannot change the argmin --
  // the recursion (recursive.h) uses it to compare different step *orderings*, where
  // the byte totals genuinely differ.
  double link_bandwidth = 0.0;
  // Resident-byte budget for ONE worker group at this step (the recursion divides the
  // per-worker budget by the shrink still to come; see recursive.cc). > 0 makes the
  // search prune assignments whose per-group shard bytes cannot fit and prefer lighter
  // plans on cost ties, returning the cheapest feasible plan the constrained DP finds
  // -- guaranteed feasible, and exact except when an equal-key projection merge
  // discards the state with the only cheap feasible completion (docs/search.md,
  // "Memory-constrained search", documents this approximation). 0 keeps the search
  // unconstrained and bit-identical to the pre-budget engine.
  std::int64_t memory_budget_bytes = 0;
  // Optional cross-request cache of per-step DP compilations (incremental
  // re-planning). Not owned; null disables caching. Deliberately EXCLUDED from
  // Fingerprint -- the cache is a performance vehicle, never an input: a warm lookup
  // reuses unit evaluators and cost tables whose values are fully determined by the
  // step's graph, shapes, ways and allow_reduction_strategies (all part of the cache
  // key), so warm and cold searches return byte-identical plans AND stats.
  StepTableCache* step_table_cache = nullptr;

  // Deterministic serialization of every semantically relevant field for the Session
  // plan-cache key; extend together with the struct (see CoarsenOptions::Fingerprint).
  // num_threads and step_table_cache are omitted: neither can change the returned plan.
  std::string Fingerprint() const;
};

// Cache of per-step DP compilations, keyed by (graph signature, step shapes, ways,
// strategy filtering) -- everything the compiled artifacts depend on, and nothing they
// do not: memory budgets, link bandwidths, thread counts and state caps are all
// EXCLUDED, so a request that differs only in those (a budget ladder probing the same
// model, a re-plan after a bandwidth re-measure) reuses the expensive work of the
// original search. A hit skips rebuilding the per-unit cost evaluators and the per-slot
// byte tables, and hands the engine every previously computed per-group cost table
// (SearchEngineOptions::reuse_tables); tables the engine still has to fill (e.g. a
// budgeted search memo-charged a group the unbudgeted search tabled) are folded back
// into the entry afterwards. Thread-safe; entries are immutable once published.
class StepTableCache {
 public:
  explicit StepTableCache(std::size_t max_entries = 64, std::size_t shards = 8);
  ~StepTableCache();

  StepTableCache(const StepTableCache&) = delete;
  StepTableCache& operator=(const StepTableCache&) = delete;

  struct Stats {
    std::uint64_t hits = 0;    // lookups that reused a compatible compilation
    std::uint64_t misses = 0;  // lookups that compiled fresh (including first touch)
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  friend struct StepTableCacheAccess;  // dp.cc-internal lookup/insert
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct DpResult {
  BasicPlan plan;
  // False when memory_budget_bytes > 0 excluded every assignment at this step: even
  // cutting every tensor that can be cut overflows the budget. The plan is then
  // meaningless (empty); min_possible_bytes reports the unbeatable lower bound.
  bool feasible = true;
  // Lower bound on per-group resident bytes over ALL assignments at this step's shapes
  // (each slot takes its lightest cut). 0 when the search ran without a budget.
  double min_possible_bytes = 0.0;
  // Search effort and exactness (stats.exact is false only after beam degradation; with
  // the coarsening of §5.1 enabled that never triggers on the paper's models -- it
  // exists so ablations that disable coarsening degrade instead of failing).
  SearchStats stats;
};

// Finds the minimum-communication basic plan for ctx->ways() worker groups.
DpResult RunStepDp(StepContext* ctx, const CoarseGraph& coarse, const DpOptions& options);

}  // namespace tofu

#endif  // TOFU_PARTITION_DP_H_
