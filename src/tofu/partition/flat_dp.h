// The non-recursive "DP with coarsening" of Table 1: one DP pass whose configurations are
// full multi-dimension tilings (e.g. the 20 ways to split a 4-D tensor across 8 workers)
// and whose per-group search enumerates the *joint* configuration space of the group's
// members -- the 20^6-style blow-up the paper measured at 8 hours for WResNet-152.
//
// The search runs under a wall-clock budget: small graphs complete (and are cross-checked
// against the recursive algorithm in tests); large graphs report the enumerated share and
// a projected completion time, which is what bench_table1_search prints.
//
// The frontier mechanics are the shared engine of partition/search_engine.h in streamed
// mode: the per-state joint enumeration below IS the measured blow-up, so group costs are
// charged one state at a time instead of through precomputed tables.
#ifndef TOFU_PARTITION_FLAT_DP_H_
#define TOFU_PARTITION_FLAT_DP_H_

#include "tofu/partition/coarsen.h"
#include "tofu/partition/plan.h"
#include "tofu/partition/search_stats.h"

namespace tofu {

struct FlatDpOptions {
  int num_workers = 8;
  double time_budget_seconds = 5.0;
  bool allow_reduction_strategies = true;
  // Per-worker resident-byte budget (0 = unconstrained). The flat search's options are
  // whole multi-step tilings, so the final per-worker residency of each slot is known
  // per option and the budget applies directly (no per-step relaxation as in the
  // recursion): tilings that cannot fit are pruned, and `feasible` turns false when
  // even the lightest joint tiling overflows.
  std::int64_t memory_budget_bytes = 0;
};

struct FlatDpResult {
  bool completed = false;
  // False when memory_budget_bytes excluded every tiling (nothing was searched);
  // min_possible_bytes then reports the unbeatable per-worker lower bound.
  bool feasible = true;
  double min_possible_bytes = 0.0;
  PartitionPlan plan;  // meaningful only when completed && feasible
  double elapsed_seconds = 0.0;
  // Joint group configurations actually costed vs. the full count the run would need.
  double configs_evaluated = 0.0;
  double configs_total = 0.0;
  double projected_seconds = 0.0;  // elapsed scaled to the full count (when incomplete)
  // Engine-level effort (per-state charge counts; no cost tables in streamed mode).
  SearchStats search_stats;
};

FlatDpResult RunFlatDp(const Graph& graph, const CoarseGraph& coarse,
                       const FlatDpOptions& options);

}  // namespace tofu

#endif  // TOFU_PARTITION_FLAT_DP_H_
