// The recursive partition algorithm (paper §5.2, appendix A): apply the basic DP to the
// coarsened graph to split among k1 worker groups, shrink every tensor along its chosen
// cut, and recurse inside a group with factor k2, and so on (k = k1*k2*...*km,
// non-increasing). Each step's cost is weighted by the number of groups at that level
// (appendix Eq. 3); Theorem 2's monotonicity (delta_i <= delta_{i+1}) is exposed through
// PartitionPlan::weighted_step_costs for verification.
//
// Invariant: the CoarseGraph is computed ONCE from the unpartitioned graph and shared by
// every recursive step. Coarsening is purely structural (forward/backward links, unroll
// keys, element-wise coalescing) and partitioning never changes structure -- only the
// per-step shapes shrink, which RecursivePartition threads through a fresh StepContext
// per step. Anything shape-dependent therefore must live in StepContext / strategy
// concretization, never in CoarseGraph.
#ifndef TOFU_PARTITION_RECURSIVE_H_
#define TOFU_PARTITION_RECURSIVE_H_

#include "tofu/memory/repair.h"
#include "tofu/partition/coarsen.h"
#include "tofu/partition/dp.h"
#include "tofu/partition/plan.h"

namespace tofu {

struct PartitionOptions {
  CoarsenOptions coarsen;
  DpOptions dp;
  // Bandwidth (bytes/s) of the link recursive step i crosses, coarse to fine; steps past
  // the end reuse the last entry. Empty keeps the search topology-agnostic (pure bytes,
  // today's behaviour, bit-identical plans). When the bandwidths actually differ across
  // steps, RecursivePartition additionally searches over distinct orderings of the step
  // factors and keeps the one with the lowest estimated communication time -- putting
  // the cheap-to-communicate split on the slow cross-group link (see core/session.h's
  // DeviceTopology, which fills this from intra-group p2p vs. cross-group host links).
  std::vector<double> step_bandwidths;
  // Per-worker resident-byte budget (0 = unconstrained). When set, each recursive step
  // searches under the relaxed bound budget * (shrink still to come) -- a condition
  // implied by final feasibility -- and the returned plan's final per-worker shards
  // fit. The plan is the cheapest the constrained per-step DP finds, which is near-
  // but not provably-minimum communication (per-step greediness and the engine's
  // single-state-per-key merges; see docs/search.md). When the canonical factor
  // ordering cannot fit, the ordering search engages even on uniform topologies, and
  // if no ordering's DP fits, a lightest-cuts fallback plan is tried; only when that
  // overflows too does the plan come back marked memory_feasible = false.
  std::int64_t memory_budget_bytes = 0;
  // What the memory repair pass (memory/repair.h) may trade for memory when even the
  // lightest-cuts fallback overflows the budget AND the liveness peak confirms the
  // overflow: under any policy but kNone the search then returns its unconstrained
  // minimum-communication plan with a MemorySchedule attached (recompute / host-swap
  // decisions priced by `memory_pricing`) instead of an infeasible witness. kNone
  // restores the witness behavior.
  MemoryPolicy memory_policy = MemoryPolicy::kAuto;
  MemoryPricing memory_pricing;

  // Deterministic serialization of every field (composing the nested fingerprints) for
  // the Session plan-cache key; extend together with the struct.
  std::string Fingerprint() const;
};

// The shared per-level lookup rule: step i takes levels[i], steps past the end reuse the
// last entry, and an empty list falls back to `fallback`. Used both for the search's
// step weighting here and for DeviceTopology::BandwidthForStep in core/session.cc --
// one definition so the two can never disagree.
double LevelBandwidth(const std::vector<double>& levels, double fallback, size_t step);

// Bandwidth step i sees under `options` (0 when step_bandwidths is empty).
double StepBandwidth(const PartitionOptions& options, size_t step);

// Partitions `graph` across `num_workers` workers; num_workers == 1 returns the trivial
// plan. The same entry point with dp.allow_reduction_strategies=false reproduces the
// ICML'18 baseline of §7.3.
PartitionPlan RecursivePartition(const Graph& graph, int num_workers,
                                 const PartitionOptions& options = {});

// Same search, but over a caller-supplied coarse graph instead of coarsening `graph`
// internally. The pipeline composition layer (pipeline/compose.h) uses this to run the
// recursive DP on a stage-filtered CoarseGraph -- same slots and units, but only the
// macro groups inside one pipeline stage -- so off-stage operators contribute nothing
// to the search. `options.coarsen` is ignored (the coarse graph is already built).
PartitionPlan RecursivePartitionCoarse(const Graph& graph, int num_workers,
                                       const CoarseGraph& coarse,
                                       const PartitionOptions& options = {});

}  // namespace tofu

#endif  // TOFU_PARTITION_RECURSIVE_H_
