// The recursive partition algorithm (paper §5.2, appendix A): apply the basic DP to the
// coarsened graph to split among k1 worker groups, shrink every tensor along its chosen
// cut, and recurse inside a group with factor k2, and so on (k = k1*k2*...*km,
// non-increasing). Each step's cost is weighted by the number of groups at that level
// (appendix Eq. 3); Theorem 2's monotonicity (delta_i <= delta_{i+1}) is exposed through
// PartitionPlan::weighted_step_costs for verification.
//
// Invariant: the CoarseGraph is computed ONCE from the unpartitioned graph and shared by
// every recursive step. Coarsening is purely structural (forward/backward links, unroll
// keys, element-wise coalescing) and partitioning never changes structure -- only the
// per-step shapes shrink, which RecursivePartition threads through a fresh StepContext
// per step. Anything shape-dependent therefore must live in StepContext / strategy
// concretization, never in CoarseGraph.
#ifndef TOFU_PARTITION_RECURSIVE_H_
#define TOFU_PARTITION_RECURSIVE_H_

#include "tofu/partition/coarsen.h"
#include "tofu/partition/dp.h"
#include "tofu/partition/plan.h"

namespace tofu {

struct PartitionOptions {
  CoarsenOptions coarsen;
  DpOptions dp;
};

// Partitions `graph` across `num_workers` workers; num_workers == 1 returns the trivial
// plan. The same entry point with dp.allow_reduction_strategies=false reproduces the
// ICML'18 baseline of §7.3.
PartitionPlan RecursivePartition(const Graph& graph, int num_workers,
                                 const PartitionOptions& options = {});

}  // namespace tofu

#endif  // TOFU_PARTITION_RECURSIVE_H_
