#include "tofu/partition/partitioned_graph.h"

#include "tofu/util/logging.h"

namespace tofu {

PlanCostBreakdown ComputePlanCosts(const Graph& graph, const PartitionPlan& plan) {
  PlanCostBreakdown out;
  out.per_op.assign(static_cast<size_t>(graph.num_ops()), OpPlanCost{});

  std::vector<Shape> shapes = StepContext::InitialShapes(graph);
  double groups = 1.0;
  for (const BasicPlan& step : plan.steps) {
    StepContext ctx(graph, shapes, step.ways);
    for (OpId op = 0; op < graph.num_ops(); ++op) {
      OpPlanCost& cost = out.per_op[static_cast<size_t>(op)];
      const int sidx = step.op_strategy[static_cast<size_t>(op)];
      const double fetch = groups * ctx.OpInputCommBytes(op, sidx, step.tensor_cut);
      const double reduce = groups * ctx.OpOutputCommBytes(op, sidx, step.tensor_cut);
      cost.fetch_bytes_total += fetch;
      cost.reduce_bytes_total += reduce;
      out.total_comm_bytes += fetch + reduce;
      if (sidx == kReplicatedExec) {
        // Work is not divided at this step.
      } else {
        cost.work_fraction /= static_cast<double>(step.ways);
        if (ctx.Strategies(op)[static_cast<size_t>(sidx)].is_reduction) {
          cost.output_alloc_factor *= static_cast<double>(step.ways);
        }
      }
    }
    shapes = StepContext::ApplyBasicPlan(graph, shapes, step);
    groups *= static_cast<double>(step.ways);
  }
  return out;
}

}  // namespace tofu
