#include "tofu/partition/recursive.h"

#include <algorithm>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::string PartitionOptions::Fingerprint() const {
  std::string out = coarsen.Fingerprint() + dp.Fingerprint() + "bw=";
  for (double b : step_bandwidths) {
    out += StrFormat("%.17g,", b);
  }
  out += ';';
  return out;
}

namespace {

// Runs the per-step DP loop for one ordering of the step factors. Coarsening is
// structural and shared by all steps (and all candidate orderings); shapes change per
// step.
PartitionPlan RunSteps(const Graph& graph, int num_workers, const CoarseGraph& coarse,
                       const PartitionOptions& options, const std::vector<int>& factors) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  plan.step_factors = factors;
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);

  bool any_bandwidth = false;
  double groups = 1.0;
  for (size_t i = 0; i < factors.size(); ++i) {
    StepContext ctx(graph, shapes, factors[i]);
    DpOptions dp_options = options.dp;
    // Per-step bandwidths take precedence; a caller-set flat dp.link_bandwidth (the
    // dp.h contract) survives when no step_bandwidths were provided.
    const double step_bw = StepBandwidth(options, i);
    if (step_bw > 0.0) {
      dp_options.link_bandwidth = step_bw;
    }
    DpResult dp = RunStepDp(&ctx, coarse, dp_options);
    plan.search_stats.Merge(dp.stats);
    const double weighted = groups * dp.plan.comm_bytes;
    plan.weighted_step_costs.push_back(weighted);
    plan.total_comm_bytes += weighted;
    // step_seconds stays parallel to steps: a step without a usable bandwidth records
    // 0; the whole vector is dropped below when no step had one.
    const double seconds =
        dp_options.link_bandwidth > 0.0 ? weighted / dp_options.link_bandwidth : 0.0;
    any_bandwidth = any_bandwidth || dp_options.link_bandwidth > 0.0;
    plan.step_seconds.push_back(seconds);
    plan.estimated_comm_seconds += seconds;
    shapes = StepContext::ApplyBasicPlan(graph, shapes, dp.plan);
    plan.steps.push_back(std::move(dp.plan));
    groups *= static_cast<double>(factors[i]);
  }
  if (!any_bandwidth) {
    plan.step_seconds.clear();  // topology-agnostic search: no estimates at all
  }
  return plan;
}

// True when the steps would see at least two different bandwidths, i.e. ordering the
// factors differently can change the estimated time. All-equal (or absent) bandwidths
// scale every candidate identically, so the canonical order stays optimal.
bool BandwidthsDiffer(const PartitionOptions& options, size_t num_steps) {
  if (options.step_bandwidths.empty() || num_steps < 2) {
    return false;
  }
  const double first = StepBandwidth(options, 0);
  for (size_t i = 1; i < num_steps; ++i) {
    if (StepBandwidth(options, i) != first) {
      return true;
    }
  }
  return false;
}

}  // namespace

double LevelBandwidth(const std::vector<double>& levels, double fallback, size_t step) {
  if (levels.empty()) {
    return fallback;
  }
  return levels[std::min(step, levels.size() - 1)];
}

double StepBandwidth(const PartitionOptions& options, size_t step) {
  return LevelBandwidth(options.step_bandwidths, 0.0, step);
}

PartitionPlan RecursivePartition(const Graph& graph, int num_workers,
                                 const PartitionOptions& options) {
  if (num_workers <= 1) {
    PartitionPlan plan;
    plan.num_workers = num_workers;
    return plan;
  }

  const CoarseGraph coarse = Coarsen(graph, options.coarsen);
  const std::vector<int> canonical = FactorizeWorkers(num_workers);
  PartitionPlan best = RunSteps(graph, num_workers, coarse, options, canonical);
  if (!BandwidthsDiffer(options, canonical.size())) {
    return best;
  }

  // Non-uniform topology: the factor ordering matters, because the coarsest step's bytes
  // cross the slowest link and each step's byte total depends on the shapes the earlier
  // steps left behind. Enumerate the distinct permutations of the factor multiset
  // (ascending start -> lexicographic next_permutation covers each exactly once) and keep
  // the lowest estimated time; ties keep the canonical non-increasing order. The
  // permutation count is tiny for realistic worker counts (<= 6 below 64 workers), but a
  // cap bounds adversarial inputs.
  constexpr int kMaxOrderings = 24;
  std::vector<int> ordering = canonical;
  std::sort(ordering.begin(), ordering.end());
  int tried = 0;
  do {
    if (ordering == canonical) {
      continue;  // already evaluated
    }
    PartitionPlan candidate = RunSteps(graph, num_workers, coarse, options, ordering);
    best.search_stats.Merge(candidate.search_stats);
    if (candidate.estimated_comm_seconds < best.estimated_comm_seconds) {
      const SearchStats merged = best.search_stats;
      best = std::move(candidate);
      best.search_stats = merged;
    }
    ++tried;
  } while (std::next_permutation(ordering.begin(), ordering.end()) && tried < kMaxOrderings);
  return best;
}

}  // namespace tofu
