#include "tofu/partition/recursive.h"

#include <algorithm>
#include <limits>

#include "tofu/memory/bytes.h"
#include "tofu/memory/liveness.h"
#include "tofu/memory/repair.h"
#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::string PartitionOptions::Fingerprint() const {
  std::string out = coarsen.Fingerprint() + dp.Fingerprint() + "bw=";
  for (double b : step_bandwidths) {
    out += StrFormat("%.17g,", b);
  }
  out += ';';
  out += StrFormat("mb=%lld;", static_cast<long long>(memory_budget_bytes));
  out += StrFormat("mpol=%d;", static_cast<int>(memory_policy));
  out += memory_pricing.Fingerprint();
  return out;
}

namespace {

// Per-worker budget relaxed for step i: the steps still to come can shrink a tensor by
// at most the product of their factors, so a plan whose final per-worker shards fit B
// necessarily keeps step i's per-group bytes within B * prod(factors[i+1..]) -- the
// per-step bound the DP prunes against. Saturating: huge budgets stay "unconstrained
// enough" instead of overflowing.
std::int64_t StepBudget(std::int64_t budget, const std::vector<int>& factors, size_t i) {
  if (budget <= 0) {
    return 0;
  }
  std::int64_t remaining = 1;
  for (size_t j = i + 1; j < factors.size(); ++j) {
    remaining *= factors[j];
  }
  if (budget > std::numeric_limits<std::int64_t>::max() / remaining) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return budget * remaining;
}

// Folds one finished step into the plan: weighted cost (appendix Eq. 3), topology-
// weighted seconds, shrunken shapes for the next step, and the group multiplier.
// Shared by the DP loop and the lightest-cuts fallback so their per-step bookkeeping
// can never diverge. step_seconds stays parallel to steps: a step without a usable
// bandwidth records 0, and the caller drops the whole vector when no step had one.
void AppendStep(const Graph& graph, BasicPlan step, double link_bandwidth,
                PartitionPlan* plan, std::vector<Shape>* shapes, double* groups,
                bool* any_bandwidth) {
  const double weighted = *groups * step.comm_bytes;
  plan->weighted_step_costs.push_back(weighted);
  plan->total_comm_bytes += weighted;
  const double seconds = link_bandwidth > 0.0 ? weighted / link_bandwidth : 0.0;
  *any_bandwidth = *any_bandwidth || link_bandwidth > 0.0;
  plan->step_seconds.push_back(seconds);
  plan->estimated_comm_seconds += seconds;
  *shapes = StepContext::ApplyBasicPlan(graph, *shapes, step);
  *groups *= static_cast<double>(step.ways);
  plan->steps.push_back(std::move(step));
}

// Runs the per-step DP loop for one ordering of the step factors. Coarsening is
// structural and shared by all steps (and all candidate orderings); shapes change per
// step. With a budget, each step searches under its relaxed bound; a step where even
// the lightest assignment overflows stops the loop with memory_feasible = false (the
// partial plan is only an infeasibility witness -- the driver never returns it).
PartitionPlan RunSteps(const Graph& graph, int num_workers, const CoarseGraph& coarse,
                       const PartitionOptions& options, const std::vector<int>& factors) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  plan.step_factors = factors;
  plan.memory_budget_bytes = options.memory_budget_bytes;
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);

  bool any_bandwidth = false;
  double groups = 1.0;
  for (size_t i = 0; i < factors.size(); ++i) {
    StepContext ctx(graph, shapes, factors[i]);
    DpOptions dp_options = options.dp;
    // Per-step bandwidths take precedence; a caller-set flat dp.link_bandwidth (the
    // dp.h contract) survives when no step_bandwidths were provided.
    const double step_bw = StepBandwidth(options, i);
    if (step_bw > 0.0) {
      dp_options.link_bandwidth = step_bw;
    }
    dp_options.memory_budget_bytes = StepBudget(options.memory_budget_bytes, factors, i);
    DpResult dp = RunStepDp(&ctx, coarse, dp_options);
    plan.search_stats.Merge(dp.stats);
    if (!dp.feasible) {
      plan.memory_feasible = false;
      return plan;
    }
    AppendStep(graph, std::move(dp.plan), dp_options.link_bandwidth, &plan, &shapes,
               &groups, &any_bandwidth);
  }
  if (!any_bandwidth) {
    plan.step_seconds.clear();  // topology-agnostic search: no estimates at all
  }
  return plan;
}

// The lightest plan of one factor ordering, built without the DP: byte totals are
// separable per slot, so each slot independently takes its minimum-resident cut at
// every step (ties prefer the dimension with the largest current extent, keeping later
// steps something to cut; then the lowest dimension, for determinism), and each
// operator the cheapest strategy under those cuts. This is both the feasibility
// fallback when every constrained DP ordering fails -- a feasible plan may still exist
// off the DP's cost-greedy path -- and the witness behind a kResourceExhausted verdict:
// if even this plan overflows, the configuration cannot fit.
PartitionPlan MinBytesSteps(const Graph& graph, int num_workers, const CoarseGraph& coarse,
                            const PartitionOptions& options,
                            const std::vector<int>& factors) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  plan.step_factors = factors;
  plan.memory_budget_bytes = options.memory_budget_bytes;
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);

  bool any_bandwidth = false;
  double groups = 1.0;
  for (size_t i = 0; i < factors.size(); ++i) {
    const int f = factors[i];
    StepContext ctx(graph, shapes, f);
    BasicPlan bp;
    bp.ways = f;
    bp.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
    for (const TensorSlot& slot : coarse.slots) {
      const TensorId rep = slot.members[0];
      int best_cut = kReplicated;
      double best_bytes = std::numeric_limits<double>::infinity();
      std::int64_t best_extent = -1;
      for (int cut : ctx.CutOptions(rep)) {
        const double b = SlotShardBytesForCut(
            graph, slot.members, cut, f,
            [&ctx](TensorId t) -> const Shape& { return ctx.shape(t); });
        const std::int64_t extent =
            cut == kReplicated ? -1 : ctx.shape(rep)[static_cast<size_t>(cut)];
        if (b < best_bytes || (b == best_bytes && extent > best_extent)) {
          best_cut = cut;
          best_bytes = b;
          best_extent = extent;
        }
      }
      for (TensorId t : slot.members) {
        bp.tensor_cut[static_cast<size_t>(t)] = best_cut;
      }
    }
    bp.op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
    for (OpId op_id = 0; op_id < graph.num_ops(); ++op_id) {
      double op_best = ctx.OpCommBytes(op_id, kReplicatedExec, bp.tensor_cut);
      int op_choice = kReplicatedExec;
      const int n = static_cast<int>(ctx.Strategies(op_id).size());
      for (int sidx = 0; sidx < n; ++sidx) {
        if (!options.dp.allow_reduction_strategies &&
            ctx.Strategies(op_id)[static_cast<size_t>(sidx)].is_reduction) {
          continue;
        }
        if (!ctx.Applicable(op_id, sidx)) {
          continue;
        }
        const double c = ctx.OpCommBytes(op_id, sidx, bp.tensor_cut);
        if (c < op_best) {
          op_best = c;
          op_choice = sidx;
        }
      }
      bp.op_strategy[static_cast<size_t>(op_id)] = op_choice;
      bp.comm_bytes += op_best;
    }
    bp.peak_shard_bytes = StepResidentBytes(
        graph, bp.tensor_cut, f,
        [&ctx](TensorId t) -> const Shape& { return ctx.shape(t); });
    const double step_bw = StepBandwidth(options, i);
    const double link_bw = step_bw > 0.0 ? step_bw : options.dp.link_bandwidth;
    if (link_bw > 0.0) {
      bp.comm_seconds = bp.comm_bytes / link_bw;
    }
    AppendStep(graph, std::move(bp), link_bw, &plan, &shapes, &groups, &any_bandwidth);
  }
  if (!any_bandwidth) {
    plan.step_seconds.clear();
  }
  // The real memory constraint is the FINAL per-worker residency: intermediate groups
  // are sets of workers, each of which only ever stores its final shard.
  plan.memory_feasible =
      options.memory_budget_bytes <= 0 ||
      (!plan.steps.empty() &&
       plan.steps.back().peak_shard_bytes <=
           static_cast<double>(options.memory_budget_bytes));
  return plan;
}

// True when the steps would see at least two different bandwidths, i.e. ordering the
// factors differently can change the estimated time. All-equal (or absent) bandwidths
// scale every candidate identically, so the canonical order stays optimal.
bool BandwidthsDiffer(const PartitionOptions& options, size_t num_steps) {
  if (options.step_bandwidths.empty() || num_steps < 2) {
    return false;
  }
  const double first = StepBandwidth(options, 0);
  for (size_t i = 1; i < num_steps; ++i) {
    if (StepBandwidth(options, i) != first) {
      return true;
    }
  }
  return false;
}

}  // namespace

double LevelBandwidth(const std::vector<double>& levels, double fallback, size_t step) {
  if (levels.empty()) {
    return fallback;
  }
  return levels[std::min(step, levels.size() - 1)];
}

double StepBandwidth(const PartitionOptions& options, size_t step) {
  return LevelBandwidth(options.step_bandwidths, 0.0, step);
}

namespace {

// Candidate preference for the ordering search: a memory-feasible plan always beats an
// infeasible one; among equals, lower estimated time, then lower weighted bytes (the
// time metric when no bandwidths were given). Strict, so ties keep the earlier
// candidate -- the canonical non-increasing order stays the deterministic default.
bool PlanBeats(const PartitionPlan& a, const PartitionPlan& b) {
  if (a.memory_feasible != b.memory_feasible) {
    return a.memory_feasible;
  }
  if (a.estimated_comm_seconds != b.estimated_comm_seconds) {
    return a.estimated_comm_seconds < b.estimated_comm_seconds;
  }
  return a.total_comm_bytes < b.total_comm_bytes;
}

// Among plans that all failed the budget, the one peaking lowest is the best witness
// (and the best best-effort answer).
double FinalPeak(const PartitionPlan& plan) {
  return plan.steps.empty() ? 0.0 : plan.steps.back().peak_shard_bytes;
}

}  // namespace

PartitionPlan RecursivePartition(const Graph& graph, int num_workers,
                                 const PartitionOptions& options) {
  if (num_workers <= 1) {
    PartitionPlan plan;
    plan.num_workers = num_workers;
    plan.memory_budget_bytes = options.memory_budget_bytes;
    return plan;
  }
  return RecursivePartitionCoarse(graph, num_workers, Coarsen(graph, options.coarsen),
                                  options);
}

PartitionPlan RecursivePartitionCoarse(const Graph& graph, int num_workers,
                                       const CoarseGraph& coarse,
                                       const PartitionOptions& options) {
  if (num_workers <= 1) {
    PartitionPlan plan;
    plan.num_workers = num_workers;
    plan.memory_budget_bytes = options.memory_budget_bytes;
    return plan;
  }

  const std::vector<int> canonical = FactorizeWorkers(num_workers);
  PartitionPlan best = RunSteps(graph, num_workers, coarse, options, canonical);
  const bool budgeted = options.memory_budget_bytes > 0;
  if (!BandwidthsDiffer(options, canonical.size()) &&
      (!budgeted || best.memory_feasible)) {
    return best;
  }

  // The factor ordering matters in two situations: on a non-uniform topology the
  // coarsest step's bytes cross the slowest link (and each step's byte total depends on
  // the shapes the earlier steps left behind), and under a memory budget a different
  // ordering can be feasible where the canonical one is not (a factor applied earlier
  // shrinks extents differently, changing which cuts remain applicable later).
  // Enumerate the distinct permutations of the factor multiset (ascending start ->
  // lexicographic next_permutation covers each exactly once) and keep the best by
  // PlanBeats; ties keep the canonical non-increasing order. The permutation count is
  // tiny for realistic worker counts (<= 6 below 64 workers), but a cap bounds
  // adversarial inputs.
  constexpr int kMaxOrderings = 24;
  std::vector<int> ordering = canonical;
  std::sort(ordering.begin(), ordering.end());
  int tried = 0;
  do {
    if (ordering == canonical) {
      continue;  // already evaluated
    }
    PartitionPlan candidate = RunSteps(graph, num_workers, coarse, options, ordering);
    best.search_stats.Merge(candidate.search_stats);
    if (PlanBeats(candidate, best)) {
      const SearchStats merged = best.search_stats;
      best = std::move(candidate);
      best.search_stats = merged;
    }
    ++tried;
  } while (std::next_permutation(ordering.begin(), ordering.end()) && tried < kMaxOrderings);
  if (!budgeted || best.memory_feasible) {
    return best;
  }

  // Every constrained DP ordering overflowed. The DP's per-step cost-greedy choices can
  // paint later steps into a corner, so try the lightest-cuts plan of every ordering:
  // if one fits, return it (higher comm, but feasible -- the point of the budget); if
  // none does, return the lowest-peaking witness marked infeasible so the session can
  // report the unbeatable deficit.
  PartitionPlan lightest;
  bool have_lightest = false;
  ordering = canonical;
  std::sort(ordering.begin(), ordering.end());
  tried = 0;
  do {
    PartitionPlan candidate = MinBytesSteps(graph, num_workers, coarse, options, ordering);
    bool take;
    if (!have_lightest) {
      take = true;
    } else if (candidate.memory_feasible != lightest.memory_feasible) {
      take = candidate.memory_feasible;
    } else if (!candidate.memory_feasible) {
      take = FinalPeak(candidate) < FinalPeak(lightest);  // best witness: lowest peak
    } else {
      take = PlanBeats(candidate, lightest);
    }
    if (take) {
      candidate.search_stats = best.search_stats;  // keep the DP effort visible
      lightest = std::move(candidate);
      have_lightest = true;
    }
    ++tried;
  } while (std::next_permutation(ordering.begin(), ordering.end()) && tried < kMaxOrderings);
  if (lightest.memory_feasible || options.memory_policy == MemoryPolicy::kNone) {
    return lightest;
  }

  // Even the lightest cuts overflow the all-resident model. The session's authoritative
  // verdict is the liveness peak, which can still fit -- only when it confirms the
  // overflow does the repair pass engage: re-search unbudgeted for the minimum-
  // communication plan, then attach the cheapest recompute/host-swap schedule that
  // brings its liveness peak within budget (memory/repair.h). The result trades
  // overhead seconds -- never communication -- for memory, so a budget ladder holds
  // comm constant while overhead grows monotonically. If even a full offload cannot
  // fit, the infeasible witness survives so the session can report the unbeatable
  // deficit plus the floor no schedule can beat.
  if (LivenessPeakShardBytes(graph, lightest) <= options.memory_budget_bytes) {
    return lightest;
  }
  PartitionOptions relaxed = options;
  relaxed.memory_budget_bytes = 0;
  relaxed.dp.memory_budget_bytes = 0;
  PartitionPlan base = RecursivePartitionCoarse(graph, num_workers, coarse, relaxed);
  const RepairResult repair =
      BuildRepairSchedule(graph, base, options.memory_budget_bytes,
                          options.memory_policy, options.memory_pricing);
  if (!repair.feasible) {
    return lightest;
  }
  base.search_stats.Merge(lightest.search_stats);
  base.memory_budget_bytes = options.memory_budget_bytes;
  base.memory_feasible = true;
  base.memory_schedule = repair.schedule;
  return base;
}

}  // namespace tofu
