#include "tofu/partition/recursive.h"

#include "tofu/util/logging.h"

namespace tofu {

PartitionPlan RecursivePartition(const Graph& graph, int num_workers,
                                 const PartitionOptions& options) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  if (num_workers <= 1) {
    return plan;
  }
  plan.step_factors = FactorizeWorkers(num_workers);

  // Coarsening is structural and shared by all steps; shapes change per step.
  const CoarseGraph coarse = Coarsen(graph, options.coarsen);
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);

  double groups = 1.0;
  for (int factor : plan.step_factors) {
    StepContext ctx(graph, shapes, factor);
    DpResult dp = RunStepDp(&ctx, coarse, options.dp);
    plan.search_stats.Merge(dp.stats);
    const double weighted = groups * dp.plan.comm_bytes;
    plan.weighted_step_costs.push_back(weighted);
    plan.total_comm_bytes += weighted;
    shapes = StepContext::ApplyBasicPlan(graph, shapes, dp.plan);
    plan.steps.push_back(std::move(dp.plan));
    groups *= static_cast<double>(factor);
  }
  return plan;
}

}  // namespace tofu
