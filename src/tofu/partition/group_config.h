// Shared helper for plan construction: given fixed tensor cuts for one step, choose each
// operator's cheapest applicable strategy and total the step's communication. Used by the
// greedy baselines and by plan re-costing; the DP proper does this per-unit inside its
// state loop.
#ifndef TOFU_PARTITION_GROUP_CONFIG_H_
#define TOFU_PARTITION_GROUP_CONFIG_H_

#include "tofu/partition/plan.h"
#include "tofu/partition/strategy.h"

namespace tofu {

// Fills plan->op_strategy (argmin per op; kReplicatedExec fallback) and plan->comm_bytes
// from plan->tensor_cut. Returns the step's total communication bytes.
double AssignGreedyOpStrategies(StepContext* ctx, BasicPlan* plan,
                                bool allow_reduction_strategies = true);

}  // namespace tofu

#endif  // TOFU_PARTITION_GROUP_CONFIG_H_
