#include "tofu/partition/strategy.h"

#include "tofu/util/logging.h"

namespace tofu {

StepContext::StepContext(const Graph& graph, std::vector<Shape> shapes, int ways)
    : graph_(&graph), shapes_(std::move(shapes)), ways_(ways) {
  TOFU_CHECK_GE(ways_, 2);
  TOFU_CHECK_EQ(static_cast<int>(shapes_.size()), graph.num_tensors());
  strategy_cache_.assign(static_cast<size_t>(graph.num_ops()), nullptr);
  cut_options_cache_.resize(static_cast<size_t>(graph.num_tensors()));
  cut_options_cached_.assign(static_cast<size_t>(graph.num_tensors()), 0);
}

std::int64_t StepContext::bytes(TensorId t) const {
  return NumElements(shape(t)) * graph_->tensor(t).elem_size;
}

const std::vector<ConcreteStrategy>& StepContext::Strategies(OpId op_id) {
  const std::vector<ConcreteStrategy>* cached = strategy_cache_[static_cast<size_t>(op_id)];
  if (cached != nullptr) {
    return *cached;
  }
  const OpNode& op = graph_->op(op_id);
  const OpSemantics& sem = graph_->SemanticsOf(op);
  // Ops with the same semantics and the same current shapes concretize identically;
  // share one list (unrolled timesteps otherwise redo this work per step per copy).
  const OpSemantics* sem_ptr = &sem;
  std::string key(reinterpret_cast<const char*>(&sem_ptr), sizeof(sem_ptr));
  auto append_shape = [&key](const Shape& s) {
    key.append(reinterpret_cast<const char*>(s.data()),
               s.size() * sizeof(std::int64_t));
    key.push_back('|');
  };
  for (TensorId t : op.inputs) {
    append_shape(shape(t));
  }
  append_shape(shape(op.output));
  std::unique_ptr<std::vector<ConcreteStrategy>>& shared = shared_strategies_[key];
  if (shared == nullptr) {
    std::vector<Shape> input_shapes;
    input_shapes.reserve(op.inputs.size());
    for (TensorId t : op.inputs) {
      input_shapes.push_back(shape(t));
    }
    const std::vector<std::int64_t> extents =
        BindVarExtents(sem.desc, input_shapes, shape(op.output));
    auto concrete = std::make_unique<std::vector<ConcreteStrategy>>();
    concrete->reserve(sem.strategies.size());
    for (const BasicStrategy& s : sem.strategies) {
      concrete->push_back(Concretize(s, extents));
    }
    shared = std::move(concrete);
  }
  strategy_cache_[static_cast<size_t>(op_id)] = shared.get();
  return *shared;
}

bool StepContext::Applicable(OpId op_id, int sidx) {
  if (sidx == kReplicatedExec) {
    return true;
  }
  const OpNode& op = graph_->op(op_id);
  const std::vector<ConcreteStrategy>& strategies = Strategies(op_id);
  const ConcreteStrategy& s = strategies[static_cast<size_t>(sidx)];
  if (s.var_extent < ways_) {
    return false;  // cannot split the partition variable `ways` ways
  }
  if (!s.is_reduction) {
    if (shape(op.output)[static_cast<size_t>(s.output_dim)] < ways_) {
      return false;
    }
  }
  for (size_t i = 0; i < s.inputs.size(); ++i) {
    const ConcreteInputReq& req = s.inputs[i];
    if (req.kind == InputReq::Kind::kSplit &&
        shape(op.inputs[i])[static_cast<size_t>(req.dim)] < ways_) {
      return false;
    }
  }
  return true;
}

const std::vector<int>& StepContext::CutOptions(TensorId t) {
  if (cut_options_cached_[static_cast<size_t>(t)]) {
    return cut_options_cache_[static_cast<size_t>(t)];
  }
  const Shape& s = shape(t);
  std::vector<int> options;
  for (size_t d = 0; d < s.size(); ++d) {
    if (s[d] >= ways_) {
      options.push_back(static_cast<int>(d));
    }
  }
  // Replication is gated on the tensor's ORIGINAL size: substantial tensors stay
  // partitioned at every step (the 1/k-memory property), no matter how small their
  // shards have become; intrinsically small tensors (biases, scales) may replicate.
  if (options.empty() || graph_->tensor(t).bytes() <= kReplicateThresholdBytes) {
    options.push_back(kReplicated);
  }
  cut_options_cache_[static_cast<size_t>(t)] = std::move(options);
  cut_options_cached_[static_cast<size_t>(t)] = 1;
  return cut_options_cache_[static_cast<size_t>(t)];
}

double StepContext::InputCommBytes(TensorId t, const ConcreteInputReq& req, int stored_cut) {
  const double size = static_cast<double>(bytes(t));
  const double f = static_cast<double>(ways_);
  if (stored_cut == kReplicated) {
    return 0.0;  // every worker already holds the whole tensor
  }
  if (req.kind == InputReq::Kind::kReplicated) {
    return size * (f - 1.0);  // every worker all-gathers the other shards
  }
  // Split requirement. Halo slab: halo_elems rows along req.dim, exchanged at every
  // internal boundary (both directions).
  double halo_bytes = 0.0;
  const Shape& shp = shape(t);
  const std::int64_t extent = shp[static_cast<size_t>(req.dim)];
  if (req.halo_elems > 0 && extent > 0) {
    const double slab = size * static_cast<double>(req.halo_elems) / static_cast<double>(extent);
    halo_bytes = 2.0 * (f - 1.0) * slab;
  }
  if (stored_cut == req.dim) {
    return halo_bytes;  // aligned: only the halo moves
  }
  // Mismatched dimensions: each worker already holds 1/f of what it needs.
  return size * (f - 1.0) / f + halo_bytes;
}

double StepContext::OutputCommBytes(TensorId t, const ConcreteStrategy& strat,
                                    int stored_cut) {
  const double size = static_cast<double>(bytes(t));
  const double f = static_cast<double>(ways_);
  if (strat.is_reduction) {
    // Partial outputs of full size on every worker, combined with a spread-out reduction
    // (reduce-scatter; §6's all-reduce spreading). Replicated storage needs the follow-up
    // all-gather as well.
    return stored_cut == kReplicated ? 2.0 * size * (f - 1.0) : size * (f - 1.0);
  }
  if (stored_cut == strat.output_dim) {
    return 0.0;
  }
  if (stored_cut == kReplicated) {
    return size * (f - 1.0);  // all-gather the concatenated output
  }
  return size * (f - 1.0) / f;  // shuffle between the two cuts
}

double StepContext::OpInputCommBytes(OpId op_id, int sidx,
                                     const std::vector<int>& tensor_cut) {
  const OpNode& op = graph_->op(op_id);
  if (sidx == kReplicatedExec) {
    // Every worker runs the whole op: whole-tensor requirement on each input.
    double total = 0.0;
    for (TensorId t : op.inputs) {
      if (tensor_cut[static_cast<size_t>(t)] != kReplicated) {
        total += static_cast<double>(bytes(t)) * (static_cast<double>(ways_) - 1.0);
      }
    }
    return total;
  }
  const ConcreteStrategy& s = Strategies(op_id)[static_cast<size_t>(sidx)];
  double total = 0.0;
  for (size_t i = 0; i < op.inputs.size(); ++i) {
    total += InputCommBytes(op.inputs[i], s.inputs[i],
                            tensor_cut[static_cast<size_t>(op.inputs[i])]);
  }
  return total;
}

double StepContext::OpOutputCommBytes(OpId op_id, int sidx,
                                      const std::vector<int>& tensor_cut) {
  if (sidx == kReplicatedExec) {
    // Each worker materializes the full output and keeps its stored share: free.
    return 0.0;
  }
  const OpNode& op = graph_->op(op_id);
  const ConcreteStrategy& s = Strategies(op_id)[static_cast<size_t>(sidx)];
  return OutputCommBytes(op.output, s, tensor_cut[static_cast<size_t>(op.output)]);
}

double StepContext::OpCommBytes(OpId op_id, int sidx, const std::vector<int>& tensor_cut) {
  return OpInputCommBytes(op_id, sidx, tensor_cut) +
         OpOutputCommBytes(op_id, sidx, tensor_cut);
}

int StepContext::ForcedElementwiseStrategy(OpId op_id, const std::vector<int>& tensor_cut) {
  const OpNode& op = graph_->op(op_id);
  const int cut = tensor_cut[static_cast<size_t>(op.output)];
  if (cut == kReplicated) {
    return kReplicatedExec;
  }
  // Case-1 strategy along output variable `cut`; element-wise descriptions discover one
  // strategy per output dimension, in order.
  const std::vector<ConcreteStrategy>& strategies = Strategies(op_id);
  for (size_t i = 0; i < strategies.size(); ++i) {
    if (!strategies[i].is_reduction && strategies[i].output_dim == cut) {
      return static_cast<int>(i);
    }
  }
  return kReplicatedExec;
}

std::vector<Shape> StepContext::ApplyBasicPlan(const Graph& graph,
                                               const std::vector<Shape>& shapes,
                                               const BasicPlan& plan) {
  std::vector<Shape> out = shapes;
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    const int cut = plan.tensor_cut[static_cast<size_t>(t)];
    if (cut != kReplicated) {
      std::int64_t& extent = out[static_cast<size_t>(t)][static_cast<size_t>(cut)];
      extent = (extent + plan.ways - 1) / plan.ways;
    }
  }
  return out;
}

std::vector<Shape> StepContext::InitialShapes(const Graph& graph) {
  std::vector<Shape> shapes;
  shapes.reserve(static_cast<size_t>(graph.num_tensors()));
  for (const TensorNode& t : graph.tensors()) {
    shapes.push_back(t.shape);
  }
  return shapes;
}

}  // namespace tofu
