// Serializable partition plans: a JSON round-trip so plans can be saved, cached on disk,
// shipped to another process, and replayed through the simulator (RunPlanThroughput)
// without re-running the search.
//
//   WriteTextFile("plan.json", PlanToJson(plan));
//   ...
//   TOFU_ASSIGN_OR_RETURN(std::string text, ReadTextFile("plan.json"));
//   TOFU_ASSIGN_OR_RETURN(PartitionPlan loaded, PlanFromJson(text));
//   TOFU_RETURN_IF_ERROR(ValidatePlanForGraph(graph, loaded));
//
// Numbers are written with %.17g, so every double (comm bytes, step costs) reloads
// bit-identically -- a saved plan replays with exactly the original totals. The schema is
// documented in docs/api.md ("tofu.plan.v2"; v1 files still load, their memory fields
// defaulting to "searched without a budget").
#ifndef TOFU_PARTITION_PLAN_IO_H_
#define TOFU_PARTITION_PLAN_IO_H_

#include <string>

#include "tofu/graph/graph.h"
#include "tofu/partition/plan.h"
#include "tofu/util/status.h"

namespace tofu {

// Schema tag of PURE plans; bump when the plan format changes shape. v2 added the
// memory fields (per-step peak_shard_bytes, plan-level memory_budget_bytes /
// memory_feasible, search_stats.memory_pruned_states).
inline constexpr const char* kPlanJsonSchema = "tofu.plan.v2";
// Still accepted by PlanFromJson; the v2-only fields default to an unconstrained plan.
inline constexpr const char* kPlanJsonSchemaV1 = "tofu.plan.v1";
// Hybrid pipeline plans (PartitionPlan::pipeline set): v2 plus a "pipeline" section
// holding the stage decomposition, per-stage timing, and the per-stage inner plans
// (each a nested pure plan object). Written ONLY for hybrid plans -- pure plans keep
// the v2 tag byte-for-byte, so every pre-pipeline digest is unchanged.
inline constexpr const char* kPlanJsonSchemaV3 = "tofu.plan.v3";
// Plans carrying a MemorySchedule (PartitionPlan::memory_schedule set by the repair
// pass): the base schema plus a "memory_schedule" section with the per-buffer
// residency decisions and their pricing. Written ONLY when a schedule is attached --
// schedule-free plans keep their v2/v3 tags byte-for-byte, so every existing digest is
// unchanged. v2 and v3 files still load.
inline constexpr const char* kPlanJsonSchemaV4 = "tofu.plan.v4";

// Serializes every PartitionPlan field (steps with per-tensor cuts and per-op
// strategies, costs, topology estimates, search stats).
std::string PlanToJson(const PartitionPlan& plan);

// Parses a plan serialized by PlanToJson. Returns kInvalidArgument on malformed JSON,
// an unknown schema tag, or inconsistent step arrays.
Result<PartitionPlan> PlanFromJson(const std::string& json);

// Checks a (possibly reloaded) plan against a concrete graph: array sizes match the
// graph, every cut names a real dimension of its tensor, every step factor is sane.
// Returns kInvalidArgument describing the first violation.
Status ValidatePlanForGraph(const Graph& graph, const PartitionPlan& plan);

// FNV-1a fingerprint of the normalized plan JSON (search wall time -- the one
// nondeterministic field -- zeroed first): a machine-independent digest of WHAT a
// search found. bench_table1_search emits it, tools/check_perf.py gates it against
// bench/baseline_table1.json, and tests/test_plan_goldens.cc pins the uniform-topology
// plans to their pre-interconnect values with it.
std::string PlanDigest(const PartitionPlan& plan);

}  // namespace tofu

#endif  // TOFU_PARTITION_PLAN_IO_H_
