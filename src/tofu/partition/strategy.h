// Per-step strategy evaluation: concretizing TDL strategies against the current
// (recursively shrunken) tensor shapes, checking applicability at a split factor, and
// charging communication bytes.
//
// The cost convention follows Lemma 1 (appendix A.3): every term is a constant multiple
// of a tensor's (current) size. For a tensor of bytes S split f ways:
//
//   input required split along dim d, stored cut d:          2*(f-1) * halo_slab
//   input required split along d, stored cut d' != d:        S*(f-1)/f  (+ halo)
//   input required split, stored replicated:                 0
//   input required whole (replicated req), stored cut:       S*(f-1)
//   output produced split along d, stored cut d:             0
//   output produced split along d, stored cut d' != d:       S*(f-1)/f
//   output produced split along d, stored replicated:        S*(f-1)   (all-gather)
//   case-2 partial outputs, stored cut:                      S*(f-1)   (reduce-scatter)
//   case-2 partial outputs, stored replicated:               2*S*(f-1) (all-reduce)
//
// All figures are total bytes moved among the f parts of one group during one execution
// of the operator.
#ifndef TOFU_PARTITION_STRATEGY_H_
#define TOFU_PARTITION_STRATEGY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/partition/plan.h"

namespace tofu {

// Tensors at or below this size may be stored replicated (biases, normalization scales,
// scalars). Substantial tensors must be partitioned, preserving the 1/k-memory property.
inline constexpr std::int64_t kReplicateThresholdBytes = 64 << 10;

class StepContext {
 public:
  // `shapes` are the current per-tensor shapes (already shrunken by earlier recursive
  // steps); `ways` is this step's split factor.
  StepContext(const Graph& graph, std::vector<Shape> shapes, int ways);

  const Graph& graph() const { return *graph_; }
  int ways() const { return ways_; }
  const Shape& shape(TensorId t) const { return shapes_[static_cast<size_t>(t)]; }
  std::int64_t bytes(TensorId t) const;

  // The op's strategies concretized against current shapes (cached; O(1) after the
  // first call -- the cache is a dense per-op array, this is the search's hottest read).
  const std::vector<ConcreteStrategy>& Strategies(OpId op);

  // True when strategy `sidx` of `op` can split `ways` ways at current shapes.
  bool Applicable(OpId op, int sidx);

  // Valid storage cuts for a tensor at this step: every dimension with extent >= ways,
  // plus kReplicated for small tensors (or when nothing else qualifies). Computed once
  // per tensor per step and cached (callers hit this per slot, per state, per greedy
  // refinement pass -- never recompute).
  const std::vector<int>& CutOptions(TensorId t);

  // Communication bytes of executing `op` with strategy `sidx` (kReplicatedExec allowed),
  // given the storage cuts in `tensor_cut` (indexed by TensorId; only the op's own tensors
  // are read). Split into the pre-compute input gather and the post-compute output
  // shuffle/reduction; OpCommBytes is their sum.
  double OpInputCommBytes(OpId op, int sidx, const std::vector<int>& tensor_cut);
  double OpOutputCommBytes(OpId op, int sidx, const std::vector<int>& tensor_cut);
  double OpCommBytes(OpId op, int sidx, const std::vector<int>& tensor_cut);

  // Derives the forced strategy of an element-wise op from its output's cut: the case-1
  // strategy along that dimension (or kReplicatedExec for replicated storage).
  int ForcedElementwiseStrategy(OpId op, const std::vector<int>& tensor_cut);

  // Shapes after applying a basic plan at this step (partitioned dims ceil-divided).
  static std::vector<Shape> ApplyBasicPlan(const Graph& graph,
                                           const std::vector<Shape>& shapes,
                                           const BasicPlan& plan);

  // Initial shapes (the unpartitioned graph).
  static std::vector<Shape> InitialShapes(const Graph& graph);

 private:
  double InputCommBytes(TensorId t, const ConcreteInputReq& req, int stored_cut);
  double OutputCommBytes(TensorId t, const ConcreteStrategy& strat, int stored_cut);

  const Graph* graph_;
  std::vector<Shape> shapes_;
  int ways_;
  // Dense per-op / per-tensor caches (ids are contiguous), filled lazily. Concretized
  // strategy lists are shared between ops with identical semantics and shapes (unrolled
  // RNN timesteps concretize once, not once per timestep).
  std::vector<const std::vector<ConcreteStrategy>*> strategy_cache_;
  std::unordered_map<std::string, std::unique_ptr<std::vector<ConcreteStrategy>>>
      shared_strategies_;
  std::vector<std::vector<int>> cut_options_cache_;
  std::vector<char> cut_options_cached_;
};

}  // namespace tofu

#endif  // TOFU_PARTITION_STRATEGY_H_
