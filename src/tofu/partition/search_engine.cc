#include "tofu/partition/search_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "tofu/util/logging.h"
#include "tofu/util/thread_pool.h"

namespace tofu {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// 0 = auto: one thread per hardware context (the pool clamps to hardware_concurrency
// anyway; this just makes the auto default explicit when the query fails).
int ResolveThreads(int requested) {
  if (requested > 0) {
    return requested;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// Bits needed to store option indices 0..n-1 (0 bits for single-option slots).
int BitsFor(int num_options) {
  int bits = 0;
  while ((1 << bits) < num_options) {
    ++bits;
  }
  return bits;
}

// Field accessors over a W-word packed key. Fields may straddle a word boundary;
// WriteField assumes the target bits are zero (keys are always built from zeroed words).
inline std::uint64_t ExtractField(const std::uint64_t* key, int offset, int bits) {
  if (bits == 0) {
    return 0;
  }
  const int word = offset >> 6;
  const int bit = offset & 63;
  std::uint64_t v = key[word] >> bit;
  if (bit + bits > 64) {
    v |= key[word + 1] << (64 - bit);
  }
  return v & ((std::uint64_t{1} << bits) - 1);
}

inline void WriteField(std::uint64_t* key, int offset, int bits, std::uint64_t value) {
  if (bits == 0) {
    return;
  }
  const int word = offset >> 6;
  const int bit = offset & 63;
  key[word] |= value << bit;
  if (bit + bits > 64) {
    key[word + 1] |= value >> (64 - bit);
  }
}

std::uint64_t HashKey(const std::uint64_t* key, int words) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int w = 0; w < words; ++w) {
    std::uint64_t x = key[w] + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h ^= (x ^ (x >> 31)) + (h << 6) + (h >> 2);
  }
  return h;
}

// Struct-of-arrays state set: W words of packed key, cost, and backpointer per state
// (plus accumulated resident bytes when a memory budget is active). All keys in one set
// share the same field layout (the current frontier).
struct StateArena {
  int words = 1;
  bool track_bytes = false;
  std::vector<std::uint64_t> keys;  // size() == count * words
  std::vector<double> cost;
  std::vector<double> bytes;  // populated only when track_bytes
  std::vector<std::int32_t> rec;

  std::int64_t count() const { return static_cast<std::int64_t>(cost.size()); }
  const std::uint64_t* key(std::int64_t i) const {
    return keys.data() + static_cast<size_t>(i) * static_cast<size_t>(words);
  }
  std::uint64_t* key(std::int64_t i) {
    return keys.data() + static_cast<size_t>(i) * static_cast<size_t>(words);
  }
  void Resize(std::int64_t n) {
    keys.assign(static_cast<size_t>(n) * static_cast<size_t>(words), 0);
    cost.resize(static_cast<size_t>(n));
    if (track_bytes) {
      bytes.resize(static_cast<size_t>(n));
    }
    rec.resize(static_cast<size_t>(n));
  }
  // Keeps the first n states as-is (Resize would zero the keys).
  void Shrink(std::int64_t n) {
    keys.resize(static_cast<size_t>(n) * static_cast<size_t>(words));
    cost.resize(static_cast<size_t>(n));
    if (track_bytes) {
      bytes.resize(static_cast<size_t>(n));
    }
    rec.resize(static_cast<size_t>(n));
  }
};

// Backpointer record: fixes one slot's option; chained per state.
struct Rec {
  std::int32_t parent;
  std::int32_t slot;
  std::int32_t option;
};

struct FrontierField {
  int slot;
  int offset;  // bit offset within the packed key
  int bits;
};

// Saturating product guard for the static (unpruned) frontier-width precomputation.
constexpr std::int64_t kWidthSat = std::numeric_limits<std::int64_t>::max() / 2;

inline std::int64_t SatMul(std::int64_t a, int b) {
  if (a > kWidthSat / b) {
    return kWidthSat;
  }
  return a * static_cast<std::int64_t>(b);
}

}  // namespace

struct SearchEngine::Impl {
  SearchSpace space;
  SearchEngineOptions options;
  ThreadPool pool;
  std::vector<int> slot_bits;
  int words = 1;  // per-key words, sized for the widest frontier the schedule reaches

  Impl(SearchSpace s, SearchEngineOptions o)
      : space(std::move(s)), options(o), pool(ResolveThreads(o.num_threads)) {
    const int num_slots = static_cast<int>(space.slot_num_options.size());
    slot_bits.resize(static_cast<size_t>(num_slots));
    for (int s2 = 0; s2 < num_slots; ++s2) {
      TOFU_CHECK_GE(space.slot_num_options[static_cast<size_t>(s2)], 1);
      slot_bits[static_cast<size_t>(s2)] =
          BitsFor(space.slot_num_options[static_cast<size_t>(s2)]);
    }
    ComputeSchedule();
  }

  std::vector<int> first, last;  // per slot: first/last group touching it (-1 if none)
  // Static schedule facts for the dense-lattice fast path: the UNPRUNED frontier width
  // right after each group's entering slots branch (saturated), its maximum, and
  // whether every group's full option product fits the table policy at that width.
  std::vector<std::int64_t> width_after_branch;
  std::int64_t max_static_width = 1;
  bool all_groups_table_static = true;
  bool options_fit_u8 = true;  // dense projections record winners as uint8 coordinates

  void ComputeSchedule() {
    const int num_slots = static_cast<int>(space.slot_num_options.size());
    const int num_groups = static_cast<int>(space.group_slots.size());
    first.assign(static_cast<size_t>(num_slots), -1);
    last.assign(static_cast<size_t>(num_slots), -1);
    for (int g = 0; g < num_groups; ++g) {
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        if (first[static_cast<size_t>(s)] < 0) {
          first[static_cast<size_t>(s)] = g;
        }
        last[static_cast<size_t>(s)] = g;
      }
    }
    for (int n : space.slot_num_options) {
      options_fit_u8 = options_fit_u8 && n <= 256;
    }
    // Widest simultaneous frontier over the whole schedule, both in bits (for the
    // packed-key word count) and in states (for dense-lattice eligibility). Without a
    // budget and without beam degradation the live state set is exactly the cross
    // product of the live slots' options, so these static widths equal the sparse
    // path's dynamic states.count() at every group -- which is what lets the dense
    // path reproduce its table-vs-memo policy and counters exactly.
    width_after_branch.assign(static_cast<size_t>(num_groups), 1);
    int width = 0;
    int max_width = 0;
    std::int64_t states = 1;
    for (int g = 0; g < num_groups; ++g) {
      std::int64_t cells = 1;
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        cells = SatMul(cells, space.slot_num_options[static_cast<size_t>(s)]);
        if (first[static_cast<size_t>(s)] == g) {
          width += slot_bits[static_cast<size_t>(s)];
          states = SatMul(states, space.slot_num_options[static_cast<size_t>(s)]);
        }
      }
      max_width = std::max(max_width, width);
      width_after_branch[static_cast<size_t>(g)] = states;
      max_static_width = std::max(max_static_width, states);
      // Mirror of the sparse path's table policy (cells <= max(live states, 4096)):
      // a group that would fall back to the per-state memo disables the dense path.
      if (cells > std::max<std::int64_t>(states, 4096)) {
        all_groups_table_static = false;
      }
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        if (last[static_cast<size_t>(s)] == g) {
          width -= slot_bits[static_cast<size_t>(s)];
          states /= space.slot_num_options[static_cast<size_t>(s)];
        }
      }
    }
    words = std::max(1, (max_width + 63) / 64);
  }

  Result RunImpl(const GroupCostFn* table_fn, const GroupFillFn* fill_fn,
                 const StateCostFn* stream_fn);
  Result RunDense(const GroupCostFn& table_fn, const GroupFillFn* fill_fn);
  std::shared_ptr<GroupCostTables> FillOrImportAllTables(
      const GroupCostFn& table_fn, const GroupFillFn* fill_fn,
      std::vector<std::vector<std::int64_t>>* strides, Result* result);
};

SearchEngine::SearchEngine(SearchSpace space, SearchEngineOptions options)
    : impl_(std::make_unique<Impl>(std::move(space), options)) {}

SearchEngine::~SearchEngine() = default;

SearchEngine::Result SearchEngine::Run(const GroupCostFn& cost_fn) {
  return impl_->RunImpl(&cost_fn, nullptr, nullptr);
}

SearchEngine::Result SearchEngine::Run(const GroupCostFn& cost_fn,
                                       const GroupFillFn& fill_fn) {
  return impl_->RunImpl(&cost_fn, &fill_fn, nullptr);
}

SearchEngine::Result SearchEngine::RunStreamed(const StateCostFn& cost_fn) {
  return impl_->RunImpl(nullptr, nullptr, &cost_fn);
}

// Hoisted table fills for the dense path: every group's dense cost table is computed
// (or imported from options.reuse_tables) before the sweep begins. The enumeration is
// the engine's canonical mixed-radix order -- last touched slot fastest, identical to
// the sparse path's interleaved fills -- so the values, the evaluation order, and the
// effort counters all match the sparse path bit-for-bit. Hoisting is what enables
// dominated-option pruning (the analysis needs every table touching a slot) and table
// reuse across searches.
std::shared_ptr<GroupCostTables> SearchEngine::Impl::FillOrImportAllTables(
    const GroupCostFn& table_fn, const GroupFillFn* fill_fn,
    std::vector<std::vector<std::int64_t>>* strides, Result* result) {
  const auto t0 = Clock::now();
  const int num_groups = static_cast<int>(space.group_slots.size());
  auto tables = std::make_shared<GroupCostTables>();
  tables->groups.resize(static_cast<size_t>(num_groups));
  strides->resize(static_cast<size_t>(num_groups));
  const GroupCostTables* reuse = options.reuse_tables.get();
  std::vector<int> opts_buffer;
  for (int g = 0; g < num_groups; ++g) {
    const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];
    const int k = static_cast<int>(touched.size());
    std::vector<std::int64_t>& stride = (*strides)[static_cast<size_t>(g)];
    stride.assign(static_cast<size_t>(k), 1);
    std::int64_t cells = 1;
    for (int i = k - 1; i >= 0; --i) {
      stride[static_cast<size_t>(i)] = cells;
      cells *= space.slot_num_options[static_cast<size_t>(touched[static_cast<size_t>(i)])];
    }
    if (reuse != nullptr && static_cast<size_t>(g) < reuse->groups.size() &&
        reuse->groups[static_cast<size_t>(g)] != nullptr &&
        static_cast<std::int64_t>(reuse->groups[static_cast<size_t>(g)]->size()) == cells) {
      tables->groups[static_cast<size_t>(g)] = reuse->groups[static_cast<size_t>(g)];
      result->stats.reused_table_entries += cells;
    } else {
      auto fresh = std::make_shared<std::vector<double>>(static_cast<size_t>(cells));
      if (fill_fn != nullptr) {
        (*fill_fn)(g, fresh->data(), cells);
      } else {
        opts_buffer.assign(static_cast<size_t>(k), 0);
        for (std::int64_t idx = 0; idx < cells; ++idx) {
          (*fresh)[static_cast<size_t>(idx)] = table_fn(g, opts_buffer.data());
          for (int i = k - 1; i >= 0; --i) {  // odometer: same order as the idx decode
            if (++opts_buffer[static_cast<size_t>(i)] <
                space.slot_num_options[static_cast<size_t>(touched[static_cast<size_t>(i)])]) {
              break;
            }
            opts_buffer[static_cast<size_t>(i)] = 0;
          }
        }
      }
      tables->groups[static_cast<size_t>(g)] = std::move(fresh);
    }
    // Imported cells count exactly like computed ones: these counters are a property
    // of the SEARCH, not of cache temperature, and serialized plans must stay
    // byte-identical between warm and cold runs.
    result->stats.states_explored += cells;
    result->stats.cost_table_entries += cells;
  }
  result->stats.fill_seconds += SecondsSince(t0);
  return tables;
}

// Dense-lattice sweep: the frontier is one flat cost array whose axes are the live
// slots in branch order, newest axis fastest (stride 1). Cell (c_0,...,c_{k-1}) holds
// exactly the cost the sparse path would accumulate for the state with those kept-
// option coordinates -- branching broadcasts, charging adds one table value per
// touched-coordinate combination to a contiguous run, and projecting a leaving axis is
// a strict-less min-reduce that keeps the lowest coordinate on ties. When several
// slots leave at one group the NEWEST axis is projected first; combined with
// strict-less this reproduces the sparse merge's first-in-branch-order tie-break
// (docs/search.md, "Big-graph, many-worker search", proves both equivalences).
SearchEngine::Result SearchEngine::Impl::RunDense(const GroupCostFn& table_fn,
                                                  const GroupFillFn* fill_fn) {
  const auto start = Clock::now();
  const int num_slots = static_cast<int>(space.slot_num_options.size());
  const int num_groups = static_cast<int>(space.group_slots.size());
  Result result;

  std::vector<std::vector<std::int64_t>> group_stride;
  std::shared_ptr<GroupCostTables> tables =
      FillOrImportAllTables(table_fn, fill_fn, &group_stride, &result);

  // Dominated-option pruning. Option o of slot s is dominated by o' < o when o' is
  // pointwise <= in EVERY group table touching s and (with byte tables) no heavier:
  // then for every frontier state using o, the sibling state using o' is no worse on
  // both cost and bytes under every completion, so dropping o can never change the
  // returned plan -- and because the dominator has the SMALLER index, every tie the
  // canonical search would break toward o' still resolves identically. (Restricting to
  // o' < o is what makes ties safe; see docs/search.md.) Dominance over a chain of
  // pruned options is fine: pointwise <= is transitive, so the chain ends at a kept
  // dominator. Cross-slot or cross-state dominance is deliberately NOT attempted --
  // two states that differ in several slots have different completion costs, so a
  // per-frontier comparison of accumulated cost alone would be unsound.
  std::vector<std::vector<int>> kept(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    const int n = space.slot_num_options[static_cast<size_t>(s)];
    kept[static_cast<size_t>(s)].resize(static_cast<size_t>(n));
    for (int o = 0; o < n; ++o) {
      kept[static_cast<size_t>(s)][static_cast<size_t>(o)] = o;
    }
  }
  if (options.prune_dominated) {
    // Slot -> (group, position in the group's touched list) adjacency.
    std::vector<std::vector<std::pair<int, int>>> slot_groups(
        static_cast<size_t>(num_slots));
    for (int g = 0; g < num_groups; ++g) {
      const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];
      for (size_t i = 0; i < touched.size(); ++i) {
        slot_groups[static_cast<size_t>(touched[i])].push_back({g, static_cast<int>(i)});
      }
    }
    for (int s = 0; s < num_slots; ++s) {
      const int n = space.slot_num_options[static_cast<size_t>(s)];
      if (first[static_cast<size_t>(s)] < 0 || n < 2) {
        continue;
      }
      const std::vector<double>* ob =
          space.slot_option_bytes.empty()
              ? nullptr
              : &space.slot_option_bytes[static_cast<size_t>(s)];
      std::vector<char> pruned(static_cast<size_t>(n), 0);
      for (int o = 1; o < n; ++o) {
        for (int o2 = 0; o2 < o && !pruned[static_cast<size_t>(o)]; ++o2) {
          if (ob != nullptr && (*ob)[static_cast<size_t>(o2)] > (*ob)[static_cast<size_t>(o)]) {
            continue;  // the cheaper-cost option is heavier: not a dominator
          }
          bool dominates = true;
          for (const auto& [g, pos] : slot_groups[static_cast<size_t>(s)]) {
            const std::vector<double>& table = *tables->groups[static_cast<size_t>(g)];
            const std::int64_t st = group_stride[static_cast<size_t>(g)][static_cast<size_t>(pos)];
            const std::int64_t block = st * static_cast<std::int64_t>(n);
            const std::int64_t size = static_cast<std::int64_t>(table.size());
            for (std::int64_t base = 0; base < size && dominates; base += block) {
              const double* lo = table.data() + base + static_cast<std::int64_t>(o2) * st;
              const double* hi = table.data() + base + static_cast<std::int64_t>(o) * st;
              for (std::int64_t x = 0; x < st; ++x) {
                if (lo[x] > hi[x]) {
                  dominates = false;
                  break;
                }
              }
            }
            if (!dominates) {
              break;
            }
          }
          if (dominates) {
            pruned[static_cast<size_t>(o)] = 1;
          }
        }
      }
      std::vector<int>& keep = kept[static_cast<size_t>(s)];
      keep.clear();
      for (int o = 0; o < n; ++o) {
        if (!pruned[static_cast<size_t>(o)]) {
          keep.push_back(o);
        }
      }
    }
  }

  // Compacted charge tables. The sweep only ever gathers cells whose every coordinate
  // is a KEPT option, so copy exactly those cells out of the full fills into dense
  // kept-only tables: the charge gather below then runs on pure strides (coordinate *
  // compact stride, no per-coordinate contribution lookup) over a table smaller by the
  // pruned options' product -- pruned options are never gathered, closing the fill
  // headroom of ROADMAP item 4. Values are copied doubles, so costs, tie-breaks and
  // plans stay bit-identical to charging from the full tables (and the fills above
  // already counted states_explored / cost_table_entries, which do not change). Groups
  // none of whose touched slots lost an option alias the full table outright.
  std::vector<std::shared_ptr<const std::vector<double>>> charge_table(
      static_cast<size_t>(num_groups));
  std::vector<std::vector<std::int64_t>> charge_stride(static_cast<size_t>(num_groups));
  {
    const auto t0 = Clock::now();
    for (int g = 0; g < num_groups; ++g) {
      const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];
      const int k = static_cast<int>(touched.size());
      std::vector<std::int64_t>& stride = charge_stride[static_cast<size_t>(g)];
      stride.assign(static_cast<size_t>(k), 1);
      std::int64_t compact_cells = 1;
      bool any_pruned = false;
      for (int i = k - 1; i >= 0; --i) {
        const int s = touched[static_cast<size_t>(i)];
        const int m = static_cast<int>(kept[static_cast<size_t>(s)].size());
        stride[static_cast<size_t>(i)] = compact_cells;
        compact_cells *= m;
        any_pruned =
            any_pruned || m != space.slot_num_options[static_cast<size_t>(s)];
      }
      const std::vector<double>& full = *tables->groups[static_cast<size_t>(g)];
      if (!any_pruned) {
        charge_table[static_cast<size_t>(g)] = tables->groups[static_cast<size_t>(g)];
        charge_stride[static_cast<size_t>(g)] = group_stride[static_cast<size_t>(g)];
        continue;
      }
      result.stats.pruned_table_cells +=
          static_cast<std::int64_t>(full.size()) - compact_cells;
      auto compact = std::make_shared<std::vector<double>>(
          static_cast<size_t>(compact_cells));
      const std::vector<std::int64_t>& full_stride =
          group_stride[static_cast<size_t>(g)];
      std::vector<int> coord(static_cast<size_t>(k), 0);
      for (std::int64_t idx = 0; idx < compact_cells; ++idx) {
        std::int64_t full_idx = 0;
        for (int i = 0; i < k; ++i) {
          const int s = touched[static_cast<size_t>(i)];
          full_idx += static_cast<std::int64_t>(
                          kept[static_cast<size_t>(s)]
                              [static_cast<size_t>(coord[static_cast<size_t>(i)])]) *
                      full_stride[static_cast<size_t>(i)];
        }
        (*compact)[static_cast<size_t>(idx)] = full[static_cast<size_t>(full_idx)];
        for (int i = k - 1; i >= 0; --i) {  // odometer over kept coordinates
          const int s = touched[static_cast<size_t>(i)];
          if (++coord[static_cast<size_t>(i)] <
              static_cast<int>(kept[static_cast<size_t>(s)].size())) {
            break;
          }
          coord[static_cast<size_t>(i)] = 0;
        }
      }
      charge_table[static_cast<size_t>(g)] = std::move(compact);
    }
    result.stats.fill_seconds += SecondsSince(t0);
  }

  // The sweep. Slots whose kept set collapsed to one option become FIXED: they
  // contribute nothing to the compact table index (their compact dimension has size
  // one) instead of an axis, which is where the pruning speedup comes from (the
  // lattice shrinks by the pruned options' product).
  struct Axis {
    int slot;
    int size;  // kept option count
  };
  struct ProjEvent {
    int slot;
    std::vector<Axis> residue;          // axes AFTER this projection, in order
    std::vector<std::uint8_t> winners;  // argmin kept-coordinate per residue cell
  };
  std::vector<Axis> axes;
  std::vector<int> axis_of_slot(static_cast<size_t>(num_slots), -1);
  std::vector<ProjEvent> events;
  std::vector<double> cost{0.0};
  std::vector<double> scratch;
  std::int64_t unpruned_width = 1;  // the schedule's frontier width (no pruning)

  for (int g = 0; g < num_groups; ++g) {
    const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];

    // 1. Branch entering slots: broadcast along a new fastest axis.
    {
      const auto t0 = Clock::now();
      for (int s : touched) {
        if (first[static_cast<size_t>(s)] != g) {
          continue;
        }
        const int full = space.slot_num_options[static_cast<size_t>(s)];
        const int m = static_cast<int>(kept[static_cast<size_t>(s)].size());
        result.stats.dominated_pruned_states +=
            static_cast<std::int64_t>(cost.size()) * static_cast<std::int64_t>(full - m);
        unpruned_width *= full;
        if (m == 1) {
          continue;  // fixed slot; chosen option recorded at the end
        }
        const std::int64_t n_in = static_cast<std::int64_t>(cost.size());
        scratch.resize(static_cast<size_t>(n_in) * static_cast<size_t>(m));
        pool.ParallelFor(n_in, [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const double v = cost[static_cast<size_t>(i)];
            double* out = scratch.data() + static_cast<size_t>(i) * static_cast<size_t>(m);
            for (int c = 0; c < m; ++c) {
              out[c] = v;
            }
          }
        });
        std::swap(cost, scratch);
        axis_of_slot[static_cast<size_t>(s)] = static_cast<int>(axes.size());
        axes.push_back({s, m});
      }
      result.stats.expand_seconds += SecondsSince(t0);
    }

    // 2. Charge: one table value per combination of the touched axes' coordinates,
    // added to the contiguous run the untouched faster axes span. The gather reads the
    // COMPACT kept-only table: a kept coordinate maps straight to a table index via the
    // compact stride (fixed slots have compact dimension one and contribute nothing),
    // so dominated options are never gathered.
    {
      const auto t0 = Clock::now();
      const std::vector<double>& table = *charge_table[static_cast<size_t>(g)];
      const std::vector<std::int64_t>& stride = charge_stride[static_cast<size_t>(g)];
      std::vector<std::pair<int, std::int64_t>> ax;  // (axis pos, compact stride)
      for (size_t i = 0; i < touched.size(); ++i) {
        const int s = touched[i];
        if (axis_of_slot[static_cast<size_t>(s)] >= 0) {
          ax.push_back({axis_of_slot[static_cast<size_t>(s)], stride[i]});
        }
      }
      if (ax.empty()) {
        // Every touched slot is fixed; with kept[0] == 0 for all of them (option 0 is
        // never dominated), the single gathered cell is the compact table's first.
        const double v = table[0];
        pool.ParallelFor(static_cast<std::int64_t>(cost.size()),
                         [&](int, std::int64_t lo, std::int64_t hi) {
                           for (std::int64_t i = lo; i < hi; ++i) {
                             cost[static_cast<size_t>(i)] += v;
                           }
                         });
      } else {
        std::sort(ax.begin(), ax.end(),
                  [](const auto& a, const auto& b) { return a.first < b.first; });
        const int pmax = ax.back().first;
        std::int64_t prefix = 1;
        for (int j = 0; j <= pmax; ++j) {
          prefix *= axes[static_cast<size_t>(j)].size;
        }
        const std::int64_t run = static_cast<std::int64_t>(cost.size()) / prefix;
        pool.ParallelFor(prefix, [&](int, std::int64_t lo, std::int64_t hi) {
          std::vector<int> coord(static_cast<size_t>(pmax) + 1, 0);
          std::int64_t r = lo;
          for (int j = pmax; j >= 0; --j) {
            coord[static_cast<size_t>(j)] =
                static_cast<int>(r % axes[static_cast<size_t>(j)].size);
            r /= axes[static_cast<size_t>(j)].size;
          }
          for (std::int64_t m = lo; m < hi; ++m) {
            std::int64_t tidx = 0;
            for (const auto& a : ax) {
              tidx += static_cast<std::int64_t>(coord[static_cast<size_t>(a.first)]) *
                      a.second;
            }
            const double v = table[static_cast<size_t>(tidx)];
            double* c = cost.data() + static_cast<size_t>(m) * static_cast<size_t>(run);
            for (std::int64_t x = 0; x < run; ++x) {
              c[x] += v;  // contiguous: the auto-vectorized inner loop
            }
            for (int j = pmax; j >= 0; --j) {
              if (++coord[static_cast<size_t>(j)] < axes[static_cast<size_t>(j)].size) {
                break;
              }
              coord[static_cast<size_t>(j)] = 0;
            }
          }
        });
      }
      result.stats.charge_seconds += SecondsSince(t0);
    }
    result.stats.max_frontier_states =
        std::max(result.stats.max_frontier_states, unpruned_width);

    // 3. Project leaving slots: min-reduce along each leaving axis, newest first.
    {
      const auto t0 = Clock::now();
      std::vector<int> leaving;
      for (int s : touched) {
        if (last[static_cast<size_t>(s)] != g) {
          continue;
        }
        unpruned_width /= space.slot_num_options[static_cast<size_t>(s)];
        if (axis_of_slot[static_cast<size_t>(s)] >= 0) {
          leaving.push_back(axis_of_slot[static_cast<size_t>(s)]);
        }
      }
      std::sort(leaving.begin(), leaving.end(), std::greater<int>());
      for (int pos : leaving) {
        const Axis axis = axes[static_cast<size_t>(pos)];
        std::int64_t st = 1;
        for (size_t j = static_cast<size_t>(pos) + 1; j < axes.size(); ++j) {
          st *= axes[j].size;
        }
        const std::int64_t n = axis.size;
        const std::int64_t out_size = static_cast<std::int64_t>(cost.size()) / n;
        scratch.resize(static_cast<size_t>(out_size));
        ProjEvent event;
        event.slot = axis.slot;
        event.winners.resize(static_cast<size_t>(out_size));
        pool.ParallelFor(out_size / st, [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t outer = lo; outer < hi; ++outer) {
            const double* in = cost.data() + static_cast<size_t>(outer * n * st);
            double* out = scratch.data() + static_cast<size_t>(outer * st);
            std::uint8_t* win = event.winners.data() + static_cast<size_t>(outer * st);
            for (std::int64_t x = 0; x < st; ++x) {
              out[x] = in[x];
              win[x] = 0;
            }
            for (std::int64_t c = 1; c < n; ++c) {
              const double* inc = in + static_cast<size_t>(c * st);
              for (std::int64_t x = 0; x < st; ++x) {
                // Strict less: ties keep the lowest coordinate, the sparse merge's
                // first-in-branch-order winner.
                if (inc[x] < out[x]) {
                  out[x] = inc[x];
                  win[x] = static_cast<std::uint8_t>(c);
                }
              }
            }
          }
        });
        std::swap(cost, scratch);
        axes.erase(axes.begin() + pos);
        axis_of_slot[static_cast<size_t>(axis.slot)] = -1;
        for (size_t j = static_cast<size_t>(pos); j < axes.size(); ++j) {
          axis_of_slot[static_cast<size_t>(axes[j].slot)] = static_cast<int>(j);
        }
        event.residue = axes;
        events.push_back(std::move(event));
      }
      result.stats.project_seconds += SecondsSince(t0);
    }
  }

  // Every branched axis was projected at its slot's last group: one cell remains.
  TOFU_CHECK(axes.empty());
  TOFU_CHECK_EQ(cost.size(), static_cast<size_t>(1));
  result.best_cost = cost[0];

  // Reconstruction: walk the projection events newest-first. An event's residue axes
  // are all projected in LATER events, so their chosen coordinates are already known
  // and pin the residue cell whose recorded winner is this slot's choice.
  std::vector<int> coord_of(static_cast<size_t>(num_slots), 0);
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    std::int64_t residue_index = 0;
    std::int64_t stride = 1;
    for (int j = static_cast<int>(it->residue.size()) - 1; j >= 0; --j) {
      const Axis& axis = it->residue[static_cast<size_t>(j)];
      residue_index += static_cast<std::int64_t>(coord_of[static_cast<size_t>(axis.slot)]) * stride;
      stride *= axis.size;
    }
    coord_of[static_cast<size_t>(it->slot)] =
        static_cast<int>(it->winners[static_cast<size_t>(residue_index)]);
  }
  result.slot_option.assign(static_cast<size_t>(num_slots), 0);
  for (int s = 0; s < num_slots; ++s) {
    if (first[static_cast<size_t>(s)] < 0) {
      continue;  // untouched: option 0
    }
    result.slot_option[static_cast<size_t>(s)] =
        kept[static_cast<size_t>(s)][static_cast<size_t>(coord_of[static_cast<size_t>(s)])];
  }
  result.tables = std::move(tables);
  result.stats.wall_seconds = SecondsSince(start);
  return result;
}

SearchEngine::Result SearchEngine::Impl::RunImpl(const GroupCostFn* table_fn,
                                                 const GroupFillFn* fill_fn,
                                                 const StateCostFn* stream_fn) {
  const bool track = options.memory_budget > 0.0 && !space.slot_option_bytes.empty();
  // Dense-lattice fast path: exact unbudgeted table-mode searches whose unpruned
  // frontier fits the state cap (so the sparse path would never beam) and whose every
  // group charges through a table (so effort counters match the sparse policy).
  if (table_fn != nullptr && stream_fn == nullptr && !track &&
      !space.group_slots.empty() && options_fit_u8 && all_groups_table_static &&
      max_static_width <= options.max_states) {
    return RunDense(*table_fn, fill_fn);
  }

  const auto start = Clock::now();
  const int num_slots = static_cast<int>(space.slot_num_options.size());
  const int num_groups = static_cast<int>(space.group_slots.size());

  Result result;
  std::vector<Rec> recs;
  std::vector<FrontierField> frontier;
  int width = 0;  // current key width in bits

  // Memory-constrained mode: per-state resident bytes ride along with cost. Slots no
  // group ever touches stay at option 0, so they contribute a constant; every touched
  // slot contributes at least its cheapest option, giving the admissible lower bound
  // used for pruning ("could any completion of this state still fit?").
  const double budget = options.memory_budget;
  std::vector<double> slot_min_bytes;
  double base_bytes = 0.0;     // untouched slots, fixed at option 0
  double remaining_min = 0.0;  // cheapest option of every touched slot not yet entered
  if (track) {
    TOFU_CHECK_EQ(space.slot_option_bytes.size(), space.slot_num_options.size());
    slot_min_bytes.resize(static_cast<size_t>(num_slots), 0.0);
    for (int s = 0; s < num_slots; ++s) {
      const std::vector<double>& ob = space.slot_option_bytes[static_cast<size_t>(s)];
      TOFU_CHECK_EQ(static_cast<int>(ob.size()),
                    space.slot_num_options[static_cast<size_t>(s)]);
      if (first[static_cast<size_t>(s)] < 0) {
        base_bytes += ob[0];
        continue;
      }
      double m = ob[0];
      for (double b : ob) {
        m = std::min(m, b);
      }
      slot_min_bytes[static_cast<size_t>(s)] = m;
      remaining_min += m;
    }
    result.min_possible_bytes = base_bytes + remaining_min;
    if (result.min_possible_bytes > budget) {
      // Even the lightest assignment overflows: infeasible before exploring anything.
      result.feasible = false;
      result.slot_option.assign(static_cast<size_t>(num_slots), 0);
      return result;
    }
  }

  StateArena states;
  states.words = words;
  states.track_bytes = track;
  states.Resize(1);
  states.cost[0] = 0.0;
  states.rec[0] = -1;
  if (track) {
    states.bytes[0] = base_bytes;
  }

  StateArena scratch;
  scratch.words = words;
  scratch.track_bytes = track;

  // Projection dedup table: open addressing over state indices.
  std::vector<std::int32_t> dedup;

  // Tables consumed by this run (filled or imported), exported for step-table caching.
  std::shared_ptr<GroupCostTables> out_tables;
  if (table_fn != nullptr) {
    out_tables = std::make_shared<GroupCostTables>();
    out_tables->groups.resize(static_cast<size_t>(num_groups));
  }

  std::vector<int> opts_buffer;  // decoded option indices handed to cost callbacks
  bool aborted = false;

  for (int g = 0; g < num_groups && !aborted; ++g) {
    const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];

    // 1. Branch every state on each entering slot's options.
    const auto t_expand = Clock::now();
    for (int s : touched) {
      if (first[static_cast<size_t>(s)] != g) {
        continue;
      }
      const int opts = space.slot_num_options[static_cast<size_t>(s)];
      const int bits = slot_bits[static_cast<size_t>(s)];
      const std::int64_t n_in = states.count();
      const std::int64_t n_out = n_in * opts;
      TOFU_CHECK(recs.size() + static_cast<size_t>(n_out) <
                 static_cast<size_t>(std::numeric_limits<std::int32_t>::max()));
      const std::int64_t rec_base = static_cast<std::int64_t>(recs.size());
      const int offset = width;
      if (track) {
        // Compacting serial branch with budget pruning. A child is kept only when its
        // accumulated bytes plus the cheapest choice for every still-undecided slot can
        // fit the budget -- pruning is therefore provably safe (no feasible completion
        // is discarded), and since each live parent's cheapest child always passes,
        // the state set can never empty here. Serial is a deliberate simplicity
        // tradeoff: compaction makes output offsets data-dependent; a per-shard
        // count + prefix-sum two-pass would restore ParallelFor bit-identically if
        // constrained-search wall time ever matters.
        const std::vector<double>& ob = space.slot_option_bytes[static_cast<size_t>(s)];
        const double rest_min = remaining_min - slot_min_bytes[static_cast<size_t>(s)];
        recs.reserve(recs.size() + static_cast<size_t>(n_out));
        scratch.Resize(n_out);
        std::int64_t kept = 0;
        for (std::int64_t i = 0; i < n_in; ++i) {
          const std::uint64_t* in_key = states.key(i);
          for (int o = 0; o < opts; ++o) {
            const double child_bytes = states.bytes[static_cast<size_t>(i)] + ob[static_cast<size_t>(o)];
            if (child_bytes + rest_min > budget) {
              ++result.stats.memory_pruned_states;
              continue;
            }
            std::uint64_t* out_key = scratch.key(kept);
            std::memcpy(out_key, in_key, sizeof(std::uint64_t) * static_cast<size_t>(words));
            WriteField(out_key, offset, bits, static_cast<std::uint64_t>(o));
            scratch.cost[static_cast<size_t>(kept)] = states.cost[static_cast<size_t>(i)];
            scratch.bytes[static_cast<size_t>(kept)] = child_bytes;
            recs.push_back({states.rec[static_cast<size_t>(i)], static_cast<std::int32_t>(s),
                            static_cast<std::int32_t>(o)});
            scratch.rec[static_cast<size_t>(kept)] =
                static_cast<std::int32_t>(rec_base + kept);
            ++kept;
          }
        }
        TOFU_CHECK_GE(kept, 1);
        scratch.Shrink(kept);
        remaining_min = rest_min;
      } else {
        recs.resize(recs.size() + static_cast<size_t>(n_out));
        scratch.Resize(n_out);
        pool.ParallelFor(n_in, [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint64_t* in_key = states.key(i);
            for (int o = 0; o < opts; ++o) {
              const std::int64_t j = i * opts + o;
              std::uint64_t* out_key = scratch.key(j);
              std::memcpy(out_key, in_key, sizeof(std::uint64_t) * static_cast<size_t>(words));
              WriteField(out_key, offset, bits, static_cast<std::uint64_t>(o));
              scratch.cost[static_cast<size_t>(j)] = states.cost[static_cast<size_t>(i)];
              const std::int64_t r = rec_base + j;
              recs[static_cast<size_t>(r)] = {states.rec[static_cast<size_t>(i)],
                                              static_cast<std::int32_t>(s),
                                              static_cast<std::int32_t>(o)};
              scratch.rec[static_cast<size_t>(j)] = static_cast<std::int32_t>(r);
            }
          }
        });
      }
      std::swap(states, scratch);
      frontier.push_back({s, width, bits});
      width += bits;

      if (states.count() > options.max_states) {
        // Beam fallback: keep the cheapest quarter of the cap, deterministic tie-break
        // on the packed key. Exactness is lost; see SearchStats::exact.
        const std::int64_t keep =
            std::max<std::int64_t>(1, options.max_states / 4);
        std::vector<std::int64_t> order(static_cast<size_t>(states.count()));
        for (std::int64_t i = 0; i < states.count(); ++i) {
          order[static_cast<size_t>(i)] = i;
        }
        auto cheaper = [&](std::int64_t a, std::int64_t b) {
          if (states.cost[static_cast<size_t>(a)] != states.cost[static_cast<size_t>(b)]) {
            return states.cost[static_cast<size_t>(a)] < states.cost[static_cast<size_t>(b)];
          }
          // Feasibility-aware tie-break: under a budget, an equally-cheap lighter state
          // has at least as many surviving completions, so it is the better keep.
          if (track &&
              states.bytes[static_cast<size_t>(a)] != states.bytes[static_cast<size_t>(b)]) {
            return states.bytes[static_cast<size_t>(a)] < states.bytes[static_cast<size_t>(b)];
          }
          return std::lexicographical_compare(states.key(a), states.key(a) + words,
                                              states.key(b), states.key(b) + words);
        };
        std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                          order.end(), cheaper);
        scratch.Resize(keep);
        for (std::int64_t i = 0; i < keep; ++i) {
          const std::int64_t src = order[static_cast<size_t>(i)];
          std::memcpy(scratch.key(i), states.key(src),
                      sizeof(std::uint64_t) * static_cast<size_t>(words));
          scratch.cost[static_cast<size_t>(i)] = states.cost[static_cast<size_t>(src)];
          if (track) {
            scratch.bytes[static_cast<size_t>(i)] = states.bytes[static_cast<size_t>(src)];
          }
          scratch.rec[static_cast<size_t>(i)] = states.rec[static_cast<size_t>(src)];
        }
        std::swap(states, scratch);
        if (result.stats.exact) {
          TOFU_LOG(Warning) << "search frontier exceeded " << options.max_states
                            << " states; degrading to a beam search (plan approximate)";
        }
        result.stats.exact = false;
      }
    }
    result.stats.expand_seconds += SecondsSince(t_expand);

    // 2. Charge the group's cost to every state. The cost depends only on the options
    // of the group's touched slots (all live here), read straight out of the packed key.
    std::vector<FrontierField> rel;
    rel.reserve(touched.size());
    for (const FrontierField& f : frontier) {
      if (std::binary_search(touched.begin(), touched.end(), f.slot)) {
        rel.push_back(f);
      }
    }
    // `rel` is in frontier (insertion) order; cost callbacks expect group_slots order
    // (sorted by slot id). Reorder to match.
    std::sort(rel.begin(), rel.end(),
              [](const FrontierField& a, const FrontierField& b) { return a.slot < b.slot; });
    const int k = static_cast<int>(rel.size());
    opts_buffer.assign(static_cast<size_t>(k), 0);

    if (table_fn != nullptr) {
      // Dense table: one evaluation per combination, mixed-radix indexed with the last
      // touched slot fastest. Only worthwhile (and safe) while the combination count
      // stays within the live state count: normally every combination is reachable so
      // the table does exactly the work a memo would, but after a beam prune -- or on a
      // group whose option product is astronomically larger than the beam -- a dense
      // table would be unbounded. Those groups fall back to a per-state memo below,
      // bounding work and memory by the state count (the pre-refactor behavior).
      const std::int64_t cells_cap = std::max<std::int64_t>(states.count(), 4096);
      std::vector<std::int64_t> stride(static_cast<size_t>(k), 1);
      std::int64_t cells = 1;
      bool use_table = true;
      for (int i = k - 1; i >= 0; --i) {
        stride[static_cast<size_t>(i)] = cells;
        const int n_opt =
            space.slot_num_options[static_cast<size_t>(rel[static_cast<size_t>(i)].slot)];
        if (cells > cells_cap / n_opt) {  // saturating guard (also prevents overflow)
          use_table = false;
          break;
        }
        cells *= n_opt;
      }
      use_table = use_table && cells <= cells_cap;

      if (use_table) {
        // Import the group's table from a previous search of this space when the cell
        // count matches; otherwise fill it here. Either way the cells count as search
        // effort (the byte-identical warm/cold contract of SearchStats).
        std::shared_ptr<const std::vector<double>> table;
        const GroupCostTables* reuse = options.reuse_tables.get();
        if (reuse != nullptr && static_cast<size_t>(g) < reuse->groups.size() &&
            reuse->groups[static_cast<size_t>(g)] != nullptr &&
            static_cast<std::int64_t>(reuse->groups[static_cast<size_t>(g)]->size()) ==
                cells) {
          table = reuse->groups[static_cast<size_t>(g)];
          result.stats.reused_table_entries += cells;
        } else {
          const auto t_fill = Clock::now();
          auto fresh = std::make_shared<std::vector<double>>(static_cast<size_t>(cells));
          if (fill_fn != nullptr) {
            // `rel` is group_slots[g] (sorted slot order) and the strides follow the
            // same mixed-radix layout, so the bulk fill's contract applies unchanged.
            (*fill_fn)(g, fresh->data(), cells);
          } else {
            for (std::int64_t idx = 0; idx < cells; ++idx) {
              for (int i = 0; i < k; ++i) {
                opts_buffer[static_cast<size_t>(i)] = static_cast<int>(
                    (idx / stride[static_cast<size_t>(i)]) %
                    space.slot_num_options[static_cast<size_t>(rel[static_cast<size_t>(i)].slot)]);
              }
              (*fresh)[static_cast<size_t>(idx)] = (*table_fn)(g, opts_buffer.data());
            }
          }
          table = std::move(fresh);
          result.stats.fill_seconds += SecondsSince(t_fill);
        }
        out_tables->groups[static_cast<size_t>(g)] = table;
        result.stats.states_explored += cells;
        result.stats.cost_table_entries += cells;

        const auto t_charge = Clock::now();
        const std::vector<double>& table_ref = *table;
        const std::vector<FrontierField>& rel_ref = rel;
        const std::vector<std::int64_t>& stride_ref = stride;
        pool.ParallelFor(states.count(), [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint64_t* key = states.key(i);
            std::int64_t idx = 0;
            for (int f = 0; f < k; ++f) {
              const FrontierField& field = rel_ref[static_cast<size_t>(f)];
              idx += static_cast<std::int64_t>(ExtractField(key, field.offset, field.bits)) *
                     stride_ref[static_cast<size_t>(f)];
            }
            states.cost[static_cast<size_t>(i)] += table_ref[static_cast<size_t>(idx)];
          }
        });
        result.stats.charge_seconds += SecondsSince(t_charge);
      } else {
        // Memoized per-state charge: one evaluation per DISTINCT reached projection,
        // serial (the cost callback shares caller scratch).
        const auto t_charge = Clock::now();
        std::unordered_map<std::string, double> memo;
        std::string sub;
        for (std::int64_t i = 0; i < states.count(); ++i) {
          const std::uint64_t* key = states.key(i);
          sub.clear();
          for (int f = 0; f < k; ++f) {
            const FrontierField& field = rel[static_cast<size_t>(f)];
            const int v = static_cast<int>(ExtractField(key, field.offset, field.bits));
            opts_buffer[static_cast<size_t>(f)] = v;
            sub.append(reinterpret_cast<const char*>(&v), sizeof(v));
          }
          auto [it, inserted] = memo.emplace(sub, 0.0);
          if (inserted) {
            it->second = (*table_fn)(g, opts_buffer.data());
            ++result.stats.states_explored;
          }
          states.cost[static_cast<size_t>(i)] += it->second;
        }
        result.stats.charge_seconds += SecondsSince(t_charge);
      }
    } else {
      // Streamed: the callback's own enumeration is the measured cost; keep it serial
      // and in state-index order.
      const auto t_charge = Clock::now();
      for (std::int64_t i = 0; i < states.count(); ++i) {
        const std::uint64_t* key = states.key(i);
        for (int f = 0; f < k; ++f) {
          const FrontierField& field = rel[static_cast<size_t>(f)];
          opts_buffer[static_cast<size_t>(f)] =
              static_cast<int>(ExtractField(key, field.offset, field.bits));
        }
        double cost = 0.0;
        if (!(*stream_fn)(g, opts_buffer.data(), &cost)) {
          aborted = true;
          break;
        }
        states.cost[static_cast<size_t>(i)] += cost;
        ++result.stats.states_explored;
      }
      result.stats.charge_seconds += SecondsSince(t_charge);
      if (aborted) {
        break;
      }
    }
    result.stats.max_frontier_states =
        std::max(result.stats.max_frontier_states, states.count());

    // 3. Project out slots leaving the frontier, keeping the cheapest state per residue.
    bool any_leaving = false;
    for (int s : touched) {
      any_leaving = any_leaving || last[static_cast<size_t>(s)] == g;
    }
    if (!any_leaving) {
      continue;
    }
    const auto t_project = Clock::now();
    std::vector<FrontierField> kept;
    kept.reserve(frontier.size());
    int new_width = 0;
    for (const FrontierField& f : frontier) {
      if (last[static_cast<size_t>(f.slot)] == g) {
        continue;
      }
      kept.push_back({f.slot, new_width, f.bits});  // new offset; old offset is f.offset
      new_width += f.bits;
    }
    // Repack surviving fields. Old offsets are needed for extraction, so carry pairs.
    struct Repack {
      int old_offset;
      int new_offset;
      int bits;
    };
    std::vector<Repack> repack;
    repack.reserve(kept.size());
    {
      size_t ki = 0;
      for (const FrontierField& f : frontier) {
        if (last[static_cast<size_t>(f.slot)] == g) {
          continue;
        }
        repack.push_back({f.offset, kept[ki].offset, f.bits});
        ++ki;
      }
    }
    // Repack keys into scratch; costs and recs stay in `states` (read by index below).
    const std::int64_t n = states.count();
    scratch.Resize(n);
    pool.ParallelFor(n, [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const std::uint64_t* in_key = states.key(i);
        std::uint64_t* out_key = scratch.key(i);
        for (const Repack& r : repack) {
          WriteField(out_key, r.new_offset, r.bits, ExtractField(in_key, r.old_offset, r.bits));
        }
      }
    });
    // Serial min-merge in state-index order (deterministic for any thread count).
    std::int64_t cap = 1;
    while (cap < 2 * n) {
      cap <<= 1;
    }
    dedup.assign(static_cast<size_t>(cap), -1);
    StateArena merged;
    merged.words = words;
    merged.track_bytes = track;
    merged.keys.reserve(static_cast<size_t>(n) * static_cast<size_t>(words));
    merged.cost.reserve(static_cast<size_t>(n));
    merged.rec.reserve(static_cast<size_t>(n));
    const std::uint64_t mask = static_cast<std::uint64_t>(cap - 1);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t* key = scratch.key(i);
      std::uint64_t slot_idx = HashKey(key, words) & mask;
      for (;;) {
        std::int32_t& entry = dedup[static_cast<size_t>(slot_idx)];
        if (entry < 0) {
          entry = static_cast<std::int32_t>(merged.count());
          merged.keys.insert(merged.keys.end(), key, key + words);
          merged.cost.push_back(states.cost[static_cast<size_t>(i)]);
          if (track) {
            merged.bytes.push_back(states.bytes[static_cast<size_t>(i)]);
          }
          merged.rec.push_back(states.rec[static_cast<size_t>(i)]);
          break;
        }
        if (std::memcmp(merged.key(entry), key,
                        sizeof(std::uint64_t) * static_cast<size_t>(words)) == 0) {
          // Without a budget: strictly cheaper wins (equal cost keeps the first state in
          // branch order, the engine's canonical tie-break). With one, equal cost
          // prefers the lighter state -- it dominates the heavier one, since any
          // completion feasible for the heavier is feasible for the lighter.
          const bool better =
              states.cost[static_cast<size_t>(i)] < merged.cost[static_cast<size_t>(entry)] ||
              (track &&
               states.cost[static_cast<size_t>(i)] == merged.cost[static_cast<size_t>(entry)] &&
               states.bytes[static_cast<size_t>(i)] < merged.bytes[static_cast<size_t>(entry)]);
          if (better) {
            merged.cost[static_cast<size_t>(entry)] = states.cost[static_cast<size_t>(i)];
            if (track) {
              merged.bytes[static_cast<size_t>(entry)] = states.bytes[static_cast<size_t>(i)];
            }
            merged.rec[static_cast<size_t>(entry)] = states.rec[static_cast<size_t>(i)];
          }
          break;
        }
        slot_idx = (slot_idx + 1) & mask;
      }
    }
    std::swap(states, merged);
    frontier = std::move(kept);
    width = new_width;
    result.stats.project_seconds += SecondsSince(t_project);
  }

  result.stats.wall_seconds = SecondsSince(start);
  if (aborted) {
    result.completed = false;
    return result;
  }

  // 4. Best terminal state and option reconstruction (untouched slots keep option 0).
  // Every surviving state honors the budget when one is set: branch-time pruning
  // guarantees accumulated + cheapest-remaining <= budget, and at the end nothing
  // remains, so accumulated bytes themselves are within budget.
  TOFU_CHECK_GE(states.count(), 1);
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < states.count(); ++i) {
    const bool better =
        states.cost[static_cast<size_t>(i)] < states.cost[static_cast<size_t>(best)] ||
        (track &&
         states.cost[static_cast<size_t>(i)] == states.cost[static_cast<size_t>(best)] &&
         states.bytes[static_cast<size_t>(i)] < states.bytes[static_cast<size_t>(best)]);
    if (better) {
      best = i;
    }
  }
  result.best_cost = states.cost[static_cast<size_t>(best)];
  if (track) {
    result.best_bytes = states.bytes[static_cast<size_t>(best)];
  }
  result.slot_option.assign(static_cast<size_t>(num_slots), 0);
  for (std::int32_t r = states.rec[static_cast<size_t>(best)]; r >= 0;
       r = recs[static_cast<size_t>(r)].parent) {
    result.slot_option[static_cast<size_t>(recs[static_cast<size_t>(r)].slot)] =
        recs[static_cast<size_t>(r)].option;
  }
  result.tables = std::move(out_tables);
  return result;
}

}  // namespace tofu
