#include "tofu/partition/search_engine.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <unordered_map>

#include "tofu/util/logging.h"
#include "tofu/util/thread_pool.h"

namespace tofu {
namespace {

using Clock = std::chrono::steady_clock;

// Bits needed to store option indices 0..n-1 (0 bits for single-option slots).
int BitsFor(int num_options) {
  int bits = 0;
  while ((1 << bits) < num_options) {
    ++bits;
  }
  return bits;
}

// Field accessors over a W-word packed key. Fields may straddle a word boundary;
// WriteField assumes the target bits are zero (keys are always built from zeroed words).
inline std::uint64_t ExtractField(const std::uint64_t* key, int offset, int bits) {
  if (bits == 0) {
    return 0;
  }
  const int word = offset >> 6;
  const int bit = offset & 63;
  std::uint64_t v = key[word] >> bit;
  if (bit + bits > 64) {
    v |= key[word + 1] << (64 - bit);
  }
  return v & ((std::uint64_t{1} << bits) - 1);
}

inline void WriteField(std::uint64_t* key, int offset, int bits, std::uint64_t value) {
  if (bits == 0) {
    return;
  }
  const int word = offset >> 6;
  const int bit = offset & 63;
  key[word] |= value << bit;
  if (bit + bits > 64) {
    key[word + 1] |= value >> (64 - bit);
  }
}

std::uint64_t HashKey(const std::uint64_t* key, int words) {
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (int w = 0; w < words; ++w) {
    std::uint64_t x = key[w] + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    h ^= (x ^ (x >> 31)) + (h << 6) + (h >> 2);
  }
  return h;
}

// Struct-of-arrays state set: W words of packed key, cost, and backpointer per state
// (plus accumulated resident bytes when a memory budget is active). All keys in one set
// share the same field layout (the current frontier).
struct StateArena {
  int words = 1;
  bool track_bytes = false;
  std::vector<std::uint64_t> keys;  // size() == count * words
  std::vector<double> cost;
  std::vector<double> bytes;  // populated only when track_bytes
  std::vector<std::int32_t> rec;

  std::int64_t count() const { return static_cast<std::int64_t>(cost.size()); }
  const std::uint64_t* key(std::int64_t i) const {
    return keys.data() + static_cast<size_t>(i) * static_cast<size_t>(words);
  }
  std::uint64_t* key(std::int64_t i) {
    return keys.data() + static_cast<size_t>(i) * static_cast<size_t>(words);
  }
  void Resize(std::int64_t n) {
    keys.assign(static_cast<size_t>(n) * static_cast<size_t>(words), 0);
    cost.resize(static_cast<size_t>(n));
    if (track_bytes) {
      bytes.resize(static_cast<size_t>(n));
    }
    rec.resize(static_cast<size_t>(n));
  }
  // Keeps the first n states as-is (Resize would zero the keys).
  void Shrink(std::int64_t n) {
    keys.resize(static_cast<size_t>(n) * static_cast<size_t>(words));
    cost.resize(static_cast<size_t>(n));
    if (track_bytes) {
      bytes.resize(static_cast<size_t>(n));
    }
    rec.resize(static_cast<size_t>(n));
  }
};

// Backpointer record: fixes one slot's option; chained per state.
struct Rec {
  std::int32_t parent;
  std::int32_t slot;
  std::int32_t option;
};

struct FrontierField {
  int slot;
  int offset;  // bit offset within the packed key
  int bits;
};

}  // namespace

struct SearchEngine::Impl {
  SearchSpace space;
  SearchEngineOptions options;
  ThreadPool pool;
  std::vector<int> slot_bits;
  int words = 1;  // per-key words, sized for the widest frontier the schedule reaches

  Impl(SearchSpace s, SearchEngineOptions o)
      : space(std::move(s)), options(o), pool(o.num_threads) {
    const int num_slots = static_cast<int>(space.slot_num_options.size());
    slot_bits.resize(static_cast<size_t>(num_slots));
    for (int s2 = 0; s2 < num_slots; ++s2) {
      TOFU_CHECK_GE(space.slot_num_options[static_cast<size_t>(s2)], 1);
      slot_bits[static_cast<size_t>(s2)] =
          BitsFor(space.slot_num_options[static_cast<size_t>(s2)]);
    }
    ComputeSchedule();
  }

  std::vector<int> first, last;  // per slot: first/last group touching it (-1 if none)

  void ComputeSchedule() {
    const int num_slots = static_cast<int>(space.slot_num_options.size());
    const int num_groups = static_cast<int>(space.group_slots.size());
    first.assign(static_cast<size_t>(num_slots), -1);
    last.assign(static_cast<size_t>(num_slots), -1);
    for (int g = 0; g < num_groups; ++g) {
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        if (first[static_cast<size_t>(s)] < 0) {
          first[static_cast<size_t>(s)] = g;
        }
        last[static_cast<size_t>(s)] = g;
      }
    }
    // Widest simultaneous frontier, in bits, over the whole schedule.
    int width = 0;
    int max_width = 0;
    for (int g = 0; g < num_groups; ++g) {
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        if (first[static_cast<size_t>(s)] == g) {
          width += slot_bits[static_cast<size_t>(s)];
        }
      }
      max_width = std::max(max_width, width);
      for (int s : space.group_slots[static_cast<size_t>(g)]) {
        if (last[static_cast<size_t>(s)] == g) {
          width -= slot_bits[static_cast<size_t>(s)];
        }
      }
    }
    words = std::max(1, (max_width + 63) / 64);
  }

  Result RunImpl(const GroupCostFn* table_fn, const StateCostFn* stream_fn);
};

SearchEngine::SearchEngine(SearchSpace space, SearchEngineOptions options)
    : impl_(std::make_unique<Impl>(std::move(space), options)) {}

SearchEngine::~SearchEngine() = default;

SearchEngine::Result SearchEngine::Run(const GroupCostFn& cost_fn) {
  return impl_->RunImpl(&cost_fn, nullptr);
}

SearchEngine::Result SearchEngine::RunStreamed(const StateCostFn& cost_fn) {
  return impl_->RunImpl(nullptr, &cost_fn);
}

SearchEngine::Result SearchEngine::Impl::RunImpl(const GroupCostFn* table_fn,
                                                 const StateCostFn* stream_fn) {
  const auto start = Clock::now();
  const int num_slots = static_cast<int>(space.slot_num_options.size());
  const int num_groups = static_cast<int>(space.group_slots.size());

  Result result;
  std::vector<Rec> recs;
  std::vector<FrontierField> frontier;
  int width = 0;  // current key width in bits

  // Memory-constrained mode: per-state resident bytes ride along with cost. Slots no
  // group ever touches stay at option 0, so they contribute a constant; every touched
  // slot contributes at least its cheapest option, giving the admissible lower bound
  // used for pruning ("could any completion of this state still fit?").
  const bool track = options.memory_budget > 0.0 && !space.slot_option_bytes.empty();
  const double budget = options.memory_budget;
  std::vector<double> slot_min_bytes;
  double base_bytes = 0.0;     // untouched slots, fixed at option 0
  double remaining_min = 0.0;  // cheapest option of every touched slot not yet entered
  if (track) {
    TOFU_CHECK_EQ(space.slot_option_bytes.size(), space.slot_num_options.size());
    slot_min_bytes.resize(static_cast<size_t>(num_slots), 0.0);
    for (int s = 0; s < num_slots; ++s) {
      const std::vector<double>& ob = space.slot_option_bytes[static_cast<size_t>(s)];
      TOFU_CHECK_EQ(static_cast<int>(ob.size()),
                    space.slot_num_options[static_cast<size_t>(s)]);
      if (first[static_cast<size_t>(s)] < 0) {
        base_bytes += ob[0];
        continue;
      }
      double m = ob[0];
      for (double b : ob) {
        m = std::min(m, b);
      }
      slot_min_bytes[static_cast<size_t>(s)] = m;
      remaining_min += m;
    }
    result.min_possible_bytes = base_bytes + remaining_min;
    if (result.min_possible_bytes > budget) {
      // Even the lightest assignment overflows: infeasible before exploring anything.
      result.feasible = false;
      result.slot_option.assign(static_cast<size_t>(num_slots), 0);
      return result;
    }
  }

  StateArena states;
  states.words = words;
  states.track_bytes = track;
  states.Resize(1);
  states.cost[0] = 0.0;
  states.rec[0] = -1;
  if (track) {
    states.bytes[0] = base_bytes;
  }

  StateArena scratch;
  scratch.words = words;
  scratch.track_bytes = track;

  // Projection dedup table: open addressing over state indices.
  std::vector<std::int32_t> dedup;

  std::vector<double> table;      // current group's dense cost table
  std::vector<int> opts_buffer;   // decoded option indices handed to cost callbacks
  bool aborted = false;

  for (int g = 0; g < num_groups && !aborted; ++g) {
    const std::vector<int>& touched = space.group_slots[static_cast<size_t>(g)];

    // 1. Branch every state on each entering slot's options.
    for (int s : touched) {
      if (first[static_cast<size_t>(s)] != g) {
        continue;
      }
      const int opts = space.slot_num_options[static_cast<size_t>(s)];
      const int bits = slot_bits[static_cast<size_t>(s)];
      const std::int64_t n_in = states.count();
      const std::int64_t n_out = n_in * opts;
      TOFU_CHECK(recs.size() + static_cast<size_t>(n_out) <
                 static_cast<size_t>(std::numeric_limits<std::int32_t>::max()));
      const std::int64_t rec_base = static_cast<std::int64_t>(recs.size());
      const int offset = width;
      if (track) {
        // Compacting serial branch with budget pruning. A child is kept only when its
        // accumulated bytes plus the cheapest choice for every still-undecided slot can
        // fit the budget -- pruning is therefore provably safe (no feasible completion
        // is discarded), and since each live parent's cheapest child always passes,
        // the state set can never empty here. Serial is a deliberate simplicity
        // tradeoff: compaction makes output offsets data-dependent; a per-shard
        // count + prefix-sum two-pass would restore ParallelFor bit-identically if
        // constrained-search wall time ever matters.
        const std::vector<double>& ob = space.slot_option_bytes[static_cast<size_t>(s)];
        const double rest_min = remaining_min - slot_min_bytes[static_cast<size_t>(s)];
        recs.reserve(recs.size() + static_cast<size_t>(n_out));
        scratch.Resize(n_out);
        std::int64_t kept = 0;
        for (std::int64_t i = 0; i < n_in; ++i) {
          const std::uint64_t* in_key = states.key(i);
          for (int o = 0; o < opts; ++o) {
            const double child_bytes = states.bytes[static_cast<size_t>(i)] + ob[static_cast<size_t>(o)];
            if (child_bytes + rest_min > budget) {
              ++result.stats.memory_pruned_states;
              continue;
            }
            std::uint64_t* out_key = scratch.key(kept);
            std::memcpy(out_key, in_key, sizeof(std::uint64_t) * static_cast<size_t>(words));
            WriteField(out_key, offset, bits, static_cast<std::uint64_t>(o));
            scratch.cost[static_cast<size_t>(kept)] = states.cost[static_cast<size_t>(i)];
            scratch.bytes[static_cast<size_t>(kept)] = child_bytes;
            recs.push_back({states.rec[static_cast<size_t>(i)], static_cast<std::int32_t>(s),
                            static_cast<std::int32_t>(o)});
            scratch.rec[static_cast<size_t>(kept)] =
                static_cast<std::int32_t>(rec_base + kept);
            ++kept;
          }
        }
        TOFU_CHECK_GE(kept, 1);
        scratch.Shrink(kept);
        remaining_min = rest_min;
      } else {
        recs.resize(recs.size() + static_cast<size_t>(n_out));
        scratch.Resize(n_out);
        pool.ParallelFor(n_in, [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint64_t* in_key = states.key(i);
            for (int o = 0; o < opts; ++o) {
              const std::int64_t j = i * opts + o;
              std::uint64_t* out_key = scratch.key(j);
              std::memcpy(out_key, in_key, sizeof(std::uint64_t) * static_cast<size_t>(words));
              WriteField(out_key, offset, bits, static_cast<std::uint64_t>(o));
              scratch.cost[static_cast<size_t>(j)] = states.cost[static_cast<size_t>(i)];
              const std::int64_t r = rec_base + j;
              recs[static_cast<size_t>(r)] = {states.rec[static_cast<size_t>(i)],
                                              static_cast<std::int32_t>(s),
                                              static_cast<std::int32_t>(o)};
              scratch.rec[static_cast<size_t>(j)] = static_cast<std::int32_t>(r);
            }
          }
        });
      }
      std::swap(states, scratch);
      frontier.push_back({s, width, bits});
      width += bits;

      if (states.count() > options.max_states) {
        // Beam fallback: keep the cheapest quarter of the cap, deterministic tie-break
        // on the packed key. Exactness is lost; see SearchStats::exact.
        const std::int64_t keep =
            std::max<std::int64_t>(1, options.max_states / 4);
        std::vector<std::int64_t> order(static_cast<size_t>(states.count()));
        for (std::int64_t i = 0; i < states.count(); ++i) {
          order[static_cast<size_t>(i)] = i;
        }
        auto cheaper = [&](std::int64_t a, std::int64_t b) {
          if (states.cost[static_cast<size_t>(a)] != states.cost[static_cast<size_t>(b)]) {
            return states.cost[static_cast<size_t>(a)] < states.cost[static_cast<size_t>(b)];
          }
          // Feasibility-aware tie-break: under a budget, an equally-cheap lighter state
          // has at least as many surviving completions, so it is the better keep.
          if (track &&
              states.bytes[static_cast<size_t>(a)] != states.bytes[static_cast<size_t>(b)]) {
            return states.bytes[static_cast<size_t>(a)] < states.bytes[static_cast<size_t>(b)];
          }
          return std::lexicographical_compare(states.key(a), states.key(a) + words,
                                              states.key(b), states.key(b) + words);
        };
        std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(keep),
                          order.end(), cheaper);
        scratch.Resize(keep);
        for (std::int64_t i = 0; i < keep; ++i) {
          const std::int64_t src = order[static_cast<size_t>(i)];
          std::memcpy(scratch.key(i), states.key(src),
                      sizeof(std::uint64_t) * static_cast<size_t>(words));
          scratch.cost[static_cast<size_t>(i)] = states.cost[static_cast<size_t>(src)];
          if (track) {
            scratch.bytes[static_cast<size_t>(i)] = states.bytes[static_cast<size_t>(src)];
          }
          scratch.rec[static_cast<size_t>(i)] = states.rec[static_cast<size_t>(src)];
        }
        std::swap(states, scratch);
        if (result.stats.exact) {
          TOFU_LOG(Warning) << "search frontier exceeded " << options.max_states
                            << " states; degrading to a beam search (plan approximate)";
        }
        result.stats.exact = false;
      }
    }

    // 2. Charge the group's cost to every state. The cost depends only on the options
    // of the group's touched slots (all live here), read straight out of the packed key.
    std::vector<FrontierField> rel;
    rel.reserve(touched.size());
    for (const FrontierField& f : frontier) {
      if (std::binary_search(touched.begin(), touched.end(), f.slot)) {
        rel.push_back(f);
      }
    }
    // `rel` is in frontier (insertion) order; cost callbacks expect group_slots order
    // (sorted by slot id). Reorder to match.
    std::sort(rel.begin(), rel.end(),
              [](const FrontierField& a, const FrontierField& b) { return a.slot < b.slot; });
    const int k = static_cast<int>(rel.size());
    opts_buffer.assign(static_cast<size_t>(k), 0);

    if (table_fn != nullptr) {
      // Dense table: one evaluation per combination, mixed-radix indexed with the last
      // touched slot fastest. Only worthwhile (and safe) while the combination count
      // stays within the live state count: normally every combination is reachable so
      // the table does exactly the work a memo would, but after a beam prune -- or on a
      // group whose option product is astronomically larger than the beam -- a dense
      // table would be unbounded. Those groups fall back to a per-state memo below,
      // bounding work and memory by the state count (the pre-refactor behavior).
      const std::int64_t cells_cap = std::max<std::int64_t>(states.count(), 4096);
      std::vector<std::int64_t> stride(static_cast<size_t>(k), 1);
      std::int64_t cells = 1;
      bool use_table = true;
      for (int i = k - 1; i >= 0; --i) {
        stride[static_cast<size_t>(i)] = cells;
        const int n_opt =
            space.slot_num_options[static_cast<size_t>(rel[static_cast<size_t>(i)].slot)];
        if (cells > cells_cap / n_opt) {  // saturating guard (also prevents overflow)
          use_table = false;
          break;
        }
        cells *= n_opt;
      }
      use_table = use_table && cells <= cells_cap;

      if (use_table) {
        table.assign(static_cast<size_t>(cells), 0.0);
        for (std::int64_t idx = 0; idx < cells; ++idx) {
          for (int i = 0; i < k; ++i) {
            opts_buffer[static_cast<size_t>(i)] = static_cast<int>(
                (idx / stride[static_cast<size_t>(i)]) %
                space.slot_num_options[static_cast<size_t>(rel[static_cast<size_t>(i)].slot)]);
          }
          table[static_cast<size_t>(idx)] = (*table_fn)(g, opts_buffer.data());
        }
        result.stats.states_explored += cells;
        result.stats.cost_table_entries += cells;

        const std::vector<FrontierField>& rel_ref = rel;
        const std::vector<std::int64_t>& stride_ref = stride;
        pool.ParallelFor(states.count(), [&](int, std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            const std::uint64_t* key = states.key(i);
            std::int64_t idx = 0;
            for (int f = 0; f < k; ++f) {
              const FrontierField& field = rel_ref[static_cast<size_t>(f)];
              idx += static_cast<std::int64_t>(ExtractField(key, field.offset, field.bits)) *
                     stride_ref[static_cast<size_t>(f)];
            }
            states.cost[static_cast<size_t>(i)] += table[static_cast<size_t>(idx)];
          }
        });
      } else {
        // Memoized per-state charge: one evaluation per DISTINCT reached projection,
        // serial (the cost callback shares caller scratch).
        std::unordered_map<std::string, double> memo;
        std::string sub;
        for (std::int64_t i = 0; i < states.count(); ++i) {
          const std::uint64_t* key = states.key(i);
          sub.clear();
          for (int f = 0; f < k; ++f) {
            const FrontierField& field = rel[static_cast<size_t>(f)];
            const int v = static_cast<int>(ExtractField(key, field.offset, field.bits));
            opts_buffer[static_cast<size_t>(f)] = v;
            sub.append(reinterpret_cast<const char*>(&v), sizeof(v));
          }
          auto [it, inserted] = memo.emplace(sub, 0.0);
          if (inserted) {
            it->second = (*table_fn)(g, opts_buffer.data());
            ++result.stats.states_explored;
          }
          states.cost[static_cast<size_t>(i)] += it->second;
        }
      }
    } else {
      // Streamed: the callback's own enumeration is the measured cost; keep it serial
      // and in state-index order.
      for (std::int64_t i = 0; i < states.count(); ++i) {
        const std::uint64_t* key = states.key(i);
        for (int f = 0; f < k; ++f) {
          const FrontierField& field = rel[static_cast<size_t>(f)];
          opts_buffer[static_cast<size_t>(f)] =
              static_cast<int>(ExtractField(key, field.offset, field.bits));
        }
        double cost = 0.0;
        if (!(*stream_fn)(g, opts_buffer.data(), &cost)) {
          aborted = true;
          break;
        }
        states.cost[static_cast<size_t>(i)] += cost;
        ++result.stats.states_explored;
      }
      if (aborted) {
        break;
      }
    }
    result.stats.max_frontier_states =
        std::max(result.stats.max_frontier_states, states.count());

    // 3. Project out slots leaving the frontier, keeping the cheapest state per residue.
    bool any_leaving = false;
    for (int s : touched) {
      any_leaving = any_leaving || last[static_cast<size_t>(s)] == g;
    }
    if (!any_leaving) {
      continue;
    }
    std::vector<FrontierField> kept;
    kept.reserve(frontier.size());
    int new_width = 0;
    for (const FrontierField& f : frontier) {
      if (last[static_cast<size_t>(f.slot)] == g) {
        continue;
      }
      kept.push_back({f.slot, new_width, f.bits});  // new offset; old offset is f.offset
      new_width += f.bits;
    }
    // Repack surviving fields. Old offsets are needed for extraction, so carry pairs.
    struct Repack {
      int old_offset;
      int new_offset;
      int bits;
    };
    std::vector<Repack> repack;
    repack.reserve(kept.size());
    {
      size_t ki = 0;
      for (const FrontierField& f : frontier) {
        if (last[static_cast<size_t>(f.slot)] == g) {
          continue;
        }
        repack.push_back({f.offset, kept[ki].offset, f.bits});
        ++ki;
      }
    }
    // Repack keys into scratch; costs and recs stay in `states` (read by index below).
    const std::int64_t n = states.count();
    scratch.Resize(n);
    pool.ParallelFor(n, [&](int, std::int64_t lo, std::int64_t hi) {
      for (std::int64_t i = lo; i < hi; ++i) {
        const std::uint64_t* in_key = states.key(i);
        std::uint64_t* out_key = scratch.key(i);
        for (const Repack& r : repack) {
          WriteField(out_key, r.new_offset, r.bits, ExtractField(in_key, r.old_offset, r.bits));
        }
      }
    });
    // Serial min-merge in state-index order (deterministic for any thread count).
    std::int64_t cap = 1;
    while (cap < 2 * n) {
      cap <<= 1;
    }
    dedup.assign(static_cast<size_t>(cap), -1);
    StateArena merged;
    merged.words = words;
    merged.track_bytes = track;
    merged.keys.reserve(static_cast<size_t>(n) * static_cast<size_t>(words));
    merged.cost.reserve(static_cast<size_t>(n));
    merged.rec.reserve(static_cast<size_t>(n));
    const std::uint64_t mask = static_cast<std::uint64_t>(cap - 1);
    for (std::int64_t i = 0; i < n; ++i) {
      const std::uint64_t* key = scratch.key(i);
      std::uint64_t slot_idx = HashKey(key, words) & mask;
      for (;;) {
        std::int32_t& entry = dedup[static_cast<size_t>(slot_idx)];
        if (entry < 0) {
          entry = static_cast<std::int32_t>(merged.count());
          merged.keys.insert(merged.keys.end(), key, key + words);
          merged.cost.push_back(states.cost[static_cast<size_t>(i)]);
          if (track) {
            merged.bytes.push_back(states.bytes[static_cast<size_t>(i)]);
          }
          merged.rec.push_back(states.rec[static_cast<size_t>(i)]);
          break;
        }
        if (std::memcmp(merged.key(entry), key,
                        sizeof(std::uint64_t) * static_cast<size_t>(words)) == 0) {
          // Without a budget: strictly cheaper wins (equal cost keeps the first state in
          // branch order, the engine's canonical tie-break). With one, equal cost
          // prefers the lighter state -- it dominates the heavier one, since any
          // completion feasible for the heavier is feasible for the lighter.
          const bool better =
              states.cost[static_cast<size_t>(i)] < merged.cost[static_cast<size_t>(entry)] ||
              (track &&
               states.cost[static_cast<size_t>(i)] == merged.cost[static_cast<size_t>(entry)] &&
               states.bytes[static_cast<size_t>(i)] < merged.bytes[static_cast<size_t>(entry)]);
          if (better) {
            merged.cost[static_cast<size_t>(entry)] = states.cost[static_cast<size_t>(i)];
            if (track) {
              merged.bytes[static_cast<size_t>(entry)] = states.bytes[static_cast<size_t>(i)];
            }
            merged.rec[static_cast<size_t>(entry)] = states.rec[static_cast<size_t>(i)];
          }
          break;
        }
        slot_idx = (slot_idx + 1) & mask;
      }
    }
    std::swap(states, merged);
    frontier = std::move(kept);
    width = new_width;
  }

  result.stats.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  if (aborted) {
    result.completed = false;
    return result;
  }

  // 4. Best terminal state and option reconstruction (untouched slots keep option 0).
  // Every surviving state honors the budget when one is set: branch-time pruning
  // guarantees accumulated + cheapest-remaining <= budget, and at the end nothing
  // remains, so accumulated bytes themselves are within budget.
  TOFU_CHECK_GE(states.count(), 1);
  std::int64_t best = 0;
  for (std::int64_t i = 1; i < states.count(); ++i) {
    const bool better =
        states.cost[static_cast<size_t>(i)] < states.cost[static_cast<size_t>(best)] ||
        (track &&
         states.cost[static_cast<size_t>(i)] == states.cost[static_cast<size_t>(best)] &&
         states.bytes[static_cast<size_t>(i)] < states.bytes[static_cast<size_t>(best)]);
    if (better) {
      best = i;
    }
  }
  result.best_cost = states.cost[static_cast<size_t>(best)];
  if (track) {
    result.best_bytes = states.bytes[static_cast<size_t>(best)];
  }
  result.slot_option.assign(static_cast<size_t>(num_slots), 0);
  for (std::int32_t r = states.rec[static_cast<size_t>(best)]; r >= 0;
       r = recs[static_cast<size_t>(r)].parent) {
    result.slot_option[static_cast<size_t>(recs[static_cast<size_t>(r)].slot)] =
        recs[static_cast<size_t>(r)].option;
  }
  return result;
}

}  // namespace tofu
