#include "tofu/partition/flat_dp.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "tofu/memory/bytes.h"
#include "tofu/partition/search_engine.h"
#include "tofu/partition/strategy.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Clock = std::chrono::steady_clock;

// A tiling is the per-micro-step cut sequence of one slot (length m). Sequences are
// enumerated fully ordered: although Theorem 1 makes a *joint* swap of two whole steps
// cost-neutral, canonicalizing each slot independently would lose cross-slot pairings
// (slot A on (d0,d1) with slot B on (d1,d0) has no jointly-canonical representative), so
// the flat search must keep the order. This slightly over-counts the paper's per-tensor
// multiset figure (e.g. 4^3 ordered vs 20 multiset tilings of a 4-D tensor over 8
// workers) -- bench_table1 reports both.
using Tiling = std::vector<int>;

void EnumerateTilings(const Shape& shape, std::int64_t bytes,
                      const std::vector<int>& factors, size_t step, Shape current,
                      Tiling prefix, std::vector<Tiling>* out) {
  if (step == factors.size()) {
    out->push_back(prefix);
    return;
  }
  const int f = factors[step];
  std::vector<int> options;
  for (int d = 0; d < static_cast<int>(current.size()); ++d) {
    if (current[static_cast<size_t>(d)] >= f) {
      options.push_back(d);
    }
  }
  if (options.empty() || bytes <= kReplicateThresholdBytes) {
    options.push_back(kReplicated);
  }
  for (int cut : options) {
    Shape next = current;
    if (cut != kReplicated) {
      std::int64_t& e = next[static_cast<size_t>(cut)];
      e = (e + f - 1) / f;
    }
    Tiling seq = prefix;
    seq.push_back(cut);
    EnumerateTilings(shape, bytes, factors, step + 1, std::move(next), std::move(seq), out);
  }
}

// Strategy sequences of one unit (one choice per micro-step; kReplicatedExec always
// allowed), fully ordered for the same pairing reason.
void EnumerateStrategySeqs(int num_strategies, const std::vector<int>& factors, size_t step,
                           std::vector<int> prefix, std::vector<std::vector<int>>* out) {
  if (step == factors.size()) {
    out->push_back(prefix);
    return;
  }
  for (int choice = kReplicatedExec; choice < num_strategies; ++choice) {
    std::vector<int> seq = prefix;
    seq.push_back(choice);
    EnumerateStrategySeqs(num_strategies, factors, step + 1, std::move(seq), out);
  }
}

// Mirror of StepContext's cost conventions over locally-tracked shapes (see strategy.h for
// the table). `size` and extents reflect the tensor after `step` micro-steps of its tiling.
struct LocalCost {
  const Graph* graph;
  const std::vector<int>* factors;

  double TensorBytesAt(TensorId t, const Tiling& tiling, size_t step) const {
    double size = static_cast<double>(graph->tensor(t).bytes());
    for (size_t i = 0; i < step; ++i) {
      if (tiling[i] != kReplicated) {
        size /= static_cast<double>((*factors)[i]);
      }
    }
    return size;
  }

  double InputCost(TensorId t, const ConcreteInputReq& req, const Tiling& tiling,
                   size_t step) const {
    const double f = static_cast<double>((*factors)[step]);
    const int stored = tiling[step];
    const double size = TensorBytesAt(t, tiling, step);
    if (stored == kReplicated) {
      return 0.0;
    }
    if (req.kind == InputReq::Kind::kReplicated) {
      return size * (f - 1.0);
    }
    double halo = 0.0;
    const std::int64_t extent = graph->tensor(t).shape[static_cast<size_t>(req.dim)];
    if (req.halo_elems > 0 && extent > 0) {
      halo = 2.0 * (f - 1.0) * size * static_cast<double>(req.halo_elems) /
             static_cast<double>(extent);
    }
    if (stored == req.dim) {
      return halo;
    }
    return size * (f - 1.0) / f + halo;
  }

  double OutputCost(TensorId t, const ConcreteStrategy& s, const Tiling& tiling,
                    size_t step) const {
    const double f = static_cast<double>((*factors)[step]);
    const int stored = tiling[step];
    const double size = TensorBytesAt(t, tiling, step);
    if (s.is_reduction) {
      return stored == kReplicated ? 2.0 * size * (f - 1.0) : size * (f - 1.0);
    }
    if (stored == s.output_dim) {
      return 0.0;
    }
    if (stored == kReplicated) {
      return size * (f - 1.0);
    }
    return size * (f - 1.0) / f;
  }
};

}  // namespace

FlatDpResult RunFlatDp(const Graph& graph, const CoarseGraph& coarse,
                       const FlatDpOptions& options) {
  FlatDpResult result;
  const std::vector<int> factors = FactorizeWorkers(options.num_workers);
  const size_t m = factors.size();
  const auto start = Clock::now();
  const auto deadline = start + std::chrono::duration_cast<Clock::duration>(
                                    std::chrono::duration<double>(options.time_budget_seconds));

  // Per-slot tilings.
  const int num_slots = coarse.num_slots();
  std::vector<std::vector<Tiling>> slot_tilings(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    const TensorNode& rep = graph.tensor(coarse.slots[static_cast<size_t>(s)].members[0]);
    EnumerateTilings(rep.shape, rep.bytes(), factors, 0, rep.shape, {},
                     &slot_tilings[static_cast<size_t>(s)]);
  }

  // Per-unit strategy sequences; strategies concretized once at the original shapes.
  StepContext base_ctx(graph, StepContext::InitialShapes(graph), std::max(2, factors[0]));
  std::vector<std::vector<std::vector<int>>> unit_seqs(coarse.units.size());
  for (size_t u = 0; u < coarse.units.size(); ++u) {
    int n = static_cast<int>(base_ctx.Strategies(coarse.units[u].ops[0]).size());
    if (!options.allow_reduction_strategies) {
      // Reduction strategies are filtered during evaluation; shrink the space here too.
      int kept = 0;
      for (int i = 0; i < n; ++i) {
        if (!base_ctx.Strategies(coarse.units[u].ops[0])[static_cast<size_t>(i)]
                 .is_reduction) {
          ++kept;
        }
      }
      n = kept;
    }
    EnumerateStrategySeqs(n, factors, 0, {}, &unit_seqs[u]);
  }

  // Full configuration count (the paper's 20^6-per-group figure).
  for (const MacroGroup& group : coarse.groups) {
    double per_group = 1.0;
    for (int s : group.touched_slots) {
      per_group *= static_cast<double>(slot_tilings[static_cast<size_t>(s)].size());
    }
    for (int u : group.units) {
      per_group *= static_cast<double>(unit_seqs[static_cast<size_t>(u)].size());
    }
    result.configs_total += per_group;
  }

  LocalCost cost{&graph, &factors};

  // Joint cost of one group configuration: all micro-steps, weighted by group counts.
  auto group_config_cost = [&](const MacroGroup& group,
                               const std::vector<const Tiling*>& tiling_of_slot,
                               const std::vector<const std::vector<int>*>& seq_of_unit)
      -> double {
    double total = 0.0;
    double groups_at_step = 1.0;
    for (size_t step = 0; step < m; ++step) {
      const double f = static_cast<double>(factors[step]);
      for (size_t ui = 0; ui < group.units.size(); ++ui) {
        const Unit& unit = coarse.units[static_cast<size_t>(group.units[ui])];
        const int choice = (*seq_of_unit[ui])[step];
        for (OpId op_id : unit.ops) {
          const OpNode& op = graph.op(op_id);
          const ConcreteStrategy* strat = nullptr;
          if (choice != kReplicatedExec) {
            strat = &base_ctx.Strategies(op_id)[static_cast<size_t>(choice)];
            if (!options.allow_reduction_strategies && strat->is_reduction) {
              return kInf;
            }
          }
          for (size_t i = 0; i < op.inputs.size(); ++i) {
            const TensorId t = op.inputs[i];
            const Tiling& tiling =
                *tiling_of_slot[static_cast<size_t>(coarse.tensor_slot[static_cast<size_t>(t)])];
            if (strat == nullptr) {
              if (tiling[step] != kReplicated) {
                total += groups_at_step * cost.TensorBytesAt(t, tiling, step) * (f - 1.0);
              }
            } else {
              total += groups_at_step * cost.InputCost(t, strat->inputs[i], tiling, step);
            }
          }
          if (strat != nullptr) {
            const TensorId t = op.output;
            const Tiling& tiling =
                *tiling_of_slot[static_cast<size_t>(coarse.tensor_slot[static_cast<size_t>(t)])];
            total += groups_at_step * cost.OutputCost(t, *strat, tiling, step);
          }
        }
      }
      groups_at_step *= f;
    }
    return total;
  };

  // Frontier DP over groups on the shared engine (streamed: the per-state joint
  // enumeration below is the faithful reproduction of the blown-up search).
  SearchSpace space;
  space.slot_num_options.resize(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    space.slot_num_options[static_cast<size_t>(s)] =
        static_cast<int>(slot_tilings[static_cast<size_t>(s)].size());
  }
  space.group_slots.reserve(coarse.groups.size());
  for (const MacroGroup& group : coarse.groups) {
    space.group_slots.push_back(group.touched_slots);
  }
  // A flat option is a whole multi-step tiling, so each slot's FINAL per-worker bytes
  // are known per option and the budget prunes directly (step-wise ceil division,
  // matching ApplyBasicPlan's rounding).
  if (options.memory_budget_bytes > 0) {
    space.slot_option_bytes.resize(static_cast<size_t>(num_slots));
    for (int s = 0; s < num_slots; ++s) {
      const TensorSlot& slot = coarse.slots[static_cast<size_t>(s)];
      for (const Tiling& tiling : slot_tilings[static_cast<size_t>(s)]) {
        double total = 0.0;
        for (TensorId t : slot.members) {
          total += ShardBytesForTiling(graph.tensor(t).shape,
                                       graph.tensor(t).elem_size, tiling, factors);
        }
        space.slot_option_bytes[static_cast<size_t>(s)].push_back(total);
      }
    }
  }

  std::vector<const Tiling*> tiling_of_slot(static_cast<size_t>(num_slots), nullptr);
  std::int64_t since_deadline_check = 0;
  bool deadline_hit = false;

  SearchEngine::StateCostFn state_cost_fn = [&](int g, const int* opts, double* out) {
    const MacroGroup& group = coarse.groups[static_cast<size_t>(g)];
    for (size_t i = 0; i < group.touched_slots.size(); ++i) {
      const int slot = group.touched_slots[i];
      tiling_of_slot[static_cast<size_t>(slot)] =
          &slot_tilings[static_cast<size_t>(slot)][static_cast<size_t>(opts[i])];
    }
    const size_t num_units = group.units.size();
    std::vector<size_t> odo(num_units, 0);
    std::vector<const std::vector<int>*> seqs(num_units, nullptr);
    double best = num_units == 0 ? 0.0 : kInf;
    bool done = num_units == 0;
    while (!done) {
      for (size_t ui = 0; ui < num_units; ++ui) {
        seqs[ui] = &unit_seqs[static_cast<size_t>(group.units[ui])][odo[ui]];
      }
      best = std::min(best, group_config_cost(group, tiling_of_slot, seqs));
      result.configs_evaluated += 1.0;
      if (++since_deadline_check >= 4096) {
        since_deadline_check = 0;
        if (Clock::now() > deadline) {
          deadline_hit = true;
          return false;
        }
      }
      // Advance odometer.
      size_t pos = 0;
      while (pos < num_units) {
        if (++odo[pos] < unit_seqs[static_cast<size_t>(group.units[pos])].size()) {
          break;
        }
        odo[pos] = 0;
        ++pos;
      }
      done = pos == num_units;
    }
    *out = best;
    return true;
  };

  // No beam here: the flat search either completes exactly or times out.
  SearchEngineOptions engine_options;
  engine_options.max_states = std::numeric_limits<std::int64_t>::max() / 2;
  engine_options.memory_budget = static_cast<double>(options.memory_budget_bytes);
  SearchEngine engine(std::move(space), engine_options);
  SearchEngine::Result search = engine.RunStreamed(state_cost_fn);
  result.search_stats = search.stats;
  result.min_possible_bytes = search.min_possible_bytes;

  result.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (!search.feasible) {
    result.feasible = false;
    result.completed = true;  // nothing left to search: infeasibility is a full answer
    return result;
  }
  if (!search.completed) {
    TOFU_CHECK(deadline_hit);
    result.completed = false;
    result.projected_seconds = result.configs_evaluated > 0
                                   ? result.elapsed_seconds * result.configs_total /
                                         result.configs_evaluated
                                   : kInf;
    return result;
  }
  result.completed = true;

  // Chosen tiling per slot, straight from the engine.
  const std::vector<int>& slot_choice = search.slot_option;

  // Assemble the plan and recost it exactly with the shared StepContext machinery, so
  // totals are directly comparable with RecursivePartition's.
  PartitionPlan plan;
  plan.num_workers = options.num_workers;
  plan.step_factors = factors;
  plan.memory_budget_bytes = options.memory_budget_bytes;
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);
  double groups_at_step = 1.0;
  for (size_t step = 0; step < m; ++step) {
    BasicPlan bp;
    bp.ways = factors[step];
    bp.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      const int slot = coarse.tensor_slot[static_cast<size_t>(t)];
      bp.tensor_cut[static_cast<size_t>(t)] =
          slot_tilings[static_cast<size_t>(slot)][static_cast<size_t>(
              slot_choice[static_cast<size_t>(slot)])][step];
    }
    StepContext ctx(graph, shapes, factors[step]);
    bp.op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
    bp.comm_bytes = 0.0;
    for (OpId op_id = 0; op_id < graph.num_ops(); ++op_id) {
      // Replicated execution competes on cost, matching the DP's UnitCost semantics.
      double op_best = ctx.OpCommBytes(op_id, kReplicatedExec, bp.tensor_cut);
      int op_choice = kReplicatedExec;
      const int n = static_cast<int>(ctx.Strategies(op_id).size());
      for (int sidx = 0; sidx < n; ++sidx) {
        if (!options.allow_reduction_strategies &&
            ctx.Strategies(op_id)[static_cast<size_t>(sidx)].is_reduction) {
          continue;
        }
        if (!ctx.Applicable(op_id, sidx)) {
          continue;
        }
        const double c = ctx.OpCommBytes(op_id, sidx, bp.tensor_cut);
        if (c < op_best) {
          op_best = c;
          op_choice = sidx;
        }
      }
      bp.op_strategy[static_cast<size_t>(op_id)] = op_choice;
      bp.comm_bytes += op_best;
    }
    bp.peak_shard_bytes = StepResidentBytes(
        graph, bp.tensor_cut, factors[step],
        [&shapes](TensorId t) -> const Shape& {
          return shapes[static_cast<size_t>(t)];
        });
    const double weighted = groups_at_step * bp.comm_bytes;
    plan.weighted_step_costs.push_back(weighted);
    plan.total_comm_bytes += weighted;
    shapes = StepContext::ApplyBasicPlan(graph, shapes, bp);
    plan.steps.push_back(std::move(bp));
    groups_at_step *= static_cast<double>(factors[step]);
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace tofu
