// Baseline partition algorithms compared against Tofu in Figure 10:
//   * DataParallel -- activations split along the batch dimension, model state (weights,
//     weight gradients, optimizer history) replicated: the classic default whose
//     per-iteration cost is an all-reduce of every weight gradient;
//   * AllRow-Greedy -- every tensor split along its first dimension (the "one weird
//     trick"-like default for CNNs), operators greedily adapted;
//   * Spartan -- largest-tensor-first greedy tiling (Huang et al., ATC'15);
//   * EqualChop -- Tofu's DP restricted to chopping each tensor along a single dimension
//     (one non-recursive k-way step);
//   * ICML18 -- the recursive algorithm without output-reduction (case-2) strategies
//     (Jia et al., ICML'18).
// Tofu itself is RecursivePartition (recursive.h).
#ifndef TOFU_PARTITION_BASELINES_H_
#define TOFU_PARTITION_BASELINES_H_

#include "tofu/partition/plan.h"
#include "tofu/partition/recursive.h"

namespace tofu {

PartitionPlan DataParallelPlan(const Graph& graph, int num_workers);

PartitionPlan AllRowGreedyPlan(const Graph& graph, int num_workers);

PartitionPlan SpartanGreedyPlan(const Graph& graph, int num_workers);

PartitionPlan EqualChopPlan(const Graph& graph, int num_workers,
                            const PartitionOptions& options = {});

PartitionPlan Icml18Plan(const Graph& graph, int num_workers,
                         const PartitionOptions& options = {});

}  // namespace tofu

#endif  // TOFU_PARTITION_BASELINES_H_
