#include "tofu/partition/plan_io.h"

#include <cstring>
#include <memory>

#include "tofu/memory/schedule.h"
#include "tofu/pipeline/pipeline_plan.h"
#include "tofu/util/json.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

void WriteIntArray(JsonWriter* w, const std::vector<int>& values) {
  w->BeginArray();
  for (int v : values) {
    w->Int(v);
  }
  w->EndArray();
}

void WriteNumberArray(JsonWriter* w, const std::vector<double>& values) {
  w->BeginArray();
  for (double v : values) {
    w->Number(v);
  }
  w->EndArray();
}

Result<std::vector<int>> ReadIntArray(const JsonValue& obj, const std::string& key) {
  TOFU_ASSIGN_OR_RETURN(const JsonValue* arr, obj.ArrayAt(key));
  std::vector<int> out;
  out.reserve(arr->AsArray().size());
  for (const JsonValue& v : arr->AsArray()) {
    if (v.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': non-numeric element", key.c_str()));
    }
    const double n = v.AsNumber();
    // Range check before the cast: casting an out-of-range double is UB.
    if (!(n >= -2147483648.0 && n <= 2147483647.0) ||
        static_cast<double>(static_cast<int>(n)) != n) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': %g is not an int32", key.c_str(), n));
    }
    out.push_back(static_cast<int>(n));
  }
  return out;
}

Result<std::vector<double>> ReadNumberArray(const JsonValue& obj, const std::string& key) {
  TOFU_ASSIGN_OR_RETURN(const JsonValue* arr, obj.ArrayAt(key));
  std::vector<double> out;
  out.reserve(arr->AsArray().size());
  for (const JsonValue& v : arr->AsArray()) {
    if (v.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': non-numeric element", key.c_str()));
    }
    out.push_back(v.AsNumber());
  }
  return out;
}

// Writes one plan as a JSON object. Pure plans keep the v2 tag (byte-identical to the
// pre-pipeline serialization, which is what pins every existing digest); a plan carrying
// a PipelinePlan writes v3 and appends the "pipeline" section, whose per-stage inner
// plans recurse through this same writer (stage plans are pure, so they nest exactly
// one level deep).
void WritePlanObject(JsonWriter* wp, const PartitionPlan& plan) {
  JsonWriter& w = *wp;
  const char* schema = plan.memory_schedule != nullptr
                           ? kPlanJsonSchemaV4
                           : (plan.pipeline != nullptr ? kPlanJsonSchemaV3
                                                       : kPlanJsonSchema);
  w.BeginObject();
  w.Key("schema").String(schema);
  w.Key("num_workers").Int(plan.num_workers);
  w.Key("step_factors");
  WriteIntArray(&w, plan.step_factors);
  w.Key("total_comm_bytes").Number(plan.total_comm_bytes);
  w.Key("weighted_step_costs");
  WriteNumberArray(&w, plan.weighted_step_costs);
  w.Key("step_seconds");
  WriteNumberArray(&w, plan.step_seconds);
  w.Key("estimated_comm_seconds").Number(plan.estimated_comm_seconds);
  w.Key("memory_budget_bytes").Int(plan.memory_budget_bytes);
  w.Key("memory_feasible").Bool(plan.memory_feasible);
  w.Key("search_stats").BeginObject();
  w.Key("states_explored").Int(plan.search_stats.states_explored);
  w.Key("max_frontier_states").Int(plan.search_stats.max_frontier_states);
  w.Key("cost_table_entries").Int(plan.search_stats.cost_table_entries);
  w.Key("memory_pruned_states").Int(plan.search_stats.memory_pruned_states);
  w.Key("wall_seconds").Number(plan.search_stats.wall_seconds);
  w.Key("exact").Bool(plan.search_stats.exact);
  w.EndObject();
  w.Key("steps").BeginArray();
  for (const BasicPlan& step : plan.steps) {
    w.BeginObject();
    w.Key("ways").Int(step.ways);
    w.Key("comm_bytes").Number(step.comm_bytes);
    w.Key("comm_seconds").Number(step.comm_seconds);
    w.Key("peak_shard_bytes").Number(step.peak_shard_bytes);
    w.Key("tensor_cut");
    WriteIntArray(&w, step.tensor_cut);
    w.Key("op_strategy");
    WriteIntArray(&w, step.op_strategy);
    w.EndObject();
  }
  w.EndArray();
  if (plan.pipeline != nullptr) {
    const PipelinePlan& pipe = *plan.pipeline;
    w.Key("pipeline").BeginObject();
    w.Key("num_stages").Int(pipe.num_stages);
    w.Key("micro_batches").Int(pipe.micro_batches);
    w.Key("bottleneck_seconds").Number(pipe.bottleneck_seconds);
    w.Key("pipeline_seconds").Number(pipe.pipeline_seconds);
    w.Key("comm_seconds").Number(pipe.comm_seconds);
    w.Key("stages").BeginArray();
    for (const PipelineStage& stage : pipe.stages) {
      w.BeginObject();
      w.Key("first_group").Int(stage.first_group);
      w.Key("last_group").Int(stage.last_group);
      w.Key("num_workers").Int(stage.num_workers);
      w.Key("first_worker").Int(stage.first_worker);
      w.Key("fwd_seconds").Number(stage.fwd_seconds);
      w.Key("bwd_seconds").Number(stage.bwd_seconds);
      w.Key("activation_bytes").Number(stage.activation_bytes);
      w.Key("transfer_fwd_seconds").Number(stage.transfer_fwd_seconds);
      w.Key("transfer_bwd_seconds").Number(stage.transfer_bwd_seconds);
      w.Key("peak_bytes").Int(stage.peak_bytes);
      w.Key("all_resident_bytes").Int(stage.all_resident_bytes);
      w.Key("plan");
      WritePlanObject(&w, stage.plan);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  if (plan.memory_schedule != nullptr) {
    const MemorySchedule& sched = *plan.memory_schedule;
    w.Key("memory_schedule").BeginObject();
    w.Key("budget_bytes").Int(sched.budget_bytes);
    w.Key("baseline_peak_bytes").Int(sched.baseline_peak_bytes);
    w.Key("scheduled_peak_bytes").Int(sched.scheduled_peak_bytes);
    w.Key("swap_bytes").Number(sched.swap_bytes);
    w.Key("swap_seconds").Number(sched.swap_seconds);
    w.Key("recompute_seconds").Number(sched.recompute_seconds);
    w.Key("host_bandwidth").Number(sched.host_bandwidth);
    w.Key("decisions").BeginArray();
    for (const MemoryDecision& d : sched.decisions) {
      w.BeginObject();
      w.Key("tensor").Int(d.tensor);
      w.Key("residency").String(ResidencyName(d.residency));
      w.Key("bytes").Number(d.bytes);
      w.Key("overhead_seconds").Number(d.overhead_seconds);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
}

}  // namespace

std::string PlanToJson(const PartitionPlan& plan) {
  JsonWriter w;
  WritePlanObject(&w, plan);
  return w.str();
}

namespace {

Result<PartitionPlan> ParsePlanObject(const JsonValue& doc, int depth) {
  TOFU_ASSIGN_OR_RETURN(std::string schema, doc.StringAt("schema"));
  // v1 plans (searched before memory became a constraint) still load; their memory
  // fields default to "unconstrained". v3 adds the hybrid pipeline section; v4 adds
  // the memory_schedule section (and may also carry a pipeline section).
  const bool v4 = schema == kPlanJsonSchemaV4;
  const bool v3 = v4 || schema == kPlanJsonSchemaV3;
  const bool v2 = v3 || schema == kPlanJsonSchema;
  if (!v2 && schema != kPlanJsonSchemaV1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("unknown plan schema '%s' (want %s, %s, %s or %s)",
                            schema.c_str(), kPlanJsonSchemaV4, kPlanJsonSchemaV3,
                            kPlanJsonSchema, kPlanJsonSchemaV1));
  }
  if (v3 && depth > 0) {
    return Status(StatusCode::kInvalidArgument,
                  "pipeline stage plans must be pure (nested pipeline/memory section)");
  }

  PartitionPlan plan;
  TOFU_ASSIGN_OR_RETURN(std::int64_t workers, doc.IntAt("num_workers"));
  if (workers < 1 || workers > (1 << 30)) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("num_workers %lld out of range", static_cast<long long>(workers)));
  }
  plan.num_workers = static_cast<int>(workers);
  TOFU_ASSIGN_OR_RETURN(plan.step_factors, ReadIntArray(doc, "step_factors"));
  TOFU_ASSIGN_OR_RETURN(plan.total_comm_bytes, doc.NumberAt("total_comm_bytes"));
  TOFU_ASSIGN_OR_RETURN(plan.weighted_step_costs, ReadNumberArray(doc, "weighted_step_costs"));
  TOFU_ASSIGN_OR_RETURN(plan.step_seconds, ReadNumberArray(doc, "step_seconds"));
  TOFU_ASSIGN_OR_RETURN(plan.estimated_comm_seconds, doc.NumberAt("estimated_comm_seconds"));
  if (v2) {
    TOFU_ASSIGN_OR_RETURN(plan.memory_budget_bytes, doc.IntAt("memory_budget_bytes"));
    if (plan.memory_budget_bytes < 0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("memory_budget_bytes %lld is negative",
                              static_cast<long long>(plan.memory_budget_bytes)));
    }
    TOFU_ASSIGN_OR_RETURN(plan.memory_feasible, doc.BoolAt("memory_feasible"));
  }

  TOFU_ASSIGN_OR_RETURN(const JsonValue* stats, doc.ObjectAt("search_stats"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.states_explored, stats->IntAt("states_explored"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.max_frontier_states,
                        stats->IntAt("max_frontier_states"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.cost_table_entries,
                        stats->IntAt("cost_table_entries"));
  if (v2) {
    TOFU_ASSIGN_OR_RETURN(plan.search_stats.memory_pruned_states,
                          stats->IntAt("memory_pruned_states"));
  }
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.wall_seconds, stats->NumberAt("wall_seconds"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.exact, stats->BoolAt("exact"));

  TOFU_ASSIGN_OR_RETURN(const JsonValue* steps, doc.ArrayAt("steps"));
  for (const JsonValue& entry : steps->AsArray()) {
    if (!entry.is_object()) {
      return Status(StatusCode::kInvalidArgument, "plan step is not a JSON object");
    }
    BasicPlan step;
    TOFU_ASSIGN_OR_RETURN(std::int64_t ways, entry.IntAt("ways"));
    if (ways < 2 || ways > (1 << 30)) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step ways %lld out of range", static_cast<long long>(ways)));
    }
    step.ways = static_cast<int>(ways);
    TOFU_ASSIGN_OR_RETURN(step.comm_bytes, entry.NumberAt("comm_bytes"));
    TOFU_ASSIGN_OR_RETURN(step.comm_seconds, entry.NumberAt("comm_seconds"));
    if (v2) {
      TOFU_ASSIGN_OR_RETURN(step.peak_shard_bytes, entry.NumberAt("peak_shard_bytes"));
    }
    TOFU_ASSIGN_OR_RETURN(step.tensor_cut, ReadIntArray(entry, "tensor_cut"));
    TOFU_ASSIGN_OR_RETURN(step.op_strategy, ReadIntArray(entry, "op_strategy"));
    plan.steps.push_back(std::move(step));
  }

  if (plan.steps.size() != plan.step_factors.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_factors", plan.steps.size(),
                            plan.step_factors.size()));
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    if (plan.steps[i].ways != plan.step_factors[i]) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: ways %d != step_factors[%zu] %d", i,
                              plan.steps[i].ways, i, plan.step_factors[i]));
    }
  }
  if (plan.weighted_step_costs.size() != plan.steps.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu weighted_step_costs",
                            plan.steps.size(), plan.weighted_step_costs.size()));
  }
  if (!plan.step_seconds.empty() && plan.step_seconds.size() != plan.steps.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_seconds", plan.steps.size(),
                            plan.step_seconds.size()));
  }

  if ((v3 && !v4) || (v4 && doc.Find("pipeline") != nullptr)) {
    TOFU_ASSIGN_OR_RETURN(const JsonValue* pipe_obj, doc.ObjectAt("pipeline"));
    auto pipe = std::make_shared<PipelinePlan>();
    TOFU_ASSIGN_OR_RETURN(std::int64_t num_stages, pipe_obj->IntAt("num_stages"));
    TOFU_ASSIGN_OR_RETURN(std::int64_t micro_batches, pipe_obj->IntAt("micro_batches"));
    if (num_stages < 1 || num_stages > (1 << 20) || micro_batches < 1 ||
        micro_batches > (1 << 20)) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("pipeline num_stages %lld / micro_batches %lld out of range",
                              static_cast<long long>(num_stages),
                              static_cast<long long>(micro_batches)));
    }
    pipe->num_stages = static_cast<int>(num_stages);
    pipe->micro_batches = static_cast<int>(micro_batches);
    TOFU_ASSIGN_OR_RETURN(pipe->bottleneck_seconds,
                          pipe_obj->NumberAt("bottleneck_seconds"));
    TOFU_ASSIGN_OR_RETURN(pipe->pipeline_seconds, pipe_obj->NumberAt("pipeline_seconds"));
    TOFU_ASSIGN_OR_RETURN(pipe->comm_seconds, pipe_obj->NumberAt("comm_seconds"));
    TOFU_ASSIGN_OR_RETURN(const JsonValue* stages, pipe_obj->ArrayAt("stages"));
    for (const JsonValue& entry : stages->AsArray()) {
      if (!entry.is_object()) {
        return Status(StatusCode::kInvalidArgument,
                      "pipeline stage is not a JSON object");
      }
      PipelineStage stage;
      TOFU_ASSIGN_OR_RETURN(std::int64_t first_group, entry.IntAt("first_group"));
      TOFU_ASSIGN_OR_RETURN(std::int64_t last_group, entry.IntAt("last_group"));
      TOFU_ASSIGN_OR_RETURN(std::int64_t stage_workers, entry.IntAt("num_workers"));
      TOFU_ASSIGN_OR_RETURN(std::int64_t first_worker, entry.IntAt("first_worker"));
      if (first_group < 0 || last_group < first_group || stage_workers < 1 ||
          first_worker < 0 || last_group > (1 << 30) || stage_workers > (1 << 30) ||
          first_worker > (1 << 30)) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("pipeline stage range [%lld, %lld] / workers %lld @ %lld "
                                "out of range",
                                static_cast<long long>(first_group),
                                static_cast<long long>(last_group),
                                static_cast<long long>(stage_workers),
                                static_cast<long long>(first_worker)));
      }
      stage.first_group = static_cast<int>(first_group);
      stage.last_group = static_cast<int>(last_group);
      stage.num_workers = static_cast<int>(stage_workers);
      stage.first_worker = static_cast<int>(first_worker);
      TOFU_ASSIGN_OR_RETURN(stage.fwd_seconds, entry.NumberAt("fwd_seconds"));
      TOFU_ASSIGN_OR_RETURN(stage.bwd_seconds, entry.NumberAt("bwd_seconds"));
      TOFU_ASSIGN_OR_RETURN(stage.activation_bytes, entry.NumberAt("activation_bytes"));
      TOFU_ASSIGN_OR_RETURN(stage.transfer_fwd_seconds,
                            entry.NumberAt("transfer_fwd_seconds"));
      TOFU_ASSIGN_OR_RETURN(stage.transfer_bwd_seconds,
                            entry.NumberAt("transfer_bwd_seconds"));
      TOFU_ASSIGN_OR_RETURN(stage.peak_bytes, entry.IntAt("peak_bytes"));
      TOFU_ASSIGN_OR_RETURN(stage.all_resident_bytes, entry.IntAt("all_resident_bytes"));
      TOFU_ASSIGN_OR_RETURN(const JsonValue* inner, entry.ObjectAt("plan"));
      TOFU_ASSIGN_OR_RETURN(stage.plan, ParsePlanObject(*inner, depth + 1));
      pipe->stages.push_back(std::move(stage));
    }
    if (static_cast<int>(pipe->stages.size()) != pipe->num_stages) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("pipeline claims %d stages but carries %zu",
                              pipe->num_stages, pipe->stages.size()));
    }
    plan.pipeline = std::move(pipe);
  }
  if (v4) {
    TOFU_ASSIGN_OR_RETURN(const JsonValue* sched_obj, doc.ObjectAt("memory_schedule"));
    auto sched = std::make_shared<MemorySchedule>();
    TOFU_ASSIGN_OR_RETURN(sched->budget_bytes, sched_obj->IntAt("budget_bytes"));
    TOFU_ASSIGN_OR_RETURN(sched->baseline_peak_bytes,
                          sched_obj->IntAt("baseline_peak_bytes"));
    TOFU_ASSIGN_OR_RETURN(sched->scheduled_peak_bytes,
                          sched_obj->IntAt("scheduled_peak_bytes"));
    TOFU_ASSIGN_OR_RETURN(sched->swap_bytes, sched_obj->NumberAt("swap_bytes"));
    TOFU_ASSIGN_OR_RETURN(sched->swap_seconds, sched_obj->NumberAt("swap_seconds"));
    TOFU_ASSIGN_OR_RETURN(sched->recompute_seconds,
                          sched_obj->NumberAt("recompute_seconds"));
    TOFU_ASSIGN_OR_RETURN(sched->host_bandwidth, sched_obj->NumberAt("host_bandwidth"));
    TOFU_ASSIGN_OR_RETURN(const JsonValue* decisions, sched_obj->ArrayAt("decisions"));
    for (const JsonValue& entry : decisions->AsArray()) {
      if (!entry.is_object()) {
        return Status(StatusCode::kInvalidArgument,
                      "memory_schedule decision is not a JSON object");
      }
      MemoryDecision d;
      TOFU_ASSIGN_OR_RETURN(std::int64_t tensor, entry.IntAt("tensor"));
      if (tensor < 0 || tensor > (1 << 30)) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("memory_schedule decision tensor %lld out of range",
                                static_cast<long long>(tensor)));
      }
      d.tensor = static_cast<TensorId>(tensor);
      TOFU_ASSIGN_OR_RETURN(std::string residency, entry.StringAt("residency"));
      if (residency == ResidencyName(Residency::kRecompute)) {
        d.residency = Residency::kRecompute;
      } else if (residency == ResidencyName(Residency::kSwap)) {
        d.residency = Residency::kSwap;
      } else if (residency == ResidencyName(Residency::kResident)) {
        d.residency = Residency::kResident;
      } else {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("unknown residency '%s'", residency.c_str()));
      }
      TOFU_ASSIGN_OR_RETURN(d.bytes, entry.NumberAt("bytes"));
      TOFU_ASSIGN_OR_RETURN(d.overhead_seconds, entry.NumberAt("overhead_seconds"));
      sched->decisions.push_back(d);
    }
    plan.memory_schedule = std::move(sched);
  }
  return plan;
}

}  // namespace

Result<PartitionPlan> PlanFromJson(const std::string& json) {
  TOFU_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  if (!doc.is_object()) {
    return Status(StatusCode::kInvalidArgument, "plan document is not a JSON object");
  }
  return ParsePlanObject(doc, 0);
}

Status ValidatePlanForGraph(const Graph& graph, const PartitionPlan& plan) {
  if (plan.num_workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan num_workers %d < 1", plan.num_workers));
  }
  if (plan.memory_schedule != nullptr) {
    for (const MemoryDecision& d : plan.memory_schedule->decisions) {
      if (d.tensor < 0 || d.tensor >= graph.num_tensors()) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("memory_schedule decision names tensor %d but the "
                                "graph has %d tensors",
                                d.tensor, graph.num_tensors()));
      }
    }
  }
  if (plan.pipeline != nullptr) {
    // Hybrid plan: the top level carries no steps of its own; the workers are covered
    // by the stages' contiguous, disjoint ranges and each stage's inner plan must
    // itself validate (it spans the whole graph, with off-stage tensors replicated).
    const PipelinePlan& pipe = *plan.pipeline;
    if (!plan.steps.empty()) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("hybrid plan carries %zu top-level steps; stages own the "
                              "steps",
                              plan.steps.size()));
    }
    if (pipe.stages.empty() || static_cast<int>(pipe.stages.size()) != pipe.num_stages) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("pipeline claims %d stages but carries %zu",
                              pipe.num_stages, pipe.stages.size()));
    }
    if (pipe.micro_batches < 1) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("pipeline micro_batches %d < 1", pipe.micro_batches));
    }
    int next_worker = 0;
    int next_group = 0;
    for (size_t s = 0; s < pipe.stages.size(); ++s) {
      const PipelineStage& stage = pipe.stages[s];
      if (stage.first_worker != next_worker || stage.num_workers < 1) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("stage %zu workers [%d, %d) break contiguous coverage "
                                "(expected start %d)",
                                s, stage.first_worker,
                                stage.first_worker + stage.num_workers, next_worker));
      }
      next_worker += stage.num_workers;
      if (stage.first_group != next_group || stage.last_group < stage.first_group) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("stage %zu groups [%d, %d] break contiguous coverage "
                                "(expected start %d)",
                                s, stage.first_group, stage.last_group, next_group));
      }
      next_group = stage.last_group + 1;
      if (stage.plan.pipeline != nullptr) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("stage %zu inner plan is itself a pipeline", s));
      }
      if (stage.plan.num_workers != stage.num_workers) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("stage %zu inner plan spans %d workers, stage owns %d",
                                s, stage.plan.num_workers, stage.num_workers));
      }
      Status inner = ValidatePlanForGraph(graph, stage.plan);
      if (!inner.ok()) {
        return Status(inner.code(), StrFormat("stage %zu: %s", s,
                                              inner.message().c_str()));
      }
    }
    if (next_worker != plan.num_workers) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("stages cover %d workers, plan claims %d", next_worker,
                              plan.num_workers));
    }
    return Status::Ok();
  }
  if (plan.steps.size() != plan.step_factors.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_factors", plan.steps.size(),
                            plan.step_factors.size()));
  }
  std::int64_t product = 1;
  for (size_t i = 0; i < plan.step_factors.size(); ++i) {
    if (plan.step_factors[i] < 2) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step_factors[%zu] = %d < 2", i, plan.step_factors[i]));
    }
    product *= plan.step_factors[i];
    // Early exit keeps the accumulation far from int64 overflow (factors are bounded by
    // PlanFromJson at 2^30, so one multiply past this cap is still safe).
    if (product > (std::int64_t{1} << 30)) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step factors multiply past 2^30 by step %zu", i));
    }
  }
  // A plan with no steps is only the trivial single-worker plan; anything claiming more
  // workers must factorize them (a truncated file must not replay as "replicate all").
  if (product != plan.num_workers && !(plan.steps.empty() && plan.num_workers == 1)) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("step factors multiply to %lld, not num_workers %d",
                            static_cast<long long>(product), plan.num_workers));
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const BasicPlan& step = plan.steps[i];
    if (step.tensor_cut.size() != static_cast<size_t>(graph.num_tensors())) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: tensor_cut has %zu entries for a graph with %d "
                              "tensors",
                              i, step.tensor_cut.size(), graph.num_tensors()));
    }
    if (step.op_strategy.size() != static_cast<size_t>(graph.num_ops())) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: op_strategy has %zu entries for a graph with %d "
                              "ops",
                              i, step.op_strategy.size(), graph.num_ops()));
    }
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      const int cut = step.tensor_cut[static_cast<size_t>(t)];
      if (cut == kReplicated) {
        continue;
      }
      if (cut < 0 || cut >= graph.tensor(t).rank()) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("step %zu: tensor %d ('%s', rank %d) cut along invalid "
                                "dimension %d",
                                i, t, graph.tensor(t).name.c_str(), graph.tensor(t).rank(),
                                cut));
      }
    }
    for (OpId o = 0; o < graph.num_ops(); ++o) {
      const int sidx = step.op_strategy[static_cast<size_t>(o)];
      if (sidx == kReplicatedExec) {
        continue;
      }
      const OpNode& op = graph.op(o);
      if (!OpRegistry::Get().Has(op.type)) {
        return Status(StatusCode::kNotFound,
                      StrFormat("step %zu: op %d type '%s' has no TDL registry entry", i,
                                o, op.type.c_str()));
      }
      // Bound by the op's discovered strategy list: everything downstream indexes it.
      const int num_strategies = static_cast<int>(graph.SemanticsOf(op).strategies.size());
      if (sidx < 0 || sidx >= num_strategies) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("step %zu: op %d ('%s') strategy index %d outside its %d "
                                "discovered strategies",
                                i, o, op.type.c_str(), sidx, num_strategies));
      }
    }
  }
  return Status::Ok();
}

std::string PlanDigest(const PartitionPlan& plan) {
  PartitionPlan normalized = plan;
  normalized.search_stats.wall_seconds = 0.0;
  const std::string json = PlanToJson(normalized);
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : json) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

}  // namespace tofu
