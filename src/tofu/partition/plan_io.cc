#include "tofu/partition/plan_io.h"

#include <cstring>

#include "tofu/util/json.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

void WriteIntArray(JsonWriter* w, const std::vector<int>& values) {
  w->BeginArray();
  for (int v : values) {
    w->Int(v);
  }
  w->EndArray();
}

void WriteNumberArray(JsonWriter* w, const std::vector<double>& values) {
  w->BeginArray();
  for (double v : values) {
    w->Number(v);
  }
  w->EndArray();
}

Result<std::vector<int>> ReadIntArray(const JsonValue& obj, const std::string& key) {
  TOFU_ASSIGN_OR_RETURN(const JsonValue* arr, obj.ArrayAt(key));
  std::vector<int> out;
  out.reserve(arr->AsArray().size());
  for (const JsonValue& v : arr->AsArray()) {
    if (v.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': non-numeric element", key.c_str()));
    }
    const double n = v.AsNumber();
    // Range check before the cast: casting an out-of-range double is UB.
    if (!(n >= -2147483648.0 && n <= 2147483647.0) ||
        static_cast<double>(static_cast<int>(n)) != n) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': %g is not an int32", key.c_str(), n));
    }
    out.push_back(static_cast<int>(n));
  }
  return out;
}

Result<std::vector<double>> ReadNumberArray(const JsonValue& obj, const std::string& key) {
  TOFU_ASSIGN_OR_RETURN(const JsonValue* arr, obj.ArrayAt(key));
  std::vector<double> out;
  out.reserve(arr->AsArray().size());
  for (const JsonValue& v : arr->AsArray()) {
    if (v.kind() != JsonValue::Kind::kNumber) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("plan field '%s': non-numeric element", key.c_str()));
    }
    out.push_back(v.AsNumber());
  }
  return out;
}

}  // namespace

std::string PlanToJson(const PartitionPlan& plan) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kPlanJsonSchema);
  w.Key("num_workers").Int(plan.num_workers);
  w.Key("step_factors");
  WriteIntArray(&w, plan.step_factors);
  w.Key("total_comm_bytes").Number(plan.total_comm_bytes);
  w.Key("weighted_step_costs");
  WriteNumberArray(&w, plan.weighted_step_costs);
  w.Key("step_seconds");
  WriteNumberArray(&w, plan.step_seconds);
  w.Key("estimated_comm_seconds").Number(plan.estimated_comm_seconds);
  w.Key("memory_budget_bytes").Int(plan.memory_budget_bytes);
  w.Key("memory_feasible").Bool(plan.memory_feasible);
  w.Key("search_stats").BeginObject();
  w.Key("states_explored").Int(plan.search_stats.states_explored);
  w.Key("max_frontier_states").Int(plan.search_stats.max_frontier_states);
  w.Key("cost_table_entries").Int(plan.search_stats.cost_table_entries);
  w.Key("memory_pruned_states").Int(plan.search_stats.memory_pruned_states);
  w.Key("wall_seconds").Number(plan.search_stats.wall_seconds);
  w.Key("exact").Bool(plan.search_stats.exact);
  w.EndObject();
  w.Key("steps").BeginArray();
  for (const BasicPlan& step : plan.steps) {
    w.BeginObject();
    w.Key("ways").Int(step.ways);
    w.Key("comm_bytes").Number(step.comm_bytes);
    w.Key("comm_seconds").Number(step.comm_seconds);
    w.Key("peak_shard_bytes").Number(step.peak_shard_bytes);
    w.Key("tensor_cut");
    WriteIntArray(&w, step.tensor_cut);
    w.Key("op_strategy");
    WriteIntArray(&w, step.op_strategy);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

Result<PartitionPlan> PlanFromJson(const std::string& json) {
  TOFU_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(json));
  if (!doc.is_object()) {
    return Status(StatusCode::kInvalidArgument, "plan document is not a JSON object");
  }
  TOFU_ASSIGN_OR_RETURN(std::string schema, doc.StringAt("schema"));
  // v1 plans (searched before memory became a constraint) still load; their memory
  // fields default to "unconstrained".
  const bool v2 = schema == kPlanJsonSchema;
  if (!v2 && schema != kPlanJsonSchemaV1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("unknown plan schema '%s' (want %s or %s)", schema.c_str(),
                            kPlanJsonSchema, kPlanJsonSchemaV1));
  }

  PartitionPlan plan;
  TOFU_ASSIGN_OR_RETURN(std::int64_t workers, doc.IntAt("num_workers"));
  if (workers < 1 || workers > (1 << 30)) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("num_workers %lld out of range", static_cast<long long>(workers)));
  }
  plan.num_workers = static_cast<int>(workers);
  TOFU_ASSIGN_OR_RETURN(plan.step_factors, ReadIntArray(doc, "step_factors"));
  TOFU_ASSIGN_OR_RETURN(plan.total_comm_bytes, doc.NumberAt("total_comm_bytes"));
  TOFU_ASSIGN_OR_RETURN(plan.weighted_step_costs, ReadNumberArray(doc, "weighted_step_costs"));
  TOFU_ASSIGN_OR_RETURN(plan.step_seconds, ReadNumberArray(doc, "step_seconds"));
  TOFU_ASSIGN_OR_RETURN(plan.estimated_comm_seconds, doc.NumberAt("estimated_comm_seconds"));
  if (v2) {
    TOFU_ASSIGN_OR_RETURN(plan.memory_budget_bytes, doc.IntAt("memory_budget_bytes"));
    if (plan.memory_budget_bytes < 0) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("memory_budget_bytes %lld is negative",
                              static_cast<long long>(plan.memory_budget_bytes)));
    }
    TOFU_ASSIGN_OR_RETURN(plan.memory_feasible, doc.BoolAt("memory_feasible"));
  }

  TOFU_ASSIGN_OR_RETURN(const JsonValue* stats, doc.ObjectAt("search_stats"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.states_explored, stats->IntAt("states_explored"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.max_frontier_states,
                        stats->IntAt("max_frontier_states"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.cost_table_entries,
                        stats->IntAt("cost_table_entries"));
  if (v2) {
    TOFU_ASSIGN_OR_RETURN(plan.search_stats.memory_pruned_states,
                          stats->IntAt("memory_pruned_states"));
  }
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.wall_seconds, stats->NumberAt("wall_seconds"));
  TOFU_ASSIGN_OR_RETURN(plan.search_stats.exact, stats->BoolAt("exact"));

  TOFU_ASSIGN_OR_RETURN(const JsonValue* steps, doc.ArrayAt("steps"));
  for (const JsonValue& entry : steps->AsArray()) {
    if (!entry.is_object()) {
      return Status(StatusCode::kInvalidArgument, "plan step is not a JSON object");
    }
    BasicPlan step;
    TOFU_ASSIGN_OR_RETURN(std::int64_t ways, entry.IntAt("ways"));
    if (ways < 2 || ways > (1 << 30)) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step ways %lld out of range", static_cast<long long>(ways)));
    }
    step.ways = static_cast<int>(ways);
    TOFU_ASSIGN_OR_RETURN(step.comm_bytes, entry.NumberAt("comm_bytes"));
    TOFU_ASSIGN_OR_RETURN(step.comm_seconds, entry.NumberAt("comm_seconds"));
    if (v2) {
      TOFU_ASSIGN_OR_RETURN(step.peak_shard_bytes, entry.NumberAt("peak_shard_bytes"));
    }
    TOFU_ASSIGN_OR_RETURN(step.tensor_cut, ReadIntArray(entry, "tensor_cut"));
    TOFU_ASSIGN_OR_RETURN(step.op_strategy, ReadIntArray(entry, "op_strategy"));
    plan.steps.push_back(std::move(step));
  }

  if (plan.steps.size() != plan.step_factors.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_factors", plan.steps.size(),
                            plan.step_factors.size()));
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    if (plan.steps[i].ways != plan.step_factors[i]) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: ways %d != step_factors[%zu] %d", i,
                              plan.steps[i].ways, i, plan.step_factors[i]));
    }
  }
  if (plan.weighted_step_costs.size() != plan.steps.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu weighted_step_costs",
                            plan.steps.size(), plan.weighted_step_costs.size()));
  }
  if (!plan.step_seconds.empty() && plan.step_seconds.size() != plan.steps.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_seconds", plan.steps.size(),
                            plan.step_seconds.size()));
  }
  return plan;
}

Status ValidatePlanForGraph(const Graph& graph, const PartitionPlan& plan) {
  if (plan.num_workers < 1) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan num_workers %d < 1", plan.num_workers));
  }
  if (plan.steps.size() != plan.step_factors.size()) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("plan has %zu steps but %zu step_factors", plan.steps.size(),
                            plan.step_factors.size()));
  }
  std::int64_t product = 1;
  for (size_t i = 0; i < plan.step_factors.size(); ++i) {
    if (plan.step_factors[i] < 2) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step_factors[%zu] = %d < 2", i, plan.step_factors[i]));
    }
    product *= plan.step_factors[i];
    // Early exit keeps the accumulation far from int64 overflow (factors are bounded by
    // PlanFromJson at 2^30, so one multiply past this cap is still safe).
    if (product > (std::int64_t{1} << 30)) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step factors multiply past 2^30 by step %zu", i));
    }
  }
  // A plan with no steps is only the trivial single-worker plan; anything claiming more
  // workers must factorize them (a truncated file must not replay as "replicate all").
  if (product != plan.num_workers && !(plan.steps.empty() && plan.num_workers == 1)) {
    return Status(StatusCode::kInvalidArgument,
                  StrFormat("step factors multiply to %lld, not num_workers %d",
                            static_cast<long long>(product), plan.num_workers));
  }
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const BasicPlan& step = plan.steps[i];
    if (step.tensor_cut.size() != static_cast<size_t>(graph.num_tensors())) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: tensor_cut has %zu entries for a graph with %d "
                              "tensors",
                              i, step.tensor_cut.size(), graph.num_tensors()));
    }
    if (step.op_strategy.size() != static_cast<size_t>(graph.num_ops())) {
      return Status(StatusCode::kInvalidArgument,
                    StrFormat("step %zu: op_strategy has %zu entries for a graph with %d "
                              "ops",
                              i, step.op_strategy.size(), graph.num_ops()));
    }
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      const int cut = step.tensor_cut[static_cast<size_t>(t)];
      if (cut == kReplicated) {
        continue;
      }
      if (cut < 0 || cut >= graph.tensor(t).rank()) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("step %zu: tensor %d ('%s', rank %d) cut along invalid "
                                "dimension %d",
                                i, t, graph.tensor(t).name.c_str(), graph.tensor(t).rank(),
                                cut));
      }
    }
    for (OpId o = 0; o < graph.num_ops(); ++o) {
      const int sidx = step.op_strategy[static_cast<size_t>(o)];
      if (sidx == kReplicatedExec) {
        continue;
      }
      const OpNode& op = graph.op(o);
      if (!OpRegistry::Get().Has(op.type)) {
        return Status(StatusCode::kNotFound,
                      StrFormat("step %zu: op %d type '%s' has no TDL registry entry", i,
                                o, op.type.c_str()));
      }
      // Bound by the op's discovered strategy list: everything downstream indexes it.
      const int num_strategies = static_cast<int>(graph.SemanticsOf(op).strategies.size());
      if (sidx < 0 || sidx >= num_strategies) {
        return Status(StatusCode::kInvalidArgument,
                      StrFormat("step %zu: op %d ('%s') strategy index %d outside its %d "
                                "discovered strategies",
                                i, o, op.type.c_str(), sidx, num_strategies));
      }
    }
  }
  return Status::Ok();
}

std::string PlanDigest(const PartitionPlan& plan) {
  PartitionPlan normalized = plan;
  normalized.search_stats.wall_seconds = 0.0;
  const std::string json = PlanToJson(normalized);
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : json) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return StrFormat("%016llx", static_cast<unsigned long long>(h));
}

}  // namespace tofu
