// Shared frontier-DP search engine behind RunStepDp and RunFlatDp.
//
// Both searches have the same skeleton: walk macro groups in program order keeping a
// frontier of "live" slots (slots touched by both processed and unprocessed groups);
// a DP state assigns every frontier slot one of a small set of options (a storage cut
// for the per-step DP, a full multi-step tiling for the flat DP); entering slots branch
// every state on their options, each group charges a cost that depends only on its
// touched slots' options, and leaving slots are projected out keeping the cheapest
// state per residue.
//
// The engine owns that skeleton once, with two representation choices that make it fast:
//   * states are packed integer keys -- each live slot contributes ceil(log2(#options))
//     bits, concatenated in frontier order into fixed-width uint64_t words interned in a
//     flat arena (no per-state heap strings, no hashing on the charge path);
//   * in table mode, each group's cost becomes one dense table precomputed per group
//     (one evaluation per combination of its touched slots' options); charging a state
//     is a shift/mask field extraction plus one array load.
//
// Charging and key construction can optionally be sharded across a small thread pool
// (SearchEngineOptions::num_threads). Sharding is deterministic: results are assembled
// in state-index order, so any thread count yields byte-identical plans.
#ifndef TOFU_PARTITION_SEARCH_ENGINE_H_
#define TOFU_PARTITION_SEARCH_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tofu/partition/search_stats.h"

namespace tofu {

// Engine-facing shape of one search: per-slot option counts and, per group in
// processing order, the sorted unique slots whose options the group's cost reads.
struct SearchSpace {
  std::vector<int> slot_num_options;          // per slot; every entry >= 1
  std::vector<std::vector<int>> group_slots;  // per group: sorted, unique slot indices
  // Optional memory model: slot_option_bytes[s][o] is the resident bytes one worker
  // group keeps when slot s takes option o. Empty disables byte tracking; when present
  // the outer size must match slot_num_options and each inner size the slot's count.
  // Byte totals are separable per slot, which is what makes admissible pruning cheap:
  // a state's lower bound is its accumulated bytes plus every undecided slot's cheapest
  // option.
  std::vector<std::vector<double>> slot_option_bytes;
};

struct SearchEngineOptions {
  // Safety cap on simultaneous DP states (frontier blow-up on non-chain graphs). When
  // exceeded the search degrades to a beam keeping the cheapest quarter of the cap;
  // SearchStats::exact turns false.
  std::int64_t max_states = 1 << 22;
  // Threads for state expansion (branch/charge/project sharding). 1 = serial. Cost
  // callbacks are never called concurrently regardless of this setting.
  int num_threads = 1;
  // Per-worker-group resident-byte budget. > 0 (together with a populated
  // SearchSpace::slot_option_bytes) turns on memory-constrained search: states whose
  // byte lower bound exceeds the budget are pruned at branch time, equal-cost merges
  // and the final argmin prefer lighter states, and Result::feasible reports whether
  // any assignment fits at all. <= 0 keeps the search bit-identical to the
  // unconstrained engine (no byte tracking, original tie-breaks).
  double memory_budget = 0.0;
};

class SearchEngine {
 public:
  // Table mode: called once per combination of group `g`'s touched-slot options while
  // precomputing the group's cost table. `options[i]` is the option index of
  // SearchSpace::group_slots[g][i].
  using GroupCostFn = std::function<double(int group, const int* options)>;

  // Streamed mode: called once per (group, state) -- preserving searches whose measured
  // cost is intentionally per-state, like the flat DP's joint enumeration. Returns
  // false to abort the whole search (deadline exceeded).
  using StateCostFn = std::function<bool(int group, const int* options, double* cost)>;

  struct Result {
    bool completed = true;          // false only when a streamed search aborted
    // False when a memory budget excluded every assignment (the lightest possible
    // choice per slot already overflows); slot_option is then all zeros and no cost
    // callback ran. Always true without a budget.
    bool feasible = true;
    double best_cost = 0.0;
    // Chosen option index per slot; slots no group touches default to option 0.
    std::vector<int> slot_option;
    // Byte-tracking results (0 without a budget): the chosen assignment's resident
    // bytes, and the lower bound over ALL assignments (sum of each slot's cheapest
    // option) -- what an infeasible search proves cannot be beaten.
    double best_bytes = 0.0;
    double min_possible_bytes = 0.0;
    SearchStats stats;
  };

  SearchEngine(SearchSpace space, SearchEngineOptions options);
  ~SearchEngine();

  Result Run(const GroupCostFn& cost_fn);
  Result RunStreamed(const StateCostFn& cost_fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tofu

#endif  // TOFU_PARTITION_SEARCH_ENGINE_H_
