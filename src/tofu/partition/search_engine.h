// Shared frontier-DP search engine behind RunStepDp and RunFlatDp.
//
// Both searches have the same skeleton: walk macro groups in program order keeping a
// frontier of "live" slots (slots touched by both processed and unprocessed groups);
// a DP state assigns every frontier slot one of a small set of options (a storage cut
// for the per-step DP, a full multi-step tiling for the flat DP); entering slots branch
// every state on their options, each group charges a cost that depends only on its
// touched slots' options, and leaving slots are projected out keeping the cheapest
// state per residue.
//
// The engine owns that skeleton once, with two representation choices that make it fast:
//   * states are packed integer keys -- each live slot contributes ceil(log2(#options))
//     bits, concatenated in frontier order into fixed-width uint64_t words interned in a
//     flat arena (no per-state heap strings, no hashing on the charge path);
//   * in table mode, each group's cost becomes one dense table precomputed per group
//     (one evaluation per combination of its touched slots' options); charging a state
//     is a shift/mask field extraction plus one array load.
//
// Charging and key construction can optionally be sharded across a small thread pool
// (SearchEngineOptions::num_threads, 0 = auto-size from hardware_concurrency). Sharding
// is deterministic: results are assembled in state-index order, so any thread count
// yields byte-identical plans.
//
// Unbudgeted table-mode searches additionally take a DENSE LATTICE fast path: without
// budget pruning the frontier is exactly the cross product of the live slots' options,
// so the engine drops the packed keys entirely and keeps one flat cost array whose axes
// are the live slots in branch order (newest axis fastest). Branching is a contiguous
// broadcast, charging is a table gather plus a contiguous vector add the compiler
// auto-vectorizes, and projection is a strict-less min-reduce along one axis -- all
// provably bit-identical to the sparse path (same accumulation order, same tie-breaks;
// docs/search.md, "Big-graph, many-worker search"). The same path hoists every group's
// cost-table fill up front, which enables dominated-option pruning and table reuse
// across searches (GroupCostTables below).
#ifndef TOFU_PARTITION_SEARCH_ENGINE_H_
#define TOFU_PARTITION_SEARCH_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "tofu/partition/search_stats.h"

namespace tofu {

// Engine-facing shape of one search: per-slot option counts and, per group in
// processing order, the sorted unique slots whose options the group's cost reads.
struct SearchSpace {
  std::vector<int> slot_num_options;          // per slot; every entry >= 1
  std::vector<std::vector<int>> group_slots;  // per group: sorted, unique slot indices
  // Optional memory model: slot_option_bytes[s][o] is the resident bytes one worker
  // group keeps when slot s takes option o. Empty disables byte tracking; when present
  // the outer size must match slot_num_options and each inner size the slot's count.
  // Byte totals are separable per slot, which is what makes admissible pruning cheap:
  // a state's lower bound is its accumulated bytes plus every undecided slot's cheapest
  // option.
  std::vector<std::vector<double>> slot_option_bytes;
};

// Per-group dense cost tables of one table-mode search, shareable across searches of
// the same space (the values depend only on the group cost function, never on budgets,
// bandwidths, or thread counts). groups[g] is null for groups that charged through the
// per-state memo (or were never reached); non-null entries hold exactly the group's
// mixed-radix cell values in the engine's canonical enumeration order. Immutable once
// published -- safe to share across threads and cache entries.
struct GroupCostTables {
  std::vector<std::shared_ptr<const std::vector<double>>> groups;
};

struct SearchEngineOptions {
  // Safety cap on simultaneous DP states (frontier blow-up on non-chain graphs). When
  // exceeded the search degrades to a beam keeping the cheapest quarter of the cap;
  // SearchStats::exact turns false.
  std::int64_t max_states = 1 << 22;
  // Threads for state expansion (branch/charge/project sharding). 0 (the default)
  // auto-sizes from std::thread::hardware_concurrency(); 1 = serial. Any value yields
  // byte-identical results. Cost callbacks are never called concurrently regardless of
  // this setting.
  int num_threads = 0;
  // Dominated-option pruning (dense-lattice searches only): after the hoisted table
  // fills, option o of slot s is dropped when some option o' < o is pointwise no more
  // expensive in EVERY group table touching s and (when slot_option_bytes is present)
  // no heavier. Every frontier state using o is then beaten by its o'-sibling on both
  // cost and bytes under every completion, so pruning provably never changes the
  // returned plan, including ties (o' < o keeps the canonical lowest-index winner).
  // Pruned states are counted in SearchStats::dominated_pruned_states; table fills
  // still run in full first, so states_explored / cost_table_entries are unchanged.
  bool prune_dominated = true;
  // Optional tables from a previous search of the same space (incremental
  // re-planning). A group's table is imported instead of refilled when the group is
  // charged in table mode and the cell count matches; imported cells are counted in
  // SearchStats::reused_table_entries (and still in states_explored, so results are
  // byte-identical to a cold search).
  std::shared_ptr<const GroupCostTables> reuse_tables;
  // Per-worker-group resident-byte budget. > 0 (together with a populated
  // SearchSpace::slot_option_bytes) turns on memory-constrained search: states whose
  // byte lower bound exceeds the budget are pruned at branch time, equal-cost merges
  // and the final argmin prefer lighter states, and Result::feasible reports whether
  // any assignment fits at all. <= 0 keeps the search bit-identical to the
  // unconstrained engine (no byte tracking, original tie-breaks).
  double memory_budget = 0.0;
};

class SearchEngine {
 public:
  // Table mode: called once per combination of group `g`'s touched-slot options while
  // precomputing the group's cost table. `options[i]` is the option index of
  // SearchSpace::group_slots[g][i].
  using GroupCostFn = std::function<double(int group, const int* options)>;

  // Streamed mode: called once per (group, state) -- preserving searches whose measured
  // cost is intentionally per-state, like the flat DP's joint enumeration. Returns
  // false to abort the whole search (deadline exceeded).
  using StateCostFn = std::function<bool(int group, const int* options, double* cost)>;

  // Optional bulk table fill: writes group `g`'s whole dense cost table (`num_cells`
  // doubles) in the engine's canonical mixed-radix enumeration order -- combination
  // (o_0,...,o_{k-1}) of SearchSpace::group_slots[g] at index sum(o_i * stride_i),
  // last touched slot fastest (stride 1). MUST produce exactly the values cell-by-cell
  // calls of the GroupCostFn would; it exists purely so a caller can hoist per-cell
  // dispatch out of the hottest loop of the search (one function call per table
  // instead of one per cell). The engine still uses the GroupCostFn for memo-charged
  // groups.
  using GroupFillFn = std::function<void(int group, double* cells, std::int64_t num_cells)>;

  struct Result {
    bool completed = true;          // false only when a streamed search aborted
    // False when a memory budget excluded every assignment (the lightest possible
    // choice per slot already overflows); slot_option is then all zeros and no cost
    // callback ran. Always true without a budget.
    bool feasible = true;
    double best_cost = 0.0;
    // Chosen option index per slot; slots no group touches default to option 0.
    std::vector<int> slot_option;
    // Byte-tracking results (0 without a budget): the chosen assignment's resident
    // bytes, and the lower bound over ALL assignments (sum of each slot's cheapest
    // option) -- what an infeasible search proves cannot be beaten.
    double best_bytes = 0.0;
    double min_possible_bytes = 0.0;
    // Every dense cost table this search consumed (filled or imported); null in
    // streamed mode. What a step-table cache stores for the next search of this space.
    std::shared_ptr<const GroupCostTables> tables;
    SearchStats stats;
  };

  SearchEngine(SearchSpace space, SearchEngineOptions options);
  ~SearchEngine();

  Result Run(const GroupCostFn& cost_fn);
  // As Run, with bulk table fills delegated to `fill_fn` (see GroupFillFn's contract).
  Result Run(const GroupCostFn& cost_fn, const GroupFillFn& fill_fn);
  Result RunStreamed(const StateCostFn& cost_fn);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace tofu

#endif  // TOFU_PARTITION_SEARCH_ENGINE_H_
