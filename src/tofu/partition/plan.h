// Partition plan types: the output of every search algorithm and the input to lowering,
// reporting, and simulation.
//
// A plan is a sequence of *basic* steps (paper §5.2 / appendix A.1): step i splits every
// tensor along at most one dimension into `ways` parts across `ways` worker groups. The
// composition of all steps gives each tensor's final tiling (e.g. batch:2 x channel:4 over
// 8 workers) and each operator's per-step partition-n-reduce strategy.
#ifndef TOFU_PARTITION_PLAN_H_
#define TOFU_PARTITION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/partition/search_stats.h"

namespace tofu {

// Defined in pipeline/pipeline_plan.h. A PartitionPlan optionally carries one (hybrid
// pipeline x Tofu plans); pure plans leave it null and serialize unchanged.
struct PipelinePlan;

// Cut value for a tensor that is stored replicated at a step (small tensors and rank-0
// scalars only; every substantial tensor is partitioned, as in the paper).
inline constexpr int kReplicated = -1;

// Strategy index meaning "replicated execution": every worker in the group runs the whole
// operator (used when no partition-n-reduce strategy applies, e.g. scalar ops).
inline constexpr int kReplicatedExec = -1;

// One recursive step: for `ways` worker groups, each tensor's storage cut (dimension index
// or kReplicated) and each operator's strategy (index into the op's discovered strategy
// list, or kReplicatedExec).
struct BasicPlan {
  int ways = 2;
  std::vector<int> tensor_cut;   // indexed by TensorId
  std::vector<int> op_strategy;  // indexed by OpId
  // Communication bytes this step incurs *within one worker group* of the previous level.
  double comm_bytes = 0.0;
  // comm_bytes over the bandwidth of the link this step crosses (DpOptions::
  // link_bandwidth); 0 when the step was searched without a topology.
  double comm_seconds = 0.0;
  // Resident bytes ONE worker group of this step stores under the chosen cuts (every
  // tensor's shard at this step's granularity, summed). The last step's figure is the
  // per-worker all-resident bound the memory-constrained search enforces.
  double peak_shard_bytes = 0.0;
};

struct PartitionPlan {
  int num_workers = 1;
  std::vector<int> step_factors;  // k = k1 * k2 * ... * km, ki non-increasing
  std::vector<BasicPlan> steps;

  // Total plan cost: sum_i (#groups at step i) * steps[i].comm_bytes (appendix Eq. 3).
  double total_comm_bytes = 0.0;
  // Per-step weighted costs (#groups * step cost), for Theorem-2 monotonicity checks.
  std::vector<double> weighted_step_costs;
  // Topology-weighted estimates: weighted_step_costs[i] divided by the bandwidth of the
  // link step i crosses (PartitionOptions::step_bandwidths). Empty / 0 when the plan was
  // searched without a topology.
  std::vector<double> step_seconds;
  double estimated_comm_seconds = 0.0;
  // Aggregate search effort across all steps (zero for greedy baselines that run no
  // DP); lets benchmarks and tests assert on how hard the search worked, not just on
  // what it found.
  SearchStats search_stats;
  // Per-worker resident-byte budget the plan was searched under (0 = unconstrained).
  std::int64_t memory_budget_bytes = 0;
  // False when the search could not satisfy memory_budget_bytes under its all-resident
  // model at any searched configuration; the plan is then the lightest one found (best
  // effort). The session's authoritative verdict uses the liveness-aware peak, which
  // can still fit -- see LivenessPeakShardBytes below.
  bool memory_feasible = true;
  // Hybrid pipeline decomposition (kHybrid only; null for every pure plan). When set,
  // `steps` is empty and the per-stage inner plans live in the stages; plan_io writes
  // the tofu.plan.v3 schema. Shared, immutable: plans are copied around by the session
  // cache and the stages can be large.
  std::shared_ptr<const PipelinePlan> pipeline;

  // Per-dimension split factors of a tensor after all steps (product over steps).
  std::vector<int> TensorSplits(const Graph& graph, TensorId t) const;
  // The shard shape one worker stores (ceil division).
  Shape ShardShape(const Graph& graph, TensorId t) const;
  // Shard bytes for one worker.
  std::int64_t ShardBytes(const Graph& graph, TensorId t) const;
  // Human-readable tiling, e.g. "d0:2 d2:4" or "replicated".
  std::string DescribeTiling(const Graph& graph, TensorId t) const;
};

// Factorizes the worker count into non-increasing factors (prime factorization, largest
// first), per §5.2's handling of non-power-of-two device counts.
std::vector<int> FactorizeWorkers(int num_workers);

// Bytes one worker group stores for a tensor of (current-step) `shape` under one
// storage cut at split factor `ways`: ceil-divided along the cut dimension, whole
// otherwise -- the same rounding StepContext::ApplyBasicPlan uses, so per-step figures
// compose exactly with the shapes the next step sees. `cut` may be kReplicated.
double ShardBytesForCut(const Shape& shape, int elem_size, int cut, int ways);

// Per-worker residency upper bound: every tensor's final shard resident at once, no
// liveness or buffer-reuse credit. Schedule-independent, hence conservative.
std::int64_t AllResidentShardBytes(const Graph& graph, const PartitionPlan& plan);

// Liveness-aware per-worker peak, the figure the event simulator's memory planner
// reports for a program-order schedule: model state (inputs, weights, optimizer
// history -- every producer-less tensor) stays resident for the whole iteration, a
// produced tensor's buffer is allocated when its producer runs and freed after its last
// consumer, and in-place outputs (OpNode::inplace_input) extend their input's buffer
// instead of allocating a new one. Always <= AllResidentShardBytes; this is what the
// session's budget check and feasibility verdict use.
std::int64_t LivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan);

}  // namespace tofu

#endif  // TOFU_PARTITION_PLAN_H_
