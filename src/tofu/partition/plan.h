// Partition plan types: the output of every search algorithm and the input to lowering,
// reporting, and simulation.
//
// A plan is a sequence of *basic* steps (paper §5.2 / appendix A.1): step i splits every
// tensor along at most one dimension into `ways` parts across `ways` worker groups. The
// composition of all steps gives each tensor's final tiling (e.g. batch:2 x channel:4 over
// 8 workers) and each operator's per-step partition-n-reduce strategy.
#ifndef TOFU_PARTITION_PLAN_H_
#define TOFU_PARTITION_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/partition/search_stats.h"

namespace tofu {

// Defined in pipeline/pipeline_plan.h. A PartitionPlan optionally carries one (hybrid
// pipeline x Tofu plans); pure plans leave it null and serialize unchanged.
struct PipelinePlan;

// Defined in memory/schedule.h. A PartitionPlan optionally carries one (per-tensor
// residency decisions: resident / recompute / host-swap, with priced overhead) when
// the memory repair pass had to trade time for memory; plans that fit their budget
// outright leave it null and serialize unchanged.
struct MemorySchedule;

// Cut value for a tensor that is stored replicated at a step (small tensors and rank-0
// scalars only; every substantial tensor is partitioned, as in the paper).
inline constexpr int kReplicated = -1;

// Strategy index meaning "replicated execution": every worker in the group runs the whole
// operator (used when no partition-n-reduce strategy applies, e.g. scalar ops).
inline constexpr int kReplicatedExec = -1;

// One recursive step: for `ways` worker groups, each tensor's storage cut (dimension index
// or kReplicated) and each operator's strategy (index into the op's discovered strategy
// list, or kReplicatedExec).
struct BasicPlan {
  int ways = 2;
  std::vector<int> tensor_cut;   // indexed by TensorId
  std::vector<int> op_strategy;  // indexed by OpId
  // Communication bytes this step incurs *within one worker group* of the previous level.
  double comm_bytes = 0.0;
  // comm_bytes over the bandwidth of the link this step crosses (DpOptions::
  // link_bandwidth); 0 when the step was searched without a topology.
  double comm_seconds = 0.0;
  // Resident bytes ONE worker group of this step stores under the chosen cuts (every
  // tensor's shard at this step's granularity, summed). The last step's figure is the
  // per-worker all-resident bound the memory-constrained search enforces.
  double peak_shard_bytes = 0.0;
};

struct PartitionPlan {
  int num_workers = 1;
  std::vector<int> step_factors;  // k = k1 * k2 * ... * km, ki non-increasing
  std::vector<BasicPlan> steps;

  // Total plan cost: sum_i (#groups at step i) * steps[i].comm_bytes (appendix Eq. 3).
  double total_comm_bytes = 0.0;
  // Per-step weighted costs (#groups * step cost), for Theorem-2 monotonicity checks.
  std::vector<double> weighted_step_costs;
  // Topology-weighted estimates: weighted_step_costs[i] divided by the bandwidth of the
  // link step i crosses (PartitionOptions::step_bandwidths). Empty / 0 when the plan was
  // searched without a topology.
  std::vector<double> step_seconds;
  double estimated_comm_seconds = 0.0;
  // Aggregate search effort across all steps (zero for greedy baselines that run no
  // DP); lets benchmarks and tests assert on how hard the search worked, not just on
  // what it found.
  SearchStats search_stats;
  // Per-worker resident-byte budget the plan was searched under (0 = unconstrained).
  std::int64_t memory_budget_bytes = 0;
  // False when the search could not satisfy memory_budget_bytes under its all-resident
  // model at any searched configuration; the plan is then the lightest one found (best
  // effort). The session's authoritative verdict uses the liveness-aware peak, which
  // can still fit -- see LivenessPeakShardBytes in memory/liveness.h.
  bool memory_feasible = true;
  // Hybrid pipeline decomposition (kHybrid only; null for every pure plan). When set,
  // `steps` is empty and the per-stage inner plans live in the stages; plan_io writes
  // the tofu.plan.v3 schema. Shared, immutable: plans are copied around by the session
  // cache and the stages can be large.
  std::shared_ptr<const PipelinePlan> pipeline;
  // Memory residency schedule attached by the repair pass (memory/repair.h) when the
  // budget was infeasible under full residency: which buffers to recompute or host-swap
  // and at what priced overhead. Null for plans that fit outright; when set, plan_io
  // writes the tofu.plan.v4 schema and the session's budget verdict uses the schedule's
  // reduced peak. Shared, immutable, like `pipeline`.
  std::shared_ptr<const MemorySchedule> memory_schedule;

  // Per-dimension split factors of a tensor after all steps (product over steps).
  std::vector<int> TensorSplits(const Graph& graph, TensorId t) const;
  // The shard shape one worker stores (ceil division).
  Shape ShardShape(const Graph& graph, TensorId t) const;
  // Shard bytes for one worker.
  std::int64_t ShardBytes(const Graph& graph, TensorId t) const;
  // Human-readable tiling, e.g. "d0:2 d2:4" or "replicated".
  std::string DescribeTiling(const Graph& graph, TensorId t) const;
};

// Factorizes the worker count into non-increasing factors (prime factorization, largest
// first), per §5.2's handling of non-power-of-two device counts.
std::vector<int> FactorizeWorkers(int num_workers);

// Shard-byte accounting (ShardBytesForCut and friends) lives in memory/bytes.h; the
// liveness peak and the all-resident bound (AllResidentShardBytes,
// LivenessPeakShardBytes) live in memory/liveness.h behind the MemoryModel interface.

}  // namespace tofu

#endif  // TOFU_PARTITION_PLAN_H_
