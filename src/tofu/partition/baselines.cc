#include "tofu/partition/baselines.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "tofu/partition/group_config.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

// First dimension with extent >= ways, else the largest dimension, else replicated.
int FirstDimCut(const Shape& shape, int ways) {
  for (size_t d = 0; d < shape.size(); ++d) {
    if (shape[d] >= ways) {
      return static_cast<int>(d);
    }
  }
  return kReplicated;
}

// Builds a multi-step plan from a per-step cut assignment callback.
template <typename CutFn>
PartitionPlan BuildStepwisePlan(const Graph& graph, int num_workers, CutFn&& assign_cuts) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  if (num_workers <= 1) {
    return plan;
  }
  plan.step_factors = FactorizeWorkers(num_workers);
  std::vector<Shape> shapes = StepContext::InitialShapes(graph);
  double groups = 1.0;
  for (int factor : plan.step_factors) {
    StepContext ctx(graph, shapes, factor);
    BasicPlan step;
    step.ways = factor;
    step.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
    assign_cuts(&ctx, &step);
    AssignGreedyOpStrategies(&ctx, &step);
    const double weighted = groups * step.comm_bytes;
    plan.weighted_step_costs.push_back(weighted);
    plan.total_comm_bytes += weighted;
    shapes = StepContext::ApplyBasicPlan(graph, shapes, step);
    plan.steps.push_back(std::move(step));
    groups *= static_cast<double>(factor);
  }
  return plan;
}

}  // namespace

PartitionPlan DataParallelPlan(const Graph& graph, int num_workers) {
  // Weight-gradient traffic: the final parameter gradients (grad_of links) plus every
  // partial contribution feeding them through gradient-aggregation adds (an unrolled
  // RNN's per-timestep weight gradients). Aggregation outputs have larger ids than their
  // inputs, so one reverse-id pass sees each consumer's output before its inputs.
  std::vector<bool> weight_grad(static_cast<size_t>(graph.num_tensors()), false);
  for (TensorId t = graph.num_tensors() - 1; t >= 0; --t) {
    const TensorNode& node = graph.tensor(t);
    if (node.grad_of != kNoTensor && graph.tensor(node.grad_of).is_param) {
      weight_grad[static_cast<size_t>(t)] = true;
      continue;
    }
    for (OpId c : node.consumers) {
      const OpNode& op = graph.op(c);
      if (op.is_grad_agg && weight_grad[static_cast<size_t>(op.output)]) {
        weight_grad[static_cast<size_t>(t)] = true;
        break;
      }
    }
  }

  return BuildStepwisePlan(graph, num_workers, [&](StepContext* ctx, BasicPlan* step) {
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      const TensorNode& node = graph.tensor(t);
      // Model state stays replicated on every worker: weights, optimizer history, weight
      // gradients (the all-reduce their producers' case-2 strategies charge), and the
      // updated weight/history tensors the optimizer ops emit.
      const bool model_state =
          node.is_param || node.is_opt_state || weight_grad[static_cast<size_t>(t)] ||
          (node.producer != kNoOp && graph.op(node.producer).is_update);
      if (model_state) {
        continue;
      }
      const Shape& shape = ctx->shape(t);
      if (!shape.empty() && shape[0] >= step->ways) {
        step->tensor_cut[static_cast<size_t>(t)] = 0;  // the batch dimension
      }
    }
  });
}

PartitionPlan AllRowGreedyPlan(const Graph& graph, int num_workers) {
  return BuildStepwisePlan(graph, num_workers, [&](StepContext* ctx, BasicPlan* step) {
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      step->tensor_cut[static_cast<size_t>(t)] = FirstDimCut(ctx->shape(t), step->ways);
    }
  });
}

PartitionPlan SpartanGreedyPlan(const Graph& graph, int num_workers) {
  return BuildStepwisePlan(graph, num_workers, [&](StepContext* ctx, BasicPlan* step) {
    // Initialize with first-dimension cuts, then refine tensors largest-first: each tensor
    // takes the cut minimizing the summed cost of its incident operators against the
    // current assignment (Spartan's smart-tiling greedy, adapted to partition-n-reduce).
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      step->tensor_cut[static_cast<size_t>(t)] = FirstDimCut(ctx->shape(t), step->ways);
    }
    std::vector<TensorId> order(static_cast<size_t>(graph.num_tensors()));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](TensorId a, TensorId b) {
      return ctx->bytes(a) > ctx->bytes(b);
    });

    auto incident_cost = [&](TensorId t) {
      double total = 0.0;
      auto op_cost = [&](OpId op) {
        double best = std::numeric_limits<double>::infinity();
        const int n = static_cast<int>(ctx->Strategies(op).size());
        for (int sidx = 0; sidx < n; ++sidx) {
          if (ctx->Applicable(op, sidx)) {
            best = std::min(best, ctx->OpCommBytes(op, sidx, step->tensor_cut));
          }
        }
        if (best == std::numeric_limits<double>::infinity()) {
          best = ctx->OpCommBytes(op, kReplicatedExec, step->tensor_cut);
        }
        return best;
      };
      const TensorNode& node = graph.tensor(t);
      if (node.producer != kNoOp) {
        total += op_cost(node.producer);
      }
      for (OpId c : node.consumers) {
        total += op_cost(c);
      }
      return total;
    };

    for (TensorId t : order) {
      double best_cost = std::numeric_limits<double>::infinity();
      int best_cut = step->tensor_cut[static_cast<size_t>(t)];
      for (int cut : ctx->CutOptions(t)) {
        step->tensor_cut[static_cast<size_t>(t)] = cut;
        const double cost = incident_cost(t);
        if (cost < best_cost) {
          best_cost = cost;
          best_cut = cut;
        }
      }
      step->tensor_cut[static_cast<size_t>(t)] = best_cut;
    }
  });
}

PartitionPlan EqualChopPlan(const Graph& graph, int num_workers,
                            const PartitionOptions& options) {
  PartitionPlan plan;
  plan.num_workers = num_workers;
  if (num_workers <= 1) {
    return plan;
  }
  // One k-way step: every tensor chopped along exactly one dimension.
  plan.step_factors = {num_workers};
  const CoarseGraph coarse = Coarsen(graph, options.coarsen);
  StepContext ctx(graph, StepContext::InitialShapes(graph), num_workers);
  DpResult dp = RunStepDp(&ctx, coarse, options.dp);
  plan.search_stats = dp.stats;
  plan.weighted_step_costs.push_back(dp.plan.comm_bytes);
  plan.total_comm_bytes = dp.plan.comm_bytes;
  plan.steps.push_back(std::move(dp.plan));
  return plan;
}

PartitionPlan Icml18Plan(const Graph& graph, int num_workers,
                         const PartitionOptions& options) {
  PartitionOptions no_reduction = options;
  no_reduction.dp.allow_reduction_strategies = false;
  return RecursivePartition(graph, num_workers, no_reduction);
}

}  // namespace tofu
