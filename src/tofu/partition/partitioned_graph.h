// Analytic per-operator breakdown of a partition plan, consumed by the simulator's
// lowering pass (§6: generating the partitioned graph).
//
// For each operator the breakdown separates:
//   * fetch_bytes_total   -- pre-compute gather traffic (MultiFetch volume) across all
//                            recursive steps, weighted by the group count per step;
//   * reduce_bytes_total  -- post-compute shuffle/reduction traffic (spread as all-reduce);
//   * work_fraction       -- each worker's share of the op's FLOPs (1/k unless some step
//                            fell back to replicated execution);
//   * output_alloc_factor -- partial-output buffer inflation from case-2 steps (each
//                            reduction step materializes a `ways`-times-larger partial).
#ifndef TOFU_PARTITION_PARTITIONED_GRAPH_H_
#define TOFU_PARTITION_PARTITIONED_GRAPH_H_

#include <vector>

#include "tofu/partition/plan.h"
#include "tofu/partition/strategy.h"

namespace tofu {

struct OpPlanCost {
  double fetch_bytes_total = 0.0;
  double reduce_bytes_total = 0.0;
  double work_fraction = 1.0;
  double output_alloc_factor = 1.0;
};

struct PlanCostBreakdown {
  std::vector<OpPlanCost> per_op;  // indexed by OpId
  double total_comm_bytes = 0.0;   // fetch + reduce over all ops (== plan total)
};

PlanCostBreakdown ComputePlanCosts(const Graph& graph, const PartitionPlan& plan);

}  // namespace tofu

#endif  // TOFU_PARTITION_PARTITIONED_GRAPH_H_
