#include "tofu/partition/group_config.h"

#include <limits>

namespace tofu {

double AssignGreedyOpStrategies(StepContext* ctx, BasicPlan* plan,
                                bool allow_reduction_strategies) {
  const Graph& graph = ctx->graph();
  plan->op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
  double total = 0.0;
  for (OpId op = 0; op < graph.num_ops(); ++op) {
    // Replicated execution competes on cost (zero communication when every operand is
    // stored replicated), matching the DP's UnitCost semantics.
    double best = ctx->OpCommBytes(op, kReplicatedExec, plan->tensor_cut);
    int choice = kReplicatedExec;
    const int n = static_cast<int>(ctx->Strategies(op).size());
    for (int sidx = 0; sidx < n; ++sidx) {
      if (!allow_reduction_strategies &&
          ctx->Strategies(op)[static_cast<size_t>(sidx)].is_reduction) {
        continue;
      }
      if (!ctx->Applicable(op, sidx)) {
        continue;
      }
      const double cost = ctx->OpCommBytes(op, sidx, plan->tensor_cut);
      if (cost < best) {
        best = cost;
        choice = sidx;
      }
    }
    plan->op_strategy[static_cast<size_t>(op)] = choice;
    total += best;
  }
  plan->comm_bytes = total;
  return total;
}

}  // namespace tofu
