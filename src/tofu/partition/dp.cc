#include "tofu/partition/dp.h"

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "tofu/graph/graph.h"
#include "tofu/memory/bytes.h"
#include "tofu/partition/search_engine.h"
#include "tofu/util/logging.h"
#include "tofu/util/sharded_lru.h"
#include "tofu/util/strings.h"

namespace tofu {

std::string DpOptions::Fingerprint() const {
  // num_threads and step_table_cache are deliberately omitted: neither can change the
  // returned plan (the fields' contracts above), so keying on them would only cause
  // spurious cache misses. memory_budget_bytes is included: the budget steers which
  // states survive, so plans searched under different budgets differ. prune_dominated
  // is included for its SearchStats (the plan itself is provably invariant).
  return StrFormat("dp=%d,%lld,%.17g,%lld,%d;", allow_reduction_strategies ? 1 : 0,
                   static_cast<long long>(max_states), link_bandwidth,
                   static_cast<long long>(memory_budget_bytes),
                   prune_dominated ? 1 : 0);
}

// Named (not anonymous) so StepCompilation below can hold these types in shared_ptr
// members without tripping -Wsubobject-linkage; everything here is still file-internal
// by convention.
namespace dp_internal {

// Precompiled cost evaluator of one unit at this step. Strategy applicability, tensor
// sizes and halo volumes are shape-only facts, resolved ONCE per step; on top of that,
// every term's cost contribution is a function of ONE slot's cut option only, so the
// contribution is precomputed per (term, option) into one flat value pool. The hot
// evaluation -- the function the per-group cost tables are filled from, the hottest
// code in the search -- is then a branch-free gather-accumulate: values[t.val_begin +
// option[t.slot]] summed in a fixed order.
//
// Floating-point accumulation order deliberately mirrors StepContext::OpCommBytes
// (per-op subtotals, inputs then output) so costs are bit-identical to evaluating
// through StepContext. Terms whose branchy original would have SKIPPED the add (e.g. a
// replicated stored cut) contribute an explicit 0.0 instead; every contribution is
// non-negative, so adding 0.0 is bitwise-neutral (no -0.0 can arise).
struct TermRef {
  int slot;       // the tensor's slot (options are per slot)
  int val_begin;  // UnitEval::values[val_begin + option] is this term's contribution
};

// One member op's contribution under one strategy: `num_inputs` input TermRefs (stored
// contiguously in the owning flat array) followed by the output re-partition term.
struct OpTerms {
  int num_inputs;
  TermRef out;
};

struct StrategyEval {
  int sidx;
  int op_begin;    // index range into UnitEval::ops
  int op_end;
  int term_begin;  // start of this strategy's run in UnitEval::terms
};

// Flat-array evaluator (single allocation per array, contiguous traversal): ops[o]
// consumes the next ops[o].num_inputs entries of `terms`, in order.
struct UnitEval {
  // Replicated-execution baseline: per member op, the inputs it would all-gather.
  std::vector<int> repl_op_sizes;  // inputs per member op
  std::vector<TermRef> repl_terms;
  // Strategies applicable at this step's shapes (ascending sidx), reduction-filtered.
  std::vector<StrategyEval> strategies;
  std::vector<OpTerms> ops;
  std::vector<TermRef> terms;
  std::vector<double> values;  // per-(term, option) contribution pool
};

UnitEval BuildUnitEval(StepContext* ctx, const CoarseGraph& coarse, const Unit& unit,
                       bool allow_reduction, const std::vector<double>& tensor_bytes,
                       const std::vector<const std::vector<int>*>& slot_options) {
  const Graph& graph = ctx->graph();
  const double f = static_cast<double>(ctx->ways());
  const double fm1 = f - 1.0;
  UnitEval ue;

  // Appends one term's per-option values (`value(cut)` evaluated for every cut option
  // of `slot`, in option order) and returns its TermRef.
  auto add_term = [&ue, &slot_options](int slot, auto&& value) {
    TermRef ref{slot, static_cast<int>(ue.values.size())};
    for (int cut : *slot_options[static_cast<size_t>(slot)]) {
      ue.values.push_back(value(cut));
    }
    return ref;
  };

  ue.repl_op_sizes.reserve(unit.ops.size());
  for (OpId op_id : unit.ops) {
    const OpNode& op = graph.op(op_id);
    ue.repl_op_sizes.push_back(static_cast<int>(op.inputs.size()));
    for (TensorId t : op.inputs) {
      const double size = tensor_bytes[static_cast<size_t>(t)];
      ue.repl_terms.push_back(add_term(
          coarse.tensor_slot[static_cast<size_t>(t)],
          [&](int cut) { return cut == kReplicated ? 0.0 : size * fm1; }));
    }
  }

  const int num_strategies = static_cast<int>(ctx->Strategies(unit.ops[0]).size());
  for (int sidx = 0; sidx < num_strategies; ++sidx) {
    if (!allow_reduction &&
        ctx->Strategies(unit.ops[0])[static_cast<size_t>(sidx)].is_reduction) {
      continue;
    }
    bool ok = true;
    for (OpId op_id : unit.ops) {
      if (!ctx->Applicable(op_id, sidx)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    StrategyEval se;
    se.sidx = sidx;
    se.op_begin = static_cast<int>(ue.ops.size());
    se.term_begin = static_cast<int>(ue.terms.size());
    for (OpId op_id : unit.ops) {
      const OpNode& op = graph.op(op_id);
      const ConcreteStrategy& s = ctx->Strategies(op_id)[static_cast<size_t>(sidx)];
      OpTerms terms;
      terms.num_inputs = static_cast<int>(op.inputs.size());
      for (size_t i = 0; i < op.inputs.size(); ++i) {
        const ConcreteInputReq& req = s.inputs[i];
        const double size = tensor_bytes[static_cast<size_t>(op.inputs[i])];
        const bool whole = req.kind == InputReq::Kind::kReplicated;
        const int req_dim = whole ? -1 : req.dim;
        double halo_bytes = 0.0;
        if (!whole) {
          const std::int64_t extent =
              ctx->shape(op.inputs[i])[static_cast<size_t>(req.dim)];
          if (req.halo_elems > 0 && extent > 0) {
            const double slab =
                size * static_cast<double>(req.halo_elems) / static_cast<double>(extent);
            halo_bytes = 2.0 * (f - 1.0) * slab;
          }
        }
        ue.terms.push_back(add_term(
            coarse.tensor_slot[static_cast<size_t>(op.inputs[i])], [&](int stored) {
              if (stored == kReplicated) {
                return 0.0;  // every worker already holds the whole tensor
              }
              if (whole) {
                return size * fm1;  // all-gather the other shards
              }
              if (stored == req_dim) {
                return halo_bytes;  // aligned: only the halo moves
              }
              return size * fm1 / f + halo_bytes;  // cross-cut shuffle
            }));
      }
      const double out_size = tensor_bytes[static_cast<size_t>(op.output)];
      const bool is_reduction = s.is_reduction;
      const int output_dim = s.output_dim;
      terms.out = add_term(coarse.tensor_slot[static_cast<size_t>(op.output)],
                           [&](int stored) {
                             if (is_reduction) {
                               return stored == kReplicated ? 2.0 * out_size * fm1
                                                            : out_size * fm1;
                             }
                             if (stored == output_dim) {
                               return 0.0;  // output already lands in the stored cut
                             }
                             return stored == kReplicated ? out_size * fm1
                                                          : out_size * fm1 / f;
                           });
      ue.ops.push_back(terms);
    }
    se.op_end = static_cast<int>(ue.ops.size());
    ue.strategies.push_back(se);
  }
  return ue;
}

// Minimal cost of one unit given fixed per-slot OPTION indices: min over applicable
// strategies of the summed member-op communication. Replicated execution (every worker
// runs the whole op) is a genuine candidate, not just a fallback -- for operators whose
// tensors are all stored replicated it is the zero-communication choice (strict < keeps
// it on ties).
double UnitCost(const UnitEval& ue, const std::vector<int>& slot_opt, int* best_sidx) {
  const double* values = ue.values.data();
  double best = 0.0;
  {
    const TermRef* t = ue.repl_terms.data();
    for (int n : ue.repl_op_sizes) {
      double op_total = 0.0;
      for (int i = 0; i < n; ++i, ++t) {
        op_total += values[t->val_begin + slot_opt[static_cast<size_t>(t->slot)]];
      }
      best += op_total;
    }
  }
  int best_idx = kReplicatedExec;
  for (const StrategyEval& se : ue.strategies) {
    double total = 0.0;
    // Each strategy's ops consume its own run of the shared flat term array.
    const TermRef* t = ue.terms.data() + se.term_begin;
    for (int o = se.op_begin; o < se.op_end; ++o) {
      const OpTerms& op = ue.ops[static_cast<size_t>(o)];
      double op_total = 0.0;
      for (int i = 0; i < op.num_inputs; ++i, ++t) {
        op_total += values[t->val_begin + slot_opt[static_cast<size_t>(t->slot)]];
      }
      op_total +=
          values[op.out.val_begin + slot_opt[static_cast<size_t>(op.out.slot)]];
      total += op_total;
    }
    if (total < best) {
      best = total;
      best_idx = se.sidx;
    }
  }
  if (best_sidx != nullptr) {
    *best_sidx = best_idx;
  }
  return best;
}

}  // namespace dp_internal

// One compiled step, as cached across requests: everything RunStepDp derives from
// (graph, shapes, ways, strategy filtering) and nothing it derives from budgets,
// bandwidths or thread counts. The structural fields re-validate a hit against the
// caller's coarse graph -- the 64-bit key could collide, and a colliding entry must be
// treated as a miss, never dereferenced into the wrong search space.
struct StepCompilation {
  int ways = 0;
  std::size_t num_groups = 0;
  std::vector<int> slot_num_options;
  std::shared_ptr<const std::vector<dp_internal::UnitEval>> unit_evals;
  std::shared_ptr<const std::vector<std::vector<double>>> slot_option_bytes;
  std::shared_ptr<const GroupCostTables> tables;  // null entries: never filled so far
};

struct StepTableCache::Impl {
  Impl(std::size_t max_entries, std::size_t shards) : entries(max_entries, shards) {}
  ShardedLruCache<std::shared_ptr<const StepCompilation>> entries;
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
};

StepTableCache::StepTableCache(std::size_t max_entries, std::size_t shards)
    : impl_(std::make_unique<Impl>(max_entries, shards)) {}

StepTableCache::~StepTableCache() = default;

StepTableCache::Stats StepTableCache::stats() const {
  return {impl_->hits.load(std::memory_order_relaxed),
          impl_->misses.load(std::memory_order_relaxed)};
}

std::size_t StepTableCache::size() const { return impl_->entries.size(); }

// dp.cc-internal accessor (friended by StepTableCache): keeps StepCompilation out of
// the public header entirely.
struct StepTableCacheAccess {
  static std::shared_ptr<const StepCompilation> Lookup(StepTableCache* cache,
                                                       const std::string& key) {
    std::optional<std::shared_ptr<const StepCompilation>> hit =
        cache->impl_->entries.Lookup(key);
    return hit.has_value() ? *hit : nullptr;
  }
  static void Insert(StepTableCache* cache, const std::string& key,
                     std::shared_ptr<const StepCompilation> value) {
    cache->impl_->entries.Insert(key, std::move(value));
  }
  static void Count(StepTableCache* cache, bool hit) {
    (hit ? cache->impl_->hits : cache->impl_->misses)
        .fetch_add(1, std::memory_order_relaxed);
  }
};

namespace {

// Cache key of one step compilation: graph structure (GraphSignature), split factor,
// strategy filtering, an FNV-1a digest of every tensor's CURRENT shape (recursion
// shrinks shapes step by step, and every compiled value is shape-dependent -- sizes,
// halos, applicability, cut options, shard bytes), and a digest of the coarse group
// structure (the hybrid pipeline searches STAGE-FILTERED coarse graphs over the same
// graph and shapes -- without the group digest, every stage of every candidate cut
// would collide on one key and thrash the entry; see pipeline/compose.cc). Budgets,
// bandwidths, thread counts and state caps are deliberately absent: they do not
// influence any cached artifact, and their absence is precisely what lets a budget
// ladder or a re-plan with refreshed bandwidths hit the cache.
std::string StepCacheKey(StepContext* ctx, const Graph& graph, const CoarseGraph& coarse,
                         bool allow_reduction) {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    const Shape& shape = ctx->shape(t);
    mix(0x9e3779b97f4a7c15ull + shape.size());  // per-tensor separator
    for (std::int64_t d : shape) {
      mix(static_cast<std::uint64_t>(d));
    }
  }
  std::uint64_t gh = 1469598103934665603ull;
  auto gmix = [&gh](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      gh ^= (v >> (8 * b)) & 0xffu;
      gh *= 1099511628211ull;
    }
  };
  gmix(coarse.groups.size());
  for (const MacroGroup& group : coarse.groups) {
    gmix(0x9e3779b97f4a7c15ull + group.units.size());
    for (int u : group.units) {
      for (OpId op : coarse.units[static_cast<size_t>(u)].ops) {
        gmix(static_cast<std::uint64_t>(op));
      }
    }
    for (OpId op : group.ew_ops) {
      gmix(0xbf58476d1ce4e5b9ull + static_cast<std::uint64_t>(op));
    }
  }
  return StrFormat("step;g=%016llx;w=%d;r=%d;s=%016llx;c=%016llx;",
                   static_cast<unsigned long long>(GraphSignature(graph)), ctx->ways(),
                   allow_reduction ? 1 : 0, static_cast<unsigned long long>(h),
                   static_cast<unsigned long long>(gh));
}

}  // namespace

DpResult RunStepDp(StepContext* ctx, const CoarseGraph& coarse, const DpOptions& options) {
  const Graph& graph = ctx->graph();
  const int num_slots = coarse.num_slots();
  const std::size_t num_groups = coarse.groups.size();

  // Cut options per slot (identical across members; validated by Coarsen). Cached by
  // StepContext, so this is a pointer copy per slot.
  std::vector<const std::vector<int>*> slot_options(static_cast<size_t>(num_slots));
  SearchSpace space;
  space.slot_num_options.resize(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    slot_options[static_cast<size_t>(s)] =
        &ctx->CutOptions(coarse.slots[static_cast<size_t>(s)].members[0]);
    space.slot_num_options[static_cast<size_t>(s)] =
        static_cast<int>(slot_options[static_cast<size_t>(s)]->size());
  }
  space.group_slots.reserve(num_groups);
  for (const MacroGroup& group : coarse.groups) {
    space.group_slots.push_back(group.touched_slots);  // already sorted, unique
  }

  // Incremental re-planning: look this step up in the cross-request compilation cache.
  // A hit must match the coarse structure exactly (key collisions degrade to a miss).
  std::shared_ptr<const StepCompilation> cached;
  std::string cache_key;
  if (options.step_table_cache != nullptr) {
    cache_key = StepCacheKey(ctx, graph, coarse, options.allow_reduction_strategies);
    cached = StepTableCacheAccess::Lookup(options.step_table_cache, cache_key);
    if (cached != nullptr &&
        (cached->ways != ctx->ways() || cached->num_groups != num_groups ||
         cached->slot_num_options != space.slot_num_options)) {
      cached = nullptr;
    }
    StepTableCacheAccess::Count(options.step_table_cache, cached != nullptr);
  }

  // Memory model: each slot's resident bytes per cut option (all members of a slot
  // share one cut, so the slot's contribution is the sum of its members' shards).
  // Always built: with a budget it drives the engine's pruning and tie-breaks; without
  // one the engine ignores it except in the dominance analysis, whose rule demands an
  // option be no worse on BOTH cost and bytes before a sibling is dropped.
  std::shared_ptr<const std::vector<std::vector<double>>> option_bytes;
  if (cached != nullptr) {
    option_bytes = cached->slot_option_bytes;
  } else {
    auto fresh = std::make_shared<std::vector<std::vector<double>>>(
        static_cast<size_t>(num_slots));
    for (int s = 0; s < num_slots; ++s) {
      const std::vector<int>& cut_opts = *slot_options[static_cast<size_t>(s)];
      std::vector<double>& bytes_per_option = (*fresh)[static_cast<size_t>(s)];
      bytes_per_option.reserve(cut_opts.size());
      for (int cut : cut_opts) {
        bytes_per_option.push_back(SlotShardBytesForCut(
            graph, coarse.slots[static_cast<size_t>(s)].members, cut, ctx->ways(),
            [ctx](TensorId t) -> const Shape& { return ctx->shape(t); }));
      }
    }
    option_bytes = std::move(fresh);
  }
  space.slot_option_bytes = *option_bytes;

  // Per-unit evaluators: applicability, sizes, halos and per-option cost contributions
  // resolved once per step -- or reused outright from the cached compilation.
  std::shared_ptr<const std::vector<dp_internal::UnitEval>> unit_evals;
  if (cached != nullptr) {
    unit_evals = cached->unit_evals;
  } else {
    std::vector<double> tensor_bytes(static_cast<size_t>(graph.num_tensors()));
    for (TensorId t = 0; t < graph.num_tensors(); ++t) {
      tensor_bytes[static_cast<size_t>(t)] = static_cast<double>(ctx->bytes(t));
    }
    auto fresh = std::make_shared<std::vector<dp_internal::UnitEval>>();
    fresh->reserve(coarse.units.size());
    for (const Unit& unit : coarse.units) {
      fresh->push_back(dp_internal::BuildUnitEval(ctx, coarse, unit,
                                                  options.allow_reduction_strategies,
                                                  tensor_bytes, slot_options));
    }
    unit_evals = std::move(fresh);
  }

  // Scratch per-slot OPTION-index array consulted by the cost evaluator. Only the
  // touched slots are (re)written before each evaluation, and only they are read.
  std::vector<int> slot_opt(static_cast<size_t>(num_slots), 0);

  // Group cost at one combination of its touched slots' cut options. Invoked once per
  // combination while the engine fills the group's dense cost table. Element-wise riders
  // contribute nothing: their tensors share one slot, hence one cut, hence zero
  // re-partition traffic by construction.
  SearchEngine::GroupCostFn cost_fn = [&](int g, const int* opts) {
    const MacroGroup& group = coarse.groups[static_cast<size_t>(g)];
    for (size_t i = 0; i < group.touched_slots.size(); ++i) {
      slot_opt[static_cast<size_t>(group.touched_slots[i])] = opts[i];
    }
    double group_cost = 0.0;
    for (int u : group.units) {
      group_cost +=
          dp_internal::UnitCost((*unit_evals)[static_cast<size_t>(u)], slot_opt, nullptr);
    }
    return group_cost;
  };

  // Bulk table fill: one call per group table instead of one per cell. Walks the
  // engine's canonical enumeration with an odometer, so only the options that actually
  // change between consecutive cells are rewritten -- this plus skipping the per-cell
  // std::function dispatch is worth ~2x on fill-bound searches, while producing the
  // exact sequence of values cost_fn would (same evaluator, same order).
  SearchEngine::GroupFillFn fill_fn = [&](int g, double* cells, std::int64_t num_cells) {
    const MacroGroup& group = coarse.groups[static_cast<size_t>(g)];
    const std::vector<int>& touched = group.touched_slots;
    const int k = static_cast<int>(touched.size());
    for (int s : touched) {
      slot_opt[static_cast<size_t>(s)] = 0;
    }
    const std::vector<dp_internal::UnitEval>& evals = *unit_evals;
    for (std::int64_t idx = 0;;) {
      double group_cost = 0.0;
      for (int u : group.units) {
        group_cost += dp_internal::UnitCost(evals[static_cast<size_t>(u)], slot_opt, nullptr);
      }
      cells[idx] = group_cost;
      if (++idx == num_cells) {
        break;
      }
      for (int i = k - 1; i >= 0; --i) {
        const int s = touched[static_cast<size_t>(i)];
        if (++slot_opt[static_cast<size_t>(s)] <
            static_cast<int>(slot_options[static_cast<size_t>(s)]->size())) {
          break;
        }
        slot_opt[static_cast<size_t>(s)] = 0;
      }
    }
  };

  SearchEngineOptions engine_options;
  engine_options.max_states = options.max_states;
  engine_options.num_threads = options.num_threads;
  engine_options.prune_dominated = options.prune_dominated;
  engine_options.memory_budget = static_cast<double>(options.memory_budget_bytes);
  if (cached != nullptr) {
    engine_options.reuse_tables = cached->tables;
  }
  SearchEngine engine(std::move(space), engine_options);
  SearchEngine::Result search = engine.Run(cost_fn, fill_fn);

  // Publish (or extend) the compilation: on a miss the whole entry is new; on a hit the
  // engine may still have filled tables the entry lacked (a budgeted search's dynamic
  // table policy differs from the unbudgeted one), which are folded in for the next
  // request. Tables the entry has but this run skipped are kept.
  if (options.step_table_cache != nullptr && search.tables != nullptr) {
    const GroupCostTables* prev_tables = cached != nullptr ? cached->tables.get() : nullptr;
    auto merged = std::make_shared<GroupCostTables>(*search.tables);
    bool changed = cached == nullptr;
    for (size_t g = 0; g < merged->groups.size(); ++g) {
      const std::shared_ptr<const std::vector<double>> prev =
          prev_tables != nullptr && g < prev_tables->groups.size()
              ? prev_tables->groups[g]
              : nullptr;
      if (merged->groups[g] == nullptr) {
        merged->groups[g] = prev;
      } else if (merged->groups[g] != prev) {
        changed = true;
      }
    }
    if (changed) {
      auto entry = std::make_shared<StepCompilation>();
      entry->ways = ctx->ways();
      entry->num_groups = num_groups;
      entry->slot_num_options.resize(static_cast<size_t>(num_slots));
      for (int s = 0; s < num_slots; ++s) {
        entry->slot_num_options[static_cast<size_t>(s)] =
            static_cast<int>(slot_options[static_cast<size_t>(s)]->size());
      }
      entry->unit_evals = unit_evals;
      entry->slot_option_bytes = option_bytes;
      entry->tables = std::move(merged);
      StepTableCacheAccess::Insert(options.step_table_cache, cache_key, std::move(entry));
    }
  }

  DpResult result;
  result.stats = search.stats;
  result.min_possible_bytes = search.min_possible_bytes;
  if (!search.feasible) {
    // No assignment at this step's shapes fits the budget; the caller (recursive.cc)
    // decides whether another factor ordering or a min-bytes fallback can.
    result.feasible = false;
    return result;
  }

  // Plan assembly from the chosen per-slot options.
  std::vector<int> slot_cut(static_cast<size_t>(num_slots), kReplicated);
  for (int s = 0; s < num_slots; ++s) {
    slot_cut[static_cast<size_t>(s)] = (*slot_options[static_cast<size_t>(s)])[
        static_cast<size_t>(search.slot_option[static_cast<size_t>(s)])];
  }

  BasicPlan plan;
  plan.ways = ctx->ways();
  plan.comm_bytes = search.best_cost;
  if (options.link_bandwidth > 0.0) {
    plan.comm_seconds = plan.comm_bytes / options.link_bandwidth;
  }
  plan.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    plan.tensor_cut[static_cast<size_t>(t)] =
        slot_cut[static_cast<size_t>(coarse.tensor_slot[static_cast<size_t>(t)])];
  }
  // Per-group resident bytes after this step (always recorded, budget or not, so plans
  // carry their memory footprint for serialization and the session's reporting).
  plan.peak_shard_bytes = StepResidentBytes(
      graph, plan.tensor_cut, ctx->ways(),
      [ctx](TensorId t) -> const Shape& { return ctx->shape(t); });
  plan.op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
  for (size_t u = 0; u < coarse.units.size(); ++u) {
    int sidx = kReplicatedExec;
    dp_internal::UnitCost((*unit_evals)[u], search.slot_option, &sidx);
    for (OpId op : coarse.units[u].ops) {
      plan.op_strategy[static_cast<size_t>(op)] = sidx;
    }
  }
  for (const MacroGroup& group : coarse.groups) {
    for (OpId op : group.ew_ops) {
      plan.op_strategy[static_cast<size_t>(op)] =
          ctx->ForcedElementwiseStrategy(op, plan.tensor_cut);
    }
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace tofu
