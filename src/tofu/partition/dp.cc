#include "tofu/partition/dp.h"

#include <vector>

#include "tofu/partition/search_engine.h"
#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::string DpOptions::Fingerprint() const {
  // num_threads is deliberately omitted: any thread count yields byte-identical plans
  // (the field's contract above), so keying on it would only cause spurious cache
  // misses for thread-tuned requests. memory_budget_bytes is included: the budget
  // steers which states survive, so plans searched under different budgets differ.
  return StrFormat("dp=%d,%lld,%.17g,%lld;", allow_reduction_strategies ? 1 : 0,
                   static_cast<long long>(max_states), link_bandwidth,
                   static_cast<long long>(memory_budget_bytes));
}

namespace {

// Precompiled cost evaluator of one unit at this step: strategy applicability, tensor
// sizes, and halo volumes are all shape-only facts, so they are resolved ONCE per step
// (per RunStepDp) instead of once per cost evaluation. What remains per evaluation is
// branch-light arithmetic over flat arrays -- this is the function the per-group cost
// tables are filled from, the hottest code in the search.
//
// Floating-point accumulation order deliberately mirrors StepContext::OpCommBytes
// (per-op subtotals, inputs then output) so costs are bit-identical to evaluating
// through StepContext.
struct InputTerm {
  int slot;      // the tensor's slot (cuts are per slot; slots can hold many tensors)
  bool whole;    // whole-tensor requirement (InputReq::Kind::kReplicated)
  int req_dim;   // split requirement dimension (when !whole)
  double size;   // current bytes
  double halo_bytes;
};

// One member op's contribution under one strategy: `num_inputs` InputTerms (stored
// contiguously in the owning flat array) followed by the output re-partition term.
struct OpTerms {
  int num_inputs;
  int out_slot;
  double out_size;
  bool is_reduction;
  int output_dim;
};

struct StrategyEval {
  int sidx;
  int op_begin;     // index range into UnitEval::ops
  int op_end;
  int input_begin;  // start of this strategy's run in UnitEval::inputs
};

// Flat-array evaluator (single allocation per array, contiguous traversal): ops[o]
// consumes the next ops[o].num_inputs entries of `inputs`, in order.
struct UnitEval {
  // Replicated-execution baseline: per member op, the inputs it would all-gather.
  std::vector<int> repl_op_sizes;   // inputs per member op
  std::vector<InputTerm> repl_inputs;
  // Strategies applicable at this step's shapes (ascending sidx), reduction-filtered.
  std::vector<StrategyEval> strategies;
  std::vector<OpTerms> ops;
  std::vector<InputTerm> inputs;
};

UnitEval BuildUnitEval(StepContext* ctx, const CoarseGraph& coarse, const Unit& unit,
                       bool allow_reduction, const std::vector<double>& tensor_bytes) {
  const Graph& graph = ctx->graph();
  const double f = static_cast<double>(ctx->ways());
  UnitEval ue;

  ue.repl_op_sizes.reserve(unit.ops.size());
  for (OpId op_id : unit.ops) {
    const OpNode& op = graph.op(op_id);
    ue.repl_op_sizes.push_back(static_cast<int>(op.inputs.size()));
    for (TensorId t : op.inputs) {
      ue.repl_inputs.push_back({coarse.tensor_slot[static_cast<size_t>(t)], true, -1,
                                tensor_bytes[static_cast<size_t>(t)], 0.0});
    }
  }

  const int num_strategies = static_cast<int>(ctx->Strategies(unit.ops[0]).size());
  for (int sidx = 0; sidx < num_strategies; ++sidx) {
    if (!allow_reduction &&
        ctx->Strategies(unit.ops[0])[static_cast<size_t>(sidx)].is_reduction) {
      continue;
    }
    bool ok = true;
    for (OpId op_id : unit.ops) {
      if (!ctx->Applicable(op_id, sidx)) {
        ok = false;
        break;
      }
    }
    if (!ok) {
      continue;
    }
    StrategyEval se;
    se.sidx = sidx;
    se.op_begin = static_cast<int>(ue.ops.size());
    se.input_begin = static_cast<int>(ue.inputs.size());
    for (OpId op_id : unit.ops) {
      const OpNode& op = graph.op(op_id);
      const ConcreteStrategy& s = ctx->Strategies(op_id)[static_cast<size_t>(sidx)];
      OpTerms terms;
      terms.num_inputs = static_cast<int>(op.inputs.size());
      for (size_t i = 0; i < op.inputs.size(); ++i) {
        const ConcreteInputReq& req = s.inputs[i];
        InputTerm it;
        it.slot = coarse.tensor_slot[static_cast<size_t>(op.inputs[i])];
        it.size = tensor_bytes[static_cast<size_t>(op.inputs[i])];
        it.whole = req.kind == InputReq::Kind::kReplicated;
        it.req_dim = it.whole ? -1 : req.dim;
        it.halo_bytes = 0.0;
        if (!it.whole) {
          const std::int64_t extent =
              ctx->shape(op.inputs[i])[static_cast<size_t>(req.dim)];
          if (req.halo_elems > 0 && extent > 0) {
            const double slab =
                it.size * static_cast<double>(req.halo_elems) / static_cast<double>(extent);
            it.halo_bytes = 2.0 * (f - 1.0) * slab;
          }
        }
        ue.inputs.push_back(it);
      }
      terms.out_slot = coarse.tensor_slot[static_cast<size_t>(op.output)];
      terms.out_size = tensor_bytes[static_cast<size_t>(op.output)];
      terms.is_reduction = s.is_reduction;
      terms.output_dim = s.output_dim;
      ue.ops.push_back(terms);
    }
    se.op_end = static_cast<int>(ue.ops.size());
    ue.strategies.push_back(se);
  }
  return ue;
}

// Minimal cost of one unit given fixed cuts: min over applicable strategies of the summed
// member-op communication. Replicated execution (every worker runs the whole op) is a
// genuine candidate, not just a fallback -- for operators whose tensors are all stored
// replicated it is the zero-communication choice.
double UnitCost(const UnitEval& ue, const std::vector<int>& slot_cuts, double f,
                int* best_sidx) {
  const double fm1 = f - 1.0;
  double best = 0.0;
  {
    const InputTerm* it = ue.repl_inputs.data();
    for (int n : ue.repl_op_sizes) {
      double op_total = 0.0;
      for (int i = 0; i < n; ++i, ++it) {
        if (slot_cuts[static_cast<size_t>(it->slot)] != kReplicated) {
          op_total += it->size * fm1;
        }
      }
      best += op_total;
    }
  }
  int best_idx = kReplicatedExec;
  for (const StrategyEval& se : ue.strategies) {
    double total = 0.0;
    // Each strategy's ops consume its own run of the shared flat input array.
    const InputTerm* it = ue.inputs.data() + se.input_begin;
    for (int o = se.op_begin; o < se.op_end; ++o) {
      const OpTerms& op = ue.ops[static_cast<size_t>(o)];
      double op_total = 0.0;
      for (int i = 0; i < op.num_inputs; ++i, ++it) {
        const int stored = slot_cuts[static_cast<size_t>(it->slot)];
        if (stored == kReplicated) {
          continue;  // every worker already holds the whole tensor
        }
        if (it->whole) {
          op_total += it->size * fm1;  // all-gather the other shards
        } else if (stored == it->req_dim) {
          op_total += it->halo_bytes;  // aligned: only the halo moves
        } else {
          op_total += it->size * fm1 / f + it->halo_bytes;  // cross-cut shuffle
        }
      }
      const int stored = slot_cuts[static_cast<size_t>(op.out_slot)];
      if (op.is_reduction) {
        op_total += stored == kReplicated ? 2.0 * op.out_size * fm1 : op.out_size * fm1;
      } else if (stored != op.output_dim) {
        op_total += stored == kReplicated ? op.out_size * fm1 : op.out_size * fm1 / f;
      }
      total += op_total;
    }
    if (total < best) {
      best = total;
      best_idx = se.sidx;
    }
  }
  if (best_sidx != nullptr) {
    *best_sidx = best_idx;
  }
  return best;
}

}  // namespace

DpResult RunStepDp(StepContext* ctx, const CoarseGraph& coarse, const DpOptions& options) {
  const Graph& graph = ctx->graph();
  const int num_slots = coarse.num_slots();
  const double f = static_cast<double>(ctx->ways());

  // Cut options per slot (identical across members; validated by Coarsen). Cached by
  // StepContext, so this is a pointer copy per slot.
  std::vector<const std::vector<int>*> slot_options(static_cast<size_t>(num_slots));
  SearchSpace space;
  space.slot_num_options.resize(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    slot_options[static_cast<size_t>(s)] =
        &ctx->CutOptions(coarse.slots[static_cast<size_t>(s)].members[0]);
    space.slot_num_options[static_cast<size_t>(s)] =
        static_cast<int>(slot_options[static_cast<size_t>(s)]->size());
  }
  space.group_slots.reserve(coarse.groups.size());
  for (const MacroGroup& group : coarse.groups) {
    space.group_slots.push_back(group.touched_slots);  // already sorted, unique
  }

  // Memory model for the engine's budget pruning: each slot's resident bytes per cut
  // option (all members of a slot share one cut, so the slot's contribution is the sum
  // of its members' shards). Only built when a budget is set -- without one the engine
  // must stay bit-identical to the unconstrained search.
  if (options.memory_budget_bytes > 0) {
    space.slot_option_bytes.resize(static_cast<size_t>(num_slots));
    for (int s = 0; s < num_slots; ++s) {
      const std::vector<int>& cut_opts = *slot_options[static_cast<size_t>(s)];
      std::vector<double>& bytes_per_option =
          space.slot_option_bytes[static_cast<size_t>(s)];
      bytes_per_option.reserve(cut_opts.size());
      for (int cut : cut_opts) {
        double b = 0.0;
        for (TensorId t : coarse.slots[static_cast<size_t>(s)].members) {
          b += ShardBytesForCut(ctx->shape(t), graph.tensor(t).elem_size, cut,
                                ctx->ways());
        }
        bytes_per_option.push_back(b);
      }
    }
  }

  // Per-unit evaluators: applicability, sizes and halos resolved once per step.
  std::vector<double> tensor_bytes(static_cast<size_t>(graph.num_tensors()));
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    tensor_bytes[static_cast<size_t>(t)] = static_cast<double>(ctx->bytes(t));
  }
  std::vector<UnitEval> unit_evals;
  unit_evals.reserve(coarse.units.size());
  for (const Unit& unit : coarse.units) {
    unit_evals.push_back(BuildUnitEval(ctx, coarse, unit,
                                       options.allow_reduction_strategies, tensor_bytes));
  }

  // Scratch per-slot cut array consulted by the cost evaluator. Only the touched slots
  // are (re)written before each evaluation, and only they are read.
  std::vector<int> slot_cuts(static_cast<size_t>(num_slots), kReplicated);

  // Group cost at one combination of its touched slots' cut options. Invoked once per
  // combination while the engine fills the group's dense cost table. Element-wise riders
  // contribute nothing: their tensors share one slot, hence one cut, hence zero
  // re-partition traffic by construction.
  SearchEngine::GroupCostFn cost_fn = [&](int g, const int* opts) {
    const MacroGroup& group = coarse.groups[static_cast<size_t>(g)];
    for (size_t i = 0; i < group.touched_slots.size(); ++i) {
      const int slot = group.touched_slots[i];
      slot_cuts[static_cast<size_t>(slot)] = (*slot_options[static_cast<size_t>(slot)])[
          static_cast<size_t>(opts[i])];
    }
    double group_cost = 0.0;
    for (int u : group.units) {
      group_cost += UnitCost(unit_evals[static_cast<size_t>(u)], slot_cuts, f, nullptr);
    }
    return group_cost;
  };

  SearchEngineOptions engine_options;
  engine_options.max_states = options.max_states;
  engine_options.num_threads = options.num_threads;
  engine_options.memory_budget = static_cast<double>(options.memory_budget_bytes);
  SearchEngine engine(std::move(space), engine_options);
  SearchEngine::Result search = engine.Run(cost_fn);

  DpResult result;
  result.stats = search.stats;
  result.min_possible_bytes = search.min_possible_bytes;
  if (!search.feasible) {
    // No assignment at this step's shapes fits the budget; the caller (recursive.cc)
    // decides whether another factor ordering or a min-bytes fallback can.
    result.feasible = false;
    return result;
  }

  // Plan assembly from the chosen per-slot options.
  std::vector<int> slot_cut(static_cast<size_t>(num_slots), kReplicated);
  for (int s = 0; s < num_slots; ++s) {
    slot_cut[static_cast<size_t>(s)] = (*slot_options[static_cast<size_t>(s)])[
        static_cast<size_t>(search.slot_option[static_cast<size_t>(s)])];
  }

  BasicPlan plan;
  plan.ways = ctx->ways();
  plan.comm_bytes = search.best_cost;
  if (options.link_bandwidth > 0.0) {
    plan.comm_seconds = plan.comm_bytes / options.link_bandwidth;
  }
  plan.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    plan.tensor_cut[static_cast<size_t>(t)] =
        slot_cut[static_cast<size_t>(coarse.tensor_slot[static_cast<size_t>(t)])];
  }
  // Per-group resident bytes after this step (always recorded, budget or not, so plans
  // carry their memory footprint for serialization and the session's reporting).
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    plan.peak_shard_bytes +=
        ShardBytesForCut(ctx->shape(t), graph.tensor(t).elem_size,
                         plan.tensor_cut[static_cast<size_t>(t)], ctx->ways());
  }
  plan.op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
  for (size_t u = 0; u < coarse.units.size(); ++u) {
    int sidx = kReplicatedExec;
    UnitCost(unit_evals[u], slot_cut, f, &sidx);
    for (OpId op : coarse.units[u].ops) {
      plan.op_strategy[static_cast<size_t>(op)] = sidx;
    }
  }
  for (const MacroGroup& group : coarse.groups) {
    for (OpId op : group.ew_ops) {
      plan.op_strategy[static_cast<size_t>(op)] =
          ctx->ForcedElementwiseStrategy(op, plan.tensor_cut);
    }
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace tofu
