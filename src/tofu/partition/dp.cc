#include "tofu/partition/dp.h"

#include <algorithm>
#include <limits>
#include <string>
#include <unordered_map>

#include "tofu/util/logging.h"

namespace tofu {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Backpointer record: fixes one slot's cut; chained per state.
struct Rec {
  int parent = -1;
  int slot = -1;
  int cut = kReplicated;
};

struct State {
  double cost = 0.0;
  int rec = -1;
};

// Minimal cost of one unit given fixed cuts: min over applicable strategies of the summed
// member-op communication. Replicated execution (every worker runs the whole op) is a
// genuine candidate, not just a fallback -- for operators whose tensors are all stored
// replicated it is the zero-communication choice.
double UnitCost(StepContext* ctx, const Unit& unit, const std::vector<int>& cuts,
                bool allow_reduction, int* best_sidx) {
  const int num_strategies = static_cast<int>(ctx->Strategies(unit.ops[0]).size());
  double best = 0.0;
  int best_idx = kReplicatedExec;
  for (OpId op : unit.ops) {
    best += ctx->OpCommBytes(op, kReplicatedExec, cuts);
  }
  for (int sidx = 0; sidx < num_strategies; ++sidx) {
    if (!allow_reduction && ctx->Strategies(unit.ops[0])[static_cast<size_t>(sidx)].is_reduction) {
      continue;
    }
    bool ok = true;
    double total = 0.0;
    for (OpId op : unit.ops) {
      if (!ctx->Applicable(op, sidx)) {
        ok = false;
        break;
      }
      total += ctx->OpCommBytes(op, sidx, cuts);
    }
    if (ok && total < best) {
      best = total;
      best_idx = sidx;
    }
  }
  if (best_sidx != nullptr) {
    *best_sidx = best_idx;
  }
  return best;
}

}  // namespace

DpResult RunStepDp(StepContext* ctx, const CoarseGraph& coarse, const DpOptions& options) {
  const Graph& graph = ctx->graph();
  const int num_slots = coarse.num_slots();
  const int num_groups = static_cast<int>(coarse.groups.size());

  // Cut options per slot (identical across members; validated by Coarsen).
  std::vector<std::vector<int>> slot_options(static_cast<size_t>(num_slots));
  for (int s = 0; s < num_slots; ++s) {
    slot_options[static_cast<size_t>(s)] =
        ctx->CutOptions(coarse.slots[static_cast<size_t>(s)].members[0]);
  }

  // First/last group touching each slot (in processing order). Slots touched by no group
  // (isolated tensors) keep {-1,-1} and default to their first cut option.
  std::vector<int> first(static_cast<size_t>(num_slots), -1);
  std::vector<int> last(static_cast<size_t>(num_slots), -1);
  for (int g = 0; g < num_groups; ++g) {
    for (int s : coarse.groups[static_cast<size_t>(g)].touched_slots) {
      if (first[static_cast<size_t>(s)] < 0) {
        first[static_cast<size_t>(s)] = g;
      }
      last[static_cast<size_t>(s)] = g;
    }
  }

  // Scratch per-tensor cut array consulted by the cost evaluator.
  std::vector<int> cuts(static_cast<size_t>(graph.num_tensors()), kReplicated);
  auto apply_slot_cut = [&](int slot, int cut) {
    for (TensorId t : coarse.slots[static_cast<size_t>(slot)].members) {
      cuts[static_cast<size_t>(t)] = cut;
    }
  };

  // DP over groups.
  std::vector<Rec> recs;
  std::unordered_map<std::string, State> states;
  states.emplace(std::string(), State{0.0, -1});
  std::vector<int> frontier;  // live slots, in insertion order (defines the state key)

  DpResult result;

  for (int g = 0; g < num_groups; ++g) {
    const MacroGroup& group = coarse.groups[static_cast<size_t>(g)];

    // 1. Slots entering the frontier at this group: branch every state on their options.
    std::vector<int> entering;
    for (int s : group.touched_slots) {
      if (first[static_cast<size_t>(s)] == g) {
        entering.push_back(s);
      }
    }
    for (int s : entering) {
      std::unordered_map<std::string, State> branched;
      branched.reserve(states.size() * slot_options[static_cast<size_t>(s)].size());
      for (const auto& [key, state] : states) {
        for (int cut : slot_options[static_cast<size_t>(s)]) {
          recs.push_back({state.rec, s, cut});
          std::string new_key = key;
          new_key.push_back(static_cast<char>(cut + 2));  // kReplicated==-1 -> 1
          branched.emplace(std::move(new_key),
                           State{state.cost, static_cast<int>(recs.size()) - 1});
        }
      }
      states = std::move(branched);
      frontier.push_back(s);
      if (static_cast<std::int64_t>(states.size()) > options.max_states) {
        // Beam fallback: keep the cheapest quarter of the cap (deterministic tie-break
        // on the state key). Exactness is lost; see DpResult::exact.
        std::vector<std::pair<double, std::string>> ranked;
        ranked.reserve(states.size());
        for (const auto& [key, state] : states) {
          ranked.push_back({state.cost, key});
        }
        const size_t keep = static_cast<size_t>(options.max_states / 4);
        std::nth_element(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(keep),
                         ranked.end());
        std::unordered_map<std::string, State> pruned;
        pruned.reserve(keep);
        for (size_t i = 0; i < keep; ++i) {
          pruned.emplace(ranked[i].second, states[ranked[i].second]);
        }
        states = std::move(pruned);
        if (result.exact) {
          TOFU_LOG(Warning) << "DP frontier exceeded " << options.max_states
                            << " states; degrading to a beam search (plan approximate)";
        }
        result.exact = false;
      }
    }

    // 2. Charge the group's cost per state. The cost depends only on the cuts of the
    // group's touched slots, so it is memoized on that projection of the state key --
    // states only pay a substring extraction, not a re-evaluation.
    std::vector<size_t> relevant_positions;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (int s : group.touched_slots) {
        if (frontier[i] == s) {
          relevant_positions.push_back(i);
          break;
        }
      }
    }
    std::unordered_map<std::string, double> group_cost_memo;
    for (auto& [key, state] : states) {
      std::string sub;
      sub.reserve(relevant_positions.size());
      for (size_t pos : relevant_positions) {
        sub.push_back(key[pos]);
      }
      auto memo_it = group_cost_memo.find(sub);
      double group_cost;
      if (memo_it != group_cost_memo.end()) {
        group_cost = memo_it->second;
      } else {
        for (size_t pos : relevant_positions) {
          apply_slot_cut(frontier[pos], static_cast<int>(key[pos]) - 2);
        }
        group_cost = 0.0;
        for (int u : group.units) {
          group_cost += UnitCost(ctx, coarse.units[static_cast<size_t>(u)], cuts,
                                 options.allow_reduction_strategies, nullptr);
        }
        // Element-wise riders contribute nothing: their tensors share one slot, hence one
        // cut, hence zero re-partition traffic by construction.
        group_cost_memo.emplace(std::move(sub), group_cost);
        ++result.states_explored;
      }
      state.cost += group_cost;
    }
    result.max_frontier_states =
        std::max(result.max_frontier_states, static_cast<std::int64_t>(states.size()));

    // 3. Project out slots leaving the frontier, keeping the cheapest state per residue.
    std::vector<size_t> leaving_positions;
    for (size_t i = 0; i < frontier.size(); ++i) {
      if (last[static_cast<size_t>(frontier[i])] == g) {
        leaving_positions.push_back(i);
      }
    }
    if (!leaving_positions.empty()) {
      std::unordered_map<std::string, State> projected;
      projected.reserve(states.size());
      for (const auto& [key, state] : states) {
        std::string new_key;
        new_key.reserve(key.size() - leaving_positions.size());
        size_t next_leave = 0;
        for (size_t i = 0; i < key.size(); ++i) {
          if (next_leave < leaving_positions.size() && leaving_positions[next_leave] == i) {
            ++next_leave;
            continue;
          }
          new_key.push_back(key[i]);
        }
        auto [it, inserted] = projected.emplace(new_key, state);
        if (!inserted && state.cost < it->second.cost) {
          it->second = state;
        }
      }
      states = std::move(projected);
      std::vector<int> new_frontier;
      size_t next_leave = 0;
      for (size_t i = 0; i < frontier.size(); ++i) {
        if (next_leave < leaving_positions.size() && leaving_positions[next_leave] == i) {
          ++next_leave;
          continue;
        }
        new_frontier.push_back(frontier[i]);
      }
      frontier = std::move(new_frontier);
    }
  }

  // 4. Best terminal state and plan reconstruction.
  TOFU_CHECK(!states.empty());
  const State* best = nullptr;
  for (const auto& [key, state] : states) {
    if (best == nullptr || state.cost < best->cost) {
      best = &state;
    }
  }

  std::vector<int> slot_cut(static_cast<size_t>(num_slots), kReplicated);
  std::vector<bool> slot_fixed(static_cast<size_t>(num_slots), false);
  for (int r = best->rec; r >= 0; r = recs[static_cast<size_t>(r)].parent) {
    slot_cut[static_cast<size_t>(recs[static_cast<size_t>(r)].slot)] =
        recs[static_cast<size_t>(r)].cut;
    slot_fixed[static_cast<size_t>(recs[static_cast<size_t>(r)].slot)] = true;
  }
  for (int s = 0; s < num_slots; ++s) {
    if (!slot_fixed[static_cast<size_t>(s)]) {
      // Untouched slot (no op consumes or produces it): take the first option.
      slot_cut[static_cast<size_t>(s)] = slot_options[static_cast<size_t>(s)][0];
    }
  }

  BasicPlan plan;
  plan.ways = ctx->ways();
  plan.comm_bytes = best->cost;
  plan.tensor_cut.assign(static_cast<size_t>(graph.num_tensors()), kReplicated);
  for (TensorId t = 0; t < graph.num_tensors(); ++t) {
    plan.tensor_cut[static_cast<size_t>(t)] =
        slot_cut[static_cast<size_t>(coarse.tensor_slot[static_cast<size_t>(t)])];
  }
  plan.op_strategy.assign(static_cast<size_t>(graph.num_ops()), kReplicatedExec);
  for (const Unit& unit : coarse.units) {
    int sidx = kReplicatedExec;
    UnitCost(ctx, unit, plan.tensor_cut, options.allow_reduction_strategies, &sidx);
    for (OpId op : unit.ops) {
      plan.op_strategy[static_cast<size_t>(op)] = sidx;
    }
  }
  for (const MacroGroup& group : coarse.groups) {
    for (OpId op : group.ew_ops) {
      plan.op_strategy[static_cast<size_t>(op)] =
          ctx->ForcedElementwiseStrategy(op, plan.tensor_cut);
    }
  }
  result.plan = std::move(plan);
  return result;
}

}  // namespace tofu
