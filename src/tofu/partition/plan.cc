#include "tofu/partition/plan.h"

#include <algorithm>
#include <sstream>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::vector<int> PartitionPlan::TensorSplits(const Graph& graph, TensorId t) const {
  std::vector<int> splits(graph.tensor(t).shape.size(), 1);
  for (const BasicPlan& step : steps) {
    const int cut = step.tensor_cut[static_cast<size_t>(t)];
    if (cut != kReplicated) {
      splits[static_cast<size_t>(cut)] *= step.ways;
    }
  }
  return splits;
}

Shape PartitionPlan::ShardShape(const Graph& graph, TensorId t) const {
  const Shape& full = graph.tensor(t).shape;
  std::vector<int> splits = TensorSplits(graph, t);
  Shape shard = full;
  for (size_t d = 0; d < shard.size(); ++d) {
    shard[d] = (full[d] + splits[d] - 1) / splits[d];
  }
  return shard;
}

std::int64_t PartitionPlan::ShardBytes(const Graph& graph, TensorId t) const {
  return NumElements(ShardShape(graph, t)) * graph.tensor(t).elem_size;
}

std::string PartitionPlan::DescribeTiling(const Graph& graph, TensorId t) const {
  std::vector<int> splits = TensorSplits(graph, t);
  std::ostringstream out;
  bool any = false;
  for (size_t d = 0; d < splits.size(); ++d) {
    if (splits[d] > 1) {
      if (any) {
        out << " ";
      }
      out << "d" << d << ":" << splits[d];
      any = true;
    }
  }
  return any ? out.str() : "replicated";
}

std::vector<int> FactorizeWorkers(int num_workers) {
  TOFU_CHECK_GE(num_workers, 1);
  std::vector<int> factors;
  int n = num_workers;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) {
    factors.push_back(n);
  }
  // Non-increasing order: the recursion handles the coarsest split first, matching the
  // hierarchical-interconnect affinity discussed in §5.2.
  std::sort(factors.rbegin(), factors.rend());
  return factors;
}

}  // namespace tofu
