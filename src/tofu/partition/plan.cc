#include "tofu/partition/plan.h"

#include <algorithm>
#include <sstream>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::vector<int> PartitionPlan::TensorSplits(const Graph& graph, TensorId t) const {
  std::vector<int> splits(graph.tensor(t).shape.size(), 1);
  for (const BasicPlan& step : steps) {
    const int cut = step.tensor_cut[static_cast<size_t>(t)];
    if (cut != kReplicated) {
      splits[static_cast<size_t>(cut)] *= step.ways;
    }
  }
  return splits;
}

Shape PartitionPlan::ShardShape(const Graph& graph, TensorId t) const {
  const Shape& full = graph.tensor(t).shape;
  std::vector<int> splits = TensorSplits(graph, t);
  Shape shard = full;
  for (size_t d = 0; d < shard.size(); ++d) {
    shard[d] = (full[d] + splits[d] - 1) / splits[d];
  }
  return shard;
}

std::int64_t PartitionPlan::ShardBytes(const Graph& graph, TensorId t) const {
  return NumElements(ShardShape(graph, t)) * graph.tensor(t).elem_size;
}

std::string PartitionPlan::DescribeTiling(const Graph& graph, TensorId t) const {
  std::vector<int> splits = TensorSplits(graph, t);
  std::ostringstream out;
  bool any = false;
  for (size_t d = 0; d < splits.size(); ++d) {
    if (splits[d] > 1) {
      if (any) {
        out << " ";
      }
      out << "d" << d << ":" << splits[d];
      any = true;
    }
  }
  return any ? out.str() : "replicated";
}

double ShardBytesForCut(const Shape& shape, int elem_size, int cut, int ways) {
  std::int64_t elems = 1;
  for (size_t d = 0; d < shape.size(); ++d) {
    std::int64_t extent = shape[d];
    if (static_cast<int>(d) == cut) {
      extent = (extent + ways - 1) / ways;
    }
    elems *= extent;
  }
  return static_cast<double>(elems) * static_cast<double>(elem_size);
}

std::int64_t AllResidentShardBytes(const Graph& graph, const PartitionPlan& plan) {
  std::int64_t total = 0;
  for (const TensorNode& t : graph.tensors()) {
    total += plan.ShardBytes(graph, t.id);
  }
  return total;
}

std::int64_t LivenessPeakShardBytes(const Graph& graph, const PartitionPlan& plan) {
  const int num_tensors = graph.num_tensors();
  const int num_ops = graph.num_ops();

  // Resolve in-place alias chains to one buffer per chain. Op ids are a topological
  // order (AddOp appends and inputs must already exist), so one forward pass suffices.
  std::vector<TensorId> buffer(static_cast<size_t>(num_tensors));
  for (TensorId t = 0; t < num_tensors; ++t) {
    buffer[static_cast<size_t>(t)] = t;
  }
  for (const OpNode& op : graph.ops()) {
    if (op.inplace_input >= 0 &&
        op.inplace_input < static_cast<int>(op.inputs.size())) {
      buffer[static_cast<size_t>(op.output)] =
          buffer[static_cast<size_t>(op.inputs[static_cast<size_t>(op.inplace_input)])];
    }
  }

  // Per buffer: shard bytes (aliases share storage; take the max member for safety),
  // allocation time (-1 = resident model state, a producer-less root), and the last op
  // that reads any alias of it (num_ops = lives to the end of the iteration).
  std::vector<std::int64_t> buf_bytes(static_cast<size_t>(num_tensors), 0);
  std::vector<int> alloc_at(static_cast<size_t>(num_tensors), -1);
  std::vector<int> free_at(static_cast<size_t>(num_tensors), -1);
  for (TensorId t = 0; t < num_tensors; ++t) {
    const TensorNode& node = graph.tensor(t);
    const TensorId b = buffer[static_cast<size_t>(t)];
    buf_bytes[static_cast<size_t>(b)] =
        std::max(buf_bytes[static_cast<size_t>(b)], plan.ShardBytes(graph, t));
    if (t == b) {
      alloc_at[static_cast<size_t>(b)] = node.producer == kNoOp ? -1 : node.producer;
    }
    const int last_use = node.consumers.empty()
                             ? (node.producer == kNoOp ? -1 : num_ops)
                             : *std::max_element(node.consumers.begin(),
                                                 node.consumers.end());
    free_at[static_cast<size_t>(b)] = std::max(free_at[static_cast<size_t>(b)], last_use);
  }

  std::vector<std::vector<TensorId>> alloc_list(static_cast<size_t>(num_ops));
  std::vector<std::vector<TensorId>> free_list(static_cast<size_t>(num_ops));
  std::int64_t resident = 0;
  for (TensorId b = 0; b < num_tensors; ++b) {
    if (buffer[static_cast<size_t>(b)] != b) {
      continue;  // alias, accounted under its root
    }
    if (alloc_at[static_cast<size_t>(b)] < 0) {
      resident += buf_bytes[static_cast<size_t>(b)];  // model state: never freed
      continue;
    }
    alloc_list[static_cast<size_t>(alloc_at[static_cast<size_t>(b)])].push_back(b);
    if (free_at[static_cast<size_t>(b)] < num_ops) {
      free_list[static_cast<size_t>(free_at[static_cast<size_t>(b)])].push_back(b);
    }
  }

  // Program-order sweep: a buffer is charged while its producer runs (outputs coexist
  // with still-live inputs) and credited after its last consumer completes.
  std::int64_t current = resident;
  std::int64_t peak = current;
  for (OpId k = 0; k < num_ops; ++k) {
    for (TensorId b : alloc_list[static_cast<size_t>(k)]) {
      current += buf_bytes[static_cast<size_t>(b)];
    }
    peak = std::max(peak, current);
    for (TensorId b : free_list[static_cast<size_t>(k)]) {
      current -= buf_bytes[static_cast<size_t>(b)];
    }
  }
  return peak;
}

std::vector<int> FactorizeWorkers(int num_workers) {
  TOFU_CHECK_GE(num_workers, 1);
  std::vector<int> factors;
  int n = num_workers;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) {
    factors.push_back(n);
  }
  // Non-increasing order: the recursion handles the coarsest split first, matching the
  // hierarchical-interconnect affinity discussed in §5.2.
  std::sort(factors.rbegin(), factors.rend());
  return factors;
}

}  // namespace tofu
