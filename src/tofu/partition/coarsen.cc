#include "tofu/partition/coarsen.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <unordered_map>

#include "tofu/util/logging.h"

namespace tofu {
namespace {

// Plain union-find over tensor ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(static_cast<size_t>(n)) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int Find(int x) {
    while (parent_[static_cast<size_t>(x)] != x) {
      parent_[static_cast<size_t>(x)] = parent_[static_cast<size_t>(parent_[static_cast<size_t>(x)])];
      x = parent_[static_cast<size_t>(x)];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) {
      parent_[static_cast<size_t>(std::max(a, b))] = std::min(a, b);
    }
  }

 private:
  std::vector<int> parent_;
};

bool IsElementwise(const Graph& graph, const OpNode& op) {
  return graph.SemanticsOf(op).desc.elementwise;
}

// The forward op an operator belongs with: backward ops follow their forward_op link;
// optimizer updates anchor at the first forward consumer of the weight they update.
OpId GroupRootOp(const Graph& graph, const OpNode& op) {
  if (op.forward_op != kNoOp) {
    return op.forward_op;
  }
  if (op.is_update) {
    TensorId weight = kNoTensor;
    for (TensorId t : op.inputs) {
      const TensorNode& node = graph.tensor(t);
      if (node.is_param) {
        weight = t;
        break;
      }
      if (node.grad_of != kNoTensor && graph.tensor(node.grad_of).is_param) {
        weight = node.grad_of;
        break;
      }
    }
    if (weight != kNoTensor) {
      for (OpId c : graph.tensor(weight).consumers) {
        const OpNode& consumer = graph.op(c);
        if (!consumer.is_update && !consumer.is_backward) {
          return c;
        }
      }
    }
  }
  return op.id;
}

}  // namespace

CoarseGraph Coarsen(const Graph& graph, const CoarsenOptions& options) {
  CoarseGraph out;
  const int num_tensors = graph.num_tensors();
  const int num_ops = graph.num_ops();

  // ---- 1. Tensor slots via union-find. -------------------------------------------------
  UnionFind uf(num_tensors);
  if (options.merge_unrolled_steps) {
    std::unordered_map<std::string, TensorId> first_by_key;
    for (const TensorNode& t : graph.tensors()) {
      if (t.unroll_key.empty()) {
        continue;
      }
      auto [it, inserted] = first_by_key.emplace(t.unroll_key, t.id);
      if (!inserted) {
        uf.Union(it->second, t.id);
      }
    }
  }
  if (options.coalesce_elementwise) {
    for (const OpNode& op : graph.ops()) {
      if (!IsElementwise(graph, op)) {
        continue;
      }
      for (TensorId in : op.inputs) {
        TOFU_CHECK(graph.tensor(in).shape == graph.tensor(op.output).shape)
            << "element-wise op " << op.type << " with mismatched shapes";
        uf.Union(in, op.output);
      }
    }
  }
  if (options.tie_fw_bw_tensors) {
    for (const TensorNode& t : graph.tensors()) {
      if (t.grad_of != kNoTensor) {
        uf.Union(t.id, t.grad_of);
      }
    }
  }

  out.tensor_slot.assign(static_cast<size_t>(num_tensors), -1);
  std::unordered_map<int, int> root_to_slot;
  for (TensorId t = 0; t < num_tensors; ++t) {
    const int root = uf.Find(t);
    auto [it, inserted] = root_to_slot.emplace(root, out.num_slots());
    if (inserted) {
      out.slots.push_back({});
    }
    out.tensor_slot[static_cast<size_t>(t)] = it->second;
    out.slots[static_cast<size_t>(it->second)].members.push_back(t);
  }
  // Slot members must agree on shape (required for a shared cut to be meaningful).
  for (const TensorSlot& slot : out.slots) {
    const Shape& shape0 = graph.tensor(slot.members[0]).shape;
    for (TensorId t : slot.members) {
      TOFU_CHECK(graph.tensor(t).shape == shape0)
          << "slot with mixed shapes: " << graph.tensor(slot.members[0]).name << " vs "
          << graph.tensor(t).name;
    }
  }

  // ---- 2. Units (decision ops sharing a strategy). --------------------------------------
  std::vector<int> op_unit(static_cast<size_t>(num_ops), -1);
  std::unordered_map<std::string, int> unit_by_key;
  for (const OpNode& op : graph.ops()) {
    const bool rider = options.coalesce_elementwise && IsElementwise(graph, op);
    if (rider) {
      continue;
    }
    // Unit keys are qualified by type and attributes: ops sharing an unroll key must be
    // instances of the same logical computation (boundary timesteps can emit a different
    // backward op set, e.g. no dX at t=1; those split into their own units).
    std::string key = (options.merge_unrolled_steps && !op.unroll_key.empty())
                          ? "u:" + op.unroll_key + "|" + op.type + "|" + op.attrs.Signature()
                          : "op:" + std::to_string(op.id);
    auto [it, inserted] = unit_by_key.emplace(std::move(key), static_cast<int>(out.units.size()));
    if (inserted) {
      out.units.push_back({});
    }
    op_unit[static_cast<size_t>(op.id)] = it->second;
    out.units[static_cast<size_t>(it->second)].ops.push_back(op.id);
  }

  // ---- 3. Macro groups. ------------------------------------------------------------------
  // Group key: the unit of the root forward op. Element-wise riders have no unit; they
  // attach to the group of the nearest decision op upstream (climbing producer chains
  // recursively keeps whole pointwise regions -- e.g. an LSTM cell's gate arithmetic --
  // inside one group instead of scattering per-instance groups across the timeline).
  std::map<std::pair<int, int>, int> group_by_key;  // (unit, fallback op) -> group
  std::vector<std::pair<int, int>> resolve_memo(static_cast<size_t>(num_ops), {-2, -2});
  std::function<std::pair<int, int>(OpId)> resolve = [&](OpId id) -> std::pair<int, int> {
    auto& memo = resolve_memo[static_cast<size_t>(id)];
    if (memo.first != -2) {
      return memo;
    }
    memo = {-1, id};  // provisional (breaks accidental cycles defensively)
    const OpNode& op = graph.op(id);
    OpId root = options.group_forward_backward ? GroupRootOp(graph, op) : id;
    const int root_unit = op_unit[static_cast<size_t>(root)];
    if (root_unit >= 0) {
      memo = {root_unit, -1};
      return memo;
    }
    const OpNode& root_op = graph.op(root);
    for (TensorId in : root_op.inputs) {
      OpId producer = graph.tensor(in).producer;
      if (producer != kNoOp && producer != root && producer != id) {
        std::pair<int, int> r = resolve(producer);
        if (r.first >= 0) {
          memo = r;
          return memo;
        }
      }
    }
    memo = {-1, root};
    return memo;
  };
  auto group_key_of = [&](const OpNode& op) { return resolve(op.id); };

  std::vector<int> op_group(static_cast<size_t>(num_ops), -1);
  std::vector<std::pair<int, OpId>> group_order;  // (group index, min op id)
  for (const OpNode& op : graph.ops()) {
    auto key = group_key_of(op);
    auto [it, inserted] = group_by_key.emplace(key, static_cast<int>(out.groups.size()));
    if (inserted) {
      out.groups.push_back({});
      group_order.push_back({it->second, op.id});
    }
    op_group[static_cast<size_t>(op.id)] = it->second;
  }

  for (const OpNode& op : graph.ops()) {
    MacroGroup& group = out.groups[static_cast<size_t>(op_group[static_cast<size_t>(op.id)])];
    const int unit = op_unit[static_cast<size_t>(op.id)];
    if (unit >= 0) {
      if (std::find(group.units.begin(), group.units.end(), unit) == group.units.end()) {
        group.units.push_back(unit);
      }
    } else {
      group.ew_ops.push_back(op.id);
    }
    auto touch = [&](TensorId t) {
      group.touched_slots.push_back(out.tensor_slot[static_cast<size_t>(t)]);
    };
    for (TensorId in : op.inputs) {
      touch(in);
    }
    touch(op.output);
  }
  for (MacroGroup& group : out.groups) {
    std::sort(group.touched_slots.begin(), group.touched_slots.end());
    group.touched_slots.erase(
        std::unique(group.touched_slots.begin(), group.touched_slots.end()),
        group.touched_slots.end());
  }

  // Order groups by their smallest member op id (program order, near-topological).
  std::sort(group_order.begin(), group_order.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  std::vector<MacroGroup> ordered;
  ordered.reserve(out.groups.size());
  for (const auto& [index, min_op] : group_order) {
    ordered.push_back(std::move(out.groups[static_cast<size_t>(index)]));
  }
  out.groups = std::move(ordered);
  return out;
}

}  // namespace tofu
