// Instrumentation of one partition search, surfaced through DpResult, FlatDpResult and
// PartitionPlan so benchmarks and tests can assert on search effort, not just on the
// resulting plan.
#ifndef TOFU_PARTITION_SEARCH_STATS_H_
#define TOFU_PARTITION_SEARCH_STATS_H_

#include <algorithm>
#include <cstdint>

namespace tofu {

struct SearchStats {
  // Distinct group-cost evaluations: dense cost-table cells in table mode, per-state
  // callback invocations in streamed mode.
  std::int64_t states_explored = 0;
  // Peak number of simultaneous DP states (the frontier blow-up the beam cap guards).
  std::int64_t max_frontier_states = 0;
  // Total cells across all precomputed per-group cost tables (0 in streamed mode).
  std::int64_t cost_table_entries = 0;
  // States discarded because their resident bytes -- plus the cheapest possible choices
  // for every slot not yet decided -- already exceeded the step's memory budget. Always
  // 0 when the search ran without a budget (the pruning never engages).
  std::int64_t memory_pruned_states = 0;
  double wall_seconds = 0.0;
  // False when the frontier exceeded the state cap and the search degraded to a beam
  // (the plan is then an approximation; see SearchEngineOptions::max_states).
  bool exact = true;

  // Folds one step's stats into a whole-plan aggregate (recursive steps sum effort and
  // wall time; the peak frontier is a max; exactness is conjunctive).
  void Merge(const SearchStats& step) {
    states_explored += step.states_explored;
    max_frontier_states = std::max(max_frontier_states, step.max_frontier_states);
    cost_table_entries += step.cost_table_entries;
    memory_pruned_states += step.memory_pruned_states;
    wall_seconds += step.wall_seconds;
    exact = exact && step.exact;
  }
};

}  // namespace tofu

#endif  // TOFU_PARTITION_SEARCH_STATS_H_
