// Instrumentation of one partition search, surfaced through DpResult, FlatDpResult and
// PartitionPlan so benchmarks and tests can assert on search effort, not just on the
// resulting plan.
#ifndef TOFU_PARTITION_SEARCH_STATS_H_
#define TOFU_PARTITION_SEARCH_STATS_H_

#include <algorithm>
#include <cstdint>

namespace tofu {

struct SearchStats {
  // Distinct group-cost evaluations the search REQUIRED: dense cost-table cells in
  // table mode (whether the cells were computed this run or imported from a step-table
  // cache -- see reused_table_entries), per-state callback invocations in streamed
  // mode. Deterministic for a given search space, independent of cache temperature,
  // thread count, and dominance pruning, which is what lets plan serializations stay
  // byte-identical across warm and cold searches.
  std::int64_t states_explored = 0;
  // Peak number of simultaneous DP states the SCHEDULE defines (the frontier blow-up
  // the beam cap guards). Dominance pruning does not lower this figure -- states whose
  // option is dominated are counted here but never materialized; their count is
  // reported separately in dominated_pruned_states.
  std::int64_t max_frontier_states = 0;
  // Total cells across all per-group cost tables the search consumed (0 in streamed
  // mode). Computed-or-imported, like states_explored.
  std::int64_t cost_table_entries = 0;
  // States discarded because their resident bytes -- plus the cheapest possible choices
  // for every slot not yet decided -- already exceeded the step's memory budget. Always
  // 0 when the search ran without a budget (the pruning never engages).
  std::int64_t memory_pruned_states = 0;
  // Frontier states never materialized because their option for some slot was
  // dominated: another option of the same slot is pointwise no worse across every
  // group cost table touching the slot (and no heavier when byte tables are present).
  // Diagnostic only -- never serialized into plan JSON (docs/search.md, "Dominated-
  // state pruning").
  std::int64_t dominated_pruned_states = 0;
  // Cost-table cells imported from a StepTableCache (partition/dp.h) instead of being
  // recomputed. Those cells still count in states_explored / cost_table_entries (the
  // search needed them); this counter is how much of that work a warm cache saved.
  // Diagnostic only -- never serialized into plan JSON.
  std::int64_t reused_table_entries = 0;
  // Full-table cells excluded from the dense sweep's compacted charge tables because
  // some coordinate's option was dominated: the charge gather never reads them (the
  // fill still computes them, so states_explored / cost_table_entries are unchanged).
  // Always 0 when dominance pruning is off or nothing was dominated. Diagnostic only --
  // never serialized into plan JSON.
  std::int64_t pruned_table_cells = 0;
  double wall_seconds = 0.0;
  // Per-phase wall-time attribution of wall_seconds (diagnostic; not serialized):
  // cost-table fills, state expansion (branching entering slots), charging group costs
  // to states, and projection (repack + min-merge / min-reduce + final argmin).
  double fill_seconds = 0.0;
  double expand_seconds = 0.0;
  double charge_seconds = 0.0;
  double project_seconds = 0.0;
  // False when the frontier exceeded the state cap and the search degraded to a beam
  // (the plan is then an approximation; see SearchEngineOptions::max_states).
  bool exact = true;

  // Folds one step's stats into a whole-plan aggregate (recursive steps sum effort and
  // wall time; the peak frontier is a max; exactness is conjunctive).
  void Merge(const SearchStats& step) {
    states_explored += step.states_explored;
    max_frontier_states = std::max(max_frontier_states, step.max_frontier_states);
    cost_table_entries += step.cost_table_entries;
    memory_pruned_states += step.memory_pruned_states;
    dominated_pruned_states += step.dominated_pruned_states;
    reused_table_entries += step.reused_table_entries;
    pruned_table_cells += step.pruned_table_cells;
    wall_seconds += step.wall_seconds;
    fill_seconds += step.fill_seconds;
    expand_seconds += step.expand_seconds;
    charge_seconds += step.charge_seconds;
    project_seconds += step.project_seconds;
    exact = exact && step.exact;
  }
};

}  // namespace tofu

#endif  // TOFU_PARTITION_SEARCH_STATS_H_
