// Graph coarsening (paper §5.1): shrinks the partition search space by
//   1. grouping each forward operator with its auto-generated backward operators (and the
//      optimizer updates of the weights it consumes),
//   2. coalescing element-wise operators -- their inputs and output must share one
//      partition, so the tensors they touch merge into a single "slot" and the operators
//      themselves need no strategy enumeration at all,
//   3. merging unrolled RNN timesteps -- operators with the same unroll key across
//      timesteps share computation and weights and are forced to share one strategy.
//
// The result is a sequence of macro groups over "slots" (sets of tensors sharing one cut)
// and "units" (sets of decision operators sharing one strategy), consumed by the DP.
#ifndef TOFU_PARTITION_COARSEN_H_
#define TOFU_PARTITION_COARSEN_H_

#include <string>
#include <vector>

#include "tofu/graph/graph.h"

namespace tofu {

struct CoarsenOptions {
  bool group_forward_backward = true;
  bool coalesce_elementwise = true;
  bool merge_unrolled_steps = true;
  // ICML'18-style restriction: forward tensors and their gradients share one partition
  // configuration (Tofu lifts this; see §5.1 "allows tensors involved in the forward and
  // backward operators to be partitioned differently").
  bool tie_fw_bw_tensors = false;

  // Deterministic serialization of every field, kept next to the struct so adding a
  // field forces the question "does this belong in the Session plan-cache key?" to be
  // answered here, not in core/session.cc.
  std::string Fingerprint() const {
    std::string out = "co=";
    out += group_forward_backward ? '1' : '0';
    out += coalesce_elementwise ? '1' : '0';
    out += merge_unrolled_steps ? '1' : '0';
    out += tie_fw_bw_tensors ? '1' : '0';
    out += ';';
    return out;
  }
};

// Tensors constrained to share one storage cut. All members have identical shapes.
struct TensorSlot {
  std::vector<TensorId> members;
};

// Decision operators constrained to share one strategy (unrolled timesteps of one logical
// op; a singleton otherwise).
struct Unit {
  std::vector<OpId> ops;
};

// One coarsened node: a forward op, its backward ops, attached optimizer updates and
// coalesced element-wise riders.
struct MacroGroup {
  std::vector<int> units;        // indices into CoarseGraph::units
  std::vector<OpId> ew_ops;      // element-wise ops whose strategy is forced by their slot
  std::vector<int> touched_slots;  // sorted, unique
};

struct CoarseGraph {
  std::vector<int> tensor_slot;  // TensorId -> slot index
  std::vector<TensorSlot> slots;
  std::vector<Unit> units;
  std::vector<MacroGroup> groups;  // in DP processing order (program order)

  int num_slots() const { return static_cast<int>(slots.size()); }
};

CoarseGraph Coarsen(const Graph& graph, const CoarsenOptions& options = {});

}  // namespace tofu

#endif  // TOFU_PARTITION_COARSEN_H_
