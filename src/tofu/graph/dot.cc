#include "tofu/graph/dot.h"

#include <sstream>

#include "tofu/util/strings.h"

namespace tofu {

std::string ToDot(const Graph& graph, const std::string& title) {
  std::ostringstream out;
  out << "digraph \"" << title << "\" {\n  rankdir=TB;\n  node [fontsize=10];\n";
  for (const TensorNode& t : graph.tensors()) {
    const char* shape = t.is_param ? "box" : (t.is_input ? "invhouse" : "ellipse");
    const char* color = t.grad_of != kNoTensor ? "lightsalmon" : "lightblue";
    out << StrFormat("  t%d [label=\"%s\\n%s\", shape=%s, style=filled, fillcolor=%s];\n",
                     t.id, t.name.c_str(), ShapeToString(t.shape).c_str(), shape, color);
  }
  for (const OpNode& op : graph.ops()) {
    const char* color = op.is_update ? "palegreen" : (op.is_backward ? "gray85" : "white");
    out << StrFormat("  o%d [label=\"%s\", shape=rect, style=filled, fillcolor=%s];\n", op.id,
                     op.type.c_str(), color);
    for (TensorId in : op.inputs) {
      out << StrFormat("  t%d -> o%d;\n", in, op.id);
    }
    out << StrFormat("  o%d -> t%d;\n", op.id, op.output);
  }
  out << "}\n";
  return out.str();
}

}  // namespace tofu
