// Graphviz DOT export for debugging and the examples: renders the dataflow graph with
// forward/backward/update ops distinguished, so the structures the coarsening pass
// groups (paper §5.1) can be inspected visually.
#ifndef TOFU_GRAPH_DOT_H_
#define TOFU_GRAPH_DOT_H_

#include <string>

#include "tofu/graph/graph.h"

namespace tofu {

// Renders the graph in DOT format. Backward ops are shaded; parameters are boxes.
std::string ToDot(const Graph& graph, const std::string& title = "tofu");

}  // namespace tofu

#endif  // TOFU_GRAPH_DOT_H_
