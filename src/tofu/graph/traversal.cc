#include "tofu/graph/traversal.h"

#include <algorithm>
#include <queue>

#include "tofu/util/logging.h"

namespace tofu {

std::vector<OpId> TopoOrder(const Graph& graph) {
  const int n = graph.num_ops();
  std::vector<int> pending(static_cast<size_t>(n), 0);
  for (OpId id = 0; id < n; ++id) {
    int deps = 0;
    for (TensorId t : graph.op(id).inputs) {
      if (graph.tensor(t).producer != kNoOp) {
        ++deps;
      }
    }
    pending[static_cast<size_t>(id)] = deps;
  }
  // Min-heap on op id keeps the order deterministic and program-order-like.
  std::priority_queue<OpId, std::vector<OpId>, std::greater<>> ready;
  for (OpId id = 0; id < n; ++id) {
    if (pending[static_cast<size_t>(id)] == 0) {
      ready.push(id);
    }
  }
  std::vector<OpId> order;
  order.reserve(static_cast<size_t>(n));
  while (!ready.empty()) {
    OpId id = ready.top();
    ready.pop();
    order.push_back(id);
    const TensorNode& out = graph.tensor(graph.op(id).output);
    for (OpId consumer : out.consumers) {
      if (--pending[static_cast<size_t>(consumer)] == 0) {
        ready.push(consumer);
      }
    }
  }
  TOFU_CHECK_EQ(static_cast<int>(order.size()), n) << "cycle in dataflow graph";
  return order;
}

std::vector<OpId> ReverseTopoOrder(const Graph& graph) {
  std::vector<OpId> order = TopoOrder(graph);
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<bool> AncestorOps(const Graph& graph, TensorId target) {
  std::vector<bool> mark(static_cast<size_t>(graph.num_ops()), false);
  std::vector<TensorId> stack = {target};
  std::vector<bool> seen_tensor(static_cast<size_t>(graph.num_tensors()), false);
  while (!stack.empty()) {
    TensorId t = stack.back();
    stack.pop_back();
    if (seen_tensor[static_cast<size_t>(t)]) {
      continue;
    }
    seen_tensor[static_cast<size_t>(t)] = true;
    OpId producer = graph.tensor(t).producer;
    if (producer == kNoOp || mark[static_cast<size_t>(producer)]) {
      continue;
    }
    mark[static_cast<size_t>(producer)] = true;
    for (TensorId input : graph.op(producer).inputs) {
      stack.push_back(input);
    }
  }
  return mark;
}

std::vector<bool> NeedsGrad(const Graph& graph, TensorId loss) {
  // Upward closure of requires_grad through producers, intersected with ancestors of loss.
  const int nt = graph.num_tensors();
  std::vector<bool> carries(static_cast<size_t>(nt), false);
  for (OpId id : TopoOrder(graph)) {
    const OpNode& op = graph.op(id);
    bool any = false;
    for (TensorId t : op.inputs) {
      any = any || carries[static_cast<size_t>(t)] || graph.tensor(t).requires_grad;
    }
    carries[static_cast<size_t>(op.output)] = any;
  }
  std::vector<bool> ancestors = AncestorOps(graph, loss);
  std::vector<bool> out(static_cast<size_t>(nt), false);
  for (TensorId t = 0; t < nt; ++t) {
    const TensorNode& node = graph.tensor(t);
    const bool on_path =
        (node.producer != kNoOp && ancestors[static_cast<size_t>(node.producer)]) ||
        t == loss;
    out[static_cast<size_t>(t)] =
        on_path && (carries[static_cast<size_t>(t)] || node.requires_grad);
    if (node.requires_grad && node.producer == kNoOp) {
      // Parameters feeding ancestor ops.
      for (OpId c : node.consumers) {
        if (ancestors[static_cast<size_t>(c)]) {
          out[static_cast<size_t>(t)] = true;
        }
      }
    }
  }
  return out;
}

}  // namespace tofu
