// Dataflow graph of fine-grained tensor operators -- the substrate Tofu partitions.
//
// Mirrors the MXNet/NNVM graphs the paper targets: single-output operators over dense
// tensors, with enough annotations for the partitioner's coarsening pass (§5.1):
// forward/backward links, gradient links, optimizer-update and gradient-aggregation
// markers, and unroll keys identifying the repeated timesteps of an RNN.
#ifndef TOFU_GRAPH_GRAPH_H_
#define TOFU_GRAPH_GRAPH_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "tofu/tdl/registry.h"

namespace tofu {

using TensorId = std::int32_t;
using OpId = std::int32_t;
inline constexpr TensorId kNoTensor = -1;
inline constexpr OpId kNoOp = -1;

struct TensorNode {
  TensorId id = kNoTensor;
  std::string name;
  Shape shape;
  int elem_size = 4;  // fp32 everywhere, as in the paper's experiments

  OpId producer = kNoOp;
  std::vector<OpId> consumers;

  // Gradient linkage: this tensor is the gradient of `grad_of` (kNoTensor otherwise).
  TensorId grad_of = kNoTensor;

  bool is_input = false;      // externally provided (data, labels, initial states)
  bool is_param = false;      // trainable weight
  bool is_opt_state = false;  // optimizer history buffer
  bool requires_grad = false;

  // Coalescing hints: tensors with the same non-empty unroll key across timesteps are
  // different instances of the same logical RNN tensor (§5.1, "merging unrolled
  // timesteps").
  std::string unroll_key;
  int timestep = -1;

  std::int64_t num_elements() const { return NumElements(shape); }
  std::int64_t bytes() const { return num_elements() * elem_size; }
  int rank() const { return static_cast<int>(shape.size()); }
};

struct OpNode {
  OpId id = kNoOp;
  std::string type;  // key into OpRegistry
  OpAttrs attrs;
  std::vector<TensorId> inputs;
  TensorId output = kNoTensor;

  // Grouping annotations (§5.1).
  OpId forward_op = kNoOp;  // for backward ops: the forward op they differentiate
  bool is_backward = false;
  bool is_update = false;    // optimizer update (element-wise, joins the weight's group)
  bool is_grad_agg = false;  // gradient-aggregation add (chain rule for multi-use tensors)

  // Output buffer aliases this input (in-place update / accumulation). -1 when none.
  int inplace_input = -1;

  std::string unroll_key;
  int timestep = -1;
};

// A mutable dataflow graph. Tensors and operators are stored densely and addressed by id;
// ids are stable (no deletion).
class Graph {
 public:
  Graph() = default;

  // Non-copyable (graphs are large); movable.
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  TensorId AddInput(const std::string& name, Shape shape);
  TensorId AddParam(const std::string& name, Shape shape);
  TensorId AddOptState(const std::string& name, Shape shape);

  // Adds an operator of registered `type`; the output tensor's shape is inferred through
  // the registry. Returns the output tensor id.
  TensorId AddOp(const std::string& type, OpAttrs attrs, std::vector<TensorId> inputs,
                 const std::string& name_hint = "");

  // Accessors.
  int num_tensors() const { return static_cast<int>(tensors_.size()); }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const TensorNode& tensor(TensorId id) const { return tensors_[static_cast<size_t>(id)]; }
  TensorNode& tensor(TensorId id) { return tensors_[static_cast<size_t>(id)]; }
  const OpNode& op(OpId id) const { return ops_[static_cast<size_t>(id)]; }
  OpNode& op(OpId id) { return ops_[static_cast<size_t>(id)]; }
  const std::vector<TensorNode>& tensors() const { return tensors_; }
  const std::vector<OpNode>& ops() const { return ops_; }

  std::vector<Shape> InputShapes(const OpNode& op) const;
  std::vector<int> InputRanks(const OpNode& op) const;

  // Cached TDL semantics (description + discovered strategies) for an op instance.
  // Resolved through the registry once per op (semantics depend only on the op's type,
  // attributes and input ranks, all fixed at construction) and memoized per op id --
  // the partition search asks for these per step, on its hottest path. Safe to call
  // from concurrent readers of a fully built graph (the Session serving path searches
  // one shared graph from many threads); mutation (AddOp etc.) is not.
  const OpSemantics& SemanticsOf(const OpNode& op) const;

  // Aggregate statistics.
  std::int64_t TotalParamBytes() const;
  std::int64_t TotalOptStateBytes() const;
  std::vector<TensorId> ParamIds() const;

 private:
  TensorId NewTensor(const std::string& name, Shape shape);

  std::vector<TensorNode> tensors_;
  std::vector<OpNode> ops_;
  // Registry semantics per op id, resolved lazily. One slot per op, appended by AddOp
  // (a deque so growth never relocates -- atomics are neither movable nor copyable);
  // each slot goes nullptr -> resolved at most once, so concurrent SemanticsOf readers
  // race only on idempotent stores of the same registry-owned pointer.
  mutable std::deque<std::atomic<const OpSemantics*>> semantics_cache_;
};

// Structural validation: producer/consumer symmetry, shapes re-inferable through the
// registry, gradient links well-formed. Aborts on violation (used by tests and builders).
void ValidateGraph(const Graph& graph);

// Structural fingerprint of the graph: tensor shapes and roles, op types, attributes and
// connectivity, folded with FNV-1a. Deterministic across runs and processes (no pointer
// or hash-table ordering leaks in), so it can key persistent caches -- the Session plan
// cache of core/session.h keys on it together with the request fingerprint.
std::uint64_t GraphSignature(const Graph& graph);

}  // namespace tofu

#endif  // TOFU_GRAPH_GRAPH_H_
