#include "tofu/graph/autodiff.h"

#include <functional>
#include <string>

#include "tofu/graph/traversal.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

// Emits the gradient of each input of `op` given the output gradient `dy`. Entries may be
// kNoTensor for non-differentiable inputs (e.g. labels). `need[i]` tells the rule which
// inputs actually require a gradient, letting it skip dead computations (MXNet likewise
// never differentiates w.r.t. the data batch).
using GradFn = std::function<std::vector<TensorId>(Graph*, const OpNode&, TensorId dy,
                                                   const std::vector<bool>& need)>;

// Helper shortening rule bodies: adds an op and returns its output.
TensorId Emit(Graph* g, const std::string& type, OpAttrs attrs, std::vector<TensorId> in) {
  return g->AddOp(type, std::move(attrs), std::move(in));
}

const std::unordered_map<std::string, GradFn>& GradRules() {
  static const auto* rules = new std::unordered_map<std::string, GradFn>{
      // ---- element-wise arithmetic -------------------------------------------------
      {"add",
       [](Graph* /*g*/, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{dy, dy};
       }},
      {"sub",
       [](Graph* g, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& need) {
         TensorId d1 = need[1] ? Emit(g, "neg", {}, {dy}) : kNoTensor;
         return std::vector<TensorId>{dy, d1};
       }},
      {"mul",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId d0 = need[0] ? Emit(g, "mul", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId d1 = need[1] ? Emit(g, "mul", {}, {dy, op.inputs[0]}) : kNoTensor;
         return std::vector<TensorId>{d0, d1};
       }},
      {"div",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId d0 = need[0] ? Emit(g, "div", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId d1 = kNoTensor;
         if (need[1]) {
           // d/db (a/b) = -(a/b)/b; reuse the op's own output.
           TensorId t = Emit(g, "mul", {}, {dy, op.output});
           TensorId q = Emit(g, "div", {}, {t, op.inputs[1]});
           d1 = Emit(g, "neg", {}, {q});
         }
         return std::vector<TensorId>{d0, d1};
       }},
      {"maximum",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         // relu_grad(dy, a-b) routes dy to the larger operand.
         TensorId diff = Emit(g, "sub", {}, {op.inputs[0], op.inputs[1]});
         TensorId d0 = Emit(g, "relu_grad", {}, {dy, diff});
         TensorId d1 = need[1] ? Emit(g, "sub", {}, {dy, d0}) : kNoTensor;
         return std::vector<TensorId>{need[0] ? d0 : kNoTensor, d1};
       }},
      {"copy",
       [](Graph* /*g*/, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{dy};
       }},
      {"neg",
       [](Graph* g, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "neg", {}, {dy})};
       }},
      {"relu",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "relu_grad", {}, {dy, op.inputs[0]})};
       }},
      {"tanh",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "tanh_grad", {}, {dy, op.output})};
       }},
      {"sigmoid",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "sigmoid_grad", {}, {dy, op.output})};
       }},
      {"exp",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "mul", {}, {dy, op.output})};
       }},
      {"log",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "div", {}, {dy, op.inputs[0]})};
       }},
      {"sqrt",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         TensorId half = Emit(g, "scale", OpAttrs().SetF("k", 0.5), {dy});
         return std::vector<TensorId>{Emit(g, "div", {}, {half, op.output})};
       }},
      {"square",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         TensorId two_x = Emit(g, "scale", OpAttrs().SetF("k", 2.0), {op.inputs[0]});
         return std::vector<TensorId>{Emit(g, "mul", {}, {dy, two_x})};
       }},
      {"scale",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{
             Emit(g, "scale", OpAttrs().SetF("k", op.attrs.GetFloat("k", 1.0)), {dy})};
       }},
      {"add_scalar",
       [](Graph* /*g*/, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{dy};
       }},
      {"fma2",  // out = a*b + c*d
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         auto grad = [&](int self, int partner) {
           return need[static_cast<size_t>(self)]
                      ? Emit(g, "mul", {}, {dy, op.inputs[static_cast<size_t>(partner)]})
                      : kNoTensor;
         };
         return std::vector<TensorId>{grad(0, 1), grad(1, 0), grad(2, 3), grad(3, 2)};
       }},

      // ---- matmul family -----------------------------------------------------------
      {"matmul",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "matmul_nt", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "matmul_tn", {}, {op.inputs[0], dy}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"matmul_tn",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "matmul_nt", {}, {op.inputs[1], dy}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "matmul", {}, {op.inputs[0], dy}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"matmul_nt",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "matmul", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "matmul_tn", {}, {dy, op.inputs[0]}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"transpose2d",
       [](Graph* g, const OpNode& /*op*/, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "transpose2d", {}, {dy})};
       }},
      {"batch_matmul",  // Y[b] = A[b] B[b]
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "batch_matmul_nt", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "batch_matmul_tn", {}, {op.inputs[0], dy}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"batch_matmul_tn",  // Y[b] = A[b]^T B[b]
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "batch_matmul_nt", {}, {op.inputs[1], dy}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "batch_matmul", {}, {op.inputs[0], dy}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"batch_matmul_nt",  // Y[b] = A[b] B[b]^T
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId da = need[0] ? Emit(g, "batch_matmul", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId db = need[1] ? Emit(g, "batch_matmul_tn", {}, {dy, op.inputs[0]}) : kNoTensor;
         return std::vector<TensorId>{da, db};
       }},
      {"linear3d",  // Y = X W with shared weight W: dX = dY W^T, dW = sum_{b,m} X^T dY
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId dx = need[0] ? Emit(g, "linear3d_nt", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId dw = need[1] ? Emit(g, "linear3d_grad_w", {}, {op.inputs[0], dy}) : kNoTensor;
         return std::vector<TensorId>{dx, dw};
       }},

      // ---- reductions / broadcasts ---------------------------------------------------
      {"reduce_rows",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         const std::int64_t rows = g->tensor(op.inputs[0]).shape[0];
         return std::vector<TensorId>{
             Emit(g, "broadcast_rows", OpAttrs().Set("rows", rows), {dy})};
       }},
      {"reduce_mean_all",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         const std::int64_t n = g->tensor(op.inputs[0]).shape[0];
         return std::vector<TensorId>{Emit(g, "broadcast_scalar", OpAttrs().Set("n", n), {dy})};
       }},
      {"add_bias",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId db = kNoTensor;
         if (need[1]) {
           const int rank = g->tensor(op.inputs[0]).rank();
           const std::int64_t bias_dim = op.attrs.GetInt("bias_dim", rank - 1);
           if (rank == 2 && bias_dim == 1) {
             db = Emit(g, "reduce_rows", {}, {dy});
           } else if (rank == 4 && bias_dim == 1) {
             db = Emit(g, "reduce_channel", {}, {dy});
           } else if (rank >= 3 && bias_dim == rank - 1) {
             db = Emit(g, "reduce_leading", {}, {dy});
           } else {
             TOFU_LOG(Fatal) << "add_bias gradient unsupported for rank " << rank
                             << " bias_dim " << bias_dim;
           }
         }
         return std::vector<TensorId>{dy, db};
       }},

      // ---- convolution / pooling / normalization ------------------------------------
      {"conv2d",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         const TensorNode& x = g->tensor(op.inputs[0]);
         const TensorNode& f = g->tensor(op.inputs[1]);
         TensorId dx = kNoTensor;
         if (need[0]) {
           OpAttrs attrs = op.attrs;
           attrs.Set("h", x.shape[2]).Set("w", x.shape[3]);
           dx = Emit(g, "conv2d_bwd_data", std::move(attrs), {dy, op.inputs[1]});
         }
         TensorId dw = kNoTensor;
         if (need[1]) {
           OpAttrs attrs = op.attrs;
           attrs.Set("kh", f.shape[2]).Set("kw", f.shape[3]);
           dw = Emit(g, "conv2d_bwd_filter", std::move(attrs), {dy, op.inputs[0]});
         }
         return std::vector<TensorId>{dx, dw};
       }},
      {"maxpool2d",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{
             Emit(g, "maxpool2d_grad", op.attrs, {dy, op.inputs[0], op.output})};
       }},
      {"global_avg_pool",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         const TensorNode& x = g->tensor(op.inputs[0]);
         OpAttrs attrs;
         attrs.Set("h", x.shape[2]).Set("w", x.shape[3]);
         return std::vector<TensorId>{Emit(g, "global_avg_pool_grad", std::move(attrs), {dy})};
       }},
      {"bn",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId dx = need[0] ? Emit(g, "bn_grad_x", {}, {dy, op.inputs[1]}) : kNoTensor;
         TensorId dgamma =
             need[1] ? Emit(g, "bn_grad_gamma", {}, {dy, op.inputs[0]}) : kNoTensor;
         TensorId dbeta = need[2] ? Emit(g, "reduce_channel", {}, {dy}) : kNoTensor;
         return std::vector<TensorId>{dx, dgamma, dbeta};
       }},
      {"softmax",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         return std::vector<TensorId>{Emit(g, "softmax_grad", {}, {dy, op.output})};
       }},
      {"layernorm",  // inputs (x, gamma, beta)
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId dx = need[0]
                           ? Emit(g, "layernorm_grad_x", {}, {dy, op.inputs[0], op.inputs[1]})
                           : kNoTensor;
         TensorId dgamma =
             need[1] ? Emit(g, "layernorm_grad_gamma", {}, {dy, op.inputs[0]}) : kNoTensor;
         TensorId dbeta = need[2] ? Emit(g, "reduce_leading", {}, {dy}) : kNoTensor;
         return std::vector<TensorId>{dx, dgamma, dbeta};
       }},
      {"mean_seq",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         const std::int64_t seq = g->tensor(op.inputs[0]).shape[1];
         return std::vector<TensorId>{
             Emit(g, "mean_seq_grad", OpAttrs().Set("seq", seq), {dy})};
       }},
      {"softmax_xent",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& /*need*/) {
         TensorId raw = Emit(g, "softmax_xent_grad", {}, {op.inputs[0], op.inputs[1]});
         TensorId dlogits = Emit(g, "scale_rows", {}, {raw, dy});
         return std::vector<TensorId>{dlogits, kNoTensor};
       }},
      {"scale_rows",
       [](Graph* g, const OpNode& op, TensorId dy, const std::vector<bool>& need) {
         TensorId d0 = need[0] ? Emit(g, "scale_rows", {}, {dy, op.inputs[1]}) : kNoTensor;
         TOFU_CHECK(!need[1]) << "scale_rows: gradient w.r.t. the scale vector unsupported";
         return std::vector<TensorId>{d0, kNoTensor};
       }},
  };
  return *rules;
}

}  // namespace

bool HasGradRule(const std::string& op_type) { return GradRules().count(op_type) > 0; }

AutodiffResult BuildBackward(Graph* graph, TensorId loss) {
  AutodiffResult result;
  const std::vector<bool> needs_grad = NeedsGrad(*graph, loss);
  TOFU_CHECK(needs_grad[static_cast<size_t>(loss)])
      << "loss does not depend on any requires_grad tensor";

  // Seed: d(loss)/d(loss), provided externally like MXNet's head gradient.
  result.loss_grad = graph->AddInput("d_" + graph->tensor(loss).name,
                                     graph->tensor(loss).shape);
  result.grad_map[loss] = result.loss_grad;

  // Accumulates a gradient contribution for `t`, summing with `add` when one exists.
  auto accumulate = [&](TensorId t, TensorId contribution, const OpNode& fw_op) {
    auto it = result.grad_map.find(t);
    if (it == result.grad_map.end()) {
      result.grad_map[t] = contribution;
      return;
    }
    TensorId sum = graph->AddOp("add", {}, {it->second, contribution});
    OpNode& agg = graph->op(graph->tensor(sum).producer);
    agg.is_backward = true;
    agg.is_grad_agg = true;
    agg.forward_op = fw_op.id;
    // MXNet aggregates gradients in place; the TF-mode runtime flag disables this.
    agg.inplace_input = 0;
    agg.unroll_key = fw_op.unroll_key.empty() ? "" : fw_op.unroll_key + "/grad_agg";
    agg.timestep = fw_op.timestep;
    it->second = sum;
  };

  // The snapshot below iterates only over forward ops; rules append backward ops.
  const std::vector<OpId> order = ReverseTopoOrder(*graph);
  const int num_forward_ops = graph->num_ops();
  for (OpId id : order) {
    if (id >= num_forward_ops) {
      continue;
    }
    // Copy: rules mutate the graph and may invalidate references.
    const OpNode op = graph->op(id);
    auto dy_it = result.grad_map.find(op.output);
    if (dy_it == result.grad_map.end()) {
      continue;  // output does not influence the loss
    }
    std::vector<bool> need(op.inputs.size(), false);
    bool any = false;
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      need[i] = needs_grad[static_cast<size_t>(op.inputs[i])];
      any = any || need[i];
    }
    if (!any) {
      continue;
    }
    auto rule = GradRules().find(op.type);
    TOFU_CHECK(rule != GradRules().end()) << "no gradient rule for op type " << op.type;

    const int first_new_op = graph->num_ops();
    std::vector<TensorId> grads = rule->second(graph, op, dy_it->second, need);
    TOFU_CHECK_EQ(grads.size(), op.inputs.size()) << op.type;
    // Annotate every op the rule emitted as backward ops of `op`. Unrolled forward ops
    // propagate their unroll key so the per-timestep backward ops (and their intermediate
    // tensors) coalesce across timesteps exactly like the forward ones (§5.1). Keys are
    // indexed per op *type* (not emission order): boundary timesteps may skip dead
    // gradients (e.g. no dX at t=1), and positional indices would collide ops of
    // different types -- and shapes -- into one unit.
    std::unordered_map<std::string, int> type_counter;
    for (OpId b = first_new_op; b < graph->num_ops(); ++b) {
      OpNode& bw = graph->op(b);
      bw.is_backward = true;
      bw.forward_op = op.id;
      if (!op.unroll_key.empty() && bw.unroll_key.empty()) {
        const int nth = type_counter[bw.type]++;
        bw.unroll_key = op.unroll_key + "/bwd_" + bw.type + std::to_string(nth);
        bw.timestep = op.timestep;
        TensorNode& out = graph->tensor(bw.output);
        if (out.unroll_key.empty()) {
          out.unroll_key = bw.unroll_key + "/out";
          out.timestep = op.timestep;
        }
      }
    }
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      if (!need[i] || grads[i] == kNoTensor) {
        continue;
      }
      accumulate(op.inputs[i], grads[i], op);
    }
  }

  // Link gradient tensors to their forward tensors (used by coarsening).
  for (const auto& [fwd, grad] : result.grad_map) {
    TensorNode& g = graph->tensor(grad);
    if (g.grad_of == kNoTensor) {
      g.grad_of = fwd;
      if (!graph->tensor(fwd).unroll_key.empty() && g.unroll_key.empty()) {
        g.unroll_key = graph->tensor(fwd).unroll_key + "/grad";
        g.timestep = graph->tensor(fwd).timestep;
      }
    }
  }
  return result;
}

std::vector<TensorId> BuildAdagradUpdates(Graph* graph, const AutodiffResult& grads) {
  std::vector<TensorId> history;
  for (TensorId w : graph->ParamIds()) {
    auto it = grads.grad_map.find(w);
    TOFU_CHECK(it != grads.grad_map.end())
        << "parameter " << graph->tensor(w).name << " has no gradient";
    const TensorId g = it->second;
    const TensorId h = graph->AddOptState(graph->tensor(w).name + "/hist",
                                          graph->tensor(w).shape);
    history.push_back(h);

    TensorId h2 = graph->AddOp("adagrad_hist", {}, {h, g});
    OpNode& hist_op = graph->op(graph->tensor(h2).producer);
    hist_op.is_update = true;
    hist_op.inplace_input = 0;

    TensorId w2 = graph->AddOp("adagrad_update", OpAttrs().SetF("lr", 0.01), {w, g, h2});
    OpNode& update_op = graph->op(graph->tensor(w2).producer);
    update_op.is_update = true;
    update_op.inplace_input = 0;
  }
  return history;
}

}  // namespace tofu
