// Backward-pass generation (the "system-generated backward propagation phase" of §5.1).
//
// BuildBackward extends a forward graph in place with gradient operators, linking each
// backward op to its forward op (OpNode::forward_op) and each gradient tensor to its
// forward tensor (TensorNode::grad_of) -- exactly the structure the coarsening pass groups.
// Tensors consumed by several forward ops get their gradient contributions summed with
// `add` ops marked is_grad_agg, matching the chain-rule summation the paper folds into the
// weight tensor's group.
#ifndef TOFU_GRAPH_AUTODIFF_H_
#define TOFU_GRAPH_AUTODIFF_H_

#include <unordered_map>
#include <vector>

#include "tofu/graph/graph.h"

namespace tofu {

struct AutodiffResult {
  // Forward tensor id -> gradient tensor id (only tensors on a params->loss path).
  std::unordered_map<TensorId, TensorId> grad_map;
  // The seed gradient input (d loss, same shape as the loss tensor).
  TensorId loss_grad = kNoTensor;
};

// Differentiates `loss` with respect to every tensor marked requires_grad. The loss may
// have any rank (training losses are rank-0). Aborts if a required op type has no
// registered gradient rule.
AutodiffResult BuildBackward(Graph* graph, TensorId loss);

// Appends Adagrad update operators for every parameter: h += g^2 (in place on the history
// buffer), w -= lr * g / (sqrt(h) + eps) (in place on the weight). Creates one history
// tensor per parameter, giving the paper's 3W steady-state weight memory (§7.1).
// Returns the history tensors (index-aligned with graph->ParamIds()).
std::vector<TensorId> BuildAdagradUpdates(Graph* graph, const AutodiffResult& grads);

// True if a gradient rule is registered for the op type.
bool HasGradRule(const std::string& op_type);

}  // namespace tofu

#endif  // TOFU_GRAPH_AUTODIFF_H_
