// Graph traversal helpers: deterministic topological orders and reachability. The DP
// processes coarsened groups in program order and the simulator schedules lowered tasks
// deterministically, so every traversal here is stable across runs by construction.
#ifndef TOFU_GRAPH_TRAVERSAL_H_
#define TOFU_GRAPH_TRAVERSAL_H_

#include <vector>

#include "tofu/graph/graph.h"

namespace tofu {

// Kahn's algorithm with an id-ordered ready queue: deterministic across runs, which keeps
// plans, schedules and memory layouts reproducible.
std::vector<OpId> TopoOrder(const Graph& graph);

// TopoOrder reversed.
std::vector<OpId> ReverseTopoOrder(const Graph& graph);

// Ops whose output (transitively) feeds `target`. Includes target's producer.
std::vector<bool> AncestorOps(const Graph& graph, TensorId target);

// Tensors from which `loss` is reachable AND that transitively depend on a tensor with
// requires_grad (the set autodiff must differentiate through).
std::vector<bool> NeedsGrad(const Graph& graph, TensorId loss);

}  // namespace tofu

#endif  // TOFU_GRAPH_TRAVERSAL_H_
