#include "tofu/graph/graph.h"

#include "tofu/util/logging.h"

namespace tofu {

TensorId Graph::NewTensor(const std::string& name, Shape shape) {
  TensorNode node;
  node.id = static_cast<TensorId>(tensors_.size());
  node.name = name.empty() ? ("t" + std::to_string(node.id)) : name;
  node.shape = std::move(shape);
  tensors_.push_back(std::move(node));
  return tensors_.back().id;
}

TensorId Graph::AddInput(const std::string& name, Shape shape) {
  TensorId id = NewTensor(name, std::move(shape));
  tensors_[static_cast<size_t>(id)].is_input = true;
  return id;
}

TensorId Graph::AddParam(const std::string& name, Shape shape) {
  TensorId id = NewTensor(name, std::move(shape));
  TensorNode& t = tensors_[static_cast<size_t>(id)];
  t.is_param = true;
  t.requires_grad = true;
  return id;
}

TensorId Graph::AddOptState(const std::string& name, Shape shape) {
  TensorId id = NewTensor(name, std::move(shape));
  tensors_[static_cast<size_t>(id)].is_opt_state = true;
  return id;
}

TensorId Graph::AddOp(const std::string& type, OpAttrs attrs, std::vector<TensorId> inputs,
                      const std::string& name_hint) {
  OpRegistry& registry = OpRegistry::Get();
  TOFU_CHECK(registry.Has(type)) << "unregistered op type: " << type;

  std::vector<Shape> input_shapes;
  input_shapes.reserve(inputs.size());
  for (TensorId t : inputs) {
    TOFU_CHECK_GE(t, 0);
    TOFU_CHECK_LT(t, num_tensors());
    input_shapes.push_back(tensor(t).shape);
  }
  Shape out_shape = registry.InferShape(type, input_shapes, attrs);

  OpNode op;
  op.id = static_cast<OpId>(ops_.size());
  op.type = type;
  op.attrs = std::move(attrs);
  op.inputs = std::move(inputs);
  const std::string out_name =
      name_hint.empty() ? (type + "_" + std::to_string(op.id)) : name_hint;
  op.output = NewTensor(out_name, std::move(out_shape));
  tensors_[static_cast<size_t>(op.output)].producer = op.id;
  for (TensorId t : op.inputs) {
    tensors_[static_cast<size_t>(t)].consumers.push_back(op.id);
  }
  ops_.push_back(std::move(op));
  semantics_cache_.emplace_back(nullptr);
  return ops_.back().output;
}

std::vector<Shape> Graph::InputShapes(const OpNode& op) const {
  std::vector<Shape> shapes;
  shapes.reserve(op.inputs.size());
  for (TensorId t : op.inputs) {
    shapes.push_back(tensor(t).shape);
  }
  return shapes;
}

std::vector<int> Graph::InputRanks(const OpNode& op) const {
  std::vector<int> ranks;
  ranks.reserve(op.inputs.size());
  for (TensorId t : op.inputs) {
    ranks.push_back(tensor(t).rank());
  }
  return ranks;
}

const OpSemantics& Graph::SemanticsOf(const OpNode& op) const {
  // Lock-free memoization: the registry returns a stable pointer for identical
  // (type, attrs, ranks) keys, so two threads racing on an unresolved slot store the
  // same value -- no winner/loser, no lock on the search's hottest lookup.
  std::atomic<const OpSemantics*>& slot = semantics_cache_[static_cast<size_t>(op.id)];
  const OpSemantics* cached = slot.load(std::memory_order_acquire);
  if (cached == nullptr) {
    cached = &OpRegistry::Get().Semantics(op.type, op.attrs, InputRanks(op));
    slot.store(cached, std::memory_order_release);
  }
  return *cached;
}

std::int64_t Graph::TotalParamBytes() const {
  std::int64_t total = 0;
  for (const TensorNode& t : tensors_) {
    if (t.is_param) {
      total += t.bytes();
    }
  }
  return total;
}

std::int64_t Graph::TotalOptStateBytes() const {
  std::int64_t total = 0;
  for (const TensorNode& t : tensors_) {
    if (t.is_opt_state) {
      total += t.bytes();
    }
  }
  return total;
}

std::vector<TensorId> Graph::ParamIds() const {
  std::vector<TensorId> ids;
  for (const TensorNode& t : tensors_) {
    if (t.is_param) {
      ids.push_back(t.id);
    }
  }
  return ids;
}

namespace {

// FNV-1a, folded incrementally; 64-bit offset basis / prime.
inline void HashMix(std::uint64_t* h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xFF;
    *h *= 0x100000001b3ull;
  }
}

inline void HashMixString(std::uint64_t* h, const std::string& s) {
  HashMix(h, s.size());
  for (char c : s) {
    *h ^= static_cast<unsigned char>(c);
    *h *= 0x100000001b3ull;
  }
}

}  // namespace

std::uint64_t GraphSignature(const Graph& graph) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  HashMix(&h, static_cast<std::uint64_t>(graph.num_tensors()));
  HashMix(&h, static_cast<std::uint64_t>(graph.num_ops()));
  for (const TensorNode& t : graph.tensors()) {
    HashMix(&h, static_cast<std::uint64_t>(t.shape.size()));
    for (std::int64_t d : t.shape) {
      HashMix(&h, static_cast<std::uint64_t>(d));
    }
    HashMix(&h, static_cast<std::uint64_t>(t.elem_size));
    HashMix(&h, static_cast<std::uint64_t>(t.producer));
    HashMix(&h, static_cast<std::uint64_t>(t.grad_of));
    HashMix(&h, static_cast<std::uint64_t>((t.is_input ? 1 : 0) | (t.is_param ? 2 : 0) |
                                           (t.is_opt_state ? 4 : 0) |
                                           (t.requires_grad ? 8 : 0)));
    HashMixString(&h, t.unroll_key);
    HashMix(&h, static_cast<std::uint64_t>(t.timestep));
  }
  for (const OpNode& op : graph.ops()) {
    HashMixString(&h, op.type);
    HashMixString(&h, op.attrs.Signature());
    HashMix(&h, static_cast<std::uint64_t>(op.inputs.size()));
    for (TensorId t : op.inputs) {
      HashMix(&h, static_cast<std::uint64_t>(t));
    }
    HashMix(&h, static_cast<std::uint64_t>(op.output));
    HashMix(&h, static_cast<std::uint64_t>(op.forward_op));
    HashMix(&h, static_cast<std::uint64_t>((op.is_backward ? 1 : 0) | (op.is_update ? 2 : 0) |
                                           (op.is_grad_agg ? 4 : 0)));
    HashMix(&h, static_cast<std::uint64_t>(op.inplace_input));
    HashMixString(&h, op.unroll_key);
    HashMix(&h, static_cast<std::uint64_t>(op.timestep));
  }
  return h;
}

}  // namespace tofu
