// Graph validation: every structural invariant a well-formed training graph satisfies.
// Split from graph.cc so the check logic can grow without crowding the container.
#include "tofu/graph/graph.h"
#include "tofu/util/logging.h"

namespace tofu {

void ValidateGraph(const Graph& graph) {
  OpRegistry& registry = OpRegistry::Get();

  for (const OpNode& op : graph.ops()) {
    TOFU_CHECK(registry.Has(op.type)) << op.type;
    // Shapes must re-infer to the recorded output shape.
    Shape inferred = registry.InferShape(op.type, graph.InputShapes(op), op.attrs);
    const TensorNode& out = graph.tensor(op.output);
    TOFU_CHECK(inferred == out.shape)
        << "op " << op.id << " (" << op.type << "): recorded output shape "
        << ShapeToString(out.shape) << " != inferred " << ShapeToString(inferred);
    TOFU_CHECK_EQ(out.producer, op.id);
    // Every input lists this op as a consumer.
    for (TensorId t : op.inputs) {
      const auto& consumers = graph.tensor(t).consumers;
      bool found = false;
      for (OpId c : consumers) {
        found = found || c == op.id;
      }
      TOFU_CHECK(found) << "tensor " << t << " missing consumer op " << op.id;
    }
    if (op.inplace_input >= 0) {
      TOFU_CHECK_LT(op.inplace_input, static_cast<int>(op.inputs.size()));
      const TensorNode& aliased =
          graph.tensor(op.inputs[static_cast<size_t>(op.inplace_input)]);
      TOFU_CHECK_EQ(aliased.bytes(), out.bytes())
          << "in-place op " << op.id << " with size-changing alias";
    }
    // TDL semantics must be resolvable, and the description's arity must match.
    const OpSemantics& sem = graph.SemanticsOf(op);
    TOFU_CHECK_EQ(sem.desc.num_inputs, static_cast<int>(op.inputs.size()));
    TOFU_CHECK_EQ(sem.desc.num_output_dims, out.rank())
        << "op " << op.type << ": description rank " << sem.desc.num_output_dims
        << " vs output rank " << out.rank();
  }

  for (const TensorNode& t : graph.tensors()) {
    if (t.producer != kNoOp) {
      TOFU_CHECK_EQ(graph.op(t.producer).output, t.id);
      TOFU_CHECK(!t.is_input) << "produced tensor marked as graph input: " << t.name;
    }
    if (t.grad_of != kNoTensor) {
      const TensorNode& fwd = graph.tensor(t.grad_of);
      TOFU_CHECK(fwd.shape == t.shape)
          << "gradient shape mismatch: " << t.name << " vs " << fwd.name;
    }
  }
}

}  // namespace tofu
