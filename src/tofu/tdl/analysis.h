// TDL region analysis and partition-strategy discovery (paper §4.2).
//
// The analyzer symbolically executes an operator's TDL body with each index variable bound
// to a symbolic interval, yielding the input regions each worker must read. Running the
// analysis once with full ranges and once with the candidate partition variable's range
// halved classifies, per input dimension, whether splitting that variable splits the input
// (possibly with a halo) or forces full replication:
//
//   * case-1 strategies partition an output variable: the final output is the
//     concatenation of the workers' outputs along that dimension;
//   * case-2 strategies partition a reduction variable: each worker produces a
//     partial result and the final output is their element-wise reduction.
#ifndef TOFU_TDL_ANALYSIS_H_
#define TOFU_TDL_ANALYSIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tofu/tdl/expr.h"
#include "tofu/tdl/interval.h"

namespace tofu {

// Access region of one input dimension. `whole` marks an opaque ":" slice whose extent is
// unrelated to any index variable.
struct DimRegion {
  bool whole = false;
  bool initialized = false;
  SymInterval interval;
};

// Union of all accesses to one input across the body. `accessed` is false only for inputs
// never touched (Build() rejects those, but partial analyses may produce them).
struct InputRegion {
  bool accessed = false;
  std::vector<DimRegion> dims;
};

// Environment binding every index variable of the description to a symbolic interval.
using VarEnv = std::vector<SymInterval>;

// Returns the environment where every variable spans its full range [0, X_v].
VarEnv FullEnv(const OpDesc& desc);

// Symbolically executes `desc.body` under `env` and returns the per-input access regions.
std::vector<InputRegion> ComputeInputRegions(const OpDesc& desc, const VarEnv& env);

// What one worker needs of an input under a basic partition strategy.
struct InputReq {
  enum class Kind {
    kSplit,       // the input splits along `dim` (plus `halo_width` extra elements)
    kReplicated,  // each worker reads the whole input
  };
  Kind kind = Kind::kReplicated;
  int dim = -1;
  bool has_halo = false;
  // Extra elements along `dim` beyond the even share, as an affine form over the
  // description's variable bounds (e.g. the filter-window extent for convolution).
  AffineForm halo_width;
};

// A basic (two-worker, single-dimension) partition strategy discovered from the TDL
// description. Strategies are shape-independent; Concretize() resolves them for an op
// instance with known shapes.
struct BasicStrategy {
  VarId var = -1;
  std::string var_name;
  bool is_reduction = false;      // case-2
  ReduceKind reducer = ReduceKind::kSum;
  int output_dim = -1;            // case-1: which output dimension is split
  std::vector<InputReq> inputs;   // one per input

  std::string ToString(const OpDesc& desc) const;
};

// Discovers every basic partition strategy of `desc`. Variables that index opaque results
// are skipped (partitioning them would duplicate the opaque computation); reduction
// variables are skipped when the reduction is not combinable at the root (partial results
// could not be merged element-wise).
std::vector<BasicStrategy> DiscoverStrategies(const OpDesc& desc);

// ---------------------------------------------------------------------------------------
// Concretization for op instances with known shapes.

struct ConcreteInputReq {
  InputReq::Kind kind = InputReq::Kind::kReplicated;
  int dim = -1;
  std::int64_t halo_elems = 0;  // extra elements along `dim` per worker
};

struct ConcreteStrategy {
  VarId var = -1;
  bool is_reduction = false;
  ReduceKind reducer = ReduceKind::kSum;
  int output_dim = -1;
  std::int64_t var_extent = 0;  // concrete extent of the partitioned variable
  std::vector<ConcreteInputReq> inputs;
};

// Binds each variable's symbolic bound X_v to its concrete extent given the instance's
// input and output shapes (output vars from the output shape; reduce vars via their
// ExtentSource).
std::vector<std::int64_t> BindVarExtents(const OpDesc& desc,
                                         const std::vector<std::vector<std::int64_t>>& inputs,
                                         const std::vector<std::int64_t>& output);

ConcreteStrategy Concretize(const BasicStrategy& strategy,
                            const std::vector<std::int64_t>& var_extents);

}  // namespace tofu

#endif  // TOFU_TDL_ANALYSIS_H_
