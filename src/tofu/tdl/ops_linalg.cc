// TDL descriptions for linear-algebra operators: the matmul family (including the
// transposed variants used by autodiff), reductions, transpose, the paper's running
// examples (conv1d, shift_two) and the opaque batched Cholesky of Figure 3.
#include "tofu/tdl/registry.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

double MatmulFlops(std::int64_t m, std::int64_t k, std::int64_t n) {
  return 2.0 * static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
}

void RegisterMatmul(OpRegistry* registry) {
  // matmul: [M,K] x [K,N] -> [M,N]
  OpRegistry::OpTypeInfo info;
  info.name = "matmul";
  info.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("matmul", 2);
    IndexVar m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({m, k}) * b.In(1)({k, n})));
  };
  info.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][1], in[1][0]) << "matmul inner-dimension mismatch";
    return Shape{in[0][0], in[1][1]};
  };
  info.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return MatmulFlops(in[0][0], in[0][1], in[1][1]);
  };
  info.op_class = OpClass::kMatmul;
  registry->Register(std::move(info));

  // matmul_tn: A^T B with A:[K,M], B:[K,N] -> [M,N] (weight gradients: dW = X^T dY).
  OpRegistry::OpTypeInfo tn;
  tn.name = "matmul_tn";
  tn.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("matmul_tn", 2);
    IndexVar m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({k, m}) * b.In(1)({k, n})));
  };
  tn.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][0], in[1][0]) << "matmul_tn inner-dimension mismatch";
    return Shape{in[0][1], in[1][1]};
  };
  tn.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return MatmulFlops(in[0][1], in[0][0], in[1][1]);
  };
  tn.op_class = OpClass::kMatmul;
  registry->Register(std::move(tn));

  // matmul_nt: A B^T with A:[M,K], B:[N,K] -> [M,N] (data gradients: dX = dY W^T).
  OpRegistry::OpTypeInfo nt;
  nt.name = "matmul_nt";
  nt.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("matmul_nt", 2);
    IndexVar m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({m, k}) * b.In(1)({n, k})));
  };
  nt.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][1], in[1][1]) << "matmul_nt inner-dimension mismatch";
    return Shape{in[0][0], in[1][0]};
  };
  nt.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return MatmulFlops(in[0][0], in[0][1], in[1][0]);
  };
  nt.op_class = OpClass::kMatmul;
  registry->Register(std::move(nt));
}

void RegisterReductionsAndLayout(OpRegistry* registry) {
  // reduce_rows: [B,N] -> [N], the gradient of a broadcast bias add.
  OpRegistry::OpTypeInfo rr;
  rr.name = "reduce_rows";
  rr.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("reduce_rows", 1);
    IndexVar j = b.Out("j");
    IndexVar i = b.Red("i");
    return std::move(b).Build(b.Sum({i}, b.In(0)({i, j})));
  };
  rr.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return Shape{in[0][1]}; };
  rr.flops_fn = nullptr;
  rr.op_class = OpClass::kBandwidth;
  registry->Register(std::move(rr));

  // reduce_mean_all: [B] -> scalar (rank 0). Used for the final loss value.
  OpRegistry::OpTypeInfo rs;
  rs.name = "reduce_mean_all";
  rs.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("reduce_mean_all", 1);
    IndexVar i = b.Red("i");
    return std::move(b).Build(b.Sum({i}, b.In(0)({i})) * 1.0);
  };
  rs.shape_fn = [](const std::vector<Shape>&, const OpAttrs&) { return Shape{}; };
  rs.flops_fn = nullptr;
  rs.op_class = OpClass::kBandwidth;
  registry->Register(std::move(rs));

  // broadcast_rows: [N] -> [attr("rows"), N] (adjoint of reduce_rows).
  OpRegistry::OpTypeInfo br;
  br.name = "broadcast_rows";
  br.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("broadcast_rows", 1);
    b.Out("i");
    IndexVar j = b.Out("j");
    return std::move(b).Build(b.In(0)({IndexExpr(j)}));
  };
  br.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    return Shape{attrs.GetInt("rows"), in[0][0]};
  };
  br.flops_fn = nullptr;
  br.op_class = OpClass::kBandwidth;
  registry->Register(std::move(br));

  // broadcast_scalar: scalar -> [attr("n")] (adjoint of reduce_mean_all).
  OpRegistry::OpTypeInfo bs;
  bs.name = "broadcast_scalar";
  bs.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("broadcast_scalar", 1);
    b.Out("i");
    return std::move(b).Build(b.In(0)(std::vector<IndexExpr>{}) * 1.0);
  };
  bs.shape_fn = [](const std::vector<Shape>&, const OpAttrs& attrs) {
    return Shape{attrs.GetInt("n")};
  };
  bs.flops_fn = nullptr;
  bs.op_class = OpClass::kBandwidth;
  registry->Register(std::move(bs));

  // scale_rows: X [B,N] scaled row-wise by s [B].
  OpRegistry::OpTypeInfo sr;
  sr.name = "scale_rows";
  sr.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("scale_rows", 2);
    IndexVar i = b.Out("i"), j = b.Out("j");
    return std::move(b).Build(b.In(0)({i, j}) * b.In(1)({IndexExpr(i)}));
  };
  sr.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  sr.flops_fn = nullptr;
  sr.op_class = OpClass::kBandwidth;
  registry->Register(std::move(sr));

  // transpose2d: out[i,j] = in[j,i].
  OpRegistry::OpTypeInfo tr;
  tr.name = "transpose2d";
  tr.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("transpose2d", 1);
    IndexVar i = b.Out("i"), j = b.Out("j");
    return std::move(b).Build(b.In(0)({j, i}));
  };
  tr.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][1], in[0][0]};
  };
  tr.flops_fn = nullptr;
  tr.op_class = OpClass::kBandwidth;
  registry->Register(std::move(tr));
}

void RegisterPaperExamples(OpRegistry* registry) {
  // conv1d (paper Figures 1-3): data [B,Ci,X], filters [Ci,Co,Dx] -> out [B,Co,X-Dx+1].
  OpRegistry::OpTypeInfo c1;
  c1.name = "conv1d";
  c1.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("conv1d", 2);
    IndexVar bb = b.Out("b"), co = b.Out("co"), x = b.Out("x");
    IndexVar ci = b.Red("ci"), dx = b.Red("dx");
    return std::move(b).Build(
        b.Sum({ci, dx}, b.In(0)({bb, ci, x + dx}) * b.In(1)({ci, co, dx})));
  };
  c1.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][0], in[1][1], in[0][2] - in[1][2] + 1};
  };
  c1.flops_fn = [](const std::vector<Shape>& in, const Shape& out, const OpAttrs&) {
    return 2.0 * static_cast<double>(NumElements(out)) * static_cast<double>(in[1][0]) *
           static_cast<double>(in[1][2]);
  };
  c1.op_class = OpClass::kConv;
  registry->Register(std::move(c1));

  // shift_two (paper §4.2): out[i] = in[i+2].
  OpRegistry::OpTypeInfo sh;
  sh.name = "shift_two";
  sh.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("shift_two", 1);
    IndexVar i = b.Out("i");
    return std::move(b).Build(b.In(0)({i + 2.0}));
  };
  sh.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][0] - 2};
  };
  sh.flops_fn = nullptr;
  sh.op_class = OpClass::kBandwidth;
  registry->Register(std::move(sh));

  // batch_cholesky (paper Figure 3): out[b,i,j] = Cholesky(in[b,:,:])[i,j]. Only the
  // batch dimension is partitionable.
  OpRegistry::OpTypeInfo bc;
  bc.name = "batch_cholesky";
  bc.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("batch_cholesky", 1);
    IndexVar bb = b.Out("b"), i = b.Out("i"), j = b.Out("j");
    return std::move(b).Build(b.Opaque("cholesky", 0, {IndexExpr(bb), std::nullopt, std::nullopt},
                                       {IndexExpr(i), IndexExpr(j)}));
  };
  bc.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  bc.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    // B * n^3/3 multiply-adds.
    const double n = static_cast<double>(in[0][1]);
    return static_cast<double>(in[0][0]) * n * n * n / 3.0;
  };
  bc.op_class = OpClass::kMatmul;
  registry->Register(std::move(bc));
}

}  // namespace

void RegisterLinalgOps(OpRegistry* registry) {
  RegisterMatmul(registry);
  RegisterReductionsAndLayout(registry);
  RegisterPaperExamples(registry);
}

}  // namespace tofu
