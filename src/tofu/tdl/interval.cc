#include "tofu/tdl/interval.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

AffineForm::AffineForm(int num_symbols, double constant)
    : coeffs_(static_cast<size_t>(num_symbols), 0.0), constant_(constant) {}

AffineForm AffineForm::Symbol(int num_symbols, int symbol, double coeff) {
  AffineForm f(num_symbols, 0.0);
  TOFU_CHECK_GE(symbol, 0);
  TOFU_CHECK_LT(symbol, num_symbols);
  f.coeffs_[static_cast<size_t>(symbol)] = coeff;
  return f;
}

AffineForm AffineForm::Constant(int num_symbols, double value) {
  return AffineForm(num_symbols, value);
}

AffineForm& AffineForm::operator+=(const AffineForm& other) {
  TOFU_CHECK_EQ(num_symbols(), other.num_symbols());
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    coeffs_[i] += other.coeffs_[i];
  }
  constant_ += other.constant_;
  return *this;
}

AffineForm& AffineForm::operator-=(const AffineForm& other) {
  TOFU_CHECK_EQ(num_symbols(), other.num_symbols());
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    coeffs_[i] -= other.coeffs_[i];
  }
  constant_ -= other.constant_;
  return *this;
}

AffineForm& AffineForm::operator*=(double k) {
  for (double& c : coeffs_) {
    c *= k;
  }
  constant_ *= k;
  return *this;
}

AffineForm& AffineForm::operator+=(double k) {
  constant_ += k;
  return *this;
}

bool AffineForm::ApproxEquals(const AffineForm& other, double tol) const {
  if (num_symbols() != other.num_symbols()) {
    return false;
  }
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (std::abs(coeffs_[i] - other.coeffs_[i]) > tol) {
      return false;
    }
  }
  return std::abs(constant_ - other.constant_) <= tol;
}

bool AffineForm::IsZero(double tol) const {
  for (double c : coeffs_) {
    if (std::abs(c) > tol) {
      return false;
    }
  }
  return std::abs(constant_) <= tol;
}

bool AffineForm::IsNonNegative(double tol) const {
  for (double c : coeffs_) {
    if (c < -tol) {
      return false;
    }
  }
  return constant_ >= -tol;
}

double AffineForm::Eval(const std::vector<std::int64_t>& symbol_values) const {
  TOFU_CHECK_EQ(symbol_values.size(), coeffs_.size());
  double out = constant_;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    out += coeffs_[i] * static_cast<double>(symbol_values[i]);
  }
  return out;
}

std::string AffineForm::ToString(const std::vector<std::string>& symbol_names) const {
  std::ostringstream out;
  bool first = true;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (std::abs(coeffs_[i]) < 1e-12) {
      continue;
    }
    if (!first && coeffs_[i] >= 0) {
      out << "+";
    }
    if (std::abs(coeffs_[i] - 1.0) < 1e-12) {
      out << symbol_names[i];
    } else {
      out << StrFormat("%g*%s", coeffs_[i], symbol_names[i].c_str());
    }
    first = false;
  }
  if (std::abs(constant_) > 1e-12 || first) {
    if (!first && constant_ >= 0) {
      out << "+";
    }
    out << StrFormat("%g", constant_);
  }
  return out.str();
}

SymInterval SymInterval::FullRange(int num_symbols, int symbol) {
  return SymInterval{AffineForm::Constant(num_symbols, 0.0),
                     AffineForm::Symbol(num_symbols, symbol)};
}

SymInterval SymInterval::Slice(int num_symbols, int symbol, double lo_frac, double hi_frac) {
  return SymInterval{AffineForm::Symbol(num_symbols, symbol, lo_frac),
                     AffineForm::Symbol(num_symbols, symbol, hi_frac)};
}

SymInterval SymInterval::Point(int num_symbols, double value) {
  return SymInterval{AffineForm::Constant(num_symbols, value),
                     AffineForm::Constant(num_symbols, value)};
}

SymInterval& SymInterval::operator+=(const SymInterval& other) {
  lo += other.lo;
  hi += other.hi;
  return *this;
}

SymInterval& SymInterval::operator-=(const SymInterval& other) {
  // [a,b] - [c,d] = [a-d, b-c]
  AffineForm new_lo = lo - other.hi;
  AffineForm new_hi = hi - other.lo;
  lo = std::move(new_lo);
  hi = std::move(new_hi);
  return *this;
}

SymInterval& SymInterval::operator*=(double k) {
  lo *= k;
  hi *= k;
  if (k < 0) {
    std::swap(lo, hi);
  }
  return *this;
}

SymInterval& SymInterval::operator+=(double k) {
  lo += k;
  hi += k;
  return *this;
}

SymInterval SymInterval::Union(const SymInterval& a, const SymInterval& b) {
  TOFU_CHECK_EQ(a.lo.num_symbols(), b.lo.num_symbols());
  const int n = a.lo.num_symbols();
  AffineForm lo(n, std::min(a.lo.constant(), b.lo.constant()));
  AffineForm hi(n, std::max(a.hi.constant(), b.hi.constant()));
  AffineForm lo_min(n, 0.0);
  AffineForm hi_max(n, 0.0);
  for (int i = 0; i < n; ++i) {
    lo_min += AffineForm::Symbol(n, i, std::min(a.lo.coeff(i), b.lo.coeff(i)));
    hi_max += AffineForm::Symbol(n, i, std::max(a.hi.coeff(i), b.hi.coeff(i)));
  }
  return SymInterval{lo + lo_min, hi + hi_max};
}

bool SymInterval::ApproxEquals(const SymInterval& other, double tol) const {
  return lo.ApproxEquals(other.lo, tol) && hi.ApproxEquals(other.hi, tol);
}

std::string SymInterval::ToString(const std::vector<std::string>& symbol_names) const {
  return "[" + lo.ToString(symbol_names) + ", " + hi.ToString(symbol_names) + "]";
}

SymInterval operator+(SymInterval a, const SymInterval& b) { return a += b; }
SymInterval operator-(SymInterval a, const SymInterval& b) { return a -= b; }
SymInterval operator*(SymInterval a, double k) { return a *= k; }
SymInterval operator+(SymInterval a, double k) { return a += k; }

}  // namespace tofu
