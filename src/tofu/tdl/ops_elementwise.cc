// TDL descriptions, shape functions and cost metadata for element-wise operators.
//
// These correspond to the paper's "77 of 139 MXNet operators are simple element-wise
// operators": every input is accessed with the identity index map, so all of them share
// one rank-generic description factory and coalesce under the §5.1 grouping rule.
#include "tofu/tdl/registry.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

std::vector<IndexExpr> IdentityAccess(const std::vector<IndexVar>& vars) {
  return std::vector<IndexExpr>(vars.begin(), vars.end());
}

// Builds the description of an n-ary element-wise operator of the given rank. The actual
// arithmetic combining the operands is irrelevant to partition analysis (only the access
// pattern matters), so operands are folded with addition.
OpDesc ElementwiseDesc(const std::string& name, int num_inputs, int rank) {
  OpDescBuilder b(name, num_inputs);
  std::vector<IndexVar> vars;
  vars.reserve(static_cast<size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    vars.push_back(b.Out("x" + std::to_string(d)));
  }
  TOFU_CHECK_GE(num_inputs, 1);
  ExprPtr body = b.In(0)(IdentityAccess(vars));
  for (int i = 1; i < num_inputs; ++i) {
    body = body + b.In(i)(IdentityAccess(vars));
  }
  return std::move(b).Build(std::move(body));
}

Shape SameAsInput0(const std::vector<Shape>& inputs, const OpAttrs&) {
  TOFU_CHECK(!inputs.empty());
  return inputs[0];
}

void RegisterElementwise(OpRegistry* registry, const std::string& name, int num_inputs) {
  OpRegistry::OpTypeInfo info;
  info.name = name;
  info.desc_fn = [name, num_inputs](const OpAttrs&, const std::vector<int>& ranks) {
    TOFU_CHECK_EQ(static_cast<int>(ranks.size()), num_inputs) << "op " << name;
    for (int r : ranks) {
      TOFU_CHECK_EQ(r, ranks[0]) << "element-wise op " << name << " with mixed ranks";
    }
    return ElementwiseDesc(name, num_inputs, ranks[0]);
  };
  info.shape_fn = SameAsInput0;
  info.flops_fn = nullptr;  // bandwidth-bound
  info.op_class = OpClass::kBandwidth;
  registry->Register(std::move(info));
}

}  // namespace

void RegisterElementwiseOps(OpRegistry* registry) {
  // Binary arithmetic.
  RegisterElementwise(registry, "add", 2);
  RegisterElementwise(registry, "sub", 2);
  RegisterElementwise(registry, "mul", 2);
  RegisterElementwise(registry, "div", 2);
  RegisterElementwise(registry, "maximum", 2);

  // Unary activations and math.
  RegisterElementwise(registry, "copy", 1);
  RegisterElementwise(registry, "neg", 1);
  RegisterElementwise(registry, "relu", 1);
  RegisterElementwise(registry, "tanh", 1);
  RegisterElementwise(registry, "sigmoid", 1);
  RegisterElementwise(registry, "exp", 1);
  RegisterElementwise(registry, "log", 1);
  RegisterElementwise(registry, "sqrt", 1);
  RegisterElementwise(registry, "square", 1);
  RegisterElementwise(registry, "scale", 1);       // x * attr("k")
  RegisterElementwise(registry, "add_scalar", 1);  // x + attr("k")

  // Activation gradients: (upstream gradient, saved forward value).
  RegisterElementwise(registry, "relu_grad", 2);
  RegisterElementwise(registry, "tanh_grad", 2);
  RegisterElementwise(registry, "sigmoid_grad", 2);

  // Fused multiply-add used by LSTM cells: out = a*b + c*d.
  RegisterElementwise(registry, "fma2", 4);

  // Optimizer updates (all element-wise; see §7.1: weight + gradient + one history buffer
  // gives the paper's 3W memory accounting for Adagrad-style optimizers).
  RegisterElementwise(registry, "sgd_update", 2);       // w' = w - lr*g
  RegisterElementwise(registry, "adagrad_hist", 2);     // h' = h + g*g
  RegisterElementwise(registry, "adagrad_update", 3);   // w' = w - lr*g/(sqrt(h)+eps)
}

}  // namespace tofu
