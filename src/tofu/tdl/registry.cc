#include "tofu/tdl/registry.h"

#include <sstream>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::int64_t NumElements(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) {
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  return "[" + Join(shape, ",") + "]";
}

std::int64_t OpAttrs::GetInt(const std::string& key, std::int64_t def) const {
  auto it = ints_.find(key);
  return it == ints_.end() ? def : it->second;
}

double OpAttrs::GetFloat(const std::string& key, double def) const {
  auto it = floats_.find(key);
  return it == floats_.end() ? def : it->second;
}

std::string OpAttrs::Signature() const {
  // Direct appends, no ostringstream: signatures key the semantics cache and the
  // coarsener's unit merge, so this runs once per op on the partitioner's setup path.
  std::string out;
  out.reserve(ints_.size() * 12 + floats_.size() * 16);
  for (const auto& [k, v] : ints_) {
    out += k;
    out += '=';
    out += std::to_string(v);
    out += ';';
  }
  for (const auto& [k, v] : floats_) {
    out += k;
    out += '=';
    out += StrFormat("%.17g", v);
    out += ';';
  }
  return out;
}

OpRegistry& OpRegistry::Get() {
  static OpRegistry* registry = new OpRegistry();
  return *registry;
}

OpRegistry::OpRegistry() {
  RegisterElementwiseOps(this);
  RegisterLinalgOps(this);
  RegisterNNOps(this);
  RegisterAttentionOps(this);
}

void OpRegistry::Register(OpTypeInfo info) {
  TOFU_CHECK(types_.find(info.name) == types_.end()) << "duplicate op type: " << info.name;
  std::string name = info.name;
  types_.emplace(std::move(name), std::move(info));
}

bool OpRegistry::Has(const std::string& name) const { return types_.count(name) > 0; }

const OpRegistry::OpTypeInfo& OpRegistry::Info(const std::string& name) const {
  auto it = types_.find(name);
  TOFU_CHECK(it != types_.end()) << "unknown op type: " << name;
  return it->second;
}

const OpSemantics& OpRegistry::Semantics(const std::string& name, const OpAttrs& attrs,
                                         const std::vector<int>& input_ranks) {
  std::string key = name + "|" + attrs.Signature() + "|" + Join(input_ranks, ",");
  {
    std::lock_guard<std::mutex> lock(semantics_mu_);
    auto it = semantics_cache_.find(key);
    if (it != semantics_cache_.end()) {
      return *it->second;
    }
  }
  // Discovery runs outside the lock (it is the expensive part and depends only on the
  // inputs); a concurrent discoverer of the same key loses the emplace below and its
  // duplicate is discarded -- the map keeps exactly one heap-owned entry per key.
  const OpTypeInfo& info = Info(name);
  auto semantics = std::make_unique<OpSemantics>();
  semantics->desc = info.desc_fn(attrs, input_ranks);
  semantics->strategies = DiscoverStrategies(semantics->desc);
  std::lock_guard<std::mutex> lock(semantics_mu_);
  return *semantics_cache_.emplace(std::move(key), std::move(semantics)).first->second;
}

Shape OpRegistry::InferShape(const std::string& name, const std::vector<Shape>& inputs,
                             const OpAttrs& attrs) const {
  return Info(name).shape_fn(inputs, attrs);
}

double OpRegistry::Flops(const std::string& name, const std::vector<Shape>& inputs,
                         const Shape& output, const OpAttrs& attrs) const {
  const OpTypeInfo& info = Info(name);
  if (!info.flops_fn) {
    return 0.0;
  }
  return info.flops_fn(inputs, output, attrs);
}

std::vector<std::string> OpRegistry::RegisteredNames() const {
  std::vector<std::string> names;
  names.reserve(types_.size());
  for (const auto& [name, info] : types_) {
    names.push_back(name);
  }
  return names;
}

}  // namespace tofu
