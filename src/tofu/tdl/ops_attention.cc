// TDL descriptions for the transformer-attention operator family: batched matmul (and
// the transposed variants autodiff emits), shared-weight 3-D projections, row-wise
// softmax, layer normalization, and the sequence-pooling head.
//
// None of these operators appear in the paper's workloads -- they are the generalization
// test of the TDL approach: the descriptions below are written once, and the analyzer
// discovers the partition spaces (batch-, sequence-, head/model-dimension- and
// reduction-splits) that transformer-specific systems hand-code.
//
// Row-coupled normalizations (softmax, layernorm) follow the softmax_xent pattern: the
// normalized dimension is wrapped in an Opaque application, so every leading dimension
// stays partitionable while splitting the normalized row is (correctly) rejected.
#include <string>
#include <vector>

#include "tofu/tdl/registry.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

double BatchMatmulFlops(std::int64_t batch, std::int64_t m, std::int64_t k, std::int64_t n) {
  return 2.0 * static_cast<double>(batch) * static_cast<double>(m) * static_cast<double>(k) *
         static_cast<double>(n);
}

void RegisterBatchMatmul(OpRegistry* registry) {
  // batch_matmul: [B,M,K] x [B,K,N] -> [B,M,N]. One GEMM per batch entry; the batch
  // dimension partitions cleanly, M and N partition as in 2-D matmul, and K is the
  // output-reduction (case-2) dimension.
  OpRegistry::OpTypeInfo info;
  info.name = "batch_matmul";
  info.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("batch_matmul", 2);
    IndexVar bb = b.Out("b"), m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({bb, m, k}) * b.In(1)({bb, k, n})));
  };
  info.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][0], in[1][0]) << "batch_matmul batch mismatch";
    TOFU_CHECK_EQ(in[0][2], in[1][1]) << "batch_matmul inner-dimension mismatch";
    return Shape{in[0][0], in[0][1], in[1][2]};
  };
  info.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][1], in[0][2], in[1][2]);
  };
  info.op_class = OpClass::kMatmul;
  registry->Register(std::move(info));

  // batch_matmul_tn: A^T B per batch with A:[B,K,M], B:[B,K,N] -> [B,M,N].
  OpRegistry::OpTypeInfo tn;
  tn.name = "batch_matmul_tn";
  tn.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("batch_matmul_tn", 2);
    IndexVar bb = b.Out("b"), m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({bb, k, m}) * b.In(1)({bb, k, n})));
  };
  tn.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][0], in[1][0]) << "batch_matmul_tn batch mismatch";
    TOFU_CHECK_EQ(in[0][1], in[1][1]) << "batch_matmul_tn inner-dimension mismatch";
    return Shape{in[0][0], in[0][2], in[1][2]};
  };
  tn.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][2], in[0][1], in[1][2]);
  };
  tn.op_class = OpClass::kMatmul;
  registry->Register(std::move(tn));

  // batch_matmul_nt: A B^T per batch with A:[B,M,K], B:[B,N,K] -> [B,M,N] (the
  // query-key score matmul: scores = Q K^T).
  OpRegistry::OpTypeInfo nt;
  nt.name = "batch_matmul_nt";
  nt.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("batch_matmul_nt", 2);
    IndexVar bb = b.Out("b"), m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({bb, m, k}) * b.In(1)({bb, n, k})));
  };
  nt.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][0], in[1][0]) << "batch_matmul_nt batch mismatch";
    TOFU_CHECK_EQ(in[0][2], in[1][2]) << "batch_matmul_nt inner-dimension mismatch";
    return Shape{in[0][0], in[0][1], in[1][1]};
  };
  nt.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][1], in[0][2], in[1][1]);
  };
  nt.op_class = OpClass::kMatmul;
  registry->Register(std::move(nt));
}

void RegisterLinear3d(OpRegistry* registry) {
  // linear3d: x [B,M,K] x w [K,N] -> [B,M,N]. A shared-weight projection applied to every
  // (batch, position) row -- the Q/K/V/output projections and both FFN layers. Splitting
  // the reduction dimension K shards the weight without touching the batch (the
  // output-reduction strategy layer-granularity systems miss, §7.3).
  OpRegistry::OpTypeInfo fwd;
  fwd.name = "linear3d";
  fwd.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("linear3d", 2);
    IndexVar bb = b.Out("b"), m = b.Out("m"), n = b.Out("n");
    IndexVar k = b.Red("k");
    return std::move(b).Build(b.Sum({k}, b.In(0)({bb, m, k}) * b.In(1)({k, n})));
  };
  fwd.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][2], in[1][0]) << "linear3d inner-dimension mismatch";
    return Shape{in[0][0], in[0][1], in[1][1]};
  };
  fwd.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][1], in[0][2], in[1][1]);
  };
  fwd.op_class = OpClass::kMatmul;
  registry->Register(std::move(fwd));

  // linear3d_nt: dy [B,M,N] x w [K,N] -> dx [B,M,K] (data gradient: dX = dY W^T).
  OpRegistry::OpTypeInfo nt;
  nt.name = "linear3d_nt";
  nt.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("linear3d_nt", 2);
    IndexVar bb = b.Out("b"), m = b.Out("m"), k = b.Out("k");
    IndexVar n = b.Red("n");
    return std::move(b).Build(b.Sum({n}, b.In(0)({bb, m, n}) * b.In(1)({k, n})));
  };
  nt.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][2], in[1][1]) << "linear3d_nt inner-dimension mismatch";
    return Shape{in[0][0], in[0][1], in[1][0]};
  };
  nt.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][1], in[0][2], in[1][0]);
  };
  nt.op_class = OpClass::kMatmul;
  registry->Register(std::move(nt));

  // linear3d_grad_w: x [B,M,K] x dy [B,M,N] -> dw [K,N] (weight gradient: dW = X^T dY
  // summed over batch AND sequence -- two independent output-reduction dimensions).
  OpRegistry::OpTypeInfo gw;
  gw.name = "linear3d_grad_w";
  gw.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("linear3d_grad_w", 2);
    IndexVar k = b.Out("k"), n = b.Out("n");
    IndexVar bb = b.Red("b"), m = b.Red("m");
    return std::move(b).Build(b.Sum({bb, m}, b.In(0)({bb, m, k}) * b.In(1)({bb, m, n})));
  };
  gw.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    TOFU_CHECK_EQ(in[0][0], in[1][0]) << "linear3d_grad_w batch mismatch";
    TOFU_CHECK_EQ(in[0][1], in[1][1]) << "linear3d_grad_w row mismatch";
    return Shape{in[0][2], in[1][2]};
  };
  gw.flops_fn = [](const std::vector<Shape>& in, const Shape&, const OpAttrs&) {
    return BatchMatmulFlops(in[0][0], in[0][2], in[0][1], in[1][2]);
  };
  gw.op_class = OpClass::kMatmul;
  registry->Register(std::move(gw));
}

// Index expressions for the leading (non-normalized) output variables of a rank-generic
// row-coupled op, plus the trailing normalized variable.
std::vector<IndexVar> DeclareOutVars(OpDescBuilder* b, int rank) {
  std::vector<IndexVar> vars;
  vars.reserve(static_cast<size_t>(rank));
  for (int d = 0; d < rank; ++d) {
    vars.push_back(b->Out("x" + std::to_string(d)));
  }
  return vars;
}

// Opaque row slice {x0, ..., x_{r-2}, ":"} -- affine on every leading dimension, whole on
// the normalized one.
std::vector<std::optional<IndexExpr>> RowSlice(const std::vector<IndexVar>& vars) {
  std::vector<std::optional<IndexExpr>> slice;
  for (size_t d = 0; d + 1 < vars.size(); ++d) {
    slice.emplace_back(IndexExpr(vars[d]));
  }
  slice.emplace_back(std::nullopt);
  return slice;
}

void RegisterSoftmax(OpRegistry* registry) {
  // softmax: [..., N] -> [..., N], normalized along the last dimension. Rank-generic; the
  // attention probabilities use rank 3 ([B, S_q, S_k], normalized over keys). The
  // normalization couples the whole row, so the last dimension is opaque: every leading
  // dimension partitions, the row dimension never does.
  OpRegistry::OpTypeInfo sm;
  sm.name = "softmax";
  sm.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "softmax requires rank >= 2";
    OpDescBuilder b("softmax", 1);
    std::vector<IndexVar> vars = DeclareOutVars(&b, rank);
    return std::move(b).Build(
        b.Opaque("softmax_row", 0, RowSlice(vars), {IndexExpr(vars.back())}));
  };
  sm.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  sm.flops_fn = nullptr;
  sm.op_class = OpClass::kBandwidth;
  registry->Register(std::move(sm));

  // softmax_grad: dy [..., N], y [..., N] -> dx [..., N]. The row gradient
  // y * (dy - <dy, y>) couples each row of both inputs; both are opaque row slices.
  OpRegistry::OpTypeInfo smg;
  smg.name = "softmax_grad";
  smg.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "softmax_grad requires rank >= 2";
    OpDescBuilder b("softmax_grad", 2);
    std::vector<IndexVar> vars = DeclareOutVars(&b, rank);
    const IndexExpr last(vars.back());
    ExprPtr dy_rows = b.Opaque("softmax_grad_row", 0, RowSlice(vars), {last});
    ExprPtr y_rows = b.Opaque("softmax_grad_row_y", 1, RowSlice(vars), {last});
    return std::move(b).Build(dy_rows + y_rows * 0.0);
  };
  smg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  smg.flops_fn = nullptr;
  smg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(smg));
}

void RegisterLayerNorm(OpRegistry* registry) {
  // layernorm: x [..., D], gamma [D], beta [D] -> y [..., D], normalized per row over the
  // last dimension then scaled and shifted. The mean/variance couple the row (opaque);
  // gamma/beta are element-wise along the normalized dimension.
  OpRegistry::OpTypeInfo ln;
  ln.name = "layernorm";
  ln.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "layernorm requires rank >= 2";
    OpDescBuilder b("layernorm", 3);
    std::vector<IndexVar> vars = DeclareOutVars(&b, rank);
    const IndexExpr d(vars.back());
    ExprPtr xhat = b.Opaque("layernorm_row", 0, RowSlice(vars), {d});
    return std::move(b).Build(xhat * b.In(1)({d}) + b.In(2)({d}));
  };
  ln.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  ln.flops_fn = nullptr;
  ln.op_class = OpClass::kBandwidth;
  registry->Register(std::move(ln));

  // layernorm_grad_x: dy [..., D], x [..., D], gamma [D] -> dx [..., D]. The input
  // gradient re-centers within each row, so both dy and x rows are opaque.
  OpRegistry::OpTypeInfo lgx;
  lgx.name = "layernorm_grad_x";
  lgx.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "layernorm_grad_x requires rank >= 2";
    OpDescBuilder b("layernorm_grad_x", 3);
    std::vector<IndexVar> vars = DeclareOutVars(&b, rank);
    const IndexExpr d(vars.back());
    ExprPtr dy_rows = b.Opaque("layernorm_grad_row", 0, RowSlice(vars), {d});
    ExprPtr x_rows = b.Opaque("layernorm_grad_row_x", 1, RowSlice(vars), {d});
    return std::move(b).Build(dy_rows * b.In(2)({d}) + x_rows * 0.0);
  };
  lgx.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  lgx.flops_fn = nullptr;
  lgx.op_class = OpClass::kBandwidth;
  registry->Register(std::move(lgx));

  // layernorm_grad_gamma: dy [..., D], xhat [..., D] -> dgamma [D], reducing over every
  // leading dimension -- each one an output-reduction (case-2) strategy.
  //
  // Substitution note: the true reduction operand is the *normalized* x; normalization is
  // row-local and does not change the access pattern, so the description reads x directly.
  OpRegistry::OpTypeInfo lgg;
  lgg.name = "layernorm_grad_gamma";
  lgg.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "layernorm_grad_gamma requires rank >= 2";
    OpDescBuilder b("layernorm_grad_gamma", 2);
    IndexVar d = b.Out("d");
    std::vector<IndexVar> leads;
    for (int i = 0; i + 1 < rank; ++i) {
      leads.push_back(b.Red("r" + std::to_string(i)));
    }
    std::vector<IndexExpr> idx(leads.begin(), leads.end());
    idx.emplace_back(d);
    return std::move(b).Build(b.Sum(leads, b.In(0)(idx) * b.In(1)(idx)));
  };
  lgg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0].back()};
  };
  lgg.flops_fn = nullptr;
  lgg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(lgg));

  // reduce_leading: [..., D] -> [D], summing every leading dimension (beta/bias gradients
  // of rank >= 3 operands; the rank-2 case is reduce_rows).
  OpRegistry::OpTypeInfo rl;
  rl.name = "reduce_leading";
  rl.desc_fn = [](const OpAttrs&, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    TOFU_CHECK_GE(rank, 2) << "reduce_leading requires rank >= 2";
    OpDescBuilder b("reduce_leading", 1);
    IndexVar d = b.Out("d");
    std::vector<IndexVar> leads;
    for (int i = 0; i + 1 < rank; ++i) {
      leads.push_back(b.Red("r" + std::to_string(i)));
    }
    std::vector<IndexExpr> idx(leads.begin(), leads.end());
    idx.emplace_back(d);
    return std::move(b).Build(b.Sum(leads, b.In(0)(idx)));
  };
  rl.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0].back()};
  };
  rl.flops_fn = nullptr;
  rl.op_class = OpClass::kBandwidth;
  registry->Register(std::move(rl));
}

void RegisterSequencePooling(OpRegistry* registry) {
  // mean_seq: [B,S,D] -> [B,D], the mean over positions feeding the classifier head.
  OpRegistry::OpTypeInfo ms;
  ms.name = "mean_seq";
  ms.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("mean_seq", 1);
    IndexVar bb = b.Out("b"), d = b.Out("d");
    IndexVar s = b.Red("s");
    return std::move(b).Build(b.Sum({s}, b.In(0)({bb, s, d})) * 1.0);
  };
  ms.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][0], in[0][2]};
  };
  ms.flops_fn = nullptr;
  ms.op_class = OpClass::kBandwidth;
  registry->Register(std::move(ms));

  // mean_seq_grad: dy [B,D] -> dx [B,S,D] (adjoint broadcast over positions); attr: seq.
  OpRegistry::OpTypeInfo msg;
  msg.name = "mean_seq_grad";
  msg.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("mean_seq_grad", 1);
    IndexVar bb = b.Out("b");
    b.Out("s");
    IndexVar d = b.Out("d");
    return std::move(b).Build(b.In(0)({bb, d}) * 1.0);
  };
  msg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    return Shape{in[0][0], attrs.GetInt("seq"), in[0][1]};
  };
  msg.flops_fn = nullptr;
  msg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(msg));
}

}  // namespace

void RegisterAttentionOps(OpRegistry* registry) {
  RegisterBatchMatmul(registry);
  RegisterLinear3d(registry);
  RegisterSoftmax(registry);
  RegisterLayerNorm(registry);
  RegisterSequencePooling(registry);
}

}  // namespace tofu
