#include "tofu/tdl/analysis.h"

#include <cmath>

#include "tofu/util/strings.h"

namespace tofu {
namespace {

// Evaluates an affine index expression under a variable environment.
SymInterval EvalIndex(const IndexExpr& idx, const VarEnv& env, int num_symbols) {
  SymInterval out = SymInterval::Point(num_symbols, static_cast<double>(idx.constant));
  for (const IndexExpr::Term& t : idx.terms) {
    out += env[static_cast<size_t>(t.var)] * static_cast<double>(t.coeff);
  }
  return out;
}

// Recursively collects input access regions. Value intervals are irrelevant to region
// analysis; only index expressions matter, so arithmetic nodes just recurse.
void CollectRegions(const Expr& e, const VarEnv& env, int num_symbols,
                    std::vector<InputRegion>* regions) {
  switch (e.kind()) {
    case Expr::Kind::kConst:
    case Expr::Kind::kVarRef:
      return;
    case Expr::Kind::kInput: {
      InputRegion& region = (*regions)[static_cast<size_t>(e.input_id())];
      const auto& indices = e.indices();
      if (!region.accessed) {
        region.accessed = true;
        region.dims.resize(indices.size());
      }
      for (size_t d = 0; d < indices.size(); ++d) {
        DimRegion& dim = region.dims[d];
        if (dim.whole) {
          continue;
        }
        SymInterval iv = EvalIndex(indices[d], env, num_symbols);
        dim.interval = dim.initialized ? SymInterval::Union(dim.interval, iv) : iv;
        dim.initialized = true;
      }
      return;
    }
    case Expr::Kind::kOpaque: {
      InputRegion& region = (*regions)[static_cast<size_t>(e.input_id())];
      const auto& slice = e.opaque_slice();
      if (!region.accessed) {
        region.accessed = true;
        region.dims.resize(slice.size());
      }
      for (size_t d = 0; d < slice.size(); ++d) {
        DimRegion& dim = region.dims[d];
        if (!slice[d].has_value()) {
          dim.whole = true;
        } else if (!dim.whole) {
          SymInterval iv = EvalIndex(*slice[d], env, num_symbols);
          dim.interval = dim.initialized ? SymInterval::Union(dim.interval, iv) : iv;
          dim.initialized = true;
        }
      }
      return;
    }
    case Expr::Kind::kUnary:
    case Expr::Kind::kBinary:
    case Expr::Kind::kReduce:
      for (const ExprPtr& child : e.children()) {
        CollectRegions(*child, env, num_symbols, regions);
      }
      return;
  }
}

// Combinability context for a candidate reduction variable: can the per-worker partials
// produced by splitting the variable's range be merged element-wise at the root?
//   kRoot       -- only reducer-commuting operations seen so far; any reducer works.
//   kWithin     -- already inside reductions of kind `within`; the variable's own reducer
//                  must match (Sum-of-Sum and Max-of-Max combine, Sum-under-Max does not).
//   kOpaquePath -- a non-commuting operation intervenes; not combinable.
struct CombineCtx {
  enum class Kind { kRoot, kWithin, kOpaquePath } kind = Kind::kRoot;
  ReduceKind within = ReduceKind::kSum;
};

// Finds the reducer binding `var` and decides combinability. Constant scaling commutes
// with Sum and (for positive constants) is monotone for Max/Min; any other arithmetic on
// the path — including adding a partition-invariant term, which would be applied once per
// worker — breaks combinability.
bool FindCombinableReducer(const Expr& e, VarId var, CombineCtx ctx, ReduceKind* reducer) {
  switch (e.kind()) {
    case Expr::Kind::kReduce: {
      for (VarId v : e.reduce_vars()) {
        if (v == var) {
          *reducer = e.reducer();
          if (ctx.kind == CombineCtx::Kind::kRoot) {
            return true;
          }
          return ctx.kind == CombineCtx::Kind::kWithin && ctx.within == e.reducer();
        }
      }
      CombineCtx child = ctx;
      if (ctx.kind == CombineCtx::Kind::kRoot) {
        child.kind = CombineCtx::Kind::kWithin;
        child.within = e.reducer();
      } else if (ctx.kind == CombineCtx::Kind::kWithin && ctx.within != e.reducer()) {
        child.kind = CombineCtx::Kind::kOpaquePath;
      }
      return FindCombinableReducer(*e.children()[0], var, child, reducer);
    }
    case Expr::Kind::kBinary: {
      const Expr& lhs = *e.children()[0];
      const Expr& rhs = *e.children()[1];
      const Expr* const_side = nullptr;
      if (lhs.kind() == Expr::Kind::kConst) {
        const_side = &lhs;
      } else if (rhs.kind() == Expr::Kind::kConst) {
        const_side = &rhs;
      }
      const bool is_scale =
          (e.binary_op() == BinaryOp::kMul || e.binary_op() == BinaryOp::kDiv) &&
          const_side != nullptr;
      CombineCtx child = ctx;
      bool scale_ok = is_scale;
      if (is_scale && ctx.kind == CombineCtx::Kind::kWithin &&
          (ctx.within == ReduceKind::kMax || ctx.within == ReduceKind::kMin)) {
        scale_ok = const_side->const_value() > 0.0;  // monotone scaling only
      }
      if (!scale_ok) {
        child.kind = CombineCtx::Kind::kOpaquePath;
      }
      return FindCombinableReducer(lhs, var, child, reducer) ||
             FindCombinableReducer(rhs, var, child, reducer);
    }
    case Expr::Kind::kUnary: {
      CombineCtx child = ctx;
      child.kind = CombineCtx::Kind::kOpaquePath;
      return FindCombinableReducer(*e.children()[0], var, child, reducer);
    }
    default:
      return false;
  }
}

bool ReducerIfCombinable(const Expr& root, VarId var, ReduceKind* reducer) {
  return FindCombinableReducer(root, var, CombineCtx{}, reducer);
}

}  // namespace

VarEnv FullEnv(const OpDesc& desc) {
  const int n = desc.num_vars();
  VarEnv env;
  env.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    env.push_back(SymInterval::FullRange(n, v));
  }
  return env;
}

std::vector<InputRegion> ComputeInputRegions(const OpDesc& desc, const VarEnv& env) {
  std::vector<InputRegion> regions(static_cast<size_t>(desc.num_inputs));
  CollectRegions(*desc.body, env, desc.num_vars(), &regions);
  return regions;
}

std::string BasicStrategy::ToString(const OpDesc& desc) const {
  std::string out = StrFormat("%s[%s%s]", desc.name.c_str(), is_reduction ? "reduce " : "",
                              var_name.c_str());
  std::vector<std::string> parts;
  for (size_t i = 0; i < inputs.size(); ++i) {
    const InputReq& req = inputs[i];
    if (req.kind == InputReq::Kind::kReplicated) {
      parts.push_back(StrFormat("in%zu:rep", i));
    } else {
      parts.push_back(StrFormat("in%zu:split(d%d%s)", i, req.dim, req.has_halo ? "+halo" : ""));
    }
  }
  return out + " {" + Join(parts, ", ") + "}";
}

std::vector<BasicStrategy> DiscoverStrategies(const OpDesc& desc) {
  std::vector<BasicStrategy> strategies;
  const int n = desc.num_vars();
  const VarEnv full_env = FullEnv(desc);
  const std::vector<InputRegion> full_regions = ComputeInputRegions(desc, full_env);

  for (VarId v = 0; v < n; ++v) {
    if (desc.var_in_opaque_result[static_cast<size_t>(v)]) {
      continue;  // splitting would duplicate the opaque computation
    }
    BasicStrategy strat;
    strat.var = v;
    strat.var_name = desc.VarName(v);
    strat.is_reduction = desc.IsReduceVar(v);
    if (strat.is_reduction) {
      if (!ReducerIfCombinable(*desc.body, v, &strat.reducer)) {
        continue;  // partial results could not be merged element-wise
      }
    } else {
      strat.output_dim = v;  // output variables are declared in dimension order
    }

    // Analyze with the candidate variable's range halved ("first half" run; the second
    // half is symmetric for affine indexing).
    VarEnv half_env = full_env;
    half_env[static_cast<size_t>(v)] = SymInterval::Slice(n, v, 0.0, 0.5);
    const std::vector<InputRegion> half_regions = ComputeInputRegions(desc, half_env);

    bool viable = true;
    strat.inputs.clear();
    for (int i = 0; i < desc.num_inputs && viable; ++i) {
      const InputRegion& full = full_regions[static_cast<size_t>(i)];
      const InputRegion& half = half_regions[static_cast<size_t>(i)];
      InputReq req;
      int affected_dims = 0;
      for (size_t d = 0; d < full.dims.size(); ++d) {
        if (full.dims[d].whole || half.dims[d].whole) {
          continue;  // opaque ":" slice: unaffected by any variable
        }
        const AffineForm w_full = full.dims[d].interval.Width();
        const AffineForm w_half = half.dims[d].interval.Width();
        if (w_half.ApproxEquals(w_full)) {
          continue;  // this dimension does not depend on v
        }
        ++affected_dims;
        req.kind = InputReq::Kind::kSplit;
        req.dim = static_cast<int>(d);
        // halo = w_half - w_full/2; clean splits have zero halo. A negative halo cannot
        // arise from affine indexing over [0, X/2].
        AffineForm halo = w_half - w_full * 0.5;
        if (halo.IsZero()) {
          req.has_halo = false;
          req.halo_width = AffineForm(n, 0.0);
        } else if (halo.IsNonNegative()) {
          req.has_halo = true;
          req.halo_width = halo;
        } else {
          viable = false;  // non-monotone width change: outside the supported fragment
        }
      }
      if (affected_dims > 1) {
        // Paper appendix assumption #1: one output index addresses at most one dimension
        // of each input. Descriptions violating it (e.g. A[i, i]) are not partitionable
        // along that variable.
        viable = false;
      }
      strat.inputs.push_back(req);
    }
    if (viable) {
      strategies.push_back(std::move(strat));
    }
  }
  return strategies;
}

std::vector<std::int64_t> BindVarExtents(const OpDesc& desc,
                                         const std::vector<std::vector<std::int64_t>>& inputs,
                                         const std::vector<std::int64_t>& output) {
  TOFU_CHECK_EQ(static_cast<int>(inputs.size()), desc.num_inputs);
  std::vector<std::int64_t> extents(static_cast<size_t>(desc.num_vars()), 0);
  for (int v = 0; v < desc.num_vars(); ++v) {
    const ExtentSource& src = desc.vars[static_cast<size_t>(v)].extent;
    switch (src.kind) {
      case ExtentSource::Kind::kOutputDim:
        TOFU_CHECK_LT(src.dim, static_cast<int>(output.size()))
            << "op " << desc.name << ": output rank mismatch";
        extents[static_cast<size_t>(v)] = output[static_cast<size_t>(src.dim)];
        break;
      case ExtentSource::Kind::kInputDim: {
        const auto& shape = inputs[static_cast<size_t>(src.input)];
        TOFU_CHECK_LT(src.dim, static_cast<int>(shape.size()))
            << "op " << desc.name << ": input rank mismatch";
        extents[static_cast<size_t>(v)] = static_cast<std::int64_t>(std::llround(
            static_cast<double>(shape[static_cast<size_t>(src.dim)]) / src.divisor));
        break;
      }
      case ExtentSource::Kind::kConstant:
        extents[static_cast<size_t>(v)] = src.constant;
        break;
      case ExtentSource::Kind::kUnknown:
        TOFU_LOG(Fatal) << "unbound variable extent in op " << desc.name;
        break;
    }
  }
  return extents;
}

ConcreteStrategy Concretize(const BasicStrategy& strategy,
                            const std::vector<std::int64_t>& var_extents) {
  ConcreteStrategy out;
  out.var = strategy.var;
  out.is_reduction = strategy.is_reduction;
  out.reducer = strategy.reducer;
  out.output_dim = strategy.output_dim;
  out.var_extent = var_extents[static_cast<size_t>(strategy.var)];
  out.inputs.reserve(strategy.inputs.size());
  for (const InputReq& req : strategy.inputs) {
    ConcreteInputReq creq;
    creq.kind = req.kind;
    creq.dim = req.dim;
    if (req.has_halo) {
      creq.halo_elems = static_cast<std::int64_t>(std::llround(req.halo_width.Eval(var_extents)));
    }
    out.inputs.push_back(creq);
  }
  return out;
}

}  // namespace tofu
