// Operator semantics registry.
//
// Every graph-level operator type registers:
//   * a TDL description factory (descriptions may depend on instance attributes such as
//     convolution stride, and on input ranks for rank-generic element-wise operators);
//   * a shape-inference function;
//   * a FLOP estimator and a compute class consumed by the simulator's cost model.
//
// Semantics lookups are cached per (type, attribute, rank) signature, so the partition
// strategies of an operator type are discovered exactly once.
#ifndef TOFU_TDL_REGISTRY_H_
#define TOFU_TDL_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "tofu/tdl/analysis.h"
#include "tofu/tdl/expr.h"

namespace tofu {

using Shape = std::vector<std::int64_t>;

std::int64_t NumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

// Ordered attribute bag (integers and doubles) carried by op instances.
class OpAttrs {
 public:
  OpAttrs() = default;

  OpAttrs& Set(const std::string& key, std::int64_t value) {
    ints_[key] = value;
    return *this;
  }
  OpAttrs& SetF(const std::string& key, double value) {
    floats_[key] = value;
    return *this;
  }

  std::int64_t GetInt(const std::string& key, std::int64_t def = 0) const;
  double GetFloat(const std::string& key, double def = 0.0) const;
  bool Has(const std::string& key) const { return ints_.count(key) > 0; }

  // Deterministic string form used as a cache key component.
  std::string Signature() const;

 private:
  std::map<std::string, std::int64_t> ints_;
  std::map<std::string, double> floats_;
};

// Compute class used by the simulator's kernel efficiency model.
enum class OpClass {
  kMatmul,     // GEMM-shaped: efficiency starves at small batch
  kConv,       // convolution: good utilization even at small batch
  kBandwidth,  // element-wise / data-movement: memory-bandwidth bound
};

// Cached analysis product for one (type, attrs, ranks) signature.
struct OpSemantics {
  OpDesc desc;
  std::vector<BasicStrategy> strategies;
};

class OpRegistry {
 public:
  using DescFn = std::function<OpDesc(const OpAttrs&, const std::vector<int>& input_ranks)>;
  using ShapeFn =
      std::function<Shape(const std::vector<Shape>& input_shapes, const OpAttrs&)>;
  using FlopsFn = std::function<double(const std::vector<Shape>& input_shapes,
                                       const Shape& output_shape, const OpAttrs&)>;

  struct OpTypeInfo {
    std::string name;
    DescFn desc_fn;
    ShapeFn shape_fn;
    FlopsFn flops_fn;  // null => bandwidth-bound (cost from bytes moved)
    OpClass op_class = OpClass::kBandwidth;
  };

  // The process-wide registry with all built-in operators registered.
  static OpRegistry& Get();

  void Register(OpTypeInfo info);
  bool Has(const std::string& name) const;
  const OpTypeInfo& Info(const std::string& name) const;

  // Returns the cached TDL description and discovered partition strategies. Safe to
  // call concurrently (the serving path runs searches from many threads); entries are
  // heap-owned and never erased, so returned references stay valid forever. Register()
  // itself must still finish before the first concurrent lookup.
  const OpSemantics& Semantics(const std::string& name, const OpAttrs& attrs,
                               const std::vector<int>& input_ranks);

  Shape InferShape(const std::string& name, const std::vector<Shape>& inputs,
                   const OpAttrs& attrs) const;

  // FLOPs of one execution (0 for bandwidth-bound operators).
  double Flops(const std::string& name, const std::vector<Shape>& inputs, const Shape& output,
               const OpAttrs& attrs) const;

  std::vector<std::string> RegisteredNames() const;

 private:
  OpRegistry();

  std::unordered_map<std::string, OpTypeInfo> types_;
  std::mutex semantics_mu_;  // guards semantics_cache_ (lookup + memoizing insert)
  std::unordered_map<std::string, std::unique_ptr<OpSemantics>> semantics_cache_;
};

// Registration hooks implemented by the ops_*.cc translation units.
void RegisterElementwiseOps(OpRegistry* registry);
void RegisterLinalgOps(OpRegistry* registry);
void RegisterNNOps(OpRegistry* registry);
void RegisterAttentionOps(OpRegistry* registry);

}  // namespace tofu

#endif  // TOFU_TDL_REGISTRY_H_
