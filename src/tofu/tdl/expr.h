// TDL (Tensor Description Language) abstract syntax and builder.
//
// TDL follows the paper's "tensor-as-a-lambda" design (§4.1): an operator's output tensor
// is a lambda over index variables whose body is a side-effect-free expression built from
//   * index variables (the lambda arguments and reduction variables),
//   * input tensor elements indexed by affine expressions of index variables,
//   * arithmetic on sub-expressions and constants,
//   * reductions (Sum / Max / Min / Prod) over reduction variables,
//   * opaque function applications over input slices (e.g. batched Cholesky).
//
// The C++ embedding mirrors the paper's Python DSL:
//
//   OpDescBuilder b("conv1d", /*num_inputs=*/2);
//   IndexVar bb = b.Out("b"), co = b.Out("co"), x = b.Out("x");
//   IndexVar ci = b.Red("ci"), dx = b.Red("dx");
//   OpDesc desc = std::move(b).Build(
//       Sum({ci, dx}, b.In(0)({bb, ci, x + dx}) * b.In(1)({ci, co, dx})));
//
// Descriptions are intentionally not Turing-complete: no control flow, no data-dependent
// indexing. Index expressions are affine in the index variables, which is exactly what the
// symbolic interval analysis (analysis.h) requires.
#ifndef TOFU_TDL_EXPR_H_
#define TOFU_TDL_EXPR_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tofu/util/logging.h"

namespace tofu {

// Identifies an index variable within one OpDesc. Output variables come first (their id is
// the output dimension they index), reduction variables follow.
using VarId = int;

// An affine combination of index variables plus a constant: sum_i coeff_i * var_i + c.
// This is the only index form TDL admits (paper assumption: affine indexing).
struct IndexExpr {
  struct Term {
    VarId var;
    double coeff;  // rational coefficients arise from strided-convolution adjoints
  };
  std::vector<Term> terms;
  double constant = 0;

  static IndexExpr Variable(VarId var) { return IndexExpr{{{var, 1.0}}, 0.0}; }
  static IndexExpr Constant(double c) { return IndexExpr{{}, c}; }

  // Returns the coefficient of `var` (0 when absent).
  double CoeffOf(VarId var) const;
  // True if the expression is exactly 1 * var + 0.
  bool IsIdentityOf(VarId var) const;
  // Canonicalizes: merges duplicate terms, drops zero coefficients, sorts by var id.
  void Canonicalize();

  std::string ToString(const std::vector<std::string>& var_names) const;
};

IndexExpr operator+(const IndexExpr& a, const IndexExpr& b);
IndexExpr operator-(const IndexExpr& a, const IndexExpr& b);
IndexExpr operator+(const IndexExpr& a, double c);
IndexExpr operator-(const IndexExpr& a, double c);
IndexExpr operator*(const IndexExpr& a, double c);
IndexExpr operator*(double c, const IndexExpr& a);
IndexExpr operator/(const IndexExpr& a, double c);

enum class BinaryOp { kAdd, kSub, kMul, kDiv, kMax, kMin };
enum class UnaryOp { kNeg, kExp, kLog, kSqrt, kTanh, kSigmoid, kRelu, kSquare, kRecip };
enum class ReduceKind { kSum, kMax, kMin, kProd };

const char* ReduceKindName(ReduceKind kind);

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

// One node of the TDL expression tree. Immutable after construction; shared via ExprPtr.
class Expr {
 public:
  enum class Kind {
    kConst,    // floating-point literal
    kVarRef,   // an index variable used as a value (e.g. iota-style operators)
    kInput,    // input tensor element access: inputs[input_id][indices...]
    kUnary,    // unary arithmetic
    kBinary,   // binary arithmetic
    kReduce,   // reduction over reduce_vars of child expression
    kOpaque,   // opaque function over an input slice, indexed by result_indices
  };

  Kind kind() const { return kind_; }

  // kConst
  double const_value() const { return const_value_; }
  // kVarRef
  VarId var() const { return var_; }
  // kInput / kOpaque
  int input_id() const { return input_id_; }
  const std::vector<IndexExpr>& indices() const { return indices_; }
  // kUnary / kBinary
  UnaryOp unary_op() const { return unary_op_; }
  BinaryOp binary_op() const { return binary_op_; }
  const std::vector<ExprPtr>& children() const { return children_; }
  // kReduce
  ReduceKind reducer() const { return reducer_; }
  const std::vector<VarId>& reduce_vars() const { return reduce_vars_; }
  // kOpaque: one entry per input dimension; nullopt means the whole dimension (":").
  const std::vector<std::optional<IndexExpr>>& opaque_slice() const { return opaque_slice_; }
  const std::string& opaque_name() const { return opaque_name_; }
  // kOpaque: indices into the opaque result; their variables are non-partitionable.
  const std::vector<IndexExpr>& result_indices() const { return indices_; }

  static ExprPtr MakeConst(double value);
  static ExprPtr MakeVarRef(VarId var);
  static ExprPtr MakeInput(int input_id, std::vector<IndexExpr> indices);
  static ExprPtr MakeUnary(UnaryOp op, ExprPtr child);
  static ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr MakeReduce(ReduceKind reducer, std::vector<VarId> vars, ExprPtr body);
  static ExprPtr MakeOpaque(std::string name, int input_id,
                            std::vector<std::optional<IndexExpr>> slice,
                            std::vector<IndexExpr> result_indices);

 private:
  Expr() = default;

  Kind kind_ = Kind::kConst;
  double const_value_ = 0.0;
  VarId var_ = -1;
  int input_id_ = -1;
  std::vector<IndexExpr> indices_;
  UnaryOp unary_op_ = UnaryOp::kNeg;
  BinaryOp binary_op_ = BinaryOp::kAdd;
  std::vector<ExprPtr> children_;
  ReduceKind reducer_ = ReduceKind::kSum;
  std::vector<VarId> reduce_vars_;
  std::vector<std::optional<IndexExpr>> opaque_slice_;
  std::string opaque_name_;
};

// How the concrete extent of a reduction variable is recovered at graph level, where input
// and output shapes are known. Output variables are always bound from the output shape.
struct ExtentSource {
  enum class Kind {
    kOutputDim,  // extent = output_shape[dim] (output variables)
    kInputDim,   // extent = input_shape[input][dim] / divisor (isolated access)
    kConstant,   // extent pinned by the description builder (e.g. pooling window)
    kUnknown,    // never isolated and not pinned; description is rejected
  };
  Kind kind = Kind::kUnknown;
  int input = -1;
  int dim = -1;
  double divisor = 1.0;
  std::int64_t constant = 0;
};

struct VarInfo {
  std::string name;
  bool is_reduce = false;
  ExtentSource extent;
};

// A complete TDL description of one operator: `num_output_dims` output variables, the body
// expression, and bookkeeping derived at Build() time.
struct OpDesc {
  std::string name;
  int num_inputs = 0;
  int num_output_dims = 0;
  std::vector<VarInfo> vars;  // [0, num_output_dims) are output vars, rest are reduce vars
  ExprPtr body;
  std::vector<int> input_ranks;  // rank of each input, derived from accesses

  // True when every input is accessed element-wise with the identity index map (the
  // coalescing rule of §5.1 applies to these operators).
  bool elementwise = false;
  // Variables that index into an opaque result; partitioning them would duplicate the
  // whole opaque computation, so they are not viable partition dimensions.
  std::vector<bool> var_in_opaque_result;

  int num_vars() const { return static_cast<int>(vars.size()); }
  bool IsReduceVar(VarId v) const { return vars[static_cast<size_t>(v)].is_reduce; }
  std::string VarName(VarId v) const { return vars[static_cast<size_t>(v)].name; }
};

// ---------------------------------------------------------------------------------------
// Builder DSL.

class OpDescBuilder;

// Handle to a declared index variable; composes into IndexExpr via the overloaded
// operators above (an IndexVar converts implicitly to the identity IndexExpr).
class IndexVar {
 public:
  IndexVar() = default;
  operator IndexExpr() const { return IndexExpr::Variable(id_); }  // NOLINT
  VarId id() const { return id_; }

 private:
  friend class OpDescBuilder;
  explicit IndexVar(VarId id) : id_(id) {}
  VarId id_ = -1;
};

IndexExpr operator+(const IndexVar& a, const IndexVar& b);
IndexExpr operator-(const IndexVar& a, const IndexVar& b);
IndexExpr operator+(const IndexVar& a, double c);
IndexExpr operator*(const IndexVar& a, double c);
IndexExpr operator*(double c, const IndexVar& a);
IndexExpr operator-(const IndexVar& a, double c);
IndexExpr operator/(const IndexVar& a, double c);

// Accessor for one input tensor inside a description body.
class InputRef {
 public:
  ExprPtr operator()(std::vector<IndexExpr> indices) const {
    return Expr::MakeInput(input_id_, std::move(indices));
  }

 private:
  friend class OpDescBuilder;
  explicit InputRef(int input_id) : input_id_(input_id) {}
  int input_id_;
};

// Arithmetic sugar on ExprPtr.
ExprPtr operator+(ExprPtr a, ExprPtr b);
ExprPtr operator-(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, ExprPtr b);
ExprPtr operator/(ExprPtr a, ExprPtr b);
ExprPtr operator*(ExprPtr a, double k);
ExprPtr operator+(ExprPtr a, double k);

class OpDescBuilder {
 public:
  OpDescBuilder(std::string name, int num_inputs);

  // Declares the next output variable; declaration order defines the output dimensions.
  IndexVar Out(const std::string& name);
  // Declares a reduction variable. The optional extent pins the variable's range when it
  // cannot be inferred from an isolated input access (e.g. a pooling window size).
  IndexVar Red(const std::string& name, std::int64_t pinned_extent = -1);

  InputRef In(int input_id) const;

  // Reduction helpers (the reduce variables must have been declared with Red()).
  ExprPtr Sum(const std::vector<IndexVar>& vars, ExprPtr body) const;
  ExprPtr Max(const std::vector<IndexVar>& vars, ExprPtr body) const;
  ExprPtr Min(const std::vector<IndexVar>& vars, ExprPtr body) const;
  ExprPtr Prod(const std::vector<IndexVar>& vars, ExprPtr body) const;

  // Opaque application: `fn(inputs[input_id][slice...])[result_indices...]`. Slice entries
  // are either an affine index (partitionable, e.g. the batch dimension) or std::nullopt
  // for a whole dimension.
  ExprPtr Opaque(const std::string& fn, int input_id,
                 std::vector<std::optional<IndexExpr>> slice,
                 std::vector<IndexExpr> result_indices) const;

  // Finalizes the description: validates affine/arity constraints, derives input ranks,
  // element-wise-ness, opaque-result flags, and reduce-variable extent sources.
  // Aborts (TOFU_CHECK) on malformed descriptions -- these are programming errors.
  OpDesc Build(ExprPtr body) &&;

 private:
  std::string name_;
  int num_inputs_;
  std::vector<VarInfo> vars_;
  int num_output_dims_ = 0;
  bool saw_reduce_var_ = false;
};

// Renders a description body for debugging / documentation.
std::string ExprToString(const Expr& expr, const std::vector<std::string>& var_names);

}  // namespace tofu

#endif  // TOFU_TDL_EXPR_H_
