#include "tofu/tdl/expr.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "tofu/util/strings.h"

namespace tofu {

double IndexExpr::CoeffOf(VarId var) const {
  for (const Term& t : terms) {
    if (t.var == var) {
      return t.coeff;
    }
  }
  return 0;
}

bool IndexExpr::IsIdentityOf(VarId var) const {
  return constant == 0.0 && terms.size() == 1 && terms[0].var == var && terms[0].coeff == 1.0;
}

void IndexExpr::Canonicalize() {
  std::map<VarId, double> merged;
  for (const Term& t : terms) {
    merged[t.var] += t.coeff;
  }
  terms.clear();
  for (const auto& [var, coeff] : merged) {
    if (coeff != 0.0) {
      terms.push_back({var, coeff});
    }
  }
}

std::string IndexExpr::ToString(const std::vector<std::string>& var_names) const {
  std::ostringstream out;
  bool first = true;
  for (const Term& t : terms) {
    if (!first) {
      out << "+";
    }
    if (t.coeff != 1.0) {
      out << t.coeff << "*";
    }
    out << var_names[static_cast<size_t>(t.var)];
    first = false;
  }
  if (constant != 0.0 || first) {
    if (!first && constant > 0) {
      out << "+";
    }
    out << constant;
  }
  return out.str();
}

IndexExpr operator+(const IndexExpr& a, const IndexExpr& b) {
  IndexExpr out = a;
  out.terms.insert(out.terms.end(), b.terms.begin(), b.terms.end());
  out.constant += b.constant;
  out.Canonicalize();
  return out;
}

IndexExpr operator-(const IndexExpr& a, const IndexExpr& b) {
  IndexExpr neg = b;
  for (auto& t : neg.terms) {
    t.coeff = -t.coeff;
  }
  neg.constant = -neg.constant;
  return a + neg;
}

IndexExpr operator+(const IndexExpr& a, double c) {
  IndexExpr out = a;
  out.constant += c;
  return out;
}

IndexExpr operator-(const IndexExpr& a, double c) { return a + (-c); }

IndexExpr operator*(const IndexExpr& a, double c) {
  IndexExpr out = a;
  for (auto& t : out.terms) {
    t.coeff *= c;
  }
  out.constant *= c;
  out.Canonicalize();
  return out;
}

IndexExpr operator*(double c, const IndexExpr& a) { return a * c; }

IndexExpr operator/(const IndexExpr& a, double c) {
  TOFU_CHECK_NE(c, 0.0);
  return a * (1.0 / c);
}

IndexExpr operator+(const IndexVar& a, const IndexVar& b) {
  return IndexExpr(a) + IndexExpr(b);
}
IndexExpr operator-(const IndexVar& a, const IndexVar& b) {
  return IndexExpr(a) - IndexExpr(b);
}
IndexExpr operator+(const IndexVar& a, double c) { return IndexExpr(a) + c; }
IndexExpr operator*(const IndexVar& a, double c) { return IndexExpr(a) * c; }
IndexExpr operator*(double c, const IndexVar& a) { return IndexExpr(a) * c; }
IndexExpr operator-(const IndexVar& a, double c) { return IndexExpr(a) - c; }
IndexExpr operator/(const IndexVar& a, double c) { return IndexExpr(a) / c; }

const char* ReduceKindName(ReduceKind kind) {
  switch (kind) {
    case ReduceKind::kSum:
      return "Sum";
    case ReduceKind::kMax:
      return "Max";
    case ReduceKind::kMin:
      return "Min";
    case ReduceKind::kProd:
      return "Prod";
  }
  return "?";
}

ExprPtr Expr::MakeConst(double value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kConst;
  e->const_value_ = value;
  return e;
}

ExprPtr Expr::MakeVarRef(VarId var) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kVarRef;
  e->var_ = var;
  return e;
}

ExprPtr Expr::MakeInput(int input_id, std::vector<IndexExpr> indices) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kInput;
  e->input_id_ = input_id;
  for (auto& idx : indices) {
    idx.Canonicalize();
  }
  e->indices_ = std::move(indices);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kUnary;
  e->unary_op_ = op;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kBinary;
  e->binary_op_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeReduce(ReduceKind reducer, std::vector<VarId> vars, ExprPtr body) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kReduce;
  e->reducer_ = reducer;
  e->reduce_vars_ = std::move(vars);
  e->children_ = {std::move(body)};
  return e;
}

ExprPtr Expr::MakeOpaque(std::string name, int input_id,
                         std::vector<std::optional<IndexExpr>> slice,
                         std::vector<IndexExpr> result_indices) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = Kind::kOpaque;
  e->opaque_name_ = std::move(name);
  e->input_id_ = input_id;
  for (auto& s : slice) {
    if (s.has_value()) {
      s->Canonicalize();
    }
  }
  e->opaque_slice_ = std::move(slice);
  for (auto& idx : result_indices) {
    idx.Canonicalize();
  }
  e->indices_ = std::move(result_indices);
  return e;
}

ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(BinaryOp::kAdd, std::move(a), std::move(b));
}
ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(BinaryOp::kSub, std::move(a), std::move(b));
}
ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(BinaryOp::kMul, std::move(a), std::move(b));
}
ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return Expr::MakeBinary(BinaryOp::kDiv, std::move(a), std::move(b));
}
ExprPtr operator*(ExprPtr a, double k) {
  return Expr::MakeBinary(BinaryOp::kMul, std::move(a), Expr::MakeConst(k));
}
ExprPtr operator+(ExprPtr a, double k) {
  return Expr::MakeBinary(BinaryOp::kAdd, std::move(a), Expr::MakeConst(k));
}

OpDescBuilder::OpDescBuilder(std::string name, int num_inputs)
    : name_(std::move(name)), num_inputs_(num_inputs) {
  TOFU_CHECK_GE(num_inputs_, 0);
}

IndexVar OpDescBuilder::Out(const std::string& name) {
  TOFU_CHECK(!saw_reduce_var_) << "output variables must be declared before reduce variables";
  VarInfo info;
  info.name = name;
  info.is_reduce = false;
  info.extent.kind = ExtentSource::Kind::kOutputDim;
  info.extent.dim = num_output_dims_;
  vars_.push_back(info);
  ++num_output_dims_;
  return IndexVar(static_cast<VarId>(vars_.size() - 1));
}

IndexVar OpDescBuilder::Red(const std::string& name, std::int64_t pinned_extent) {
  saw_reduce_var_ = true;
  VarInfo info;
  info.name = name;
  info.is_reduce = true;
  if (pinned_extent >= 0) {
    info.extent.kind = ExtentSource::Kind::kConstant;
    info.extent.constant = pinned_extent;
  }
  vars_.push_back(info);
  return IndexVar(static_cast<VarId>(vars_.size() - 1));
}

InputRef OpDescBuilder::In(int input_id) const {
  TOFU_CHECK_GE(input_id, 0);
  TOFU_CHECK_LT(input_id, num_inputs_);
  return InputRef(input_id);
}

namespace {

std::vector<VarId> VarIds(const std::vector<IndexVar>& vars) {
  std::vector<VarId> ids;
  ids.reserve(vars.size());
  for (const IndexVar& v : vars) {
    ids.push_back(v.id());
  }
  return ids;
}

}  // namespace

ExprPtr OpDescBuilder::Sum(const std::vector<IndexVar>& vars, ExprPtr body) const {
  return Expr::MakeReduce(ReduceKind::kSum, VarIds(vars), std::move(body));
}
ExprPtr OpDescBuilder::Max(const std::vector<IndexVar>& vars, ExprPtr body) const {
  return Expr::MakeReduce(ReduceKind::kMax, VarIds(vars), std::move(body));
}
ExprPtr OpDescBuilder::Min(const std::vector<IndexVar>& vars, ExprPtr body) const {
  return Expr::MakeReduce(ReduceKind::kMin, VarIds(vars), std::move(body));
}
ExprPtr OpDescBuilder::Prod(const std::vector<IndexVar>& vars, ExprPtr body) const {
  return Expr::MakeReduce(ReduceKind::kProd, VarIds(vars), std::move(body));
}

ExprPtr OpDescBuilder::Opaque(const std::string& fn, int input_id,
                              std::vector<std::optional<IndexExpr>> slice,
                              std::vector<IndexExpr> result_indices) const {
  TOFU_CHECK_GE(input_id, 0);
  TOFU_CHECK_LT(input_id, num_inputs_);
  return Expr::MakeOpaque(fn, input_id, std::move(slice), std::move(result_indices));
}

namespace {

// Walks the body collecting validation facts: input ranks, per-variable usage, extent
// inference for reduce variables, and opaque-result variable flags.
struct BuildVisitor {
  OpDesc* desc;

  void Visit(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::kConst:
      case Expr::Kind::kVarRef:
        return;
      case Expr::Kind::kInput: {
        NoteAccess(e.input_id(), e.indices());
        return;
      }
      case Expr::Kind::kOpaque: {
        // The slice behaves as an access whose affine-indexed dimensions may infer
        // extents; whole (":") dimensions are opaque.
        int rank = static_cast<int>(e.opaque_slice().size());
        NoteRank(e.input_id(), rank);
        for (int d = 0; d < rank; ++d) {
          const auto& s = e.opaque_slice()[static_cast<size_t>(d)];
          if (s.has_value()) {
            NoteIndex(e.input_id(), d, *s);
          }
        }
        for (const IndexExpr& idx : e.result_indices()) {
          for (const IndexExpr::Term& t : idx.terms) {
            desc->var_in_opaque_result[static_cast<size_t>(t.var)] = true;
          }
        }
        return;
      }
      case Expr::Kind::kUnary:
      case Expr::Kind::kBinary:
      case Expr::Kind::kReduce: {
        for (const ExprPtr& child : e.children()) {
          Visit(*child);
        }
        return;
      }
    }
  }

  void NoteRank(int input, int rank) {
    int& known = desc->input_ranks[static_cast<size_t>(input)];
    if (known < 0) {
      known = rank;
    } else {
      TOFU_CHECK_EQ(known, rank) << "inconsistent rank for input " << input << " of op "
                                 << desc->name;
    }
  }

  void NoteAccess(int input, const std::vector<IndexExpr>& indices) {
    NoteRank(input, static_cast<int>(indices.size()));
    for (int d = 0; d < static_cast<int>(indices.size()); ++d) {
      NoteIndex(input, d, indices[static_cast<size_t>(d)]);
    }
  }

  void NoteIndex(int input, int dim, const IndexExpr& idx) {
    // Reduce-variable extent inference: an isolated access `c * v (+ k)` binds
    // extent(v) = input_extent / c.
    if (idx.terms.size() == 1) {
      const auto& t = idx.terms[0];
      VarInfo& info = desc->vars[static_cast<size_t>(t.var)];
      if (info.is_reduce && info.extent.kind == ExtentSource::Kind::kUnknown && t.coeff > 0.0) {
        info.extent.kind = ExtentSource::Kind::kInputDim;
        info.extent.input = input;
        info.extent.dim = dim;
        info.extent.divisor = t.coeff;
      }
    }
  }
};

}  // namespace

OpDesc OpDescBuilder::Build(ExprPtr body) && {
  OpDesc desc;
  desc.name = std::move(name_);
  desc.num_inputs = num_inputs_;
  desc.num_output_dims = num_output_dims_;
  desc.vars = std::move(vars_);
  desc.body = std::move(body);
  desc.input_ranks.assign(static_cast<size_t>(num_inputs_), -1);
  desc.var_in_opaque_result.assign(desc.vars.size(), false);

  BuildVisitor visitor{&desc};
  visitor.Visit(*desc.body);

  for (int i = 0; i < desc.num_inputs; ++i) {
    TOFU_CHECK_GE(desc.input_ranks[static_cast<size_t>(i)], 0)
        << "input " << i << " of op " << desc.name << " is never accessed";
  }
  for (const VarInfo& info : desc.vars) {
    TOFU_CHECK(info.extent.kind != ExtentSource::Kind::kUnknown)
        << "extent of reduce var '" << info.name << "' in op " << desc.name
        << " cannot be inferred; pin it with Red(name, extent)";
  }

  // Element-wise check: a single-level body whose accesses are all identity maps over the
  // full set of output variables, with no reductions or opaque calls.
  desc.elementwise = desc.num_inputs > 0 && desc.num_output_dims > 0;
  std::vector<const Expr*> stack = {desc.body.get()};
  while (!stack.empty() && desc.elementwise) {
    const Expr* e = stack.back();
    stack.pop_back();
    switch (e->kind()) {
      case Expr::Kind::kReduce:
      case Expr::Kind::kOpaque:
      case Expr::Kind::kVarRef:
        desc.elementwise = false;
        break;
      case Expr::Kind::kInput: {
        if (static_cast<int>(e->indices().size()) != desc.num_output_dims) {
          desc.elementwise = false;
          break;
        }
        for (int d = 0; d < desc.num_output_dims; ++d) {
          if (!e->indices()[static_cast<size_t>(d)].IsIdentityOf(d)) {
            desc.elementwise = false;
            break;
          }
        }
        break;
      }
      default:
        for (const ExprPtr& child : e->children()) {
          stack.push_back(child.get());
        }
        break;
    }
  }
  return desc;
}

std::string ExprToString(const Expr& expr, const std::vector<std::string>& var_names) {
  switch (expr.kind()) {
    case Expr::Kind::kConst:
      return StrFormat("%g", expr.const_value());
    case Expr::Kind::kVarRef:
      return var_names[static_cast<size_t>(expr.var())];
    case Expr::Kind::kInput: {
      std::vector<std::string> idx;
      idx.reserve(expr.indices().size());
      for (const IndexExpr& e : expr.indices()) {
        idx.push_back(e.ToString(var_names));
      }
      return StrFormat("in%d[%s]", expr.input_id(), Join(idx, ", ").c_str());
    }
    case Expr::Kind::kUnary:
      return StrFormat("u(%s)", ExprToString(*expr.children()[0], var_names).c_str());
    case Expr::Kind::kBinary: {
      const char* op = "?";
      switch (expr.binary_op()) {
        case BinaryOp::kAdd:
          op = "+";
          break;
        case BinaryOp::kSub:
          op = "-";
          break;
        case BinaryOp::kMul:
          op = "*";
          break;
        case BinaryOp::kDiv:
          op = "/";
          break;
        case BinaryOp::kMax:
          op = "max";
          break;
        case BinaryOp::kMin:
          op = "min";
          break;
      }
      return StrFormat("(%s %s %s)", ExprToString(*expr.children()[0], var_names).c_str(), op,
                       ExprToString(*expr.children()[1], var_names).c_str());
    }
    case Expr::Kind::kReduce: {
      std::vector<std::string> names;
      for (VarId v : expr.reduce_vars()) {
        names.push_back(var_names[static_cast<size_t>(v)]);
      }
      return StrFormat("%s{%s}(%s)", ReduceKindName(expr.reducer()), Join(names, ",").c_str(),
                       ExprToString(*expr.children()[0], var_names).c_str());
    }
    case Expr::Kind::kOpaque: {
      std::vector<std::string> slice;
      for (const auto& s : expr.opaque_slice()) {
        slice.push_back(s.has_value() ? s->ToString(var_names) : ":");
      }
      std::vector<std::string> res;
      for (const IndexExpr& e : expr.result_indices()) {
        res.push_back(e.ToString(var_names));
      }
      return StrFormat("%s(in%d[%s])[%s]", expr.opaque_name().c_str(), expr.input_id(),
                       Join(slice, ", ").c_str(), Join(res, ", ").c_str());
    }
  }
  return "?";
}

}  // namespace tofu
