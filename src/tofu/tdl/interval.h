// Symbolic interval domain used by the TDL analysis (paper §4.2, Figure 4).
//
// Intervals are affine transformations of the symbolic upper bounds X_1..X_n of the
// operator's index variables:
//
//     I = [ sum_i l_i * X_i + c_lo ,  sum_i u_i * X_i + c_hi ]
//
// Figure 4's arithmetic is supported exactly: I +- k, I * k, I / k (k scalar) and
// I +- I'. Products/comparisons of two intervals are not representable and abort -- the
// paper reports never encountering such indexing in MXNet operators, and Build() only
// admits affine index expressions anyway.
#ifndef TOFU_TDL_INTERVAL_H_
#define TOFU_TDL_INTERVAL_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tofu {

// An affine form over the symbolic bounds X_0..X_{n-1}: sum_i coeffs[i]*X_i + constant.
class AffineForm {
 public:
  AffineForm() = default;
  AffineForm(int num_symbols, double constant);

  // The form equal to coeff * X_symbol.
  static AffineForm Symbol(int num_symbols, int symbol, double coeff = 1.0);
  static AffineForm Constant(int num_symbols, double value);

  int num_symbols() const { return static_cast<int>(coeffs_.size()); }
  double coeff(int symbol) const { return coeffs_[static_cast<size_t>(symbol)]; }
  double constant() const { return constant_; }

  AffineForm& operator+=(const AffineForm& other);
  AffineForm& operator-=(const AffineForm& other);
  AffineForm& operator*=(double k);
  AffineForm& operator+=(double k);

  friend AffineForm operator+(AffineForm a, const AffineForm& b) { return a += b; }
  friend AffineForm operator-(AffineForm a, const AffineForm& b) { return a -= b; }
  friend AffineForm operator*(AffineForm a, double k) { return a *= k; }
  friend AffineForm operator+(AffineForm a, double k) { return a += k; }

  bool ApproxEquals(const AffineForm& other, double tol = 1e-9) const;
  // True when every coefficient and the constant are (approximately) zero.
  bool IsZero(double tol = 1e-9) const;
  // True when all coefficients and the constant are >= -tol (non-negative for any
  // non-negative assignment of the symbols).
  bool IsNonNegative(double tol = 1e-9) const;

  // Evaluates the form with concrete symbol values.
  double Eval(const std::vector<std::int64_t>& symbol_values) const;

  std::string ToString(const std::vector<std::string>& symbol_names) const;

 private:
  std::vector<double> coeffs_;
  double constant_ = 0.0;
};

// [lo, hi] with affine endpoints. Widths below are hi - lo.
struct SymInterval {
  AffineForm lo;
  AffineForm hi;

  // [0, X_symbol]: the default range of index variable `symbol`.
  static SymInterval FullRange(int num_symbols, int symbol);
  // [lo_frac * X_symbol, hi_frac * X_symbol]: a fractional slice of the range, used to
  // model one worker's share when partitioning along `symbol`.
  static SymInterval Slice(int num_symbols, int symbol, double lo_frac, double hi_frac);
  static SymInterval Point(int num_symbols, double value);

  AffineForm Width() const { return hi - lo; }

  SymInterval& operator+=(const SymInterval& other);
  SymInterval& operator-=(const SymInterval& other);
  // Scaling by a (possibly negative) scalar swaps the endpoints when negative.
  SymInterval& operator*=(double k);
  SymInterval& operator+=(double k);

  // Smallest interval containing both (coefficient-wise min/max; exact when the forms are
  // comparable for all non-negative symbol values, conservative otherwise).
  static SymInterval Union(const SymInterval& a, const SymInterval& b);

  bool ApproxEquals(const SymInterval& other, double tol = 1e-9) const;
  std::string ToString(const std::vector<std::string>& symbol_names) const;
};

SymInterval operator+(SymInterval a, const SymInterval& b);
SymInterval operator-(SymInterval a, const SymInterval& b);
SymInterval operator*(SymInterval a, double k);
SymInterval operator+(SymInterval a, double k);

}  // namespace tofu

#endif  // TOFU_TDL_INTERVAL_H_
