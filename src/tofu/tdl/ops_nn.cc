// TDL descriptions for neural-network operators: 2-D convolution and its adjoints,
// pooling, batch normalization (scale/shift form), broadcast bias, channel reductions and
// the opaque softmax cross-entropy head.
#include "tofu/tdl/registry.h"
#include "tofu/util/logging.h"

namespace tofu {
namespace {

double ConvFlops(std::int64_t batch, std::int64_t co, std::int64_t ho, std::int64_t wo,
                 std::int64_t ci, std::int64_t kh, std::int64_t kw) {
  return 2.0 * static_cast<double>(batch) * static_cast<double>(co) * static_cast<double>(ho) *
         static_cast<double>(wo) * static_cast<double>(ci) * static_cast<double>(kh) *
         static_cast<double>(kw);
}

void RegisterConvOps(OpRegistry* registry) {
  // conv2d: data [B,Ci,H,W], filters [Co,Ci,Kh,Kw] -> [B,Co,Ho,Wo].
  // attrs: stride, pad.
  OpRegistry::OpTypeInfo fwd;
  fwd.name = "conv2d";
  fwd.desc_fn = [](const OpAttrs& attrs, const std::vector<int>&) {
    const double s = static_cast<double>(attrs.GetInt("stride", 1));
    const double p = static_cast<double>(attrs.GetInt("pad", 0));
    OpDescBuilder b("conv2d", 2);
    IndexVar bb = b.Out("b"), co = b.Out("co"), ho = b.Out("ho"), wo = b.Out("wo");
    IndexVar ci = b.Red("ci"), kh = b.Red("kh"), kw = b.Red("kw");
    return std::move(b).Build(
        b.Sum({ci, kh, kw}, b.In(0)({bb, ci, ho * s + kh - p, wo * s + kw - p}) *
                                b.In(1)({co, ci, kh, kw})));
  };
  fwd.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    const std::int64_t s = attrs.GetInt("stride", 1);
    const std::int64_t p = attrs.GetInt("pad", 0);
    const std::int64_t ho = (in[0][2] + 2 * p - in[1][2]) / s + 1;
    const std::int64_t wo = (in[0][3] + 2 * p - in[1][3]) / s + 1;
    TOFU_CHECK_EQ(in[0][1], in[1][1]) << "conv2d channel mismatch";
    return Shape{in[0][0], in[1][0], ho, wo};
  };
  fwd.flops_fn = [](const std::vector<Shape>& in, const Shape& out, const OpAttrs&) {
    return ConvFlops(out[0], out[1], out[2], out[3], in[1][1], in[1][2], in[1][3]);
  };
  fwd.op_class = OpClass::kConv;
  registry->Register(std::move(fwd));

  // conv2d_bwd_data: dy [B,Co,Ho,Wo], filters [Co,Ci,Kh,Kw] -> dx [B,Ci,H,W].
  // attrs: stride, pad, h, w (the forward input spatial extents).
  OpRegistry::OpTypeInfo bwd_data;
  bwd_data.name = "conv2d_bwd_data";
  bwd_data.desc_fn = [](const OpAttrs& attrs, const std::vector<int>&) {
    const double s = static_cast<double>(attrs.GetInt("stride", 1));
    const double p = static_cast<double>(attrs.GetInt("pad", 0));
    OpDescBuilder b("conv2d_bwd_data", 2);
    IndexVar bb = b.Out("b"), ci = b.Out("ci"), h = b.Out("h"), w = b.Out("w");
    IndexVar co = b.Red("co"), kh = b.Red("kh"), kw = b.Red("kw");
    return std::move(b).Build(
        b.Sum({co, kh, kw}, b.In(0)({bb, co, (h + p - kh) / s, (w + p - kw) / s}) *
                                b.In(1)({co, ci, kh, kw})));
  };
  bwd_data.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    return Shape{in[0][0], in[1][1], attrs.GetInt("h"), attrs.GetInt("w")};
  };
  bwd_data.flops_fn = [](const std::vector<Shape>& in, const Shape& /*out*/, const OpAttrs&) {
    return ConvFlops(in[0][0], in[0][1], in[0][2], in[0][3], in[1][1], in[1][2], in[1][3]);
  };
  bwd_data.op_class = OpClass::kConv;
  registry->Register(std::move(bwd_data));

  // conv2d_bwd_filter: dy [B,Co,Ho,Wo], data [B,Ci,H,W] -> dw [Co,Ci,Kh,Kw].
  // attrs: stride, pad, kh, kw. The batch dimension is a reduction dimension: this is the
  // output-reduction strategy missed by layer-granularity systems (paper §7.3).
  OpRegistry::OpTypeInfo bwd_filter;
  bwd_filter.name = "conv2d_bwd_filter";
  bwd_filter.desc_fn = [](const OpAttrs& attrs, const std::vector<int>&) {
    const double s = static_cast<double>(attrs.GetInt("stride", 1));
    const double p = static_cast<double>(attrs.GetInt("pad", 0));
    OpDescBuilder b("conv2d_bwd_filter", 2);
    IndexVar co = b.Out("co"), ci = b.Out("ci"), kh = b.Out("kh"), kw = b.Out("kw");
    IndexVar bb = b.Red("b"), ho = b.Red("ho"), wo = b.Red("wo");
    return std::move(b).Build(
        b.Sum({bb, ho, wo}, b.In(0)({bb, co, ho, wo}) *
                                b.In(1)({bb, ci, ho * s + kh - p, wo * s + kw - p})));
  };
  bwd_filter.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    return Shape{in[0][1], in[1][1], attrs.GetInt("kh"), attrs.GetInt("kw")};
  };
  bwd_filter.flops_fn = [](const std::vector<Shape>& in, const Shape& out, const OpAttrs&) {
    return ConvFlops(in[0][0], in[0][1], in[0][2], in[0][3], out[1], out[2], out[3]);
  };
  bwd_filter.op_class = OpClass::kConv;
  registry->Register(std::move(bwd_filter));
}

void RegisterPoolingOps(OpRegistry* registry) {
  // maxpool2d: [B,C,H,W] -> [B,C,Ho,Wo]; attrs: kernel, stride.
  OpRegistry::OpTypeInfo mp;
  mp.name = "maxpool2d";
  mp.desc_fn = [](const OpAttrs& attrs, const std::vector<int>&) {
    const double s = static_cast<double>(attrs.GetInt("stride", 1));
    const std::int64_t k = attrs.GetInt("kernel", 2);
    OpDescBuilder b("maxpool2d", 1);
    IndexVar bb = b.Out("b"), c = b.Out("c"), ho = b.Out("ho"), wo = b.Out("wo");
    IndexVar kh = b.Red("kh", k), kw = b.Red("kw", k);
    return std::move(b).Build(
        b.Max({kh, kw}, b.In(0)({bb, c, ho * s + kh, wo * s + kw})));
  };
  mp.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    const std::int64_t s = attrs.GetInt("stride", 1);
    const std::int64_t k = attrs.GetInt("kernel", 2);
    return Shape{in[0][0], in[0][1], (in[0][2] - k) / s + 1, (in[0][3] - k) / s + 1};
  };
  mp.flops_fn = nullptr;
  mp.op_class = OpClass::kBandwidth;
  registry->Register(std::move(mp));

  // maxpool2d_grad: dy [B,C,Ho,Wo], x [B,C,H,W], y [B,C,Ho,Wo] -> dx [B,C,H,W].
  OpRegistry::OpTypeInfo mpg;
  mpg.name = "maxpool2d_grad";
  mpg.desc_fn = [](const OpAttrs& attrs, const std::vector<int>&) {
    const double s = static_cast<double>(attrs.GetInt("stride", 1));
    const std::int64_t k = attrs.GetInt("kernel", 2);
    OpDescBuilder b("maxpool2d_grad", 3);
    IndexVar bb = b.Out("b"), c = b.Out("c"), h = b.Out("h"), w = b.Out("w");
    IndexVar kh = b.Red("kh", k), kw = b.Red("kw", k);
    return std::move(b).Build(b.Sum(
        {kh, kw}, b.In(0)({bb, c, (h - kh) / s, (w - kw) / s}) * b.In(1)({bb, c, h, w}) *
                      b.In(2)({bb, c, (h - kh) / s, (w - kw) / s})));
  };
  mpg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[1]; };
  mpg.flops_fn = nullptr;
  mpg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(mpg));

  // global_avg_pool: [B,C,H,W] -> [B,C].
  OpRegistry::OpTypeInfo gap;
  gap.name = "global_avg_pool";
  gap.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("global_avg_pool", 1);
    IndexVar bb = b.Out("b"), c = b.Out("c");
    IndexVar h = b.Red("h"), w = b.Red("w");
    return std::move(b).Build(b.Sum({h, w}, b.In(0)({bb, c, h, w})) * 1.0);
  };
  gap.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) {
    return Shape{in[0][0], in[0][1]};
  };
  gap.flops_fn = nullptr;
  gap.op_class = OpClass::kBandwidth;
  registry->Register(std::move(gap));

  // global_avg_pool_grad: dy [B,C] -> dx [B,C,H,W]; attrs: h, w.
  OpRegistry::OpTypeInfo gapg;
  gapg.name = "global_avg_pool_grad";
  gapg.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("global_avg_pool_grad", 1);
    IndexVar bb = b.Out("b"), c = b.Out("c");
    b.Out("h");
    b.Out("w");
    return std::move(b).Build(b.In(0)({bb, c}) * 1.0);
  };
  gapg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs& attrs) {
    return Shape{in[0][0], in[0][1], attrs.GetInt("h"), attrs.GetInt("w")};
  };
  gapg.flops_fn = nullptr;
  gapg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(gapg));
}

void RegisterNormalizationOps(OpRegistry* registry) {
  // bn: x [B,C,H,W], gamma [C], beta [C] -> y [B,C,H,W].
  //
  // Substitution note (DESIGN.md §2): the cross-worker statistics synchronization of a
  // partitioned BatchNorm moves O(C) bytes -- negligible against the tensors -- so the
  // description models the scale/shift data path whose access pattern drives partitioning.
  OpRegistry::OpTypeInfo bn;
  bn.name = "bn";
  bn.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("bn", 3);
    IndexVar bb = b.Out("b"), c = b.Out("c"), h = b.Out("h"), w = b.Out("w");
    return std::move(b).Build(b.In(0)({bb, c, h, w}) * b.In(1)({IndexExpr(c)}) +
                              b.In(2)({IndexExpr(c)}));
  };
  bn.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  bn.flops_fn = nullptr;
  bn.op_class = OpClass::kBandwidth;
  registry->Register(std::move(bn));

  // bn_grad_x: dy [B,C,H,W], gamma [C] -> dx [B,C,H,W].
  OpRegistry::OpTypeInfo bngx;
  bngx.name = "bn_grad_x";
  bngx.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("bn_grad_x", 2);
    IndexVar bb = b.Out("b"), c = b.Out("c"), h = b.Out("h"), w = b.Out("w");
    return std::move(b).Build(b.In(0)({bb, c, h, w}) * b.In(1)({IndexExpr(c)}));
  };
  bngx.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  bngx.flops_fn = nullptr;
  bngx.op_class = OpClass::kBandwidth;
  registry->Register(std::move(bngx));

  // bn_grad_gamma: dy [B,C,H,W], x [B,C,H,W] -> dgamma [C] (batch+spatial reduction).
  OpRegistry::OpTypeInfo bngg;
  bngg.name = "bn_grad_gamma";
  bngg.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("bn_grad_gamma", 2);
    IndexVar c = b.Out("c");
    IndexVar bb = b.Red("b"), h = b.Red("h"), w = b.Red("w");
    return std::move(b).Build(
        b.Sum({bb, h, w}, b.In(0)({bb, c, h, w}) * b.In(1)({bb, c, h, w})));
  };
  bngg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return Shape{in[0][1]}; };
  bngg.flops_fn = nullptr;
  bngg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(bngg));

  // reduce_channel: dy [B,C,H,W] -> [C] (beta gradient).
  OpRegistry::OpTypeInfo rc;
  rc.name = "reduce_channel";
  rc.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("reduce_channel", 1);
    IndexVar c = b.Out("c");
    IndexVar bb = b.Red("b"), h = b.Red("h"), w = b.Red("w");
    return std::move(b).Build(b.Sum({bb, h, w}, b.In(0)({bb, c, h, w})));
  };
  rc.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return Shape{in[0][1]}; };
  rc.flops_fn = nullptr;
  rc.op_class = OpClass::kBandwidth;
  registry->Register(std::move(rc));
}

void RegisterBroadcastAndHeadOps(OpRegistry* registry) {
  // add_bias: x [rank r], bias [1-D indexed by output dim attr("bias_dim")] -> x shape.
  OpRegistry::OpTypeInfo ab;
  ab.name = "add_bias";
  ab.desc_fn = [](const OpAttrs& attrs, const std::vector<int>& ranks) {
    const int rank = ranks[0];
    const int bias_dim = static_cast<int>(attrs.GetInt("bias_dim", static_cast<int>(rank) - 1));
    OpDescBuilder b("add_bias", 2);
    std::vector<IndexVar> vars;
    for (int d = 0; d < rank; ++d) {
      vars.push_back(b.Out("x" + std::to_string(d)));
    }
    std::vector<IndexExpr> idx(vars.begin(), vars.end());
    return std::move(b).Build(b.In(0)(idx) +
                              b.In(1)({IndexExpr(vars[static_cast<size_t>(bias_dim)])}));
  };
  ab.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  ab.flops_fn = nullptr;
  ab.op_class = OpClass::kBandwidth;
  registry->Register(std::move(ab));

  // softmax_xent: logits [B,V], labels [B] -> per-sample loss [B]. The row-wise softmax
  // is opaque (normalization couples the whole row); only the batch dimension partitions.
  OpRegistry::OpTypeInfo sx;
  sx.name = "softmax_xent";
  sx.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("softmax_xent", 2);
    IndexVar bb = b.Out("b");
    ExprPtr head = b.Opaque("softmax_xent_row", 0, {IndexExpr(bb), std::nullopt}, {});
    return std::move(b).Build(head + b.In(1)({IndexExpr(bb)}) * 0.0);
  };
  sx.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return Shape{in[0][0]}; };
  sx.flops_fn = nullptr;
  sx.op_class = OpClass::kBandwidth;
  registry->Register(std::move(sx));

  // softmax_xent_grad: logits [B,V], labels [B] -> dlogits [B,V].
  OpRegistry::OpTypeInfo sxg;
  sxg.name = "softmax_xent_grad";
  sxg.desc_fn = [](const OpAttrs&, const std::vector<int>&) {
    OpDescBuilder b("softmax_xent_grad", 2);
    IndexVar bb = b.Out("b"), v = b.Out("v");
    ExprPtr head =
        b.Opaque("softmax_xent_row_grad", 0, {IndexExpr(bb), std::nullopt}, {IndexExpr(v)});
    return std::move(b).Build(head + b.In(1)({IndexExpr(bb)}) * 0.0);
  };
  sxg.shape_fn = [](const std::vector<Shape>& in, const OpAttrs&) { return in[0]; };
  sxg.flops_fn = nullptr;
  sxg.op_class = OpClass::kBandwidth;
  registry->Register(std::move(sxg));
}

}  // namespace

void RegisterNNOps(OpRegistry* registry) {
  RegisterConvOps(registry);
  RegisterPoolingOps(registry);
  RegisterNormalizationOps(registry);
  RegisterBroadcastAndHeadOps(registry);
}

}  // namespace tofu
