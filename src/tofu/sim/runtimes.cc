#include "tofu/sim/runtimes.h"

#include <algorithm>
#include <set>

#include "tofu/graph/traversal.h"
#include "tofu/util/logging.h"

namespace tofu {

ThroughputResult MeasureSim(const SimGraph& sim, const ClusterSpec& cluster,
                            bool unlimited_memory) {
  ThroughputResult out;
  SimOptions options;
  options.unlimited_memory = unlimited_memory;
  const SimResult full = RunSim(sim, cluster, options);
  options.zero_comm = true;
  const SimResult compute_only = RunSim(sim, cluster, options);

  out.oom = full.oom;
  out.iter_seconds = full.makespan_s;
  out.peak_bytes = full.max_peak_bytes;
  out.samples_per_second = full.samples_per_second;
  out.compute_seconds = compute_only.makespan_s;
  if (full.makespan_s > 0) {
    out.comm_fraction = std::max(0.0, 1.0 - compute_only.makespan_s / full.makespan_s);
  }
  return out;
}

ThroughputResult IdealThroughput(const ModelFactory& factory, std::int64_t batch,
                                 const ClusterSpec& cluster) {
  // Single GPU with infinite memory; throughput scaled by the GPU count (paper §7.1).
  ModelGraph model = factory(batch);
  PartitionPlan trivial;
  SimGraph sim = LowerPartitioned(model.graph, trivial, cluster,
                                  static_cast<double>(model.batch));
  ThroughputResult out = MeasureSim(sim, cluster, /*unlimited_memory=*/true);
  out.batch = batch;
  out.oom = false;
  out.samples_per_second *= cluster.num_gpus;
  return out;
}

ThroughputResult SmallBatchThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                      const ClusterSpec& cluster) {
  ThroughputResult last;
  last.oom = true;
  for (std::int64_t batch = max_batch; batch >= 1; batch /= 2) {
    ModelGraph model = factory(batch);
    PartitionPlan trivial;
    SimGraph sim = LowerPartitioned(model.graph, trivial, cluster,
                                    static_cast<double>(model.batch));
    ThroughputResult r = MeasureSim(sim, cluster);
    if (!r.oom) {
      r.batch = batch;
      r.samples_per_second *= cluster.num_gpus;
      return r;
    }
    last = r;
    last.batch = batch;
  }
  last.samples_per_second = 0.0;
  return last;
}

ThroughputResult SwapThroughput(const ModelFactory& factory, std::int64_t batch,
                                const ClusterSpec& cluster) {
  // Closed-form swap model over the sequential schedule, combining the baselines the
  // paper assembled (§7.1): profile-guided eviction (offline Belady: evict the resident
  // buffer with the farthest next use), read-only buffers copied out once and dropped
  // thereafter, and prefetching that overlaps transfers with compute. Iteration time is
  // max(compute, swap traffic / per-replica host bandwidth); every replica shares the
  // 10 GB/s CPU link.
  ModelGraph model = factory(batch);
  const Graph& g = model.graph;
  ThroughputResult out;
  out.batch = batch;

  const double capacity = cluster.gpu.mem_capacity;
  const std::vector<OpId> order = TopoOrder(g);

  // Use lists: the tick of every touch of each tensor.
  const std::int64_t kNever = static_cast<std::int64_t>(1) << 60;
  std::vector<std::vector<std::int64_t>> uses(static_cast<size_t>(g.num_tensors()));
  std::int64_t tick = 0;
  for (OpId op_id : order) {
    const OpNode& op = g.op(op_id);
    ++tick;
    for (TensorId in : op.inputs) {
      uses[static_cast<size_t>(in)].push_back(tick);
    }
    uses[static_cast<size_t>(op.output)].push_back(tick);
  }

  struct Buffer {
    double bytes = 0.0;
    bool resident = false;
    bool copied_out = false;  // host holds a clean copy
    size_t next_use_index = 0;
  };
  std::vector<Buffer> buffers(static_cast<size_t>(g.num_tensors()));
  for (TensorId t = 0; t < g.num_tensors(); ++t) {
    buffers[static_cast<size_t>(t)].bytes = static_cast<double>(g.tensor(t).bytes());
  }
  auto next_use = [&](TensorId t) -> std::int64_t {
    const Buffer& b = buffers[static_cast<size_t>(t)];
    const auto& u = uses[static_cast<size_t>(t)];
    return b.next_use_index < u.size() ? u[b.next_use_index] : kNever;
  };

  // Belady pool keyed by (next_use, tensor); lazily invalidated entries are skipped.
  std::set<std::pair<std::int64_t, TensorId>> pool;
  double resident_bytes = 0.0;
  double swap_in = 0.0;
  double swap_out = 0.0;

  auto make_resident = [&](TensorId t, bool refetch) -> bool {
    Buffer& b = buffers[static_cast<size_t>(t)];
    if (b.resident) {
      return true;
    }
    while (resident_bytes + b.bytes > capacity) {
      // Farthest-next-use victim.
      auto it = pool.end();
      if (it == pool.begin()) {
        return false;  // nothing evictable: one op's working set exceeds capacity
      }
      --it;
      // Copy the entry out BEFORE erasing: erase frees the node `it` points at.
      const std::int64_t entry_use = it->first;
      const TensorId victim_id = it->second;
      pool.erase(it);
      Buffer& victim = buffers[static_cast<size_t>(victim_id)];
      if (!victim.resident || next_use(victim_id) != entry_use) {
        continue;  // stale entry
      }
      victim.resident = false;
      resident_bytes -= victim.bytes;
      if (!victim.copied_out && next_use(victim_id) != kNever) {
        swap_out += victim.bytes;  // dirty and needed again: write back
        victim.copied_out = true;
      }
    }
    if (refetch) {
      swap_in += b.bytes;
    }
    b.resident = true;
    resident_bytes += b.bytes;
    pool.insert({next_use(t), t});
    return true;
  };

  // Parameters, optimizer state and inputs start on the device (steady state), largest
  // first, until capacity; the rest live on the host.
  for (TensorId t = 0; t < g.num_tensors(); ++t) {
    const TensorNode& node = g.tensor(t);
    if (node.is_param || node.is_opt_state || node.is_input) {
      Buffer& b = buffers[static_cast<size_t>(t)];
      b.copied_out = true;  // host always has the initial copy
      if (resident_bytes + b.bytes <= capacity) {
        b.resident = true;
        resident_bytes += b.bytes;
        pool.insert({next_use(t), t});
      }
    }
  }

  auto advance_use = [&](TensorId t) {
    Buffer& b = buffers[static_cast<size_t>(t)];
    pool.erase({next_use(t), t});
    ++b.next_use_index;
    pool.insert({next_use(t), t});
  };

  double compute_s = 0.0;
  OpRegistry& registry = OpRegistry::Get();
  tick = 0;
  for (OpId op_id : order) {
    const OpNode& op = g.op(op_id);
    ++tick;
    bool ok = true;
    for (TensorId in : op.inputs) {
      const Buffer& b = buffers[static_cast<size_t>(in)];
      ok = ok && make_resident(in, /*refetch=*/!b.resident);
    }
    // Fresh outputs need no transfer; they are allocated on the device.
    const bool out_was_resident = buffers[static_cast<size_t>(op.output)].resident;
    const bool out_seen =
        buffers[static_cast<size_t>(op.output)].next_use_index > 0;
    ok = ok && make_resident(op.output, /*refetch=*/!out_was_resident && out_seen);
    if (!ok) {
      out.oom = true;
      return out;
    }
    buffers[static_cast<size_t>(op.output)].copied_out = false;  // dirtied
    for (TensorId in : op.inputs) {
      advance_use(in);
    }
    advance_use(op.output);

    const Shape& shape = g.tensor(op.output).shape;
    const double rows = shape.empty() ? 1.0 : static_cast<double>(shape[0]);
    const OpClass cls = registry.Info(op.type).op_class;
    double bytes = static_cast<double>(g.tensor(op.output).bytes());
    for (TensorId in : op.inputs) {
      bytes += static_cast<double>(g.tensor(in).bytes());
    }
    compute_s += KernelSeconds(cluster.gpu, cls,
                               registry.Flops(op.type, g.InputShapes(op), shape, op.attrs),
                               bytes, rows);
  }

  // Every replica swaps over the shared host link. Prefetching overlaps transfers with
  // compute, but not perfectly: scheduling hazards (a kernel cannot start before its
  // swapped-in operand lands) surface half of the shorter timeline.
  const double per_replica_bw = cluster.cpu_bandwidth / cluster.num_gpus;
  const double swap_s = (swap_in + swap_out) / per_replica_bw;
  out.iter_seconds = std::max(compute_s, swap_s) + 0.75 * std::min(compute_s, swap_s);
  out.compute_seconds = compute_s;
  out.comm_fraction = out.iter_seconds > 0 ? 1.0 - compute_s / out.iter_seconds : 0.0;
  out.samples_per_second =
      static_cast<double>(model.batch) / out.iter_seconds * cluster.num_gpus;
  out.peak_bytes = std::min(resident_bytes, capacity);
  return out;
}

std::function<int(const OpNode&)> RoundRobinPlacement(
    const Graph& graph, int num_devices, const std::function<int(const OpNode&)>& layer_of) {
  // Capture by value; resolve backward/update ops through their forward op.
  return [&graph, num_devices, layer_of](const OpNode& op) -> int {
    const OpNode* resolved = &op;
    if (op.forward_op != kNoOp) {
      resolved = &graph.op(op.forward_op);
    } else if (op.is_update) {
      // Updates run where the gradient was produced.
      for (TensorId in : op.inputs) {
        const OpId producer = graph.tensor(in).producer;
        if (producer != kNoOp) {
          const OpNode& p = graph.op(producer);
          resolved = p.forward_op != kNoOp ? &graph.op(p.forward_op) : &p;
          break;
        }
      }
    }
    const int layer = layer_of(*resolved);
    return layer < 0 ? num_devices - 1 : layer % num_devices;
  };
}

ThroughputResult PlacementThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                     const ClusterSpec& cluster,
                                     const std::function<int(const OpNode&)>& layer_of,
                                     const LowerOptions& lower) {
  ThroughputResult last;
  last.oom = true;
  for (std::int64_t batch = max_batch; batch >= 1; batch /= 2) {
    ModelGraph model = factory(batch);
    auto device_of = RoundRobinPlacement(model.graph, cluster.num_gpus, layer_of);
    SimGraph sim = LowerPlacement(model.graph, cluster.num_gpus, device_of, cluster,
                                  static_cast<double>(model.batch), lower);
    ThroughputResult r = MeasureSim(sim, cluster);
    if (!r.oom) {
      r.batch = batch;
      return r;
    }
    last = r;
    last.batch = batch;
  }
  last.samples_per_second = 0.0;
  return last;
}

ThroughputResult RunPlanThroughput(const ModelGraph& model, const PartitionPlan& plan,
                                   const ClusterSpec& cluster, const LowerOptions& lower) {
  SimGraph sim = LowerPartitioned(model.graph, plan, cluster,
                                  static_cast<double>(model.batch), lower);
  ThroughputResult out = MeasureSim(sim, cluster);
  out.batch = model.batch;
  return out;
}

ThroughputResult TofuThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                const ClusterSpec& cluster, const PartitionOptions& options,
                                const LowerOptions& lower) {
  ThroughputResult last;
  last.oom = true;
  for (std::int64_t batch = max_batch; batch >= 1; batch /= 2) {
    ModelGraph model = factory(batch);
    PartitionPlan plan = RecursivePartition(model.graph, cluster.num_gpus, options);
    ThroughputResult r = RunPlanThroughput(model, plan, cluster, lower);
    if (!r.oom) {
      r.batch = batch;
      return r;
    }
    last = r;
    last.batch = batch;
  }
  last.samples_per_second = 0.0;
  return last;
}

}  // namespace tofu
