#include "tofu/sim/event_sim.h"

#include <algorithm>
#include <queue>

#include "tofu/util/logging.h"

namespace tofu {

std::int32_t SimGraph::Add(SimNode node) {
  nodes.push_back(std::move(node));
  return static_cast<std::int32_t>(nodes.size() - 1);
}

namespace {

struct Event {
  double time;
  std::int32_t node;
  bool operator>(const Event& other) const {
    return time > other.time || (time == other.time && node > other.node);
  }
};

}  // namespace

SimResult RunSim(const SimGraph& graph, const ClusterSpec& cluster,
                 const SimOptions& options) {
  const std::int32_t n = static_cast<std::int32_t>(graph.nodes.size());
  SimResult result;
  result.peak_bytes.assign(static_cast<size_t>(graph.num_devices), 0.0);

  // Dependency bookkeeping: successor adjacency, pending-dep counts, and per-node
  // remaining-consumer counts (output buffers free when the last consumer finishes).
  std::vector<int> pending(static_cast<size_t>(n), 0);
  std::vector<int> consumers_left(static_cast<size_t>(n), 0);
  std::vector<std::vector<std::int32_t>> successors(static_cast<size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    const SimNode& node = graph.nodes[static_cast<size_t>(i)];
    pending[static_cast<size_t>(i)] = static_cast<int>(node.deps.size());
    for (std::int32_t d : node.deps) {
      TOFU_CHECK_GE(d, 0);
      TOFU_CHECK_LT(d, i);  // lowering emits nodes in dependency order
      successors[static_cast<size_t>(d)].push_back(i);
      ++consumers_left[static_cast<size_t>(d)];
    }
  }

  // Resource availability: compute stream + PCIe port per device, one shared host link,
  // and one FIFO queue per explicit link (interconnect lowering).
  std::vector<double> compute_free(static_cast<size_t>(graph.num_devices), 0.0);
  std::vector<double> port_free(static_cast<size_t>(graph.num_devices), 0.0);
  std::vector<double> link_free(graph.link_bandwidths.size(), 0.0);
  double host_free = 0.0;

  // Memory accounting (buffers charged when the node starts executing).
  std::vector<double> mem(graph.resident_bytes.begin(), graph.resident_bytes.end());
  mem.resize(static_cast<size_t>(graph.num_devices), 0.0);
  for (int d = 0; d < graph.num_devices; ++d) {
    result.peak_bytes[static_cast<size_t>(d)] = mem[static_cast<size_t>(d)];
  }

  std::vector<double> ready_time(static_cast<size_t>(n), 0.0);

  std::priority_queue<Event, std::vector<Event>, std::greater<>> ready;
  for (std::int32_t i = 0; i < n; ++i) {
    if (pending[static_cast<size_t>(i)] == 0) {
      ready.push({0.0, i});
    }
  }

  auto charge = [&](int device, double bytes) {
    mem[static_cast<size_t>(device)] += bytes;
    double& peak = result.peak_bytes[static_cast<size_t>(device)];
    peak = std::max(peak, mem[static_cast<size_t>(device)]);
  };

  std::int32_t executed = 0;
  while (!ready.empty()) {
    const Event ev = ready.top();
    ready.pop();
    const std::int32_t id = ev.node;
    const SimNode& node = graph.nodes[static_cast<size_t>(id)];

    double start = ev.time;
    double duration = 0.0;
    switch (node.kind) {
      case SimNode::Kind::kCompute:
        start = std::max(start, compute_free[static_cast<size_t>(node.device)]);
        duration = node.duration_s;
        compute_free[static_cast<size_t>(node.device)] = start + duration;
        result.compute_busy_s += duration;
        break;
      case SimNode::Kind::kP2P:
        start = std::max(start, port_free[static_cast<size_t>(node.device)]);
        duration = options.zero_comm
                       ? 0.0
                       : TransferSeconds(cluster, node.comm_bytes, cluster.p2p_bandwidth);
        port_free[static_cast<size_t>(node.device)] = start + duration;
        result.comm_busy_s += duration;
        break;
      case SimNode::Kind::kHost:
        start = std::max(start, host_free);
        duration = options.zero_comm
                       ? 0.0
                       : TransferSeconds(cluster, node.comm_bytes, cluster.cpu_bandwidth);
        host_free = start + duration;
        result.comm_busy_s += duration;
        break;
      case SimNode::Kind::kLink: {
        TOFU_CHECK_GE(node.link, 0);
        TOFU_CHECK_LT(static_cast<size_t>(node.link), link_free.size());
        double& free_at = link_free[static_cast<size_t>(node.link)];
        start = std::max(start, free_at);
        // Pure transmission time: wire latency is post_delay_s, which delays delivery
        // (successors, makespan) without occupying the link.
        duration = options.zero_comm
                       ? 0.0
                       : node.comm_bytes /
                             graph.link_bandwidths[static_cast<size_t>(node.link)];
        free_at = start + duration;
        result.comm_busy_s += duration;
        break;
      }
    }
    const double end = start + duration;
    const double delivered = end + (options.zero_comm ? 0.0 : node.post_delay_s);
    result.makespan_s = std::max(result.makespan_s, delivered);
    ++executed;

    // Transient buffers live only for the node's execution; outputs live until the last
    // consumer completes (freed immediately when nothing consumes them).
    charge(node.device, static_cast<double>(node.transient_bytes + node.output_bytes));
    mem[static_cast<size_t>(node.device)] -= static_cast<double>(node.transient_bytes);
    if (consumers_left[static_cast<size_t>(id)] == 0) {
      mem[static_cast<size_t>(node.device)] -= static_cast<double>(node.output_bytes);
    }

    for (std::int32_t s : successors[static_cast<size_t>(id)]) {
      ready_time[static_cast<size_t>(s)] =
          std::max(ready_time[static_cast<size_t>(s)], delivered);
      if (--pending[static_cast<size_t>(s)] == 0) {
        ready.push({ready_time[static_cast<size_t>(s)], s});
      }
    }
    for (std::int32_t d : node.deps) {
      if (--consumers_left[static_cast<size_t>(d)] == 0) {
        const SimNode& dep = graph.nodes[static_cast<size_t>(d)];
        mem[static_cast<size_t>(dep.device)] -= static_cast<double>(dep.output_bytes);
      }
    }
  }
  TOFU_CHECK_EQ(executed, n) << "cycle in simulation graph";

  for (int d = 0; d < graph.num_devices; ++d) {
    const double peak = result.peak_bytes[static_cast<size_t>(d)];
    result.max_peak_bytes = std::max(result.max_peak_bytes, peak);
    if (!options.unlimited_memory && peak > cluster.gpu.mem_capacity && result.oom_device < 0) {
      result.oom = true;
      result.oom_device = d;
    }
  }
  if (graph.samples_per_iteration > 0 && result.makespan_s > 0) {
    result.samples_per_second = graph.samples_per_iteration / result.makespan_s;
  }
  return result;
}

}  // namespace tofu
