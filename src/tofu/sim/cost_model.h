// Hardware cost model for the simulated 8-GPU machine (paper §7.1: EC2 p2.8xlarge,
// 8 x K80 with 12 GB each, 21 GB/s PCIe peer-to-peer, 10 GB/s shared CPU link).
//
// Kernel times follow a roofline-with-efficiency model:
//   * compute-bound ops (matmul, conv): flops / (peak * eff(class, rows)), where the
//     efficiency saturates with the per-worker batch/row extent -- GEMMs starve at small
//     batch while convolutions stay efficient (the §7.2 explanation of why SmallBatch
//     beats Tofu on WResNet-50-4 but loses on every RNN);
//   * bandwidth-bound ops: bytes / effective memory bandwidth;
// plus a fixed kernel launch overhead.
#ifndef TOFU_SIM_COST_MODEL_H_
#define TOFU_SIM_COST_MODEL_H_

#include <cstdint>

#include "tofu/tdl/registry.h"

namespace tofu {

// Calibrated against the paper's absolute single-GPU throughputs (§7.2): the RNN Ideal
// baseline reaches ~233 samples/s on RNN-6-4K at batch 512 and WResNet-50-4 reaches ~47
// samples/s at batch 128; these constants land the simulator within ~15% of both.
struct GpuSpec {
  double peak_flops = 4.4e12;          // GK210 die with boost clocks
  double mem_bandwidth = 160e9;        // effective GDDR5 bandwidth
  double mem_capacity = 12.0 * (1ull << 30);
  double kernel_overhead_s = 8e-6;

  double matmul_peak_eff = 0.75;
  double matmul_half_rows = 50.0;  // rows at which GEMM reaches half its peak efficiency
  double conv_peak_eff = 0.55;     // wide cuDNN convolutions on K80
  double conv_half_batch = 2.0;    // convolutions saturate almost immediately
};

struct ClusterSpec {
  int num_gpus = 8;
  GpuSpec gpu;
  double p2p_bandwidth = 21e9;  // per-device PCIe port, peer-to-peer
  double cpu_bandwidth = 10e9;  // host link shared by every GPU
  double link_latency_s = 15e-6;
};

// The paper's testbed.
ClusterSpec K80Cluster();

// Kernel execution time. `rows` is the efficiency-driving extent (per-worker batch/rows).
double KernelSeconds(const GpuSpec& gpu, OpClass op_class, double flops, double bytes,
                     double rows);

// Transfer time over a link of the given bandwidth.
double TransferSeconds(const ClusterSpec& cluster, double bytes, double bandwidth);

}  // namespace tofu

#endif  // TOFU_SIM_COST_MODEL_H_
