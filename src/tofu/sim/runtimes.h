// Throughput experiment drivers, one per baseline in §7.2:
//   * Ideal        -- single GPU with an infinite-memory allocator, scaled by the GPU
//                     count (no communication): the hypothetical upper bound;
//   * SmallBatch   -- largest per-GPU batch that fits in 12 GB, scaled by the GPU count;
//   * Swapping     -- vDNN-style LRU swap to host memory with prefetch overlap; all
//                     replicas share the 10 GB/s CPU link;
//   * Op-Placement -- layers assigned round-robin to GPUs, pipelined execution;
//   * Tofu         -- the partitioned graph produced by RecursivePartition (or any
//                     explicit plan, for the Figure 10 algorithm comparison).
#ifndef TOFU_SIM_RUNTIMES_H_
#define TOFU_SIM_RUNTIMES_H_

#include <functional>

#include "tofu/models/model.h"
#include "tofu/partition/recursive.h"
#include "tofu/sim/lowering.h"

namespace tofu {

using ModelFactory = std::function<ModelGraph(std::int64_t batch)>;

struct ThroughputResult {
  bool oom = false;
  std::int64_t batch = 0;           // global batch achieving the result
  double samples_per_second = 0.0;
  double iter_seconds = 0.0;
  double peak_bytes = 0.0;          // max per-device peak
  double compute_seconds = 0.0;     // zero-communication makespan (Figure 10 breakdown)
  double comm_fraction = 0.0;       // 1 - compute_seconds / iter_seconds
};

// Runs one lowered graph through the simulator (with and without communication).
ThroughputResult MeasureSim(const SimGraph& sim, const ClusterSpec& cluster,
                            bool unlimited_memory = false);

ThroughputResult IdealThroughput(const ModelFactory& factory, std::int64_t batch,
                                 const ClusterSpec& cluster);

// Tries batches {max, max/2, ..., 1}; returns the first that fits on one GPU.
ThroughputResult SmallBatchThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                      const ClusterSpec& cluster);

ThroughputResult SwapThroughput(const ModelFactory& factory, std::int64_t batch,
                                const ClusterSpec& cluster);

// `layer_of` maps forward ops to pipeline stages (backward/update ops follow their
// forward op). Stages are assigned round-robin over the GPUs.
ThroughputResult PlacementThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                     const ClusterSpec& cluster,
                                     const std::function<int(const OpNode&)>& layer_of,
                                     const LowerOptions& lower = {});

// Partitions with Tofu's recursive algorithm at each candidate batch; returns the largest
// batch that fits.
ThroughputResult TofuThroughput(const ModelFactory& factory, std::int64_t max_batch,
                                const ClusterSpec& cluster,
                                const PartitionOptions& options = {},
                                const LowerOptions& lower = {});

// Runs an explicit plan at a fixed batch (Figure 10's algorithm comparison).
ThroughputResult RunPlanThroughput(const ModelGraph& model, const PartitionPlan& plan,
                                   const ClusterSpec& cluster, const LowerOptions& lower = {});

// Round-robin layer device assignment used by the Op-Placement baseline: forward ops take
// layer_of(op) % num_gpus; backward and update ops run where their forward op ran.
std::function<int(const OpNode&)> RoundRobinPlacement(
    const Graph& graph, int num_devices, const std::function<int(const OpNode&)>& layer_of);

}  // namespace tofu

#endif  // TOFU_SIM_RUNTIMES_H_
