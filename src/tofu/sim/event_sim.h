// Deterministic event-driven executor for lowered simulation graphs.
//
// Resources: one compute stream per GPU, one PCIe port per GPU (peer transfers serialize
// on the port, modelling the paper's 21 GB/s p2p links), a single shared CPU link
// (10 GB/s, the Swapping baseline's bottleneck), and -- for graphs lowered from an
// interconnect model (interconnect/sim_bridge.h) -- an arbitrary set of explicit links
// with FIFO queueing: a kLink node occupies SimGraph::link_bandwidths[link] serially, so
// contention on a shared link (an oversubscribed uplink, a ring segment) emerges from
// the event order instead of being assumed away. Communication overlaps computation, as
// in MXNet's engine.
//
// Memory: each node may allocate a transient buffer (live while the node runs) and an
// output buffer (freed when the node's last consumer finishes; in-place nodes allocate
// nothing). Per-device peaks on top of the resident model state are compared against the
// capacity to detect OOM, emulating the MXNet memory planner the partitioned graph is
// generated to cooperate with (§6).
#ifndef TOFU_SIM_EVENT_SIM_H_
#define TOFU_SIM_EVENT_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tofu/sim/cost_model.h"

namespace tofu {

struct SimNode {
  enum class Kind {
    kCompute,  // runs on the device's compute stream for duration_s
    kP2P,      // occupies the device's PCIe port: comm_bytes at p2p bandwidth
    kHost,     // occupies the shared CPU link: comm_bytes at (shared) host bandwidth
    kLink,     // occupies explicit link `link`: comm_bytes at link_bandwidths[link]
  };
  Kind kind = Kind::kCompute;
  int device = 0;
  int link = -1;             // kLink only: index into SimGraph::link_bandwidths
  double duration_s = 0.0;   // kCompute only (precomputed kernel time)
  double comm_bytes = 0.0;   // kP2P / kHost / kLink
  // Extra delay between this node's end and its successors becoming ready (wire
  // latency after a hop's transmission). The resource is freed at end; successors --
  // and the makespan, since delivery is what completes a transfer -- see end + delay.
  double post_delay_s = 0.0;
  std::int64_t transient_bytes = 0;  // live only while the node executes
  std::int64_t output_bytes = 0;     // live until the last consumer completes
  std::vector<std::int32_t> deps;
  std::string tag;  // provenance, for debugging/reports
};

struct SimGraph {
  int num_devices = 1;
  // Bandwidth (bytes/s) per explicit link, indexed by SimNode::link. Empty for graphs
  // that only use the per-device port / shared host-link resources.
  std::vector<double> link_bandwidths;
  std::vector<SimNode> nodes;
  // Persistent model state per device (weight/gradient/optimizer shards): charged against
  // capacity but never freed.
  std::vector<double> resident_bytes;
  double samples_per_iteration = 0.0;

  std::int32_t Add(SimNode node);
};

struct SimOptions {
  // Drop all communication (the Figure 10 "skip memory copy" measurement separating
  // computation from communication overhead).
  bool zero_comm = false;
  // Ignore device memory capacity (the Ideal baseline's infinite-memory allocator).
  bool unlimited_memory = false;
};

struct SimResult {
  double makespan_s = 0.0;
  bool oom = false;
  int oom_device = -1;
  std::vector<double> peak_bytes;     // per device, including resident state
  double max_peak_bytes = 0.0;
  double compute_busy_s = 0.0;        // summed across devices
  double comm_busy_s = 0.0;
  double samples_per_second = 0.0;
};

SimResult RunSim(const SimGraph& graph, const ClusterSpec& cluster,
                 const SimOptions& options = {});

}  // namespace tofu

#endif  // TOFU_SIM_EVENT_SIM_H_
