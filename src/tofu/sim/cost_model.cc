#include "tofu/sim/cost_model.h"

#include <algorithm>

namespace tofu {

ClusterSpec K80Cluster() { return ClusterSpec{}; }

double KernelSeconds(const GpuSpec& gpu, OpClass op_class, double flops, double bytes,
                     double rows) {
  double seconds = gpu.kernel_overhead_s;
  switch (op_class) {
    case OpClass::kMatmul: {
      const double eff = gpu.matmul_peak_eff * rows / (rows + gpu.matmul_half_rows);
      seconds += flops / (gpu.peak_flops * std::max(eff, 1e-3));
      break;
    }
    case OpClass::kConv: {
      const double eff = gpu.conv_peak_eff * rows / (rows + gpu.conv_half_batch);
      seconds += flops / (gpu.peak_flops * std::max(eff, 1e-3));
      break;
    }
    case OpClass::kBandwidth: {
      seconds += bytes / gpu.mem_bandwidth;
      break;
    }
  }
  return seconds;
}

double TransferSeconds(const ClusterSpec& cluster, double bytes, double bandwidth) {
  return cluster.link_latency_s + bytes / bandwidth;
}

}  // namespace tofu
