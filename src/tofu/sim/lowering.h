// Lowering: turns a dataflow graph (+ partition plan) into a SimGraph for the event
// simulator. Implements the §6 optimizations as toggles so their effect can be ablated:
//
//   * multifetch        -- fuse each operator's remote reads into one gather (off: one
//                          transfer per peer plus an assembly kernel and its intermediate
//                          buffers, the naive split/copy/concat path);
//   * add_control_deps  -- re-create the original sequential dependencies per worker so
//                          the memory planner's buffer reuse survives partitioning;
//   * delay_fetch       -- keep remote fetches close to their consumer instead of issuing
//                          them as soon as inputs are ready (TensorFlow's trick adopted
//                          by Tofu);
//   * inplace_grad_agg  -- MXNet-style in-place gradient accumulation (off: the
//                          TensorFlow behaviour blamed for Table 3's gap).
#ifndef TOFU_SIM_LOWERING_H_
#define TOFU_SIM_LOWERING_H_

#include <functional>

#include "tofu/graph/graph.h"
#include "tofu/partition/partitioned_graph.h"
#include "tofu/partition/plan.h"
#include "tofu/sim/event_sim.h"

namespace tofu {

struct LowerOptions {
  bool multifetch = true;
  bool add_control_deps = true;
  bool delay_fetch = true;
  bool inplace_grad_agg = true;
};

// Lowers `graph` partitioned per `plan` onto plan.num_workers devices. A trivial plan
// (num_workers == 1) lowers the original single-device execution, which is what the
// Ideal / SmallBatch / Swapping baselines run on.
SimGraph LowerPartitioned(const Graph& graph, const PartitionPlan& plan,
                          const ClusterSpec& cluster, double samples_per_iteration,
                          const LowerOptions& options = {});

// Lowers with operator placement: `device_of` assigns every op to a device (the §7
// Op-Placement baseline assigns RNN layers round-robin); cross-device tensor uses become
// peer-to-peer transfers.
SimGraph LowerPlacement(const Graph& graph, int num_devices,
                        const std::function<int(const OpNode&)>& device_of,
                        const ClusterSpec& cluster, double samples_per_iteration,
                        const LowerOptions& options = {});

}  // namespace tofu

#endif  // TOFU_SIM_LOWERING_H_
