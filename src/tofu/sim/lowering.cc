#include "tofu/sim/lowering.h"

#include <algorithm>
#include <map>

#include "tofu/graph/traversal.h"
#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

// Whether the tensor's buffer is part of the persistent model state (weights, optimizer
// history, parameter gradients, graph inputs): pre-allocated, not owned by any sim node.
bool IsResident(const Graph& graph, const TensorNode& t) {
  if (t.is_param || t.is_opt_state || t.is_input) {
    return true;
  }
  return t.grad_of != kNoTensor && graph.tensor(t.grad_of).is_param;
}

// Kernel time of one worker's share of an op.
double ShardKernelSeconds(const Graph& graph, const OpNode& op, const ClusterSpec& cluster,
                          double work_fraction, double rows) {
  OpRegistry& registry = OpRegistry::Get();
  const OpClass cls = registry.Info(op.type).op_class;
  const double flops =
      registry.Flops(op.type, graph.InputShapes(op), graph.tensor(op.output).shape, op.attrs) *
      work_fraction;
  double bytes = static_cast<double>(graph.tensor(op.output).bytes());
  for (TensorId in : op.inputs) {
    bytes += static_cast<double>(graph.tensor(in).bytes());
  }
  bytes *= work_fraction;
  return KernelSeconds(cluster.gpu, cls, flops, bytes, std::max(rows, 1.0));
}

// The extent driving kernel efficiency. GEMM-class ops starve on their row count; batched
// GEMMs (batch_matmul, linear3d -- any rank >= 3 kMatmul output) keep the device busy
// across the whole batch of GEMMs, so every dimension but the innermost counts as rows.
// Other classes (conv, bandwidth) key off the leading (batch) dimension as before.
double EfficiencyRows(const OpNode& op, const Shape& out_shape) {
  if (out_shape.empty()) {
    return 1.0;
  }
  if (out_shape.size() >= 3 &&
      OpRegistry::Get().Info(op.type).op_class == OpClass::kMatmul) {
    double rows = 1.0;
    for (size_t d = 0; d + 1 < out_shape.size(); ++d) {
      rows *= static_cast<double>(out_shape[d]);
    }
    return rows;
  }
  return static_cast<double>(out_shape[0]);
}

}  // namespace

SimGraph LowerPartitioned(const Graph& graph, const PartitionPlan& plan,
                          const ClusterSpec& cluster, double samples_per_iteration,
                          const LowerOptions& options) {
  const int k = std::max(1, plan.num_workers);
  const PlanCostBreakdown breakdown = plan.steps.empty()
                                          ? PlanCostBreakdown{std::vector<OpPlanCost>(
                                                static_cast<size_t>(graph.num_ops())),
                                                0.0}
                                          : ComputePlanCosts(graph, plan);
  const bool trivial = plan.steps.empty();

  SimGraph sim;
  sim.num_devices = k;
  sim.samples_per_iteration = samples_per_iteration;
  sim.resident_bytes.assign(static_cast<size_t>(k), 0.0);

  auto shard_bytes = [&](TensorId t) -> std::int64_t {
    return trivial ? graph.tensor(t).bytes() : plan.ShardBytes(graph, t);
  };
  for (const TensorNode& t : graph.tensors()) {
    if (IsResident(graph, t)) {
      for (int w = 0; w < k; ++w) {
        sim.resident_bytes[static_cast<size_t>(w)] += static_cast<double>(shard_bytes(t.id));
      }
    }
  }

  // avail[op][w]: the node whose completion makes op's output shard usable on worker w.
  std::vector<std::vector<std::int32_t>> avail(
      static_cast<size_t>(graph.num_ops()), std::vector<std::int32_t>(static_cast<size_t>(k), -1));
  std::vector<std::int32_t> prev_compute(static_cast<size_t>(k), -1);
  // Bounded prefetch depth for delayed fetches (§6: fetches are held back so their
  // buffers do not sit allocated long before use, but still overlap nearby compute).
  constexpr int kPrefetchWindow = 8;
  std::vector<std::vector<std::int32_t>> recent_compute(static_cast<size_t>(k));

  for (OpId op_id : TopoOrder(graph)) {
    const OpNode& op = graph.op(op_id);
    const OpPlanCost& cost = breakdown.per_op[static_cast<size_t>(op_id)];
    const double fetch_per_worker = cost.fetch_bytes_total / k;
    const double reduce_per_worker = cost.reduce_bytes_total / k;
    const std::int64_t out_shard = shard_bytes(op.output);
    const bool out_resident = IsResident(graph, graph.tensor(op.output));
    const bool inplace =
        op.inplace_input >= 0 && (!op.is_grad_agg || options.inplace_grad_agg);

    const Shape out_shape =
        trivial ? graph.tensor(op.output).shape : plan.ShardShape(graph, op.output);
    const double rows = EfficiencyRows(op, out_shape);
    double kernel_s = ShardKernelSeconds(graph, op, cluster, cost.work_fraction, rows);
    if (op.is_grad_agg && !options.inplace_grad_agg) {
      kernel_s *= 2.0;  // extra read-modify-write pass without in-place accumulation
    }

    for (int w = 0; w < k; ++w) {
      // Producer availability on this worker / on all workers (remote reads).
      std::vector<std::int32_t> local_deps;
      std::vector<std::int32_t> remote_deps;
      for (TensorId in : op.inputs) {
        const OpId producer = graph.tensor(in).producer;
        if (producer == kNoOp) {
          continue;
        }
        local_deps.push_back(avail[static_cast<size_t>(producer)][static_cast<size_t>(w)]);
        for (int p = 0; p < k; ++p) {
          remote_deps.push_back(avail[static_cast<size_t>(producer)][static_cast<size_t>(p)]);
        }
      }

      std::vector<std::int32_t> compute_deps = local_deps;
      if (fetch_per_worker > 1.0) {
        auto fetch_deps = remote_deps;
        const auto& recent = recent_compute[static_cast<size_t>(w)];
        if (options.delay_fetch && static_cast<int>(recent.size()) >= kPrefetchWindow) {
          fetch_deps.push_back(recent[recent.size() - kPrefetchWindow]);
        }
        if (options.multifetch || k <= 2) {
          SimNode fetch;
          fetch.kind = SimNode::Kind::kP2P;
          fetch.device = w;
          fetch.comm_bytes = fetch_per_worker;
          fetch.output_bytes = static_cast<std::int64_t>(fetch_per_worker);
          fetch.deps = std::move(fetch_deps);
          fetch.tag = op.type + "/fetch";
          compute_deps.push_back(sim.Add(std::move(fetch)));
        } else {
          // Naive path: one transfer per peer, then an assembly (concat) kernel holding
          // both the pieces and the assembled buffer -- the §6 memory blow-up.
          std::vector<std::int32_t> pieces;
          for (int p = 0; p < k - 1; ++p) {
            SimNode piece;
            piece.kind = SimNode::Kind::kP2P;
            piece.device = w;
            piece.comm_bytes = fetch_per_worker / (k - 1);
            piece.output_bytes = static_cast<std::int64_t>(fetch_per_worker / (k - 1));
            piece.deps = fetch_deps;
            piece.tag = op.type + "/fetch_piece";
            pieces.push_back(sim.Add(std::move(piece)));
          }
          SimNode assemble;
          assemble.kind = SimNode::Kind::kCompute;
          assemble.device = w;
          assemble.duration_s = cluster.gpu.kernel_overhead_s +
                                fetch_per_worker / cluster.gpu.mem_bandwidth;
          assemble.output_bytes = static_cast<std::int64_t>(fetch_per_worker);
          assemble.deps = std::move(pieces);
          assemble.tag = op.type + "/assemble";
          compute_deps.push_back(sim.Add(std::move(assemble)));
        }
      }
      if (options.add_control_deps && prev_compute[static_cast<size_t>(w)] >= 0) {
        compute_deps.push_back(prev_compute[static_cast<size_t>(w)]);
      }

      SimNode compute;
      compute.kind = SimNode::Kind::kCompute;
      compute.device = w;
      compute.duration_s = kernel_s;
      compute.deps = std::move(compute_deps);
      compute.tag = op.type;
      // Partial-output inflation from case-2 steps is transient: the reduction collapses
      // it back to the stored shard.
      const double alloc_factor = cost.output_alloc_factor;
      if (!inplace && !out_resident) {
        compute.output_bytes = out_shard;
      }
      if (alloc_factor > 1.0) {
        compute.transient_bytes +=
            static_cast<std::int64_t>(static_cast<double>(out_shard) * (alloc_factor - 1.0));
      }
      const std::int32_t compute_id = sim.Add(std::move(compute));
      prev_compute[static_cast<size_t>(w)] = compute_id;
      recent_compute[static_cast<size_t>(w)].push_back(compute_id);

      std::int32_t avail_id = compute_id;
      if (reduce_per_worker > 1.0) {
        SimNode reduce;
        reduce.kind = SimNode::Kind::kP2P;
        reduce.device = w;
        reduce.comm_bytes = reduce_per_worker;
        reduce.deps = {compute_id};
        reduce.tag = op.type + "/reduce";
        avail_id = sim.Add(std::move(reduce));
      }
      avail[static_cast<size_t>(op_id)][static_cast<size_t>(w)] = avail_id;
    }

    // Reductions synchronize the group: consumers on any worker wait for every worker's
    // reduce share. Rewire avail to a barrier by making each reduce depend on all
    // computes; cheaper approximation: consumers depend on their own worker's reduce node,
    // which already depends on the local compute -- cross-worker arrival is captured by
    // the fetch dependencies of downstream consumers.
  }
  return sim;
}

SimGraph LowerPlacement(const Graph& graph, int num_devices,
                        const std::function<int(const OpNode&)>& device_of,
                        const ClusterSpec& cluster, double samples_per_iteration,
                        const LowerOptions& options) {
  SimGraph sim;
  sim.num_devices = num_devices;
  sim.samples_per_iteration = samples_per_iteration;
  sim.resident_bytes.assign(static_cast<size_t>(num_devices), 0.0);

  std::vector<int> device(static_cast<size_t>(graph.num_ops()), 0);
  for (const OpNode& op : graph.ops()) {
    int d = device_of(op);
    TOFU_CHECK_GE(d, 0);
    TOFU_CHECK_LT(d, num_devices);
    device[static_cast<size_t>(op.id)] = d;
  }
  for (const TensorNode& t : graph.tensors()) {
    if (IsResident(graph, t)) {
      // Model state lives with the device of its first consumer (or producer).
      int d = 0;
      if (!t.consumers.empty()) {
        d = device[static_cast<size_t>(t.consumers[0])];
      } else if (t.producer != kNoOp) {
        d = device[static_cast<size_t>(t.producer)];
      }
      sim.resident_bytes[static_cast<size_t>(d)] += static_cast<double>(t.bytes());
    }
  }

  std::vector<std::int32_t> avail(static_cast<size_t>(graph.num_ops()), -1);
  // Cross-device transfers are deduplicated per (tensor, destination).
  std::map<std::pair<TensorId, int>, std::int32_t> transfers;

  for (OpId op_id : TopoOrder(graph)) {
    const OpNode& op = graph.op(op_id);
    const int dev = device[static_cast<size_t>(op_id)];
    const bool inplace =
        op.inplace_input >= 0 && (!op.is_grad_agg || options.inplace_grad_agg);

    std::vector<std::int32_t> deps;
    for (TensorId in : op.inputs) {
      const OpId producer = graph.tensor(in).producer;
      if (producer == kNoOp) {
        continue;
      }
      const int src = device[static_cast<size_t>(producer)];
      if (src == dev) {
        deps.push_back(avail[static_cast<size_t>(producer)]);
        continue;
      }
      auto key = std::make_pair(in, dev);
      auto it = transfers.find(key);
      if (it == transfers.end()) {
        SimNode copy;
        copy.kind = SimNode::Kind::kP2P;
        copy.device = dev;
        copy.comm_bytes = static_cast<double>(graph.tensor(in).bytes());
        copy.output_bytes = graph.tensor(in).bytes();
        copy.deps = {avail[static_cast<size_t>(producer)]};
        copy.tag = "xfer:" + graph.tensor(in).name;
        it = transfers.emplace(key, sim.Add(std::move(copy))).first;
      }
      deps.push_back(it->second);
    }

    const Shape& out_shape = graph.tensor(op.output).shape;
    const double rows = EfficiencyRows(op, out_shape);
    double kernel_s = ShardKernelSeconds(graph, op, cluster, 1.0, rows);
    if (op.is_grad_agg && !options.inplace_grad_agg) {
      kernel_s *= 2.0;
    }
    SimNode compute;
    compute.kind = SimNode::Kind::kCompute;
    compute.device = dev;
    compute.duration_s = kernel_s;
    compute.deps = std::move(deps);
    compute.tag = op.type;
    if (!inplace && !IsResident(graph, graph.tensor(op.output))) {
      compute.output_bytes = graph.tensor(op.output).bytes();
    }
    avail[static_cast<size_t>(op_id)] = sim.Add(std::move(compute));
  }
  return sim;
}

}  // namespace tofu
