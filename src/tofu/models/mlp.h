// Multi-layer perceptron builder: the small model used by unit tests, the quickstart
// example, and DP-vs-brute-force optimality checks.
#ifndef TOFU_MODELS_MLP_H_
#define TOFU_MODELS_MLP_H_

#include <vector>

#include "tofu/models/model.h"

namespace tofu {

struct MlpConfig {
  std::int64_t batch = 64;
  // layer_sizes[0] is the input width; the last entry is the class count.
  std::vector<std::int64_t> layer_sizes = {784, 256, 256, 10};
  bool with_bias = true;
};

// Builds the full training graph (forward, softmax cross-entropy loss, backward, Adagrad).
ModelGraph BuildMlp(const MlpConfig& config);

}  // namespace tofu

#endif  // TOFU_MODELS_MLP_H_
