#include "tofu/models/transformer.h"

#include <cmath>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::int64_t TransformerParamCount(const TransformerConfig& config) {
  const std::int64_t d = config.d_model;
  const std::int64_t f = config.d_ff;
  // Per layer: 3 QKV projections + the output projection (4*d*d in total across heads),
  // FFN weights and biases, two layernorms.
  const std::int64_t per_layer = 4 * d * d + (d * f + f) + (f * d + d) + 4 * d;
  return config.layers * per_layer + d * config.num_classes;
}

ModelGraph BuildTransformer(const TransformerConfig& config) {
  TOFU_CHECK_GE(config.layers, 1);
  TOFU_CHECK_GE(config.heads, 1);
  TOFU_CHECK_EQ(config.d_model % config.heads, 0)
      << "heads must divide d_model";
  const std::int64_t d_head = config.d_model / config.heads;

  ModelGraph model;
  model.name = StrFormat("transformer-%d-h%d-d%lld", config.layers, config.heads,
                         static_cast<long long>(config.d_model));
  model.batch = config.batch;
  Graph& g = model.graph;

  // Pre-embedded token representations, as one would feed a single device.
  TensorId x = g.AddInput("tokens", {config.batch, config.seq_len, config.d_model});

  for (int l = 0; l < config.layers; ++l) {
    // ---- multi-head self-attention ----------------------------------------------------
    TensorId attn_out = kNoTensor;
    for (int h = 0; h < config.heads; ++h) {
      const std::string base = StrFormat("enc%d/h%d", l, h);
      TensorId wq = g.AddParam(base + "/wq", {config.d_model, d_head});
      TensorId wk = g.AddParam(base + "/wk", {config.d_model, d_head});
      TensorId wv = g.AddParam(base + "/wv", {config.d_model, d_head});
      TensorId q = g.AddOp("linear3d", {}, {x, wq}, base + "/q");
      TensorId k = g.AddOp("linear3d", {}, {x, wk}, base + "/k");
      TensorId v = g.AddOp("linear3d", {}, {x, wv}, base + "/v");

      // scores = (Q K^T) / sqrt(d_head); probabilities row-normalized over keys.
      TensorId scores = g.AddOp("batch_matmul_nt", {}, {q, k}, base + "/scores");
      TensorId scaled = g.AddOp(
          "scale", OpAttrs().SetF("k", 1.0 / std::sqrt(static_cast<double>(d_head))),
          {scores});
      TensorId probs = g.AddOp("softmax", {}, {scaled}, base + "/probs");
      TensorId ctx = g.AddOp("batch_matmul", {}, {probs, v}, base + "/ctx");

      // Per-head output projection back to d_model; summing the heads' projections is the
      // concat-then-project of the fused formulation.
      TensorId wo = g.AddParam(base + "/wo", {d_head, config.d_model});
      TensorId head_out = g.AddOp("linear3d", {}, {ctx, wo}, base + "/out");
      attn_out = attn_out == kNoTensor ? head_out
                                       : g.AddOp("add", {}, {attn_out, head_out});
    }

    // Residual + layernorm.
    const std::string enc = StrFormat("enc%d", l);
    TensorId res1 = g.AddOp("add", {}, {x, attn_out}, enc + "/res1");
    TensorId gamma1 = g.AddParam(enc + "/ln1/gamma", {config.d_model});
    TensorId beta1 = g.AddParam(enc + "/ln1/beta", {config.d_model});
    TensorId y = g.AddOp("layernorm", {}, {res1, gamma1, beta1}, enc + "/ln1");

    // ---- position-wise feed-forward network -------------------------------------------
    TensorId w1 = g.AddParam(enc + "/ffn/w1", {config.d_model, config.d_ff});
    TensorId b1 = g.AddParam(enc + "/ffn/b1", {config.d_ff});
    TensorId hidden = g.AddOp("linear3d", {}, {y, w1}, enc + "/ffn/h");
    hidden = g.AddOp("add_bias", OpAttrs().Set("bias_dim", 2), {hidden, b1});
    hidden = g.AddOp("relu", {}, {hidden});
    TensorId w2 = g.AddParam(enc + "/ffn/w2", {config.d_ff, config.d_model});
    TensorId b2 = g.AddParam(enc + "/ffn/b2", {config.d_model});
    TensorId ffn = g.AddOp("linear3d", {}, {hidden, w2}, enc + "/ffn/out");
    ffn = g.AddOp("add_bias", OpAttrs().Set("bias_dim", 2), {ffn, b2});

    TensorId res2 = g.AddOp("add", {}, {y, ffn}, enc + "/res2");
    TensorId gamma2 = g.AddParam(enc + "/ln2/gamma", {config.d_model});
    TensorId beta2 = g.AddParam(enc + "/ln2/beta", {config.d_model});
    x = g.AddOp("layernorm", {}, {res2, gamma2, beta2}, enc + "/ln2");
  }

  // Mean-pool over positions, project to classes, softmax cross-entropy.
  TensorId pooled = g.AddOp("mean_seq", {}, {x}, "head/pool");
  TensorId wc = g.AddParam("head/wc", {config.d_model, config.num_classes});
  TensorId logits = g.AddOp("matmul", {}, {pooled, wc}, "head/logits");
  TensorId labels = g.AddInput("labels", {config.batch});
  TensorId xent = g.AddOp("softmax_xent", {}, {logits, labels}, "xent");
  model.loss = g.AddOp("reduce_mean_all", {}, {xent}, "loss");

  AutodiffResult grads = BuildBackward(&g, model.loss);
  BuildAdagradUpdates(&g, grads);
  return model;
}

}  // namespace tofu
