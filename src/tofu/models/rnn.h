// Multi-layer LSTM language model (paper §7.1, after Jozefowicz et al.): L stacked LSTM
// layers of hidden size H, unrolled for 20 timesteps, with a small shared projection head.
// RNN-L-H denotes L layers with hidden size H. Every per-timestep operator and tensor
// carries an unroll key so the coarsening pass can merge timesteps (§5.1).
#ifndef TOFU_MODELS_RNN_H_
#define TOFU_MODELS_RNN_H_

#include "tofu/models/model.h"

namespace tofu {

struct RnnConfig {
  int layers = 6;
  std::int64_t hidden = 4096;
  std::int64_t batch = 64;
  int timesteps = 20;
  std::int64_t embed = 512;  // input embedding width (first layer input size)
};

ModelGraph BuildRnn(const RnnConfig& config);

}  // namespace tofu

#endif  // TOFU_MODELS_RNN_H_
