#include "tofu/models/rnn.h"

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

// Tags the op producing `t` (and the tensor itself) with an unroll key + timestep.
void Tag(Graph* g, TensorId t, const std::string& key, int timestep) {
  TensorNode& node = g->tensor(t);
  node.unroll_key = key;
  node.timestep = timestep;
  if (node.producer != kNoOp) {
    OpNode& op = g->op(node.producer);
    op.unroll_key = key;
    op.timestep = timestep;
  }
}

}  // namespace

ModelGraph BuildRnn(const RnnConfig& config) {
  ModelGraph model;
  model.name = StrFormat("rnn-%d-%lldk", config.layers,
                         static_cast<long long>(config.hidden / 1024));
  model.batch = config.batch;
  Graph& g = model.graph;

  static const char* kGateNames[4] = {"i", "f", "o", "c"};
  const std::int64_t h = config.hidden;

  // Per-layer parameters: 4 input matrices, 4 recurrent matrices, 4 biases
  // (4*H*(In + H) + 4*H parameters per layer; ~8H^2 for In == H).
  struct LayerParams {
    TensorId wx[4];
    TensorId wh[4];
    TensorId b[4];
  };
  std::vector<LayerParams> params;
  for (int l = 0; l < config.layers; ++l) {
    const std::int64_t in = (l == 0) ? config.embed : h;
    LayerParams p;
    for (int gate = 0; gate < 4; ++gate) {
      p.wx[gate] = g.AddParam(StrFormat("l%d/wx_%s", l, kGateNames[gate]), {in, h});
      p.wh[gate] = g.AddParam(StrFormat("l%d/wh_%s", l, kGateNames[gate]), {h, h});
      p.b[gate] = g.AddParam(StrFormat("l%d/b_%s", l, kGateNames[gate]), {h});
    }
    params.push_back(p);
  }
  TensorId proj_w = g.AddParam("proj/w", {h, config.embed});

  // Initial states join the per-layer state slots via the shared unroll keys.
  std::vector<TensorId> h_prev(static_cast<size_t>(config.layers));
  std::vector<TensorId> c_prev(static_cast<size_t>(config.layers));
  for (int l = 0; l < config.layers; ++l) {
    h_prev[static_cast<size_t>(l)] = g.AddInput(StrFormat("l%d/h0", l), {config.batch, h});
    Tag(&g, h_prev[static_cast<size_t>(l)], StrFormat("l%d/h", l), 0);
    c_prev[static_cast<size_t>(l)] = g.AddInput(StrFormat("l%d/c0", l), {config.batch, h});
    Tag(&g, c_prev[static_cast<size_t>(l)], StrFormat("l%d/c", l), 0);
  }

  TensorId total_xent = kNoTensor;
  for (int t = 1; t <= config.timesteps; ++t) {
    TensorId x = g.AddInput(StrFormat("x_t%d", t), {config.batch, config.embed});
    Tag(&g, x, "in/x", t);
    for (int l = 0; l < config.layers; ++l) {
      const LayerParams& p = params[static_cast<size_t>(l)];
      TensorId gates[4];
      for (int gate = 0; gate < 4; ++gate) {
        const std::string base = StrFormat("l%d/g%s", l, kGateNames[gate]);
        TensorId gx = g.AddOp("matmul", {}, {x, p.wx[gate]});
        Tag(&g, gx, base + "/mmx", t);
        TensorId gh = g.AddOp("matmul", {}, {h_prev[static_cast<size_t>(l)], p.wh[gate]});
        Tag(&g, gh, base + "/mmh", t);
        TensorId sum = g.AddOp("add", {}, {gx, gh});
        Tag(&g, sum, base + "/sum", t);
        TensorId act_in = g.AddOp("add_bias", OpAttrs().Set("bias_dim", 1), {sum, p.b[gate]});
        Tag(&g, act_in, base + "/bias", t);
        const char* act = (gate == 3) ? "tanh" : "sigmoid";
        gates[gate] = g.AddOp(act, {}, {act_in});
        Tag(&g, gates[gate], base + "/act", t);
      }
      // c_t = f*c_prev + i*c~ ; h_t = o * tanh(c_t)
      TensorId c = g.AddOp("fma2", {}, {gates[1], c_prev[static_cast<size_t>(l)], gates[0],
                                        gates[3]});
      Tag(&g, c, StrFormat("l%d/c", l), t);
      TensorId c_act = g.AddOp("tanh", {}, {c});
      Tag(&g, c_act, StrFormat("l%d/ct", l), t);
      TensorId h_t = g.AddOp("mul", {}, {gates[2], c_act});
      Tag(&g, h_t, StrFormat("l%d/h", l), t);
      c_prev[static_cast<size_t>(l)] = c;
      h_prev[static_cast<size_t>(l)] = h_t;
      x = h_t;
    }
    // Shared projection head and per-timestep loss.
    TensorId logits = g.AddOp("matmul", {}, {x, proj_w});
    Tag(&g, logits, "proj/mm", t);
    TensorId labels = g.AddInput(StrFormat("y_t%d", t), {config.batch});
    Tag(&g, labels, "in/y", t);
    TensorId xent = g.AddOp("softmax_xent", {}, {logits, labels});
    Tag(&g, xent, "loss/xent", t);
    if (total_xent == kNoTensor) {
      total_xent = xent;
    } else {
      total_xent = g.AddOp("add", {}, {total_xent, xent});
      Tag(&g, total_xent, "loss/acc", t);
    }
  }
  model.loss = g.AddOp("reduce_mean_all", {}, {total_xent}, "loss");

  AutodiffResult grads = BuildBackward(&g, model.loss);
  BuildAdagradUpdates(&g, grads);
  return model;
}

}  // namespace tofu
