#include "tofu/models/moe.h"

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

ModelGraph BuildMoe(const MoeConfig& config) {
  TOFU_CHECK_GE(config.experts, 1);
  ModelGraph model;
  model.name = StrFormat("moe-%dx%lld", config.experts,
                         static_cast<long long>(config.d_expert));
  model.batch = config.batch;
  Graph& g = model.graph;

  TensorId x = g.AddInput("tokens", {config.batch, config.d_model});

  // Dense mixture: every expert processes the full batch; outputs sum back into the
  // residual stream. The wide hidden activations (batch x d_expert per expert) are
  // the memory hot spot the repair pass trades against.
  TensorId mixture = kNoTensor;
  for (int e = 0; e < config.experts; ++e) {
    TensorId w_in = g.AddParam(StrFormat("expert%d/w_in", e),
                               {config.d_model, config.d_expert});
    TensorId hidden = g.AddOp("matmul", {}, {x, w_in}, StrFormat("expert%d/h", e));
    hidden = g.AddOp("relu", {}, {hidden});
    TensorId w_out = g.AddParam(StrFormat("expert%d/w_out", e),
                                {config.d_expert, config.d_model});
    TensorId out = g.AddOp("matmul", {}, {hidden, w_out}, StrFormat("expert%d/out", e));
    mixture = e == 0 ? out : g.AddOp("add", {}, {mixture, out});
  }

  TensorId w_cls = g.AddParam("cls/w", {config.d_model, config.classes});
  TensorId logits = g.AddOp("matmul", {}, {mixture, w_cls}, "logits");
  TensorId labels = g.AddInput("labels", {config.batch});
  TensorId xent = g.AddOp("softmax_xent", {}, {logits, labels}, "xent");
  model.loss = g.AddOp("reduce_mean_all", {}, {xent}, "loss");

  AutodiffResult grads = BuildBackward(&g, model.loss);
  BuildAdagradUpdates(&g, grads);
  return model;
}

}  // namespace tofu
