// Wide ResNet builder (paper §7.1): bottleneck residual networks for 224x224 ImageNet
// inputs with a widening scalar multiplying every convolution's channel count, so the
// model size grows quadratically with width. WResNet-L-W denotes L layers widened W times.
#ifndef TOFU_MODELS_WRESNET_H_
#define TOFU_MODELS_WRESNET_H_

#include "tofu/models/model.h"

namespace tofu {

struct WResNetConfig {
  int layers = 50;  // 50, 101 or 152
  int width = 4;    // widening scalar, 4..10 in the paper
  std::int64_t batch = 32;
  std::int64_t image = 224;
  std::int64_t classes = 1000;
};

ModelGraph BuildWResNet(const WResNetConfig& config);

// Residual block counts per stage for a given depth (e.g. 152 -> {3,8,36,3}).
std::vector<int> WResNetStageBlocks(int layers);

}  // namespace tofu

#endif  // TOFU_MODELS_WRESNET_H_
