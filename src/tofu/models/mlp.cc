#include "tofu/models/mlp.h"

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

std::int64_t ModelGraph::ModelStateBytes() const {
  std::int64_t bytes = 0;
  for (const TensorNode& t : graph.tensors()) {
    if (t.is_param || t.is_opt_state) {
      bytes += t.bytes();
    }
    // Weight gradients persist across the iteration as well (the 3W accounting's middle
    // W): count gradients of parameters.
    if (t.grad_of != kNoTensor && graph.tensor(t.grad_of).is_param) {
      bytes += t.bytes();
    }
  }
  return bytes;
}

ModelGraph BuildMlp(const MlpConfig& config) {
  TOFU_CHECK_GE(config.layer_sizes.size(), 2u);
  ModelGraph model;
  model.name = StrFormat("mlp-%zu", config.layer_sizes.size() - 1);
  model.batch = config.batch;
  Graph& g = model.graph;

  TensorId x = g.AddInput("data", {config.batch, config.layer_sizes[0]});
  for (size_t layer = 0; layer + 1 < config.layer_sizes.size(); ++layer) {
    const std::int64_t in = config.layer_sizes[layer];
    const std::int64_t out = config.layer_sizes[layer + 1];
    TensorId w = g.AddParam(StrFormat("fc%zu/w", layer), {in, out});
    x = g.AddOp("matmul", {}, {x, w}, StrFormat("fc%zu/out", layer));
    if (config.with_bias) {
      TensorId b = g.AddParam(StrFormat("fc%zu/b", layer), {out});
      x = g.AddOp("add_bias", OpAttrs().Set("bias_dim", 1), {x, b});
    }
    if (layer + 2 < config.layer_sizes.size()) {
      x = g.AddOp("relu", {}, {x});
    }
  }
  TensorId labels = g.AddInput("labels", {config.batch});
  TensorId xent = g.AddOp("softmax_xent", {}, {x, labels}, "xent");
  model.loss = g.AddOp("reduce_mean_all", {}, {xent}, "loss");

  AutodiffResult grads = BuildBackward(&g, model.loss);
  BuildAdagradUpdates(&g, grads);
  return model;
}

}  // namespace tofu
