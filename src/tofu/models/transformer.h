// Transformer encoder builder (post-norm, BERT-style blocks): multi-head self-attention
// plus a two-layer feed-forward network, with residual connections and layer
// normalization, topped by a mean-pooled classifier head for the training loss.
//
// This is the first workload the paper never evaluated: attention exercises the TDL
// analyzer on batched matmuls, row-coupled normalizations, and shared-weight projections
// whose weight gradients reduce over batch *and* sequence.
//
// Heads are materialized as separate per-head projections (Wq/Wk/Wv of [d_model,
// d_head] each and a per-head output projection [d_head, d_model] whose results are
// summed) -- mathematically identical to the fused [d_model, d_model] form with
// concatenation, but expressible without a reshape operator, whose index map (division /
// modulo by the head count) is outside TDL's affine fragment.
#ifndef TOFU_MODELS_TRANSFORMER_H_
#define TOFU_MODELS_TRANSFORMER_H_

#include "tofu/models/model.h"

namespace tofu {

struct TransformerConfig {
  std::int64_t batch = 8;
  std::int64_t seq_len = 128;
  std::int64_t d_model = 512;
  std::int64_t d_ff = 2048;  // FFN hidden width (4 x d_model in the standard recipe)
  int heads = 4;             // must divide d_model
  int layers = 2;
  std::int64_t num_classes = 1000;  // classifier head vocabulary
};

// Parameter count of one configuration (per layer: QKV + output projections ~4*D^2 and
// the FFN's 2*D*F + F + D, plus two layernorm scale/shift pairs; head: D*C classifier).
std::int64_t TransformerParamCount(const TransformerConfig& config);

// Builds the full training graph (forward, loss, backward, Adagrad), like BuildMlp.
ModelGraph BuildTransformer(const TransformerConfig& config);

}  // namespace tofu

#endif  // TOFU_MODELS_TRANSFORMER_H_
