// Mixture-of-experts-style builder: a dense mixture of wide FFN experts over one
// shared token batch. Each expert is a two-matmul feed-forward block whose hidden
// width dwarfs the model width, and the expert outputs are summed back into the
// residual stream -- the wide-layer regime where per-worker memory, not
// communication, is the binding constraint (the memory planner's frontier bench
// sweeps this model across budgets).
#ifndef TOFU_MODELS_MOE_H_
#define TOFU_MODELS_MOE_H_

#include "tofu/models/model.h"

namespace tofu {

struct MoeConfig {
  std::int64_t batch = 64;
  std::int64_t d_model = 1024;   // residual-stream width
  std::int64_t d_expert = 4096;  // hidden width of each expert FFN
  int experts = 4;               // dense mixture: every expert sees every token
  std::int64_t classes = 256;
};

// Builds the full training graph (forward, softmax cross-entropy loss, backward,
// Adagrad), like every other models/ builder.
ModelGraph BuildMoe(const MoeConfig& config);

}  // namespace tofu

#endif  // TOFU_MODELS_MOE_H_
