#include "tofu/models/wresnet.h"

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

struct NetBuilder {
  Graph* g;

  TensorId Conv(const std::string& name, TensorId x, std::int64_t out_ch, std::int64_t kernel,
                std::int64_t stride, std::int64_t pad) {
    const Shape& in_shape = g->tensor(x).shape;
    TensorId w = g->AddParam(name + "/w", {out_ch, in_shape[1], kernel, kernel});
    OpAttrs attrs;
    attrs.Set("stride", stride).Set("pad", pad);
    return g->AddOp("conv2d", std::move(attrs), {x, w}, name + "/out");
  }

  TensorId Bn(const std::string& name, TensorId x) {
    const std::int64_t channels = g->tensor(x).shape[1];
    TensorId gamma = g->AddParam(name + "/gamma", {channels});
    TensorId beta = g->AddParam(name + "/beta", {channels});
    return g->AddOp("bn", {}, {x, gamma, beta}, name + "/out");
  }

  TensorId ConvBnRelu(const std::string& name, TensorId x, std::int64_t out_ch,
                      std::int64_t kernel, std::int64_t stride, std::int64_t pad,
                      bool relu = true) {
    TensorId y = Conv(name + "/conv", x, out_ch, kernel, stride, pad);
    y = Bn(name + "/bn", y);
    if (relu) {
      y = g->AddOp("relu", {}, {y});
    }
    return y;
  }

  // Bottleneck: 1x1 (mid) -> 3x3 (mid, stride) -> 1x1 (out), with projection shortcut
  // when the shape changes.
  TensorId Bottleneck(const std::string& name, TensorId x, std::int64_t mid,
                      std::int64_t out, std::int64_t stride) {
    TensorId shortcut = x;
    const Shape& in_shape = g->tensor(x).shape;
    if (in_shape[1] != out || stride != 1) {
      shortcut = Conv(name + "/proj", x, out, 1, stride, 0);
      shortcut = Bn(name + "/proj_bn", shortcut);
    }
    TensorId y = ConvBnRelu(name + "/c1", x, mid, 1, 1, 0);
    y = ConvBnRelu(name + "/c2", y, mid, 3, stride, 1);
    y = ConvBnRelu(name + "/c3", y, out, 1, 1, 0, /*relu=*/false);
    y = g->AddOp("add", {}, {y, shortcut}, name + "/sum");
    return g->AddOp("relu", {}, {y});
  }
};

}  // namespace

std::vector<int> WResNetStageBlocks(int layers) {
  switch (layers) {
    case 50:
      return {3, 4, 6, 3};
    case 101:
      return {3, 4, 23, 3};
    case 152:
      return {3, 8, 36, 3};
    default:
      TOFU_LOG(Fatal) << "unsupported WResNet depth: " << layers;
      return {};
  }
}

ModelGraph BuildWResNet(const WResNetConfig& config) {
  ModelGraph model;
  model.name = StrFormat("wresnet-%d-%d", config.layers, config.width);
  model.batch = config.batch;
  Graph& g = model.graph;
  NetBuilder nb{&g};

  const std::int64_t w = config.width;
  TensorId x = g.AddInput("data", {config.batch, 3, config.image, config.image});
  // Stem: 7x7/2 then 3x3/2 max-pool.
  x = nb.ConvBnRelu("stem", x, 64 * w, 7, 2, 3);
  x = g.AddOp("maxpool2d", OpAttrs().Set("kernel", 3).Set("stride", 2), {x}, "stem/pool");

  const std::vector<int> blocks = WResNetStageBlocks(config.layers);
  for (int stage = 0; stage < 4; ++stage) {
    const std::int64_t mid = (64LL << stage) * w;
    const std::int64_t out = (256LL << stage) * w;
    for (int block = 0; block < blocks[static_cast<size_t>(stage)]; ++block) {
      const std::int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      x = nb.Bottleneck(StrFormat("s%d/b%d", stage, block), x, mid, out, stride);
    }
  }

  x = g.AddOp("global_avg_pool", {}, {x}, "gap");
  TensorId fc_w = g.AddParam("fc/w", {g.tensor(x).shape[1], config.classes});
  x = g.AddOp("matmul", {}, {x, fc_w}, "fc/out");
  TensorId fc_b = g.AddParam("fc/b", {config.classes});
  x = g.AddOp("add_bias", OpAttrs().Set("bias_dim", 1), {x, fc_b});

  TensorId labels = g.AddInput("labels", {config.batch});
  TensorId xent = g.AddOp("softmax_xent", {}, {x, labels}, "xent");
  model.loss = g.AddOp("reduce_mean_all", {}, {xent}, "loss");

  AutodiffResult grads = BuildBackward(&g, model.loss);
  BuildAdagradUpdates(&g, grads);
  return model;
}

}  // namespace tofu
