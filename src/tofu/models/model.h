// Common result type for model builders: a complete training graph (forward pass, loss,
// system-generated backward pass and Adagrad updates) plus the handles benches need.
//
// The structural annotations builders and autodiff leave on the graph (forward/backward
// links, grad_of, unroll keys) feed the coarsening pass, which runs ONCE per partition
// call and is reused across every recursive step (see partition/recursive.h); a builder
// that mislabels them skews every step of the search, not just the first.
#ifndef TOFU_MODELS_MODEL_H_
#define TOFU_MODELS_MODEL_H_

#include <cstdint>
#include <string>

#include "tofu/graph/autodiff.h"
#include "tofu/graph/graph.h"

namespace tofu {

struct ModelGraph {
  Graph graph;
  std::string name;
  TensorId loss = kNoTensor;  // rank-0 training loss
  std::int64_t batch = 0;     // samples consumed per iteration

  // Steady-state model memory: weights + gradients + optimizer history (the paper's 3W
  // accounting of §7.1, reported in GiB in Table 2).
  std::int64_t ModelStateBytes() const;
};

}  // namespace tofu

#endif  // TOFU_MODELS_MODEL_H_
