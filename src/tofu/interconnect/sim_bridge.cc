#include "tofu/interconnect/sim_bridge.h"

#include <algorithm>

#include "tofu/sim/cost_model.h"
#include "tofu/util/logging.h"

namespace tofu {

namespace {

SimGraph EmptyTrafficGraph(const Interconnect& net) {
  SimGraph graph;
  graph.num_devices = 1;  // link nodes carry no device memory; one device suffices
  graph.link_bandwidths = net.links().bandwidth;
  return graph;
}

// Zero-duration joint node depending on `deps`; rounds/steps serialize through these.
std::int32_t AddBarrier(SimGraph* graph, std::vector<std::int32_t> deps) {
  SimNode barrier;
  barrier.kind = SimNode::Kind::kCompute;
  barrier.duration_s = 0.0;
  barrier.deps = std::move(deps);
  barrier.tag = "barrier";
  return graph->Add(std::move(barrier));
}

double Makespan(const SimGraph& graph) {
  SimOptions options;
  options.unlimited_memory = true;
  return RunSim(graph, K80Cluster(), options).makespan_s;
}

}  // namespace

std::vector<std::int32_t> AppendTrafficToSim(const Interconnect& net,
                                             const TrafficMatrix& traffic,
                                             std::int32_t barrier, SimGraph* graph,
                                             const TrafficSimOptions& options) {
  TOFU_CHECK_EQ(traffic.num_workers, net.num_workers());
  TOFU_CHECK_EQ(graph->link_bandwidths.size(), net.links().bandwidth.size());
  const double latency = net.links().hop_latency_s;
  const int n = traffic.num_workers;
  std::vector<std::int32_t> deliveries;
  // The simulator drains same-time-ready transmissions in insertion order, so the
  // emission order here IS the schedule each port follows. Two staggers keep the
  // makespan measuring the topology instead of a self-inflicted hotspot: each source's
  // destination list is rotated by the source index (concurrent sources fan out to
  // different destinations first -- the classic shifted all-to-all), and chunks are
  // emitted round-robin across a source's flows rather than flow by flow (so no
  // ingress port receives one source's entire payload as a burst).
  struct FlowState {
    const std::vector<int>* route;
    double chunk_bytes;
    int chunks;
    int emitted = 0;
  };
  std::vector<int> dsts;
  std::vector<FlowState> flows;
  for (int s = 0; s < n; ++s) {
    dsts.clear();
    for (int d = 0; d < n; ++d) {
      if (d != s && traffic.At(s, d) > 0.0) {
        dsts.push_back(d);
      }
    }
    if (dsts.empty()) {
      continue;
    }
    std::rotate(dsts.begin(),
                dsts.begin() + static_cast<int>(s % static_cast<int>(dsts.size())),
                dsts.end());
    flows.clear();
    for (int d : dsts) {
      const std::vector<int>& route = net.Route(s, d);
      const int hops = static_cast<int>(route.size());
      const int chunks =
          hops <= 1 ? 1
                    : std::min(options.max_chunks, options.chunks_per_hop * hops);
      flows.push_back(
          {&route, traffic.At(s, d) / static_cast<double>(chunks), chunks});
    }
    bool remaining = true;
    while (remaining) {
      remaining = false;
      for (FlowState& flow : flows) {
        if (flow.emitted >= flow.chunks) {
          continue;
        }
        std::int32_t prev_hop = barrier;
        for (int link : *flow.route) {
          SimNode node;
          node.kind = SimNode::Kind::kLink;
          node.link = link;
          node.comm_bytes = flow.chunk_bytes;
          node.post_delay_s = latency;
          // The only dependency is the store-and-forward one: a chunk transmits on
          // hop k once its own hop k-1 copy is delivered (transmission end + wire
          // latency). Ordering among a flow's chunks on one link needs no explicit
          // edge -- the link is a serial resource, and a chunk's arrival at every hop
          // trails its predecessor's by construction. An edge here would also charge
          // the wire latency between back-to-back transmissions, which a pipelined
          // link does not pay.
          if (prev_hop >= 0) {
            node.deps.push_back(prev_hop);
          }
          prev_hop = graph->Add(std::move(node));
        }
        if (++flow.emitted == flow.chunks) {
          deliveries.push_back(prev_hop);
        } else {
          remaining = true;
        }
      }
    }
  }
  return deliveries;
}

double SimTransferSeconds(const Interconnect& net, const TrafficMatrix& traffic,
                          const TrafficSimOptions& options) {
  SimGraph graph = EmptyTrafficGraph(net);
  AppendTrafficToSim(net, traffic, /*barrier=*/-1, &graph, options);
  if (graph.nodes.empty()) {
    return 0.0;
  }
  return Makespan(graph);
}

double SimAllReduceSeconds(const Interconnect& net, double bytes,
                           CollectiveAlgorithm algorithm,
                           const TrafficSimOptions& options) {
  SimGraph graph = EmptyTrafficGraph(net);
  std::int32_t barrier = -1;
  for (const TrafficMatrix& round : net.AllReduceRounds(bytes, algorithm)) {
    std::vector<std::int32_t> deliveries =
        AppendTrafficToSim(net, round, barrier, &graph, options);
    if (!deliveries.empty()) {
      barrier = AddBarrier(&graph, std::move(deliveries));
    }
  }
  if (graph.nodes.empty()) {
    return 0.0;
  }
  return Makespan(graph);
}

double SimPlanCommSeconds(const Interconnect& net, const PartitionPlan& plan,
                          const TrafficSimOptions& options) {
  if (plan.steps.empty()) {
    return 0.0;
  }
  // Per-step factors come from the steps themselves (every built-in algorithm's
  // composition multiplies out to num_workers); weighted bytes mirror the session's
  // reporting rule for plans whose search did not fill weighted_step_costs.
  std::vector<int> factors;
  factors.reserve(plan.steps.size());
  for (const BasicPlan& step : plan.steps) {
    factors.push_back(step.ways);
  }
  SimGraph graph = EmptyTrafficGraph(net);
  std::int32_t barrier = -1;
  double groups = 1.0;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const double weighted = i < plan.weighted_step_costs.size()
                                ? plan.weighted_step_costs[i]
                                : groups * plan.steps[i].comm_bytes;
    groups *= static_cast<double>(plan.steps[i].ways);
    if (weighted <= 0.0) {
      continue;
    }
    std::vector<std::int32_t> deliveries = AppendTrafficToSim(
        net, net.StepTraffic(factors, i, weighted), barrier, &graph, options);
    if (!deliveries.empty()) {
      barrier = AddBarrier(&graph, std::move(deliveries));
    }
  }
  if (graph.nodes.empty()) {
    return 0.0;
  }
  return Makespan(graph);
}

}  // namespace tofu
