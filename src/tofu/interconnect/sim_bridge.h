// Lowers interconnect traffic onto the event simulator's link-level queueing -- the
// ground truth the analytic Interconnect costs are validated against.
//
// Every flow of a traffic matrix becomes a chain of kLink nodes along its route
// (store-and-forward), split into chunks so a multi-hop flow pipelines across its hops
// instead of serializing whole messages. The simulated makespan is then a *schedule* --
// FIFO queueing on every link, per-hop wire latency -- whose critical path the analytic
// congestion/dilation bound must stay below (it is a lower bound by construction) and
// should stay close to (the achievability the differential harness
// tests/test_interconnect_diff.cc asserts, with the tolerance documented there).
#ifndef TOFU_INTERCONNECT_SIM_BRIDGE_H_
#define TOFU_INTERCONNECT_SIM_BRIDGE_H_

#include "tofu/interconnect/interconnect.h"
#include "tofu/partition/plan.h"
#include "tofu/sim/event_sim.h"

namespace tofu {

struct TrafficSimOptions {
  // Chunks per hop of a multi-hop flow (single-hop flows are never split: one node is
  // already exact). More chunks tighten the pipeline toward the analytic bound at the
  // cost of more events; 4 bounds the store-and-forward overhead at (h-1)/(4h) < 25%.
  int chunks_per_hop = 4;
  int max_chunks = 64;
};

// Appends one traffic matrix's flows to `graph` (whose link_bandwidths must be the
// interconnect's). Every flow's first hop additionally depends on `barrier` (< 0 for
// none); returns the delivery nodes (each flow's last hop), e.g. to anchor the next
// round's barrier.
std::vector<std::int32_t> AppendTrafficToSim(const Interconnect& net,
                                             const TrafficMatrix& traffic,
                                             std::int32_t barrier, SimGraph* graph,
                                             const TrafficSimOptions& options = {});

// One traffic matrix delivered in full, all flows concurrent: the simulated
// counterpart of Interconnect::TransferSeconds.
double SimTransferSeconds(const Interconnect& net, const TrafficMatrix& traffic,
                          const TrafficSimOptions& options = {});

// The collective's round schedule (Interconnect::AllReduceRounds) with a barrier
// between rounds: the simulated counterpart of Interconnect::AllReduceSeconds.
double SimAllReduceSeconds(const Interconnect& net, double bytes,
                           CollectiveAlgorithm algorithm,
                           const TrafficSimOptions& options = {});

// Simulated critical-path time of a plan's communication: each step's weighted bytes
// spread over the same group-local all-to-all pattern the analytic step estimate
// prices (Interconnect::StepTraffic), steps separated by barriers (a step's shuffles
// consume the previous step's outputs). This is the number that gates a plan when the
// analytic estimate is in doubt -- Session reports it as
// PartitionResponse::simulated_comm_seconds whenever the topology carries an
// interconnect.
double SimPlanCommSeconds(const Interconnect& net, const PartitionPlan& plan,
                          const TrafficSimOptions& options = {});

}  // namespace tofu

#endif  // TOFU_INTERCONNECT_SIM_BRIDGE_H_
