// Heterogeneous interconnect cost models (ROADMAP item 2).
//
// DeviceTopology's per-level scalar bandwidths price a transfer as bytes/bandwidth --
// fine for a uniform fabric, wrong for the clusters the paper targets: rings,
// full-meshes, and oversubscribed hierarchies, where *contention on shared links*, not
// summed bytes, decides transfer time ("It's the Critical Path!", PAPERS.md). This
// module prices communication from a traffic matrix over a concrete link graph:
//
//   * every topology reduces to a set of directed links (bandwidth each) plus a fixed
//     route -- an ordered link list -- per (src, dst) worker pair;
//   * the analytic cost of a traffic matrix is the classic congestion/dilation
//     critical-path bound: max over links of (total bytes routed through the link /
//     its bandwidth), joined by max with the slowest single flow (its bytes over the
//     narrowest link on its path, plus per-hop latency). This is a true lower bound on
//     any schedule, and the event simulator's link-level queueing
//     (interconnect/sim_bridge.h) validates it is also *achievable* within a small
//     constant -- the differential harness in tests/test_interconnect_diff.cc;
//   * collectives are priced as round schedules: each round is itself a traffic matrix,
//     so ring vs halving-doubling allreduce automatically inherit the contention model
//     (a halving-doubling round whose pairs all cross one oversubscribed uplink
//     serializes on it; a ring round stays nearest-neighbour).
//
// The search consumes this through StepBandwidths(): the effective bytes/s one
// recursive partition step experiences, computed by pricing the step's group-local
// all-to-all pattern. Feeding those into PartitionOptions::step_bandwidths makes the
// factor-ordering search in partition/recursive.cc optimize real transfer time (within
// one step a scalar bandwidth cannot change the DP argmin -- see DpOptions::
// link_bandwidth -- so the per-step DP stays bit-identical, which is what keeps
// uniform-topology plans byte-identical to the pre-interconnect goldens).
#ifndef TOFU_INTERCONNECT_INTERCONNECT_H_
#define TOFU_INTERCONNECT_INTERCONNECT_H_

#include <memory>
#include <string>
#include <vector>

namespace tofu {

// Bytes each worker sends each other worker (row-major src * n + dst; the diagonal is
// ignored). The unit every Interconnect costing entry point takes.
struct TrafficMatrix {
  int num_workers = 0;
  std::vector<double> bytes;

  TrafficMatrix() = default;
  explicit TrafficMatrix(int n)
      : num_workers(n), bytes(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0) {}

  double& At(int src, int dst) {
    return bytes[static_cast<size_t>(src) * static_cast<size_t>(num_workers) +
                 static_cast<size_t>(dst)];
  }
  double At(int src, int dst) const {
    return bytes[static_cast<size_t>(src) * static_cast<size_t>(num_workers) +
                 static_cast<size_t>(dst)];
  }
  // Total off-diagonal bytes.
  double Total() const;
};

enum class CollectiveAlgorithm {
  kRingAllReduce,     // 2(n-1) nearest-neighbour rounds of bytes/n each
  kHalvingDoubling,   // 2 log2(n') exchange rounds, payload halving; non-power-of-two
                      // worker counts pay a full-vector fold-in/fold-out pre/post round
};

const char* CollectiveName(CollectiveAlgorithm algorithm);

// A concrete interconnect: workers, directed links, one fixed route per worker pair.
// Instances are immutable and shared (DeviceTopology holds a shared_ptr); build them
// with the factories below. All costing is data-driven off the link graph, so the
// analytic model and the event-sim lowering can never disagree about the hardware.
class Interconnect {
 public:
  struct Links {
    std::vector<double> bandwidth;   // bytes/s per directed link
    std::vector<std::string> name;   // debugging / reports, parallel to bandwidth
    double hop_latency_s = 0.0;      // wire latency charged once per hop
  };

  int num_workers() const { return num_workers_; }
  const Links& links() const { return links_; }
  // Ordered link ids a byte crosses from src to dst; src == dst is empty.
  const std::vector<int>& Route(int src, int dst) const;
  // Human name ("ring", "fullmesh", "hierarchy") and the deterministic string folded
  // into DeviceTopology::Fingerprint (hence the Session plan-cache key).
  const std::string& name() const { return name_; }
  const std::string& Fingerprint() const { return fingerprint_; }

  // Analytic critical-path estimate for delivering the whole matrix at once:
  //   max( max_l load(l)/bw(l),  max_flow bytes/min-bw-on-path + latency * hops ).
  double TransferSeconds(const TrafficMatrix& traffic) const;
  // Same bound without the latency term: linear in bytes, which makes the implied
  // effective bandwidth (bytes / seconds) payload-independent. What StepBandwidths
  // inverts.
  double BandwidthSeconds(const TrafficMatrix& traffic) const;

  // The round schedule of an allreduce over all workers (`bytes` per worker), as
  // traffic matrices. Exposed so the differential harness can replay the exact same
  // rounds through the event simulator.
  std::vector<TrafficMatrix> AllReduceRounds(double bytes,
                                             CollectiveAlgorithm algorithm) const;
  // Sum of TransferSeconds over the rounds: the alpha-beta collective cost with this
  // topology's contention folded in.
  double AllReduceSeconds(double bytes, CollectiveAlgorithm algorithm) const;
  // The cheaper algorithm at this payload (ties prefer ring, the paper-era default).
  CollectiveAlgorithm PickAllReduce(double bytes) const;

  // Effective bytes/s for each recursive partition step of `factors` (canonical order,
  // product == num_workers): step i splits each of the prod(factors[0..i)) contiguous
  // worker groups into factors[i] subgroups, and its traffic is modeled as a uniform
  // all-to-all between same-group workers of different subgroups. The returned value is
  // total-bytes / BandwidthSeconds of that unit pattern -- a contention-aware effective
  // bandwidth the existing `weighted bytes / bandwidth` step costing consumes directly.
  std::vector<double> StepBandwidths(const std::vector<int>& factors) const;

  // The same group-local all-to-all pattern StepBandwidths prices, scaled so its total
  // is `total_bytes`. Shared with the sim bridge so the analytic step estimate and the
  // simulated critical path price the identical traffic.
  TrafficMatrix StepTraffic(const std::vector<int>& factors, size_t step,
                            double total_bytes) const;

  Interconnect(std::string name, std::string fingerprint, int num_workers, Links links,
               std::vector<std::vector<int>> routes);

 private:
  std::string name_;
  std::string fingerprint_;
  int num_workers_ = 0;
  Links links_;
  std::vector<std::vector<int>> routes_;  // routes_[src * n + dst]
};

// Unidirectional ring: link i carries i -> (i+1) % n at `link_bandwidth`; a transfer to
// a worker d hops away crosses d links. Nearest-neighbour traffic (ring allreduce,
// halo exchange) is contention-free; long-range traffic congests every link it crosses.
std::shared_ptr<const Interconnect> MakeRing(int num_workers, double link_bandwidth,
                                             double hop_latency_s = 0.0);

// Full mesh with per-worker port limits: every worker has one egress and one ingress
// link of `port_bandwidth` (an NVLink/PCIe-port-style NIC constraint); a transfer
// crosses exactly [egress(src), ingress(dst)]. Concurrent flows from (or into) one
// worker serialize on its port; disjoint pairs never contend.
std::shared_ptr<const Interconnect> MakeFullMesh(int num_workers, double port_bandwidth,
                                                 double hop_latency_s = 0.0);

// Two-level oversubscribed hierarchy: `groups` switches of `workers_per_group` workers.
// Each worker has a full-duplex leaf link (`leaf_bandwidth`) to its group switch; each
// switch has a full-duplex uplink (`uplink_bandwidth`) to the root. Intra-group
// transfers cross [leaf-up(src), leaf-down(dst)]; cross-group ones add the two uplinks.
// uplink_bandwidth < workers_per_group * leaf_bandwidth models oversubscription: every
// cross-group byte of a group serializes on its shared uplink.
std::shared_ptr<const Interconnect> MakeHierarchy(int groups, int workers_per_group,
                                                  double leaf_bandwidth,
                                                  double uplink_bandwidth,
                                                  double hop_latency_s = 0.0);

}  // namespace tofu

#endif  // TOFU_INTERCONNECT_INTERCONNECT_H_
