#include "tofu/interconnect/interconnect.h"

#include <algorithm>
#include <limits>

#include "tofu/util/logging.h"
#include "tofu/util/strings.h"

namespace tofu {

double TrafficMatrix::Total() const {
  double total = 0.0;
  for (int s = 0; s < num_workers; ++s) {
    for (int d = 0; d < num_workers; ++d) {
      if (s != d) {
        total += At(s, d);
      }
    }
  }
  return total;
}

const char* CollectiveName(CollectiveAlgorithm algorithm) {
  switch (algorithm) {
    case CollectiveAlgorithm::kRingAllReduce:
      return "ring";
    case CollectiveAlgorithm::kHalvingDoubling:
      return "halving-doubling";
  }
  return "?";
}

Interconnect::Interconnect(std::string name, std::string fingerprint, int num_workers,
                           Links links, std::vector<std::vector<int>> routes)
    : name_(std::move(name)),
      fingerprint_(std::move(fingerprint)),
      num_workers_(num_workers),
      links_(std::move(links)),
      routes_(std::move(routes)) {
  TOFU_CHECK_GE(num_workers_, 1);
  TOFU_CHECK_EQ(static_cast<int>(routes_.size()), num_workers_ * num_workers_);
  for (double b : links_.bandwidth) {
    TOFU_CHECK_GT(b, 0.0);
  }
  for (int s = 0; s < num_workers_; ++s) {
    for (int d = 0; d < num_workers_; ++d) {
      const std::vector<int>& route = routes_[static_cast<size_t>(s * num_workers_ + d)];
      TOFU_CHECK(s == d ? route.empty() : !route.empty())
          << "route " << s << "->" << d;
      for (int l : route) {
        TOFU_CHECK_GE(l, 0);
        TOFU_CHECK_LT(static_cast<size_t>(l), links_.bandwidth.size());
      }
    }
  }
}

const std::vector<int>& Interconnect::Route(int src, int dst) const {
  TOFU_CHECK_GE(src, 0);
  TOFU_CHECK_LT(src, num_workers_);
  TOFU_CHECK_GE(dst, 0);
  TOFU_CHECK_LT(dst, num_workers_);
  return routes_[static_cast<size_t>(src * num_workers_ + dst)];
}

namespace {

// The shared congestion/dilation bound. Both are lower bounds on any schedule: a link
// must transmit its whole load serially, and a flow cannot beat its narrowest hop (plus
// wire latency per hop when `with_latency`); the critical path is at least their max.
double CriticalPathSeconds(const Interconnect& net, const TrafficMatrix& traffic,
                           bool with_latency) {
  TOFU_CHECK_EQ(traffic.num_workers, net.num_workers());
  const Interconnect::Links& links = net.links();
  std::vector<double> load(links.bandwidth.size(), 0.0);
  double dilation = 0.0;
  for (int s = 0; s < traffic.num_workers; ++s) {
    for (int d = 0; d < traffic.num_workers; ++d) {
      const double b = s == d ? 0.0 : traffic.At(s, d);
      if (b <= 0.0) {
        continue;
      }
      const std::vector<int>& route = net.Route(s, d);
      double min_bw = std::numeric_limits<double>::infinity();
      for (int l : route) {
        load[static_cast<size_t>(l)] += b;
        min_bw = std::min(min_bw, links.bandwidth[static_cast<size_t>(l)]);
      }
      double flow = b / min_bw;
      if (with_latency) {
        flow += links.hop_latency_s * static_cast<double>(route.size());
      }
      dilation = std::max(dilation, flow);
    }
  }
  double congestion = 0.0;
  for (size_t l = 0; l < load.size(); ++l) {
    congestion = std::max(congestion, load[l] / links.bandwidth[l]);
  }
  return std::max(congestion, dilation);
}

}  // namespace

double Interconnect::TransferSeconds(const TrafficMatrix& traffic) const {
  return CriticalPathSeconds(*this, traffic, /*with_latency=*/true);
}

double Interconnect::BandwidthSeconds(const TrafficMatrix& traffic) const {
  return CriticalPathSeconds(*this, traffic, /*with_latency=*/false);
}

std::vector<TrafficMatrix> Interconnect::AllReduceRounds(
    double bytes, CollectiveAlgorithm algorithm) const {
  const int n = num_workers_;
  std::vector<TrafficMatrix> rounds;
  if (n < 2 || bytes <= 0.0) {
    return rounds;
  }
  if (algorithm == CollectiveAlgorithm::kRingAllReduce) {
    // Reduce-scatter then allgather: 2(n-1) rounds, every worker forwarding one
    // bytes/n segment to its successor each round.
    TrafficMatrix round(n);
    for (int i = 0; i < n; ++i) {
      round.At(i, (i + 1) % n) = bytes / static_cast<double>(n);
    }
    rounds.assign(static_cast<size_t>(2 * (n - 1)), round);
    return rounds;
  }
  // Halving-doubling. n' = largest power of two <= n; the e = n - n' excess workers
  // first fold their whole vector into a partner (full payload), sit out the exchange
  // phase, and receive the finished result back at the end (Rabenseifner's accounting:
  // non-power-of-two counts pay two extra full-vector rounds -- why ring can win there).
  int pow2 = 1;
  while (pow2 * 2 <= n) {
    pow2 *= 2;
  }
  const int excess = n - pow2;
  if (excess > 0) {
    TrafficMatrix fold(n);
    for (int i = pow2; i < n; ++i) {
      fold.At(i, i - pow2) = bytes;
    }
    rounds.push_back(fold);
  }
  // Reduce-scatter by recursive halving: distance n'/2 down to 1, payload halving from
  // bytes/2; the allgather mirror doubles back up. Emitted as halving then doubling so
  // the round order matches the textbook schedule.
  for (int distance = pow2 / 2, payload_div = 2; distance >= 1;
       distance /= 2, payload_div *= 2) {
    TrafficMatrix round(n);
    for (int i = 0; i < pow2; ++i) {
      round.At(i, i ^ distance) = bytes / static_cast<double>(payload_div);
    }
    rounds.push_back(round);
  }
  for (int distance = 1, payload_div = pow2; distance < pow2;
       distance *= 2, payload_div /= 2) {
    TrafficMatrix round(n);
    for (int i = 0; i < pow2; ++i) {
      round.At(i, i ^ distance) = bytes / static_cast<double>(payload_div);
    }
    rounds.push_back(round);
  }
  if (excess > 0) {
    TrafficMatrix unfold(n);
    for (int i = pow2; i < n; ++i) {
      unfold.At(i - pow2, i) = bytes;
    }
    rounds.push_back(unfold);
  }
  return rounds;
}

double Interconnect::AllReduceSeconds(double bytes, CollectiveAlgorithm algorithm) const {
  double total = 0.0;
  for (const TrafficMatrix& round : AllReduceRounds(bytes, algorithm)) {
    total += TransferSeconds(round);
  }
  return total;
}

CollectiveAlgorithm Interconnect::PickAllReduce(double bytes) const {
  const double ring = AllReduceSeconds(bytes, CollectiveAlgorithm::kRingAllReduce);
  const double hd = AllReduceSeconds(bytes, CollectiveAlgorithm::kHalvingDoubling);
  return hd < ring ? CollectiveAlgorithm::kHalvingDoubling
                   : CollectiveAlgorithm::kRingAllReduce;
}

TrafficMatrix Interconnect::StepTraffic(const std::vector<int>& factors, size_t step,
                                        double total_bytes) const {
  const int n = num_workers_;
  TOFU_CHECK_LT(step, factors.size());
  int groups = 1;
  for (size_t i = 0; i < step; ++i) {
    groups *= factors[i];
  }
  const int ways = factors[step];
  TOFU_CHECK_GT(ways, 1);
  TOFU_CHECK_EQ(n % (groups * ways), 0)
      << "factors must divide the worker count level by level";
  const int block = n / groups;     // workers per group at this step
  const int sub = block / ways;     // workers per subgroup after the split
  TrafficMatrix traffic(n);
  // Uniform all-to-all between same-group workers of different subgroups, across every
  // group; pair count is the same in each group, so one global per-pair share.
  const std::int64_t pairs_per_group =
      static_cast<std::int64_t>(block) * (block - sub);
  const double per_pair =
      total_bytes / static_cast<double>(pairs_per_group * groups);
  for (int g = 0; g < groups; ++g) {
    const int base = g * block;
    for (int a = 0; a < block; ++a) {
      for (int b = 0; b < block; ++b) {
        if (a / sub != b / sub) {
          traffic.At(base + a, base + b) = per_pair;
        }
      }
    }
  }
  return traffic;
}

std::vector<double> Interconnect::StepBandwidths(const std::vector<int>& factors) const {
  std::vector<double> bandwidths;
  bandwidths.reserve(factors.size());
  for (size_t i = 0; i < factors.size(); ++i) {
    const double seconds = BandwidthSeconds(StepTraffic(factors, i, 1.0));
    TOFU_CHECK_GT(seconds, 0.0);
    bandwidths.push_back(1.0 / seconds);
  }
  return bandwidths;
}

std::shared_ptr<const Interconnect> MakeRing(int num_workers, double link_bandwidth,
                                             double hop_latency_s) {
  TOFU_CHECK_GE(num_workers, 2);
  const int n = num_workers;
  Interconnect::Links links;
  links.hop_latency_s = hop_latency_s;
  for (int i = 0; i < n; ++i) {
    links.bandwidth.push_back(link_bandwidth);
    links.name.push_back(StrFormat("ring[%d->%d]", i, (i + 1) % n));
  }
  std::vector<std::vector<int>> routes(static_cast<size_t>(n) * n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      std::vector<int>& route = routes[static_cast<size_t>(s * n + d)];
      for (int hop = s; hop != d; hop = (hop + 1) % n) {
        route.push_back(hop);
      }
    }
  }
  return std::make_shared<Interconnect>(
      "ring", StrFormat("ring:n=%d,bw=%.17g,lat=%.17g", n, link_bandwidth, hop_latency_s),
      n, std::move(links), std::move(routes));
}

std::shared_ptr<const Interconnect> MakeFullMesh(int num_workers, double port_bandwidth,
                                                 double hop_latency_s) {
  TOFU_CHECK_GE(num_workers, 2);
  const int n = num_workers;
  Interconnect::Links links;
  links.hop_latency_s = hop_latency_s;
  // Link 2i = worker i's egress port, 2i+1 = its ingress port.
  for (int i = 0; i < n; ++i) {
    links.bandwidth.push_back(port_bandwidth);
    links.name.push_back(StrFormat("egress[%d]", i));
    links.bandwidth.push_back(port_bandwidth);
    links.name.push_back(StrFormat("ingress[%d]", i));
  }
  std::vector<std::vector<int>> routes(static_cast<size_t>(n) * n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s != d) {
        routes[static_cast<size_t>(s * n + d)] = {2 * s, 2 * d + 1};
      }
    }
  }
  return std::make_shared<Interconnect>(
      "fullmesh",
      StrFormat("fullmesh:n=%d,bw=%.17g,lat=%.17g", n, port_bandwidth, hop_latency_s), n,
      std::move(links), std::move(routes));
}

std::shared_ptr<const Interconnect> MakeHierarchy(int groups, int workers_per_group,
                                                  double leaf_bandwidth,
                                                  double uplink_bandwidth,
                                                  double hop_latency_s) {
  TOFU_CHECK_GE(groups, 2);
  TOFU_CHECK_GE(workers_per_group, 1);
  const int n = groups * workers_per_group;
  Interconnect::Links links;
  links.hop_latency_s = hop_latency_s;
  // Links 2i/2i+1: worker i's leaf up/down; then per group g: up/down uplinks.
  for (int i = 0; i < n; ++i) {
    links.bandwidth.push_back(leaf_bandwidth);
    links.name.push_back(StrFormat("leaf-up[%d]", i));
    links.bandwidth.push_back(leaf_bandwidth);
    links.name.push_back(StrFormat("leaf-down[%d]", i));
  }
  const int uplink_base = 2 * n;
  for (int g = 0; g < groups; ++g) {
    links.bandwidth.push_back(uplink_bandwidth);
    links.name.push_back(StrFormat("uplink-up[%d]", g));
    links.bandwidth.push_back(uplink_bandwidth);
    links.name.push_back(StrFormat("uplink-down[%d]", g));
  }
  std::vector<std::vector<int>> routes(static_cast<size_t>(n) * n);
  for (int s = 0; s < n; ++s) {
    for (int d = 0; d < n; ++d) {
      if (s == d) {
        continue;
      }
      std::vector<int>& route = routes[static_cast<size_t>(s * n + d)];
      route.push_back(2 * s);  // leaf up
      const int gs = s / workers_per_group;
      const int gd = d / workers_per_group;
      if (gs != gd) {
        route.push_back(uplink_base + 2 * gs);      // source group's uplink, upward
        route.push_back(uplink_base + 2 * gd + 1);  // destination group's, downward
      }
      route.push_back(2 * d + 1);  // leaf down
    }
  }
  return std::make_shared<Interconnect>(
      "hierarchy",
      StrFormat("hierarchy:g=%d,m=%d,leaf=%.17g,up=%.17g,lat=%.17g", groups,
                workers_per_group, leaf_bandwidth, uplink_bandwidth, hop_latency_s),
      n, std::move(links), std::move(routes));
}

}  // namespace tofu
