// Table 2 reproduction: total weight tensor sizes (GiB) for every benchmark model --
// weights + gradients + optimizer history, the paper's 3W accounting of §7.1.
#include <cstdio>

#include "tofu/models/rnn.h"
#include "tofu/models/wresnet.h"

namespace tofu {
namespace {

double Gib(std::int64_t bytes) { return static_cast<double>(bytes) / (1ull << 30); }

}  // namespace
}  // namespace tofu

int main() {
  using namespace tofu;
  std::printf("=== Table 2: total weight tensor sizes (GiB), ours vs paper ===\n\n");

  const double rnn_paper[3][3] = {{8.4, 11.4, 14.4}, {18.6, 28.5, 32.1}, {33.0, 45.3, 57.0}};
  std::printf("RNN                L=6              L=8              L=10\n");
  const std::int64_t hiddens[3] = {4096, 6144, 8192};
  for (int h = 0; h < 3; ++h) {
    std::printf("  H=%lldK  ", static_cast<long long>(hiddens[h] / 1024));
    for (int li = 0; li < 3; ++li) {
      RnnConfig config;
      config.layers = 6 + 2 * li;
      config.hidden = hiddens[h];
      config.batch = 4;
      ModelGraph model = BuildRnn(config);
      std::printf("  %5.1f (p %5.1f)", Gib(model.ModelStateBytes()), rnn_paper[h][li]);
    }
    std::printf("\n");
  }

  const double wrn_paper[4][3] = {
      {4.2, 7.8, 10.5}, {9.6, 17.1, 23.4}, {17.1, 30.6, 41.7}, {26.7, 47.7, 65.1}};
  std::printf("\nWide ResNet        L=50             L=101            L=152\n");
  const int widths[4] = {4, 6, 8, 10};
  const int depths[3] = {50, 101, 152};
  for (int w = 0; w < 4; ++w) {
    std::printf("  W=%-2d   ", widths[w]);
    for (int d = 0; d < 3; ++d) {
      WResNetConfig config;
      config.layers = depths[d];
      config.width = widths[w];
      config.batch = 2;
      ModelGraph model = BuildWResNet(config);
      std::printf("  %5.1f (p %5.1f)", Gib(model.ModelStateBytes()), wrn_paper[w][d]);
    }
    std::printf("\n");
  }
  std::printf("\n(p X.X) = value reported in the paper's Table 2.\n");
  return 0;
}
