// Figure 8 reproduction: WResNet training throughput on 8 simulated GPUs, normalized to
// the Ideal baseline, for depths {50, 101, 152} x widths {4, 6, 8, 10}, comparing Ideal /
// SmallBatch / Swapping / Tofu (the paper skips Op-Placement for CNNs, §7.1).
#include <cstdio>

#include "tofu/core/experiment.h"

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Figure 8: WResNet throughput (samples/sec) on 8 GPUs ===\n");
  std::printf("paper shapes: Tofu within 60-95%% of Ideal; SmallBatch OOMs beyond W=4\n"
              "(and W=4 L=101); Swapping 20-63%% slower than Tofu everywhere.\n");

  for (int layers : {50, 101, 152}) {
    std::printf("\n--- Wide ResNet-%d ---\n", layers);
    for (int width : {4, 6, 8, 10}) {
      ModelFactory factory = WResNetFactory(layers, width);
      ThroughputResult ideal = IdealThroughput(factory, kWResNetIdealBatch, cluster);
      ThroughputResult small = SmallBatchThroughput(factory, kWResNetIdealBatch, cluster);
      ThroughputResult swap = SwapThroughput(factory, kWResNetIdealBatch, cluster);
      ThroughputResult tofu = TofuThroughput(factory, kWResNetIdealBatch, cluster);

      std::printf("W=%-2d\n", width);
      std::printf("%s\n", FormatBaselineRow({"Ideal", ideal}, ideal.samples_per_second).c_str());
      std::printf("%s\n",
                  FormatBaselineRow({"SmallBatch", small}, ideal.samples_per_second).c_str());
      std::printf("%s\n", FormatBaselineRow({"Swap", swap}, ideal.samples_per_second).c_str());
      std::printf("%s\n", FormatBaselineRow({"Tofu", tofu}, ideal.samples_per_second).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
