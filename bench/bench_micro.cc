// Engineering micro-benchmarks (google-benchmark): the hot paths of the partitioner --
// TDL strategy discovery, coarsening, one DP step, full recursive search, lowering and
// event simulation.
#include <benchmark/benchmark.h>

#include "tofu/core/experiment.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/dp.h"
#include "tofu/tdl/registry.h"

namespace tofu {
namespace {

void BM_StrategyDiscoveryConv2d(benchmark::State& state) {
  // Cache-defeating: vary an attribute so every iteration re-runs the analysis.
  std::int64_t pad = 0;
  for (auto _ : state) {
    OpAttrs attrs;
    attrs.Set("stride", 1).Set("pad", 1).Set("salt", pad++);
    benchmark::DoNotOptimize(OpRegistry::Get().Semantics("conv2d", attrs, {4, 4}));
  }
}
BENCHMARK(BM_StrategyDiscoveryConv2d);

ModelGraph BenchMlp() {
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 1024, 1024, 512};
  config.batch = 128;
  return BuildMlp(config);
}

void BM_BuildMlpTrainingGraph(benchmark::State& state) {
  for (auto _ : state) {
    ModelGraph model = BenchMlp();
    benchmark::DoNotOptimize(model.graph.num_ops());
  }
}
BENCHMARK(BM_BuildMlpTrainingGraph);

void BM_Coarsen(benchmark::State& state) {
  ModelGraph model = BenchMlp();
  for (auto _ : state) {
    CoarseGraph cg = Coarsen(model.graph);
    benchmark::DoNotOptimize(cg.num_slots());
  }
}
BENCHMARK(BM_Coarsen);

// One DP step through the packed-state search engine; Arg = DpOptions::num_threads
// (sharded state expansion; plans are byte-identical across thread counts).
void BM_DpStep(benchmark::State& state) {
  ModelGraph model = BenchMlp();
  CoarseGraph cg = Coarsen(model.graph);
  DpOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 2);
    DpResult dp = RunStepDp(&ctx, cg, options);
    benchmark::DoNotOptimize(dp.plan.comm_bytes);
  }
}
BENCHMARK(BM_DpStep)->Arg(1)->Arg(4);

// Per-phase attribution of one big many-worker search (the dense-lattice engine
// path): SearchStats splits the engine's wall time into cost-table fill, state
// expansion, cost charging, and projection, so a regression in any one phase is
// visible even when the total hides it. Also reports how many frontier states
// dominance pruning skipped (plan-invariant; docs/search.md).
void BM_SearchPhasesWResNet64(benchmark::State& state) {
  WResNetConfig config;
  config.layers = 152;
  config.width = 10;
  config.batch = 8;
  ModelGraph model = BuildWResNet(config);
  double fill = 0.0, expand = 0.0, charge = 0.0, project = 0.0;
  double dominated = 0.0;
  for (auto _ : state) {
    PartitionPlan plan = RecursivePartition(model.graph, 64);
    fill += plan.search_stats.fill_seconds;
    expand += plan.search_stats.expand_seconds;
    charge += plan.search_stats.charge_seconds;
    project += plan.search_stats.project_seconds;
    dominated = static_cast<double>(plan.search_stats.dominated_pruned_states);
    benchmark::DoNotOptimize(plan.total_comm_bytes);
  }
  state.counters["fill_s"] = benchmark::Counter(fill, benchmark::Counter::kAvgIterations);
  state.counters["expand_s"] =
      benchmark::Counter(expand, benchmark::Counter::kAvgIterations);
  state.counters["charge_s"] =
      benchmark::Counter(charge, benchmark::Counter::kAvgIterations);
  state.counters["project_s"] =
      benchmark::Counter(project, benchmark::Counter::kAvgIterations);
  state.counters["dominated"] = benchmark::Counter(dominated);
}
BENCHMARK(BM_SearchPhasesWResNet64)->Unit(benchmark::kMillisecond);

// The dense-lattice charge kernel in isolation: for every run of `r` frontier cells
// sharing a table prefix, add one gathered table value across the contiguous run --
// the exact inner loop RunDense's charge phase executes (search_engine.cc). Arg pair =
// (frontier cells, run length); reports effective bytes/second over the cost array.
void BM_DenseChargeKernel(benchmark::State& state) {
  const std::int64_t cells = state.range(0);
  const std::int64_t run = state.range(1);
  std::vector<double> cost(static_cast<size_t>(cells), 1.0);
  std::vector<double> table(static_cast<size_t>(cells / run), 0.5);
  for (auto _ : state) {
    double* c = cost.data();
    for (std::int64_t p = 0; p < cells / run; ++p, c += run) {
      const double t = table[static_cast<size_t>(p)];
      for (std::int64_t j = 0; j < run; ++j) {
        c[j] += t;
      }
    }
    benchmark::DoNotOptimize(cost.data());
    benchmark::ClobberMemory();
  }
  state.SetBytesProcessed(state.iterations() * cells * sizeof(double));
}
BENCHMARK(BM_DenseChargeKernel)->Args({1 << 16, 4})->Args({1 << 16, 64})
    ->Args({1 << 20, 64});

void BM_RecursivePartitionMlp8(benchmark::State& state) {
  ModelGraph model = BenchMlp();
  for (auto _ : state) {
    PartitionPlan plan = RecursivePartition(model.graph, 8);
    benchmark::DoNotOptimize(plan.total_comm_bytes);
  }
}
BENCHMARK(BM_RecursivePartitionMlp8);

// Full recursive search; Arg = engine threads. Also reports the engine's own wall time
// and cost-evaluation count through SearchStats counters.
void BM_RecursivePartitionWResNet50(benchmark::State& state) {
  WResNetConfig config;
  config.layers = 50;
  config.width = 4;
  config.batch = 32;
  ModelGraph model = BuildWResNet(config);
  PartitionOptions options;
  options.dp.num_threads = static_cast<int>(state.range(0));
  double engine_seconds = 0.0;
  std::int64_t evals = 0;
  for (auto _ : state) {
    PartitionPlan plan = RecursivePartition(model.graph, 8, options);
    engine_seconds += plan.search_stats.wall_seconds;
    evals += plan.search_stats.states_explored;
    benchmark::DoNotOptimize(plan.total_comm_bytes);
  }
  state.counters["engine_s"] =
      benchmark::Counter(engine_seconds, benchmark::Counter::kAvgIterations);
  state.counters["cost_evals"] =
      benchmark::Counter(static_cast<double>(evals), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_RecursivePartitionWResNet50)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_LowerAndSimulate(benchmark::State& state) {
  ModelGraph model = BenchMlp();
  const ClusterSpec cluster = K80Cluster();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  for (auto _ : state) {
    SimGraph sim = LowerPartitioned(model.graph, plan, cluster, model.batch);
    SimResult r = RunSim(sim, cluster);
    benchmark::DoNotOptimize(r.makespan_s);
  }
}
BENCHMARK(BM_LowerAndSimulate);

void BM_EventSimScaling(benchmark::State& state) {
  // Pure simulator throughput on a synthetic butterfly of the given size.
  const int n = static_cast<int>(state.range(0));
  SimGraph g;
  g.num_devices = 8;
  g.resident_bytes.assign(8, 0.0);
  for (int i = 0; i < n; ++i) {
    SimNode node;
    node.kind = SimNode::Kind::kCompute;
    node.device = i % 8;
    node.duration_s = 1e-5;
    if (i >= 8) {
      node.deps = {i - 8, i - (i % 8) - 1};
    }
    g.Add(std::move(node));
  }
  const ClusterSpec cluster = K80Cluster();
  for (auto _ : state) {
    SimResult r = RunSim(g, cluster);
    benchmark::DoNotOptimize(r.makespan_s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventSimScaling)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace
}  // namespace tofu
