// Figure 10 reproduction: quality of different partition algorithms on RNN-4-8K
// (batch 512) and WResNet-152-10 (batch 8) across 8 GPUs. For each algorithm we report
// per-batch execution time with the communication overhead fraction (the paper measures
// it by skipping memory copies -- our zero-comm simulation), plus OOM where the plan's
// per-worker memory exceeds 12 GB.
//
//   ./bench_fig10_algos                 # all five algorithms
//   ./bench_fig10_algos --algo=Tofu     # one algorithm (name per AlgorithmName)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "tofu/core/experiment.h"
#include "tofu/core/session.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

void RunCase(const std::string& name, ModelGraph model, const ClusterSpec& cluster,
             const std::vector<PartitionAlgorithm>& algorithms) {
  std::printf("--- %s (batch %lld) ---\n", name.c_str(),
              static_cast<long long>(model.batch));
  Session session(DeviceTopology::FromCluster(cluster));
  for (PartitionAlgorithm algorithm : algorithms) {
    PartitionRequest request;
    request.graph = &model.graph;
    request.algorithm = algorithm;
    Result<PartitionResponse> response = session.Partition(request);
    if (!response.ok()) {
      std::printf("  %-14s error: %s\n", AlgorithmName(algorithm),
                  response.status().ToString().c_str());
      continue;
    }
    const PartitionPlan& plan = response->plan;
    ThroughputResult r = RunPlanThroughput(model, plan, cluster);
    if (r.oom) {
      std::printf("  %-14s OOM   (plan comm %s/iter, peak %s/GPU)\n",
                  AlgorithmName(algorithm), HumanBytes(plan.total_comm_bytes).c_str(),
                  HumanBytes(r.peak_bytes).c_str());
    } else {
      std::printf(
          "  %-14s %6.2f s/batch   (compute %5.2f s, comm overhead %4.1f%%, comm %s)\n",
          AlgorithmName(algorithm), r.iter_seconds, r.compute_seconds,
          r.comm_fraction * 100.0, HumanBytes(plan.total_comm_bytes).c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace tofu

int main(int argc, char** argv) {
  using namespace tofu;
  std::vector<PartitionAlgorithm> algorithms = {
      PartitionAlgorithm::kAllRowGreedy, PartitionAlgorithm::kSpartan,
      PartitionAlgorithm::kEqualChop, PartitionAlgorithm::kIcml18,
      PartitionAlgorithm::kTofu};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      Result<PartitionAlgorithm> algorithm = AlgorithmFromName(argv[i] + 7);
      if (!algorithm.ok()) {
        std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
        return 2;
      }
      algorithms = {*algorithm};
    } else {
      std::fprintf(stderr, "unknown argument '%s'; usage: bench_fig10_algos [--algo=Name]\n",
                   argv[i]);
      return 2;
    }
  }

  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Figure 10: comparison of partition algorithms (8 GPUs) ===\n");
  std::printf("paper: (a) RNN-4-8K  AllRow 24.5s / Spartan 21.1s / EqualChop 13.8s /\n"
              "           ICML18 13.2s / Tofu 6.4s;\n"
              "       (b) WResNet-152-10  AllRow OOM / Spartan 33.8s / EqualChop 35.2s /\n"
              "           ICML18 OOM / Tofu 21.9s\n\n");
  {
    RnnConfig config;
    config.layers = 4;
    config.hidden = 8192;
    config.batch = 512;
    RunCase("RNN-4-8K", BuildRnn(config), cluster, algorithms);
  }
  {
    WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    RunCase("WResNet-152-10", BuildWResNet(config), cluster, algorithms);
  }
  return 0;
}
