// Figure 10 reproduction: quality of different partition algorithms on RNN-4-8K
// (batch 512) and WResNet-152-10 (batch 8) across 8 GPUs. For each algorithm we report
// per-batch execution time with the communication overhead fraction (the paper measures
// it by skipping memory copies -- our zero-comm simulation), plus OOM where the plan's
// per-worker memory exceeds 12 GB.
#include <cstdio>

#include "tofu/core/experiment.h"
#include "tofu/core/partitioner.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

void RunCase(const std::string& name, ModelGraph model, const ClusterSpec& cluster) {
  std::printf("--- %s (batch %lld) ---\n", name.c_str(),
              static_cast<long long>(model.batch));
  Partitioner partitioner;
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kAllRowGreedy, PartitionAlgorithm::kSpartan,
        PartitionAlgorithm::kEqualChop, PartitionAlgorithm::kIcml18,
        PartitionAlgorithm::kTofu}) {
    PartitionPlan plan = partitioner.Partition(model.graph, cluster.num_gpus, algorithm);
    ThroughputResult r = RunPlanThroughput(model, plan, cluster);
    if (r.oom) {
      std::printf("  %-14s OOM   (plan comm %s/iter, peak %s/GPU)\n",
                  AlgorithmName(algorithm), HumanBytes(plan.total_comm_bytes).c_str(),
                  HumanBytes(r.peak_bytes).c_str());
    } else {
      std::printf(
          "  %-14s %6.2f s/batch   (compute %5.2f s, comm overhead %4.1f%%, comm %s)\n",
          AlgorithmName(algorithm), r.iter_seconds, r.compute_seconds,
          r.comm_fraction * 100.0, HumanBytes(plan.total_comm_bytes).c_str());
    }
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace tofu

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Figure 10: comparison of partition algorithms (8 GPUs) ===\n");
  std::printf("paper: (a) RNN-4-8K  AllRow 24.5s / Spartan 21.1s / EqualChop 13.8s /\n"
              "           ICML18 13.2s / Tofu 6.4s;\n"
              "       (b) WResNet-152-10  AllRow OOM / Spartan 33.8s / EqualChop 35.2s /\n"
              "           ICML18 OOM / Tofu 21.9s\n\n");
  {
    RnnConfig config;
    config.layers = 4;
    config.hidden = 8192;
    config.batch = 512;
    RunCase("RNN-4-8K", BuildRnn(config), cluster);
  }
  {
    WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    RunCase("WResNet-152-10", BuildWResNet(config), cluster);
  }
  return 0;
}
