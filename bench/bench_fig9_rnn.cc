// Figure 9 reproduction: RNN training throughput on 8 simulated GPUs for layer counts
// {6, 8, 10} x hidden sizes {4K, 6K, 8K}, comparing Ideal / SmallBatch / Swapping /
// Op-Placement / Tofu.
#include <cstdio>

#include "tofu/core/experiment.h"

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Figure 9: RNN throughput (samples/sec) on 8 GPUs ===\n");
  std::printf("paper shapes: Tofu 70-98%% of Ideal and best overall; SmallBatch never\n"
              "beats Tofu (GEMMs starve at small batch); Op-Placement 38-61%% of Tofu;\n"
              "Swapping collapses as the weights grow; SmallBatch/Op-Placement OOM on the\n"
              "largest configurations.\n");

  for (int layers : {6, 8, 10}) {
    std::printf("\n--- %d-layer RNN ---\n", layers);
    for (std::int64_t hidden : {4096LL, 6144LL, 8192LL}) {
      ModelFactory factory = RnnFactory(layers, hidden);
      ThroughputResult ideal = IdealThroughput(factory, kRnnIdealBatch, cluster);
      ThroughputResult small = SmallBatchThroughput(factory, kRnnIdealBatch, cluster);
      ThroughputResult swap = SwapThroughput(factory, kRnnIdealBatch, cluster);
      ThroughputResult place = PlacementThroughput(factory, kRnnIdealBatch, cluster, RnnLayerOf);
      ThroughputResult tofu = TofuThroughput(factory, kRnnIdealBatch, cluster);

      std::printf("H=%lldK\n", static_cast<long long>(hidden / 1024));
      std::printf("%s\n", FormatBaselineRow({"Ideal", ideal}, ideal.samples_per_second).c_str());
      std::printf("%s\n",
                  FormatBaselineRow({"SmallBatch", small}, ideal.samples_per_second).c_str());
      std::printf("%s\n", FormatBaselineRow({"Swap", swap}, ideal.samples_per_second).c_str());
      std::printf("%s\n",
                  FormatBaselineRow({"Op-Placement", place}, ideal.samples_per_second).c_str());
      std::printf("%s\n", FormatBaselineRow({"Tofu", tofu}, ideal.samples_per_second).c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
