// Load driver for the concurrent planning service: replays a mixed request stream
// (models x worker counts x budgets x algorithms) against one PlanService from many
// client threads and reports QPS, cache hit rate, and p50/p99 latency per concurrency
// level -- the serving numbers behind docs/serving.md.
//
//   bench_serve --requests=1000 --threads=1,8 [--json]
//
// Each concurrency level gets a fresh service (cold cache), so levels are comparable.
// Clients pop a shared index and push full request lines through the same
// parse -> build -> session path tofu-pland uses (plans omitted from responses, so
// serialization does not dominate). After the replay the driver re-partitions every
// distinct spec on the warm service and on a fresh single-threaded service and
// requires byte-identical PlanToJson output: the concurrent cache must never serve a
// plan a cold single-threaded search would not have produced.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <algorithm>

#include "tofu/partition/plan_io.h"
#include "tofu/serve/request.h"
#include "tofu/serve/server.h"
#include "tofu/util/json.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  int requests = 1000;
  std::vector<int> thread_counts = {1, 8};
  std::uint64_t seed = 42;
  bool json = false;
  // Default algorithm for specs that omit "algorithm" (--algo=NAME); explicit
  // per-spec algorithms always win, matching tofu-pland's flag.
  tofu::PartitionAlgorithm algo = tofu::PartitionAlgorithm::kTofu;
};

// The distinct request specs the replay mixes. Small enough that a full search takes
// milliseconds, varied enough (model/config/workers/budget/algorithm) that the cache
// key space is real.
std::vector<std::string> DistinctSpecs() {
  std::vector<std::string> specs;
  const char* mlp_sizes[] = {"[784,256,10]", "[784,512,256,10]", "[256,128,64,10]"};
  for (const char* sizes : mlp_sizes) {
    for (int workers : {4, 8}) {
      specs.push_back(std::string("{\"model\":\"mlp\",\"workers\":") +
                      std::to_string(workers) +
                      ",\"config\":{\"batch\":64,\"layer_sizes\":" + sizes + "}}");
    }
  }
  for (int layers : {1, 2}) {
    for (int workers : {4, 8}) {
      specs.push_back("{\"model\":\"rnn\",\"workers\":" + std::to_string(workers) +
                      ",\"config\":{\"layers\":" + std::to_string(layers) +
                      ",\"hidden\":128,\"batch\":16,\"timesteps\":4,\"embed\":64}}");
    }
  }
  for (int workers : {4, 8}) {
    specs.push_back(
        "{\"model\":\"transformer\",\"workers\":" + std::to_string(workers) +
        ",\"config\":{\"batch\":4,\"seq_len\":16,\"d_model\":64,\"d_ff\":128,"
        "\"heads\":2,\"layers\":1,\"num_classes\":64}}");
  }
  // Same spec under other algorithms and under a per-worker budget: distinct keys.
  specs.push_back(
      "{\"model\":\"mlp\",\"workers\":8,\"algorithm\":\"EqualChop\","
      "\"config\":{\"batch\":64,\"layer_sizes\":[784,256,10]}}");
  specs.push_back(
      "{\"model\":\"mlp\",\"workers\":8,\"algorithm\":\"Spartan\","
      "\"config\":{\"batch\":64,\"layer_sizes\":[784,256,10]}}");
  specs.push_back(
      "{\"model\":\"mlp\",\"workers\":8,\"algorithm\":\"Hybrid\","
      "\"config\":{\"batch\":64,\"layer_sizes\":[784,256,10]}}");
  specs.push_back(
      "{\"model\":\"mlp\",\"workers\":8,\"memory_budget_bytes\":1073741824,"
      "\"config\":{\"batch\":64,\"layer_sizes\":[784,256,10]}}");
  return specs;
}

// Deterministic replay: specs drawn via an in-line LCG (no global RNG state).
std::vector<std::string> BuildReplay(int requests, std::uint64_t seed) {
  const std::vector<std::string> specs = DistinctSpecs();
  std::vector<std::string> lines;
  lines.reserve(static_cast<size_t>(requests));
  std::uint64_t state = seed * 6364136223846793005ull + 1442695040888963407ull;
  for (int i = 0; i < requests; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    lines.push_back(specs[(state >> 33) % specs.size()]);
  }
  return lines;
}

struct RunResult {
  int threads = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::int64_t errors = 0;
  tofu::PlanCacheStats cache;
  double hit_rate = 0.0;
};

double PercentileMs(std::vector<double> latencies, double q) {
  if (latencies.empty()) return 0.0;
  std::sort(latencies.begin(), latencies.end());
  size_t index = static_cast<size_t>(q * static_cast<double>(latencies.size() - 1));
  return latencies[std::min(index, latencies.size() - 1)] * 1e3;
}

RunResult RunReplay(const std::vector<std::string>& lines, int threads,
                    tofu::PartitionAlgorithm algo) {
  tofu::PlanService service;
  std::atomic<size_t> next{0};
  std::vector<double> latencies(lines.size(), 0.0);
  std::atomic<std::int64_t> errors{0};

  auto client = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= lines.size()) return;
      const auto t0 = Clock::now();
      const std::string response =
          tofu::HandleServeLine(service, lines[i], /*include_plan=*/false, algo);
      latencies[i] = std::chrono::duration<double>(Clock::now() - t0).count();
      if (response.find("\"ok\":true") == std::string::npos) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  const auto wall0 = Clock::now();
  std::vector<std::thread> workers;
  for (int t = 1; t < threads; ++t) workers.emplace_back(client);
  client();
  for (std::thread& worker : workers) worker.join();

  RunResult result;
  result.threads = threads;
  result.seconds = std::chrono::duration<double>(Clock::now() - wall0).count();
  result.qps = result.seconds > 0
                   ? static_cast<double>(lines.size()) / result.seconds
                   : 0.0;
  result.p50_ms = PercentileMs(latencies, 0.50);
  result.p99_ms = PercentileMs(latencies, 0.99);
  result.errors = errors.load();
  result.cache = service.cache_stats();
  const std::int64_t validated =
      result.cache.hits + result.cache.misses + result.cache.coalesced;
  result.hit_rate =
      validated > 0 ? static_cast<double>(result.cache.hits +
                                          result.cache.coalesced) /
                          static_cast<double>(validated)
                    : 0.0;
  return result;
}

// Every distinct spec, partitioned on a warm concurrent service, must serialize to
// exactly the plan a fresh single-threaded search produces. Returns the number of
// mismatches (0 = deterministic).
int CheckDeterminism(const std::vector<std::string>& specs,
                     tofu::PartitionAlgorithm algo) {
  tofu::PlanService warm;
  // Warm the cache from several threads so the checked plans went through the
  // concurrent insert/coalesce path, not a quiet sequential one.
  {
    std::atomic<size_t> next{0};
    auto client = [&]() {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= specs.size() * 4) return;
        tofu::HandleServeLine(warm, specs[i % specs.size()],
                              /*include_plan=*/false, algo);
      }
    };
    std::vector<std::thread> workers;
    for (int t = 0; t < 8; ++t) workers.emplace_back(client);
    for (std::thread& worker : workers) worker.join();
  }

  int mismatches = 0;
  for (const std::string& line : specs) {
    tofu::Result<tofu::ServeRequest> request = tofu::ParseServeRequest(line, algo);
    if (!request.ok()) {
      std::fprintf(stderr, "bench_serve: spec stopped parsing: %s\n",
                   request.status().ToString().c_str());
      ++mismatches;
      continue;
    }
    tofu::Result<tofu::PartitionResponse> cached = warm.Partition(*request);
    tofu::PlanService cold;  // fresh caches, searched on this (single) thread
    tofu::Result<tofu::PartitionResponse> fresh = cold.Partition(*request);
    if (cached.ok() != fresh.ok()) {
      std::fprintf(stderr, "bench_serve: status diverged for %s\n", line.c_str());
      ++mismatches;
      continue;
    }
    if (!cached.ok()) continue;  // same error either way (e.g. budget specs)
    if (!cached->from_cache) {
      std::fprintf(stderr, "bench_serve: warm service missed a warmed spec: %s\n",
                   line.c_str());
      ++mismatches;
    }
    // Search wall time is the one legitimately nondeterministic plan field.
    tofu::PartitionPlan cached_plan = cached->plan;
    tofu::PartitionPlan fresh_plan = fresh->plan;
    cached_plan.search_stats.wall_seconds = 0.0;
    fresh_plan.search_stats.wall_seconds = 0.0;
    if (tofu::PlanToJson(cached_plan) != tofu::PlanToJson(fresh_plan)) {
      std::fprintf(stderr, "bench_serve: plan diverged for %s\n", line.c_str());
      ++mismatches;
    }
  }
  return mismatches;
}

Options ParseOptions(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      options.json = true;
    } else if (arg.rfind("--requests=", 0) == 0) {
      options.requests = std::atoi(arg.c_str() + std::strlen("--requests="));
    } else if (arg.rfind("--seed=", 0) == 0) {
      options.seed = std::strtoull(arg.c_str() + std::strlen("--seed="), nullptr, 10);
    } else if (arg.rfind("--algo=", 0) == 0) {
      tofu::Result<tofu::PartitionAlgorithm> algo =
          tofu::AlgorithmFromName(arg.substr(std::strlen("--algo=")));
      if (!algo.ok()) {
        std::fprintf(stderr, "bench_serve: %s\n", algo.status().ToString().c_str());
        std::exit(2);
      }
      options.algo = *algo;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.thread_counts.clear();
      std::string list = arg.substr(std::strlen("--threads="));
      size_t start = 0;
      while (start < list.size()) {
        size_t comma = list.find(',', start);
        if (comma == std::string::npos) comma = list.size();
        options.thread_counts.push_back(
            std::atoi(list.substr(start, comma - start).c_str()));
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: bench_serve [--requests=N] [--threads=1,8] [--seed=S] "
                   "[--algo=NAME] [--json]\n");
      std::exit(2);
    }
  }
  if (options.requests < 1 || options.thread_counts.empty()) {
    std::fprintf(stderr, "bench_serve: need --requests >= 1 and a --threads list\n");
    std::exit(2);
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = ParseOptions(argc, argv);
  const std::vector<std::string> lines = BuildReplay(options.requests, options.seed);
  // Client-thread speedup is bounded by the cores actually present; on a one-core
  // box the multi-client runs demonstrate correctness (coalescing, determinism)
  // rather than scaling.
  std::fprintf(stderr,
               "bench_serve: %d requests over %zu distinct specs, seed %llu, "
               "%u hardware threads\n",
               options.requests, DistinctSpecs().size(),
               static_cast<unsigned long long>(options.seed),
               std::thread::hardware_concurrency());

  std::vector<RunResult> results;
  for (int threads : options.thread_counts) {
    results.push_back(RunReplay(lines, threads, options.algo));
    const RunResult& r = results.back();
    std::fprintf(stderr,
                 "  threads=%-2d %8.1f qps  %.3fs  hit-rate %5.1f%%  "
                 "(hits %lld, misses %lld, coalesced %lld)  p50 %.3fms  p99 %.3fms"
                 "  errors %lld\n",
                 r.threads, r.qps, r.seconds, r.hit_rate * 100.0,
                 static_cast<long long>(r.cache.hits),
                 static_cast<long long>(r.cache.misses),
                 static_cast<long long>(r.cache.coalesced), r.p50_ms, r.p99_ms,
                 static_cast<long long>(r.errors));
  }
  if (results.size() >= 2 && results.front().threads == 1) {
    const RunResult& base = results.front();
    const RunResult& top = results.back();
    std::fprintf(stderr, "  speedup %dx-clients vs 1: %.2fx\n", top.threads,
                 base.seconds > 0 ? base.seconds / top.seconds : 0.0);
  }

  const int mismatches = CheckDeterminism(DistinctSpecs(), options.algo);
  std::fprintf(stderr, "bench_serve: determinism check %s\n",
               mismatches == 0 ? "OK (concurrent plans == fresh single-threaded)"
                               : "FAILED");

  if (options.json) {
    tofu::JsonWriter w;
    w.BeginObject();
    w.Key("requests").Int(options.requests);
    w.Key("distinct_specs").Int(static_cast<std::int64_t>(DistinctSpecs().size()));
    w.Key("deterministic").Bool(mismatches == 0);
    w.Key("runs").BeginArray();
    for (const RunResult& r : results) {
      w.BeginObject();
      w.Key("threads").Int(r.threads);
      w.Key("seconds").Number(r.seconds);
      w.Key("qps").Number(r.qps);
      w.Key("hit_rate").Number(r.hit_rate);
      w.Key("p50_ms").Number(r.p50_ms);
      w.Key("p99_ms").Number(r.p99_ms);
      w.Key("hits").Int(r.cache.hits);
      w.Key("misses").Int(r.cache.misses);
      w.Key("coalesced").Int(r.cache.coalesced);
      w.Key("errors").Int(r.errors);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::printf("%s\n", w.str().c_str());
  }
  return mismatches == 0 ? 0 : 1;
}
