// Table 3 reproduction: Tofu vs MXNet Op-Placement vs TensorFlow Op-Placement on RNNs
// with hidden size 4096. The paper traces TensorFlow's ~2x gap against MXNet to the lack
// of in-place gradient aggregation; the TF rows disable exactly that mechanism.
#include <cstdio>

#include "tofu/core/experiment.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Table 3: RNN throughput (samples/sec), hidden size 4096 ===\n");
  std::printf("paper: Tofu 210/154/122, MX-OpPlacement 107/95/59, TF-OpPlacement 50/36/30\n\n");
  std::printf("%-18s %-10s %-18s %-18s\n", "", "Tofu", "MX-OpPlacement", "TF-OpPlacement");

  for (int layers : {6, 8, 10}) {
    ModelFactory factory = RnnFactory(layers, 4096);
    ThroughputResult tofu = TofuThroughput(factory, kRnnIdealBatch, cluster);
    ThroughputResult mx = PlacementThroughput(factory, kRnnIdealBatch, cluster, RnnLayerOf);
    LowerOptions tf_mode;
    tf_mode.inplace_grad_agg = false;
    ThroughputResult tf =
        PlacementThroughput(factory, kRnnIdealBatch, cluster, RnnLayerOf, tf_mode);

    auto cell = [](const ThroughputResult& r) {
      return r.oom ? std::string("OOM") : tofu::StrFormat("%.0f", r.samples_per_second);
    };
    std::printf("RNN-%-2d             %-10s %-18s %-18s\n", layers, cell(tofu).c_str(),
                cell(mx).c_str(), cell(tf).c_str());
    std::fflush(stdout);
  }
  return 0;
}
