// Ablation bench (DESIGN.md §7): the contribution of each design choice, measured on
// RNN-6-4K and WResNet-101-8 across 8 simulated GPUs.
//   * coarsening pieces (fw/bw grouping off, element-wise coalescing off, unroll merge
//     off) -- effect on search time and plan quality;
//   * §6 lowering optimizations (control deps, MultiFetch, delayed fetch) -- effect on
//     per-worker peak memory and iteration time;
//   * output-reduction strategies off (the ICML18 delta) -- effect on plan communication.
#include <chrono>
#include <cstdio>

#include "tofu/core/experiment.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

using Clock = std::chrono::steady_clock;

void CoarsenAblation(const std::string& name, const ModelGraph& model) {
  std::printf("--- coarsening ablation: %s ---\n", name.c_str());
  struct Row {
    const char* label;
    CoarsenOptions options;
  };
  CoarsenOptions no_fwbw;
  no_fwbw.group_forward_backward = false;
  CoarsenOptions no_ew;
  no_ew.coalesce_elementwise = false;
  CoarsenOptions no_unroll;
  no_unroll.merge_unrolled_steps = false;
  CoarsenOptions tie;
  tie.tie_fw_bw_tensors = true;
  for (const Row& row : {Row{"full coarsening", {}}, Row{"no fw/bw grouping", no_fwbw},
                         Row{"no ew coalescing", no_ew}, Row{"no unroll merge", no_unroll},
                         Row{"tie fw/bw tensors", tie}}) {
    PartitionOptions options;
    options.coarsen = row.options;
    // Ablations that weaken coarsening can blow up the frontier; cap it tightly so the
    // degraded beam search stays fast (the point is the warning + quality loss, not an
    // hour of search).
    options.dp.max_states = 1 << 14;
    auto t0 = Clock::now();
    PartitionPlan plan = RecursivePartition(model.graph, 8, options);
    const double secs = std::chrono::duration<double>(Clock::now() - t0).count();
    std::printf("  %-20s search %-9s comm %s/iter\n", row.label,
                HumanSeconds(secs).c_str(), HumanBytes(plan.total_comm_bytes).c_str());
    std::fflush(stdout);
  }
}

void LoweringAblation(const std::string& name, const ModelGraph& model,
                      const ClusterSpec& cluster) {
  std::printf("--- lowering (Sec.6) ablation: %s ---\n", name.c_str());
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  struct Row {
    const char* label;
    LowerOptions options;
  };
  LowerOptions no_ctrl;
  no_ctrl.add_control_deps = false;
  LowerOptions no_fuse;
  no_fuse.multifetch = false;
  LowerOptions no_delay;
  no_delay.delay_fetch = false;
  for (const Row& row : {Row{"all optimizations", {}}, Row{"no control deps", no_ctrl},
                         Row{"no MultiFetch", no_fuse}, Row{"no delayed fetch", no_delay}}) {
    ThroughputResult r = RunPlanThroughput(model, plan, cluster, row.options);
    std::printf("  %-20s iter %-9s peak %-10s %s\n", row.label,
                HumanSeconds(r.iter_seconds).c_str(), HumanBytes(r.peak_bytes).c_str(),
                r.oom ? "OOM" : "");
    std::fflush(stdout);
  }
}

void ReductionAblation(const std::string& name, const ModelGraph& model) {
  std::printf("--- output-reduction ablation: %s ---\n", name.c_str());
  PartitionPlan with = RecursivePartition(model.graph, 8);
  PartitionOptions no_reduction;
  no_reduction.dp.allow_reduction_strategies = false;
  PartitionPlan without = RecursivePartition(model.graph, 8, no_reduction);
  std::printf("  with reductions:      comm %s/iter\n",
              HumanBytes(with.total_comm_bytes).c_str());
  std::printf("  without (ICML18):     comm %s/iter (%.2fx)\n",
              HumanBytes(without.total_comm_bytes).c_str(),
              without.total_comm_bytes / std::max(1.0, with.total_comm_bytes));
}

}  // namespace
}  // namespace tofu

int main() {
  using namespace tofu;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Ablations: design choices called out in DESIGN.md ===\n\n");
  {
    RnnConfig config;
    config.layers = 6;
    config.hidden = 4096;
    config.batch = 256;
    ModelGraph model = BuildRnn(config);
    CoarsenAblation("RNN-6-4K", model);
    LoweringAblation("RNN-6-4K", model, cluster);
    ReductionAblation("RNN-6-4K", model);
  }
  std::printf("\n");
  {
    WResNetConfig config;
    config.layers = 101;
    config.width = 8;
    config.batch = 16;
    ModelGraph model = BuildWResNet(config);
    CoarsenAblation("WResNet-101-8", model);
    LoweringAblation("WResNet-101-8", model, cluster);
    ReductionAblation("WResNet-101-8", model);
  }
  return 0;
}
