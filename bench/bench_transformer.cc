// Transformer encoder benchmark: the first workload outside the paper's evaluation.
// Partitions multi-head-attention encoder stacks across the simulated 8-GPU machine and
// compares Tofu's recursive DP against classic data parallelism (activations batch-split,
// weights replicated and all-reduced) and the one-dimension flat DP (EqualChop).
//
//   ./bench_transformer           # full sweep: 3 configurations x 3 algorithms
//   ./bench_transformer --smoke   # one small configuration (CI)
#include <cstdio>
#include <cstring>

#include "tofu/core/partitioner.h"
#include "tofu/models/transformer.h"
#include "tofu/sim/runtimes.h"
#include "tofu/util/strings.h"

namespace {

using namespace tofu;

void RunConfig(const TransformerConfig& config, const ClusterSpec& cluster) {
  ModelGraph model = BuildTransformer(config);
  std::printf("\n--- %s: seq %lld, d_ff %lld, batch %lld ---\n", model.name.c_str(),
              static_cast<long long>(config.seq_len), static_cast<long long>(config.d_ff),
              static_cast<long long>(config.batch));
  std::printf("%d ops, %d tensors, %s of weights+grads+history\n", model.graph.num_ops(),
              model.graph.num_tensors(),
              HumanBytes(static_cast<double>(model.ModelStateBytes())).c_str());

  Partitioner partitioner;
  const PartitionAlgorithm algos[] = {PartitionAlgorithm::kDataParallel,
                                      PartitionAlgorithm::kEqualChop,
                                      PartitionAlgorithm::kTofu};
  double dp_comm = 0.0;
  double tofu_comm = 0.0;
  std::printf("%-14s %16s %14s %14s %10s\n", "algorithm", "comm bytes/iter", "samples/s",
              "peak/GPU", "comm frac");
  for (PartitionAlgorithm algo : algos) {
    PartitionPlan plan = partitioner.Partition(model.graph, cluster.num_gpus, algo);
    ThroughputResult result = RunPlanThroughput(model, plan, cluster);
    std::printf("%-14s %16s %14.1f %14s %9.1f%%%s\n", AlgorithmName(algo),
                HumanBytes(plan.total_comm_bytes).c_str(), result.samples_per_second,
                HumanBytes(result.peak_bytes).c_str(), result.comm_fraction * 100.0,
                result.oom ? " (OOM)" : "");
    if (algo == PartitionAlgorithm::kDataParallel) {
      dp_comm = plan.total_comm_bytes;
    } else if (algo == PartitionAlgorithm::kTofu) {
      tofu_comm = plan.total_comm_bytes;
    }
  }
  std::printf("Tofu vs DataParallel communication: %.2fx %s\n",
              dp_comm > 0.0 ? dp_comm / tofu_comm : 0.0,
              tofu_comm < dp_comm ? "lower (PASS)" : "NOT lower (FAIL)");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Transformer encoder on %d simulated GPUs ===\n", cluster.num_gpus);
  std::printf("expected shape: Tofu strictly below DataParallel on communication (it can\n"
              "shard the projection/FFN weights instead of all-reducing their gradients)\n"
              "and at or below EqualChop (recursion reaches multi-dimension tilings).\n");

  if (smoke) {
    TransformerConfig config;
    config.batch = 16;
    config.seq_len = 32;
    config.d_model = 128;
    config.d_ff = 256;
    config.heads = 2;
    config.layers = 2;
    config.num_classes = 64;
    RunConfig(config, cluster);
    return 0;
  }

  // Sweep depth and width; batch stays modest so weight traffic dominates -- the regime
  // where data parallelism pays its all-reduce tax.
  for (int layers : {2, 4}) {
    TransformerConfig config;
    config.layers = layers;
    config.batch = 32;
    config.seq_len = 128;
    config.d_model = 512;
    config.d_ff = 2048;
    config.heads = 4;
    RunConfig(config, cluster);
  }
  {
    TransformerConfig config;
    config.layers = 2;
    config.batch = 32;
    config.seq_len = 128;
    config.d_model = 1024;
    config.d_ff = 4096;
    config.heads = 8;
    RunConfig(config, cluster);
  }
  return 0;
}
