// Transformer encoder benchmark: the first workload outside the paper's evaluation.
// Partitions multi-head-attention encoder stacks across the simulated 8-GPU machine and
// compares Tofu's recursive DP against classic data parallelism (activations batch-split,
// weights replicated and all-reduced) and the one-dimension flat DP (EqualChop).
//
//   ./bench_transformer                  # full sweep: 3 configurations x 3 algorithms
//   ./bench_transformer --smoke          # one small configuration (CI)
//   ./bench_transformer --json out.json  # also emit machine-readable results
//   ./bench_transformer --algo=Tofu      # restrict to one algorithm
//   ./bench_transformer --memory-budget auto          # comm/memory frontier per config
//   ./bench_transformer --memory-budget 1073741824    # explicit bytes (comma-list ok)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/models/transformer.h"
#include "tofu/sim/runtimes.h"
#include "tofu/util/json.h"
#include "tofu/util/strings.h"

namespace {

using namespace tofu;

std::vector<PartitionAlgorithm> g_algorithms = {PartitionAlgorithm::kDataParallel,
                                                PartitionAlgorithm::kEqualChop,
                                                PartitionAlgorithm::kTofu};
std::string g_budget_spec;  // empty = no frontier sweep; "auto" or comma byte counts

// The comm-time/memory frontier for one configuration: Tofu's plan under a descending
// budget ladder. Tighter budgets trade communication for residency until nothing fits.
void RunBudgetSweep(const ModelGraph& model, const ClusterSpec& cluster) {
  Session session(DeviceTopology::FromCluster(cluster));
  PartitionRequest request;
  request.graph = &model.graph;
  std::vector<std::int64_t> budgets;
  if (g_budget_spec == "auto") {
    Result<PartitionResponse> free_response = session.Partition(request);
    if (!free_response.ok()) {
      return;
    }
    budgets.push_back(0);
    for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.05}) {
      budgets.push_back(static_cast<std::int64_t>(
          static_cast<double>(free_response->all_resident_bytes) * fraction));
    }
  } else {
    for (const std::string& token : Split(g_budget_spec, ',')) {
      budgets.push_back(std::strtoll(token.c_str(), nullptr, 10));
    }
  }
  std::printf("memory frontier (Tofu):\n  %14s %14s %16s %12s\n", "budget/worker",
              "peak/worker", "comm bytes/iter", "comm time");
  for (std::int64_t budget : budgets) {
    request.memory_budget_bytes = budget;
    Result<PartitionResponse> response = session.Partition(request);
    if (!response.ok()) {
      std::printf("  %14s %s\n",
                  budget > 0 ? HumanBytes(static_cast<double>(budget)).c_str() : "none",
                  response.status().ToString().c_str());
      continue;
    }
    std::printf("  %14s %14s %16s %12s\n",
                budget > 0 ? HumanBytes(static_cast<double>(budget)).c_str() : "none",
                HumanBytes(static_cast<double>(response->peak_shard_bytes)).c_str(),
                HumanBytes(response->plan.total_comm_bytes).c_str(),
                HumanSeconds(response->estimated_comm_seconds).c_str());
  }
}

void RunConfig(const TransformerConfig& config, const ClusterSpec& cluster,
               JsonWriter* json) {
  ModelGraph model = BuildTransformer(config);
  std::printf("\n--- %s: seq %lld, d_ff %lld, batch %lld ---\n", model.name.c_str(),
              static_cast<long long>(config.seq_len), static_cast<long long>(config.d_ff),
              static_cast<long long>(config.batch));
  std::printf("%d ops, %d tensors, %s of weights+grads+history\n", model.graph.num_ops(),
              model.graph.num_tensors(),
              HumanBytes(static_cast<double>(model.ModelStateBytes())).c_str());

  Session session(DeviceTopology::FromCluster(cluster));
  double dp_comm = 0.0;
  double tofu_comm = 0.0;
  std::printf("%-14s %16s %14s %14s %10s\n", "algorithm", "comm bytes/iter", "samples/s",
              "peak/GPU", "comm frac");
  if (json != nullptr) {
    json->BeginObject();
    json->Key("model").String(model.name);
    json->Key("seq_len").Int(config.seq_len);
    json->Key("d_model").Int(config.d_model);
    json->Key("d_ff").Int(config.d_ff);
    json->Key("layers").Int(config.layers);
    json->Key("batch").Int(config.batch);
    json->Key("algorithms").BeginArray();
  }
  for (PartitionAlgorithm algo : g_algorithms) {
    PartitionRequest partition_request;
    partition_request.graph = &model.graph;
    partition_request.algorithm = algo;
    Result<PartitionResponse> response = session.Partition(partition_request);
    if (!response.ok()) {
      std::printf("%-14s error: %s\n", AlgorithmName(algo),
                  response.status().ToString().c_str());
      continue;
    }
    const PartitionPlan& plan = response->plan;
    ThroughputResult result = RunPlanThroughput(model, plan, cluster);
    std::printf("%-14s %16s %14.1f %14s %9.1f%%%s\n", AlgorithmName(algo),
                HumanBytes(plan.total_comm_bytes).c_str(), result.samples_per_second,
                HumanBytes(result.peak_bytes).c_str(), result.comm_fraction * 100.0,
                result.oom ? " (OOM)" : "");
    if (json != nullptr) {
      json->BeginObject();
      json->Key("algorithm").String(AlgorithmName(algo));
      json->Key("comm_bytes").Number(plan.total_comm_bytes);
      json->Key("samples_per_second").Number(result.samples_per_second);
      json->Key("peak_bytes").Number(result.peak_bytes);
      json->Key("comm_fraction").Number(result.comm_fraction);
      json->Key("oom").Bool(result.oom);
      json->Key("states_explored").Int(plan.search_stats.states_explored);
      json->Key("search_wall_seconds").Number(plan.search_stats.wall_seconds);
      json->EndObject();
    }
    if (algo == PartitionAlgorithm::kDataParallel) {
      dp_comm = plan.total_comm_bytes;
    } else if (algo == PartitionAlgorithm::kTofu) {
      tofu_comm = plan.total_comm_bytes;
    }
  }
  if (json != nullptr) {
    json->EndArray();
    json->Key("tofu_vs_dp_comm_ratio")
        .Number(dp_comm > 0.0 && tofu_comm > 0.0 ? dp_comm / tofu_comm : 0.0);
    json->EndObject();
  }
  if (dp_comm > 0.0 && tofu_comm > 0.0) {
    std::printf("Tofu vs DataParallel communication: %.2fx %s\n", dp_comm / tofu_comm,
                tofu_comm < dp_comm ? "lower (PASS)" : "NOT lower (FAIL)");
  }
  if (!g_budget_spec.empty()) {
    RunBudgetSweep(model, cluster);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strncmp(argv[i], "--algo=", 7) == 0) {
      Result<PartitionAlgorithm> algorithm = AlgorithmFromName(argv[i] + 7);
      if (!algorithm.ok()) {
        std::fprintf(stderr, "%s\n", algorithm.status().ToString().c_str());
        return 2;
      }
      g_algorithms = {*algorithm};
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 && i + 1 < argc) {
      g_budget_spec = argv[++i];
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'; usage: bench_transformer [--smoke] "
                   "[--json out.json] [--algo=Name] [--memory-budget auto|bytes,...]\n",
                   argv[i]);
      return 2;
    }
  }
  const ClusterSpec cluster = K80Cluster();
  std::printf("=== Transformer encoder on %d simulated GPUs ===\n", cluster.num_gpus);
  std::printf("expected shape: Tofu strictly below DataParallel on communication (it can\n"
              "shard the projection/FFN weights instead of all-reducing their gradients)\n"
              "and at or below EqualChop (recursion reaches multi-dimension tilings).\n");

  JsonWriter json;
  json.BeginObject();
  json.Key("benchmark").String("transformer");
  json.Key("workers").Int(cluster.num_gpus);
  json.Key("results").BeginArray();
  JsonWriter* json_ptr = json_path.empty() ? nullptr : &json;

  if (smoke) {
    TransformerConfig config;
    config.batch = 16;
    config.seq_len = 32;
    config.d_model = 128;
    config.d_ff = 256;
    config.heads = 2;
    config.layers = 2;
    config.num_classes = 64;
    RunConfig(config, cluster, json_ptr);
  } else {
    // Sweep depth and width; batch stays modest so weight traffic dominates -- the
    // regime where data parallelism pays its all-reduce tax.
    for (int layers : {2, 4}) {
      TransformerConfig config;
      config.layers = layers;
      config.batch = 32;
      config.seq_len = 128;
      config.d_model = 512;
      config.d_ff = 2048;
      config.heads = 4;
      RunConfig(config, cluster, json_ptr);
    }
    {
      TransformerConfig config;
      config.layers = 2;
      config.batch = 32;
      config.seq_len = 128;
      config.d_model = 1024;
      config.d_ff = 4096;
      config.heads = 8;
      RunConfig(config, cluster, json_ptr);
    }
  }

  json.EndArray();
  json.EndObject();
  if (!json_path.empty()) {
    if (!WriteTextFile(json_path, json.str() + "\n")) {
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
