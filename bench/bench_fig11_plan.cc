// Figure 11 reproduction: the partition plan Tofu finds for WResNet-152-10 on 8 GPUs --
// per convolution, how the weight and activation tensors are tiled, with repeated
// residual blocks collapsed ("xN"). The paper's observations to look for:
//   * both batch and channel dimensions are partitioned (a non-trivial mix);
//   * different convolutions within one bottleneck block use different strategies;
//   * lower layers (big activations, small weights) prefer fetching weights, while upper
//     layers (big weights) switch to strategies that fetch activations.
#include <cstdio>

#include "tofu/core/report.h"
#include "tofu/core/session.h"
#include "tofu/models/wresnet.h"
#include "tofu/util/strings.h"

int main() {
  using namespace tofu;
  WResNetConfig config;
  config.layers = 152;
  config.width = 10;
  config.batch = 8;
  ModelGraph model = BuildWResNet(config);

  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  if (!response.ok()) {
    std::fprintf(stderr, "partitioning failed: %s\n", response.status().ToString().c_str());
    return 1;
  }
  const PartitionPlan& plan = response->plan;

  std::printf("=== Figure 11: Tofu's partition of WResNet-152-10 across 8 GPUs ===\n\n");
  std::printf("%s\n", PlanSummary(model.graph, plan).c_str());
  std::printf("(d0 = batch/out-channel, d1 = channel/in-channel, d2/d3 = spatial; weight\n"
              " tensors are [Co,Ci,Kh,Kw], activations [B,C,H,W]; fc weights [in,out])\n\n");
  std::printf("%s", TilingReport(model.graph, plan).c_str());

  // Headline statistics matching the paper's qualitative claims.
  int conv_count = 0;
  int batch_tiled = 0;
  int channel_tiled = 0;
  int multi_dim = 0;
  for (const OpNode& op : model.graph.ops()) {
    if (op.is_backward || op.type != "conv2d") {
      continue;
    }
    ++conv_count;
    std::vector<int> splits = plan.TensorSplits(model.graph, op.inputs[0]);
    batch_tiled += splits[0] > 1 ? 1 : 0;
    channel_tiled += splits[1] > 1 ? 1 : 0;
    int dims = 0;
    for (int s : splits) {
      dims += s > 1 ? 1 : 0;
    }
    multi_dim += dims >= 2 ? 1 : 0;
  }
  std::printf("\n%d forward convolutions: %d activation(s) tiled on batch, %d on channel, "
              "%d on multiple dimensions\n",
              conv_count, batch_tiled, channel_tiled, multi_dim);
  return 0;
}
