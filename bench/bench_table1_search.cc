// Table 1 reproduction: partition search time for 8 workers.
//
//                      WResNet-152    RNN-10
//   Original DP [14]   n/a            n/a
//   DP w/ coarsening   8 hours        >24 hours
//   Using recursion    8.3 seconds    66.6 seconds
//
// We time our recursive search directly and run the flat ("DP with coarsening",
// multi-dimension joint enumeration) search under a wall-clock budget, projecting its
// completion time from the enumerated share -- the same blow-up the paper measured.
#include <chrono>
#include <cstdio>

#include "tofu/models/rnn.h"
#include "tofu/models/wresnet.h"
#include "tofu/partition/flat_dp.h"
#include "tofu/partition/recursive.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

using Clock = std::chrono::steady_clock;

void Run(const std::string& name, ModelGraph model) {
  std::printf("--- %s (%d ops, %d tensors) ---\n", name.c_str(), model.graph.num_ops(),
              model.graph.num_tensors());

  auto t0 = Clock::now();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const double recursive_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("  using recursion:      %-10s (plan comm %s/iter)\n",
              HumanSeconds(recursive_s).c_str(), HumanBytes(plan.total_comm_bytes).c_str());

  CoarseGraph coarse = Coarsen(model.graph);
  FlatDpOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 5.0;
  FlatDpResult flat = RunFlatDp(model.graph, coarse, options);
  if (flat.completed) {
    std::printf("  DP with coarsening:   %-10s (completed; %.3g configurations)\n",
                HumanSeconds(flat.elapsed_seconds).c_str(), flat.configs_total);
  } else {
    std::printf(
        "  DP with coarsening:   ~%-9s (projected from %.3g of %.3g joint "
        "configurations in %s)\n",
        HumanSeconds(flat.projected_seconds).c_str(), flat.configs_evaluated,
        flat.configs_total, HumanSeconds(flat.elapsed_seconds).c_str());
  }
  std::printf("  original DP [14]:     n/a (layer-graph DP is inapplicable to %d operators)\n",
              model.graph.num_ops());
  std::printf("  speedup (recursion vs flat): %.0fx\n\n",
              (flat.completed ? flat.elapsed_seconds : flat.projected_seconds) /
                  std::max(recursive_s, 1e-9));
}

}  // namespace
}  // namespace tofu

int main() {
  std::printf("=== Table 1: time to search for the best partition (8 workers) ===\n");
  std::printf("paper: WResNet-152 8h flat / 8.3s recursive; RNN-10 >24h flat / 66.6s "
              "recursive\n\n");
  {
    tofu::WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    tofu::Run("WResNet-152-10", tofu::BuildWResNet(config));
  }
  {
    tofu::RnnConfig config;
    config.layers = 10;
    config.hidden = 8192;
    config.batch = 128;
    tofu::Run("RNN-10-8K", tofu::BuildRnn(config));
  }
  return 0;
}
