// Table 1 reproduction: partition search time for 8 workers.
//
//                      WResNet-152    RNN-10
//   Original DP [14]   n/a            n/a
//   DP w/ coarsening   8 hours        >24 hours
//   Using recursion    8.3 seconds    66.6 seconds
//
// We time our recursive search directly and run the flat ("DP with coarsening",
// multi-dimension joint enumeration) search under a wall-clock budget, projecting its
// completion time from the enumerated share -- the same blow-up the paper measured.
//
//   ./bench_table1_search                  # human-readable table
//   ./bench_table1_search --json out.json  # also emit machine-readable results
//                                          # (tools/check_perf.py gates CI on them)
//   ./bench_table1_search --memory-budget auto         # comm/memory frontier sweep
//   ./bench_table1_search --memory-budget 8589934592   # one budget (bytes, comma-list ok)
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/interconnect/interconnect.h"
#include "tofu/memory/repair.h"
#include "tofu/models/moe.h"
#include "tofu/models/rnn.h"
#include "tofu/models/transformer.h"
#include "tofu/models/wresnet.h"
#include "tofu/partition/flat_dp.h"
#include "tofu/partition/plan_io.h"
#include "tofu/partition/recursive.h"
#include "tofu/pipeline/pipeline_sim.h"
#include "tofu/pipeline/stage_cost.h"
#include "tofu/util/json.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

using Clock = std::chrono::steady_clock;

// The comm-time/memory frontier: the same model partitioned under a descending ladder
// of per-worker budgets. Tightening the budget can only raise communication (the search
// gives up cheap-but-heavy placements), until no configuration fits at all.
void RunBudgetSweep(const std::string& name, const ModelGraph& model,
                    const std::vector<std::int64_t>& budgets) {
  Session session(DeviceTopology::Uniform(8));
  std::printf("--- %s: comm-time/memory frontier (8 workers) ---\n", name.c_str());
  std::printf("  %14s %14s %16s %12s %10s\n", "budget/worker", "peak/worker",
              "comm bytes/iter", "comm time", "pruned");
  for (std::int64_t budget : budgets) {
    PartitionRequest request;
    request.graph = &model.graph;
    request.memory_budget_bytes = budget;
    Result<PartitionResponse> response = session.Partition(request);
    if (!response.ok()) {
      std::printf("  %14s %s\n",
                  budget > 0 ? HumanBytes(static_cast<double>(budget)).c_str() : "none",
                  response.status().ToString().c_str());
      continue;
    }
    std::printf("  %14s %14s %16s %12s %10lld\n",
                budget > 0 ? HumanBytes(static_cast<double>(budget)).c_str() : "none",
                HumanBytes(static_cast<double>(response->peak_shard_bytes)).c_str(),
                HumanBytes(response->plan.total_comm_bytes).c_str(),
                HumanSeconds(response->estimated_comm_seconds).c_str(),
                static_cast<long long>(
                    response->plan.search_stats.memory_pruned_states));
  }
  std::printf("\n");
}

// The comm-time/peak-memory/recompute frontier (Session::MemoryFrontier): budgets
// descending from the unconstrained liveness peak to the floor no schedule can beat
// (MinAchievablePeakBytes), plus one genuinely infeasible row. Rows below the
// unconstrained peak fit only through the repair pass's swap/recompute schedule, so
// each also reports the schedule's analytic overhead and its event-sim replay.
// tools/check_perf.py gates the frontier's monotonicity (tighter budget => equal-or-
// higher offload overhead) and pins schedule_free_digest so the repair path cannot
// perturb unconstrained plans.
void RunFrontier(const std::string& name, const ModelGraph& model, JsonWriter* json) {
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> unconstrained = session.Partition(request);
  if (!unconstrained.ok()) {
    std::printf("  %-24s %s\n", name.c_str(),
                unconstrained.status().ToString().c_str());
    return;
  }
  const std::int64_t peak = unconstrained->peak_shard_bytes;
  const std::int64_t floor =
      MinAchievablePeakBytes(model.graph, unconstrained->plan);
  std::vector<std::int64_t> budgets;
  for (int i = 0; i <= 4; ++i) {
    budgets.push_back(peak + 1 - ((peak + 1 - floor) * i) / 4);
  }
  budgets.push_back(floor / 2);  // below the floor: the frontier's infeasible edge
  Result<std::vector<FrontierPoint>> frontier =
      session.MemoryFrontier(request, budgets);
  if (!frontier.ok()) {
    std::printf("  %-24s %s\n", name.c_str(), frontier.status().ToString().c_str());
    return;
  }

  std::printf("  %s (%d ops; unconstrained peak %s, offload floor %s)\n", name.c_str(),
              model.graph.num_ops(), HumanBytes(static_cast<double>(peak)).c_str(),
              HumanBytes(static_cast<double>(floor)).c_str());
  std::printf("    %14s %14s %12s %14s %14s\n", "budget/worker", "peak/worker",
              "comm time", "overhead", "overhead(sim)");
  for (const FrontierPoint& point : *frontier) {
    if (!point.feasible) {
      std::printf("    %14s infeasible (below the full-offload floor)\n",
                  HumanBytes(static_cast<double>(point.budget_bytes)).c_str());
      continue;
    }
    std::printf("    %14s %14s %12s %14s %14s\n",
                HumanBytes(static_cast<double>(point.budget_bytes)).c_str(),
                HumanBytes(static_cast<double>(point.peak_shard_bytes)).c_str(),
                HumanSeconds(point.comm_seconds).c_str(),
                HumanSeconds(point.memory_overhead_seconds).c_str(),
                HumanSeconds(point.simulated_memory_seconds).c_str());
  }

  if (json != nullptr) {
    json->BeginObject();
    json->Key("model").String(name + "@frontier");
    json->Key("num_ops").Int(model.graph.num_ops());
    json->Key("num_tensors").Int(model.graph.num_tensors());
    json->Key("workers").Int(8);
    json->Key("unconstrained_peak_bytes").Int(peak);
    json->Key("min_achievable_peak_bytes").Int(floor);
    json->Key("schedule_free_digest").String(PlanDigest(unconstrained->plan));
    json->Key("frontier").BeginArray();
    for (const FrontierPoint& point : *frontier) {
      json->BeginObject();
      json->Key("budget_bytes").Int(point.budget_bytes);
      json->Key("feasible").Bool(point.feasible);
      json->Key("peak_shard_bytes").Int(point.peak_shard_bytes);
      json->Key("comm_seconds").Number(point.comm_seconds);
      json->Key("memory_overhead_seconds").Number(point.memory_overhead_seconds);
      json->Key("simulated_memory_seconds").Number(point.simulated_memory_seconds);
      json->Key("swap_bytes").Number(point.swap_bytes);
      json->Key("recompute_seconds").Number(point.recompute_seconds);
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
  }
}

// "auto" derives a ladder from the unconstrained footprint: the all-resident sum down
// to fractions of it, ending in one that cannot fit (the error row of the frontier).
std::vector<std::int64_t> AutoBudgets(const ModelGraph& model) {
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  std::vector<std::int64_t> budgets = {0};
  if (!response.ok()) {
    return budgets;
  }
  for (double fraction : {1.0, 0.75, 0.5, 0.25, 0.05}) {
    budgets.push_back(static_cast<std::int64_t>(
        static_cast<double>(response->all_resident_bytes) * fraction));
  }
  return budgets;
}

void Run(const std::string& name, ModelGraph model, JsonWriter* json) {
  std::printf("--- %s (%d ops, %d tensors) ---\n", name.c_str(), model.graph.num_ops(),
              model.graph.num_tensors());

  auto t0 = Clock::now();
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  const double recursive_s = std::chrono::duration<double>(Clock::now() - t0).count();
  std::printf("  using recursion:      %-10s (plan comm %s/iter)\n",
              HumanSeconds(recursive_s).c_str(), HumanBytes(plan.total_comm_bytes).c_str());
  std::printf("  engine stats:         %lld cost evaluations, peak frontier %lld states, "
              "%lld table cells%s\n",
              static_cast<long long>(plan.search_stats.states_explored),
              static_cast<long long>(plan.search_stats.max_frontier_states),
              static_cast<long long>(plan.search_stats.cost_table_entries),
              plan.search_stats.exact ? "" : " (beam-degraded)");

  CoarseGraph coarse = Coarsen(model.graph);
  FlatDpOptions options;
  options.num_workers = 8;
  options.time_budget_seconds = 5.0;
  FlatDpResult flat = RunFlatDp(model.graph, coarse, options);
  if (flat.completed) {
    std::printf("  DP with coarsening:   %-10s (completed; %.3g configurations)\n",
                HumanSeconds(flat.elapsed_seconds).c_str(), flat.configs_total);
  } else {
    std::printf(
        "  DP with coarsening:   ~%-9s (projected from %.3g of %.3g joint "
        "configurations in %s)\n",
        HumanSeconds(flat.projected_seconds).c_str(), flat.configs_evaluated,
        flat.configs_total, HumanSeconds(flat.elapsed_seconds).c_str());
  }
  std::printf("  original DP [14]:     n/a (layer-graph DP is inapplicable to %d operators)\n",
              model.graph.num_ops());
  std::printf("  speedup (recursion vs flat): %.0fx\n\n",
              (flat.completed ? flat.elapsed_seconds : flat.projected_seconds) /
                  std::max(recursive_s, 1e-9));

  // Serving-path check the CI perf gate asserts on: a repeated identical request must
  // hit the session's plan cache, and the cached plan must be byte-identical (in its
  // JSON serialization) to what a fresh session searches from scratch.
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> first = session.Partition(request);
  Result<PartitionResponse> second = session.Partition(request);
  Session fresh_session(DeviceTopology::Uniform(8));
  Result<PartitionResponse> fresh = fresh_session.Partition(request);
  const bool cache_hit = first.ok() && second.ok() && !first->from_cache &&
                         second->from_cache && session.cache_stats().hits == 1;
  // Byte-identical up to search wall time, the one nondeterministic plan field.
  auto comparable = [](PartitionPlan plan) {
    plan.search_stats.wall_seconds = 0.0;
    return PlanToJson(plan);
  };
  const bool identical =
      second.ok() && fresh.ok() && comparable(second->plan) == comparable(fresh->plan);
  std::printf("  session plan cache:   repeat %s, cached == fresh plan: %s\n\n",
              cache_hit ? "hit" : "MISSED", identical ? "byte-identical" : "DIVERGED");

  if (json != nullptr) {
    json->BeginObject();
    json->Key("model").String(name);
    json->Key("num_ops").Int(model.graph.num_ops());
    json->Key("num_tensors").Int(model.graph.num_tensors());
    json->Key("recursive_seconds").Number(recursive_s);
    json->Key("recursive_comm_bytes").Number(plan.total_comm_bytes);
    json->Key("states_explored").Int(plan.search_stats.states_explored);
    json->Key("max_frontier_states").Int(plan.search_stats.max_frontier_states);
    json->Key("cost_table_entries").Int(plan.search_stats.cost_table_entries);
    json->Key("pruned_table_cells").Int(plan.search_stats.pruned_table_cells);
    json->Key("exact").Bool(plan.search_stats.exact);
    json->Key("flat_completed").Bool(flat.completed);
    json->Key("flat_elapsed_seconds").Number(flat.elapsed_seconds);
    json->Key("flat_projected_seconds")
        .Number(flat.completed ? flat.elapsed_seconds : flat.projected_seconds);
    json->Key("flat_configs_evaluated").Number(flat.configs_evaluated);
    json->Key("flat_configs_total").Number(flat.configs_total);
    json->Key("session_cache_hit").Bool(cache_hit);
    json->Key("cached_plan_identical").Bool(identical);
    json->Key("plan_digest").String(PlanDigest(plan));
    json->EndObject();
  }
}

// One big-graph, many-worker row: the same recursive search at worker counts far past
// the paper's 8-GPU testbed, where per-step option counts (and so frontier width and
// table sizes) grow with the factorization of the worker count. These rows exercise the
// dense-lattice engine path (docs/search.md): wall time is best-of-3 (the same
// methodology as the pre-PR numbers recorded as pre_pr_recursive_seconds in
// bench/baseline_table1.json, which tools/check_perf.py --min-speedup gates against),
// while every correctness field -- comm bytes, effort counters, plan digest, serving
// flags -- is gated exactly like the 8-worker rows.
void RunManyWorkers(const std::string& name, const ModelGraph& model, int workers,
                    JsonWriter* json) {
  double recursive_s = 1e99;
  PartitionPlan plan;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto t0 = Clock::now();
    PartitionPlan attempt = RecursivePartition(model.graph, workers);
    recursive_s =
        std::min(recursive_s, std::chrono::duration<double>(Clock::now() - t0).count());
    plan = std::move(attempt);
  }

  // Serving-path flags at this worker count (same contract as Run above).
  Session session(DeviceTopology::Uniform(workers));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> first = session.Partition(request);
  Result<PartitionResponse> second = session.Partition(request);
  Session fresh_session(DeviceTopology::Uniform(workers));
  Result<PartitionResponse> fresh = fresh_session.Partition(request);
  const bool cache_hit = first.ok() && second.ok() && !first->from_cache &&
                         second->from_cache && session.cache_stats().hits == 1;
  const bool identical = second.ok() && fresh.ok() &&
                         PlanDigest(second->plan) == PlanDigest(fresh->plan);

  const SearchStats& stats = plan.search_stats;
  std::printf("  %-18s w=%-4d %-10s comm %s/iter, %lld evals, %lld dominated-pruned, "
              "cache %s/%s\n",
              name.c_str(), workers, HumanSeconds(recursive_s).c_str(),
              HumanBytes(plan.total_comm_bytes).c_str(),
              static_cast<long long>(stats.states_explored),
              static_cast<long long>(stats.dominated_pruned_states),
              cache_hit ? "hit" : "MISSED", identical ? "identical" : "DIVERGED");
  if (json != nullptr) {
    json->BeginObject();
    json->Key("model").String(name + "@w" + std::to_string(workers));
    json->Key("num_ops").Int(model.graph.num_ops());
    json->Key("num_tensors").Int(model.graph.num_tensors());
    json->Key("workers").Int(workers);
    json->Key("recursive_seconds").Number(recursive_s);
    json->Key("recursive_comm_bytes").Number(plan.total_comm_bytes);
    json->Key("states_explored").Int(stats.states_explored);
    json->Key("max_frontier_states").Int(stats.max_frontier_states);
    json->Key("cost_table_entries").Int(stats.cost_table_entries);
    json->Key("dominated_pruned_states").Int(stats.dominated_pruned_states);
    json->Key("pruned_table_cells").Int(stats.pruned_table_cells);
    json->Key("exact").Bool(stats.exact);
    json->Key("session_cache_hit").Bool(cache_hit);
    json->Key("cached_plan_identical").Bool(identical);
    json->Key("plan_digest").String(PlanDigest(plan));
    json->EndObject();
  }
}

// One non-uniform-topology row: the same model searched through a Session whose
// DeviceTopology carries a concrete interconnect, so the per-step bandwidths are the
// contention-aware effective figures and the plan's simulated critical-path time is
// reported. Emits the same gate fields as the uniform rows (wall time, deterministic
// effort counters, comm bytes, plan digest, serving-path flags), so
// tools/check_perf.py gates the search in the non-uniform regime identically.
void RunTopology(const std::string& name, const ModelGraph& model,
                 std::shared_ptr<const Interconnect> net, JsonWriter* json) {
  Session session(DeviceTopology::WithInterconnect(net));
  PartitionRequest request;
  request.graph = &model.graph;

  const auto t0 = Clock::now();
  Result<PartitionResponse> first = session.Partition(request);
  const double recursive_s = std::chrono::duration<double>(Clock::now() - t0).count();
  if (!first.ok()) {
    std::printf("  %-24s %s\n", name.c_str(), first.status().ToString().c_str());
    return;
  }
  Result<PartitionResponse> second = session.Partition(request);
  Session fresh_session(DeviceTopology::WithInterconnect(net));
  Result<PartitionResponse> fresh = fresh_session.Partition(request);
  const bool cache_hit = second.ok() && !first->from_cache && second->from_cache &&
                         session.cache_stats().hits == 1;
  const bool identical =
      second.ok() && fresh.ok() && PlanDigest(second->plan) == PlanDigest(fresh->plan);

  const PartitionPlan& plan = first->plan;
  std::printf("  %-24s %-10s comm %s/iter, est %s, sim %s, cache %s/%s\n", name.c_str(),
              HumanSeconds(recursive_s).c_str(),
              HumanBytes(plan.total_comm_bytes).c_str(),
              HumanSeconds(first->estimated_comm_seconds).c_str(),
              HumanSeconds(first->simulated_comm_seconds).c_str(),
              cache_hit ? "hit" : "MISSED", identical ? "identical" : "DIVERGED");
  if (json != nullptr) {
    json->BeginObject();
    json->Key("model").String(name);
    json->Key("num_ops").Int(model.graph.num_ops());
    json->Key("num_tensors").Int(model.graph.num_tensors());
    json->Key("recursive_seconds").Number(recursive_s);
    json->Key("recursive_comm_bytes").Number(plan.total_comm_bytes);
    json->Key("states_explored").Int(plan.search_stats.states_explored);
    json->Key("max_frontier_states").Int(plan.search_stats.max_frontier_states);
    json->Key("cost_table_entries").Int(plan.search_stats.cost_table_entries);
    json->Key("pruned_table_cells").Int(plan.search_stats.pruned_table_cells);
    json->Key("exact").Bool(plan.search_stats.exact);
    json->Key("estimated_comm_seconds").Number(first->estimated_comm_seconds);
    json->Key("simulated_comm_seconds").Number(first->simulated_comm_seconds);
    json->Key("session_cache_hit").Bool(cache_hit);
    json->Key("cached_plan_identical").Bool(identical);
    json->Key("plan_digest").String(PlanDigest(plan));
    json->EndObject();
  }
}

// One hybrid-parallelism row: pure Tofu, the pipeline x Tofu hybrid (pipeline/
// compose.h), and DataParallel planned for the same multi-node hierarchy -- 8-GPU
// nodes with 21 GB/s PCIe p2p inside, joined through one oversubscribed 2.5 GB/s
// cross-node uplink per node (Ethernet-class, the regime where splitting every
// operator across all workers stops scaling). All three are compared on estimated
// total iteration time: analytic full-batch compute at 1/W (the same figure
// HybridPartition's degenerate candidate uses) plus each plan's estimated
// communication; for a multi-stage hybrid the total is the analytic 1F1B makespan,
// which already folds compute, boundary transfers, and the fill/drain bubble
// together. tools/check_perf.py gates the ordering (hybrid <= pure <= the gap to
// DataParallel closing) and the pipeline differential contract (analytic makespan
// <= 1F1B event simulation <= 2x analytic).
void RunHybrid(const std::string& name, const ModelGraph& model, int workers,
               JsonWriter* json) {
  const int nodes = workers / 8;
  std::shared_ptr<const Interconnect> net = MakeHierarchy(nodes, 8, 21e9, 2.5e9, 15e-6);
  Session session(DeviceTopology::WithInterconnect(net));
  PartitionRequest request;
  request.graph = &model.graph;
  request.algorithm = PartitionAlgorithm::kHybrid;

  const auto t0 = Clock::now();
  Result<PartitionResponse> hybrid = session.Partition(request);
  const double hybrid_search_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  if (!hybrid.ok()) {
    std::printf("  %-24s %s\n", name.c_str(), hybrid.status().ToString().c_str());
    return;
  }
  // Serving-path contract at the hybrid algorithm (same as every other row).
  Result<PartitionResponse> second = session.Partition(request);
  Session fresh_session(DeviceTopology::WithInterconnect(net));
  Result<PartitionResponse> fresh = fresh_session.Partition(request);
  const bool cache_hit = second.ok() && !hybrid->from_cache && second->from_cache &&
                         session.cache_stats().hits == 1;
  const bool identical = second.ok() && fresh.ok() &&
                         PlanDigest(second->plan) == PlanDigest(fresh->plan);

  PartitionRequest pure_request = request;
  pure_request.algorithm = PartitionAlgorithm::kTofu;
  Result<PartitionResponse> pure = session.Partition(pure_request);
  PartitionRequest dp_request = request;
  dp_request.algorithm = PartitionAlgorithm::kDataParallel;
  Result<PartitionResponse> dp = session.Partition(dp_request);
  if (!pure.ok() || !dp.ok()) {
    std::printf("  %-24s baseline algorithms failed\n", name.c_str());
    return;
  }

  // Analytic full-batch compute with every op split W ways -- what the S = 1
  // candidate inside HybridPartition prices, so pure_total matches its total exactly.
  const CoarseGraph coarse = Coarsen(model.graph);
  const StageCostModel cost(model.graph, coarse, K80Cluster());
  std::vector<double> fwd;
  std::vector<double> bwd;
  cost.PerGroupPassSeconds(workers, 1, &fwd, &bwd);
  double compute = 0.0;
  for (size_t g = 0; g < fwd.size(); ++g) {
    compute += fwd[g] + bwd[g];
  }

  const PipelinePlan* pipe = hybrid->plan.pipeline.get();
  const double hybrid_total = pipe != nullptr
                                  ? pipe->pipeline_seconds
                                  : compute + hybrid->estimated_comm_seconds;
  const double pure_total = compute + pure->estimated_comm_seconds;
  const double dp_total = compute + dp->estimated_comm_seconds;
  const double sim_1f1b = pipe != nullptr ? Simulate1F1BSeconds(*pipe) : 0.0;

  std::printf("  %-18s w=%-4d hybrid %s (S=%d, M=%d, sim %s) vs pure %s vs DP %s, "
              "cache %s/%s\n",
              name.c_str(), workers, HumanSeconds(hybrid_total).c_str(),
              pipe != nullptr ? pipe->num_stages : 1,
              pipe != nullptr ? pipe->micro_batches : 1,
              pipe != nullptr ? HumanSeconds(sim_1f1b).c_str() : "n/a",
              HumanSeconds(pure_total).c_str(), HumanSeconds(dp_total).c_str(),
              cache_hit ? "hit" : "MISSED", identical ? "identical" : "DIVERGED");
  if (json != nullptr) {
    const SearchStats& stats = hybrid->plan.search_stats;
    json->BeginObject();
    json->Key("model").String(name + "@hybrid-w" + std::to_string(workers));
    json->Key("num_ops").Int(model.graph.num_ops());
    json->Key("num_tensors").Int(model.graph.num_tensors());
    json->Key("workers").Int(workers);
    json->Key("nodes").Int(nodes);
    json->Key("recursive_seconds").Number(hybrid_search_s);
    json->Key("recursive_comm_bytes").Number(hybrid->plan.total_comm_bytes);
    json->Key("states_explored").Int(stats.states_explored);
    json->Key("max_frontier_states").Int(stats.max_frontier_states);
    json->Key("cost_table_entries").Int(stats.cost_table_entries);
    json->Key("dominated_pruned_states").Int(stats.dominated_pruned_states);
    json->Key("pruned_table_cells").Int(stats.pruned_table_cells);
    json->Key("exact").Bool(stats.exact);
    json->Key("pipeline_stages").Int(pipe != nullptr ? pipe->num_stages : 1);
    json->Key("micro_batches").Int(pipe != nullptr ? pipe->micro_batches : 1);
    json->Key("pipeline_seconds").Number(pipe != nullptr ? pipe->pipeline_seconds : 0.0);
    json->Key("pipeline_sim_seconds").Number(sim_1f1b);
    json->Key("compute_seconds").Number(compute);
    json->Key("hybrid_total_seconds").Number(hybrid_total);
    json->Key("pure_total_seconds").Number(pure_total);
    json->Key("dp_total_seconds").Number(dp_total);
    json->Key("hybrid_comm_seconds").Number(hybrid->estimated_comm_seconds);
    json->Key("pure_comm_seconds").Number(pure->estimated_comm_seconds);
    json->Key("dp_comm_seconds").Number(dp->estimated_comm_seconds);
    json->Key("session_cache_hit").Bool(cache_hit);
    json->Key("cached_plan_identical").Bool(identical);
    json->Key("plan_digest").String(PlanDigest(hybrid->plan));
    json->EndObject();
  }
}

// The non-uniform regime rows: the paper-testbed 21 GB/s links arranged as a ring, a
// port-limited full mesh, and a 2x4 hierarchy whose shared uplinks run at the 10 GB/s
// host-link speed (oversubscribed 4 leaf links -> 1 uplink, matching K80Cluster's
// cpu_bandwidth).
void RunTopologies(const std::string& model_name, const ModelGraph& model,
                   JsonWriter* json) {
  const double kLat = 15e-6;
  RunTopology(model_name + "@ring8", model, MakeRing(8, 21e9, kLat), json);
  RunTopology(model_name + "@fullmesh8", model, MakeFullMesh(8, 21e9, kLat), json);
  RunTopology(model_name + "@hier2x4", model, MakeHierarchy(2, 4, 21e9, 10e9, kLat),
              json);
}

}  // namespace
}  // namespace tofu

int main(int argc, char** argv) {
  std::string json_path;
  std::string budget_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--memory-budget") == 0 && i + 1 < argc) {
      budget_spec = argv[++i];  // "auto" or comma-separated per-worker byte counts
    }
  }
  std::vector<std::int64_t> budgets;
  const bool sweep_auto = budget_spec == "auto";
  if (!budget_spec.empty() && !sweep_auto) {
    for (const std::string& token : tofu::Split(budget_spec, ',')) {
      budgets.push_back(std::strtoll(token.c_str(), nullptr, 10));
    }
  }

  std::printf("=== Table 1: time to search for the best partition (8 workers) ===\n");
  std::printf("paper: WResNet-152 8h flat / 8.3s recursive; RNN-10 >24h flat / 66.6s "
              "recursive\n\n");

  tofu::JsonWriter json;
  json.BeginObject();
  json.Key("benchmark").String("table1_search");
  json.Key("workers").Int(8);
  json.Key("results").BeginArray();
  tofu::JsonWriter* json_ptr = json_path.empty() ? nullptr : &json;

  {
    tofu::WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    tofu::Run("WResNet-152-10", tofu::BuildWResNet(config), json_ptr);
    if (sweep_auto || !budgets.empty()) {
      tofu::ModelGraph model = tofu::BuildWResNet(config);
      tofu::RunBudgetSweep("WResNet-152-10", model,
                           sweep_auto ? tofu::AutoBudgets(model) : budgets);
    }
  }
  {
    tofu::RnnConfig config;
    config.layers = 10;
    config.hidden = 8192;
    config.batch = 128;
    tofu::Run("RNN-10-8K", tofu::BuildRnn(config), json_ptr);
    if (sweep_auto || !budgets.empty()) {
      tofu::ModelGraph model = tofu::BuildRnn(config);
      tofu::RunBudgetSweep("RNN-10-8K", model,
                           sweep_auto ? tofu::AutoBudgets(model) : budgets);
    }
  }

  std::printf("=== Big-graph, many-worker search (dense-lattice engine path) ===\n");
  {
    tofu::WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    const tofu::ModelGraph wresnet = tofu::BuildWResNet(config);
    tofu::RunManyWorkers("WResNet-152-10", wresnet, 32, json_ptr);
    tofu::RunManyWorkers("WResNet-152-10", wresnet, 64, json_ptr);
    tofu::RunManyWorkers("WResNet-152-10", wresnet, 128, json_ptr);
  }
  {
    tofu::TransformerConfig config;
    config.layers = 48;
    const tofu::ModelGraph transformer = tofu::BuildTransformer(config);
    tofu::RunManyWorkers("Transformer-48", transformer, 64, json_ptr);
  }
  std::printf("\n");

  std::printf("=== Hybrid pipeline x Tofu vs pure Tofu vs DataParallel "
              "(8-GPU nodes, 2.5 GB/s cross-node uplinks) ===\n");
  {
    tofu::TransformerConfig t_config;
    t_config.layers = 48;
    const tofu::ModelGraph transformer = tofu::BuildTransformer(t_config);
    tofu::WResNetConfig w_config;
    w_config.layers = 152;
    w_config.width = 10;
    w_config.batch = 8;
    const tofu::ModelGraph wresnet = tofu::BuildWResNet(w_config);
    for (int workers : {16, 32, 64}) {
      tofu::RunHybrid("Transformer-48", transformer, workers, json_ptr);
    }
    for (int workers : {16, 32, 64}) {
      tofu::RunHybrid("WResNet-152-10", wresnet, workers, json_ptr);
    }
  }
  std::printf("\n");

  std::printf("=== Memory planner frontier (swap/recompute repair, 8 workers) ===\n");
  {
    // MoE-style wide-layer model: four dense experts whose batch x 4096 hidden
    // activations dominate the footprint -- the recompute-friendly regime.
    tofu::MoeConfig moe;
    tofu::RunFrontier("MoE-4x4096", tofu::BuildMoe(moe), json_ptr);
  }
  {
    // Conv workload with halo exchange: spatially heavy (448x448, batch 4), so
    // spatial splits trade halo traffic against per-worker activation memory.
    tofu::WResNetConfig config;
    config.layers = 50;
    config.width = 4;
    config.batch = 4;
    config.image = 448;
    tofu::RunFrontier("WResNet-50-halo", tofu::BuildWResNet(config), json_ptr);
  }
  std::printf("\n");

  std::printf("=== Non-uniform interconnects (contention-aware search) ===\n");
  {
    tofu::WResNetConfig config;
    config.layers = 152;
    config.width = 10;
    config.batch = 8;
    const tofu::ModelGraph model = tofu::BuildWResNet(config);
    tofu::RunTopologies("WResNet-152-10", model, json_ptr);
  }
  {
    tofu::RnnConfig config;
    config.layers = 10;
    config.hidden = 8192;
    config.batch = 128;
    const tofu::ModelGraph model = tofu::BuildRnn(config);
    tofu::RunTopologies("RNN-10-8K", model, json_ptr);
  }
  std::printf("\n");

  json.EndArray();
  json.EndObject();
  if (!json_path.empty()) {
    if (!tofu::WriteTextFile(json_path, json.str() + "\n")) {
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
