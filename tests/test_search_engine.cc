// Search-engine tests: golden cost equivalence against the pre-refactor string-keyed
// DP (recorded values), byte-identical plans across thread counts, beam degradation,
// SearchStats plumbing, direct engine unit cases, and the plan-invariance contracts of
// dominated-option pruning and cost-table reuse (pinned plan digests).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tofu/core/partitioner.h"
#include "tofu/core/report.h"
#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"
#include "tofu/models/transformer.h"
#include "tofu/models/wresnet.h"
#include "tofu/partition/plan_io.h"
#include "tofu/partition/search_engine.h"

namespace tofu {
namespace {

ModelGraph GoldenMlp() {
  MlpConfig c;
  c.layer_sizes = {512, 512, 512, 256};
  c.batch = 64;
  return BuildMlp(c);
}

ModelGraph GoldenRnn() {
  RnnConfig c;
  c.layers = 2;
  c.hidden = 512;
  c.batch = 64;
  c.timesteps = 6;
  return BuildRnn(c);
}

ModelGraph GoldenWResNet() {
  WResNetConfig c;
  c.layers = 50;
  c.width = 4;
  c.batch = 32;
  return BuildWResNet(c);
}

ModelGraph GoldenTransformer() {
  TransformerConfig c;
  c.batch = 16;
  c.seq_len = 32;
  c.d_model = 128;
  c.d_ff = 256;
  c.heads = 2;
  c.layers = 2;
  c.num_classes = 64;
  return BuildTransformer(c);
}

// Total comm bytes recorded from the PRE-refactor string-keyed engine (`pre_refactor`)
// and expected from the packed-state engine (`engine`). Single-step searches (2 workers,
// and EqualChop at any k) are bit-identical. Multi-step recursions can legitimately
// differ where a step has several equal-cost optima: the old engine picked the winner by
// unordered_map iteration order (stdlib-dependent), the new engine canonically (lowest
// branch index). Every divergent row is equal-cost per step and CHEAPER in total -- the
// EXPECT_LE below asserts the new engine never does worse than the recorded old totals.
struct GoldenRow {
  const char* model;
  int workers;
  PartitionAlgorithm algo;
  double pre_refactor;
  double engine;
};

constexpr PartitionAlgorithm kT = PartitionAlgorithm::kTofu;
constexpr PartitionAlgorithm kI = PartitionAlgorithm::kIcml18;
constexpr PartitionAlgorithm kE = PartitionAlgorithm::kEqualChop;

const GoldenRow kGolden[] = {
    {"mlp", 2, kT, 786432, 786432},
    {"mlp", 2, kI, 1638400, 1638400},
    {"mlp", 2, kE, 786432, 786432},
    {"mlp", 4, kT, 1572864, 1572864},
    {"mlp", 4, kI, 3276800, 3276800},
    {"mlp", 4, kE, 2359296, 2359296},
    {"mlp", 8, kT, 2490368, 2359296},
    {"mlp", 8, kI, 4980736, 4915200},
    {"mlp", 8, kE, 5505024, 5505024},
    {"rnn", 2, kT, 35913736, 35913736},
    {"rnn", 2, kI, 73007360, 73007360},
    {"rnn", 2, kE, 35913736, 35913736},
    {"rnn", 4, kT, 71827480, 71827480},
    {"rnn", 4, kI, 146014720, 146014720},
    {"rnn", 4, kE, 107741208, 107741208},
    {"rnn", 8, kT, 107741240, 107741240},
    {"rnn", 8, kI, 219022080, 219022080},
    {"rnn", 8, kE, 251396152, 251396152},
    {"wresnet", 2, kT, 2346550088, 2346550088},
    {"wresnet", 2, kI, 11885077632, 11885077632},
    {"wresnet", 2, kE, 2346550088, 2346550088},
    {"wresnet", 4, kT, 4693753496, 4693548696},
    {"wresnet", 4, kI, 23770157312, 23770156288},
    {"wresnet", 4, kE, 6550243800, 6550243800},
    {"wresnet", 8, kT, 7042263544, 7041444344},
    {"wresnet", 8, kI, 35655241088, 35655236992},
    {"wresnet", 8, kE, 14625937144, 14625937144},
    {"transformer", 2, kT, 2643968, 2643968},
    {"transformer", 2, kI, 10105856, 10105856},
    {"transformer", 2, kE, 2643968, 2643968},
    {"transformer", 4, kT, 6158336, 5955584},
    {"transformer", 4, kI, 20682752, 20549632},
    {"transformer", 4, kE, 7931904, 7931904},
    {"transformer", 8, kT, 11413504, 10602496},
    {"transformer", 8, kI, 32201728, 31669248},
    {"transformer", 8, kE, 18507776, 18507776},
};

TEST(SearchEngineGolden, MatchesRecordedCosts) {
  ModelGraph models[] = {GoldenMlp(), GoldenRnn(), GoldenWResNet(), GoldenTransformer()};
  const char* names[] = {"mlp", "rnn", "wresnet", "transformer"};
  Partitioner partitioner;
  for (const GoldenRow& row : kGolden) {
    const ModelGraph* model = nullptr;
    for (size_t i = 0; i < 4; ++i) {
      if (row.model == std::string(names[i])) {
        model = &models[i];
      }
    }
    ASSERT_NE(model, nullptr);
    PartitionPlan plan = partitioner.Partition(model->graph, row.workers, row.algo);
    EXPECT_DOUBLE_EQ(plan.total_comm_bytes, row.engine)
        << row.model << " x" << row.workers << " " << AlgorithmName(row.algo);
    // Never worse than the pre-refactor engine (equal-cost ties may resolve cheaper).
    EXPECT_LE(plan.total_comm_bytes, row.pre_refactor + 1.0)
        << row.model << " x" << row.workers << " " << AlgorithmName(row.algo);
  }
}

TEST(SearchEngineThreads, FourThreadsYieldByteIdenticalPlans) {
  ModelGraph models[] = {GoldenMlp(), GoldenRnn(), GoldenTransformer()};
  for (const ModelGraph& model : models) {
    PartitionOptions serial;
    serial.dp.num_threads = 1;
    PartitionOptions threaded;
    threaded.dp.num_threads = 4;
    PartitionPlan a = RecursivePartition(model.graph, 8, serial);
    PartitionPlan b = RecursivePartition(model.graph, 8, threaded);
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (size_t i = 0; i < a.steps.size(); ++i) {
      EXPECT_EQ(a.steps[i].tensor_cut, b.steps[i].tensor_cut) << "step " << i;
      EXPECT_EQ(a.steps[i].op_strategy, b.steps[i].op_strategy) << "step " << i;
      EXPECT_DOUBLE_EQ(a.steps[i].comm_bytes, b.steps[i].comm_bytes) << "step " << i;
    }
    EXPECT_DOUBLE_EQ(a.total_comm_bytes, b.total_comm_bytes);
    // Search effort is also identical: threading shards work, it does not change it.
    EXPECT_EQ(a.search_stats.states_explored, b.search_stats.states_explored);
    EXPECT_EQ(a.search_stats.max_frontier_states, b.search_stats.max_frontier_states);
    EXPECT_EQ(a.search_stats.cost_table_entries, b.search_stats.cost_table_entries);
  }
}

TEST(SearchEngineStats, SurfacedThroughPlanAndReport) {
  ModelGraph model = GoldenMlp();
  Partitioner partitioner;
  PartitionPlan plan = partitioner.Partition(model.graph, 8);
  EXPECT_GT(plan.search_stats.states_explored, 0);
  EXPECT_GT(plan.search_stats.max_frontier_states, 0);
  EXPECT_GT(plan.search_stats.cost_table_entries, 0);
  EXPECT_GE(plan.search_stats.wall_seconds, 0.0);
  EXPECT_TRUE(plan.search_stats.exact);
  const std::string summary = PlanSummary(model.graph, plan);
  EXPECT_NE(summary.find("search:"), std::string::npos);

  // Greedy baselines run no DP: their stats stay zeroed.
  PartitionPlan greedy =
      partitioner.Partition(model.graph, 8, PartitionAlgorithm::kDataParallel);
  EXPECT_EQ(greedy.search_stats.states_explored, 0);
}

TEST(SearchEngineBeam, DegradesInsteadOfFailing) {
  ModelGraph model = GoldenMlp();
  PartitionOptions exact_options;
  PartitionPlan exact = RecursivePartition(model.graph, 8, exact_options);

  PartitionOptions beam_options;
  beam_options.dp.max_states = 8;  // force the cap immediately
  PartitionPlan beam = RecursivePartition(model.graph, 8, beam_options);
  EXPECT_FALSE(beam.search_stats.exact);
  // The beam keeps a valid (if approximate) plan: well-formed and never better than
  // the exact optimum.
  EXPECT_GE(beam.total_comm_bytes, exact.total_comm_bytes - 1.0);
  ASSERT_EQ(beam.steps.size(), exact.steps.size());
  for (const BasicPlan& step : beam.steps) {
    EXPECT_EQ(step.tensor_cut.size(), static_cast<size_t>(model.graph.num_tensors()));
  }
}

// Direct engine cases: known-minimum chains exercised without the partition layer.
TEST(SearchEngineUnit, PicksCheapestOptionOnOneSlot) {
  SearchSpace space;
  space.slot_num_options = {2};
  space.group_slots = {{0}};
  SearchEngine engine(std::move(space), {});
  SearchEngine::Result res =
      engine.Run([](int, const int* o) { return o[0] == 0 ? 5.0 : 3.0; });
  EXPECT_TRUE(res.completed);
  EXPECT_DOUBLE_EQ(res.best_cost, 3.0);
  ASSERT_EQ(res.slot_option.size(), 1u);
  EXPECT_EQ(res.slot_option[0], 1);
  EXPECT_EQ(res.stats.states_explored, 2);
}

TEST(SearchEngineUnit, ChainDpFindsJointMinimum) {
  // Slots 0,1,2; group A touches (0,1), group B touches (1,2). The joint optimum
  // requires remembering slot 1 across the groups: 0->1, 1->0, 2->1 at cost 0.
  SearchSpace space;
  space.slot_num_options = {2, 2, 2};
  space.group_slots = {{0, 1}, {1, 2}};
  SearchEngine engine(std::move(space), {});
  SearchEngine::Result res = engine.Run([](int g, const int* o) {
    if (g == 0) {
      return (o[0] == 1 ? 0.0 : 10.0) + (o[1] == 0 ? 0.0 : 1.0);
    }
    return (o[0] == 0 ? 0.0 : 5.0) + (o[1] == 1 ? 0.0 : 2.0);
  });
  EXPECT_DOUBLE_EQ(res.best_cost, 0.0);
  EXPECT_EQ(res.slot_option, (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(res.stats.states_explored, 8);  // 4 cells per group
  EXPECT_EQ(res.stats.max_frontier_states, 4);
}

TEST(SearchEngineUnit, SingleOptionAndUntouchedSlotsDefaultToZero) {
  // Slot 1 has one option (zero key bits); slot 2 is touched by no group.
  SearchSpace space;
  space.slot_num_options = {3, 1, 4};
  space.group_slots = {{0, 1}};
  SearchEngine engine(std::move(space), {});
  SearchEngine::Result res = engine.Run([](int, const int* o) {
    return o[0] == 2 ? 1.0 : 7.0;  // slot 1's only option rides along
  });
  EXPECT_DOUBLE_EQ(res.best_cost, 1.0);
  EXPECT_EQ(res.slot_option, (std::vector<int>{2, 0, 0}));
}

TEST(SearchEngineUnit, OversizedGroupFallsBackToMemoizedCharge) {
  // 13 slots x 2 options touched by ONE group: the option product (8192) exceeds both
  // the 4096 table floor and the beam-pruned state count, so the charge must go through
  // the per-state memo instead of a dense table -- bounded by live states, not by the
  // cross product.
  SearchSpace space;
  space.slot_num_options.assign(13, 2);
  space.group_slots.push_back({});
  for (int s = 0; s < 13; ++s) {
    space.group_slots[0].push_back(s);
  }
  SearchEngineOptions options;
  options.max_states = 16;  // beam prunes during branching
  SearchEngine engine(std::move(space), options);
  SearchEngine::Result res = engine.Run([](int, const int* o) {
    double c = 0.0;
    for (int i = 0; i < 13; ++i) {
      c += o[i] == 1 ? 1.0 : 0.0;
    }
    return c;
  });
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(res.stats.exact);
  EXPECT_EQ(res.stats.cost_table_entries, 0);  // no dense table was built
  // Memoized evaluations are bounded by the surviving states, not the 8192 combos.
  EXPECT_LE(res.stats.states_explored, res.stats.max_frontier_states);
  // The all-zeros state survives every cost-ranked beam prune: optimum found anyway.
  EXPECT_DOUBLE_EQ(res.best_cost, 0.0);
}

// Memory-constrained engine cases: SearchSpace::slot_option_bytes + memory_budget.
TEST(SearchEngineUnit, BudgetPrunesToTheCheapestFeasibleAssignment) {
  // Slot 0: option 0 costs 1 but weighs 100; option 1 costs 5 and weighs 10.
  // Unconstrained picks option 0; a budget of 50 forces option 1.
  SearchSpace space;
  space.slot_num_options = {2};
  space.group_slots = {{0}};
  space.slot_option_bytes = {{100.0, 10.0}};
  auto cost = [](int, const int* o) { return o[0] == 0 ? 1.0 : 5.0; };

  SearchSpace unconstrained = space;
  SearchEngine free_engine(std::move(unconstrained), {});
  SearchEngine::Result free_res = free_engine.Run(cost);
  EXPECT_EQ(free_res.slot_option[0], 0);
  EXPECT_DOUBLE_EQ(free_res.best_bytes, 0.0);  // no budget: bytes not tracked

  SearchEngineOptions options;
  options.memory_budget = 50.0;
  SearchEngine engine(std::move(space), options);
  SearchEngine::Result res = engine.Run(cost);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.slot_option[0], 1);
  EXPECT_DOUBLE_EQ(res.best_cost, 5.0);
  EXPECT_DOUBLE_EQ(res.best_bytes, 10.0);
  EXPECT_DOUBLE_EQ(res.min_possible_bytes, 10.0);
  EXPECT_EQ(res.stats.memory_pruned_states, 1);
}

TEST(SearchEngineUnit, BudgetInfeasibilityIsProvedNotSearched) {
  SearchSpace space;
  space.slot_num_options = {2, 2};
  space.group_slots = {{0}, {1}};
  space.slot_option_bytes = {{40.0, 30.0}, {25.0, 35.0}};  // lightest total: 55
  SearchEngineOptions options;
  options.memory_budget = 50.0;
  SearchEngine engine(std::move(space), options);
  int calls = 0;
  SearchEngine::Result res = engine.Run([&calls](int, const int*) {
    ++calls;
    return 1.0;
  });
  EXPECT_FALSE(res.feasible);
  EXPECT_DOUBLE_EQ(res.min_possible_bytes, 55.0);
  EXPECT_EQ(calls, 0);  // infeasibility came from the per-slot lower bound, for free
}

TEST(SearchEngineUnit, BudgetLowerBoundPrunesAcrossSlots) {
  // Slot 0 branches first; its heavy option (60) is individually under the 70 budget
  // but cannot fit together with slot 1's lightest option (20), so it must be pruned
  // AT BRANCH TIME -- waiting until slot 1 enters would explore a dead state.
  SearchSpace space;
  space.slot_num_options = {2, 2};
  space.group_slots = {{0}, {1}};
  space.slot_option_bytes = {{60.0, 30.0}, {20.0, 25.0}};
  SearchEngineOptions options;
  options.memory_budget = 70.0;
  SearchEngine engine(std::move(space), options);
  SearchEngine::Result res = engine.Run([](int g, const int* o) {
    return g == 0 ? (o[0] == 0 ? 0.0 : 9.0) : 0.0;  // the heavy option is the cheap one
  });
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.slot_option, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(res.best_cost, 9.0);
  EXPECT_DOUBLE_EQ(res.best_bytes, 50.0);
  EXPECT_EQ(res.stats.memory_pruned_states, 1);
}

TEST(SearchEngineUnit, EqualCostMergesPreferTheLighterState) {
  // Both options of slot 0 cost the same; unconstrained keeps the first (canonical),
  // the budgeted engine keeps the lighter -- maximizing surviving completions.
  SearchSpace space;
  space.slot_num_options = {2, 2};
  space.group_slots = {{0}, {1}};  // slot 0 leaves after group 0: projection merges
  space.slot_option_bytes = {{80.0, 20.0}, {10.0, 10.0}};
  auto cost = [](int, const int*) { return 1.0; };

  SearchSpace unconstrained = space;
  SearchEngine free_engine(std::move(unconstrained), {});
  EXPECT_EQ(free_engine.Run(cost).slot_option[0], 0);  // canonical first-in-branch-order

  SearchEngineOptions options;
  options.memory_budget = 1000.0;  // loose: nothing prunes, only tie-breaks change
  SearchEngine engine(std::move(space), options);
  SearchEngine::Result res = engine.Run(cost);
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.slot_option[0], 1);
  EXPECT_DOUBLE_EQ(res.best_bytes, 30.0);
  EXPECT_EQ(res.stats.memory_pruned_states, 0);
}

TEST(SearchEngineUnit, UntouchedSlotBytesChargeAgainstTheBudget) {
  // Slot 1 is touched by no group, so it stays at option 0 -- but its 90 bytes are
  // still resident and must count: only slot 0's light option fits beside it.
  SearchSpace space;
  space.slot_num_options = {2, 1};
  space.group_slots = {{0}};
  space.slot_option_bytes = {{50.0, 5.0}, {90.0}};
  SearchEngineOptions options;
  options.memory_budget = 100.0;
  SearchEngine engine(std::move(space), options);
  SearchEngine::Result res = engine.Run([](int, const int* o) {
    return o[0] == 0 ? 0.0 : 3.0;
  });
  EXPECT_TRUE(res.feasible);
  EXPECT_EQ(res.slot_option, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(res.best_bytes, 95.0);
  EXPECT_DOUBLE_EQ(res.min_possible_bytes, 95.0);
}

TEST(SearchEngineThreads, BudgetedSearchIsThreadCountInvariant) {
  ModelGraph model = GoldenMlp();
  PartitionOptions serial;
  serial.memory_budget_bytes = 3ll << 20;  // tight for this MLP: the pruning engages
  serial.dp.num_threads = 1;
  PartitionOptions threaded = serial;
  threaded.dp.num_threads = 4;
  PartitionPlan a = RecursivePartition(model.graph, 8, serial);
  PartitionPlan b = RecursivePartition(model.graph, 8, threaded);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].tensor_cut, b.steps[i].tensor_cut) << "step " << i;
    EXPECT_EQ(a.steps[i].op_strategy, b.steps[i].op_strategy) << "step " << i;
    EXPECT_DOUBLE_EQ(a.steps[i].peak_shard_bytes, b.steps[i].peak_shard_bytes);
  }
  EXPECT_DOUBLE_EQ(a.total_comm_bytes, b.total_comm_bytes);
  EXPECT_EQ(a.search_stats.memory_pruned_states, b.search_stats.memory_pruned_states);
}

// ------------------------------------------------- dominated-option pruning
// The pruning contract (SearchEngineOptions::prune_dominated, docs/search.md): plans,
// costs, and every serialized SearchStats counter are invariant; only the diagnostic
// dominated_pruned_states moves. Pinned digests catch a silent semantic drift in
// either the pruned or the unpruned path at worker counts that exercise deep
// multi-axis lattices.
TEST(SearchEngineDominance, PruningNeverChangesThePlanGoldens) {
  struct Row {
    int workers;
    const char* digest;
  };
  const Row kRows[] = {{8, "3ff4a22d1cbdf754"},
                       {32, "699f97e21d15c2fa"},
                       {64, "c1f0490322246ce3"}};
  ModelGraph model = GoldenWResNet();
  for (const Row& row : kRows) {
    for (bool prune : {true, false}) {
      for (int threads : {1, 4}) {
        PartitionOptions options;
        options.dp.prune_dominated = prune;
        options.dp.num_threads = threads;
        PartitionPlan plan = RecursivePartition(model.graph, row.workers, options);
        EXPECT_EQ(PlanDigest(plan), row.digest)
            << "workers=" << row.workers << " prune=" << prune
            << " threads=" << threads;
        if (prune) {
          EXPECT_GT(plan.search_stats.dominated_pruned_states, 0)
              << "workers=" << row.workers;
        } else {
          EXPECT_EQ(plan.search_stats.dominated_pruned_states, 0);
        }
      }
    }
  }
}

TEST(SearchEngineDominance, SyntheticDominatedOptionIsPrunedWithoutChangingResult) {
  // Slot 0's option 2 is dominated by option 0 in BOTH tables touching the slot
  // (6 >= 5 alone, and 2 <= 2 pointwise under every slot-1 completion); option 1 is
  // the true winner. Pruning must skip option-2 states yet return the identical
  // result, and the serialized effort counters must not move (they are
  // digest-covered).
  SearchSpace space;
  space.slot_num_options = {3, 2};
  space.group_slots = {{0}, {0, 1}};
  const double g0[] = {5.0, 1.0, 6.0};
  const double a[] = {2.0, 3.0, 2.0};
  const double b[] = {0.0, 10.0};
  SearchEngine::GroupCostFn cost = [&](int group, const int* o) {
    return group == 0 ? g0[o[0]] : a[o[0]] + b[o[1]];
  };
  SearchEngineOptions pruned_options;  // prune_dominated defaults on
  SearchEngineOptions unpruned_options;
  unpruned_options.prune_dominated = false;
  SearchEngine pruned_engine(space, pruned_options);
  SearchEngine unpruned_engine(space, unpruned_options);
  SearchEngine::Result pruned = pruned_engine.Run(cost);
  SearchEngine::Result unpruned = unpruned_engine.Run(cost);

  EXPECT_EQ(pruned.slot_option, (std::vector<int>{1, 0}));
  EXPECT_EQ(pruned.slot_option, unpruned.slot_option);
  EXPECT_DOUBLE_EQ(pruned.best_cost, 4.0);
  EXPECT_DOUBLE_EQ(pruned.best_cost, unpruned.best_cost);
  EXPECT_GT(pruned.stats.dominated_pruned_states, 0);
  EXPECT_EQ(unpruned.stats.dominated_pruned_states, 0);
  EXPECT_EQ(pruned.stats.states_explored, unpruned.stats.states_explored);
  EXPECT_EQ(pruned.stats.max_frontier_states, unpruned.stats.max_frontier_states);
  EXPECT_EQ(pruned.stats.cost_table_entries, unpruned.stats.cost_table_entries);
}

TEST(SearchEngineReuse, ImportedTablesAreCountedAndChangeNothing) {
  // Re-running the same space with the first search's exported tables must skip the
  // refills (reused_table_entries) while reporting identical effort and result --
  // the invariant that makes the step-table cache invisible in plan serializations.
  SearchSpace space;
  space.slot_num_options = {3, 2};
  space.group_slots = {{0}, {0, 1}};
  int fills = 0;
  SearchEngine::GroupCostFn cost = [&fills](int group, const int* o) {
    ++fills;
    return group == 0 ? 1.0 * o[0] : 0.5 * o[0] + 2.0 * o[1];
  };
  SearchEngine cold_engine(space, {});
  SearchEngine::Result cold = cold_engine.Run(cost);
  ASSERT_NE(cold.tables, nullptr);
  const int cold_fills = fills;

  SearchEngineOptions warm_options;
  warm_options.reuse_tables = cold.tables;
  SearchEngine warm_engine(space, warm_options);
  SearchEngine::Result warm = warm_engine.Run(cost);
  EXPECT_EQ(fills, cold_fills) << "imported tables must not be refilled";
  EXPECT_GT(warm.stats.reused_table_entries, 0);
  EXPECT_EQ(cold.stats.reused_table_entries, 0);
  EXPECT_EQ(warm.slot_option, cold.slot_option);
  EXPECT_DOUBLE_EQ(warm.best_cost, cold.best_cost);
  EXPECT_EQ(warm.stats.states_explored, cold.stats.states_explored);
  EXPECT_EQ(warm.stats.cost_table_entries, cold.stats.cost_table_entries);
}

TEST(SearchEngineUnit, StreamedModeAborts) {
  SearchSpace space;
  space.slot_num_options = {2, 2};
  space.group_slots = {{0}, {1}};
  SearchEngine engine(std::move(space), {});
  int calls = 0;
  SearchEngine::Result res =
      engine.RunStreamed([&calls](int, const int*, double* cost) {
        if (++calls > 2) {
          return false;
        }
        *cost = 1.0;
        return true;
      });
  EXPECT_FALSE(res.completed);
}

}  // namespace
}  // namespace tofu
