// Golden plan regression: the Table-1 models' uniform-topology plans are pinned by
// digest to their pre-interconnect values (bench/baseline_table1.json carries the same
// constants for the perf gate). The interconnect work routes all topology awareness
// through PartitionOptions::step_bandwidths, and a uniform topology fills a single
// scalar -- which, by the DP-argmin argument in partition/dp.h, cannot change any
// partition decision. These tests make that guarantee executable: if a refactor
// perturbs the uniform search path even one bit, the digests diverge and CTest fails.
#include <gtest/gtest.h>

#include "tofu/core/session.h"
#include "tofu/models/rnn.h"
#include "tofu/models/wresnet.h"
#include "tofu/partition/plan_io.h"
#include "tofu/partition/recursive.h"

namespace tofu {
namespace {

// The pre-interconnect digests of RecursivePartition(graph, 8), identical to the
// plan_digest values in bench/baseline_table1.json. Update both together, and only for
// a deliberate search change.
constexpr const char* kWResNetDigest = "b8be8aeb8a016afa";
constexpr const char* kRnnDigest = "0df1a6ce9ae05e12";

ModelGraph Table1WResNet() {
  WResNetConfig config;
  config.layers = 152;
  config.width = 10;
  config.batch = 8;
  return BuildWResNet(config);
}

ModelGraph Table1Rnn() {
  RnnConfig config;
  config.layers = 10;
  config.hidden = 8192;
  config.batch = 128;
  return BuildRnn(config);
}

// The partition decisions and search trace, with the fields a topology legitimately
// changes (per-step seconds, their sum, wall time) zeroed: what "the same plan" means
// across bandwidth models.
std::string StructuralJson(PartitionPlan plan) {
  plan.search_stats.wall_seconds = 0.0;
  plan.step_seconds.clear();
  plan.estimated_comm_seconds = 0.0;
  for (BasicPlan& step : plan.steps) {
    step.comm_seconds = 0.0;
  }
  return PlanToJson(plan);
}

void ExpectGolden(const ModelGraph& model, const char* digest) {
  PartitionPlan raw = RecursivePartition(model.graph, 8);
  EXPECT_EQ(PlanDigest(raw), digest) << model.name;

  // A uniform-topology Session must search the identical plan: its scalar
  // step_bandwidths only rescale costs, never reorder them.
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(StructuralJson(response->plan), StructuralJson(raw)) << model.name;
  // And the digest itself is deterministic across repeated searches.
  EXPECT_EQ(PlanDigest(RecursivePartition(model.graph, 8)), digest) << model.name;
}

TEST(PlanGoldens, WResNet152PlanIsBitIdenticalToPreInterconnectBaseline) {
  ExpectGolden(Table1WResNet(), kWResNetDigest);
}

TEST(PlanGoldens, Rnn10PlanIsBitIdenticalToPreInterconnectBaseline) {
  ExpectGolden(Table1Rnn(), kRnnDigest);
}

}  // namespace
}  // namespace tofu
