// Property-based sweeps over randomized model families:
//   * DP-vs-exhaustive optimality on random linear graphs (Theorem-3 machinery);
//   * Theorem 1 cost commutativity: swapping the order of two basic steps leaves the
//     total communication cost unchanged;
//   * the 1/k shard-memory invariant and plan determinism across random shapes.
#include <gtest/gtest.h>

#include <limits>
#include <random>

#include "tofu/models/mlp.h"
#include "tofu/partition/coarsen.h"
#include "tofu/partition/dp.h"
#include "tofu/partition/recursive.h"

namespace tofu {
namespace {

// Deterministic pseudo-random MLP family indexed by seed.
ModelGraph RandomMlp(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> layers(1, 4);
  std::uniform_int_distribution<int> width_pick(0, 3);
  const std::int64_t widths[] = {128, 256, 512, 1024};
  MlpConfig config;
  config.batch = 32 << (seed % 3);
  config.with_bias = (seed % 2) == 0;
  config.layer_sizes.clear();
  const int n = layers(rng) + 1;
  for (int i = 0; i < n; ++i) {
    config.layer_sizes.push_back(widths[width_pick(rng)]);
  }
  return BuildMlp(config);
}

double ExhaustiveMin(const Graph& g, const CoarseGraph& cg, int ways) {
  StepContext ctx(g, StepContext::InitialShapes(g), ways);
  std::vector<std::vector<int>> options(static_cast<size_t>(cg.num_slots()));
  for (int s = 0; s < cg.num_slots(); ++s) {
    options[static_cast<size_t>(s)] =
        ctx.CutOptions(cg.slots[static_cast<size_t>(s)].members[0]);
  }
  std::vector<size_t> odo(static_cast<size_t>(cg.num_slots()), 0);
  std::vector<int> cuts(static_cast<size_t>(g.num_tensors()), kReplicated);
  double best = std::numeric_limits<double>::infinity();
  bool done = false;
  while (!done) {
    for (int s = 0; s < cg.num_slots(); ++s) {
      for (TensorId t : cg.slots[static_cast<size_t>(s)].members) {
        cuts[static_cast<size_t>(t)] =
            options[static_cast<size_t>(s)][odo[static_cast<size_t>(s)]];
      }
    }
    double total = 0.0;
    for (OpId op = 0; op < g.num_ops(); ++op) {
      double op_best = ctx.OpCommBytes(op, kReplicatedExec, cuts);
      for (int i = 0; i < static_cast<int>(ctx.Strategies(op).size()); ++i) {
        if (ctx.Applicable(op, i)) {
          op_best = std::min(op_best, ctx.OpCommBytes(op, i, cuts));
        }
      }
      total += op_best;
    }
    best = std::min(best, total);
    size_t pos = 0;
    while (pos < odo.size() && ++odo[pos] == options[pos].size()) {
      odo[pos] = 0;
      ++pos;
    }
    done = pos == odo.size();
  }
  return best;
}

class RandomModelProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(RandomModelProperty, DpMatchesExhaustiveSearch) {
  ModelGraph model = RandomMlp(GetParam());
  CoarseGraph cg = Coarsen(model.graph);
  if (cg.num_slots() > 18) {
    GTEST_SKIP() << "fixture too large for exhaustive enumeration";
  }
  StepContext ctx(model.graph, StepContext::InitialShapes(model.graph), 2);
  DpResult dp = RunStepDp(&ctx, cg, {});
  EXPECT_NEAR(dp.plan.comm_bytes, ExhaustiveMin(model.graph, cg, 2), 1.0)
      << "seed " << GetParam();
}

// Theorem 1: applying the two chosen basic plans in either order gives the same total
// cost (cost(p1) + 2*cost(p2 | shrunk-by-p1) == cost(p2) + 2*cost(p1 | shrunk-by-p2)).
TEST_P(RandomModelProperty, Theorem1StepOrderCommutes) {
  ModelGraph model = RandomMlp(GetParam());
  const Graph& g = model.graph;
  PartitionPlan plan = RecursivePartition(g, 4);
  if (plan.steps.size() != 2) {
    GTEST_SKIP();
  }
  const BasicPlan& p1 = plan.steps[0];
  const BasicPlan& p2 = plan.steps[1];

  // Theorem 1's proof assumes every tensor is partitioned at every step (sizes halve
  // uniformly). A tensor replicated in exactly one of the two steps does not shrink
  // there, which legitimately breaks order-independence -- skip those assignments.
  for (TensorId t = 0; t < g.num_tensors(); ++t) {
    const bool r1 = p1.tensor_cut[static_cast<size_t>(t)] == kReplicated;
    const bool r2 = p2.tensor_cut[static_cast<size_t>(t)] == kReplicated;
    if (r1 != r2) {
      GTEST_SKIP() << "mixed replication is outside Theorem 1's assumptions";
    }
  }

  auto cost_of = [&](const BasicPlan& p, const std::vector<Shape>& shapes) {
    StepContext ctx(g, shapes, p.ways);
    double total = 0.0;
    for (OpId op = 0; op < g.num_ops(); ++op) {
      const int sidx = p.op_strategy[static_cast<size_t>(op)];
      if (sidx != kReplicatedExec && !ctx.Applicable(op, sidx)) {
        return std::numeric_limits<double>::quiet_NaN();  // order not evaluable
      }
      total += ctx.OpCommBytes(op, sidx, p.tensor_cut);
    }
    return total;
  };

  const std::vector<Shape> initial = StepContext::InitialShapes(g);
  const double c12 = cost_of(p1, initial) +
                     2.0 * cost_of(p2, StepContext::ApplyBasicPlan(g, initial, p1));
  const double c21 = cost_of(p2, initial) +
                     2.0 * cost_of(p1, StepContext::ApplyBasicPlan(g, initial, p2));
  if (std::isnan(c12) || std::isnan(c21)) {
    GTEST_SKIP() << "swapped order not applicable at these extents";
  }
  EXPECT_NEAR(c12, c21, 0.01 * std::max(1.0, c12)) << "seed " << GetParam();
}

TEST_P(RandomModelProperty, ShardMemoryIsOneKth) {
  ModelGraph model = RandomMlp(GetParam());
  const Graph& g = model.graph;
  PartitionPlan plan = RecursivePartition(g, 8);
  std::int64_t full = 0;
  std::int64_t shard = 0;
  for (const TensorNode& t : g.tensors()) {
    if (t.bytes() <= kReplicateThresholdBytes) {
      continue;
    }
    full += t.bytes();
    shard += plan.ShardBytes(g, t.id);
  }
  if (full == 0) {
    GTEST_SKIP();
  }
  EXPECT_LE(shard, full / 8 + full / 64) << "seed " << GetParam();
}

TEST_P(RandomModelProperty, PlansAreDeterministic) {
  ModelGraph a = RandomMlp(GetParam());
  ModelGraph b = RandomMlp(GetParam());
  PartitionPlan plan_a = RecursivePartition(a.graph, 8);
  PartitionPlan plan_b = RecursivePartition(b.graph, 8);
  ASSERT_EQ(plan_a.steps.size(), plan_b.steps.size());
  for (size_t i = 0; i < plan_a.steps.size(); ++i) {
    EXPECT_EQ(plan_a.steps[i].tensor_cut, plan_b.steps[i].tensor_cut);
    EXPECT_EQ(plan_a.steps[i].op_strategy, plan_b.steps[i].op_strategy);
  }
  EXPECT_DOUBLE_EQ(plan_a.total_comm_bytes, plan_b.total_comm_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomModelProperty, ::testing::Range(0u, 12u));

}  // namespace
}  // namespace tofu
