// Model zoo tests. The load-bearing one is the Table 2 reproduction: the paper reports
// total weight memory (weights + gradients + optimizer history, §7.1's 3W) in GiB for
// every benchmark configuration; our generated models must land within a few percent.
#include <gtest/gtest.h>

#include "tofu/graph/graph.h"
#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"
#include "tofu/models/wresnet.h"

namespace tofu {
namespace {

double Gib(std::int64_t bytes) { return static_cast<double>(bytes) / (1ull << 30); }

struct Table2Case {
  std::string name;
  bool is_rnn;
  int layers;
  int width_or_hidden_k;  // WResNet width, or RNN hidden size / 1024
  double paper_gib;       // Table 2
};

std::vector<Table2Case> Table2() {
  return {
      // RNN rows (L x H).
      {"rnn_6_4k", true, 6, 4, 8.4},    {"rnn_8_4k", true, 8, 4, 11.4},
      {"rnn_10_4k", true, 10, 4, 14.4}, {"rnn_6_6k", true, 6, 6, 18.6},
      {"rnn_8_6k", true, 8, 6, 28.5},   {"rnn_10_6k", true, 10, 6, 32.1},
      {"rnn_6_8k", true, 6, 8, 33.0},   {"rnn_8_8k", true, 8, 8, 45.3},
      {"rnn_10_8k", true, 10, 8, 57.0},
      // Wide ResNet rows (L x W).
      {"wresnet_50_4", false, 50, 4, 4.2},    {"wresnet_101_4", false, 101, 4, 7.8},
      {"wresnet_152_4", false, 152, 4, 10.5}, {"wresnet_50_6", false, 50, 6, 9.6},
      {"wresnet_101_6", false, 101, 6, 17.1}, {"wresnet_152_6", false, 152, 6, 23.4},
      {"wresnet_50_8", false, 50, 8, 17.1},   {"wresnet_101_8", false, 101, 8, 30.6},
      {"wresnet_152_8", false, 152, 8, 41.7}, {"wresnet_50_10", false, 50, 10, 26.7},
      {"wresnet_101_10", false, 101, 10, 47.7},
      {"wresnet_152_10", false, 152, 10, 65.1},
  };
}

class Table2Sizes : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Sizes, ModelStateMatchesPaper) {
  const Table2Case& c = GetParam();
  ModelGraph model;
  if (c.is_rnn) {
    RnnConfig config;
    config.layers = c.layers;
    config.hidden = static_cast<std::int64_t>(c.width_or_hidden_k) * 1024;
    config.batch = 4;  // batch does not affect weight sizes
    model = BuildRnn(config);
  } else {
    WResNetConfig config;
    config.layers = c.layers;
    config.width = c.width_or_hidden_k;
    config.batch = 2;
    model = BuildWResNet(config);
  }
  const double ours = Gib(model.ModelStateBytes());
  // Within 8% of the paper's Table 2 (framework padding and head details differ). The
  // rnn_8_6k cell is off-trend in the paper itself (the 6K column's deltas per layer are
  // 9.9 then 3.6 GiB where the closed form gives ~6.4 for both), so it gets extra slack.
  const double tolerance = (c.name == "rnn_8_6k" ? 0.16 : 0.08) * c.paper_gib;
  EXPECT_NEAR(ours, c.paper_gib, tolerance)
      << c.name << ": ours " << ours << " GiB vs paper " << c.paper_gib << " GiB";
}

INSTANTIATE_TEST_SUITE_P(Table2, Table2Sizes, ::testing::ValuesIn(Table2()),
                         [](const ::testing::TestParamInfo<Table2Case>& info) {
                           return info.param.name;
                         });

TEST(Models, WResNetStageBlocksMatchResNetDepths) {
  EXPECT_EQ(WResNetStageBlocks(50), (std::vector<int>{3, 4, 6, 3}));
  EXPECT_EQ(WResNetStageBlocks(101), (std::vector<int>{3, 4, 23, 3}));
  EXPECT_EQ(WResNetStageBlocks(152), (std::vector<int>{3, 8, 36, 3}));
}

TEST(Models, WResNet152HasPaperScaleOpCount) {
  WResNetConfig config;
  config.layers = 152;
  config.width = 4;
  config.batch = 2;
  ModelGraph model = BuildWResNet(config);
  // Paper §1: the 152-layer ResNet training graph has >1500 operators in MXNet.
  EXPECT_GT(model.graph.num_ops(), 1500);
  ValidateGraph(model.graph);
}

TEST(Models, WResNetShapesFlowTo7x7) {
  WResNetConfig config;
  config.layers = 50;
  config.width = 4;
  config.batch = 4;
  ModelGraph model = BuildWResNet(config);
  // The stage-3 output feature map must be 7x7 with 2048*w channels.
  bool found = false;
  for (const TensorNode& t : model.graph.tensors()) {
    if (t.rank() == 4 && t.shape[1] == 2048 * 4 && t.shape[2] == 7) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Models, RnnUnrollsTimestepsWithSharedWeights) {
  RnnConfig config;
  config.layers = 3;
  config.hidden = 128;
  config.batch = 8;
  config.timesteps = 10;
  ModelGraph model = BuildRnn(config);
  ValidateGraph(model.graph);
  // 4 gates x (Wx, Wh, b) per layer plus the projection head.
  EXPECT_EQ(model.graph.ParamIds().size(), static_cast<size_t>(3 * 12 + 1));
  // Each weight feeds one matmul per timestep.
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.name.find("/wx_") != std::string::npos) {
      int fw_consumers = 0;
      for (OpId c : t.consumers) {
        fw_consumers += model.graph.op(c).is_backward || model.graph.op(c).is_update ? 0 : 1;
      }
      EXPECT_EQ(fw_consumers, config.timesteps) << t.name;
    }
  }
}

TEST(Models, RnnParamBytesFollowClosedForm) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 256;
  config.embed = 64;
  config.batch = 4;
  ModelGraph model = BuildRnn(config);
  const std::int64_t h = config.hidden;
  const std::int64_t e = config.embed;
  const std::int64_t expect =
      4 * (h * (e + h) + h)      // layer 0
      + 4 * (h * (h + h) + h)    // layer 1
      + h * e;                   // projection
  EXPECT_EQ(model.graph.TotalParamBytes(), expect * 4);
}

TEST(Models, MlpLossIsScalar) {
  MlpConfig config;
  ModelGraph model = BuildMlp(config);
  EXPECT_TRUE(model.graph.tensor(model.loss).shape.empty());
  EXPECT_EQ(model.batch, config.batch);
  ValidateGraph(model.graph);
}

}  // namespace
}  // namespace tofu
