// Dataflow graph substrate tests: construction, shape inference, traversal, validation
// and DOT export.
#include <gtest/gtest.h>

#include "tofu/graph/dot.h"
#include "tofu/graph/graph.h"
#include "tofu/graph/traversal.h"

namespace tofu {
namespace {

TEST(Graph, BuildSmallChain) {
  Graph g;
  TensorId x = g.AddInput("x", {8, 16});
  TensorId w = g.AddParam("w", {16, 32});
  TensorId y = g.AddOp("matmul", {}, {x, w});
  TensorId z = g.AddOp("relu", {}, {y});

  EXPECT_EQ(g.num_ops(), 2);
  EXPECT_EQ(g.num_tensors(), 4);
  EXPECT_EQ(g.tensor(y).shape, (Shape{8, 32}));
  EXPECT_EQ(g.tensor(z).shape, (Shape{8, 32}));
  EXPECT_EQ(g.tensor(y).producer, 0);
  ASSERT_EQ(g.tensor(y).consumers.size(), 1u);
  EXPECT_EQ(g.tensor(y).consumers[0], 1);
  EXPECT_TRUE(g.tensor(w).is_param);
  EXPECT_TRUE(g.tensor(w).requires_grad);
  EXPECT_TRUE(g.tensor(x).is_input);
  ValidateGraph(g);
}

TEST(Graph, ParamAccounting) {
  Graph g;
  g.AddParam("a", {10, 10});
  g.AddParam("b", {5});
  g.AddOptState("h", {10, 10});
  EXPECT_EQ(g.TotalParamBytes(), (100 + 5) * 4);
  EXPECT_EQ(g.TotalOptStateBytes(), 100 * 4);
  EXPECT_EQ(g.ParamIds().size(), 2u);
}

TEST(Graph, SemanticsOfUsesInstanceRanks) {
  Graph g;
  TensorId a = g.AddInput("a", {4, 4, 4});
  TensorId b = g.AddInput("b", {4, 4, 4});
  TensorId c = g.AddOp("add", {}, {a, b});
  const OpSemantics& sem = g.SemanticsOf(g.op(g.tensor(c).producer));
  EXPECT_EQ(sem.desc.num_output_dims, 3);
  EXPECT_TRUE(sem.desc.elementwise);
}

TEST(Traversal, TopoOrderRespectsDependencies) {
  Graph g;
  TensorId x = g.AddInput("x", {8, 16});
  TensorId w1 = g.AddParam("w1", {16, 16});
  TensorId w2 = g.AddParam("w2", {16, 16});
  TensorId y1 = g.AddOp("matmul", {}, {x, w1});   // op 0
  TensorId y2 = g.AddOp("matmul", {}, {y1, w2});  // op 1
  TensorId y3 = g.AddOp("add", {}, {y1, y2});     // op 2
  (void)y3;

  std::vector<OpId> order = TopoOrder(g);
  ASSERT_EQ(order.size(), 3u);
  std::vector<int> position(order.size());
  for (size_t i = 0; i < order.size(); ++i) {
    position[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  EXPECT_LT(position[0], position[1]);
  EXPECT_LT(position[1], position[2]);

  std::vector<OpId> reverse = ReverseTopoOrder(g);
  EXPECT_EQ(reverse.front(), order.back());
}

TEST(Traversal, AncestorOpsStopsAtTarget) {
  Graph g;
  TensorId x = g.AddInput("x", {4, 4});
  TensorId y = g.AddOp("relu", {}, {x});
  TensorId z = g.AddOp("relu", {}, {y});
  g.AddOp("relu", {}, {z});  // not an ancestor of z

  std::vector<bool> mark = AncestorOps(g, z);
  EXPECT_TRUE(mark[0]);
  EXPECT_TRUE(mark[1]);
  EXPECT_FALSE(mark[2]);
}

TEST(Traversal, NeedsGradFollowsParams) {
  Graph g;
  TensorId x = g.AddInput("x", {4, 8});
  TensorId w = g.AddParam("w", {8, 8});
  TensorId y = g.AddOp("matmul", {}, {x, w});
  TensorId side = g.AddOp("relu", {}, {x});  // no param beneath
  (void)side;
  std::vector<bool> needs = NeedsGrad(g, y);
  EXPECT_TRUE(needs[static_cast<size_t>(w)]);
  EXPECT_TRUE(needs[static_cast<size_t>(y)]);
  EXPECT_FALSE(needs[static_cast<size_t>(x)]);
  EXPECT_FALSE(needs[static_cast<size_t>(side)]);
}

TEST(Dot, ExportMentionsOpsAndTensors) {
  Graph g;
  TensorId x = g.AddInput("data", {4, 8});
  TensorId w = g.AddParam("weight", {8, 8});
  g.AddOp("matmul", {}, {x, w});
  std::string dot = ToDot(g, "unit");
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("matmul"), std::string::npos);
  EXPECT_NE(dot.find("weight"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(GraphDeath, UnknownOpTypeAborts) {
  Graph g;
  TensorId x = g.AddInput("x", {4});
  EXPECT_DEATH(g.AddOp("no_such_op", {}, {x}), "unregistered op type");
}

TEST(GraphDeath, ShapeMismatchAborts) {
  Graph g;
  TensorId a = g.AddInput("a", {4, 8});
  TensorId b = g.AddInput("b", {16, 4});
  EXPECT_DEATH(g.AddOp("matmul", {}, {a, b}), "mismatch");
}

}  // namespace
}  // namespace tofu
