// Facade and reporting tests: the public Partitioner API and the Figure-11-style
// tiling reports.
#include <gtest/gtest.h>

#include "tofu/core/partitioner.h"
#include "tofu/core/report.h"
#include "tofu/models/mlp.h"
#include "tofu/models/wresnet.h"

namespace tofu {
namespace {

TEST(Partitioner, DefaultOptionsPartitionMlp) {
  MlpConfig config;
  config.layer_sizes = {512, 512, 128};
  config.batch = 64;
  ModelGraph model = BuildMlp(config);
  Partitioner partitioner;
  PartitionPlan plan = partitioner.Partition(model.graph, 8);
  EXPECT_EQ(plan.num_workers, 8);
  EXPECT_EQ(plan.steps.size(), 3u);
  EXPECT_GE(plan.total_comm_bytes, 0.0);
}

TEST(Partitioner, OptionsArePlumbedThrough) {
  PartitionOptions options;
  options.dp.allow_reduction_strategies = false;
  Partitioner partitioner(options);
  EXPECT_FALSE(partitioner.options().dp.allow_reduction_strategies);
}

TEST(Report, PlanSummaryListsSteps) {
  MlpConfig config;
  config.layer_sizes = {256, 256, 64};
  ModelGraph model = BuildMlp(config);
  PartitionPlan plan = Partitioner().Partition(model.graph, 4);
  std::string summary = PlanSummary(model.graph, plan);
  EXPECT_NE(summary.find("plan for 4 workers"), std::string::npos);
  EXPECT_NE(summary.find("step 0"), std::string::npos);
  EXPECT_NE(summary.find("step 1"), std::string::npos);
}

TEST(Report, TilingReportCollapsesRepeatedBlocks) {
  WResNetConfig config;
  config.layers = 50;
  config.width = 4;
  config.batch = 8;
  ModelGraph model = BuildWResNet(config);
  PartitionPlan plan = Partitioner().Partition(model.graph, 8);
  std::string report = TilingReport(model.graph, plan);
  EXPECT_NE(report.find("conv2d"), std::string::npos);
  EXPECT_NE(report.find("weight"), std::string::npos);
  // Repeated residual blocks must collapse into xN lines (Figure 11's notation).
  EXPECT_NE(report.find("x"), std::string::npos);
  // The report is much shorter than one line per conv.
  int lines = 0;
  for (char c : report) {
    lines += c == '\n' ? 1 : 0;
  }
  int convs = 0;
  for (const OpNode& op : model.graph.ops()) {
    convs += (!op.is_backward && op.type == "conv2d") ? 1 : 0;
  }
  EXPECT_LT(lines, convs);
}

TEST(Report, DescribeTilingShowsMultiDimSplits) {
  MlpConfig config;
  config.layer_sizes = {2048, 2048};
  config.batch = 64;
  config.with_bias = false;
  ModelGraph model = BuildMlp(config);
  PartitionPlan plan = Partitioner().Partition(model.graph, 8);
  bool any_described = false;
  for (const TensorNode& t : model.graph.tensors()) {
    std::string desc = plan.DescribeTiling(model.graph, t.id);
    EXPECT_FALSE(desc.empty());
    any_described = any_described || desc != "replicated";
  }
  EXPECT_TRUE(any_described);
}

}  // namespace
}  // namespace tofu
