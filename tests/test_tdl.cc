// Tests for the TDL language and its analysis (paper §4): description building, the
// shift_two region-analysis example, and strategy discovery for the paper's running
// examples -- conv1d (Figure 2's strategies), batched Cholesky (batch-only), convolution
// halos and the output-reduction strategy of conv2d_bwd_filter.
#include <gtest/gtest.h>

#include "tofu/tdl/analysis.h"
#include "tofu/tdl/registry.h"

namespace tofu {
namespace {

const OpSemantics& Sem(const std::string& name, OpAttrs attrs = {},
                       std::vector<int> ranks = {}) {
  return OpRegistry::Get().Semantics(name, attrs, ranks);
}

// Finds the strategy partitioning variable `var_name`, or nullptr.
const BasicStrategy* FindStrategy(const std::vector<BasicStrategy>& strategies,
                                  const std::string& var_name) {
  for (const BasicStrategy& s : strategies) {
    if (s.var_name == var_name) {
      return &s;
    }
  }
  return nullptr;
}

TEST(TdlBuilder, Conv1dDescriptionMatchesPaper) {
  const OpDesc& desc = Sem("conv1d").desc;
  EXPECT_EQ(desc.num_inputs, 2);
  EXPECT_EQ(desc.num_output_dims, 3);
  EXPECT_EQ(desc.num_vars(), 5);  // b, co, x + ci, dx
  EXPECT_FALSE(desc.elementwise);
  EXPECT_EQ(desc.input_ranks[0], 3);
  EXPECT_EQ(desc.input_ranks[1], 3);
  // The rendering should show the Sum over ci,dx.
  std::vector<std::string> names;
  for (const VarInfo& v : desc.vars) {
    names.push_back(v.name);
  }
  EXPECT_NE(ExprToString(*desc.body, names).find("Sum{ci,dx}"), std::string::npos);
}

TEST(TdlBuilder, ElementwiseDetection) {
  EXPECT_TRUE(Sem("add", {}, {2, 2}).desc.elementwise);
  EXPECT_TRUE(Sem("relu", {}, {4}).desc.elementwise);
  EXPECT_TRUE(Sem("adagrad_update", {}, {2, 2, 2}).desc.elementwise);
  EXPECT_FALSE(Sem("matmul").desc.elementwise);
  EXPECT_FALSE(Sem("add_bias", OpAttrs().Set("bias_dim", 1), {2, 1}).desc.elementwise);
  EXPECT_FALSE(Sem("transpose2d").desc.elementwise);
}

// Paper §4.2's worked example: B = lambda i: A[i+2]. With i in [0, X/2], A's accessed
// region must be [2, X/2 + 2].
TEST(TdlAnalysis, ShiftTwoRegions) {
  const OpDesc& desc = Sem("shift_two").desc;
  VarEnv env = FullEnv(desc);
  env[0] = SymInterval::Slice(desc.num_vars(), 0, 0.0, 0.5);
  std::vector<InputRegion> regions = ComputeInputRegions(desc, env);
  ASSERT_TRUE(regions[0].accessed);
  const SymInterval& dim0 = regions[0].dims[0].interval;
  EXPECT_DOUBLE_EQ(dim0.lo.constant(), 2.0);
  EXPECT_DOUBLE_EQ(dim0.hi.constant(), 2.0);
  EXPECT_DOUBLE_EQ(dim0.hi.coeff(0), 0.5);
}

// Figure 2: conv1d has case-1 strategies on b, co, x and case-2 strategies on ci, dx.
TEST(TdlAnalysis, Conv1dStrategies) {
  const auto& strategies = Sem("conv1d").strategies;
  EXPECT_EQ(strategies.size(), 5u);

  const BasicStrategy* b = FindStrategy(strategies, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_FALSE(b->is_reduction);
  EXPECT_EQ(b->output_dim, 0);
  // Figure 2(a): data splits on its batch dimension, filters fully replicated.
  EXPECT_EQ(b->inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(b->inputs[0].dim, 0);
  EXPECT_EQ(b->inputs[1].kind, InputReq::Kind::kReplicated);

  const BasicStrategy* ci = FindStrategy(strategies, "ci");
  ASSERT_NE(ci, nullptr);
  EXPECT_TRUE(ci->is_reduction);
  EXPECT_EQ(ci->reducer, ReduceKind::kSum);
  // Figure 2(b): data splits on channel (dim 1), filters split on dim 0.
  EXPECT_EQ(ci->inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(ci->inputs[0].dim, 1);
  EXPECT_EQ(ci->inputs[1].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(ci->inputs[1].dim, 0);

  // Partitioning along x ("halo exchange") splits data with a halo of the filter width.
  const BasicStrategy* x = FindStrategy(strategies, "x");
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(x->inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(x->inputs[0].dim, 2);
  EXPECT_TRUE(x->inputs[0].has_halo);
}

TEST(TdlAnalysis, MatmulStrategies) {
  const auto& strategies = Sem("matmul").strategies;
  ASSERT_EQ(strategies.size(), 3u);
  const BasicStrategy* m = FindStrategy(strategies, "m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->inputs[0].kind, InputReq::Kind::kSplit);  // A row-split
  EXPECT_EQ(m->inputs[1].kind, InputReq::Kind::kReplicated);
  const BasicStrategy* k = FindStrategy(strategies, "k");
  ASSERT_NE(k, nullptr);
  EXPECT_TRUE(k->is_reduction);
  EXPECT_EQ(k->inputs[0].dim, 1);
  EXPECT_EQ(k->inputs[1].dim, 0);
}

TEST(TdlAnalysis, BatchCholeskyOnlyBatchPartitionable) {
  const auto& strategies = Sem("batch_cholesky").strategies;
  ASSERT_EQ(strategies.size(), 1u);
  EXPECT_EQ(strategies[0].var_name, "b");
  EXPECT_EQ(strategies[0].inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(strategies[0].inputs[0].dim, 0);
}

TEST(TdlAnalysis, SoftmaxXentOpaqueRowsBlockClassDim) {
  const auto& grad = Sem("softmax_xent_grad").strategies;
  // Only b is viable: v indexes the opaque result.
  ASSERT_EQ(grad.size(), 1u);
  EXPECT_EQ(grad[0].var_name, "b");
}

TEST(TdlAnalysis, Conv2dSpatialHaloScalesWithKernel) {
  OpAttrs attrs;
  attrs.Set("stride", 1).Set("pad", 1);
  const auto& strategies = Sem("conv2d", attrs).strategies;
  const BasicStrategy* ho = FindStrategy(strategies, "ho");
  ASSERT_NE(ho, nullptr);
  EXPECT_TRUE(ho->inputs[0].has_halo);
  // Concretize against real shapes: halo along H must equal roughly the kernel extent / 2.
  std::vector<std::int64_t> extents = BindVarExtents(
      Sem("conv2d", attrs).desc, {{32, 64, 56, 56}, {128, 64, 3, 3}}, {32, 128, 56, 56});
  ConcreteStrategy c = Concretize(*ho, extents);
  EXPECT_EQ(c.inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_EQ(c.inputs[0].dim, 2);
  EXPECT_GE(c.inputs[0].halo_elems, 1);
  EXPECT_LE(c.inputs[0].halo_elems, 3);
}

// §7.3's key strategy: conv2d_bwd_filter can partition the *batch* (a reduction
// dimension), producing partial filter gradients aggregated across workers -- the
// output-reduction strategy the ICML'18 baseline lacks.
TEST(TdlAnalysis, ConvBwdFilterHasBatchReduction) {
  OpAttrs attrs;
  attrs.Set("stride", 1).Set("pad", 1).Set("kh", 3).Set("kw", 3);
  const auto& strategies = Sem("conv2d_bwd_filter", attrs).strategies;
  const BasicStrategy* b = FindStrategy(strategies, "b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->is_reduction);
  EXPECT_EQ(b->reducer, ReduceKind::kSum);
  EXPECT_EQ(b->inputs[0].dim, 0);  // dy splits on batch
  EXPECT_EQ(b->inputs[1].dim, 0);  // data splits on batch
}

TEST(TdlAnalysis, MaxPoolReductionUsesMaxReducer) {
  OpAttrs attrs;
  attrs.Set("kernel", 2).Set("stride", 2);
  const auto& strategies = Sem("maxpool2d", attrs).strategies;
  const BasicStrategy* kh = FindStrategy(strategies, "kh");
  ASSERT_NE(kh, nullptr);
  EXPECT_TRUE(kh->is_reduction);
  EXPECT_EQ(kh->reducer, ReduceKind::kMax);
}

TEST(TdlAnalysis, ReductionCombinabilityRules) {
  // Sum under constant scale stays combinable (global_avg_pool's Sum * 1/HW).
  const auto& gap = Sem("global_avg_pool").strategies;
  EXPECT_NE(FindStrategy(gap, "h"), nullptr);
  EXPECT_TRUE(FindStrategy(gap, "h")->is_reduction);

  // A Sum nested under an opaque-breaking unary would not be combinable; built directly:
  OpDescBuilder b("sqrt_of_sum", 1);
  IndexVar i = b.Out("i");
  IndexVar j = b.Red("j");
  OpDesc desc = std::move(b).Build(Expr::MakeUnary(UnaryOp::kSqrt, b.Sum({j}, b.In(0)({i, j}))));
  std::vector<BasicStrategy> strategies = DiscoverStrategies(desc);
  EXPECT_EQ(FindStrategy(strategies, "j"), nullptr);  // not combinable
  EXPECT_NE(FindStrategy(strategies, "i"), nullptr);  // case-1 still fine
}

TEST(TdlAnalysis, NestedSameReducerIsCombinable) {
  OpDescBuilder b("sum_of_sum", 1);
  IndexVar i = b.Out("i");
  IndexVar j = b.Red("j");
  IndexVar k = b.Red("k");
  OpDesc desc = std::move(b).Build(b.Sum({j}, b.Sum({k}, b.In(0)({i, j, k}))));
  std::vector<BasicStrategy> strategies = DiscoverStrategies(desc);
  EXPECT_NE(FindStrategy(strategies, "k"), nullptr);  // Sum-of-Sum combines
}

TEST(TdlAnalysis, NestedMixedReducerIsNotCombinable) {
  OpDescBuilder b("max_of_sum", 1);
  IndexVar i = b.Out("i");
  IndexVar j = b.Red("j");
  IndexVar k = b.Red("k");
  OpDesc desc =
      std::move(b).Build(b.Max({j}, b.Sum({k}, b.In(0)({i, j, k}))));
  std::vector<BasicStrategy> strategies = DiscoverStrategies(desc);
  EXPECT_EQ(FindStrategy(strategies, "k"), nullptr);  // Sum under Max cannot combine
  EXPECT_NE(FindStrategy(strategies, "j"), nullptr);  // outer Max can
}

TEST(TdlAnalysis, DiagonalAccessRejectsVariable) {
  // A[i, i] violates assumption #1 (one output index per input dimension).
  OpDescBuilder b("diag", 1);
  IndexVar i = b.Out("i");
  OpDesc desc = std::move(b).Build(b.In(0)({i, i}));
  std::vector<BasicStrategy> strategies = DiscoverStrategies(desc);
  EXPECT_EQ(FindStrategy(strategies, "i"), nullptr);
}

TEST(TdlAnalysis, StridedAccessSplitsCleanly) {
  // out[i] = A[2*i]: halving i halves the accessed region; no halo.
  OpDescBuilder b("stride2", 1);
  IndexVar i = b.Out("i");
  OpDesc desc = std::move(b).Build(b.In(0)({i * 2.0}));
  std::vector<BasicStrategy> strategies = DiscoverStrategies(desc);
  const BasicStrategy* s = FindStrategy(strategies, "i");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->inputs[0].kind, InputReq::Kind::kSplit);
  EXPECT_FALSE(s->inputs[0].has_halo);
}

TEST(TdlAnalysis, ConcretizeBindsReduceExtents) {
  const OpSemantics& sem = Sem("matmul");
  std::vector<std::int64_t> extents =
      BindVarExtents(sem.desc, {{64, 128}, {128, 256}}, {64, 256});
  EXPECT_EQ(extents[0], 64);   // m
  EXPECT_EQ(extents[1], 256);  // n
  EXPECT_EQ(extents[2], 128);  // k, inferred from A's dim 1
}

}  // namespace
}  // namespace tofu
