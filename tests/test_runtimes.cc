// Runtime driver tests: the qualitative relationships of §7.2 on scaled-down models --
// Tofu under Ideal, SmallBatch falling over (OOM) on big models, Swap surviving but
// paying for the shared host link, Op-Placement in between.
#include <gtest/gtest.h>

#include "tofu/core/experiment.h"
#include "tofu/partition/baselines.h"

namespace tofu {
namespace {

TEST(Runtimes, IdealScalesByGpuCount) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(2, 1024);
  ThroughputResult one = IdealThroughput(factory, 64, cluster);
  ClusterSpec small = cluster;
  small.num_gpus = 4;
  ThroughputResult half = IdealThroughput(factory, 64, small);
  EXPECT_NEAR(one.samples_per_second / half.samples_per_second, 2.0, 1e-6);
}

TEST(Runtimes, SmallBatchFindsLargestFit) {
  ClusterSpec cluster = K80Cluster();
  auto factory = WResNetFactory(50, 4);
  ThroughputResult r = SmallBatchThroughput(factory, 64, cluster);
  EXPECT_FALSE(r.oom);
  EXPECT_GE(r.batch, 4);
  // The next doubling would not fit.
  ModelGraph bigger = factory(r.batch * 2);
  PartitionPlan trivial;
  SimGraph sim = LowerPartitioned(bigger.graph, trivial, cluster, bigger.batch);
  EXPECT_TRUE(RunSim(sim, cluster).oom);
}

TEST(Runtimes, SmallBatchOomsOnVeryLargeModel) {
  // WResNet-152-10's state alone (65 GiB) exceeds one GPU.
  ClusterSpec cluster = K80Cluster();
  ThroughputResult r = SmallBatchThroughput(WResNetFactory(152, 10), 8, cluster);
  EXPECT_TRUE(r.oom);
  EXPECT_EQ(r.samples_per_second, 0.0);
}

TEST(Runtimes, TofuTrainsWhatSmallBatchCannot) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(6, 6144);  // 18.6 GiB of state: no single GPU fits it
  ThroughputResult sb = SmallBatchThroughput(factory, 64, cluster);
  EXPECT_TRUE(sb.oom);
  ThroughputResult tofu = TofuThroughput(factory, 256, cluster);
  EXPECT_FALSE(tofu.oom);
  EXPECT_GT(tofu.samples_per_second, 0.0);
}

TEST(Runtimes, TofuStaysUnderIdeal) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(4, 2048);
  ThroughputResult ideal = IdealThroughput(factory, 256, cluster);
  ThroughputResult tofu = TofuThroughput(factory, 256, cluster);
  EXPECT_FALSE(tofu.oom);
  EXPECT_LE(tofu.samples_per_second, ideal.samples_per_second * 1.001);
  EXPECT_GE(tofu.samples_per_second, 0.5 * ideal.samples_per_second);
}

TEST(Runtimes, SwapSlowerThanTofuOnLargeRnn) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(6, 6144);
  ThroughputResult swap = SwapThroughput(factory, 256, cluster);
  ThroughputResult tofu = TofuThroughput(factory, 256, cluster);
  EXPECT_FALSE(swap.oom);
  EXPECT_LT(swap.samples_per_second, tofu.samples_per_second);
}

TEST(Runtimes, PlacementBetweenSwapAndTofuOnRnn) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(8, 4096);
  ThroughputResult place = PlacementThroughput(factory, 512, cluster, RnnLayerOf);
  ThroughputResult tofu = TofuThroughput(factory, 512, cluster);
  EXPECT_FALSE(place.oom);
  EXPECT_FALSE(tofu.oom);
  // Pipelined layer placement cannot keep all GPUs busy (§7.2): Tofu wins.
  EXPECT_LT(place.samples_per_second, tofu.samples_per_second);
  EXPECT_GT(place.samples_per_second, 0.2 * tofu.samples_per_second);
}

TEST(Runtimes, TfModePlacementSlowerThanMxnet) {
  ClusterSpec cluster = K80Cluster();
  auto factory = RnnFactory(4, 2048);
  LowerOptions tf_mode;
  tf_mode.inplace_grad_agg = false;
  ThroughputResult mx = PlacementThroughput(factory, 128, cluster, RnnLayerOf);
  ThroughputResult tf = PlacementThroughput(factory, 128, cluster, RnnLayerOf, tf_mode);
  EXPECT_LT(tf.samples_per_second, mx.samples_per_second);
}

TEST(Runtimes, CommFractionReportedForTofu) {
  ClusterSpec cluster = K80Cluster();
  ThroughputResult tofu = TofuThroughput(RnnFactory(4, 2048), 256, cluster);
  EXPECT_GE(tofu.comm_fraction, 0.0);
  EXPECT_LT(tofu.comm_fraction, 0.9);
  EXPECT_GT(tofu.compute_seconds, 0.0);
  EXPECT_LE(tofu.compute_seconds, tofu.iter_seconds);
}

TEST(Runtimes, RunPlanThroughputHonorsExplicitPlan) {
  ClusterSpec cluster = K80Cluster();
  ModelGraph model = RnnFactory(2, 1024)(64);
  PartitionPlan tofu_plan = RecursivePartition(model.graph, cluster.num_gpus);
  PartitionPlan greedy = AllRowGreedyPlan(model.graph, cluster.num_gpus);
  ThroughputResult a = RunPlanThroughput(model, tofu_plan, cluster);
  ThroughputResult b = RunPlanThroughput(model, greedy, cluster);
  EXPECT_FALSE(a.oom);
  // The better plan must not be slower.
  EXPECT_GE(a.samples_per_second, b.samples_per_second * 0.999);
}

}  // namespace
}  // namespace tofu
