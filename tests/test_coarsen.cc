// Graph coarsening tests (paper §5.1): forward/backward grouping, element-wise slot
// coalescing, unrolled-timestep merging, and the invariants the DP relies on.
#include <gtest/gtest.h>

#include <set>

#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"
#include "tofu/partition/coarsen.h"

namespace tofu {
namespace {

ModelGraph SmallMlp() {
  MlpConfig config;
  config.layer_sizes = {64, 32, 10};
  config.batch = 16;
  return BuildMlp(config);
}

TEST(Coarsen, SlotMembersShareShape) {
  ModelGraph model = SmallMlp();
  CoarseGraph cg = Coarsen(model.graph);
  for (const TensorSlot& slot : cg.slots) {
    const Shape& shape = model.graph.tensor(slot.members[0]).shape;
    for (TensorId t : slot.members) {
      EXPECT_EQ(model.graph.tensor(t).shape, shape);
    }
  }
}

TEST(Coarsen, EveryTensorInExactlyOneSlot) {
  ModelGraph model = SmallMlp();
  CoarseGraph cg = Coarsen(model.graph);
  std::vector<int> seen(static_cast<size_t>(model.graph.num_tensors()), 0);
  for (const TensorSlot& slot : cg.slots) {
    for (TensorId t : slot.members) {
      ++seen[static_cast<size_t>(t)];
    }
  }
  for (TensorId t = 0; t < model.graph.num_tensors(); ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], 1) << model.graph.tensor(t).name;
    EXPECT_GE(cg.tensor_slot[static_cast<size_t>(t)], 0);
    EXPECT_LT(cg.tensor_slot[static_cast<size_t>(t)], cg.num_slots());
  }
}

TEST(Coarsen, WeightGradHistoryShareOneSlot) {
  // The optimizer's element-wise updates tie weight, gradient and history together --
  // the paper's weight tensor group.
  ModelGraph model = SmallMlp();
  const Graph& g = model.graph;
  CoarseGraph cg = Coarsen(g);
  for (TensorId w : g.ParamIds()) {
    const int slot = cg.tensor_slot[static_cast<size_t>(w)];
    int grads_in_slot = 0;
    int hist_in_slot = 0;
    for (TensorId t : cg.slots[static_cast<size_t>(slot)].members) {
      if (g.tensor(t).grad_of == w) {
        ++grads_in_slot;
      }
      if (g.tensor(t).is_opt_state) {
        ++hist_in_slot;
      }
    }
    EXPECT_GE(grads_in_slot, 1) << g.tensor(w).name;
    EXPECT_GE(hist_in_slot, 1) << g.tensor(w).name;
  }
}

TEST(Coarsen, BackwardOpsJoinForwardGroups) {
  ModelGraph model = SmallMlp();
  const Graph& g = model.graph;
  CoarseGraph cg = Coarsen(g);
  // Map op -> group.
  std::vector<int> group_of(static_cast<size_t>(g.num_ops()), -1);
  for (size_t gi = 0; gi < cg.groups.size(); ++gi) {
    for (int u : cg.groups[gi].units) {
      for (OpId op : cg.units[static_cast<size_t>(u)].ops) {
        group_of[static_cast<size_t>(op)] = static_cast<int>(gi);
      }
    }
    for (OpId op : cg.groups[gi].ew_ops) {
      group_of[static_cast<size_t>(op)] = static_cast<int>(gi);
    }
  }
  for (const OpNode& op : g.ops()) {
    ASSERT_GE(group_of[static_cast<size_t>(op.id)], 0) << op.type;
    if (op.forward_op != kNoOp && !g.SemanticsOf(op).desc.elementwise &&
        !g.SemanticsOf(g.op(op.forward_op)).desc.elementwise) {
      EXPECT_EQ(group_of[static_cast<size_t>(op.id)],
                group_of[static_cast<size_t>(op.forward_op)])
          << "backward op " << op.type << " not grouped with its forward op";
    }
  }
}

TEST(Coarsen, MlpCoarseGraphIsCompact) {
  ModelGraph model = SmallMlp();
  CoarseGraph cg = Coarsen(model.graph);
  // Coarsening must shrink the op count substantially (paper: the coarsened MLP graph is
  // linear in the number of layers).
  EXPECT_LT(static_cast<int>(cg.groups.size()), model.graph.num_ops() / 3);
}

TEST(Coarsen, RnnTimestepMergingCollapsesUnits) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 64;
  config.batch = 8;
  config.timesteps = 6;
  ModelGraph model = BuildRnn(config);
  CoarseGraph merged = Coarsen(model.graph);

  CoarsenOptions no_merge;
  no_merge.merge_unrolled_steps = false;
  CoarseGraph unmerged = Coarsen(model.graph, no_merge);

  // Merging timesteps must reduce both units and groups by roughly the unroll factor.
  EXPECT_LT(merged.units.size() * 3, unmerged.units.size());
  EXPECT_LT(merged.groups.size() * 2, unmerged.groups.size());

  // Forward gate matmuls of interior timesteps share a unit of size ~timesteps.
  size_t max_unit = 0;
  for (const Unit& unit : merged.units) {
    max_unit = std::max(max_unit, unit.ops.size());
  }
  EXPECT_GE(max_unit, static_cast<size_t>(config.timesteps - 1));
}

TEST(Coarsen, UnitsAreTypeHomogeneous) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 64;
  config.batch = 8;
  config.timesteps = 5;
  ModelGraph model = BuildRnn(config);
  CoarseGraph cg = Coarsen(model.graph);
  for (const Unit& unit : cg.units) {
    const OpNode& first = model.graph.op(unit.ops[0]);
    for (OpId op : unit.ops) {
      EXPECT_EQ(model.graph.op(op).type, first.type);
      EXPECT_EQ(model.graph.op(op).attrs.Signature(), first.attrs.Signature());
    }
  }
}

TEST(Coarsen, DisablingElementwiseCoalescingGivesFinerSlots) {
  ModelGraph model = SmallMlp();
  CoarseGraph coalesced = Coarsen(model.graph);
  CoarsenOptions off;
  off.coalesce_elementwise = false;
  CoarseGraph fine = Coarsen(model.graph, off);
  EXPECT_GT(fine.num_slots(), coalesced.num_slots());
}

TEST(Coarsen, TieFwBwMergesGradientSlots) {
  ModelGraph model = SmallMlp();
  CoarsenOptions tie;
  tie.tie_fw_bw_tensors = true;
  CoarseGraph tied = Coarsen(model.graph, tie);
  CoarseGraph untied = Coarsen(model.graph);
  EXPECT_LE(tied.num_slots(), untied.num_slots());
  for (const TensorNode& t : model.graph.tensors()) {
    if (t.grad_of != kNoTensor) {
      EXPECT_EQ(tied.tensor_slot[static_cast<size_t>(t.id)],
                tied.tensor_slot[static_cast<size_t>(t.grad_of)]);
    }
  }
}

TEST(Coarsen, TouchedSlotsAreSortedUnique) {
  ModelGraph model = SmallMlp();
  CoarseGraph cg = Coarsen(model.graph);
  for (const MacroGroup& group : cg.groups) {
    std::set<int> unique(group.touched_slots.begin(), group.touched_slots.end());
    EXPECT_EQ(unique.size(), group.touched_slots.size());
    EXPECT_TRUE(std::is_sorted(group.touched_slots.begin(), group.touched_slots.end()));
  }
}

}  // namespace
}  // namespace tofu
