// Unit tests for the utility layer: strings, status/result ergonomics, logging
// severities.
#include <gtest/gtest.h>

#include <memory>

#include "tofu/util/logging.h"
#include "tofu/util/status.h"
#include "tofu/util/strings.h"

namespace tofu {
namespace {

TEST(Strings, JoinFormatsElements) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ","), "1,2,3");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<std::string>{"solo"}, ", "), "solo");
}

TEST(Strings, StrFormatHandlesLongOutput) {
  std::string long_arg(1000, 'x');
  std::string out = StrFormat("<%s>", long_arg.c_str());
  EXPECT_EQ(out.size(), 1002u);
  EXPECT_EQ(out.front(), '<');
  EXPECT_EQ(out.back(), '>');
}

TEST(Strings, HumanBytesPicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512.00 B");
  EXPECT_EQ(HumanBytes(1536), "1.50 KiB");
  EXPECT_EQ(HumanBytes(3.0 * (1 << 30)), "3.00 GiB");
}

TEST(Strings, HumanSecondsPicksUnits) {
  EXPECT_EQ(HumanSeconds(2.5e-9), "2.5 ns");
  EXPECT_EQ(HumanSeconds(3.1e-5), "31.0 us");
  EXPECT_EQ(HumanSeconds(0.25), "250.0 ms");
  EXPECT_EQ(HumanSeconds(12.0), "12.00 s");
}

TEST(Strings, CellPadsAndTruncates) {
  EXPECT_EQ(Cell("ab", 4), "ab  ");
  EXPECT_EQ(Cell("abcdef", 4), "abcd");
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s(StatusCode::kResourceExhausted, "out of device memory");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s.ToString(), "RESOURCE_EXHAUSTED: out of device memory");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= 5; ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(Result, ValueOrFallsBackOnError) {
  Result<int> ok(42);
  Result<int> err(Status(StatusCode::kNotFound, "missing"));
  EXPECT_EQ(ok.value_or(7), 42);
  EXPECT_EQ(err.value_or(7), 7);
  Result<std::string> moved(std::string("hello"));
  EXPECT_EQ(std::move(moved).value_or("bye"), "hello");
}

TEST(Result, PointerStyleAccess) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(*r, "abc");
  EXPECT_EQ(r->size(), 3u);
  *r += "d";
  EXPECT_EQ(*r, "abcd");
}

namespace assign_or_return {

Result<std::unique_ptr<int>> MakeBox(bool ok) {
  if (!ok) {
    return Status(StatusCode::kUnsupported, "no box");
  }
  return std::make_unique<int>(5);
}

// TOFU_ASSIGN_OR_RETURN must move the value out (unique_ptr is move-only) and propagate
// the error status otherwise.
Result<int> Unbox(bool ok) {
  TOFU_ASSIGN_OR_RETURN(std::unique_ptr<int> box, MakeBox(ok));
  TOFU_RETURN_IF_ERROR(Status::Ok());
  return *box;
}

}  // namespace assign_or_return

TEST(Result, AssignOrReturnMovesValueAndPropagatesError) {
  Result<int> ok = assign_or_return::Unbox(true);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  Result<int> err = assign_or_return::Unbox(false);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kUnsupported);
}

TEST(Result, HoldsError) {
  Result<int> r(Status(StatusCode::kNotFound, "missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Logging, SeverityThresholdIsAdjustable) {
  LogSeverity prev = MinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(MinLogSeverity(), LogSeverity::kError);
  TOFU_LOG(Info) << "suppressed message";
  SetMinLogSeverity(prev);
}

TEST(Logging, CheckMacrosPassOnTrue) {
  TOFU_CHECK(true) << "never shown";
  TOFU_CHECK_EQ(2 + 2, 4);
  TOFU_CHECK_LT(1, 2);
  TOFU_CHECK_GE(5, 5);
}

TEST(LoggingDeath, CheckAbortsOnFalse) {
  EXPECT_DEATH({ TOFU_CHECK_EQ(1, 2) << "boom"; }, "Check failed");
}

}  // namespace
}  // namespace tofu
