// Session API tests: request/response happy path, every recoverable error path (no
// aborts), plan-cache semantics with hit/miss counters, incremental re-planning
// through the step-table cache (budget-ladder warm searches byte-identical to cold
// ones), and the topology-weighted search contract -- default topology reproduces the
// legacy plans bit-identically, and a skewed topology never does worse than the
// uniform plan evaluated on it.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "tofu/core/partitioner.h"
#include "tofu/core/session.h"
#include "tofu/memory/liveness.h"
#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"
#include "tofu/partition/plan_io.h"

namespace tofu {
namespace {

ModelGraph SmallMlp() {
  MlpConfig config;
  config.layer_sizes = {256, 256, 64};
  config.batch = 32;
  return BuildMlp(config);
}

TEST(Session, PartitionReturnsPopulatedResponse) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::FromCluster(K80Cluster()));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_FALSE(response->from_cache);
  EXPECT_EQ(response->plan.num_workers, 8);
  EXPECT_EQ(response->plan.steps.size(), 3u);
  EXPECT_GT(response->peak_shard_bytes, 0);
  EXPECT_TRUE(response->fits_device_memory);  // a small MLP on a 12 GB device
  ASSERT_EQ(response->step_seconds.size(), 3u);
  for (double s : response->step_seconds) {
    EXPECT_GE(s, 0.0);
  }
  EXPECT_GT(response->estimated_comm_seconds, 0.0);
  EXPECT_GT(response->search_stats.states_explored, 0);
  // Step 0 crosses the 10 GB/s host link, steps 1-2 the 21 GB/s p2p links: the weighted
  // seconds must reflect the per-level bandwidths, not a uniform link.
  const ClusterSpec cluster = K80Cluster();
  EXPECT_DOUBLE_EQ(response->step_seconds[0],
                   response->plan.weighted_step_costs[0] / cluster.cpu_bandwidth);
  EXPECT_DOUBLE_EQ(response->step_seconds[1],
                   response->plan.weighted_step_costs[1] / cluster.p2p_bandwidth);
}

TEST(Session, NullGraphIsInvalidArgument) {
  Session session(DeviceTopology::Uniform(4));
  PartitionRequest request;  // graph left null
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(Session, BadWorkerCountIsInvalidArgument) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(0));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kInvalidArgument);
}

TEST(Session, UnknownOperatorIsNotFoundNotAbort) {
  ModelGraph model = SmallMlp();
  // Simulate a graph that arrived from elsewhere referencing an op nobody registered.
  model.graph.op(0).type = "nonexistent_op";
  Session session(DeviceTopology::Uniform(4));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kNotFound);
  EXPECT_NE(response.status().message().find("nonexistent_op"), std::string::npos);
}

TEST(Session, InfeasibleBudgetIsResourceExhaustedWithDeficit) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(4));
  PartitionRequest request;
  request.graph = &model.graph;
  request.memory_budget_bytes = 1;  // nothing fits in one byte
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(response.status().message().find("deficit"), std::string::npos);
  // The search itself proved no configuration fits, and the message says so.
  EXPECT_NE(response.status().message().find("no searched configuration fits"),
            std::string::npos);

  // The budget is part of the cache key (it steers the search), so a retry with a
  // different budget is a fresh search -- which is exactly what can succeed where the
  // tight one failed -- while a repeated identical infeasible request is a hit that
  // fails fast without re-searching.
  EXPECT_EQ(session.cache_stats().misses, 1);
  request.memory_budget_bytes = 1ll << 40;
  Result<PartitionResponse> generous = session.Partition(request);
  ASSERT_TRUE(generous.ok()) << generous.status().ToString();
  EXPECT_LE(generous->peak_shard_bytes, request.memory_budget_bytes);
  EXPECT_FALSE(generous->from_cache);
  EXPECT_EQ(session.cache_stats().misses, 2);
  request.memory_budget_bytes = 1;
  EXPECT_EQ(session.Partition(request).status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session.cache_stats().hits, 1);    // served the cached infeasible verdict
  EXPECT_EQ(session.cache_stats().misses, 2);  // no re-search
}

TEST(Session, BindingDeviceMemoryBoundIsNamedInTheError) {
  ModelGraph model = SmallMlp();
  DeviceTopology topology = DeviceTopology::Uniform(4);
  topology.memory_bytes_per_worker = 1;  // device smaller than any request budget
  Session session(topology);
  PartitionRequest request;
  request.graph = &model.graph;
  request.memory_budget_bytes = 2;  // fails, but raising it cannot help
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(response.status().message().find("memory_bytes_per_worker"),
            std::string::npos);
  EXPECT_NE(response.status().message().find("cannot help"), std::string::npos);

  // With the request budget as the binding bound the advice is to raise it.
  Session roomy(DeviceTopology::Uniform(4));
  Result<PartitionResponse> plain = roomy.Partition(request);
  ASSERT_FALSE(plain.ok());
  EXPECT_NE(plain.status().message().find("raise memory_budget_bytes"),
            std::string::npos);
  EXPECT_EQ(plain.status().message().find("cannot help"), std::string::npos);
}

// The bugfix this PR exists for: a budget the minimum-communication plan violates but
// some plan satisfies must come back Ok with a feasible plan, not kResourceExhausted.
TEST(Session, BudgetBelowMinCommPlanStillReturnsFeasiblePlan) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> unconstrained = session.Partition(request);
  ASSERT_TRUE(unconstrained.ok()) << unconstrained.status().ToString();
  ASSERT_GT(unconstrained->all_resident_bytes, unconstrained->peak_shard_bytes);

  // Below the min-comm plan's all-resident footprint: the pre-budget-aware session
  // (which compared that sum against the budget) failed this request outright.
  PartitionRequest squeezed = request;
  squeezed.memory_budget_bytes = unconstrained->all_resident_bytes - 1;
  Result<PartitionResponse> constrained = session.Partition(squeezed);
  ASSERT_TRUE(constrained.ok()) << constrained.status().ToString();
  EXPECT_LE(constrained->peak_shard_bytes, squeezed.memory_budget_bytes);
  // Memory feasibility can only cost communication, never win it.
  EXPECT_GE(constrained->plan.total_comm_bytes, unconstrained->plan.total_comm_bytes);

  // Tighten the screw until nothing fits: each Ok must honor its budget, and the walk
  // must end in kResourceExhausted -- returned only once no configuration fits.
  std::int64_t budget = constrained->peak_shard_bytes - 1;
  bool exhausted = false;
  for (int i = 0; i < 64 && !exhausted; ++i) {
    PartitionRequest probe = request;
    probe.memory_budget_bytes = budget;
    Result<PartitionResponse> r = session.Partition(probe);
    if (r.ok()) {
      EXPECT_LE(r->peak_shard_bytes, budget);
      budget = r->peak_shard_bytes - 1;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
      exhausted = true;
    }
  }
  EXPECT_TRUE(exhausted);
}

TEST(Session, CachedAndFreshBudgetedResponsesAreByteIdentical) {
  ModelGraph model = SmallMlp();
  PartitionRequest request;
  request.graph = &model.graph;
  Session warm(DeviceTopology::Uniform(8));
  Result<PartitionResponse> baseline = warm.Partition(request);
  ASSERT_TRUE(baseline.ok());
  request.memory_budget_bytes = baseline->all_resident_bytes - 1;

  Result<PartitionResponse> first = warm.Partition(request);
  Result<PartitionResponse> cached = warm.Partition(request);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->from_cache);
  EXPECT_EQ(PlanToJson(cached->plan), PlanToJson(first->plan));

  // A fresh session searching under the same (graph, budget) key produces the same
  // plan byte-for-byte, up to the wall clock of the search itself.
  Session fresh(DeviceTopology::Uniform(8));
  Result<PartitionResponse> refound = fresh.Partition(request);
  ASSERT_TRUE(refound.ok());
  auto comparable = [](PartitionPlan plan) {
    plan.search_stats.wall_seconds = 0.0;
    return PlanToJson(plan);
  };
  EXPECT_EQ(comparable(refound->plan), comparable(cached->plan));
  EXPECT_EQ(refound->peak_shard_bytes, cached->peak_shard_bytes);
}

// Incremental re-planning (partition/dp.h StepTableCache): requests against the same
// graph that differ only in memory budget recompile nothing -- each step's unit
// evaluators, byte tables, and dense cost tables are keyed on (graph structure, split
// factor, shapes) and re-served across the ladder -- and the warm searches must stay
// byte-identical to what a cold session computes, because imported tables hold exactly
// the values a refill would produce and every serialized counter counts
// required-not-computed work (docs/search.md, "Incremental re-planning").
TEST(Session, BudgetLadderReplansAreByteIdenticalToColdSearches) {
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 1024, 512};
  config.batch = 128;
  ModelGraph model = BuildMlp(config);
  Session warm(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> unbudgeted = warm.Partition(request);
  ASSERT_TRUE(unbudgeted.ok()) << unbudgeted.status().ToString();
  EXPECT_EQ(warm.step_table_cache_stats().hits, 0u);
  EXPECT_GT(warm.step_table_cache_stats().misses, 0u);

  auto comparable = [](PartitionPlan plan) {
    plan.search_stats.wall_seconds = 0.0;
    return PlanToJson(plan);
  };
  const std::int64_t all = unbudgeted->all_resident_bytes;
  for (std::int64_t budget : {all, all * 7 / 8, all * 3 / 4}) {
    PartitionRequest budgeted;
    budgeted.graph = &model.graph;
    budgeted.memory_budget_bytes = budget;
    Result<PartitionResponse> replan = warm.Partition(budgeted);
    ASSERT_TRUE(replan.ok()) << replan.status().ToString();
    EXPECT_FALSE(replan->from_cache);  // a new budget is a new plan-cache key

    Session cold(DeviceTopology::Uniform(8));
    Result<PartitionResponse> fresh = cold.Partition(budgeted);
    ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
    EXPECT_EQ(comparable(replan->plan), comparable(fresh->plan))
        << "budget=" << budget;
    EXPECT_EQ(replan->peak_shard_bytes, fresh->peak_shard_bytes);
  }
  // The ladder hit the step-table cache (same graph, same shapes, budget excluded
  // from the key) and at least one warm search imported tables instead of refilling.
  EXPECT_GT(warm.step_table_cache_stats().hits, 0u);

  PartitionRequest full_budget;
  full_budget.graph = &model.graph;
  full_budget.memory_budget_bytes = all;
  Session cold_full(DeviceTopology::Uniform(8));
  Result<PartitionResponse> warm_again = cold_full.Partition(full_budget);
  ASSERT_TRUE(warm_again.ok());
  EXPECT_EQ(warm_again->plan.search_stats.reused_table_entries, 0);
  Result<PartitionResponse> first_full = warm.Partition(full_budget);
  ASSERT_TRUE(first_full.ok());
  EXPECT_TRUE(first_full->from_cache);  // same budget as rung 1: plan cache serves it
}

TEST(Session, StepTableReuseIsCountedButNeverSerialized) {
  // The warm rung's plan must show reuse in the in-memory stats while its JSON stays
  // byte-identical to a cold search -- reused_table_entries is diagnostic only.
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 1024, 512};
  config.batch = 128;
  ModelGraph model = BuildMlp(config);
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> cold = session.Partition(request);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->plan.search_stats.reused_table_entries, 0);

  PartitionRequest budgeted;
  budgeted.graph = &model.graph;
  budgeted.memory_budget_bytes = cold->all_resident_bytes;
  Result<PartitionResponse> warm = session.Partition(budgeted);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm->plan.search_stats.reused_table_entries, 0);
  EXPECT_EQ(warm->plan.search_stats.states_explored +
                warm->plan.search_stats.cost_table_entries,
            [&] {
              Session fresh(DeviceTopology::Uniform(8));
              Result<PartitionResponse> f = fresh.Partition(budgeted);
              return f.ok() ? f->plan.search_stats.states_explored +
                                  f->plan.search_stats.cost_table_entries
                            : -1;
            }());
  // PlanToJson never carries the reuse counter: a warm and a cold plan serialize to
  // the same bytes even though their in-memory diagnostics differ.
  const std::string json = PlanToJson(warm->plan);
  EXPECT_EQ(json.find("reused"), std::string::npos);
  EXPECT_EQ(json.find("dominated"), std::string::npos);
}

TEST(Session, CacheHitValidatesPlanAndRecoversFromSignatureCollision) {
  // Forge what a 64-bit GraphSignature collision would look like: the cache holds a
  // response whose plan belongs to a structurally different graph.
  MlpConfig other_config;
  other_config.layer_sizes = {128, 64};
  other_config.batch = 16;
  ModelGraph other = BuildMlp(other_config);
  Session poisoned(DeviceTopology::Uniform(4));
  PartitionRequest other_request;
  other_request.graph = &other.graph;
  Result<PartitionResponse> other_response = poisoned.Partition(other_request);
  ASSERT_TRUE(other_response.ok());

  ModelGraph model = SmallMlp();
  PartitionRequest request;
  request.graph = &model.graph;
  poisoned.InsertPlanForTesting(request, *other_response);  // wrong graph, right key

  Result<PartitionResponse> response = poisoned.Partition(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(poisoned.cache_stats().collisions, 1);
  EXPECT_FALSE(response->from_cache);  // fell through to a fresh search
  // The fresh plan validates against the request's graph and replaced the stale entry.
  EXPECT_TRUE(ValidatePlanForGraph(model.graph, response->plan).ok());
  Result<PartitionResponse> again = poisoned.Partition(request);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->from_cache);
  EXPECT_EQ(poisoned.cache_stats().collisions, 1);  // no second collision
}

TEST(Session, LivenessPeakIsBelowAllResidentSum) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok());
  // The MLP's activations die as the chain advances, so the program-order peak is
  // strictly below the everything-at-once sum (which is what the old fits verdict
  // compared, spuriously reporting oversubscription).
  EXPECT_LT(response->peak_shard_bytes, response->all_resident_bytes);
  EXPECT_EQ(response->peak_shard_bytes,
            LivenessPeakShardBytes(model.graph, response->plan));
  EXPECT_EQ(response->all_resident_bytes,
            AllResidentShardBytes(model.graph, response->plan));
}

TEST(Session, ZeroBandwidthIsInvalidArgumentNotInfinity) {
  ModelGraph model = SmallMlp();
  PartitionRequest request;
  request.graph = &model.graph;

  Session zero_uniform(DeviceTopology::Uniform(4, 0.0));
  EXPECT_EQ(zero_uniform.Partition(request).status().code(),
            StatusCode::kInvalidArgument);

  DeviceTopology bad_level;
  bad_level.num_workers = 4;
  bad_level.level_bandwidths = {1e9, 0.0};
  Session zero_level(bad_level);
  EXPECT_EQ(zero_level.Partition(request).status().code(), StatusCode::kInvalidArgument);

  Session fine(DeviceTopology::Uniform(4));
  PartitionRequest bad_options = request;
  bad_options.options.step_bandwidths = {-1.0};
  EXPECT_EQ(fine.Partition(bad_options).status().code(), StatusCode::kInvalidArgument);
}

TEST(Session, PlanCacheHitsOnRepeatedRequest) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;

  Result<PartitionResponse> first = session.Partition(request);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->from_cache);
  EXPECT_EQ(session.cache_stats().hits, 0);
  EXPECT_EQ(session.cache_stats().misses, 1);

  Result<PartitionResponse> second = session.Partition(request);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->from_cache);
  EXPECT_EQ(session.cache_stats().hits, 1);
  EXPECT_EQ(session.cache_stats().misses, 1);
  // The cached plan is byte-identical to the first response's.
  EXPECT_EQ(PlanToJson(second->plan), PlanToJson(first->plan));

  // A different request (another algorithm) is a miss, not a false hit.
  PartitionRequest other = request;
  other.algorithm = PartitionAlgorithm::kDataParallel;
  Result<PartitionResponse> third = session.Partition(other);
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->from_cache);
  EXPECT_EQ(session.cache_stats().misses, 2);

  // A different graph with the same shape of request is also a miss.
  MlpConfig other_config;
  other_config.layer_sizes = {128, 64};
  other_config.batch = 16;
  ModelGraph model2 = BuildMlp(other_config);
  PartitionRequest changed = request;
  changed.graph = &model2.graph;
  (void)session.Partition(changed);
  EXPECT_EQ(session.cache_stats().misses, 3);

  session.ClearPlanCache();
  Result<PartitionResponse> after_clear = session.Partition(request);
  ASSERT_TRUE(after_clear.ok());
  EXPECT_FALSE(after_clear->from_cache);
}

TEST(Session, PlanCacheEvictsOldestWhenBounded) {
  ModelGraph model = SmallMlp();
  Session session(DeviceTopology::Uniform(4), /*max_cached_plans=*/1);
  PartitionRequest tofu_request;
  tofu_request.graph = &model.graph;
  PartitionRequest dp_request = tofu_request;
  dp_request.algorithm = PartitionAlgorithm::kDataParallel;

  (void)session.Partition(tofu_request);            // cached
  (void)session.Partition(dp_request);              // evicts the Tofu entry
  Result<PartitionResponse> tofu_again = session.Partition(tofu_request);
  ASSERT_TRUE(tofu_again.ok());
  EXPECT_FALSE(tofu_again->from_cache);             // was evicted, re-searched
  Result<PartitionResponse> tofu_third = session.Partition(tofu_request);
  ASSERT_TRUE(tofu_third.ok());
  EXPECT_TRUE(tofu_third->from_cache);              // newest entry survives

  // max_cached_plans = 0 disables caching entirely.
  Session uncached(DeviceTopology::Uniform(4), /*max_cached_plans=*/0);
  (void)uncached.Partition(tofu_request);
  Result<PartitionResponse> repeat = uncached.Partition(tofu_request);
  ASSERT_TRUE(repeat.ok());
  EXPECT_FALSE(repeat->from_cache);
  EXPECT_EQ(uncached.cache_stats().hits, 0);
}

TEST(Session, DefaultTopologyReproducesLegacyPlansBitIdentically) {
  ModelGraph model = SmallMlp();
  PartitionPlan legacy = RecursivePartition(model.graph, 8);

  Session session(DeviceTopology::Uniform(8));
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok());
  const PartitionPlan& plan = response->plan;

  EXPECT_EQ(plan.step_factors, legacy.step_factors);
  EXPECT_EQ(plan.total_comm_bytes, legacy.total_comm_bytes);
  EXPECT_EQ(plan.weighted_step_costs, legacy.weighted_step_costs);
  ASSERT_EQ(plan.steps.size(), legacy.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    EXPECT_EQ(plan.steps[i].tensor_cut, legacy.steps[i].tensor_cut);
    EXPECT_EQ(plan.steps[i].op_strategy, legacy.steps[i].op_strategy);
    EXPECT_EQ(plan.steps[i].comm_bytes, legacy.steps[i].comm_bytes);
  }

  // The deprecated facade goes through the same session machinery.
  PartitionPlan shim = Partitioner().Partition(model.graph, 8);
  EXPECT_EQ(shim.total_comm_bytes, legacy.total_comm_bytes);
}

// Evaluates a plan's communication time on a topology: weighted step bytes over the
// bandwidth of the link each step crosses (what Session reports as step_seconds).
double TimeOnTopology(const PartitionPlan& plan, const DeviceTopology& topology) {
  double total = 0.0;
  for (size_t i = 0; i < plan.weighted_step_costs.size(); ++i) {
    total += plan.weighted_step_costs[i] / topology.BandwidthForStep(i);
  }
  return total;
}

TEST(Session, SkewedTopologyNeverLosesToUniformPlanOnSameTopology) {
  // 6 workers factorize as {3, 2}: with distinct factors the ordering search has a real
  // choice. RNN per the acceptance criteria.
  RnnConfig config;
  config.layers = 2;
  config.hidden = 512;
  config.batch = 64;
  ModelGraph model = BuildRnn(config);

  DeviceTopology skewed;
  skewed.num_workers = 6;
  skewed.level_bandwidths = {2e9, 21e9};  // cross-group host link 10x slower than p2p

  Session skewed_session(skewed);
  PartitionRequest request;
  request.graph = &model.graph;
  Result<PartitionResponse> chosen = skewed_session.Partition(request);
  ASSERT_TRUE(chosen.ok()) << chosen.status().ToString();

  Session uniform_session(DeviceTopology::Uniform(6));
  Result<PartitionResponse> uniform = uniform_session.Partition(request);
  ASSERT_TRUE(uniform.ok());

  // The topology-aware search's pick, on the skewed topology, is at most the
  // uniform-topology plan's cost on that same topology (it considered that ordering).
  const double chosen_time = TimeOnTopology(chosen->plan, skewed);
  const double uniform_time = TimeOnTopology(uniform->plan, skewed);
  EXPECT_LE(chosen_time, uniform_time * (1.0 + 1e-12));
  EXPECT_DOUBLE_EQ(chosen->estimated_comm_seconds, chosen_time);

  // Both orderings produce valid 6-worker plans.
  EXPECT_EQ(chosen->plan.num_workers, 6);
  int product = 1;
  for (int f : chosen->plan.step_factors) {
    product *= f;
  }
  EXPECT_EQ(product, 6);
}

TEST(AlgorithmNames, RoundTripAndUnknown) {
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kTofu, PartitionAlgorithm::kIcml18,
        PartitionAlgorithm::kEqualChop, PartitionAlgorithm::kSpartan,
        PartitionAlgorithm::kAllRowGreedy, PartitionAlgorithm::kDataParallel}) {
    Result<PartitionAlgorithm> back = AlgorithmFromName(AlgorithmName(algorithm));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, algorithm);
  }
  Result<PartitionAlgorithm> unknown = AlgorithmFromName("NoSuchAlgorithm");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // The error names the valid spellings so CLI users can fix their flag.
  EXPECT_NE(unknown.status().message().find("Tofu"), std::string::npos);
}

TEST(GraphSignatures, SensitiveToStructureNotInstance) {
  ModelGraph a = SmallMlp();
  ModelGraph b = SmallMlp();
  EXPECT_EQ(GraphSignature(a.graph), GraphSignature(b.graph));
  b.graph.tensor(0).shape[0] += 1;
  EXPECT_NE(GraphSignature(a.graph), GraphSignature(b.graph));
}

}  // namespace
}  // namespace tofu
