// Transformer workload tests: the generalization check of the TDL approach. The paper
// never evaluated attention; these tests assert that the machinery it did describe --
// shape inference, autodiff, interval analysis, the recursive DP -- handles the encoder
// end-to-end, and that the DP beats pure data parallelism at 8 workers.
#include <gtest/gtest.h>

#include <set>

#include "tofu/graph/autodiff.h"
#include "tofu/models/transformer.h"
#include "tofu/partition/baselines.h"
#include "tofu/partition/recursive.h"
#include "tofu/sim/runtimes.h"
#include "tofu/tdl/registry.h"

namespace tofu {
namespace {

TransformerConfig SmallConfig() {
  TransformerConfig config;
  config.batch = 16;
  config.seq_len = 32;
  config.d_model = 128;
  config.d_ff = 256;
  config.heads = 2;
  config.layers = 2;
  config.num_classes = 64;
  return config;
}

TEST(Transformer, ShapesFlowThroughEncoderBlocks) {
  TransformerConfig config = SmallConfig();
  ModelGraph model = BuildTransformer(config);
  ValidateGraph(model.graph);  // re-infers every shape through the registry

  // Per-head attention probabilities are [B, S, S]; context is [B, S, d_head].
  const Shape probs{config.batch, config.seq_len, config.seq_len};
  const Shape ctx{config.batch, config.seq_len, config.d_model / config.heads};
  int num_probs = 0, num_ctx = 0;
  for (const TensorNode& t : model.graph.tensors()) {
    if (t.name.find("/probs") != std::string::npos && t.shape == probs) {
      ++num_probs;
    }
    if (t.name.find("/ctx") != std::string::npos && t.shape == ctx) {
      ++num_ctx;
    }
  }
  EXPECT_EQ(num_probs, config.layers * config.heads);
  EXPECT_EQ(num_ctx, config.layers * config.heads);
  EXPECT_TRUE(model.graph.tensor(model.loss).shape.empty());
}

TEST(Transformer, ParamCountMatchesClosedForm) {
  TransformerConfig config = SmallConfig();
  ModelGraph model = BuildTransformer(config);
  std::int64_t params = 0;
  for (TensorId w : model.graph.ParamIds()) {
    params += model.graph.tensor(w).num_elements();
  }
  EXPECT_EQ(params, TransformerParamCount(config));
}

// Autodiff closure: every parameter receives a gradient, and every op type the backward
// pass emitted is itself registered with a TDL description (the graph stays analyzable).
TEST(Transformer, AutodiffClosesOverRegisteredOps) {
  ModelGraph model = BuildTransformer(SmallConfig());
  OpRegistry& registry = OpRegistry::Get();
  std::set<std::string> backward_types;
  for (const OpNode& op : model.graph.ops()) {
    ASSERT_TRUE(registry.Has(op.type)) << op.type;
    if (op.is_backward) {
      backward_types.insert(op.type);
    }
  }
  // The attention adjoints must actually appear.
  for (const char* expected : {"batch_matmul_tn", "linear3d_nt", "linear3d_grad_w",
                               "softmax_grad", "layernorm_grad_x", "layernorm_grad_gamma",
                               "reduce_leading", "mean_seq_grad"}) {
    EXPECT_TRUE(backward_types.count(expected) > 0) << expected;
  }
  for (TensorId w : model.graph.ParamIds()) {
    bool has_grad = false;
    for (const TensorNode& t : model.graph.tensors()) {
      has_grad = has_grad || t.grad_of == w;
    }
    EXPECT_TRUE(has_grad) << model.graph.tensor(w).name;
  }
}

// Interval analysis: the discovered strategy sets match the semantics of each family.
TEST(Transformer, IntervalAnalysisFindsTheRightStrategySpaces) {
  OpRegistry& registry = OpRegistry::Get();

  // batch_matmul: batch, both free GEMM dimensions, and the contraction (case-2).
  const OpSemantics& bmm = registry.Semantics("batch_matmul", {}, {3, 3});
  std::set<std::string> vars;
  bool saw_reduction = false;
  for (const BasicStrategy& s : bmm.strategies) {
    vars.insert(s.var_name);
    saw_reduction = saw_reduction || s.is_reduction;
  }
  EXPECT_EQ(vars, (std::set<std::string>{"b", "m", "n", "k"}));
  EXPECT_TRUE(saw_reduction);

  // softmax (rank 3): both leading dimensions split; the normalized row never does.
  const OpSemantics& sm = registry.Semantics("softmax", {}, {3});
  std::set<std::string> sm_vars;
  for (const BasicStrategy& s : sm.strategies) {
    EXPECT_FALSE(s.is_reduction);
    sm_vars.insert(s.var_name);
  }
  EXPECT_EQ(sm_vars, (std::set<std::string>{"x0", "x1"}));

  // layernorm: leading dims split x and dy together, gamma/beta stay replicated.
  const OpSemantics& ln = registry.Semantics("layernorm", {}, {3, 1, 1});
  ASSERT_FALSE(ln.strategies.empty());
  for (const BasicStrategy& s : ln.strategies) {
    EXPECT_LT(s.output_dim, 2);  // never the normalized dimension
    EXPECT_EQ(s.inputs[0].kind, InputReq::Kind::kSplit);
    EXPECT_EQ(s.inputs[1].kind, InputReq::Kind::kReplicated);
    EXPECT_EQ(s.inputs[2].kind, InputReq::Kind::kReplicated);
  }

  // linear3d_grad_w: batch and sequence are both output-reduction dimensions.
  const OpSemantics& gw = registry.Semantics("linear3d_grad_w", {}, {3, 3});
  int reductions = 0;
  for (const BasicStrategy& s : gw.strategies) {
    reductions += s.is_reduction ? 1 : 0;
  }
  EXPECT_EQ(reductions, 2);
}

// The headline assertion: at 8 workers Tofu's recursive DP must find a plan strictly
// cheaper in per-step communication than pure data parallelism, whose cost is the
// all-reduce of every weight gradient.
TEST(Transformer, RecursiveDpBeatsDataParallelAt8Workers) {
  TransformerConfig config = SmallConfig();
  ModelGraph model = BuildTransformer(config);

  PartitionPlan tofu = RecursivePartition(model.graph, 8);
  PartitionPlan dp = DataParallelPlan(model.graph, 8);
  ASSERT_EQ(tofu.steps.size(), 3u);
  ASSERT_EQ(dp.steps.size(), 3u);
  EXPECT_GT(dp.total_comm_bytes, 0.0);
  EXPECT_LT(tofu.total_comm_bytes, dp.total_comm_bytes);
}

TEST(Transformer, PlanShardsModelStateAcrossWorkers) {
  TransformerConfig config = SmallConfig();
  ModelGraph model = BuildTransformer(config);
  const int k = 8;
  PartitionPlan plan = RecursivePartition(model.graph, k);
  for (TensorId w : model.graph.ParamIds()) {
    const TensorNode& t = model.graph.tensor(w);
    if (t.bytes() <= kReplicateThresholdBytes) {
      continue;
    }
    EXPECT_LE(plan.ShardBytes(model.graph, w), t.bytes() / k + t.bytes() / 16) << t.name;
  }
}

TEST(Transformer, SimulatesEndToEndWithoutOom) {
  TransformerConfig config = SmallConfig();
  ModelGraph model = BuildTransformer(config);
  PartitionPlan plan = RecursivePartition(model.graph, 8);
  ThroughputResult result = RunPlanThroughput(model, plan, K80Cluster());
  EXPECT_FALSE(result.oom);
  EXPECT_GT(result.samples_per_second, 0.0);
  EXPECT_GE(result.comm_fraction, 0.0);
  EXPECT_LE(result.comm_fraction, 1.0);
}

}  // namespace
}  // namespace tofu
