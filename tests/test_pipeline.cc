// Hybrid pipeline x Tofu subsystem tests (pipeline/):
//   * the stage cost model's bookkeeping is conservative -- every op lands in exactly
//     one macro group, crossing bytes vanish at the graph's end, state prefix sums are
//     additive, and per-group pass times scale down with workers;
//   * the analytic 1F1B makespan is a true lower bound of the event-driven 1F1B
//     schedule and stays within a constant of it (the differential contract
//     test_interconnect_diff applies to link pricing), including the unbalanced case
//     where the bottleneck is an EARLY stage and the classic (M-1)*bottleneck +
//     fill/drain formula is NOT a lower bound;
//   * HybridPartition's stage DP: deterministic stage goldens, a per-worker budget the
//     pure plan cannot meet forces a multi-stage plan whose every stage fits
//     (budget-infeasible -> more stages), and max_stages = 1 degenerates to a plan
//     byte-identical to RecursivePartition's;
//   * the session integration: kHybrid round-trips through AlgorithmFromName, a hybrid
//     response's memory figures are the max over stage-restricted peaks, and repeated
//     requests hit the plan cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "tofu/core/session.h"
#include "tofu/memory/liveness.h"
#include "tofu/models/mlp.h"
#include "tofu/partition/plan_io.h"
#include "tofu/partition/recursive.h"
#include "tofu/pipeline/compose.h"
#include "tofu/pipeline/pipeline_sim.h"
#include "tofu/pipeline/stage_cost.h"

namespace tofu {
namespace {

// Wide enough to give the recursion real choices, deep enough for 8 macro groups.
ModelGraph DeepMlp() {
  MlpConfig config;
  config.layer_sizes = {64, 64, 64, 64, 64, 64, 64, 64};
  config.batch = 32;
  return BuildMlp(config);
}

// Narrow on purpose: at 32 workers every tensor's split capacity is exhausted long
// before the worker count, so the pure plan must replicate state that a pipeline
// stage's workers never hold -- the regime where the budget lever below bites.
ModelGraph NarrowMlp() {
  MlpConfig config;
  config.layer_sizes = {4, 4, 4, 4, 4, 4, 4, 4};
  config.batch = 8;
  return BuildMlp(config);
}

std::string PlanBytes(PartitionPlan plan) {
  plan.search_stats.wall_seconds = 0.0;
  return PlanToJson(plan);
}

TEST(StageCost, EveryOpInExactlyOneGroupAndCrossingBytesVanishAtTheEnd) {
  ModelGraph model = DeepMlp();
  const CoarseGraph coarse = Coarsen(model.graph);
  const int G = static_cast<int>(coarse.groups.size());
  ASSERT_GT(G, 1);

  const std::vector<int> op_group = OpGroupIndex(model.graph, coarse);
  ASSERT_EQ(op_group.size(), static_cast<size_t>(model.graph.num_ops()));
  for (int g : op_group) {
    EXPECT_GE(g, 0);
    EXPECT_LT(g, G);
  }
  const StageCostModel cost(model.graph, coarse, K80Cluster());
  EXPECT_EQ(cost.num_groups(), G);
  // Nothing crosses the boundary after the last group; something crosses the middle.
  EXPECT_EQ(cost.ForwardCrossingBytes(G - 1), 0.0);
  EXPECT_EQ(cost.BackwardCrossingBytes(G - 1), 0.0);
  EXPECT_GT(cost.ForwardCrossingBytes(G / 2), 0.0);

  // State prefix sums are additive and cover the whole model exactly.
  const std::int64_t whole = cost.StateBytes(0, G - 1);
  EXPECT_GT(whole, 0);
  std::int64_t split = 0;
  for (int g = 0; g < G; ++g) {
    split += cost.StateBytes(g, g);
  }
  EXPECT_EQ(split, whole);
}

TEST(StageCost, PassSecondsScaleDownWithWorkersAndMicroBatches) {
  ModelGraph model = DeepMlp();
  const CoarseGraph coarse = Coarsen(model.graph);
  const StageCostModel cost(model.graph, coarse, K80Cluster());

  auto total = [&](int workers, int micro_batches) {
    std::vector<double> f;
    std::vector<double> b;
    cost.PerGroupPassSeconds(workers, micro_batches, &f, &b);
    double sum = 0.0;
    for (size_t g = 0; g < f.size(); ++g) {
      EXPECT_GE(f[g], 0.0);
      EXPECT_GE(b[g], 0.0);
      sum += f[g] + b[g];
    }
    return sum;
  };
  const double w1 = total(1, 1);
  const double w8 = total(8, 1);
  EXPECT_GT(w1, 0.0);
  // More workers shrink one full-batch pass, but never below the overhead floor.
  EXPECT_LT(w8, w1);
  // A micro-batch does at most a full batch's work.
  EXPECT_LE(total(8, 4), w8);
}

TEST(StageCoarse, FiltersUnitsButKeepsGlobalSlots) {
  ModelGraph model = DeepMlp();
  const CoarseGraph coarse = Coarsen(model.graph);
  const int G = static_cast<int>(coarse.groups.size());
  ASSERT_GE(G, 2);

  const CoarseGraph head = StageCoarse(coarse, 0, G / 2 - 1);
  const CoarseGraph tail = StageCoarse(coarse, G / 2, G - 1);
  // Global tensor->slot map is untouched; only units are filtered.
  EXPECT_EQ(head.tensor_slot, coarse.tensor_slot);
  EXPECT_EQ(head.slots.size(), coarse.slots.size());
  EXPECT_EQ(head.units.size() + tail.units.size(), coarse.units.size());
  EXPECT_EQ(head.groups.size() + tail.groups.size(), coarse.groups.size());

  const std::vector<char> mask = StageOpMask(model.graph, coarse, 0, G / 2 - 1);
  ASSERT_EQ(mask.size(), static_cast<size_t>(model.graph.num_ops()));
  const long in_stage = std::count(mask.begin(), mask.end(), 1);
  EXPECT_GT(in_stage, 0);
  EXPECT_LT(in_stage, model.graph.num_ops());
}

// Hand-built pipeline plans: the analytic bound must never exceed the event-driven
// 1F1B makespan, and must stay within 2x of it.
PipelinePlan SyntheticPlan(const std::vector<double>& fwd, const std::vector<double>& bwd,
                           const std::vector<double>& transfer, int micro_batches) {
  PipelinePlan plan;
  plan.num_stages = static_cast<int>(fwd.size());
  plan.micro_batches = micro_batches;
  for (size_t s = 0; s < fwd.size(); ++s) {
    PipelineStage stage;
    stage.fwd_seconds = fwd[s];
    stage.bwd_seconds = bwd[s];
    if (s + 1 < fwd.size()) {
      stage.transfer_fwd_seconds = transfer[s];
      stage.transfer_bwd_seconds = transfer[s];
    }
    plan.stages.push_back(stage);
    plan.bottleneck_seconds =
        std::max(plan.bottleneck_seconds, fwd[s] + bwd[s]);
  }
  plan.pipeline_seconds = AnalyticPipelineSeconds(plan);
  return plan;
}

TEST(PipelineSim, AnalyticLowerBoundsTheEventSchedule) {
  const struct {
    std::vector<double> fwd;
    std::vector<double> bwd;
    std::vector<double> transfer;
    int micro_batches;
  } cases[] = {
      // Balanced stages: analytic == classic (M-1)*bottleneck + fill/drain.
      {{1.0, 1.0, 1.0, 1.0}, {2.0, 2.0, 2.0, 2.0}, {0.1, 0.1, 0.1}, 8},
      // Early bottleneck: the classic formula OVERSHOOTS the schedule here (stage 0
      // never stalls), so only the per-stage critical-path bound is safe.
      {{10.0, 1.0}, {10.0, 1.0}, {0.5}, 4},
      // Late bottleneck.
      {{1.0, 1.0, 10.0}, {1.0, 1.0, 10.0}, {0.2, 0.2}, 6},
      // Single stage: no pipeline at all, T = M * (f + b).
      {{3.0}, {4.0}, {}, 5},
      // Transfer-dominated boundaries.
      {{1.0, 1.0}, {1.0, 1.0}, {5.0}, 4},
  };
  for (const auto& c : cases) {
    const PipelinePlan plan = SyntheticPlan(c.fwd, c.bwd, c.transfer, c.micro_batches);
    const double analytic = AnalyticPipelineSeconds(plan);
    const double sim = Simulate1F1BSeconds(plan);
    EXPECT_GT(analytic, 0.0);
    EXPECT_GE(sim, analytic * (1.0 - 1e-12))
        << "S=" << plan.num_stages << " M=" << plan.micro_batches;
    EXPECT_LE(sim, analytic * 2.0)
        << "S=" << plan.num_stages << " M=" << plan.micro_batches;
  }
}

TEST(PipelineSim, BalancedStagesMatchTheClassicFormula) {
  const PipelinePlan plan =
      SyntheticPlan({2.0, 2.0, 2.0}, {3.0, 3.0, 3.0}, {0.25, 0.25}, 6);
  // fill = (f + t) * (S-1), steady = M * (f + b), drain = (b + t) * (S-1).
  const double classic = 2 * (2.0 + 0.25) + 6 * (2.0 + 3.0) + 2 * (3.0 + 0.25);
  EXPECT_DOUBLE_EQ(AnalyticPipelineSeconds(plan), classic);
}

TEST(HybridPartition, OneStageDegeneratesToTheExactPurePlan) {
  ModelGraph model = DeepMlp();
  HybridOptions hybrid;
  hybrid.max_stages = 1;
  const PartitionPlan forced = HybridPartition(model.graph, 8, {}, hybrid);
  const PartitionPlan pure = RecursivePartition(model.graph, 8);
  EXPECT_EQ(forced.pipeline, nullptr);
  EXPECT_EQ(PlanBytes(forced), PlanBytes(pure));
}

TEST(HybridPartition, UnconstrainedSearchIsDeterministic) {
  ModelGraph model = NarrowMlp();
  const PartitionPlan a = HybridPartition(model.graph, 32);
  const PartitionPlan b = HybridPartition(model.graph, 32);
  EXPECT_EQ(PlanBytes(a), PlanBytes(b));
  EXPECT_EQ(PlanDigest(a), PlanDigest(b));
}

TEST(HybridPartition, BudgetThePurePlanCannotMeetForcesMoreStages) {
  ModelGraph model = NarrowMlp();
  const int kWorkers = 32;

  // Unconstrained, the pure plan wins on time (this graph's comm is negligible).
  const PartitionPlan unconstrained = HybridPartition(model.graph, kWorkers);
  EXPECT_EQ(unconstrained.pipeline, nullptr);

  // The budget-aware PURE search bottoms out above this budget: split capacity runs
  // out at 32 workers, so some state stays replicated on every worker.
  PartitionOptions options;
  options.memory_budget_bytes = 150;
  const PartitionPlan pure = RecursivePartition(model.graph, kWorkers, options);
  EXPECT_GT(LivenessPeakShardBytes(model.graph, pure), options.memory_budget_bytes);

  // The hybrid search escapes through the stage DP: more stages mean each worker
  // holds only its own stage's state, and every stage fits the budget.
  const PartitionPlan hybrid = HybridPartition(model.graph, kWorkers, options);
  ASSERT_NE(hybrid.pipeline, nullptr);
  EXPECT_GE(hybrid.pipeline->num_stages, 2);
  EXPECT_TRUE(hybrid.memory_feasible);
  for (const PipelineStage& stage : hybrid.pipeline->stages) {
    EXPECT_LE(stage.peak_bytes, options.memory_budget_bytes);
  }
}

TEST(HybridPartition, StageGoldensCoverTheGraphContiguously) {
  ModelGraph model = NarrowMlp();
  PartitionOptions options;
  options.memory_budget_bytes = 150;
  const PartitionPlan plan = HybridPartition(model.graph, 32, options);
  ASSERT_NE(plan.pipeline, nullptr);
  const PipelinePlan& pipe = *plan.pipeline;
  // Deterministic golden: the DP picks the two-stage cut at this budget.
  EXPECT_EQ(pipe.num_stages, 2);
  EXPECT_EQ(pipe.micro_batches, 8);
  ASSERT_EQ(pipe.stages.size(), static_cast<size_t>(pipe.num_stages));

  const CoarseGraph coarse = Coarsen(model.graph);
  const int G = static_cast<int>(coarse.groups.size());
  int next_group = 0;
  int next_worker = 0;
  for (const PipelineStage& stage : pipe.stages) {
    EXPECT_EQ(stage.first_group, next_group);
    EXPECT_LE(stage.first_group, stage.last_group);
    next_group = stage.last_group + 1;
    EXPECT_EQ(stage.first_worker, next_worker);
    EXPECT_EQ(stage.num_workers, 32 / pipe.num_stages);
    next_worker += stage.num_workers;
    // Inner plans span the whole graph and validate against it.
    EXPECT_TRUE(ValidatePlanForGraph(model.graph, stage.plan).ok());
    EXPECT_EQ(stage.plan.num_workers, stage.num_workers);
  }
  EXPECT_EQ(next_group, G);
  EXPECT_EQ(next_worker, 32);
  // Every boundary but the last carries activations forward.
  for (size_t s = 0; s + 1 < pipe.stages.size(); ++s) {
    EXPECT_GT(pipe.stages[s].activation_bytes, 0.0);
  }
  EXPECT_EQ(pipe.stages.back().activation_bytes, 0.0);
  // The stored analytic makespan matches a recomputation, and the 1F1B event
  // schedule respects the differential contract on a REAL composed plan too.
  EXPECT_DOUBLE_EQ(pipe.pipeline_seconds, AnalyticPipelineSeconds(pipe));
  const double sim = Simulate1F1BSeconds(pipe);
  EXPECT_GE(sim, pipe.pipeline_seconds * (1.0 - 1e-12));
  EXPECT_LE(sim, pipe.pipeline_seconds * 2.0);
}

TEST(SessionHybrid, AlgorithmNameRoundTripsAndResponseUsesStagePeaks) {
  Result<PartitionAlgorithm> parsed = AlgorithmFromName("Hybrid");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, PartitionAlgorithm::kHybrid);
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kHybrid), "Hybrid");

  ModelGraph model = NarrowMlp();
  Session session(DeviceTopology::Uniform(32));
  PartitionRequest request;
  request.graph = &model.graph;
  request.algorithm = PartitionAlgorithm::kHybrid;
  request.memory_budget_bytes = 150;
  Result<PartitionResponse> response = session.Partition(request);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_NE(response->plan.pipeline, nullptr);

  std::int64_t max_peak = 0;
  std::int64_t max_resident = 0;
  for (const PipelineStage& stage : response->plan.pipeline->stages) {
    max_peak = std::max(max_peak, stage.peak_bytes);
    max_resident = std::max(max_resident, stage.all_resident_bytes);
  }
  EXPECT_EQ(response->peak_shard_bytes, max_peak);
  EXPECT_EQ(response->all_resident_bytes, max_resident);
  EXPECT_EQ(response->estimated_comm_seconds,
            response->plan.estimated_comm_seconds);

  // Repeat is served from the plan cache, byte-identical.
  Result<PartitionResponse> repeat = session.Partition(request);
  ASSERT_TRUE(repeat.ok());
  EXPECT_TRUE(repeat->from_cache);
  EXPECT_EQ(PlanBytes(repeat->plan), PlanBytes(response->plan));

  // A budget no stage count can meet is a recoverable kResourceExhausted, naming the
  // deficit, not a crash.
  PartitionRequest hopeless = request;
  hopeless.memory_budget_bytes = 32;
  Result<PartitionResponse> rejected = session.Partition(hopeless);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace tofu
