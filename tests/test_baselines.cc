// Baseline partition algorithms (Figure 10's comparison set): structural validity and
// the expected quality ordering -- Tofu's DP never loses to the greedy heuristics or the
// reduction-free ICML'18 restriction on communication volume.
#include <gtest/gtest.h>

#include "tofu/core/partitioner.h"
#include "tofu/models/mlp.h"
#include "tofu/models/rnn.h"

namespace tofu {
namespace {

ModelGraph Fixture() {
  MlpConfig config;
  config.layer_sizes = {1024, 1024, 512, 256};
  config.batch = 128;
  return BuildMlp(config);
}

void CheckWellFormed(const Graph& g, const PartitionPlan& plan, int k) {
  EXPECT_EQ(plan.num_workers, k);
  int total = 1;
  for (int f : plan.step_factors) {
    total *= f;
  }
  EXPECT_EQ(total, k);
  for (const BasicPlan& step : plan.steps) {
    ASSERT_EQ(step.tensor_cut.size(), static_cast<size_t>(g.num_tensors()));
    ASSERT_EQ(step.op_strategy.size(), static_cast<size_t>(g.num_ops()));
  }
}

TEST(Baselines, AllPlansAreWellFormed) {
  ModelGraph model = Fixture();
  Partitioner partitioner;
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kTofu, PartitionAlgorithm::kIcml18, PartitionAlgorithm::kEqualChop,
        PartitionAlgorithm::kSpartan, PartitionAlgorithm::kAllRowGreedy}) {
    PartitionPlan plan = partitioner.Partition(model.graph, 8, algorithm);
    CheckWellFormed(model.graph, plan, 8);
  }
}

TEST(Baselines, TofuNeverLosesOnCommunication) {
  ModelGraph model = Fixture();
  Partitioner partitioner;
  const double tofu =
      partitioner.Partition(model.graph, 8, PartitionAlgorithm::kTofu).total_comm_bytes;
  for (PartitionAlgorithm algorithm :
       {PartitionAlgorithm::kIcml18, PartitionAlgorithm::kEqualChop,
        PartitionAlgorithm::kSpartan, PartitionAlgorithm::kAllRowGreedy}) {
    const double other =
        partitioner.Partition(model.graph, 8, algorithm).total_comm_bytes;
    EXPECT_LE(tofu, other * 1.0001) << AlgorithmName(algorithm);
  }
}

TEST(Baselines, TofuBeatsAllRowGreedyOnRnn) {
  RnnConfig config;
  config.layers = 2;
  config.hidden = 512;
  config.batch = 64;
  config.timesteps = 6;
  ModelGraph model = BuildRnn(config);
  Partitioner partitioner;
  const double tofu =
      partitioner.Partition(model.graph, 8, PartitionAlgorithm::kTofu).total_comm_bytes;
  const double allrow =
      partitioner.Partition(model.graph, 8, PartitionAlgorithm::kAllRowGreedy)
          .total_comm_bytes;
  EXPECT_LT(tofu, allrow);
}

TEST(Baselines, AllRowGreedySplitsDimZero) {
  ModelGraph model = Fixture();
  PartitionPlan plan = AllRowGreedyPlan(model.graph, 8);
  for (const BasicPlan& step : plan.steps) {
    for (TensorId t = 0; t < model.graph.num_tensors(); ++t) {
      const int cut = step.tensor_cut[static_cast<size_t>(t)];
      if (cut != kReplicated && model.graph.tensor(t).shape[0] >= step.ways) {
        EXPECT_EQ(cut, 0) << model.graph.tensor(t).name;
      }
    }
  }
}

TEST(Baselines, EqualChopUsesOneStep) {
  ModelGraph model = Fixture();
  PartitionPlan plan = EqualChopPlan(model.graph, 8);
  ASSERT_EQ(plan.steps.size(), 1u);
  EXPECT_EQ(plan.steps[0].ways, 8);
  // Every partitioned tensor is chopped along exactly one dimension.
  for (const TensorNode& t : model.graph.tensors()) {
    std::vector<int> splits = plan.TensorSplits(model.graph, t.id);
    int dims_split = 0;
    for (int s : splits) {
      dims_split += s > 1 ? 1 : 0;
    }
    EXPECT_LE(dims_split, 1) << t.name;
  }
}

TEST(Baselines, Icml18HasNoReductionStrategies) {
  ModelGraph model = Fixture();
  PartitionPlan plan = Icml18Plan(model.graph, 8);
  std::vector<Shape> shapes = StepContext::InitialShapes(model.graph);
  for (const BasicPlan& step : plan.steps) {
    StepContext ctx(model.graph, shapes, step.ways);
    for (OpId op = 0; op < model.graph.num_ops(); ++op) {
      const int sidx = step.op_strategy[static_cast<size_t>(op)];
      if (sidx != kReplicatedExec) {
        EXPECT_FALSE(ctx.Strategies(op)[static_cast<size_t>(sidx)].is_reduction);
      }
    }
    shapes = StepContext::ApplyBasicPlan(model.graph, shapes, step);
  }
}

TEST(Baselines, SpartanImprovesOnAllRowGreedy) {
  ModelGraph model = Fixture();
  const double spartan = SpartanGreedyPlan(model.graph, 8).total_comm_bytes;
  const double allrow = AllRowGreedyPlan(model.graph, 8).total_comm_bytes;
  EXPECT_LE(spartan, allrow * 1.0001);
}

TEST(Baselines, AlgorithmNamesAreStable) {
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kTofu), "Tofu");
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kIcml18), "ICML18");
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kEqualChop), "EqualChop");
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kSpartan), "Spartan");
  EXPECT_STREQ(AlgorithmName(PartitionAlgorithm::kAllRowGreedy), "AllRow-Greedy");
}

}  // namespace
}  // namespace tofu
